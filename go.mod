module cchunter

go 1.22
