package cchunter

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden from current detector output")

// goldenDoc is the serialized verdict pinned by the regression corpus:
// the full report plus the channel-reliability facts a behavior change
// would disturb. Metrics is stripped before serialization — the corpus
// pins detection behavior, and the observability layer must never
// change it.
type goldenDoc struct {
	Report        Report `json:"report"`
	Sent          []int  `json:"sent,omitempty"`
	Decoded       []int  `json:"decoded,omitempty"`
	BitErrors     int    `json:"bit_errors"`
	EndCycle      uint64 `json:"end_cycle"`
	QuantumCycles uint64 `json:"quantum_cycles"`
}

// goldenMarshal freezes a run's verdict as indented JSON with the
// metrics snapshot removed.
func goldenMarshal(t *testing.T, res *Result) []byte {
	t.Helper()
	doc := goldenDoc{
		Report:        res.Report,
		Sent:          res.Sent,
		Decoded:       res.Decoded,
		BitErrors:     res.BitErrors,
		EndCycle:      res.EndCycle,
		QuantumCycles: res.QuantumCycles,
	}
	doc.Report.Metrics = nil
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatalf("marshal golden doc: %v", err)
	}
	return append(buf, '\n')
}

// goldenCases is the regression corpus: one scenario per covert
// channel plus a benign workload mix. Shared with the quantum-slicing
// equivalence tests, which replay the same corpus through sliced lanes.
func goldenCases() []struct {
	name string
	sc   Scenario
} {
	return []struct {
		name string
		sc   Scenario
	}{
		{"bus", Scenario{
			Channel:       ChannelMemoryBus,
			BandwidthBPS:  1000,
			Message:       RandomMessage(16, 3),
			QuantumCycles: testQuantum,
			Seed:          3,
		}},
		{"divider", Scenario{
			Channel:       ChannelIntegerDivider,
			BandwidthBPS:  1000,
			Message:       RandomMessage(12, 5),
			QuantumCycles: testQuantum,
			Seed:          5,
		}},
		{"cache", Scenario{
			Channel:       ChannelSharedCache,
			BandwidthBPS:  1000,
			Message:       RandomMessage(10, 7),
			CacheSets:     256,
			QuantumCycles: 25_000_000,
			Seed:          7,
		}},
		{"ring", Scenario{
			Channel:       ChannelRingInterconnect,
			BandwidthBPS:  1000,
			Message:       RandomMessage(12, 9),
			QuantumCycles: testQuantum,
			Seed:          9,
		}},
		{"tlb", Scenario{
			Channel:       ChannelTLB,
			BandwidthBPS:  1000,
			Message:       RandomMessage(16, 13),
			QuantumCycles: testQuantum,
			Seed:          13,
		}},
		{"benign", Scenario{
			Channel:        ChannelNone,
			Workloads:      []string{"gobmk", "sjeng", "bzip2", "h264ref"},
			DurationQuanta: 8,
			QuantumCycles:  testQuantum,
		}},
	}
}

// TestGoldenVerdicts pins the detector's verdicts for the goldenCases
// corpus against files under testdata/golden/. Each scenario runs
// twice — once bare and once with a metrics registry attached — and
// both runs must serialize to the same bytes: instrumentation is
// observational only. Regenerate the corpus after an intentional
// detector change with
//
//	go test -run TestGoldenVerdicts -update .
func TestGoldenVerdicts(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			bare := tc.sc
			res, err := bare.Run()
			if err != nil {
				t.Fatal(err)
			}
			got := goldenMarshal(t, res)

			instrumented := tc.sc
			instrumented.Metrics = NewMetricsRegistry()
			resM, err := instrumented.Run()
			if err != nil {
				t.Fatal(err)
			}
			if resM.Report.Metrics == nil {
				t.Fatal("instrumented run carries no metrics snapshot")
			}
			if gotM := goldenMarshal(t, resM); !bytes.Equal(got, gotM) {
				t.Errorf("verdict differs with metrics enabled:\nbare:\n%s\ninstrumented:\n%s", got, gotM)
			}

			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("verdict drifted from %s (regenerate with -update if intentional)\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}
		})
	}
}
