// Benchmark harness: one benchmark per paper table/figure (regenerate
// with `go test -bench=. -benchmem`), plus ablation benches for the
// design choices DESIGN.md calls out and the §V-B analysis-cost
// numbers. Benchmarks report paper-shape metrics (likelihood ratios,
// peak lags) as custom units alongside time/op.
package cchunter_test

import (
	"fmt"
	"runtime"
	"testing"

	"cchunter"
	"cchunter/internal/auditor"
	"cchunter/internal/cache"
	"cchunter/internal/conflict"
	"cchunter/internal/core"
	"cchunter/internal/experiments"
	"cchunter/internal/runner"
	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

// benchOpts runs benches at a heavier scale than unit tests but still
// bounded; TimeScale 100 preserves the detection-relevant ratios (see
// DESIGN.md). Set TimeScale 1 by editing here for full paper scale.
var benchOpts = experiments.Options{Seed: 1, TimeScale: 100, MessageBits: 64}

func BenchmarkFigure2MemoryBusLatencyTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure2(benchOpts)
		if r.BitErrors != 0 {
			b.Fatalf("bit errors: %d", r.BitErrors)
		}
	}
}

func BenchmarkFigure3DividerLatencyTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3(benchOpts)
		if r.BitErrors != 0 {
			b.Fatalf("bit errors: %d", r.BitErrors)
		}
	}
}

func BenchmarkFigure4EventTrains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4(benchOpts)
		if r.BusLocks.Len() == 0 || r.DivContention.Len() == 0 {
			b.Fatal("empty trains")
		}
	}
}

func BenchmarkFigure5DensityHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5(benchOpts)
		if r.Histogram.Total() == 0 {
			b.Fatal("empty histogram")
		}
	}
}

func BenchmarkFigure6DensityHistograms(b *testing.B) {
	var busLR, divLR float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure6(benchOpts)
		busLR, divLR = r.BusLR, r.DivLR
	}
	b.ReportMetric(busLR, "busLR")
	b.ReportMetric(divLR, "divLR")
}

func BenchmarkFigure7CacheRatioTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure7(benchOpts)
		if r.BitErrors != 0 {
			b.Fatalf("bit errors: %d", r.BitErrors)
		}
	}
}

func BenchmarkFigure8Autocorrelogram(b *testing.B) {
	var peak float64
	var lag int
	for i := 0; i < b.N; i++ {
		r := experiments.Figure8(benchOpts)
		if !r.Detected {
			b.Fatal("cache channel missed")
		}
		peak, lag = r.PeakValue, r.PeakLag
	}
	b.ReportMetric(peak, "peak")
	b.ReportMetric(float64(lag), "peakLag")
}

func BenchmarkTableIAuditorCost(b *testing.B) {
	var m auditor.CostModel
	for i := 0; i < b.N; i++ {
		m = experiments.TableI().Model
	}
	b.ReportMetric(m.HistogramBuffers.AreaMM2*1000, "hist-area-um2x1000")
	b.ReportMetric(m.ConflictMissDetector.PowerMW, "detector-mW")
}

func BenchmarkFigure10BandwidthSweep(b *testing.B) {
	opts := benchOpts
	opts.MessageBits = 32
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10(opts)
		for _, row := range r.Rows {
			if !row.Detected {
				b.Fatalf("%s at %g bps missed", row.Channel, row.PaperBPS)
			}
		}
	}
}

func BenchmarkFigure11WindowFractions(b *testing.B) {
	var quarter float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure11(benchOpts)
		quarter = r.Rows[3].PeakValue
	}
	b.ReportMetric(quarter, "quarter-peak")
}

func BenchmarkFigure12MessagePatterns(b *testing.B) {
	opts := benchOpts
	opts.MessageBits = 32
	var worst float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure12(opts, 8) // paper: 256 messages
		if !r.AllDetected {
			b.Fatal("a message escaped detection")
		}
		worst = r.BusLRMin
	}
	b.ReportMetric(worst, "worst-busLR")
}

func BenchmarkFigure13SetCountSweep(b *testing.B) {
	var lag64 int
	for i := 0; i < b.N; i++ {
		r := experiments.Figure13(benchOpts)
		for _, row := range r.Rows {
			if !row.Detected {
				b.Fatalf("%d sets missed", row.Sets)
			}
			if row.Sets == 64 {
				lag64 = row.PeakLag
			}
		}
	}
	b.ReportMetric(float64(lag64), "lag-at-64-sets")
}

func BenchmarkFigure14FalseAlarms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure14(benchOpts, 32)
		if r.FalseAlarms != 0 {
			b.Fatalf("%d false alarms", r.FalseAlarms)
		}
	}
}

// --- §V-B software analysis costs ------------------------------------

// BenchmarkClusteringCost measures one recurrent-burst analysis over a
// full 512-quantum window (the paper reports 0.25 s worst case, 0.02 s
// with feature dimension reduction).
func BenchmarkClusteringCost(b *testing.B) {
	rng := stats.NewRNG(1)
	records := make([]auditor.QuantumHistogram, 512)
	for i := range records {
		h := stats.NewHistogram(128)
		h.AddN(0, 2400)
		h.AddN(18+rng.Intn(5), uint64(20+rng.Intn(80)))
		h.AddN(1+rng.Intn(3), uint64(rng.Intn(10)))
		records[i] = auditor.QuantumHistogram{Quantum: uint64(i), Hist: h}
	}
	cfg := core.DefaultBurstConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.AnalyzeBursts(records, cfg)
		if !a.Detected {
			b.Fatal("synthetic channel window must detect")
		}
	}
}

// BenchmarkAutocorrelationCost measures one oscillation analysis over a
// quantum's conflict train (the paper reports 0.001 s worst case).
func BenchmarkAutocorrelationCost(b *testing.B) {
	tr := trace.NewTrain(0)
	cycle := uint64(0)
	for bit := 0; bit < 10; bit++ {
		for s := 0; s < 256; s++ {
			tr.Append(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss, Actor: 0, Victim: 2, Unit: uint32(s)})
			cycle += 1000
		}
		for s := 0; s < 256; s++ {
			tr.Append(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss, Actor: 2, Victim: 0, Unit: uint32(s)})
			cycle += 1000
		}
	}
	cfg := core.DefaultOscillationConfig(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.AnalyzeOscillation(tr, cfg)
		if !a.Detected {
			b.Fatal("synthetic train must detect")
		}
	}
}

// BenchmarkAutocorrelogram compares the O(n·maxLag) direct
// autocorrelation against the Wiener–Khinchin FFT path at paper-scale
// train lengths (a busy quantum's conflict train and the detector's
// deepest lag budget). The fft-workspace sub-benchmark is the
// detector's steady-state path and must report 0 allocs/op: the
// caller-held stats.Workspace owns every scratch buffer after warmup.
func BenchmarkAutocorrelogram(b *testing.B) {
	const n, maxLag = 65536, 4096
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%17) - 8
	}
	b.Run("naive", func(b *testing.B) {
		var acf []float64
		for i := 0; i < b.N; i++ {
			acf = stats.AutocorrelogramNaive(xs, maxLag)
		}
		b.ReportMetric(acf[0], "r0")
	})
	b.Run("fft", func(b *testing.B) {
		var acf []float64
		for i := 0; i < b.N; i++ {
			acf = stats.Autocorrelogram(xs, maxLag)
		}
		b.ReportMetric(acf[0], "r0")
	})
	b.Run("fft-workspace", func(b *testing.B) {
		w := stats.NewWorkspace()
		w.Autocorrelogram(xs, maxLag) // warm the scratch buffers
		b.ReportAllocs()
		b.ResetTimer()
		var acf []float64
		for i := 0; i < b.N; i++ {
			acf = w.Autocorrelogram(xs, maxLag)
		}
		b.ReportMetric(acf[0], "r0")
	})
}

// --- Ablations --------------------------------------------------------

// BenchmarkConflictTrackerAblation compares the practical
// generation/Bloom tracker against the ideal LRU stack on the same
// cache-channel scenario: detection quality (peak lag/value) and run
// cost.
func BenchmarkConflictTrackerAblation(b *testing.B) {
	for _, ideal := range []bool{false, true} {
		name := "generational"
		if ideal {
			name = "ideal-lru-stack"
		}
		b.Run(name, func(b *testing.B) {
			var peak float64
			for i := 0; i < b.N; i++ {
				res, err := cchunter.Scenario{
					Channel:       cchunter.ChannelSharedCache,
					BandwidthBPS:  1000,
					Message:       cchunter.RandomMessage(16, 1),
					CacheSets:     256,
					QuantumCycles: 25_000_000,
					IdealTracker:  ideal,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Report.Detected {
					b.Fatal("channel missed")
				}
				peak = res.Report.Oscillation.Best.PeakValue
			}
			b.ReportMetric(peak, "peak")
		})
	}
}

// BenchmarkTrackerMicro compares the trackers' per-access cost on a
// random access stream. The access→tracker path is the simulator's
// innermost loop; allocs/op must read 0 for both trackers.
func BenchmarkTrackerMicro(b *testing.B) {
	c := cache.MustNew(cache.Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 8, HitLatency: 12})
	trackers := map[string]conflict.Tracker{
		"generational":    conflict.MustNewGenerational(conflict.GenerationalConfig{TotalBlocks: c.NumBlocks()}),
		"ideal-lru-stack": conflict.MustNewIdeal(c.NumBlocks()),
	}
	for name, tr := range trackers {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			rng := stats.NewRNG(7)
			tr.Reset()
			for i := 0; i < b.N; i++ {
				addr := uint64(rng.Intn(1<<15)) << 6
				r := c.Access(addr, uint8(rng.Intn(8)))
				tr.Observe(conflict.Observation{
					LineAddr: r.LineAddr, Set: r.Set, Hit: r.Hit,
					Evicted: r.Evicted, EvictedLine: r.EvictedLine, EvictedOwner: r.EvictedOwner,
				})
			}
		})
	}
}

// BenchmarkConflictTracker pits the flat, slab-allocated trackers
// against the retained map-based reference build of the ideal LRU
// stack on identical pre-generated observation streams (no cache in
// the loop, so the numbers isolate tracker cost). The flat trackers
// must report 0 allocs/op; the reference shows what the rewrite
// removed.
func BenchmarkConflictTracker(b *testing.B) {
	const capacity = 1 << 12
	stream := make([]conflict.Observation, 1<<16)
	rng := stats.NewRNG(11)
	for i := range stream {
		o := conflict.Observation{
			LineAddr: uint64(rng.Intn(4 * capacity)),
			Hit:      rng.Intn(3) == 0,
		}
		if !o.Hit && rng.Intn(2) == 0 {
			o.Evicted = true
			o.EvictedLine = uint64(rng.Intn(4 * capacity))
		}
		stream[i] = o
	}
	trackers := map[string]conflict.Tracker{
		"ideal-flat":          conflict.MustNewIdeal(capacity),
		"ideal-map-reference": conflict.MustNewIdealReference(capacity),
		"generational-flat":   conflict.MustNewGenerational(conflict.GenerationalConfig{TotalBlocks: capacity}),
	}
	for name, tr := range trackers {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			tr.Reset()
			for i := 0; i < b.N; i++ {
				tr.Observe(stream[i&(len(stream)-1)])
			}
		})
	}
}

// BenchmarkSeriesFormulationAblation compares the robust ±1/0 couple
// projection (this implementation's default) against the paper's raw
// appearance-order pair-ID series on a noisy conflict train: the raw
// series loses the peak as noise share grows, the couple projection
// only sees the period stretch.
func BenchmarkSeriesFormulationAblation(b *testing.B) {
	mkTrain := func(noiseEvery int) *trace.Train {
		tr := trace.NewTrain(0)
		rng := stats.NewRNG(3)
		cycle := uint64(0)
		n := 0
		for bit := 0; bit < 16; bit++ {
			for s := 0; s < 256; s++ {
				actor, victim := uint8(0), uint8(2)
				if s >= 128 {
					actor, victim = 2, 0
				}
				tr.Append(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss, Actor: actor, Victim: victim, Unit: uint32(s)})
				cycle += 500
				n++
				if noiseEvery > 0 && n%noiseEvery == 0 {
					tr.Append(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss,
						Actor: uint8(3 + rng.Intn(4)), Victim: uint8(3 + rng.Intn(4)), Unit: uint32(rng.Intn(64))})
					cycle += 500
				}
			}
		}
		return tr
	}
	for _, raw := range []bool{false, true} {
		name := "couple-projection"
		if raw {
			name = "raw-pair-ids"
		}
		b.Run(name, func(b *testing.B) {
			tr := mkTrain(4) // 20% noise
			cfg := core.DefaultOscillationConfig(8)
			cfg.RawPairSeries = raw
			var peak float64
			for i := 0; i < b.N; i++ {
				a := core.AnalyzeOscillation(tr, cfg)
				peak = a.PeakValue
			}
			b.ReportMetric(peak, "peak-at-20pct-noise")
		})
	}
}

// BenchmarkDeltaTSweep shows the sensitivity of the bus channel's
// density histogram to the observation window choice (§IV-B's α
// discussion): Δt an order of magnitude off in either direction
// degrades the burst distribution's separation.
func BenchmarkDeltaTSweep(b *testing.B) {
	// One simulated run, analyzed at several Δt values.
	res, err := cchunter.Scenario{
		Channel:       cchunter.ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       cchunter.RandomMessage(32, 1),
		QuantumCycles: 2_500_000,
		RecordRaw:     true,
	}.Run()
	if err != nil {
		b.Fatal(err)
	}
	locks := res.RawTrain.FilterKind(trace.KindBusLock)
	for _, dt := range []uint64{10_000, 100_000, 1_000_000} {
		b.Run("dt="+itoa(dt), func(b *testing.B) {
			var lr float64
			for i := 0; i < b.N; i++ {
				h := stats.NewHistogram(128)
				for _, d := range locks.Densities(0, res.EndCycle, dt, false) {
					h.Add(d)
				}
				lr = core.LikelihoodRatio(h, core.ThresholdDensity(h))
			}
			b.ReportMetric(lr, "LR")
		})
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Parallel experiment runner --------------------------------------

// BenchmarkRunnerParallelism compares the experiment worker pool at
// one worker (the serial path ccrepro -j 1 takes) against GOMAXPROCS
// workers on Figure 12's per-message fan-out — the speedup the
// parallel sweep buys on a multicore host. The determinism gate
// (TestDeterminismAcrossWorkers, ccrepro CI diff) guarantees both
// configurations produce byte-identical results, so time/op is the
// only thing that may differ between the sub-benchmarks.
func BenchmarkRunnerParallelism(b *testing.B) {
	opts := benchOpts
	opts.MessageBits = 16
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("j%d", workers), func(b *testing.B) {
			o := opts
			o.Workers = workers
			for i := 0; i < b.N; i++ {
				r := experiments.Figure12(o, 8)
				if !r.AllDetected {
					b.Fatal("a message escaped detection")
				}
			}
		})
	}
}

// BenchmarkRunnerOverhead measures the pool's own cost per job —
// dispatch, seed derivation, and result collection — with trivial job
// bodies, so regressions in the orchestrator itself are visible
// without simulator noise.
func BenchmarkRunnerOverhead(b *testing.B) {
	jobs := make([]runner.Job, 256)
	for i := range jobs {
		jobs[i] = runner.Job{
			Name: fmt.Sprintf("job-%03d", i),
			Run:  func(seed uint64) (interface{}, error) { return seed, nil },
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(runtime.GOMAXPROCS(0), 1, jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs/op")
}

// BenchmarkEngineThroughput measures raw simulator speed: simulated
// cycles per wall second on a busy 8-context machine.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := cchunter.Scenario{
			Channel:        cchunter.ChannelNone,
			Workloads:      []string{"gobmk", "sjeng", "bzip2", "h264ref", "stream", "stream"},
			DurationQuanta: 8,
			QuantumCycles:  2_500_000,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.EndCycle) / 1000) // "KB" ≈ kilocycles
	}
}

// BenchmarkMetricsOverhead runs the same scenario with the metrics
// registry absent (the default nil fast path every uninstrumented run
// takes — each hot-path hook is one nil check) and attached. The
// disabled sub-benchmark is the shipping configuration: CI's benchmark
// trajectory gate (ccrepro -bench-out vs BENCH_baseline.json)
// pins its cost, and the two sub-benchmarks let a local run quantify
// the enabled-path premium directly.
func BenchmarkMetricsOverhead(b *testing.B) {
	run := func(b *testing.B, reg *cchunter.MetricsRegistry) {
		for i := 0; i < b.N; i++ {
			res, err := cchunter.Scenario{
				Channel:       cchunter.ChannelMemoryBus,
				BandwidthBPS:  1000,
				Message:       cchunter.RandomMessage(32, 1),
				QuantumCycles: 2_500_000,
				Metrics:       reg,
			}.Run()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Report.Detected {
				b.Fatal("channel missed")
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, cchunter.NewMetricsRegistry()) })
}

// BenchmarkExtMitigation runs the post-detection defense study.
func BenchmarkExtMitigation(b *testing.B) {
	opts := benchOpts
	opts.MessageBits = 32
	for i := 0; i < b.N; i++ {
		r := experiments.ExtMitigation(opts)
		for _, row := range r.Rows {
			if row.Mitigation == "" && row.BitErrors != 0 {
				b.Fatalf("%s baseline broken", row.Channel)
			}
		}
	}
}

// BenchmarkExtEvasion runs the §III camouflage sweep.
func BenchmarkExtEvasion(b *testing.B) {
	opts := benchOpts
	opts.MessageBits = 32
	var fullNoiseErr float64
	for i := 0; i < b.N; i++ {
		r := experiments.ExtEvasion(opts)
		fullNoiseErr = r.Rows[len(r.Rows)-1].ErrorRate
	}
	b.ReportMetric(fullNoiseErr, "err-rate-at-full-camouflage")
}
