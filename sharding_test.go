package cchunter

import (
	"reflect"
	"testing"
)

// TestPipelinedMatchesSynchronous pins the conduit's invisibility at
// the whole-pipeline level: a scenario with SPSC-pipelined event
// delivery must produce a deeply equal Result — verdict, decoded bits,
// histograms, trains, fault counters — to the synchronous run. Reuses
// the batching equivalence corpus, which covers all three channels and
// a faulted sensor path.
func TestPipelinedMatchesSynchronous(t *testing.T) {
	for name, sc := range batchingScenarios() {
		sc := sc
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			piped := sc
			piped.Pipelined = true
			got, err := piped.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got.Report.String() != want.Report.String() {
				t.Errorf("pipelined report differs:\n%s\nvs synchronous:\n%s",
					got.Report, want.Report)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("pipelined result differs from synchronous run")
			}
		})
	}
}

// TestRunShardedMatchesSerial pins shard-count determinism: the same
// scenario set run serially, on one shard lane, and on many lanes must
// yield deeply equal results in input order.
func TestRunShardedMatchesSerial(t *testing.T) {
	scs := []Scenario{
		{Channel: ChannelMemoryBus, BandwidthBPS: 1000,
			Message: RandomMessage(12, 3), QuantumCycles: testQuantum},
		{Channel: ChannelIntegerDivider, BandwidthBPS: 1000,
			Message: RandomMessage(12, 4), QuantumCycles: testQuantum},
		{Channel: ChannelMemoryBus, BandwidthBPS: 2000,
			Message: RandomMessage(12, 5), QuantumCycles: testQuantum, Seed: 7},
		{Channel: ChannelRingInterconnect, BandwidthBPS: 1000,
			Message: RandomMessage(12, 9), QuantumCycles: testQuantum, Seed: 9},
		{Channel: ChannelTLB, BandwidthBPS: 1000,
			Message: RandomMessage(12, 13), QuantumCycles: testQuantum, Seed: 13},
		{Channel: ChannelNone, Workloads: []string{"gobmk"},
			DurationQuanta: 2, QuantumCycles: testQuantum},
	}
	want := make([]*Result, len(scs))
	for i, sc := range scs {
		r, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	for _, shards := range []int{1, 3, 8} {
		got, err := RunSharded(shards, scs)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d results, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if got[i].Report.String() != want[i].Report.String() {
				t.Errorf("shards=%d: scenario %d report differs:\n%s\nvs serial:\n%s",
					shards, i, got[i].Report, want[i].Report)
			}
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("shards=%d: scenario %d result differs from serial run", shards, i)
			}
		}
	}
}

// FuzzShardedEquivalence fuzzes scenario parameters and asserts the
// sharded (pipelined SPSC delivery) run is byte-identical to the
// single-engine synchronous run — the tentpole's determinism contract
// under adversarial message/seed/bandwidth combinations.
func FuzzShardedEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(0))
	f.Add(uint64(42), uint8(16), uint8(1))
	f.Add(uint64(0xdead), uint8(4), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, bits uint8, channel uint8) {
		nbits := int(bits%12) + 4
		ch := []Channel{ChannelMemoryBus, ChannelIntegerDivider, ChannelSharedCache,
			ChannelRingInterconnect, ChannelTLB}[channel%5]
		sc := Scenario{
			Channel:       ch,
			BandwidthBPS:  1000,
			Message:       RandomMessage(nbits, seed|1),
			QuantumCycles: testQuantum,
			Seed:          seed | 1,
		}
		if ch == ChannelSharedCache {
			sc.CacheSets = 128
			sc.Message = RandomMessage(nbits%8+2, seed|1)
		}
		want, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		piped := sc
		piped.Pipelined = true
		got, err := piped.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sharded (pipelined) output differs from single-engine run "+
				"(seed=%d bits=%d channel=%v)", seed, nbits, ch)
		}
	})
}
