package cchunter

import (
	"fmt"

	"cchunter/internal/auditor"
	"cchunter/internal/core"
	"cchunter/internal/shard"
	"cchunter/internal/trace"
)

// RunSliced executes one scenario with its observation quanta split
// across `slices` audit lanes (see Scenario.Slices): the single
// simulator engine stays the producer, and the per-slice SPSC conduits
// consume quantum-aligned segments of its event stream in parallel,
// merged deterministically before analysis. The result is
// byte-identical to Scenario.Run at every slice count.
//
// slices <= 1 is the plain serial run.
func RunSliced(slices int, sc Scenario) (*Result, error) {
	sc.Slices = slices
	return sc.Run()
}

// sliceCount resolves the effective lane count for a run: the
// requested Slices, capped at one quantum per lane, degraded to 1 when
// the configuration cannot satisfy the alignment invariant (slice
// boundaries must land on quantum boundaries that are also Δt-window
// boundaries for every monitored unit) or when the streaming daemon —
// an inherently sequential consumer — owns the stream.
func (sc Scenario) sliceCount(cfg normalized) int {
	s := sc.Slices
	if s <= 1 || sc.Stream {
		return 1
	}
	if s > cfg.DurationQuanta {
		s = cfg.DurationQuanta
	}
	for _, k := range sc.monitorKinds() {
		if d := core.DefaultDeltaT(k); d == 0 || cfg.QuantumCycles%d != 0 {
			return 1
		}
	}
	return s
}

// conflictCollector captures raw conflict-miss events in arrival
// order. Slice lanes use it instead of per-lane vector registers: the
// auditor's hardware dedup comparator is keyed on the whole event
// sequence, so the merge replays the concatenated raw captures through
// one comparator serially (auditor.ReplayConflicts) and reproduces the
// global train exactly.
type conflictCollector struct {
	events []trace.Event
}

func (c *conflictCollector) OnEvent(e trace.Event) {
	if e.Kind == trace.KindConflictMiss {
		c.events = append(c.events, e)
	}
}

// OnEvents implements trace.BatchListener.
func (c *conflictCollector) OnEvents(events []trace.Event) {
	for i := range events {
		if events[i].Kind == trace.KindConflictMiss {
			c.events = append(c.events, events[i])
		}
	}
}

// sliceLane is one quantum range's audit machinery: a slice-local
// auditor primed at the lane's start cycle, a raw conflict capture,
// and (once the lane sees its first event) an SPSC conduit whose
// consumer goroutine owns both.
type sliceLane struct {
	aud  *auditor.Auditor
	coll *conflictCollector
	cond *shard.Conduit
	end  uint64 // exclusive end cycle of the lane's quantum range
}

// slicedAudit wires a quantum-sliced run: the splitter (the engine's
// listener) routes the stream across the lanes; finish quiesces and
// merges them.
type slicedAudit struct {
	splitter *shard.Splitter
	lanes    []*sliceLane
	reg      *MetricsRegistry
}

// newSlicedAudit partitions cfg.DurationQuanta observation quanta into
// `slices` contiguous ranges (earlier lanes take the remainder quanta)
// and builds the lane auditors and the splitter. Lane conduits are
// opened lazily by the splitter and sealed as the event frontier
// passes them, so at most the backlogged suffix of lanes ever holds a
// live consumer goroutine.
func newSlicedAudit(slices int, cfg normalized, kinds []trace.Kind, reg *MetricsRegistry, eventBatch int) (*slicedAudit, error) {
	base := cfg.DurationQuanta / slices
	rem := cfg.DurationQuanta % slices
	lanes := make([]*sliceLane, slices)
	bounds := make([]uint64, slices)
	startQ := 0
	for i := range lanes {
		q := base
		if i < rem {
			q++
		}
		start := uint64(startQ) * cfg.QuantumCycles
		end := uint64(startQ+q) * cfg.QuantumCycles
		a, err := auditor.New(auditor.DefaultConfig(cfg.QuantumCycles))
		if err != nil {
			return nil, err
		}
		for _, k := range kinds {
			if err := a.Monitor(k, core.DefaultDeltaT(k)); err != nil {
				return nil, err
			}
		}
		if err := a.StartAt(start); err != nil {
			return nil, err
		}
		a.Instrument(reg)
		lanes[i] = &sliceLane{aud: a, coll: &conflictCollector{}, end: end}
		bounds[i] = end
		startQ += q
	}
	sa := &slicedAudit{lanes: lanes, reg: reg}
	sa.splitter = shard.NewSplitter(bounds,
		func(i int) trace.Listener {
			l := lanes[i]
			l.cond = shard.NewConduit(trace.Tee{l.aud, l.coll}, 0, eventBatch)
			return l.cond
		},
		func(i int) { lanes[i].cond.Seal() },
	)
	return sa, nil
}

// finish is the sliced run's sim → analysis barrier: seal the tail
// lane, drain every opened conduit in lane order, flush each slice
// auditor to its end boundary (recording its trailing quiet quanta),
// stitch the slices into one auditor, and replay the concatenated raw
// conflict captures through its dedup comparator. The returned auditor
// is indistinguishable from one that observed the whole run.
func (sa *slicedAudit) finish(end uint64) (*auditor.Auditor, error) {
	sa.splitter.Finish()
	auds := make([]*auditor.Auditor, len(sa.lanes))
	for i, l := range sa.lanes {
		if l.cond != nil {
			l.cond.Drain()
		}
		flushTo := l.end
		if i == len(sa.lanes)-1 {
			flushTo = end
		}
		l.aud.Flush(flushTo)
		auds[i] = l.aud
	}
	merged, err := auditor.MergeSlices(auds)
	if err != nil {
		return nil, err
	}
	// Instrument before MonitorConflicts so the replayed conflict
	// capture lands in the same metrics the serial path would record
	// (the lanes already tallied the slot-side instruments).
	merged.Instrument(sa.reg)
	if err := merged.MonitorConflicts(); err != nil {
		return nil, fmt.Errorf("re-enabling conflict monitoring: %w", err)
	}
	for _, l := range sa.lanes {
		merged.ReplayConflicts(l.coll.events)
	}
	return merged, nil
}
