// Low-bandwidth stealth: a cache covert channel throttled to the
// paper's 0.1 bps regime, hiding among active tenants. With the
// paper's original pair-identifier series, a full-quantum analysis
// loses the periodicity in the noise; the finer observation windows of
// §VI-A recover it — the Figure 11 result. (This library's default
// detector uses a noise-robust couple projection and catches the
// channel even at full windows; see DESIGN.md §6.)
//
//	go run ./examples/lowbandwidth
package main

import (
	"fmt"

	"cchunter/internal/experiments"
)

func main() {
	r := experiments.Figure11(experiments.Options{Seed: 1, TimeScale: 100})
	fmt.Println(r.Summary())
	fmt.Println()
	fmt.Println("the 0.25x-quantum windows isolate the covert burst from the")
	fmt.Println("surrounding tenant noise, as the paper's sensitivity study shows")
}
