// Defense loop: the workflow the paper proposes in §I — CC-Hunter's
// dynamic detection is "a desirable first step before adopting damage
// control strategies like limiting resource sharing or bandwidth
// reduction". This example detects a divider covert channel, applies
// the divider time-multiplexing defense, and verifies the channel is
// dead while the machine keeps running.
//
//	go run ./examples/defense
package main

import (
	"fmt"
	"log"

	"cchunter"
)

func main() {
	secret := cchunter.RandomMessage(16, 99)
	base := cchunter.Scenario{
		Channel:       cchunter.ChannelIntegerDivider,
		BandwidthBPS:  1000,
		Message:       secret,
		QuantumCycles: 2_500_000,
	}

	// Step 1: CC-Hunter watches an unprotected machine.
	before, err := base.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unprotected machine:")
	fmt.Printf("  spy decoded %d bits with %d errors\n", len(before.Decoded), before.BitErrors)
	fmt.Printf("  detected: %v\n", before.Report.Detected)

	if !before.Report.Detected {
		log.Fatal("expected an alarm")
	}

	// Step 2: the alarm names the divider; the OS time-multiplexes it
	// between the core's hyperthreads.
	base.Mitigation = "tdm"
	after, err := base.Run()
	if err != nil {
		log.Fatal(err)
	}
	errRate := 0.0
	if n := len(after.Decoded); n > 0 {
		errRate = float64(after.BitErrors) / float64(n)
	}
	fmt.Println("\nafter divider time-multiplexing:")
	fmt.Printf("  spy decoded %d bits with %d errors (%.0f%% — coin flipping is 50%%)\n",
		len(after.Decoded), after.BitErrors, errRate*100)
	fmt.Printf("  divider contention events in histograms: %d\n",
		after.DivHistogram.TotalFrom(1))
	fmt.Println("\nthe channel is dead: no cross-context contention, no signal")
}
