// False-alarm audit: run the paper's benign workload pairs — programs
// with bursty memory, lock, and divider behaviour but no covert intent
// — and confirm CC-Hunter stays quiet on every one of them.
//
//	go run ./examples/falsealarm
package main

import (
	"fmt"
	"log"

	"cchunter"
)

func main() {
	pairs := [][2]string{
		{"gobmk", "sjeng"},           // bus-heavy search codes
		{"bzip2", "h264ref"},         // divider-heavy codecs
		{"stream", "stream"},         // memory streamers thrashing the L2
		{"mailserver", "mailserver"}, // fsync lock storms
		{"webserver", "webserver"},   // periodic directory sweeps
	}

	alarms := 0
	for _, pair := range pairs {
		res, err := cchunter.Scenario{
			Channel:        cchunter.ChannelNone,
			Workloads:      []string{pair[0], pair[1]},
			DurationQuanta: 24,
			QuantumCycles:  2_500_000,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		var busLR, divLR float64
		for _, v := range res.Report.Contention {
			switch v.Kind {
			case cchunter.EventBusLock:
				busLR = v.Analysis.LikelihoodRatio
			case cchunter.EventDivContention:
				divLR = v.Analysis.LikelihoodRatio
			}
		}
		peak := 0.0
		if res.Report.Oscillation != nil {
			peak = res.Report.Oscillation.Best.PeakValue
		}
		verdict := "clean"
		if res.Report.Detected {
			verdict = "FALSE ALARM"
			alarms++
		}
		fmt.Printf("%-12s + %-12s  bus LR %.3f   div LR %.3f   cache peak %.3f   %s\n",
			pair[0], pair[1], busLR, divLR, peak, verdict)
	}
	fmt.Printf("\n%d false alarms across %d pairs (the paper reports zero)\n", alarms, len(pairs))
	if alarms > 0 {
		log.Fatal("detector raised a false alarm")
	}
}
