// Quickstart: build a covert timing channel on the simulated machine
// and let CC-Hunter catch it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cchunter"
)

func main() {
	// The secret the trojan leaks: a 64-bit "credit card number".
	secret := cchunter.Uint64Message(0x4111_1111_1111_1111)

	// A memory-bus covert channel at 1000 bits per second: the trojan
	// signals '1' by locking the bus with atomic unaligned accesses,
	// the spy decodes bits from its own memory latencies. Three other
	// processes run alongside, as the threat model requires.
	res, err := cchunter.Scenario{
		Channel:      cchunter.ChannelMemoryBus,
		BandwidthBPS: 1000,
		Message:      secret,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("spy decoded %d bits with %d errors\n", len(res.Decoded), res.BitErrors)
	fmt.Println()
	fmt.Println("CC-Hunter report:")
	fmt.Println(res.Report)
	fmt.Println()

	for _, v := range res.Report.Contention {
		if v.Kind == cchunter.EventBusLock {
			fmt.Printf("bus lock likelihood ratio: %.3f (covert channels stay above 0.9; benign code below 0.5)\n",
				v.Analysis.LikelihoodRatio)
		}
	}
}
