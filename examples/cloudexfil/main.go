// Cloud exfiltration scenario: two "tenant VMs" land on different
// cores of one socket and run a covert channel over the shared L2 (the
// cross-VM situation Ristenpart et al. and Xu et al. demonstrated on
// EC2) while other tenants keep the machine busy. CC-Hunter's
// oscillation detector reads the number of cache sets the channel uses
// straight off the autocorrelogram peak.
//
//	go run ./examples/cloudexfil
package main

import (
	"fmt"
	"log"

	"cchunter"
)

func main() {
	secret := cchunter.RandomMessage(32, 2024)

	res, err := cchunter.Scenario{
		Channel:       cchunter.ChannelSharedCache,
		BandwidthBPS:  1000,
		Message:       secret,
		CacheSets:     256, // G1 and G0: 128 sets each
		QuantumCycles: 25_000_000,
		// Three background tenants keep the machine busy by default
		// (the threat model's "at least three other active processes").
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tenant VMs on different cores share the L2; channel uses %d cache sets\n", 256)
	fmt.Printf("spy decoded %d bits with %d errors\n", len(res.Decoded), res.BitErrors)
	fmt.Println()

	osc := res.Report.Oscillation
	if osc == nil {
		log.Fatal("no oscillation verdict")
	}
	fmt.Printf("conflict-miss train: %d entries across %d observation windows\n",
		res.ConflictTrain.Len(), len(osc.Windows))
	fmt.Printf("autocorrelation peak: %.3f at lag %d  <- reads off the channel's set count\n",
		osc.Best.PeakValue, osc.Best.FundamentalLag)
	fmt.Printf("covert timing channel detected: %v\n", res.Report.Detected)
	fmt.Println()
	fmt.Println("autocorrelogram (first 400 lags):")
	acf := osc.Best.Autocorrelogram
	if len(acf) > 400 {
		acf = acf[:400]
	}
	fmt.Println(asciiSeries(acf, 80, 10))
}

// asciiSeries is a tiny local plotter so the example stays dependency
// free.
func asciiSeries(ys []float64, width, rows int) string {
	if len(ys) == 0 {
		return ""
	}
	min, max := ys[0], ys[0]
	for _, y := range ys {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	span := max - min
	if span == 0 {
		span = 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for i, y := range ys {
		col := i * (width - 1) / (len(ys) - 1)
		row := int(float64(rows-1) * (max - y) / span)
		grid[row][col] = '*'
	}
	out := fmt.Sprintf("max=%.3f\n", max)
	for _, line := range grid {
		out += string(line) + "\n"
	}
	return out + fmt.Sprintf("min=%.3f", min)
}
