// Command covercheck gates statement coverage against a committed
// floor. It parses a `go test -coverprofile` file directly (summing
// covered and total statements, merging duplicate blocks by max
// count, exactly like `go tool cover -func`'s total) and exits
// non-zero when coverage falls below the baseline percentage stored
// in tools/coverage_baseline.txt.
//
// Usage:
//
//	go test -coverprofile=cover.out ./...
//	go run ./tools/covercheck -profile cover.out -baseline tools/coverage_baseline.txt
//
// Raise the baseline deliberately after adding tests; never lower it
// to make CI pass — a drop means the change shipped untested code.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	profilePath := flag.String("profile", "cover.out", "coverage profile from go test -coverprofile")
	baselinePath := flag.String("baseline", "tools/coverage_baseline.txt", "file holding the minimum coverage percentage")
	flag.Parse()

	got, err := profileCoverage(*profilePath)
	if err != nil {
		fatal(err)
	}
	want, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("statement coverage: %.1f%% (baseline %.1f%%)\n", got, want)
	if got < want {
		fatal(fmt.Errorf("coverage %.1f%% fell below the %.1f%% baseline in %s", got, want, *baselinePath))
	}
}

// profileCoverage computes total statement coverage from a profile.
// Each line after the mode header reads
//
//	file.go:startLine.startCol,endLine.endCol numStatements hitCount
//
// The same block can appear more than once (e.g. merged profiles);
// duplicates are folded by taking the maximum hit count.
func profileCoverage(path string) (float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	type block struct {
		stmts int
		count int
	}
	blocks := map[string]block{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(line, "mode:") {
				continue
			}
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return 0, fmt.Errorf("%s: malformed profile line %q", path, line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0, fmt.Errorf("%s: bad statement count in %q", path, line)
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return 0, fmt.Errorf("%s: bad hit count in %q", path, line)
		}
		if b, ok := blocks[fields[0]]; !ok || count > b.count {
			blocks[fields[0]] = block{stmts: stmts, count: count}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	var total, covered int
	for _, b := range blocks {
		total += b.stmts
		if b.count > 0 {
			covered += b.stmts
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("%s: no statements in profile", path)
	}
	return 100 * float64(covered) / float64(total), nil
}

// readBaseline reads the floor percentage; the file holds one number
// (comment lines starting with # are allowed).
func readBaseline(path string) (float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(buf), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return 0, fmt.Errorf("%s: bad baseline %q", path, line)
		}
		return v, nil
	}
	return 0, fmt.Errorf("%s: no baseline value found", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "covercheck:", err)
	os.Exit(1)
}
