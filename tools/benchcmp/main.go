// Command benchcmp compares two ccrepro -bench-out reports and exits
// non-zero when the current run regressed against the baseline.
//
// Usage:
//
//	benchcmp -baseline BENCH_baseline.json -current BENCH_pipeline.json
//	         [-tolerance 0.20] [-alloc-tolerance 0.20] [-metric-tolerance 1e-6]
//	         [-alloc-ceiling 6=100000,8=200000]
//
// Wall-clock comparison across machines is done through each report's
// calibration workload: the baseline's ns are scaled by the ratio of
// the two calibration times before the tolerance applies, so a CI
// runner that is 2× slower than the machine that produced the
// baseline does not trip the gate — only a real slowdown of the
// pipeline relative to raw machine speed does. Detection metrics are
// deterministic given seed and scale and are compared (near-)exactly:
// a "faster" pipeline that changes a likelihood ratio or a peak lag
// is a broken pipeline.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"cchunter/internal/experiments"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	currentPath := flag.String("current", "BENCH_pipeline.json", "freshly generated report")
	tolerance := flag.Float64("tolerance", 0.20, "allowed relative ns regression after calibration scaling")
	allocTol := flag.Float64("alloc-tolerance", -1, "allowed relative allocs/bytes regression (defaults to -tolerance)")
	metricTol := flag.Float64("metric-tolerance", 1e-6, "allowed relative drift in detection metrics")
	allocCeil := flag.String("alloc-ceiling", "", "comma-separated fig=maxAllocs absolute ceilings (e.g. 6=100000): a figure exceeding its ceiling fails regardless of baseline ratios, pinning allocation-flatness against baseline drift")
	flag.Parse()
	if *allocTol < 0 {
		*allocTol = *tolerance
	}

	baseline, err := readReport(*baselinePath)
	if err != nil {
		fatal(err)
	}
	current, err := readReport(*currentPath)
	if err != nil {
		fatal(err)
	}
	if baseline.CalibrationNS <= 0 || current.CalibrationNS <= 0 {
		fatal(fmt.Errorf("non-positive calibration (baseline %d, current %d)",
			baseline.CalibrationNS, current.CalibrationNS))
	}
	speed := float64(current.CalibrationNS) / float64(baseline.CalibrationNS)
	fmt.Printf("machine speed ratio (current/baseline calibration): %.3f\n", speed)

	base := map[string]experiments.BenchFigure{}
	for _, f := range baseline.Figures {
		base[f.ID] = f
	}

	ceilings, err := parseCeilings(*allocCeil)
	if err != nil {
		fatal(err)
	}

	failures := 0
	seen := map[string]bool{}
	for _, cur := range current.Figures {
		seen[cur.ID] = true
		b, ok := base[cur.ID]
		if !ok {
			fmt.Printf("fig %-3s NEW    %12dns (no baseline)\n", cur.ID, cur.NS)
			continue
		}
		scaledNS := float64(b.NS) * speed
		ratio := float64(cur.NS) / scaledNS
		status := "ok"
		if ratio > 1+*tolerance {
			status = "REGRESSED"
			failures++
		}
		fmt.Printf("fig %-3s %-9s %12dns vs %12.0fns scaled baseline (%.2f×)\n",
			cur.ID, status, cur.NS, scaledNS, ratio)
		// Allocation counts and bytes are machine-independent, so no
		// calibration scaling: they get their own tolerance.
		if b.Allocs > 0 {
			aRatio := float64(cur.Allocs) / float64(b.Allocs)
			if aRatio > 1+*allocTol {
				fmt.Printf("fig %-3s ALLOCS-REGRESSED %d vs %d (%.2f×)\n",
					cur.ID, cur.Allocs, b.Allocs, aRatio)
				failures++
			}
		}
		if b.Bytes > 0 {
			bRatio := float64(cur.Bytes) / float64(b.Bytes)
			if bRatio > 1+*allocTol {
				fmt.Printf("fig %-3s BYTES-REGRESSED  %d vs %d (%.2f×)\n",
					cur.ID, cur.Bytes, b.Bytes, bRatio)
				failures++
			}
		}
		if limit, ok := ceilings[cur.ID]; ok {
			if cur.Allocs > limit {
				fmt.Printf("fig %-3s ALLOC-CEILING    %d > %d\n", cur.ID, cur.Allocs, limit)
				failures++
			} else {
				fmt.Printf("fig %-3s allocs %d within ceiling %d\n", cur.ID, cur.Allocs, limit)
			}
		}
		failures += compareMetrics(cur.ID, b.Metrics, cur.Metrics, *metricTol)
	}
	for _, b := range baseline.Figures {
		if !seen[b.ID] {
			fmt.Printf("fig %-3s MISSING from current report\n", b.ID)
			failures++
		}
	}
	for id := range ceilings {
		if !seen[id] {
			// A ceiling on an absent figure would silently gate nothing.
			fmt.Printf("fig %-3s ALLOC-CEILING set but figure missing from current report\n", id)
			failures++
		}
	}

	if failures > 0 {
		fmt.Printf("benchcmp: %d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchcmp: all figures within tolerance")
}

// compareMetrics checks every metric the two reports share and flags
// both drift and disappearance; metrics only the current report has
// are new instrumentation, not a failure.
func compareMetrics(id string, base, cur map[string]float64, tol float64) int {
	failures := 0
	for k, bv := range base {
		cv, ok := cur[k]
		if !ok {
			fmt.Printf("fig %-3s METRIC-MISSING %s\n", id, k)
			failures++
			continue
		}
		if !close(bv, cv, tol) {
			fmt.Printf("fig %-3s METRIC-DRIFT   %s: %g -> %g\n", id, k, bv, cv)
			failures++
		}
	}
	return failures
}

// close reports whether two metric values agree within the relative
// tolerance (absolute near zero).
func close(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff <= tol
	}
	return diff <= tol*scale
}

func readReport(path string) (experiments.BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return experiments.BenchReport{}, err
	}
	defer f.Close()
	return experiments.ReadBenchReport(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}

// parseCeilings parses the -alloc-ceiling spec: comma-separated
// fig=maxAllocs pairs.
func parseCeilings(spec string) (map[string]uint64, error) {
	out := map[string]uint64{}
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		id, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("bad -alloc-ceiling entry %q (want fig=maxAllocs)", part)
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -alloc-ceiling limit %q: %v", part, err)
		}
		out[id] = n
	}
	return out, nil
}
