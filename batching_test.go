package cchunter

import (
	"reflect"
	"testing"
)

// batchingScenarios are the equivalence corpus: every covert channel
// plus a faulted-sensor run, so the regression covers all three event
// kinds, the auditor's slot and oscillator paths, and a fault-injector
// stage between batcher and listeners.
func batchingScenarios() map[string]Scenario {
	return map[string]Scenario{
		"bus": {
			Channel:       ChannelMemoryBus,
			BandwidthBPS:  1000,
			Message:       RandomMessage(16, 3),
			QuantumCycles: testQuantum,
		},
		"divider": {
			Channel:       ChannelIntegerDivider,
			BandwidthBPS:  1000,
			Message:       RandomMessage(16, 4),
			QuantumCycles: testQuantum,
		},
		"cache": {
			Channel:       ChannelSharedCache,
			BandwidthBPS:  1000,
			Message:       RandomMessage(8, 5),
			CacheSets:     256,
			QuantumCycles: testQuantum,
		},
		"ring": {
			Channel:       ChannelRingInterconnect,
			BandwidthBPS:  1000,
			Message:       RandomMessage(12, 9),
			QuantumCycles: testQuantum,
		},
		"tlb": {
			Channel:       ChannelTLB,
			BandwidthBPS:  1000,
			Message:       RandomMessage(16, 13),
			QuantumCycles: testQuantum,
		},
		"bus-faulted": {
			Channel:       ChannelMemoryBus,
			BandwidthBPS:  1000,
			Message:       RandomMessage(16, 3),
			QuantumCycles: testQuantum,
			Faults:        FaultConfig{DropProb: 0.05, JitterCycles: 100, Seed: 9},
			RecordRaw:     true,
		},
	}
}

// TestBatchedDeliveryMatchesPerEvent pins the batched event-delivery
// contract at the whole-pipeline level: a scenario run with per-event
// callbacks (eventBatch 1) and runs at several batch sizes — the
// default 512 and a prime that misaligns with every internal buffer —
// must produce deeply equal Results: identical verdicts, decoded
// bits, histograms, trains, and fault counters. Batching changes when
// consumers see events, never what they see.
func TestBatchedDeliveryMatchesPerEvent(t *testing.T) {
	for name, sc := range batchingScenarios() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			perEvent := sc
			perEvent.eventBatch = 1
			want, err := perEvent.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range []int{0, 37} {
				batched := sc
				batched.eventBatch = batch
				got, err := batched.Run()
				if err != nil {
					t.Fatal(err)
				}
				if got.Report.String() != want.Report.String() {
					t.Errorf("batch=%d: report differs:\n%s\nvs per-event:\n%s",
						batch, got.Report, want.Report)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("batch=%d: result differs from per-event run", batch)
				}
			}
		})
	}
}

// BenchmarkScenarioEventDelivery measures the whole pipeline — units,
// fault-free delivery chain, auditor — under per-event callbacks
// versus batched slice delivery. The bus channel's lock train plus a
// busy L2 makes event delivery a visible fraction of run time.
func BenchmarkScenarioEventDelivery(b *testing.B) {
	base := Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       RandomMessage(32, 3),
		QuantumCycles: testQuantum,
		RecordRaw:     true,
	}
	for _, cfg := range []struct {
		name  string
		batch int
	}{
		{"per-event", 1},
		{"batched", 0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			sc := base
			sc.eventBatch = cfg.batch
			for i := 0; i < b.N; i++ {
				res, err := sc.Run()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Report.Detected {
					b.Fatal("bus channel missed")
				}
			}
		})
	}
}
