package cchunter

import (
	"testing"
)

// testQuantum keeps unit-test scenarios fast: a 1 ms quantum instead
// of the paper's 100 ms. Detection parameters (Δt, thresholds) are
// absolute-cycle quantities and unaffected.
const testQuantum = 2_500_000

func TestBusScenarioDetectedAndDecoded(t *testing.T) {
	msg := RandomMessage(16, 3)
	res, err := Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       msg,
		QuantumCycles: testQuantum,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors != 0 {
		t.Errorf("bus channel bit errors = %d of %d decoded", res.BitErrors, len(res.Decoded))
	}
	if !res.Report.Detected {
		t.Errorf("bus channel not detected:\n%s", res.Report)
	}
	var busVerdict *ContentionVerdict
	for i := range res.Report.Contention {
		if res.Report.Contention[i].Kind == EventBusLock {
			busVerdict = &res.Report.Contention[i]
		}
	}
	if busVerdict == nil || !busVerdict.Analysis.Detected {
		t.Fatalf("bus verdict missing or negative: %+v", busVerdict)
	}
	if busVerdict.Analysis.LikelihoodRatio < 0.9 {
		t.Errorf("bus LR = %v, want ≥0.9 as in the paper", busVerdict.Analysis.LikelihoodRatio)
	}
	if res.BusHistogram.TotalFrom(1) == 0 {
		t.Error("bus histogram empty")
	}
	if len(res.PerBitSeries) == 0 {
		t.Error("per-bit latency series missing")
	}
}

func TestDividerScenarioDetected(t *testing.T) {
	msg := RandomMessage(12, 5)
	res, err := Scenario{
		Channel:       ChannelIntegerDivider,
		BandwidthBPS:  1000,
		Message:       msg,
		QuantumCycles: testQuantum,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors != 0 {
		t.Errorf("divider bit errors = %d", res.BitErrors)
	}
	if !res.Report.Detected {
		t.Errorf("divider channel not detected:\n%s", res.Report)
	}
	var v *ContentionVerdict
	for i := range res.Report.Contention {
		if res.Report.Contention[i].Kind == EventDivContention {
			v = &res.Report.Contention[i]
		}
	}
	if v == nil || !v.Analysis.Detected {
		t.Fatalf("divider verdict missing or negative")
	}
	if v.Analysis.LikelihoodRatio < 0.9 {
		t.Errorf("divider LR = %v", v.Analysis.LikelihoodRatio)
	}
	// The burst distribution sits at high densities (paper: bins
	// 84–105 for Δt=500).
	if v.Analysis.BurstMean < 40 {
		t.Errorf("divider burst mean %v too low", v.Analysis.BurstMean)
	}
}

func TestCacheScenarioDetected(t *testing.T) {
	msg := RandomMessage(10, 7)
	// A 25M-cycle quantum holds 10 bits at 1000 bps; the per-quantum
	// oscillation analysis needs several periods per window, just as
	// the paper's 0.1 s quantum holds ~100 bits.
	res, err := Scenario{
		Channel:       ChannelSharedCache,
		BandwidthBPS:  1000,
		Message:       msg,
		CacheSets:     256,
		QuantumCycles: 25_000_000,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors != 0 {
		t.Errorf("cache bit errors = %d (ratios %v)", res.BitErrors, res.PerBitSeries)
	}
	osc := res.Report.Oscillation
	if osc == nil || !osc.Detected {
		t.Fatalf("cache channel not detected:\n%s", res.Report)
	}
	if osc.Best.FundamentalLag < 220 || osc.Best.FundamentalLag > 310 {
		t.Errorf("fundamental lag = %d, want ≈256", osc.Best.FundamentalLag)
	}
	if osc.Best.PeakValue < 0.7 {
		t.Errorf("peak = %v, want ≥0.7", osc.Best.PeakValue)
	}
	if res.ConflictTrain.Len() == 0 {
		t.Error("conflict train empty")
	}
}

func TestBenignScenarioNoFalseAlarm(t *testing.T) {
	res, err := Scenario{
		Channel:        ChannelNone,
		Workloads:      []string{"gobmk", "sjeng", "bzip2", "h264ref"},
		DurationQuanta: 8,
		QuantumCycles:  testQuantum,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Detected {
		t.Errorf("false alarm on benign workloads:\n%s", res.Report)
	}
	if res.Sent != nil || res.Decoded != nil {
		t.Error("benign scenario should carry no message")
	}
}

func TestScenarioWithInterference(t *testing.T) {
	// The threat model's environment: channel plus other active
	// processes. Detection must survive the noise.
	msg := RandomMessage(12, 11)
	res, err := Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       msg,
		Workloads:     []string{"mailserver", "webserver"},
		QuantumCycles: testQuantum,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Detected {
		t.Errorf("bus channel under interference not detected:\n%s", res.Report)
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := (Scenario{Channel: "quantum-entanglement"}).Run(); err == nil {
		t.Error("unknown channel should error")
	}
	if _, err := (Scenario{Channel: ChannelNone, Workloads: []string{"doom"}, DurationQuanta: 1, QuantumCycles: testQuantum}).Run(); err == nil {
		t.Error("unknown workload should error")
	}
	if _, err := (Scenario{BandwidthBPS: -2}).Run(); err == nil {
		t.Error("negative bandwidth should error")
	}
	tooMany := make([]string, 10)
	for i := range tooMany {
		tooMany[i] = "stream"
	}
	if _, err := (Scenario{Channel: ChannelNone, Workloads: tooMany, DurationQuanta: 1, QuantumCycles: testQuantum}).Run(); err == nil {
		t.Error("overcommitted contexts should error")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Scenario{
			Channel:       ChannelMemoryBus,
			BandwidthBPS:  1000,
			Message:       RandomMessage(8, 2),
			QuantumCycles: testQuantum,
			Seed:          9,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.BusHistogram.String() != b.BusHistogram.String() {
		t.Error("histograms differ between identical runs")
	}
	if len(a.Decoded) != len(b.Decoded) {
		t.Fatal("decoded lengths differ")
	}
	for i := range a.Decoded {
		if a.Decoded[i] != b.Decoded[i] {
			t.Fatal("decoded bits differ")
		}
	}
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) < 8 {
		t.Errorf("workload list too short: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

func TestEstimateAuditorCost(t *testing.T) {
	m := EstimateAuditorCost()
	if m.HistogramBuffers.AreaMM2 <= 0 || m.Registers.PowerMW <= 0 || m.ConflictMissDetector.LatencyNS <= 0 {
		t.Errorf("cost model degenerate: %+v", m)
	}
}

func TestUint64Message(t *testing.T) {
	bits := Uint64Message(1)
	if len(bits) != 64 || bits[63] != 1 || bits[0] != 0 {
		t.Error("Uint64Message wrong")
	}
}

func TestRecordRaw(t *testing.T) {
	res, err := Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       RandomMessage(8, 4),
		QuantumCycles: testQuantum,
		RecordRaw:     true,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RawTrain == nil || res.RawTrain.Len() == 0 {
		t.Error("raw train missing")
	}
}

func TestDetectorOverrides(t *testing.T) {
	// An absurdly high likelihood threshold suppresses the bus verdict.
	res, err := Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       RandomMessage(8, 3),
		QuantumCycles: testQuantum,
		Detector:      &DetectorOverrides{LikelihoodThreshold: 0.999999},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Report.Contention {
		if v.Kind == EventBusLock && v.Analysis.HasBursts && v.Analysis.LikelihoodRatio < 0.999999 {
			t.Errorf("override ignored: %+v", v.Analysis)
		}
	}
	// Window clipping override.
	res, err = Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       RandomMessage(8, 3),
		QuantumCycles: testQuantum,
		Detector:      &DetectorOverrides{WindowQuanta: 2},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Report.Contention {
		if v.Kind == EventBusLock && v.Analysis.QuantaAnalyzed > 2 {
			t.Errorf("window override ignored: analyzed %d quanta", v.Analysis.QuantaAnalyzed)
		}
	}
}

func TestMitigationValidation(t *testing.T) {
	if _, err := (Scenario{
		Channel:       ChannelMemoryBus,
		Message:       RandomMessage(4, 1),
		QuantumCycles: testQuantum,
		Mitigation:    "prayer",
	}).Run(); err == nil {
		t.Error("unknown mitigation should error")
	}
}

func TestMitigationNeutralizesBusChannel(t *testing.T) {
	msg := RandomMessage(16, 5)
	base, err := Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       msg,
		QuantumCycles: testQuantum,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	defended, err := Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       msg,
		QuantumCycles: testQuantum,
		Mitigation:    "buslimit",
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if base.BitErrors != 0 {
		t.Fatalf("baseline has %d errors", base.BitErrors)
	}
	if rate := float64(defended.BitErrors) / float64(len(defended.Decoded)); rate < 0.25 {
		t.Errorf("bus limiter left the channel usable: error rate %.2f", rate)
	}
}

func TestMitigationFlipsDividerVerdict(t *testing.T) {
	// The strongest end-to-end claim a mitigation can make: the same
	// channel configuration that trips the detector runs clean under
	// the defense. TDM makes cross-context divider contention
	// impossible, so the verdict itself must flip, not just degrade.
	msg := RandomMessage(12, 5)
	base := Scenario{
		Channel:       ChannelIntegerDivider,
		BandwidthBPS:  1000,
		Message:       msg,
		QuantumCycles: testQuantum,
	}
	unmitigated, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !unmitigated.Report.Detected {
		t.Fatalf("baseline divider channel not detected:\n%s", unmitigated.Report)
	}
	defended := base
	defended.Mitigation = "tdm"
	mitigated, err := defended.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mitigated.Report.Detected {
		t.Errorf("verdict did not flip under tdm:\n%s", mitigated.Report)
	}
}

func TestEvasionNoiseRaisesErrors(t *testing.T) {
	msg := RandomMessage(16, 5)
	res, err := Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       msg,
		QuantumCycles: testQuantum,
		EvasionNoise:  1.0,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors == 0 {
		t.Error("full camouflage should corrupt the spy's decoding")
	}
	if !res.Report.Detected {
		t.Errorf("camouflaged channel escaped detection:\n%s", res.Report)
	}
}
