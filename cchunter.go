// Package cchunter is a from-scratch reproduction of "CC-Hunter:
// Uncovering Covert Timing Channels on Shared Processor Hardware"
// (Chen & Venkataramani, MICRO 2014).
//
// The library bundles three layers:
//
//   - a deterministic discrete-event simulator of an SMT multicore
//     (internal/sim) with the shared hardware the paper's channels
//     exploit: a lockable memory bus, per-core integer dividers, and a
//     hyperthread-shared L2 cache with conflict-miss tracking;
//   - the CC-Auditor hardware model (internal/auditor): event density
//     histogram buffers and conflict-miss vector registers;
//   - the detection algorithms (internal/core): recurrent burst
//     pattern detection and oscillatory pattern detection.
//
// The public API is Scenario: describe a machine, optionally a covert
// channel (memory bus, integer divider, or shared cache) with its
// bandwidth and message, plus benign workloads — then Run it and
// inspect the Result's detection Report and raw observables.
//
//	msg := cchunter.RandomMessage(64, 1)
//	res, err := cchunter.Scenario{
//		Channel:      cchunter.ChannelMemoryBus,
//		BandwidthBPS: 1000,
//		Message:      msg,
//	}.Run()
//
// Every run is bit-for-bit reproducible for a given Scenario: the
// simulator has no dependence on wall-clock time or the Go runtime's
// scheduling.
package cchunter

import (
	"cchunter/internal/channels"
	"cchunter/internal/stats"
)

// Channel selects which covert timing channel a scenario runs.
type Channel string

// The covert channels the paper evaluates, plus ChannelNone for
// benign/false-alarm scenarios and two post-paper channels on the same
// detection machinery: the slotted ring interconnect (cross-core slice
// traffic) and the hyperthread-shared TLB (accessed-translation
// evictions).
const (
	ChannelNone             Channel = "none"
	ChannelMemoryBus        Channel = "bus"
	ChannelIntegerDivider   Channel = "divider"
	ChannelSharedCache      Channel = "cache"
	ChannelRingInterconnect Channel = "ring"
	ChannelTLB              Channel = "tlb"
)

// RandomMessage generates an n-bit random message, the experiments'
// stand-in for the paper's randomly-chosen 64-bit credit card number.
func RandomMessage(n int, seed uint64) []int {
	return channels.RandomMessage(n, seed)
}

// Uint64Message encodes a 64-bit value as bits, MSB first.
func Uint64Message(v uint64) []int {
	return stats.Uint64Bits(v)
}

// BitErrors counts positions where decoded differs from sent.
func BitErrors(sent, decoded []int) int {
	return channels.BitErrors(sent, decoded)
}
