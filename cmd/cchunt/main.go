// Command cchunt runs one CC-Hunter detection scenario and prints the
// verdict.
//
// Usage:
//
//	cchunt -channel bus|divider|cache|ring|tlb|none [-bps 1000] [-bits 64]
//	       [-sets 512] [-workloads gobmk,sjeng] [-quanta 0]
//	       [-quantum 250000000] [-divisor 1] [-ideal] [-seed 1]
//	       [-faults drop=0.05,jitter=200] [-v] [-metrics-addr :8080]
//	       [-evade-jitter 0] [-evade-duty 0] [-fec]
//	       [-stream] [-start-quanta 0] [-watchdog 30s] [-record flight.json]
//	       [-no-pool] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Examples:
//
//	cchunt -channel bus -bps 1000            # detect a bus channel
//	cchunt -channel cache -sets 256 -v       # cache channel, verbose
//	cchunt -channel ring                     # ring-interconnect channel
//	cchunt -channel tlb -fec                 # TLB channel, FEC-framed
//	cchunt -channel none -workloads stream,stream   # false-alarm check
//	cchunt -channel bus -faults drop=0.05    # degraded sensor path
//	cchunt -channel bus -evade-duty 0.06     # adaptive evader vs detector
//	cchunt -channel cache -metrics-addr :8080   # live pipeline metrics
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"cchunter"
	"cchunter/internal/pool"
)

func main() {
	channel := flag.String("channel", "bus", "covert channel: bus, divider, cache, ring, tlb, none")
	bps := flag.Float64("bps", 1000, "channel bandwidth in bits per second")
	bits := flag.Int("bits", 64, "random message length in bits")
	sets := flag.Int("sets", 512, "cache sets used by the cache channel")
	workloads := flag.String("workloads", "", "comma-separated benign workloads (see -list)")
	list := flag.Bool("list", false, "list available workloads and exit")
	quanta := flag.Int("quanta", 0, "observation quanta (0 = enough for the message)")
	startQuanta := flag.Int("start-quanta", 0, "delay the channel's first bit by this many benign quanta (gives -stream a change to date)")
	quantum := flag.Uint64("quantum", 0, "OS time quantum in cycles (0 = paper's 250M)")
	divisor := flag.Int("divisor", 1, "oscillation observation windows per quantum")
	ideal := flag.Bool("ideal", false, "use the ideal LRU-stack conflict tracker")
	mitigation := flag.String("mitigation", "", "defense to apply: buslimit, partition, tdm, clockfuzz")
	faultSpec := flag.String("faults", "", "sensor fault spec, comma-separated key=value (keys: "+
		strings.Join(cchunter.FaultSpecKeys(), ", ")+")")
	seed := flag.Uint64("seed", 1, "random seed")
	evadeJitter := flag.Float64("evade-jitter", 0, "adaptive evader period jitter in [0, 0.5] (0 = strictly periodic slots)")
	evadeDuty := flag.Float64("evade-duty", 0, "adaptive evader amplitude duty cycle in (0, 1] (0 = full amplitude)")
	fec := flag.Bool("fec", false, "frame the message with two-layer FEC (Berger-checked words + XOR group parity)")
	metricsAddr := flag.String("metrics-addr", "", "serve live pipeline metrics as JSON on this address (e.g. :8080) for the duration of the run")
	streamMode := flag.Bool("stream", false, "streaming bounded-memory detection (verdict identical; adds onset estimates)")
	pipelined := flag.Bool("pipelined", false, "pipeline event delivery to the auditor through an SPSC ring on its own goroutine (verdict byte-identical)")
	slices := flag.Int("slices", 0, "split the run's observation quanta across this many quantum-sliced audit lanes, merged deterministically before analysis (0/1 = serial; verdict byte-identical)")
	watchdog := flag.Duration("watchdog", 0, "analysis watchdog timeout; overrun or panic yields a degraded verdict (0 = off)")
	record := flag.String("record", "", "write a flight-recorder capture (raw events around the verdict) to this file for cctrace replay")
	verbose := flag.Bool("v", false, "print histograms and per-window detail")
	noPool := flag.Bool("no-pool", false, "disable analysis buffer pooling (debugging aid; output is identical either way)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	pool.SetEnabled(!*noPool)

	if *list {
		fmt.Println("workloads:", strings.Join(cchunter.WorkloadNames(), ", "))
		return
	}

	// Validate enumerated flags up front: a typo'd channel or mitigation
	// is a usage error (exit 2 with usage), not a runtime failure.
	switch *channel {
	case "bus", "divider", "cache", "ring", "tlb", "none", "":
	default:
		usageError("unknown channel %q (want bus, divider, cache, ring, tlb, or none)", *channel)
	}
	switch *mitigation {
	case "", "buslimit", "partition", "tdm", "clockfuzz":
	default:
		usageError("unknown mitigation %q (want buslimit, partition, tdm, or clockfuzz)", *mitigation)
	}
	faultCfg, err := cchunter.ParseFaultSpec(*faultSpec)
	if err != nil {
		usageError("bad -faults spec: %v", err)
	}

	sc := cchunter.Scenario{
		Channel:            cchunter.Channel(*channel),
		BandwidthBPS:       *bps,
		Message:            cchunter.RandomMessage(*bits, *seed),
		CacheSets:          *sets,
		DurationQuanta:     *quanta,
		ChannelStartQuanta: *startQuanta,
		QuantumCycles:      *quantum,
		ObservationDivisor: *divisor,
		IdealTracker:       *ideal,
		Mitigation:         *mitigation,
		Faults:             faultCfg,
		Seed:               *seed,
		Stream:             *streamMode,
		Pipelined:          *pipelined,
		Slices:             *slices,
		Watchdog:           *watchdog,
		EvaderJitter:       *evadeJitter,
		EvaderDuty:         *evadeDuty,
		FECFrame:           *fec,
	}
	if *record != "" {
		sc.FlightEvents = -1 // default ring capacity
	}
	if *workloads != "" {
		sc.Workloads = strings.Split(*workloads, ",")
	}
	if sc.Channel == cchunter.ChannelNone {
		sc.Message = nil
	}

	var reg *cchunter.MetricsRegistry
	if *metricsAddr != "" {
		reg = cchunter.NewMetricsRegistry()
		sc.Metrics = reg
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			usageError("bad -metrics-addr: %v", err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/\n", ln.Addr())
		go func() { _ = http.Serve(ln, cchunter.MetricsHandler(reg)) }()
	}

	stopProfiles := startProfiles(*cpuProfile, *memProfile)

	res, err := sc.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cchunt:", err)
		stopProfiles()
		os.Exit(2)
	}

	fmt.Printf("simulated %.3f s of machine time (%d quanta)\n",
		float64(res.EndCycle)/2.5e9, res.EndCycle/res.QuantumCycles)
	if sc.Channel != cchunter.ChannelNone {
		fmt.Printf("channel: %s at %g bps, %d bits decoded, %d errors\n",
			sc.Channel, *bps, len(res.Decoded), res.BitErrors)
	}
	if fs := res.FaultStats; fs != nil {
		fmt.Printf("sensor faults: %d/%d events lost (%.1f%%), %d corrupted\n",
			fs.Lost(), fs.Seen, 100*fs.LossRate(), fs.CtxFlipped+fs.CtxSmeared)
	}
	fmt.Println(res.Report)
	if s := res.Report.Streaming; s != nil {
		for _, o := range s.Onsets {
			if !o.Detected {
				continue
			}
			fmt.Printf("onset: %s change at cycle %d (%.3f s), alarm fired at cycle %d\n",
				o.Kind, o.OnsetCycle, float64(o.OnsetCycle)/2.5e9, o.FiredCycle)
		}
		if s.EventsShed > 0 {
			fmt.Printf("load shedding: %d events dropped at the ingest queue\n", s.EventsShed)
		}
	}
	if *record != "" && res.Flight != nil {
		if err := res.Flight.WriteFile(*record); err != nil {
			fmt.Fprintln(os.Stderr, "cchunt:", err)
			stopProfiles()
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "flight: %d events (%s) -> %s\n",
			len(res.Flight.Events), res.Flight.Reason, *record)
	}

	if *verbose {
		if res.BusHistogram != nil && res.BusHistogram.TotalFrom(1) > 0 {
			fmt.Println("\nbus lock density histogram:")
			fmt.Println(res.BusHistogram)
		}
		if res.DivHistogram != nil && res.DivHistogram.TotalFrom(1) > 0 {
			fmt.Println("divider contention density histogram:")
			fmt.Println(res.DivHistogram)
		}
		if osc := res.Report.Oscillation; osc != nil {
			for i, w := range osc.Windows {
				fmt.Printf("window %d: %d events, peak %.3f at lag %d, harmonics %d, detected=%v\n",
					i, w.Events, w.PeakValue, w.FundamentalLag, w.Harmonics, w.Detected)
			}
		}
	}

	stopProfiles()
	if res.Report.Detected {
		os.Exit(1) // grep-able and script-friendly: alarm = non-zero
	}
}

// startProfiles begins CPU profiling when requested and returns the
// function that stops it and writes the heap profile. Callers must
// invoke it before every exit from a profiled run — deferred calls
// would be skipped by os.Exit, and cchunt exits non-zero by design
// when it detects a channel.
func startProfiles(cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cchunt:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cchunt:", err)
			os.Exit(2)
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cchunt:", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cchunt:", err)
		}
	}
}

// usageError prints a message plus flag usage and exits 2, the
// conventional "bad invocation" code (distinct from exit 1 = alarm).
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cchunt: "+format+"\n\n", args...)
	flag.Usage()
	os.Exit(2)
}
