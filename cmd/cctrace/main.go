// Command cctrace runs a scenario and dumps the raw indicator-event
// trains and density histograms for offline analysis.
//
// Usage:
//
//	cctrace -channel bus [-bps 1000] [-bits 16] [-out trace.csv]
//	        [-kind all|bus-lock|div-contention|conflict-miss]
//	        [-ascii]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cchunter"
)

func main() {
	channel := flag.String("channel", "bus", "covert channel: bus, divider, cache, none")
	bps := flag.Float64("bps", 1000, "channel bandwidth in bits per second")
	bits := flag.Int("bits", 16, "random message length")
	sets := flag.Int("sets", 512, "cache sets for the cache channel")
	workloads := flag.String("workloads", "", "comma-separated benign workloads")
	quanta := flag.Int("quanta", 0, "observation quanta (0 = auto)")
	quantum := flag.Uint64("quantum", 0, "OS time quantum in cycles (0 = 250M)")
	out := flag.String("out", "", "CSV output path (default stdout)")
	kind := flag.String("kind", "all", "event kind filter: all, bus-lock, div-contention, conflict-miss")
	ascii := flag.Bool("ascii", false, "print an ASCII raster instead of CSV")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	sc := cchunter.Scenario{
		Channel:        cchunter.Channel(*channel),
		BandwidthBPS:   *bps,
		Message:        cchunter.RandomMessage(*bits, *seed),
		CacheSets:      *sets,
		DurationQuanta: *quanta,
		QuantumCycles:  *quantum,
		Seed:           *seed,
		RecordRaw:      true,
	}
	if *workloads != "" {
		sc.Workloads = strings.Split(*workloads, ",")
	}
	if sc.Channel == cchunter.ChannelNone {
		sc.Message = nil
	}
	res, err := sc.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cctrace:", err)
		os.Exit(2)
	}

	train := res.RawTrain
	switch *kind {
	case "all":
	case cchunter.EventBusLock.String():
		train = train.FilterKind(cchunter.EventBusLock)
	case cchunter.EventDivContention.String():
		train = train.FilterKind(cchunter.EventDivContention)
	case cchunter.EventConflictMiss.String():
		train = train.FilterKind(cchunter.EventConflictMiss)
	default:
		fmt.Fprintf(os.Stderr, "cctrace: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cctrace:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	if *ascii {
		fmt.Fprintf(w, "%d events over %d cycles\n[%s]\n",
			train.Len(), res.EndCycle, train.ASCIITrain(120))
		return
	}
	if err := train.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "cctrace:", err)
		os.Exit(2)
	}
}
