// Command cctrace runs a scenario and dumps the raw indicator-event
// trains and density histograms for offline analysis, or replays a
// flight-recorder capture through a fresh detection pipeline.
//
// Usage:
//
//	cctrace -channel bus [-bps 1000] [-bits 16] [-out trace.csv]
//	        [-kind all|bus-lock|div-contention|conflict-miss|ring-contention|tlb-conflict]
//	        [-ascii]
//	cctrace replay -in flight.json [-stream] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cchunter"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		replayMain(os.Args[2:])
		return
	}
	channel := flag.String("channel", "bus", "covert channel: bus, divider, cache, ring, tlb, none")
	bps := flag.Float64("bps", 1000, "channel bandwidth in bits per second")
	bits := flag.Int("bits", 16, "random message length")
	sets := flag.Int("sets", 512, "cache sets for the cache channel")
	workloads := flag.String("workloads", "", "comma-separated benign workloads")
	quanta := flag.Int("quanta", 0, "observation quanta (0 = auto)")
	quantum := flag.Uint64("quantum", 0, "OS time quantum in cycles (0 = 250M)")
	out := flag.String("out", "", "CSV output path (default stdout)")
	kind := flag.String("kind", "all", "event kind filter: all, bus-lock, div-contention, conflict-miss, ring-contention, tlb-conflict")
	ascii := flag.Bool("ascii", false, "print an ASCII raster instead of CSV")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	sc := cchunter.Scenario{
		Channel:        cchunter.Channel(*channel),
		BandwidthBPS:   *bps,
		Message:        cchunter.RandomMessage(*bits, *seed),
		CacheSets:      *sets,
		DurationQuanta: *quanta,
		QuantumCycles:  *quantum,
		Seed:           *seed,
		RecordRaw:      true,
	}
	if *workloads != "" {
		sc.Workloads = strings.Split(*workloads, ",")
	}
	if sc.Channel == cchunter.ChannelNone {
		sc.Message = nil
	}
	res, err := sc.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cctrace:", err)
		os.Exit(2)
	}

	train := res.RawTrain
	switch *kind {
	case "all":
	case cchunter.EventBusLock.String():
		train = train.FilterKind(cchunter.EventBusLock)
	case cchunter.EventDivContention.String():
		train = train.FilterKind(cchunter.EventDivContention)
	case cchunter.EventConflictMiss.String():
		train = train.FilterKind(cchunter.EventConflictMiss)
	case cchunter.EventRingContention.String():
		train = train.FilterKind(cchunter.EventRingContention)
	case cchunter.EventTLBConflict.String():
		train = train.FilterKind(cchunter.EventTLBConflict)
	default:
		fmt.Fprintf(os.Stderr, "cctrace: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cctrace:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	if *ascii {
		fmt.Fprintf(w, "%d events over %d cycles\n[%s]\n",
			train.Len(), res.EndCycle, train.ASCIITrain(120))
		return
	}
	if err := train.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "cctrace:", err)
		os.Exit(2)
	}
}

// replayMain re-runs detection over a flight-recorder capture. The
// flight carries everything replay needs (quantum, contexts, divisor,
// end cycle, raw events), so the verdict is reproduced without the
// original workload — and is deterministic: the same flight always
// prints the same report.
func replayMain(args []string) {
	fs := flag.NewFlagSet("cctrace replay", flag.ExitOnError)
	in := fs.String("in", "", "flight capture to replay (required)")
	streamMode := fs.Bool("stream", false, "replay through the streaming detector (adds onset estimates)")
	asJSON := fs.Bool("json", false, "print the replayed report as JSON")
	_ = fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "cctrace replay: -in is required")
		fs.Usage()
		os.Exit(2)
	}
	f, err := cchunter.ReadFlight(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cctrace:", err)
		os.Exit(2)
	}
	if f.Truncated {
		fmt.Fprintf(os.Stderr, "cctrace: flight is truncated (%d events dropped before capture); replaying the recorded suffix\n", f.Dropped)
	}
	if f.Meta.EventsShed > 0 {
		fmt.Fprintf(os.Stderr, "cctrace: live run shed %d events at its ingest queue; the replayed verdict rests on the same reduced evidence base\n", f.Meta.EventsShed)
	}
	replay := cchunter.ReplayFlight
	if *streamMode {
		replay = cchunter.ReplayFlightStreaming
	}
	rep, err := replay(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cctrace:", err)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "cctrace:", err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("replaying %d events (reason: %s, end cycle %d)\n",
			len(f.Events), f.Reason, f.Meta.EndCycle)
		fmt.Println(rep)
	}
	if rep.Detected {
		os.Exit(1)
	}
}
