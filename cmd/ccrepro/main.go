// Command ccrepro regenerates the paper's tables and figures on the
// simulated machine and writes the series as CSV files for plotting.
//
// Usage:
//
//	ccrepro [-fig all|2,3,6,8,...] [-out out/] [-scale 100] [-seed 1]
//	        [-messages 32] [-quanta 64] [-j N] [-v] [-no-pool]
//	        [-watchdog 0] [-bench-out bench.json] [-metrics-out metrics.json]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Figure ids: 2 3 4 5 6 7 8 10 11 12 13 14, "t1" for Table I, "m"
// for the mitigation study, "e" for the evasion study plus the
// detection-vs-evasion frontier (adaptive jitter/duty evaders on all
// five channels), and "r" for the sensor fault robustness sweep.
// -scale 1 runs at full paper scale (slow); the default 100× preserves
// every quantity the detector depends on (see DESIGN.md).
// -j N runs figures (and their internal sweeps) on N workers; output
// is byte-identical at every N, and -j 1 is the serial path.
// -metrics-out instruments every figure with its own metrics registry
// and writes the per-figure snapshots (counters, gauges, stage timers)
// as one JSON object keyed by figure id; the CSV output stays
// byte-identical to an uninstrumented run.
// -watchdog D supervises every figure job: a job that exceeds D or
// panics is abandoned with a typed failure instead of hanging or
// killing the run, and the fires/recoveries appear under the "runner"
// key of the -metrics-out snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cchunter"
	"cchunter/internal/experiments"
	"cchunter/internal/obs"
	"cchunter/internal/pool"
	"cchunter/internal/runner"
	"cchunter/internal/trace"
)

// stepOutput is what each figure job hands back to main for ordered
// rendering.
type stepOutput struct {
	summary string
	result  interface{}
}

func main() {
	figs := flag.String("fig", "all", "comma-separated figure ids (2..14, t1, m=mitigation, e=evasion+frontier, r=robustness) or 'all'")
	outDir := flag.String("out", "out", "directory for CSV output")
	scale := flag.Float64("scale", 100, "time scale (1 = full paper scale)")
	seed := flag.Uint64("seed", 1, "random seed")
	messages := flag.Int("messages", 32, "messages for Figure 12 (paper: 256)")
	quanta := flag.Int("quanta", 64, "observation quanta for Figure 14 (paper: 512)")
	jobs := flag.Int("j", runtime.NumCPU(), "worker count for figures and their sweeps (1 = serial)")
	shards := flag.Int("shards", 0, "simulator shard lanes for whole-scenario figures: each scenario runs as a shard with pipelined SPSC event delivery (0 = synchronous legacy path; output identical at every value)")
	slices := flag.Int("slices", 0, "quantum-sliced audit lanes per run: each scenario's observation quanta split across this many slice-local auditors, merged deterministically before analysis (0/1 = serial; output identical at every value)")
	verbose := flag.Bool("v", false, "print per-figure timing after the run")
	benchOut := flag.String("bench-out", "", "write a benchmark-trajectory JSON report (ns, allocs, detection metrics per figure) to this file; forces -j 1 for per-figure attribution")
	metricsOut := flag.String("metrics-out", "", "instrument each figure with a pipeline metrics registry and write the per-figure snapshots as JSON to this file")
	noPool := flag.Bool("no-pool", false, "disable analysis buffer pooling (debugging aid; output is identical either way)")
	watchdog := flag.Duration("watchdog", 0, "per-figure watchdog timeout; stuck or panicking figures become typed failures instead of hanging the run (0 = off)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	pool.SetEnabled(!*noPool)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	var bench *experiments.BenchReport
	if *benchOut != "" {
		// Serial execution makes the per-figure MemStats deltas and
		// wall-clock times attributable to one figure each.
		*jobs = 1
		rep := experiments.NewBenchReport(*seed, *scale)
		bench = &rep
	}

	opts := experiments.Options{Seed: *seed, TimeScale: *scale, Workers: *jobs, Shards: *shards, Slices: *slices}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	want := map[string]bool{}
	if *figs == "all" {
		for _, f := range []string{"2", "3", "4", "5", "6", "7", "8", "10", "11", "12", "13", "14", "t1", "m", "e", "r"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	type step struct {
		id  string
		run func(o experiments.Options) (summary string, result interface{})
	}
	steps := []step{
		{"2", func(o experiments.Options) (string, interface{}) { r := experiments.Figure2(o); return r.Summary(), r }},
		{"3", func(o experiments.Options) (string, interface{}) { r := experiments.Figure3(o); return r.Summary(), r }},
		{"4", func(o experiments.Options) (string, interface{}) {
			r := experiments.Figure4(o)
			writeTrain(*outDir, "fig4a_buslocks.csv", r.BusLocks)
			writeTrain(*outDir, "fig4b_divcontention.csv", r.DivContention)
			return r.Summary(), r
		}},
		{"5", func(o experiments.Options) (string, interface{}) { r := experiments.Figure5(o); return r.Summary(), r }},
		{"6", func(o experiments.Options) (string, interface{}) { r := experiments.Figure6(o); return r.Summary(), r }},
		{"7", func(o experiments.Options) (string, interface{}) { r := experiments.Figure7(o); return r.Summary(), r }},
		{"8", func(o experiments.Options) (string, interface{}) {
			r := experiments.Figure8(o)
			writeTrain(*outDir, "fig8a_conflicts.csv", r.Train)
			return r.Summary(), r
		}},
		{"10", func(o experiments.Options) (string, interface{}) { r := experiments.Figure10(o); return r.Summary(), r }},
		{"11", func(o experiments.Options) (string, interface{}) { r := experiments.Figure11(o); return r.Summary(), r }},
		{"12", func(o experiments.Options) (string, interface{}) {
			r := experiments.Figure12(o, *messages)
			return r.Summary(), r
		}},
		{"13", func(o experiments.Options) (string, interface{}) { r := experiments.Figure13(o); return r.Summary(), r }},
		{"14", func(o experiments.Options) (string, interface{}) {
			r := experiments.Figure14(o, *quanta)
			return r.Summary(), r
		}},
		{"t1", func(experiments.Options) (string, interface{}) { r := experiments.TableI(); return r.Summary(), r }},
		{"m", func(o experiments.Options) (string, interface{}) {
			r := experiments.ExtMitigation(o)
			return r.Summary(), r
		}},
		{"e", func(o experiments.Options) (string, interface{}) {
			r := experiments.ExtEvasion(o)
			return r.Summary(), r
		}},
		{"r", func(o experiments.Options) (string, interface{}) {
			r := experiments.Robustness(o)
			return r.Summary(), r
		}},
	}

	// With -metrics-out, each figure gets a private registry: its
	// internal sweep jobs share it (the registry is race-safe), and the
	// snapshots stay attributable to one figure even at -j > 1.
	var regs map[string]*cchunter.MetricsRegistry
	var poolReg *cchunter.MetricsRegistry
	if *metricsOut != "" {
		regs = make(map[string]*cchunter.MetricsRegistry)
		// Supervision counters (watchdog fires, panics recovered) land
		// in their own registry so the snapshot separates per-figure
		// pipeline work from runner-level incidents.
		poolReg = cchunter.NewMetricsRegistry()
	}

	var pending []runner.Job
	var ids []string
	for _, s := range steps {
		if !want[s.id] {
			continue
		}
		run := s.run
		id := s.id
		stepOpts := opts
		if regs != nil {
			reg := cchunter.NewMetricsRegistry()
			regs[id] = reg
			stepOpts.Metrics = reg
		}
		job := runner.Job{
			Name: "fig" + s.id,
			Run: func(uint64) (interface{}, error) {
				if bench == nil {
					summary, result := run(stepOpts)
					return stepOutput{summary, result}, nil
				}
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				t0 := time.Now()
				summary, result := run(stepOpts)
				ns := time.Since(t0).Nanoseconds()
				runtime.ReadMemStats(&m1)
				bench.Figures = append(bench.Figures, experiments.BenchFigure{
					ID:      id,
					NS:      ns,
					Allocs:  m1.Mallocs - m0.Mallocs,
					Bytes:   m1.TotalAlloc - m0.TotalAlloc,
					Metrics: experiments.BenchMetrics(result),
				})
				return stepOutput{summary, result}, nil
			},
		}
		if reg := regs[id]; reg != nil {
			job.Stages = reg.StageTimes
		}
		pending = append(pending, job)
		ids = append(ids, s.id)
	}

	flushMetrics := func() {
		if regs == nil {
			return
		}
		snaps := make(map[string]*cchunter.MetricsSnapshot, len(ids)+1)
		for _, id := range ids {
			snaps["fig"+id] = regs[id].Snapshot()
		}
		if poolReg != nil {
			snaps["runner"] = poolReg.Snapshot()
		}
		buf, err := json.MarshalIndent(snaps, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*metricsOut, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics report: %s (%d figures)\n", *metricsOut, len(ids))
	}

	start := time.Now()
	pool := runner.Pool{
		Workers:    *jobs,
		OnProgress: progressLine,
		Watchdog:   *watchdog,
		Recover:    *watchdog > 0,
		Metrics:    poolReg,
	}
	results, err := pool.Run(*seed, pending)
	if len(pending) > 0 {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		// Name every failed figure, then flush whatever supervision
		// counters accumulated so the post-mortem has the incident tally.
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "ccrepro: %s failed: %v\n", r.Name, r.Err)
			}
		}
		flushMetrics()
		fatal(err)
	}

	for i, r := range results {
		out := r.Value.(stepOutput)
		fmt.Println(out.summary)
		fmt.Println()
		writeCSVs(*outDir, ids[i], out.result)
	}

	flushMetrics()
	if bench != nil {
		f, err := os.Create(*benchOut)
		if err != nil {
			fatal(err)
		}
		if err := experiments.WriteBenchReport(f, *bench); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("bench report: %s (%d figures, calibration %dns)\n",
			*benchOut, len(bench.Figures), bench.CalibrationNS)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *verbose {
		fmt.Printf("timing (%d workers):\n", *jobs)
		var busy time.Duration
		for _, r := range results {
			busy += r.Elapsed
			fmt.Printf("  %-6s %8s  worker %d\n", r.Name, r.Elapsed.Round(time.Millisecond), r.Worker)
		}
		wall := time.Since(start)
		fmt.Printf("  total  %8s  wall %s (%.1f× concurrency)\n",
			busy.Round(time.Millisecond), wall.Round(time.Millisecond),
			float64(busy)/float64(wall))
	}
}

// progressLine keeps one live status line on stderr: jobs done/total,
// elapsed time, a uniform-cost ETA, and — when the job carried a
// metrics registry — where the finished figure spent its time.
func progressLine(p runner.Progress) {
	line := fmt.Sprintf("[%d/%d] %s elapsed, eta %s — %s (%s)",
		p.Done, p.Total,
		p.Elapsed.Round(time.Second), p.ETA.Round(time.Second),
		p.Last.Name, p.Last.Elapsed.Round(time.Millisecond))
	if len(p.Last.Stages) > 0 {
		var parts []string
		for _, name := range obs.TopStages(p.Last.Stages, 2) {
			parts = append(parts, fmt.Sprintf("%s %s", name, p.Last.Stages[name].Round(time.Millisecond)))
		}
		line += " [" + strings.Join(parts, " ") + "]"
	}
	fmt.Fprintf(os.Stderr, "\r%-78s", line)
}

func writeCSVs(dir, id string, result interface{}) {
	for _, s := range experiments.SeriesForCSV(id, result) {
		path := filepath.Join(dir, s.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteSeriesCSV(f, s.X, s.Y, s.Data); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func writeTrain(dir, name string, t *trace.Train) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccrepro:", err)
	os.Exit(1)
}
