// Command cchuntd is the fleet-scale CC-Hunter daemon: it runs N
// simulated hosts, shards their event streams into per-(host, channel)
// streaming detectors behind bounded ingest queues, and aggregates
// every verdict in a hub that dedupes repeats, accounts per-tenant
// backpressure, and correlates channel signatures across hosts. Fleet
// state and pipeline metrics are served as JSON for the daemon's
// lifetime.
//
// Usage:
//
//	cchuntd [-hosts 8] [-streams 2] [-tenants 2] [-addr :8077]
//	        [-epochs 0] [-epoch-quanta 32] [-interim 8]
//	        [-queue 64] [-batch 512] [-covert-every 4] [-split-pair]
//	        [-rate 0] [-quantum 100000] [-watchdog 30s]
//	        [-record-dir DIR] [-seed 1] [-v]
//
// Endpoints (on -addr):
//
//	/fleet    hub state: per-stream verdicts, tenants, correlations
//	/metrics  obs registry: counters, gauges, latency histograms
//	/         both, as {"fleet": ..., "metrics": ...}
//
// The daemon runs until -epochs complete (0 = forever) or SIGINT/
// SIGTERM, which finishes the in-flight epoch so every stream still
// renders a final verdict, then exits 0 after printing a summary.
// Exit 1 means the fleet saw at least one detection (script-friendly,
// like cchunt); exit 2 is a usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"cchunter/internal/fleet"
	"cchunter/internal/obs"
)

func main() {
	hosts := flag.Int("hosts", 8, "simulated hosts in the fleet")
	streams := flag.Int("streams", 2, "detection streams per host")
	tenants := flag.Int("tenants", 2, "tenants hosts are assigned to, round-robin")
	addr := flag.String("addr", ":8077", "serve fleet state and metrics as JSON on this address")
	epochs := flag.Int("epochs", 0, "detection epochs to run (0 = until SIGTERM)")
	epochQuanta := flag.Int("epoch-quanta", 32, "OS quanta per detection epoch")
	interim := flag.Int("interim", 8, "submit interim verdicts every N quanta (0 = finals only)")
	queue := flag.Int("queue", 64, "per-stream ingest queue capacity in batches")
	batch := flag.Int("batch", 512, "events per ingest batch")
	covertEvery := flag.Int("covert-every", 4, "plant a covert source on every Nth stream (0 = none)")
	splitPair := flag.Bool("split-pair", false, "plant a cross-host sender/receiver pair (exercises hub correlation)")
	rate := flag.Float64("rate", 0, "pace each stream to ~this many events/sec of wall clock (0 = full speed)")
	quantum := flag.Uint64("quantum", 100_000, "OS time quantum in simulated cycles")
	watchdog := flag.Duration("watchdog", 30*time.Second, "per-shard finalize watchdog; overrun/panic degrades the verdict (0 = off)")
	recordDir := flag.String("record-dir", "", "write a flight capture per detection into this directory (for cctrace replay)")
	seed := flag.Uint64("seed", 1, "fleet random seed")
	verbose := flag.Bool("v", false, "log per-epoch fleet summaries to stderr")
	flag.Parse()

	reg := obs.NewRegistry()
	cfg := fleet.Config{
		Hosts:          *hosts,
		StreamsPerHost: *streams,
		Tenants:        *tenants,
		Quantum:        *quantum,
		EpochQuanta:    *epochQuanta,
		InterimEvery:   *interim,
		QueueLen:       *queue,
		BatchEvents:    *batch,
		CovertEvery:    *covertEvery,
		SplitPair:      *splitPair,
		Seed:           *seed,
		Watchdog:       *watchdog,
		RatePerStream:  *rate,
		Metrics:        reg,
	}
	if *recordDir != "" {
		if err := os.MkdirAll(*recordDir, 0o755); err != nil {
			usageError("bad -record-dir: %v", err)
		}
		cfg.FlightEvents = -1
	}
	f, err := fleet.New(cfg)
	if err != nil {
		usageError("%v", err)
	}

	if *addr != "" {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			usageError("bad -addr: %v", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/fleet", f.Hub().Handler())
		mux.Handle("/metrics", obs.Handler(reg))
		mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(map[string]interface{}{
				"fleet":   f.Hub().State(),
				"metrics": reg.Snapshot(),
			})
		})
		fmt.Fprintf(os.Stderr, "cchuntd: serving http://%s/fleet (%d hosts, %d streams, %d tenants)\n",
			ln.Addr(), *hosts, *hosts**streams, cfg.Tenants)
		go func() { _ = http.Serve(ln, mux) }()
	}

	// SIGINT/SIGTERM cancel the run context; the fleet finishes its
	// in-flight epoch (so every stream renders a final verdict) and
	// Run returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *verbose {
		done := make(chan struct{})
		defer close(done)
		go logLoop(f, done)
	}

	start := time.Now()
	_ = f.Run(ctx, *epochs)
	elapsed := time.Since(start)

	if *recordDir != "" {
		for i, cf := range f.Flights() {
			name := fmt.Sprintf("flight-%03d-%s-%s.json", i, cf.Key.Host, cf.Key.Channel)
			path := filepath.Join(*recordDir, name)
			if err := cf.Flight.WriteFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "cchuntd:", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "cchuntd: flight %s (%d events, shed %d) -> %s\n",
				cf.Key, len(cf.Flight.Events), cf.Flight.Meta.EventsShed, path)
		}
	}

	st := f.Hub().State()
	var produced, shed uint64
	for _, t := range st.Tenants {
		produced += t.Produced
		shed += t.Shed
	}
	fmt.Printf("fleet: %d streams, %d final verdicts (%d deduped, %d stale), %d detected, %d correlated\n",
		len(st.Streams), st.Finals, st.Deduped, st.Stale, st.DetectedStreams, len(st.Correlations))
	fmt.Printf("events: %d produced, %d shed (%.2f%%), %.0f events/sec over %v\n",
		produced, shed, 100*safeDiv(float64(shed), float64(produced)),
		safeDiv(float64(produced-shed), elapsed.Seconds()), elapsed.Round(time.Millisecond))
	for _, c := range st.Correlations {
		fmt.Printf("correlated: %s across %s and %s (lag %d ±%d, onset gap %d)\n",
			c.Channel, c.Keys[0].Host, c.Keys[1].Host, c.PeakLag, c.LagDelta, c.OnsetGap)
	}
	if st.DetectedStreams > 0 {
		os.Exit(1)
	}
}

// logLoop prints a one-line fleet summary every 2 seconds until done.
func logLoop(f *fleet.Fleet, done chan struct{}) {
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			st := f.Hub().State()
			fmt.Fprintf(os.Stderr, "cchuntd: finals=%d deduped=%d detected=%d correlations=%d\n",
				st.Finals, st.Deduped, st.DetectedStreams, len(st.Correlations))
		}
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cchuntd: "+format+"\n\n", args...)
	flag.Usage()
	os.Exit(2)
}
