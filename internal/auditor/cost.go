package auditor

import "math"

// Cost estimates the CC-Auditor's hardware overheads — the Table I
// analysis. The paper derives its numbers from Cacti 5.3; Cacti is not
// reproducible in a stdlib-only Go module, so this is an analytic
// per-bit model with three structure classes (SRAM histogram buffers,
// latch-based registers, and the Bloom-filter conflict detector) whose
// coefficients are calibrated so the paper's hardware sizing
// reproduces Table I's rows. Estimates scale with the configured sizes
// for sensitivity studies.
type Cost struct {
	AreaMM2   float64 // silicon area in mm²
	PowerMW   float64 // dynamic power in mW
	LatencyNS float64 // access latency in ns
}

// CostModel groups the three Table I rows.
type CostModel struct {
	HistogramBuffers     Cost
	Registers            Cost
	ConflictMissDetector Cost
}

// costClass holds calibrated per-bit coefficients for one structure
// class.
type costClass struct {
	areaPerBitUM2 float64 // µm² per bit
	powerPerBitUW float64 // µW per bit
	latencyBaseNS float64 // latency at the reference size
	latencySlope  float64 // ns per doubling of capacity
	refBits       float64 // reference size for latency scaling
}

func (c costClass) estimate(bits float64) Cost {
	if bits <= 0 {
		return Cost{}
	}
	lat := c.latencyBaseNS + c.latencySlope*math.Log2(bits/c.refBits)
	if lat < 0.05 {
		lat = 0.05 // wire-dominated floor
	}
	return Cost{
		AreaMM2:   bits * c.areaPerBitUM2 / 1e6,
		PowerMW:   bits * c.powerPerBitUW / 1e3,
		LatencyNS: lat,
	}
}

var (
	// SRAM-array histogram buffers (two buffers of 128 × 16 b = 4096 b
	// reference): 0.0028 mm², 2.8 mW, 0.17 ns at reference.
	histClass = costClass{
		areaPerBitUM2: 0.0028 * 1e6 / 4096,
		powerPerBitUW: 2.8 * 1e3 / 4096,
		latencyBaseNS: 0.17,
		latencySlope:  0.01,
		refBits:       4096,
	}
	// Latch registers (two 128 B vectors + two 16 b accumulators +
	// two 32 b countdowns = 2144 b reference): 0.0011 mm², 0.8 mW,
	// 0.17 ns.
	regClass = costClass{
		areaPerBitUM2: 0.0011 * 1e6 / 2144,
		powerPerBitUW: 0.8 * 1e3 / 2144,
		latencyBaseNS: 0.17,
		latencySlope:  0.01,
		refBits:       2144,
	}
	// Conflict-miss detector (4 Bloom filters of N bits + 7 metadata
	// bits per block; N = 4096 blocks reference → 45056 b): 0.004 mm²,
	// 5.4 mW, 0.12 ns (Bloom probes skip the wide decode of an SRAM
	// read, hence the lower latency).
	detClass = costClass{
		areaPerBitUM2: 0.004 * 1e6 / 45056,
		powerPerBitUW: 5.4 * 1e3 / 45056,
		latencyBaseNS: 0.12,
		latencySlope:  0.005,
		refBits:       45056,
	}
)

// CostSizing describes the hardware sizes the estimate is computed
// for.
type CostSizing struct {
	// HistogramBins and HistogramEntryBits size each of the two
	// histogram buffers.
	HistogramBins      int
	HistogramEntryBits int
	// VectorBytes sizes each of the two conflict vector registers.
	VectorBytes int
	// CacheBlocks is the tracked cache's block count (N).
	CacheBlocks int
}

// DefaultSizing is the paper's configuration: 128×16 b buffers, 128 B
// vectors, and a 4096-block tracked cache.
func DefaultSizing() CostSizing {
	return CostSizing{
		HistogramBins:      128,
		HistogramEntryBits: 16,
		VectorBytes:        128,
		CacheBlocks:        4096,
	}
}

// EstimateCost computes the Table I rows for a sizing.
func EstimateCost(s CostSizing) CostModel {
	histBits := float64(2 * s.HistogramBins * s.HistogramEntryBits)
	regBits := float64(2*s.VectorBytes*8 + 2*16 + 2*32)
	detBits := float64(4*s.CacheBlocks + 7*s.CacheBlocks)
	return CostModel{
		HistogramBuffers:     histClass.estimate(histBits),
		Registers:            regClass.estimate(regBits),
		ConflictMissDetector: detClass.estimate(detBits),
	}
}
