package auditor

import (
	"cchunter/internal/obs"
	"cchunter/internal/trace"
)

// oscillator models the conflict-miss capture path: two alternating
// 128-byte vector registers that record, for every conflict miss, the
// 3-bit context IDs of the replacer and the victim (§V-A). While one
// register fills, the software daemon drains the other in the
// background. The paper sizes the registers so the daemon always keeps
// up; the model preserves that property, so the swap reduces to
// draining the full register into the software-side train (a dropped
// counter is kept for fidelity, and stays zero under this sizing).
//
// Consecutive conflict misses in the same cache set with the same
// (replacer, victim) pair collapse into a single recorded entry: an
// 8-way fill of one set by one replacer carries one unit of signal,
// and deduplicating in hardware is a single comparator against the
// last recorded entry. This is what aligns the oscillation period with
// the *number of cache sets* used by a covert channel, the quantity
// the paper reads off the autocorrelogram peak lag (Figure 8b: "a lag
// value of 533 ... very close to the actual number of conflicting sets
// in the shared cache, 512").
type oscillator struct {
	capacity int // entries per vector register (one byte each)
	active   []trace.Event
	train    *trace.Train
	swaps    uint64
	dropped  uint64
	clamped  uint64 // entries whose timestamps arrived out of order
	trimmed  uint64 // entries released after streaming window analysis

	havePrev bool
	prevSet  uint32
	prevA    uint8
	prevV    uint8

	mRecorded *obs.Counter // entries drained into the train
	mDeduped  *obs.Counter // same-set same-pair runs collapsed
	mSwaps    *obs.Counter // vector-register swaps
}

func (o *oscillator) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	o.mRecorded = reg.Counter("auditor.conflicts.recorded")
	o.mDeduped = reg.Counter("auditor.conflicts.deduped")
	o.mSwaps = reg.Counter("auditor.conflicts.swaps")
}

func newOscillator(vectorBytes int, _ uint64) *oscillator {
	return &oscillator{
		capacity: vectorBytes,
		active:   make([]trace.Event, 0, vectorBytes),
		train:    trace.NewTrain(4096),
	}
}

func (o *oscillator) onEvent(e trace.Event) {
	if o.havePrev && e.Unit == o.prevSet && e.Actor == o.prevA && e.Victim == o.prevV {
		o.mDeduped.Inc()
		return // same-set same-pair run: hardware dedup
	}
	o.havePrev = true
	o.prevSet, o.prevA, o.prevV = e.Unit, e.Actor, e.Victim
	if len(o.active) >= o.capacity {
		o.swaps++
		o.mSwaps.Inc()
		o.drainActive()
	}
	o.active = append(o.active, e)
}

// drainActive moves the full register's contents into the software-
// side train (the daemon's background copy). A degraded sensor path
// (timestamp jitter, bounded reordering) can deliver entries whose
// cycles run backwards; the daemon clamps them on ingest — as arrival-
// time stamping hardware would — and counts the clamps so the detector
// can qualify its verdict.
func (o *oscillator) drainActive() {
	o.mRecorded.Add(uint64(len(o.active)))
	for _, e := range o.active {
		if o.train.AppendClamped(e) {
			o.clamped++
		}
	}
	o.active = o.active[:0]
}

// flush empties the registers into the train (end of run).
func (o *oscillator) flush() {
	o.drainActive()
	o.havePrev = false
}
