// Package auditor models the CC-Auditor hardware of §V-A: the
// microarchitectural monitoring block that CC-Hunter adds to the chip.
//
// The auditor can monitor up to two hardware units at a time for
// contention events (the paper's deliberate cost/coverage trade-off).
// For each monitored unit it keeps a 32-bit countdown register loaded
// with Δt, a 16-bit accumulator counting event occurrences within the
// current Δt window, and a 128-entry × 16-bit histogram buffer that
// the software daemon records and clears at every OS time quantum.
//
// For cache conflict misses it keeps two alternating 128-byte vector
// registers recording the 3-bit context IDs of the replacer and the
// victim of every conflict miss; while one register fills, the
// software daemon drains the other.
//
// Programming the auditor models the paper's privileged instruction:
// it requires a privileged handle, as the OS would enforce through its
// authorization checks (§V-B).
package auditor

import (
	"errors"
	"fmt"

	"cchunter/internal/obs"
	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

// Config sizes the auditor hardware.
type Config struct {
	// HistogramBins is the depth of each histogram buffer (paper:
	// 128 entries).
	HistogramBins int
	// VectorBytes is the size of each conflict-miss vector register
	// (paper: 128 bytes, one byte per recorded miss).
	VectorBytes int
	// QuantumCycles is the OS time quantum at which the software
	// daemon records and clears the buffers.
	QuantumCycles uint64
	// Privileged marks the creating principal as authorized to program
	// the auditor. The paper routes this through a privileged
	// instruction plus an OS authorization check.
	Privileged bool
}

// DefaultConfig returns the paper's hardware sizing.
func DefaultConfig(quantum uint64) Config {
	return Config{
		HistogramBins: 128,
		VectorBytes:   128,
		QuantumCycles: quantum,
		Privileged:    true,
	}
}

// MaxMonitoredUnits is how many hardware units the auditor can watch
// simultaneously (§V-A: "up to two different hardware units at any
// given time").
const MaxMonitoredUnits = 2

// ErrNotPrivileged is returned when an unprivileged principal tries to
// program the auditor.
var ErrNotPrivileged = errors.New("auditor: programming requires privilege")

// ErrBadConfig is wrapped by every configuration validation error in
// this package.
var ErrBadConfig = errors.New("auditor: bad configuration")

// QuantumHistogram is one monitored unit's event-density histogram for
// one OS time quantum, as recorded by the software daemon.
type QuantumHistogram struct {
	// Quantum is the quantum index (Start = Quantum × QuantumCycles).
	Quantum uint64
	// Hist is the density histogram: bin i counts Δt windows holding i
	// events (the top bin clamps, as a saturating 7-bit density
	// encoder would).
	Hist *stats.Histogram
}

// slot is one monitored unit's counting hardware.
type slot struct {
	kind        trace.Kind
	deltaT      uint64
	accum       uint16
	windowStart uint64
	quantum     uint64
	hist        *stats.Histogram
	records     []QuantumHistogram
	bins        int
	quantumLen  uint64

	windows     uint64 // Δt windows closed so far
	saturations uint64 // windows whose 16-bit accumulator hit its ceiling
	satThisWin  bool

	// drainedClamped accumulates the clamped-window tallies of records
	// handed out through DrainHistograms, so Integrity keeps reporting
	// whole-run clamping after the streaming daemon takes ownership of
	// the per-quantum histograms.
	drainedClamped uint64

	mWindows *obs.Counter   // Δt windows closed
	mQuanta  *obs.Counter   // quantum histograms recorded by the daemon
	mDensity *obs.Histogram // per-window event densities

	// Local metric tallies, flushed to the registry at quantum rolls
	// and on Auditor.Flush. The slot is single-writer (the delivery
	// goroutine), so plain increments here keep the per-window cost of
	// an instrumented run to an array bump instead of atomic traffic;
	// densityAcc's last entry collects everything past the registry
	// histogram's top bound. Nil when uninstrumented.
	densityAcc []uint64
	winAcc     uint64
}

func newSlot(kind trace.Kind, deltaT uint64, bins int, quantumLen uint64) *slot {
	return &slot{
		kind:       kind,
		deltaT:     deltaT,
		bins:       bins,
		quantumLen: quantumLen,
		hist:       stats.NewHistogram(bins),
	}
}

// advance closes out all Δt windows and quanta strictly before cycle.
func (s *slot) advance(cycle uint64) {
	for cycle >= s.windowStart+s.deltaT {
		s.closeWindow()
	}
}

// closeWindow flushes the accumulator into the histogram and starts
// the next Δt window, also rolling the quantum when crossed.
func (s *slot) closeWindow() {
	s.hist.Add(int(s.accum))
	if s.densityAcc != nil {
		d := int(s.accum)
		if d >= len(s.densityAcc) {
			d = len(s.densityAcc) - 1
		}
		s.densityAcc[d]++
		s.winAcc++
	}
	s.accum = 0
	s.windows++
	if s.satThisWin {
		s.saturations++
		s.satThisWin = false
	}
	s.windowStart += s.deltaT
	if s.windowStart >= (s.quantum+1)*s.quantumLen {
		s.records = append(s.records, QuantumHistogram{Quantum: s.quantum, Hist: s.hist})
		s.hist = stats.NewHistogram(s.bins)
		s.quantum = s.windowStart / s.quantumLen
		s.mQuanta.Inc()
		s.flushMetrics()
	}
}

// flushMetrics publishes the locally tallied window metrics; the
// quantum roll is the natural cadence (the daemon's own drain point).
func (s *slot) flushMetrics() {
	if s.densityAcc == nil {
		return
	}
	for d, n := range s.densityAcc {
		if n != 0 {
			s.mDensity.ObserveN(float64(d), n)
			s.densityAcc[d] = 0
		}
	}
	s.mWindows.Add(s.winAcc)
	s.winAcc = 0
}

func (s *slot) onEvent(cycle uint64) {
	s.advance(cycle)
	if s.accum < ^uint16(0) {
		s.accum++
	} else {
		// The real register saturates rather than wrapping; remember
		// that this window's count is a floor, not an exact density.
		s.satThisWin = true
	}
}

// onEvents sweeps a batch for this slot's kind. The common case — the
// event lands inside the currently open, unsaturated Δt window — is a
// single compare and a register bump with the window bound hoisted
// into a local; only window-crossing or saturating events take the
// full onEvent path. State after the sweep is identical to calling
// onEvent per matching event.
func (s *slot) onEvents(events []trace.Event) {
	kind := s.kind
	winEnd := s.windowStart + s.deltaT
	accum := s.accum
	for i := range events {
		if events[i].Kind != kind {
			continue
		}
		c := events[i].Cycle
		if c < winEnd && accum < ^uint16(0) {
			accum++
			continue
		}
		s.accum = accum
		s.onEvent(c)
		accum = s.accum
		winEnd = s.windowStart + s.deltaT
	}
	s.accum = accum
}

// histogramClamped sums the windows clamped into the top histogram bin
// across recorded quanta plus the still-open one.
func (s *slot) histogramClamped() uint64 {
	var n uint64
	for _, rec := range s.records {
		n += rec.Hist.Clamped()
	}
	return n + s.drainedClamped + s.hist.Clamped()
}

// Auditor is the CC-Auditor hardware instance. It implements
// trace.Listener; wire it into the simulator with System.AddListener.
type Auditor struct {
	cfg   Config
	slots []*slot
	osc   *oscillator

	reg     *obs.Registry
	mEvents *obs.Counter // events entering the auditor
}

// Instrument points the auditor at a metrics registry: each monitored
// slot records its Δt-window fills and per-window densities, and the
// conflict capture path its recorded/deduplicated/dropped entries.
// Call after the Monitor calls (slots registered later are picked up
// too — Monitor instruments new slots from the stored registry). A nil
// registry keeps every instrument nil, the no-op fast path.
func (a *Auditor) Instrument(reg *obs.Registry) {
	a.reg = reg
	a.mEvents = reg.Counter("auditor.events")
	for _, s := range a.slots {
		s.instrument(reg)
	}
	if a.osc != nil {
		a.osc.instrument(reg)
	}
}

// instrument resolves a slot's instruments, named by the monitored
// event kind (e.g. auditor.bus-lock.density).
func (s *slot) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	prefix := "auditor." + s.kind.String() + "."
	s.mWindows = reg.Counter(prefix + "windows")
	s.mQuanta = reg.Counter(prefix + "quanta")
	// Densities are small integers bounded by the histogram depth;
	// power-of-two buckets show the occupancy shape at a glance.
	s.mDensity = reg.Histogram(prefix+"density", []float64{0, 1, 2, 4, 8, 16, 32, 64, 128})
	// One tally per exact density up to the top bound, plus a catch-all.
	s.densityAcc = make([]uint64, 130)
}

// New builds an auditor. A zero HistogramBins or VectorBytes selects
// the paper's 128; a zero quantum is a configuration error (the
// software daemon would never drain the buffers).
func New(cfg Config) (*Auditor, error) {
	if cfg.HistogramBins < 0 {
		return nil, fmt.Errorf("%w: negative histogram depth %d", ErrBadConfig, cfg.HistogramBins)
	}
	if cfg.VectorBytes < 0 {
		return nil, fmt.Errorf("%w: negative vector register size %d", ErrBadConfig, cfg.VectorBytes)
	}
	if cfg.HistogramBins == 0 {
		cfg.HistogramBins = 128
	}
	if cfg.VectorBytes == 0 {
		cfg.VectorBytes = 128
	}
	if cfg.QuantumCycles == 0 {
		return nil, fmt.Errorf("%w: quantum must be positive", ErrBadConfig)
	}
	return &Auditor{cfg: cfg}, nil
}

// MustNew is New for configurations known to be valid (internal
// wiring, tests); it panics on error.
func MustNew(cfg Config) *Auditor {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Monitor programs the auditor to watch the given indicator event with
// observation window deltaT, occupying one of the two monitoring
// slots. It models the paper's privileged CC-auditor instruction.
func (a *Auditor) Monitor(kind trace.Kind, deltaT uint64) error {
	if !a.cfg.Privileged {
		return ErrNotPrivileged
	}
	if deltaT == 0 {
		return errors.New("auditor: deltaT must be positive")
	}
	if kind == trace.KindConflictMiss {
		return errors.New("auditor: conflict misses use MonitorConflicts")
	}
	if len(a.slots) >= MaxMonitoredUnits {
		return fmt.Errorf("auditor: all %d monitoring slots in use", MaxMonitoredUnits)
	}
	for _, s := range a.slots {
		if s.kind == kind {
			return fmt.Errorf("auditor: %v already monitored", kind)
		}
	}
	s := newSlot(kind, deltaT, a.cfg.HistogramBins, a.cfg.QuantumCycles)
	s.instrument(a.reg)
	a.slots = append(a.slots, s)
	return nil
}

// MonitorConflicts enables the conflict-miss vector registers.
func (a *Auditor) MonitorConflicts() error {
	if !a.cfg.Privileged {
		return ErrNotPrivileged
	}
	if a.osc != nil {
		return errors.New("auditor: conflict monitoring already enabled")
	}
	a.osc = newOscillator(a.cfg.VectorBytes, a.cfg.QuantumCycles)
	a.osc.instrument(a.reg)
	return nil
}

// OnEvent implements trace.Listener.
func (a *Auditor) OnEvent(e trace.Event) {
	a.mEvents.Inc()
	for _, s := range a.slots {
		if s.kind == e.Kind {
			s.onEvent(e.Cycle)
		}
	}
	if a.osc != nil && e.Kind == trace.KindConflictMiss {
		a.osc.onEvent(e)
	}
}

// OnEvents implements trace.BatchListener. Each monitored unit's slot
// sweeps the whole batch in turn — the slot test and counting-path
// bookkeeping are hoisted out of the per-event hot loop. The slots and
// the conflict capture path are independent state machines keyed only
// on the event sequence, so the final auditor state is identical to
// per-event delivery.
func (a *Auditor) OnEvents(events []trace.Event) {
	a.mEvents.Add(uint64(len(events)))
	for _, s := range a.slots {
		s.onEvents(events)
	}
	if a.osc != nil {
		for i := range events {
			if events[i].Kind == trace.KindConflictMiss {
				a.osc.onEvent(events[i])
			}
		}
	}
}

// Flush closes out all Δt windows and quanta up to the given cycle;
// call it after the simulation run so trailing quiet quanta are
// recorded (hardware-wise, the daemon's final read).
func (a *Auditor) Flush(cycle uint64) {
	for _, s := range a.slots {
		s.advance(cycle)
		s.flushMetrics()
	}
	if a.osc != nil {
		a.osc.flush()
	}
}

// Histograms returns the per-quantum density histograms recorded for a
// monitored event kind. The returned slice is shared; treat it as
// read-only.
func (a *Auditor) Histograms(kind trace.Kind) []QuantumHistogram {
	for _, s := range a.slots {
		if s.kind == kind {
			return s.records
		}
	}
	return nil
}

// DrainHistograms appends every quantum histogram recorded for kind
// since the last drain to dst and clears the auditor-side record list,
// returning the extended slice. This is the streaming daemon's read
// path: ownership of the drained records (and their histograms) moves
// to the caller, the auditor's buffer stays O(1) quanta deep, and the
// counting-path Integrity diagnostics keep covering the whole run.
func (a *Auditor) DrainHistograms(kind trace.Kind, dst []QuantumHistogram) []QuantumHistogram {
	for _, s := range a.slots {
		if s.kind != kind {
			continue
		}
		for _, rec := range s.records {
			s.drainedClamped += rec.Hist.Clamped()
		}
		dst = append(dst, s.records...)
		s.records = s.records[:0]
	}
	return dst
}

// MergedHistogram returns the union of all per-quantum histograms for
// kind — the full-run event density histogram of Figure 6.
func (a *Auditor) MergedHistogram(kind trace.Kind) *stats.Histogram {
	var out *stats.Histogram
	for _, s := range a.slots {
		if s.kind != kind {
			continue
		}
		out = stats.NewHistogram(s.bins)
		for _, rec := range s.records {
			out.Merge(rec.Hist)
		}
		// Include the still-open quantum.
		out.Merge(s.hist)
	}
	return out
}

// DeltaT returns the programmed observation window for kind (0 when
// not monitored).
func (a *Auditor) DeltaT(kind trace.Kind) uint64 {
	for _, s := range a.slots {
		if s.kind == kind {
			return s.deltaT
		}
	}
	return 0
}

// ConflictTrain returns the recorded conflict-miss train (drained
// vector-register contents, in order). Nil when conflict monitoring is
// not enabled.
func (a *Auditor) ConflictTrain() *trace.Train {
	if a.osc == nil {
		return nil
	}
	return a.osc.train
}

// ForceDrainConflicts drains the active vector register into the train
// without ending the run: the streaming daemon's mid-run read. Unlike
// Flush it leaves the hardware dedup comparator's state alone, so the
// recorded train is byte-identical to one drained only by register
// swaps and the final flush — just visible earlier.
func (a *Auditor) ForceDrainConflicts() {
	if a.osc != nil {
		a.osc.drainActive()
	}
}

// TrimConflicts releases recorded conflict entries with Cycle < before
// from the train, returning how many were dropped. The streaming
// daemon calls it after analyzing a closed observation window, bounding
// the train to O(window) entries; ConflictIntegrity keeps counting the
// released entries as recorded.
func (a *Auditor) TrimConflicts(before uint64) int {
	if a.osc == nil {
		return 0
	}
	n := a.osc.train.TrimFront(before)
	a.osc.trimmed += uint64(n)
	return n
}

// DroppedConflicts reports conflict misses lost because both vector
// registers were full before the daemon drained them.
func (a *Auditor) DroppedConflicts() uint64 {
	if a.osc == nil {
		return 0
	}
	return a.osc.dropped
}

// SlotIntegrity describes one monitored unit's counting-path health:
// how trustworthy its recorded densities are.
type SlotIntegrity struct {
	// Windows is the number of Δt windows closed so far.
	Windows uint64
	// AccumSaturations counts windows whose 16-bit accumulator hit its
	// ceiling: the recorded density is a floor, not an exact count.
	AccumSaturations uint64
	// HistogramClamped counts windows folded into the top histogram
	// bin because their density exceeded the buffer depth.
	HistogramClamped uint64
}

// SaturationRate is the fraction of windows with a saturated count.
func (i SlotIntegrity) SaturationRate() float64 {
	if i.Windows == 0 {
		return 0
	}
	return float64(i.AccumSaturations+i.HistogramClamped) / float64(i.Windows)
}

// Integrity returns the counting-path diagnostics for a monitored
// event kind (zero value when the kind is not monitored).
func (a *Auditor) Integrity(kind trace.Kind) SlotIntegrity {
	for _, s := range a.slots {
		if s.kind == kind {
			return SlotIntegrity{
				Windows:          s.windows,
				AccumSaturations: s.saturations,
				HistogramClamped: s.histogramClamped(),
			}
		}
	}
	return SlotIntegrity{}
}

// ConflictIntegrity describes the conflict-capture path's health.
type ConflictIntegrity struct {
	// Recorded is the number of entries in the drained train.
	Recorded uint64
	// Dropped counts conflict misses lost to full vector registers.
	Dropped uint64
	// ClampedTimestamps counts entries whose arrival order contradicted
	// their timestamps and were clamped on ingest (a degraded or
	// reordered sensor path; zero on a healthy pipeline).
	ClampedTimestamps uint64
}

// LossRate is the fraction of observed conflict misses never recorded.
func (i ConflictIntegrity) LossRate() float64 {
	total := i.Recorded + i.Dropped
	if total == 0 {
		return 0
	}
	return float64(i.Dropped) / float64(total)
}

// ConflictIntegrity returns the conflict-capture diagnostics (zero
// value when conflict monitoring is off).
func (a *Auditor) ConflictIntegrity() ConflictIntegrity {
	if a.osc == nil {
		return ConflictIntegrity{}
	}
	return ConflictIntegrity{
		Recorded:          uint64(a.osc.train.Len()) + a.osc.trimmed,
		Dropped:           a.osc.dropped,
		ClampedTimestamps: a.osc.clamped,
	}
}
