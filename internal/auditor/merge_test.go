package auditor

import (
	"errors"
	"reflect"
	"testing"

	"cchunter/internal/trace"
)

const mergeQuantum = uint64(1_000_000)
const mergeDeltaT = uint64(100_000)

func mergeEvents(quanta int) []trace.Event {
	var out []trace.Event
	end := uint64(quanta) * mergeQuantum
	for c := uint64(5_000); c < end; c += 37_000 {
		out = append(out, trace.Event{Cycle: c, Kind: trace.KindBusLock,
			Actor: 1, Victim: trace.NoContext})
		// Conflict runs crossing arbitrary boundaries; alternate the
		// pair direction per burst so the dedup comparator stays busy.
		dir := (c / 37_000) % 2
		for w := uint64(0); w < 3; w++ {
			out = append(out, trace.Event{Cycle: c + w, Kind: trace.KindConflictMiss,
				Actor: uint8(dir), Victim: uint8(1 - dir), Unit: uint32(c % 64)})
		}
	}
	return out
}

func mergeAuditor(t *testing.T, conflicts bool) *Auditor {
	t.Helper()
	a := MustNew(DefaultConfig(mergeQuantum))
	if err := a.Monitor(trace.KindBusLock, mergeDeltaT); err != nil {
		t.Fatal(err)
	}
	if conflicts {
		if err := a.MonitorConflicts(); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

// TestMergeSlicesMatchesGlobal is the merge layer's own differential
// test: one auditor observing a whole run versus slice-local auditors
// observing quantum-aligned segments, stitched with MergeSlices and
// the raw conflict replay. Records, merged histograms, integrity
// counters, and the deduplicated conflict train must all coincide.
func TestMergeSlicesMatchesGlobal(t *testing.T) {
	const quanta = 8
	events := mergeEvents(quanta)
	end := uint64(quanta) * mergeQuantum

	global := mergeAuditor(t, true)
	global.OnEvents(events)
	global.Flush(end)

	// Slice at quanta 0-2 / 3-5 / 6-7.
	cuts := []uint64{3 * mergeQuantum, 6 * mergeQuantum, end}
	parts := make([]*Auditor, len(cuts))
	var conflicts [][]trace.Event
	start := uint64(0)
	for i, cut := range cuts {
		p := mergeAuditor(t, false)
		if err := p.StartAt(start); err != nil {
			t.Fatal(err)
		}
		var raw []trace.Event
		for _, e := range events {
			if e.Cycle >= start && e.Cycle < cut {
				p.OnEvent(e)
				if e.Kind == trace.KindConflictMiss {
					raw = append(raw, e)
				}
			}
		}
		p.Flush(cut)
		parts[i] = p
		conflicts = append(conflicts, raw)
		start = cut
	}

	merged, err := MergeSlices(parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.MonitorConflicts(); err != nil {
		t.Fatal(err)
	}
	for _, raw := range conflicts {
		merged.ReplayConflicts(raw)
	}
	merged.Flush(end)

	if !reflect.DeepEqual(merged.Histograms(trace.KindBusLock), global.Histograms(trace.KindBusLock)) {
		t.Error("per-quantum records differ from the global auditor's")
	}
	if !reflect.DeepEqual(merged.MergedHistogram(trace.KindBusLock), global.MergedHistogram(trace.KindBusLock)) {
		t.Error("merged histogram differs from the global auditor's")
	}
	if !reflect.DeepEqual(merged.Integrity(trace.KindBusLock), global.Integrity(trace.KindBusLock)) {
		t.Errorf("slot integrity differs: %+v vs %+v",
			merged.Integrity(trace.KindBusLock), global.Integrity(trace.KindBusLock))
	}
	if !reflect.DeepEqual(merged.ConflictTrain(), global.ConflictTrain()) {
		t.Error("replayed conflict train differs from the global auditor's")
	}
	if !reflect.DeepEqual(merged.ConflictIntegrity(), global.ConflictIntegrity()) {
		t.Errorf("conflict integrity differs: %+v vs %+v",
			merged.ConflictIntegrity(), global.ConflictIntegrity())
	}
}

// TestStartAtValidation pins the alignment and freshness preconditions.
func TestStartAtValidation(t *testing.T) {
	a := mergeAuditor(t, false)
	if err := a.StartAt(mergeQuantum + 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("off-quantum start: err = %v, want ErrBadConfig", err)
	}
	if err := a.StartAt(2 * mergeQuantum); err != nil {
		t.Errorf("aligned start rejected: %v", err)
	}
	a.OnEvent(trace.Event{Cycle: 2*mergeQuantum + 1, Kind: trace.KindBusLock,
		Actor: 1, Victim: trace.NoContext})
	a.Flush(3 * mergeQuantum)
	if err := a.StartAt(4 * mergeQuantum); !errors.Is(err, ErrBadConfig) {
		t.Errorf("StartAt after observation: err = %v, want ErrBadConfig", err)
	}
}

// TestMergeSlicesValidation pins shape mismatches as hard errors.
func TestMergeSlicesValidation(t *testing.T) {
	if _, err := MergeSlices(nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty merge: err = %v, want ErrBadConfig", err)
	}
	a := mergeAuditor(t, false)
	b := MustNew(DefaultConfig(mergeQuantum))
	if err := b.Monitor(trace.KindBusLock, mergeDeltaT*2); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeSlices([]*Auditor{a, b}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Δt mismatch: err = %v, want ErrBadConfig", err)
	}
	c := MustNew(DefaultConfig(mergeQuantum))
	if _, err := MergeSlices([]*Auditor{a, c}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("slot-count mismatch: err = %v, want ErrBadConfig", err)
	}
}
