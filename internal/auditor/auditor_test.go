package auditor

import (
	"math"
	"testing"

	"cchunter/internal/trace"
)

func busEvent(cycle uint64) trace.Event {
	return trace.Event{Cycle: cycle, Kind: trace.KindBusLock, Actor: 0, Victim: trace.NoContext}
}

func confEvent(cycle uint64, set uint32, actor, victim uint8) trace.Event {
	return trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss, Actor: actor, Victim: victim, Unit: set}
}

func TestMonitorSlots(t *testing.T) {
	a := MustNew(DefaultConfig(1000))
	if err := a.Monitor(trace.KindBusLock, 100); err != nil {
		t.Fatal(err)
	}
	if err := a.Monitor(trace.KindBusLock, 100); err == nil {
		t.Error("duplicate kind should fail")
	}
	if err := a.Monitor(trace.KindDivContention, 50); err != nil {
		t.Fatal(err)
	}
	// Both slots used; conflict monitoring is separate and still
	// available.
	if err := a.MonitorConflicts(); err != nil {
		t.Fatal(err)
	}
	if a.DeltaT(trace.KindBusLock) != 100 || a.DeltaT(trace.KindDivContention) != 50 {
		t.Error("DeltaT wrong")
	}
	if a.DeltaT(trace.KindConflictMiss) != 0 {
		t.Error("conflict kind has no deltaT slot")
	}
}

func TestMonitorErrors(t *testing.T) {
	a := MustNew(DefaultConfig(1000))
	if err := a.Monitor(trace.KindConflictMiss, 10); err == nil {
		t.Error("conflict kind must be rejected by Monitor")
	}
	if err := a.Monitor(trace.KindBusLock, 0); err == nil {
		t.Error("zero deltaT must be rejected")
	}
	unpriv := MustNew(Config{HistogramBins: 8, VectorBytes: 8, QuantumCycles: 100, Privileged: false})
	if err := unpriv.Monitor(trace.KindBusLock, 10); err != ErrNotPrivileged {
		t.Errorf("unprivileged Monitor error = %v", err)
	}
	if err := unpriv.MonitorConflicts(); err != ErrNotPrivileged {
		t.Errorf("unprivileged MonitorConflicts error = %v", err)
	}
}

func TestDensityHistogramAccumulation(t *testing.T) {
	a := MustNew(DefaultConfig(1000)) // quantum 1000, deltaT 100
	if err := a.Monitor(trace.KindBusLock, 100); err != nil {
		t.Fatal(err)
	}
	// Window [0,100): 3 events; [100,200): 1; [200,300): 0; then quiet.
	for _, c := range []uint64{10, 20, 30, 150} {
		a.OnEvent(busEvent(c))
	}
	a.Flush(1000) // close the quantum
	recs := a.Histograms(trace.KindBusLock)
	if len(recs) != 1 {
		t.Fatalf("quantum records = %d, want 1", len(recs))
	}
	h := recs[0].Hist
	if h.Bin(3) != 1 || h.Bin(1) != 1 {
		t.Errorf("histogram: %v", h.Bins())
	}
	if h.Bin(0) != 8 {
		t.Errorf("quiet windows in bin0 = %d, want 8", h.Bin(0))
	}
	if h.Total() != 10 {
		t.Errorf("windows per quantum = %d, want 10", h.Total())
	}
}

func TestQuantumRollover(t *testing.T) {
	a := MustNew(DefaultConfig(1000))
	if err := a.Monitor(trace.KindBusLock, 100); err != nil {
		t.Fatal(err)
	}
	a.OnEvent(busEvent(50))   // quantum 0
	a.OnEvent(busEvent(1050)) // quantum 1
	a.Flush(3000)
	recs := a.Histograms(trace.KindBusLock)
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	if recs[0].Quantum != 0 || recs[1].Quantum != 1 || recs[2].Quantum != 2 {
		t.Errorf("quantum indices: %v %v %v", recs[0].Quantum, recs[1].Quantum, recs[2].Quantum)
	}
	if recs[0].Hist.TotalFrom(1) != 1 || recs[1].Hist.TotalFrom(1) != 1 || recs[2].Hist.TotalFrom(1) != 0 {
		t.Error("per-quantum event placement wrong")
	}
}

func TestMergedHistogram(t *testing.T) {
	a := MustNew(DefaultConfig(1000))
	if err := a.Monitor(trace.KindBusLock, 100); err != nil {
		t.Fatal(err)
	}
	a.OnEvent(busEvent(10))
	a.OnEvent(busEvent(1010))
	a.Flush(2000)
	m := a.MergedHistogram(trace.KindBusLock)
	if m.Bin(1) != 2 {
		t.Errorf("merged bin1 = %d, want 2", m.Bin(1))
	}
	if a.MergedHistogram(trace.KindDivContention) != nil {
		t.Error("unmonitored kind should give nil")
	}
}

func TestOscillatorDedupPerSetRun(t *testing.T) {
	a := MustNew(DefaultConfig(1000))
	if err := a.MonitorConflicts(); err != nil {
		t.Fatal(err)
	}
	// An 8-way fill of set 5 by context 0 evicting context 1's blocks:
	// one recorded entry.
	for i := uint64(0); i < 8; i++ {
		a.OnEvent(confEvent(100+i, 5, 0, 1))
	}
	// Then the reverse direction in the same set: a new entry.
	for i := uint64(0); i < 8; i++ {
		a.OnEvent(confEvent(200+i, 5, 1, 0))
	}
	// A different set: a new entry even with the same pair.
	a.OnEvent(confEvent(300, 6, 1, 0))
	a.Flush(1000)
	tr := a.ConflictTrain()
	if tr.Len() != 3 {
		t.Fatalf("train len = %d, want 3", tr.Len())
	}
	if tr.At(0).Actor != 0 || tr.At(1).Actor != 1 || tr.At(2).Unit != 6 {
		t.Errorf("train: %+v", tr.Events())
	}
}

func TestOscillatorVectorRegisterSwap(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.VectorBytes = 4
	a := MustNew(cfg)
	if err := a.MonitorConflicts(); err != nil {
		t.Fatal(err)
	}
	// 10 distinct entries with capacity 4: registers swap, nothing is
	// lost.
	for i := 0; i < 10; i++ {
		a.OnEvent(confEvent(uint64(i), uint32(i), 0, 1))
	}
	a.Flush(1000)
	if a.ConflictTrain().Len() != 10 {
		t.Errorf("train len = %d, want 10", a.ConflictTrain().Len())
	}
	if a.DroppedConflicts() != 0 {
		t.Errorf("dropped = %d", a.DroppedConflicts())
	}
}

func TestConflictTrainNilWithoutMonitoring(t *testing.T) {
	a := MustNew(DefaultConfig(1000))
	if a.ConflictTrain() != nil {
		t.Error("train should be nil before MonitorConflicts")
	}
	a.OnEvent(confEvent(1, 0, 0, 1)) // ignored, no crash
	if a.DroppedConflicts() != 0 {
		t.Error("dropped should be 0")
	}
}

func TestEventsForUnmonitoredKindIgnored(t *testing.T) {
	a := MustNew(DefaultConfig(1000))
	if err := a.Monitor(trace.KindBusLock, 100); err != nil {
		t.Fatal(err)
	}
	a.OnEvent(trace.Event{Cycle: 5, Kind: trace.KindDivContention, Actor: 0, Victim: 1})
	a.Flush(1000)
	if a.MergedHistogram(trace.KindBusLock).TotalFrom(1) != 0 {
		t.Error("div event leaked into bus histogram")
	}
}

func TestTableICalibration(t *testing.T) {
	// The analytic model must reproduce Table I at the paper's sizing.
	m := EstimateCost(DefaultSizing())
	checks := []struct {
		name          string
		got           Cost
		area, pw, lat float64
	}{
		{"histogram", m.HistogramBuffers, 0.0028, 2.8, 0.17},
		{"registers", m.Registers, 0.0011, 0.8, 0.17},
		{"detector", m.ConflictMissDetector, 0.004, 5.4, 0.12},
	}
	for _, c := range checks {
		if math.Abs(c.got.AreaMM2-c.area)/c.area > 0.02 {
			t.Errorf("%s area = %v, want %v", c.name, c.got.AreaMM2, c.area)
		}
		if math.Abs(c.got.PowerMW-c.pw)/c.pw > 0.02 {
			t.Errorf("%s power = %v, want %v", c.name, c.got.PowerMW, c.pw)
		}
		if math.Abs(c.got.LatencyNS-c.lat)/c.lat > 0.05 {
			t.Errorf("%s latency = %v, want %v", c.name, c.got.LatencyNS, c.lat)
		}
	}
}

func TestCostScalesWithSize(t *testing.T) {
	small := EstimateCost(CostSizing{HistogramBins: 64, HistogramEntryBits: 16, VectorBytes: 64, CacheBlocks: 2048})
	big := EstimateCost(DefaultSizing())
	if small.HistogramBuffers.AreaMM2 >= big.HistogramBuffers.AreaMM2 {
		t.Error("smaller buffers should be smaller")
	}
	if small.ConflictMissDetector.PowerMW >= big.ConflictMissDetector.PowerMW {
		t.Error("smaller detector should burn less power")
	}
	if small.HistogramBuffers.LatencyNS >= big.HistogramBuffers.LatencyNS {
		t.Error("smaller structures should be faster")
	}
	zero := EstimateCost(CostSizing{})
	if zero.HistogramBuffers.AreaMM2 != 0 {
		t.Error("zero sizing should cost nothing for the buffers")
	}
}

func TestAccumulatorSaturates(t *testing.T) {
	a := MustNew(DefaultConfig(1_000_000))
	if err := a.Monitor(trace.KindBusLock, 1_000_000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 70000; i++ {
		a.OnEvent(busEvent(10))
	}
	a.Flush(1_000_000)
	// 70000 events saturate the 16-bit accumulator, then clamp into
	// the histogram's top bin; no panic, no wraparound to small bins.
	h := a.MergedHistogram(trace.KindBusLock)
	if h.Bin(h.NumBins()-1) != 1 {
		t.Errorf("saturated window not in top bin: %v", h.String())
	}
}
