package auditor

import (
	"fmt"

	"cchunter/internal/trace"
)

// StartAt primes a freshly programmed auditor to begin observing at
// cycle, as the slice-local auditors of a quantum-sliced run do: each
// counting slot's open Δt window and quantum index are positioned as a
// whole-run auditor's would be when its observation frontier reaches
// cycle. It must be called after the Monitor calls and before any
// event, and cycle must land on a quantum boundary that is also a Δt
// boundary for every monitored slot — the alignment that makes
// per-slice window state indistinguishable from the global machine's
// (callers degrade to a single slice when a configuration cannot
// satisfy it).
func (a *Auditor) StartAt(cycle uint64) error {
	if cycle%a.cfg.QuantumCycles != 0 {
		return fmt.Errorf("%w: slice start %d not on a quantum boundary", ErrBadConfig, cycle)
	}
	for _, s := range a.slots {
		if s.deltaT == 0 || cycle%s.deltaT != 0 {
			return fmt.Errorf("%w: slice start %d not aligned to %v Δt %d", ErrBadConfig, cycle, s.kind, s.deltaT)
		}
		if s.windows != 0 || s.accum != 0 || len(s.records) != 0 {
			return fmt.Errorf("%w: StartAt on an auditor that already observed events", ErrBadConfig)
		}
	}
	for _, s := range a.slots {
		s.windowStart = cycle
		s.quantum = cycle / s.quantumLen
	}
	return nil
}

// ReplayConflicts feeds raw conflict-miss events straight into the
// conflict-capture path (vector registers, hardware dedup comparator,
// train), bypassing the counting slots and the event tally. The sliced
// run's merge uses it: the dedup comparator is keyed on the whole
// event sequence — a run of same-set same-pair misses can straddle any
// slice boundary — so slices capture conflicts raw and the merged
// auditor replays their concatenation serially, reproducing the global
// comparator's decisions exactly.
func (a *Auditor) ReplayConflicts(events []trace.Event) {
	if a.osc == nil {
		return
	}
	for i := range events {
		if events[i].Kind == trace.KindConflictMiss {
			a.osc.onEvent(events[i])
		}
	}
}

// MergeSlices stitches slice-local auditors — contiguous, disjoint
// quantum ranges of one run, in range order, each already flushed to
// its end boundary — into a single auditor whose observable state
// (per-quantum records, merged histograms, integrity diagnostics) is
// identical to one auditor having observed the whole run. Per-quantum
// records concatenate in slice order (quantum-aligned slicing puts
// every quantum wholly inside one slice); cumulative counters sum.
// Conflict monitoring is NOT carried over: enable it on the merged
// auditor and ReplayConflicts the slices' raw captures, in order.
func MergeSlices(parts []*Auditor) (*Auditor, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: MergeSlices needs at least one slice", ErrBadConfig)
	}
	first := parts[0]
	merged, err := New(first.cfg)
	if err != nil {
		return nil, err
	}
	for _, s := range first.slots {
		if err := merged.Monitor(s.kind, s.deltaT); err != nil {
			return nil, err
		}
	}
	for i, ms := range merged.slots {
		for pi, p := range parts {
			if len(p.slots) != len(merged.slots) {
				return nil, fmt.Errorf("%w: slice %d monitors %d units, slice 0 monitors %d",
					ErrBadConfig, pi, len(p.slots), len(merged.slots))
			}
			ps := p.slots[i]
			if ps.kind != ms.kind || ps.deltaT != ms.deltaT {
				return nil, fmt.Errorf("%w: slice %d slot %d is %v/Δt=%d, want %v/Δt=%d",
					ErrBadConfig, pi, i, ps.kind, ps.deltaT, ms.kind, ms.deltaT)
			}
			ms.records = append(ms.records, ps.records...)
			ms.windows += ps.windows
			ms.saturations += ps.saturations
			ms.drainedClamped += ps.drainedClamped
		}
		last := parts[len(parts)-1].slots[i]
		ms.windowStart = last.windowStart
		ms.quantum = last.quantum
	}
	return merged, nil
}
