package divider

import (
	"testing"

	"cchunter/internal/trace"
)

func TestDivideUncontended(t *testing.T) {
	b := New(Config{Units: 1, DivCycles: 5}, nil)
	done, waited := b.Divide(100, 0)
	if done != 105 || waited != 0 {
		t.Errorf("done=%d waited=%d", done, waited)
	}
}

func TestSameContextBackToBackIsNotContention(t *testing.T) {
	rec := trace.NewRecorder()
	b := New(Config{Units: 1, DivCycles: 5}, rec)
	b.Divide(0, 2)
	done, waited := b.Divide(0, 2)
	if waited != 5 || done != 10 {
		t.Errorf("done=%d waited=%d", done, waited)
	}
	if rec.Train().Len() != 0 {
		t.Error("same-context wait must not be an indicator event")
	}
	if b.Stats().Contention != 0 {
		t.Error("contention counter should be zero")
	}
}

func TestCrossContextWaitEmitsEvent(t *testing.T) {
	rec := trace.NewRecorder()
	b := New(Config{Units: 1, DivCycles: 5}, rec)
	b.Divide(0, 0)                 // trojan occupies until 5
	done, waited := b.Divide(2, 1) // spy waits 3
	if waited != 3 || done != 10 {
		t.Errorf("done=%d waited=%d", done, waited)
	}
	if rec.Train().Len() != 1 {
		t.Fatalf("events=%d", rec.Train().Len())
	}
	e := rec.Train().At(0)
	if e.Kind != trace.KindDivContention || e.Actor != 1 || e.Victim != 0 || e.Cycle != 2 {
		t.Errorf("event=%+v", e)
	}
}

func TestMultipleUnits(t *testing.T) {
	rec := trace.NewRecorder()
	b := New(Config{Units: 2, DivCycles: 10}, rec)
	b.Divide(0, 0) // unit 0 busy until 10
	done, waited := b.Divide(0, 1)
	if waited != 0 || done != 10 {
		t.Errorf("second unit should be free: done=%d waited=%d", done, waited)
	}
	if rec.Train().Len() != 0 {
		t.Error("no contention with a free unit")
	}
	// Third division with both busy must wait and emit.
	_, waited = b.Divide(0, 1)
	if waited != 10 {
		t.Errorf("waited=%d, want 10", waited)
	}
	if rec.Train().Len() != 1 {
		t.Errorf("events=%d, want 1", rec.Train().Len())
	}
}

func TestSaturationContentionRate(t *testing.T) {
	// Two contexts hammering one divider: in steady state roughly one
	// contention event per spy division, which is what puts the
	// paper's burst distribution at high density bins for Δt=500.
	b := New(DefaultConfig(), nil)
	var tTime, sTime uint64
	for i := 0; i < 1000; i++ {
		tTime, _ = b.Divide(tTime, 0)
		sTime, _ = b.Divide(sTime, 1)
	}
	s := b.Stats()
	if s.Divisions != 2000 {
		t.Errorf("divisions=%d", s.Divisions)
	}
	if s.Contention < 1500 {
		t.Errorf("contention=%d, want near one per division", s.Contention)
	}
}

func TestZeroConfigGetsDefaults(t *testing.T) {
	b := New(Config{}, nil)
	if b.Config().Units <= 0 || b.Config().DivCycles == 0 {
		t.Error("defaults not applied")
	}
}
