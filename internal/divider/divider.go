// Package divider models the integer division units shared between the
// two hyperthreads of an SMT core — the paper's second covert channel
// medium (§IV-A; Wang and Lee showed the same construction with
// multipliers). The indicator event is a division instruction from one
// hardware context waiting on a divider occupied by an instruction from
// another context. Note that not all divisions raise the event: only
// cross-context waits do.
package divider

import "cchunter/internal/trace"

// Config sets the divider bank parameters.
type Config struct {
	// Units is the number of division units in the core.
	Units int
	// DivCycles is the (unpipelined) latency of one division.
	DivCycles uint64
}

// DefaultConfig models one short-latency radix-16 divider per core,
// the arrangement that makes the paper's Δt = 500-cycle density
// histogram land its burst distribution near bin 96 under saturation.
func DefaultConfig() Config {
	return Config{Units: 1, DivCycles: 5}
}

// Bank is the division unit cluster of one core. The engine serializes
// calls in global time order.
type Bank struct {
	cfg       Config
	busyFrom  []uint64 // start of the latest division on each unit
	busyUntil []uint64
	occupant  []uint8
	listener  trace.Listener

	divisions  uint64
	contention uint64
}

// New returns a divider bank.
func New(cfg Config, l trace.Listener) *Bank {
	if cfg.Units <= 0 {
		cfg.Units = DefaultConfig().Units
	}
	if cfg.DivCycles == 0 {
		cfg.DivCycles = DefaultConfig().DivCycles
	}
	return &Bank{
		cfg:       cfg,
		busyFrom:  make([]uint64, cfg.Units),
		busyUntil: make([]uint64, cfg.Units),
		occupant:  make([]uint8, cfg.Units),
		listener:  l,
	}
}

// Divide issues one division from ctx at cycle now. It picks the unit
// that frees earliest; when every unit is busy with another context's
// instruction, a KindDivContention event fires (Actor = waiter,
// Victim = occupant), stamped at the issue cycle. It returns the
// completion cycle and the cycles spent waiting.
func (b *Bank) Divide(now uint64, ctx uint8) (done, waited uint64) {
	return b.DivideStamped(now, now, ctx)
}

// DivideStamped is Divide with an explicit event timestamp. The engine
// uses it for batched divisions: every division of a batch is timed at
// its own cursor but stamped at the batch's issue cycle, so the global
// event stream stays time-ordered across contexts.
func (b *Bank) DivideStamped(now, stamp uint64, ctx uint8) (done, waited uint64) {
	best := 0
	for u := 1; u < len(b.busyUntil); u++ {
		if b.busyUntil[u] < b.busyUntil[best] {
			best = u
		}
	}
	// Backfill: the engine commits operations in issue order, so a
	// deferred-start division (e.g. one pushed to a later TDM epoch)
	// may already hold a future reservation. A division that both
	// starts and completes before that reservation begins uses the
	// idle gap without waiting — and without manufacturing phantom
	// contention.
	if now+b.cfg.DivCycles <= b.busyFrom[best] {
		b.divisions++
		return now + b.cfg.DivCycles, 0
	}
	start := now
	if b.busyUntil[best] > start {
		waited = b.busyUntil[best] - start
		start = b.busyUntil[best]
		if b.occupant[best] != ctx {
			b.contention++
			if b.listener != nil {
				b.listener.OnEvent(trace.Event{
					Cycle:  stamp,
					Kind:   trace.KindDivContention,
					Actor:  ctx,
					Victim: b.occupant[best],
				})
			}
		}
	}
	done = start + b.cfg.DivCycles
	b.busyFrom[best] = start
	b.busyUntil[best] = done
	b.occupant[best] = ctx
	b.divisions++
	return done, waited
}

// Stats reports cumulative divider activity.
type Stats struct {
	Divisions  uint64 // total divisions issued
	Contention uint64 // cross-context waits (indicator events)
}

// Stats returns a snapshot of the counters.
func (b *Bank) Stats() Stats {
	return Stats{Divisions: b.divisions, Contention: b.contention}
}

// Config returns the bank configuration.
func (b *Bank) Config() Config { return b.cfg }
