package workload

import (
	"testing"

	"cchunter/internal/sim"
	"cchunter/internal/trace"
)

// runPair runs two specs as hyperthread siblings for `cycles` and
// returns the recorded event train.
func runPair(t *testing.T, a, b Spec, cycles uint64) *trace.Train {
	t.Helper()
	s := sim.MustNew(sim.TestConfig())
	defer s.Close()
	rec := trace.NewRecorder()
	s.AddListener(rec)
	s.Spawn(New(a, 1), sim.Pin(0))
	s.Spawn(New(b, 2), sim.Pin(1))
	s.Run(cycles)
	return rec.Train()
}

func TestAllSpecsRun(t *testing.T) {
	for name, spec := range All() {
		s := sim.MustNew(sim.TestConfig())
		s.Spawn(New(spec, 7), sim.Pin(0))
		s.Run(500_000)
		s.Close()
		_ = name
	}
}

func TestSpecNeedsName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Spec{}, 1)
}

func TestAllContainsPaperWorkloads(t *testing.T) {
	all := All()
	for _, name := range []string{"gobmk", "sjeng", "bzip2", "h264ref", "mcf", "stream", "mailserver", "webserver"} {
		if _, ok := all[name]; !ok {
			t.Errorf("missing workload %q", name)
		}
	}
}

func TestBusHeavyPairProducesLocks(t *testing.T) {
	tr := runPair(t, Gobmk(), Sjeng(), 5_000_000)
	locks := tr.FilterKind(trace.KindBusLock).Len()
	if locks == 0 {
		t.Error("gobmk+sjeng should issue some bus locks")
	}
	// But nowhere near a covert channel's density: fewer than 2 locks
	// per Δt=100k on average.
	if rate := float64(locks) / 50.0; rate > 2 {
		t.Errorf("benign lock rate %.2f per 100k cycles is channel-like", rate)
	}
}

func TestDividerHeavyPairProducesContention(t *testing.T) {
	tr := runPair(t, Bzip2(), H264ref(), 5_000_000)
	div := tr.FilterKind(trace.KindDivContention).Len()
	if div == 0 {
		t.Error("bzip2+h264ref should contend on the divider")
	}
}

func TestStreamPairProducesConflictMisses(t *testing.T) {
	tr := runPair(t, Stream(), Stream(), 5_000_000)
	if tr.FilterKind(trace.KindConflictMiss).Len() == 0 {
		t.Error("two streams on one L2 should conflict")
	}
}

func TestMailserverIsBursty(t *testing.T) {
	tr := runPair(t, Mailserver(), Mailserver(), 20_000_000)
	locks := tr.FilterKind(trace.KindBusLock)
	if locks.Len() == 0 {
		t.Fatal("mailserver should lock the bus")
	}
	densities := locks.Densities(0, 20_000_000, 100_000, false)
	quiet, busy := 0, 0
	for _, d := range densities {
		switch {
		case d == 0:
			quiet++
		case d >= 2:
			busy++
		}
	}
	if quiet < len(densities)/2 {
		t.Errorf("mailserver not bursty: %d quiet of %d windows", quiet, len(densities))
	}
	if busy == 0 {
		t.Error("mailserver bursts missing")
	}
}

func TestWebserverWalksSetsCyclically(t *testing.T) {
	s := sim.MustNew(sim.TestConfig())
	defer s.Close()
	rec := trace.NewRecorder(trace.KindConflictMiss)
	s.AddListener(rec)
	s.Spawn(New(Webserver(), 3), sim.Pin(0))
	s.Spawn(New(Webserver(), 4), sim.Pin(1))
	s.Run(20_000_000)
	if rec.Train().Len() == 0 {
		t.Error("webserver pair should produce conflict misses on shared sets")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := runPair(t, Mailserver(), Webserver(), 2_000_000)
	b := runPair(t, Mailserver(), Webserver(), 2_000_000)
	if a.Len() != b.Len() {
		t.Fatalf("event counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events() {
		if a.At(i) != b.At(i) {
			t.Fatal("workload runs are not deterministic")
		}
	}
}

func TestBackgroundIsQuiet(t *testing.T) {
	tr := runPair(t, Background(0), Background(1), 5_000_000)
	locks := tr.FilterKind(trace.KindBusLock).Len()
	if locks > 20 {
		t.Errorf("background processes too noisy: %d locks", locks)
	}
}
