// Package workload provides synthetic models of the benign programs
// the paper uses for interference and false-alarm testing (§VI-D):
// CPU-intensive SPEC2006 members (gobmk, sjeng, bzip2, h264ref, mcf),
// the Stream memory benchmark, and Filebench's mailserver and
// webserver personalities.
//
// The models are not instruction-accurate; they reproduce the traits
// the detection problem cares about — how often a program locks the
// memory bus, how hard it leans on the divider, how it walks the
// cache, and how bursty it is — using the calibration targets visible
// in the paper's Figure 14 histograms (e.g. mailserver's second
// distribution at density bins 5–8 whose likelihood ratio stays below
// 0.5).
package workload

import (
	"cchunter/internal/sim"
	"cchunter/internal/stats"
)

// Spec parameterizes one synthetic program.
type Spec struct {
	// Name labels the process.
	Name string
	// ComputeCycles is the mean computation per iteration.
	ComputeCycles uint64
	// ComputeJitter is the relative jitter on ComputeCycles (0..1).
	ComputeJitter float64
	// Lines is how many memory lines an iteration touches (batched).
	Lines int
	// WorkingSetLines bounds the random working set; 0 disables
	// memory traffic.
	WorkingSetLines int
	// Streaming walks the working set sequentially (Stream-like)
	// instead of at random.
	Streaming bool
	// Divs is the number of integer divisions per iteration (batched).
	Divs int
	// AtomicProb is the probability that an iteration issues one
	// atomic unaligned access (a bus lock): legacy synchronization in
	// real code.
	AtomicProb float64
	// BurstIters groups iterations into bursts of roughly this size
	// separated by idle gaps; 0 runs continuously.
	BurstIters int
	// IdleCycles is the mean idle gap between bursts.
	IdleCycles uint64
	// BurstScale randomizes per-burst intensity in [BurstScale, 1] —
	// mailserver-style variability. 0 or 1 disables scaling.
	BurstScale float64
	// PeriodicSets makes iterations walk this many L2 sets in cyclic
	// order (webserver's directory-tree sweep) instead of random
	// working-set lines; a small jitter keeps the periodicity from
	// being machine-perfect.
	PeriodicSets int
	// HotLines is a small re-referenced region (loop indices, scalars,
	// metadata) touched every iteration. When bulk traffic — the
	// program's own or a sibling's — thrashes its sets, the re-access
	// is a genuine conflict miss: the benign source of the paper's
	// "some regular bursts and conflict cache misses".
	HotLines int
	// StormEvery, when non-zero, schedules a lock storm roughly every
	// StormEvery cycles: StormLocks atomic unaligned accesses spaced
	// StormSpacing apart — mailserver's fsync flurries, which give its
	// bus-lock histogram the paper's second distribution around
	// density bins 5–8 (at a likelihood ratio below 0.5).
	StormEvery   uint64
	StormLocks   int
	StormSpacing uint64
}

// program is the generic Spec interpreter, written as a resumable
// sim.Stepper state machine: each Step call advances through the
// states below until the next machine operation is decoded, so the
// engine executes the workload with zero channel traffic. The state
// progression and — critically — the RNG draw order are exactly those
// of the original blocking loop (m.Sleep(d) is two ops, Now then
// WaitUntil, with d drawn before either; likewise the storm-renewal
// draw happens after its Now op, matching Go's left-to-right operand
// evaluation in the old code), so verdicts are byte-identical under
// either driver.
type program struct {
	spec Spec
	seed uint64

	m   *sim.Machine
	rng *stats.RNG
	geo sim.Geometry

	addrs         []uint64
	cursor        uint64 // streaming cursor
	periodic      int    // periodic set cursor (resettable per burst)
	periodicTotal int    // monotonic periodic touch counter
	iterations    int
	nextStorm     uint64

	burst, b int
	scale    float64
	stormN   int    // locks remaining in the current storm
	sleepDur uint64 // drawn Sleep duration awaiting its WaitUntil
	pc       int
}

// Stepper states. Cases without an op fall through to the next state
// inside Step's loop.
const (
	wlBurstHeader   = iota // draw burst length / scale / periodic restart
	wlCompute              // optional Compute op
	wlMem                  // optional working-set LoadN
	wlHot                  // optional hot-region LoadN
	wlDivs                 // optional DivN
	wlAtomic               // optional AtomicUnaligned
	wlStormNow             // Now op opening the storm check
	wlStormCheck           // compare Now against nextStorm
	wlStormLock            // one storm AtomicUnaligned
	wlStormGapNow          // Now op of the intra-storm Sleep
	wlStormGapWait         // WaitUntil op of the intra-storm Sleep
	wlStormRenewNow        // Now op feeding the nextStorm draw
	wlStormRenew           // nextStorm draw (no op)
	wlIterEnd              // iteration bookkeeping
	wlIdleNow              // Now op of the inter-burst Sleep
	wlIdleWait             // WaitUntil op of the inter-burst Sleep
)

// New builds a sim.Program from a spec; seed individualizes instances
// of the same spec. The returned program holds per-run state: spawn
// each instance into exactly one process.
func New(spec Spec, seed uint64) sim.Program {
	if spec.Name == "" {
		panic("workload: spec needs a name")
	}
	return &program{spec: spec, seed: seed}
}

// Name implements sim.Program.
func (p *program) Name() string { return p.spec.Name }

// Run implements sim.Program for the goroutine reference driver by
// replaying the identical step stream through the blocking API.
func (p *program) Run(m *sim.Machine) { sim.RunSteps(p, m) }

// Begin implements sim.Stepper.
func (p *program) Begin(m *sim.Machine) {
	p.m = m
	p.rng = stats.NewRNG(p.seed ^ uint64(m.PID())<<32)
	p.geo = m.Geometry()
	p.addrs = make([]uint64, 0, p.spec.Lines)
	p.nextStorm = p.spec.StormEvery
	p.pc = wlBurstHeader
}

// Step implements sim.Stepper.
func (p *program) Step(prev sim.OpResult) (sim.Op, bool) {
	m, rng, spec := p.m, p.rng, &p.spec
	for {
		switch p.pc {
		case wlBurstHeader:
			p.burst = spec.BurstIters
			if p.burst <= 0 {
				p.burst = 1
			} else {
				p.burst = p.burst/2 + rng.Intn(p.burst) // ragged burst lengths
			}
			p.scale = 1.0
			if spec.BurstScale > 0 && spec.BurstScale < 1 {
				p.scale = spec.BurstScale + rng.Float64()*(1-spec.BurstScale)
			}
			if spec.PeriodicSets > 0 && spec.BurstIters > 0 {
				// Each burst opens a different file in the tree: the sweep
				// restarts at a random position, so periodicity holds only
				// within a burst — the paper's webserver shows exactly this
				// brief periodicity that dies out at longer lags.
				p.periodic = rng.Intn(spec.PeriodicSets)
			}
			p.b = 0
			p.pc = wlCompute

		case wlCompute:
			if p.b >= p.burst {
				p.pc = wlIdleNow
				continue
			}
			if spec.ComputeCycles > 0 {
				c := float64(spec.ComputeCycles)
				if spec.ComputeJitter > 0 {
					c *= 1 - spec.ComputeJitter + 2*spec.ComputeJitter*rng.Float64()
				}
				p.pc = wlMem
				return sim.Op{Kind: sim.OpCompute, Cycles: uint64(c)}, true
			}
			p.pc = wlMem

		case wlMem:
			// Real requests are ragged: file sizes, record counts and
			// block runs vary per iteration. The jitter also prevents
			// two paired instances from alternating in lockstep, which
			// would fabricate run-length periodicity no real pair has.
			n := 0
			if base := int(float64(spec.Lines) * p.scale); base > 0 {
				n = base/2 + rng.Intn(base+1)
			}
			p.pc = wlHot
			if n > 0 && (spec.WorkingSetLines > 0 || spec.PeriodicSets > 0) {
				addrs := p.addrs[:0]
				switch {
				case spec.PeriodicSets > 0:
					// Walk the "directory tree": consecutive sets with
					// occasional jitter; successive sweeps read different
					// blocks of each file (the way index advances per
					// sweep, so working pressure builds across sweeps
					// rather than within one).
					for i := 0; i < n; i++ {
						set := uint32(p.periodic % spec.PeriodicSets)
						if rng.Float64() < 0.08 {
							set = uint32(rng.Intn(spec.PeriodicSets))
						}
						way := (p.periodicTotal / spec.PeriodicSets) % p.geo.L2Ways
						addrs = append(addrs, m.L2AddrForSet(set%uint32(p.geo.L2Sets), way))
						p.periodic++
						p.periodicTotal++
					}
				case spec.Streaming:
					for i := 0; i < n; i++ {
						addrs = append(addrs, m.PrivateAddr(p.cursor%uint64(spec.WorkingSetLines)))
						p.cursor++
					}
				default:
					for i := 0; i < n; i++ {
						addrs = append(addrs, m.PrivateAddr(uint64(rng.Intn(spec.WorkingSetLines))))
					}
				}
				p.addrs = addrs
				return sim.Op{Kind: sim.OpLoadN, Addrs: addrs}, true
			}

		case wlHot:
			p.pc = wlDivs
			if spec.HotLines > 0 {
				addrs := p.addrs[:0]
				for i := 0; i < 8; i++ {
					addrs = append(addrs, m.PrivateAddr(1<<32|uint64((p.iterations*8+i)%spec.HotLines)))
				}
				p.addrs = addrs
				return sim.Op{Kind: sim.OpLoadN, Addrs: addrs}, true
			}

		case wlDivs:
			p.pc = wlAtomic
			if spec.Divs > 0 {
				// Machine.DivN short-circuits a non-positive count without
				// an engine round; mirror that skip here.
				if n := int(float64(spec.Divs) * p.scale); n > 0 {
					return sim.Op{Kind: sim.OpDivN, Count: n}, true
				}
			}

		case wlAtomic:
			p.pc = wlStormNow
			if spec.AtomicProb > 0 && rng.Float64() < spec.AtomicProb*p.scale {
				return sim.Op{Kind: sim.OpAtomicUnaligned}, true
			}

		case wlStormNow:
			if spec.StormEvery > 0 {
				p.pc = wlStormCheck
				return sim.Op{Kind: sim.OpNow}, true
			}
			p.pc = wlIterEnd

		case wlStormCheck:
			if prev.Now >= p.nextStorm {
				p.stormN = spec.StormLocks/2 + rng.Intn(spec.StormLocks)
				p.pc = wlStormLock
			} else {
				p.pc = wlIterEnd
			}

		case wlStormLock:
			if p.stormN > 0 {
				p.stormN--
				if spec.StormSpacing > 0 {
					p.pc = wlStormGapNow
				} else {
					p.pc = wlStormLock
				}
				return sim.Op{Kind: sim.OpAtomicUnaligned}, true
			}
			p.pc = wlStormRenewNow

		case wlStormGapNow:
			p.sleepDur = spec.StormSpacing/2 + uint64(rng.Intn(int(spec.StormSpacing)))
			p.pc = wlStormGapWait
			return sim.Op{Kind: sim.OpNow}, true

		case wlStormGapWait:
			p.pc = wlStormLock
			return sim.Op{Kind: sim.OpWaitUntil, Cycles: prev.Now + p.sleepDur}, true

		case wlStormRenewNow:
			p.pc = wlStormRenew
			return sim.Op{Kind: sim.OpNow}, true

		case wlStormRenew:
			p.nextStorm = prev.Now + spec.StormEvery/2 + uint64(rng.Intn(int(spec.StormEvery)))
			p.pc = wlIterEnd

		case wlIterEnd:
			p.iterations++
			p.b++
			p.pc = wlCompute

		case wlIdleNow:
			if spec.IdleCycles > 0 {
				p.sleepDur = uint64(float64(spec.IdleCycles) * (0.5 + rng.Float64()))
				p.pc = wlIdleWait
				return sim.Op{Kind: sim.OpNow}, true
			}
			p.pc = wlBurstHeader

		case wlIdleWait:
			p.pc = wlBurstHeader
			return sim.Op{Kind: sim.OpWaitUntil, Cycles: prev.Now + p.sleepDur}, true
		}
	}
}

// Gobmk models SPEC2006 go-playing search: CPU-heavy with pointer-chasing
// loads and noticeable legacy-atomic bus traffic ("numerous repeated
// accesses to the memory bus").
func Gobmk() Spec {
	return Spec{
		Name:            "gobmk",
		ComputeCycles:   40_000,
		ComputeJitter:   0.5,
		Lines:           24,
		WorkingSetLines: 32_768, // 2 MiB
		AtomicProb:      0.08,
		HotLines:        64,
	}
}

// Sjeng models SPEC2006 chess search: like gobmk with a smaller
// working set.
func Sjeng() Spec {
	return Spec{
		Name:            "sjeng",
		ComputeCycles:   30_000,
		ComputeJitter:   0.5,
		Lines:           16,
		WorkingSetLines: 16_384,
		AtomicProb:      0.06,
	}
}

// Bzip2 models SPEC2006 compression: blocks of arithmetic with a
// significant number of integer divisions.
func Bzip2() Spec {
	return Spec{
		Name:            "bzip2",
		ComputeCycles:   10_000,
		ComputeJitter:   0.4,
		Lines:           16,
		WorkingSetLines: 8_192,
		Divs:            200,
	}
}

// H264ref models SPEC2006 video encoding: divisions in rate control
// plus strided memory.
func H264ref() Spec {
	return Spec{
		Name:            "h264ref",
		ComputeCycles:   12_000,
		ComputeJitter:   0.4,
		Lines:           24,
		WorkingSetLines: 16_384,
		Divs:            256,
	}
}

// Mcf models SPEC2006 network simplex: memory-bound random access.
func Mcf() Spec {
	return Spec{
		Name:            "mcf",
		ComputeCycles:   8_000,
		ComputeJitter:   0.3,
		Lines:           48,
		WorkingSetLines: 131_072, // 8 MiB: misses dominate
		HotLines:        128,
	}
}

// Stream models McCalpin's STREAM: long sequential sweeps that are
// sized to be cache-competitive, so that two instances sharing an L2
// evict each other's arrays before they cycle back — genuine conflict
// misses, unlike a working set so large that every miss is a capacity
// miss the trackers rightly ignore.
func Stream() Spec {
	return Spec{
		Name:            "stream",
		ComputeCycles:   4_000,
		ComputeJitter:   0.1,
		Lines:           64,
		WorkingSetLines: 12_288, // 768 KiB per instance vs a 1 MiB L2
		Streaming:       true,
		HotLines:        512,
	}
}

// Mailserver models Filebench's mailserver: multi-threaded
// create-append-sync/read/delete bursts in one directory. The sync
// path issues lock-prefixed operations, so bursts carry bus locks of
// varying intensity — the paper's "second distribution between
// histogram bins #5 and #8" with likelihood ratio below 0.5.
func Mailserver() Spec {
	return Spec{
		Name:            "mailserver",
		ComputeCycles:   8_000,
		ComputeJitter:   0.6,
		Lines:           32,
		WorkingSetLines: 65_536,
		AtomicProb:      0.04, // steady trickle: density-1..3 windows
		StormEvery:      2_000_000,
		StormLocks:      10, // fsync flurry: density-5..8 windows
		StormSpacing:    14_000,
	}
}

// Webserver models Filebench's webserver: open-read-close sweeps over
// a directory tree plus a log append — a roughly periodic cache walk
// (the paper sees a brief periodicity between lags 120 and 180 that
// dies out past 180).
func Webserver() Spec {
	return Spec{
		Name:          "webserver",
		ComputeCycles: 10_000,
		ComputeJitter: 0.4,
		Lines:         24,
		PeriodicSets:  150,
		BurstIters:    10, // ~1.5 sweeps of the tree per request burst
		IdleCycles:    400_000,
	}
}

// Tenant models a light cloud co-tenant: short request bursts over a
// small, hot file/object cache (a 64-set footprint). Two tenants
// contest those sets continuously, producing a steady trickle of
// conflict misses whose footprint overlaps only a sliver of a covert
// channel's sets — the interference regime of the paper's
// low-bandwidth study (§VI-A).
func Tenant() Spec {
	return Spec{
		Name:          "tenant",
		ComputeCycles: 48_000,
		ComputeJitter: 0.5,
		Lines:         2,
		PeriodicSets:  64,
	}
}

// All returns every named spec, keyed by name.
func All() map[string]Spec {
	specs := []Spec{Gobmk(), Sjeng(), Bzip2(), H264ref(), Mcf(), Stream(), Mailserver(), Webserver(), Tenant()}
	out := make(map[string]Spec, len(specs))
	for _, s := range specs {
		out[s.Name] = s
	}
	return out
}

// Background returns a light noise process — the "few other active
// processes" the threat model requires alongside the trojan and spy.
func Background(i int) Spec {
	// Small working sets stay cache-resident: the noise such processes
	// inject into the conflict-miss train is the light interference
	// that shifts the paper's autocorrelation peak from 512 to 533,
	// not a flood that drowns the channel.
	return Spec{
		Name:            "background",
		ComputeCycles:   200_000 + uint64(i)*10_000,
		ComputeJitter:   0.6,
		Lines:           1,
		WorkingSetLines: 32,
		Divs:            4,
	}
}
