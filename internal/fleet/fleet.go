// Package fleet turns the single-machine CC-Hunter library into a
// multi-host detection service: N simulated hosts, each owned by a
// tenant, feed per-(host, channel) sharded streaming detectors through
// bounded ingest queues, and a hub aggregates the shards' interim and
// final verdicts into one fleet-wide picture.
//
// The layering mirrors a production deployment of the paper's auditor:
//
//	source (per stream)  — deterministic synthetic event generator,
//	                       standing in for a monitored host's sensor
//	ingest (per stream)  — stream.Ingest bounded queue; overload sheds
//	                       and counts instead of back-pressuring
//	shard  (per stream)  — auditor + stream.Detector, one detection
//	                       epoch at a time, finalized under a
//	                       runner.Supervise watchdog
//	hub    (per fleet)   — verdict dedupe, per-tenant accounting,
//	                       cross-host peak-lag correlation, JSON state
//
// Isolation is structural: every stream owns its queue, auditor, and
// detector, so a tenant that saturates its own queues sheds its own
// events and cannot stall or perturb another tenant's verdicts (the
// isolation tests pin this byte-for-byte). Determinism is preserved
// per stream: a stream's verdict depends only on its own seeded source
// and shed count, never on scheduling.
package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cchunter/internal/obs"
	"cchunter/internal/trace"
)

// Config sizes and seeds a fleet.
type Config struct {
	// Hosts is the number of simulated hosts (default 4).
	Hosts int
	// StreamsPerHost is the number of detection streams each host
	// feeds (default 2). Each stream is one (host, channel) shard.
	StreamsPerHost int
	// Tenants is the number of tenants hosts are assigned to,
	// round-robin (default 2, capped at Hosts).
	Tenants int
	// Quantum is the OS time quantum in simulated cycles
	// (default 100k — fleet hosts run a compressed clock; the per-host
	// CLIs keep the paper's 250M).
	Quantum uint64
	// EpochQuanta is the detection epoch length in quanta: every
	// stream finalizes a verdict each epoch and starts fresh
	// (default 32).
	EpochQuanta int
	// InterimEvery submits an interim verdict to the hub every this
	// many quanta (0 = epoch-end verdicts only).
	InterimEvery int
	// QueueLen is each stream's ingest queue capacity in batches
	// (default 64). Sizing it at or above an epoch's batch count makes
	// shedding impossible for a stream whose producer honors the epoch
	// cadence; smaller queues trade evidence for memory under overload.
	QueueLen int
	// QueueLenFor, when non-nil, overrides QueueLen per stream — the
	// hook for per-tenant QoS tiers (a best-effort tenant gets shallow
	// queues, a paying one deep). Returning <= 0 falls back to
	// QueueLen.
	QueueLenFor func(Key) int
	// BatchEvents is the event-batch granularity between source and
	// queue (default trace.DefaultBatchSize).
	BatchEvents int
	// CovertEvery plants a covert source on every Nth stream
	// (default 4; 0 disables covert traffic).
	CovertEvery int
	// SplitPair additionally plants one cross-host sender/receiver
	// pair: the first streams of the first two hosts share a covert
	// cache source signature, the co-residency scenario only a
	// multi-host hub can correlate.
	SplitPair bool
	// Seed drives every source in the fleet; per-stream seeds are
	// derived from it, the stream key, and the epoch.
	Seed uint64
	// Watchdog bounds each shard's finalize; an overrun or panic
	// becomes a degraded verdict at the hub (0 = unsupervised).
	Watchdog time.Duration
	// FlightEvents arms a per-stream flight recorder with this ring
	// capacity (negative = recorder default, 0 = off). A detection's
	// flight carries the stream's shed count for faithful replay.
	FlightEvents int
	// RatePerStream paces each stream's producer to roughly this many
	// events per second of wall clock (0 = unpaced, full speed).
	RatePerStream float64
	// Metrics receives fleet observability (hub counters, per-tenant
	// shed/backpressure, queue depths). Nil disables recording.
	Metrics *obs.Registry
	// WrapListener, when non-nil, wraps each shard's queue-side
	// listener — a test hook for injecting gates or taps between the
	// ingest queue and the detector. Production fleets leave it nil.
	WrapListener func(Key, trace.Listener) trace.Listener
}

func (c *Config) normalize() error {
	if c.Hosts <= 0 {
		c.Hosts = 4
	}
	if c.StreamsPerHost <= 0 {
		c.StreamsPerHost = 2
	}
	if c.Tenants <= 0 {
		c.Tenants = 2
	}
	if c.Tenants > c.Hosts {
		c.Tenants = c.Hosts
	}
	if c.Quantum == 0 {
		c.Quantum = 100_000
	}
	if c.EpochQuanta <= 0 {
		c.EpochQuanta = 32
	}
	if c.InterimEvery < 0 {
		c.InterimEvery = 0
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 64
	}
	if c.BatchEvents <= 0 {
		c.BatchEvents = trace.DefaultBatchSize
	}
	if c.CovertEvery < 0 {
		c.CovertEvery = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FlightEvents < 0 {
		c.FlightEvents = -1
	}
	return nil
}

// Fleet is a running set of simulated hosts and their detection
// shards, all reporting to one hub.
type Fleet struct {
	cfg   Config
	hub   *Hub
	hosts []*host
}

// host groups one simulated machine's streams under its tenant.
type host struct {
	name   string
	tenant string
	shards []*shard
}

// New builds a fleet. Nothing runs until Run.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg, hub: NewHub(cfg.Metrics)}
	for hi := 0; hi < cfg.Hosts; hi++ {
		h := &host{
			name:   fmt.Sprintf("host-%03d", hi),
			tenant: fmt.Sprintf("tenant-%02d", hi%cfg.Tenants),
		}
		for si := 0; si < cfg.StreamsPerHost; si++ {
			global := hi*cfg.StreamsPerHost + si
			profile := ProfileBenign
			if cfg.CovertEvery > 0 && global%cfg.CovertEvery == cfg.CovertEvery-1 {
				// Rotate covert channels so the fleet exercises every
				// detector family.
				switch (global / cfg.CovertEvery) % 3 {
				case 0:
					profile = ProfileCache
				case 1:
					profile = ProfileBus
				default:
					profile = ProfileDivider
				}
			}
			seed := deriveSeed(cfg.Seed, uint64(hi), uint64(si))
			period := uint64(3200 + 640*(global%5))
			if cfg.SplitPair && si == 0 && hi < 2 {
				// The split sender/receiver pair: same signature on two
				// different hosts. deriveSeed is shared so the two
				// sources emit phase-locked trains.
				profile = ProfileCache
				seed = deriveSeed(cfg.Seed, 0xfeed, 0xbeef)
				period = 4096
			}
			key := Key{Host: h.name, Tenant: h.tenant, Stream: si, Channel: profile.Channel()}
			queueLen := cfg.QueueLen
			if cfg.QueueLenFor != nil {
				if n := cfg.QueueLenFor(key); n > 0 {
					queueLen = n
				}
			}
			s, err := newShard(key, shardConfig{
				Quantum:      cfg.Quantum,
				Contexts:     defaultContexts,
				QueueLen:     queueLen,
				FlightEvents: cfg.FlightEvents,
				Watchdog:     cfg.Watchdog,
				Metrics:      cfg.Metrics,
				Wrap:         cfg.WrapListener,
			})
			if err != nil {
				return nil, fmt.Errorf("fleet: building %s: %w", key, err)
			}
			s.src = newSource(seed, profile, cfg.Quantum, period)
			h.shards = append(h.shards, s)
			f.hub.register(key)
		}
		f.hosts = append(f.hosts, h)
	}
	return f, nil
}

// Hub returns the fleet's verdict hub (state snapshots, HTTP handler).
func (f *Fleet) Hub() *Hub { return f.hub }

// Streams reports the fleet's total stream count.
func (f *Fleet) Streams() int { return f.cfg.Hosts * f.cfg.StreamsPerHost }

// Run pumps the fleet for the given number of detection epochs
// (epochs <= 0 runs until ctx is cancelled; cancellation finishes the
// current epoch so every stream still renders a final verdict). Hosts
// run concurrently; within a host, streams pump quantum by quantum.
func (f *Fleet) Run(ctx context.Context, epochs int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var wg sync.WaitGroup
	for _, h := range f.hosts {
		wg.Add(1)
		go func(h *host) {
			defer wg.Done()
			f.runHost(ctx, h, epochs)
		}(h)
	}
	wg.Wait()
	f.hub.refreshCorrelations()
	return ctx.Err()
}

// runHost drives one host's streams through detection epochs.
func (f *Fleet) runHost(ctx context.Context, h *host, epochs int) {
	cfg := f.cfg
	var pace *pacer
	if cfg.RatePerStream > 0 {
		pace = newPacer(cfg.RatePerStream * float64(len(h.shards)))
	}
	for epoch := 0; epochs <= 0 || epoch < epochs; epoch++ {
		for _, s := range h.shards {
			s.beginEpoch(epoch)
		}
		for q := 0; q < cfg.EpochQuanta; q++ {
			for _, s := range h.shards {
				s.pumpQuantum(cfg.BatchEvents)
				if pace != nil {
					pace.produced(s.lastQuantumEvents)
				}
			}
			if cfg.InterimEvery > 0 && (q+1)%cfg.InterimEvery == 0 && q+1 < cfg.EpochQuanta {
				for _, s := range h.shards {
					s.interim(f.hub)
				}
			}
			if pace != nil {
				pace.sleep()
			}
		}
		for _, s := range h.shards {
			s.finalizeEpoch(f.hub)
		}
		f.hub.accountHost(h.name, h.tenant, h.produced(), h.shed(), h.backlog())
		if ctx.Err() != nil {
			return
		}
	}
}

// produced sums the host's lifetime produced-event count.
func (h *host) produced() uint64 {
	var n uint64
	for _, s := range h.shards {
		n += s.produced
	}
	return n
}

// shed sums the host's lifetime shed-event count.
func (h *host) shed() uint64 {
	var n uint64
	for _, s := range h.shards {
		n += s.shedTotal
	}
	return n
}

// backlog sums the host's current queued-batch depth.
func (h *host) backlog() int {
	var n int
	for _, s := range h.shards {
		if s.in != nil {
			n += s.in.Pending()
		}
	}
	return n
}

// Flights drains every flight the fleet's shards captured so far
// (detections only; nil FlightEvents capture nothing).
func (f *Fleet) Flights() []CapturedFlight {
	var out []CapturedFlight
	for _, h := range f.hosts {
		for _, s := range h.shards {
			out = append(out, s.takeFlights()...)
		}
	}
	return out
}

// deriveSeed mixes the fleet seed with a stream coordinate, splitmix64
// style, so neighboring streams get decorrelated generators.
func deriveSeed(root, a, b uint64) uint64 {
	z := root + 0x9e3779b97f4a7c15*(a+1) + 0x94d049bb133111eb*(b+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pacer throttles a host's producers to a target event rate. Pacing is
// wall-clock only; it never alters the generated trains, so paced and
// unpaced fleets render identical verdicts.
type pacer struct {
	perSec  float64
	pending uint64
	last    time.Time
}

func newPacer(perSec float64) *pacer {
	return &pacer{perSec: perSec, last: time.Now()}
}

func (p *pacer) produced(n uint64) { p.pending += n }

func (p *pacer) sleep() {
	want := time.Duration(float64(p.pending) / p.perSec * float64(time.Second))
	elapsed := time.Since(p.last)
	if want > elapsed {
		time.Sleep(want - elapsed)
	}
	p.pending = 0
	p.last = time.Now()
}
