package fleet

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cchunter/internal/obs"
	"cchunter/internal/trace"
)

// gate blocks a shard's consumer until released, counting every event
// that does get through. Holding the consumer makes the bounded ingest
// queue fill and shed — a deterministic stand-in for a tenant whose
// detector cannot keep up.
type gate struct {
	next      trace.Listener
	release   chan struct{}
	delivered atomic.Uint64
}

func (g *gate) wait() { <-g.release }

func (g *gate) OnEvent(e trace.Event) {
	g.wait()
	g.delivered.Add(1)
	g.next.OnEvent(e)
}

func (g *gate) OnEvents(events []trace.Event) {
	g.wait()
	g.delivered.Add(uint64(len(events)))
	trace.Deliver(g.next, events)
}

// tap counts delivered events without interfering — the control side
// of the conservation check.
type tap struct {
	next      trace.Listener
	delivered atomic.Uint64
}

func (t *tap) OnEvent(e trace.Event) {
	t.delivered.Add(1)
	t.next.OnEvent(e)
}

func (t *tap) OnEvents(events []trace.Event) {
	t.delivered.Add(uint64(len(events)))
	trace.Deliver(t.next, events)
}

// isolationConfig is a fleet where tenant-01's queues are shallow
// enough to overflow once their consumers stall, while every other
// stream's queue exceeds its epoch batch count — so victims cannot
// shed no matter how the scheduler interleaves.
func isolationConfig(overloaded string) Config {
	return Config{
		Hosts:          4,
		StreamsPerHost: 2,
		Tenants:        2,
		EpochQuanta:    16,
		InterimEvery:   0, // interims use Do, which blocks on a stalled consumer
		QueueLen:       4096,
		BatchEvents:    32,
		CovertEvery:    4,
		Seed:           7,
		QueueLenFor: func(k Key) int {
			if k.Tenant == overloaded {
				return 4
			}
			return 0
		},
	}
}

// victimStreams strips the overloaded tenant and volatile counters out
// of a fleet state, leaving exactly the per-stream verdicts the
// isolation guarantee covers.
func victimStreams(t *testing.T, st State, overloaded string) []byte {
	t.Helper()
	var keep []StreamState
	for _, s := range st.Streams {
		if s.Key.Tenant != overloaded {
			keep = append(keep, s)
		}
	}
	buf, err := json.MarshalIndent(keep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestTenantIsolationUnderOverload overloads every tenant-01 stream by
// stalling its consumers mid-epoch and pins two guarantees:
//
//  1. Exact shed accounting: events are conserved — every generated
//     event is either delivered to a detector or counted shed, stream
//     by stream, and the counts surface identically in the final
//     verdicts, the tenant stats, and the obs registry.
//  2. Isolation: tenant-00's verdicts are byte-identical to the same
//     fleet run with no overload anywhere.
func TestTenantIsolationUnderOverload(t *testing.T) {
	const overloaded = "tenant-01"

	// Baseline: identical fleet, nobody stalled, every queue deep
	// enough that nothing sheds.
	baseCfg := isolationConfig(overloaded)
	baseCfg.QueueLenFor = nil
	base, err := New(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	baseSt := base.Hub().State()
	for _, s := range baseSt.Streams {
		if s.EventsShed != 0 {
			t.Fatalf("baseline shed events on %s — queue sizing broken", s.Key)
		}
	}
	wantVictim := victimStreams(t, baseSt, overloaded)

	// Overloaded run: gate every tenant-01 consumer, tap the rest.
	// WrapListener fires on concurrent host goroutines, so the maps
	// need a lock.
	reg := obs.NewRegistry()
	var wrapMu sync.Mutex
	gates := map[Key]*gate{}
	taps := map[Key]*tap{}
	cfg := isolationConfig(overloaded)
	cfg.Metrics = reg
	cfg.WrapListener = func(k Key, next trace.Listener) trace.Listener {
		wrapMu.Lock()
		defer wrapMu.Unlock()
		if k.Tenant == overloaded {
			// Single-epoch run: each stream wraps exactly once.
			g := &gate{next: next, release: make(chan struct{})}
			gates[k] = g
			return g
		}
		tp := &tap{next: next}
		taps[k] = tp
		return tp
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- f.Run(context.Background(), 1) }()

	// Release the gates once the stalled hosts are parked in Close()
	// waiting for their queues to drain. Producers never block on a full
	// queue, so by then each gated stream's epoch is fully produced and
	// its shed count is settled; releasing only lets the residue drain.
	if !waitSettled(reg) {
		t.Fatal("gated streams never settled — no shedding observed")
	}
	for _, g := range gates {
		close(g.release)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("fleet did not finish after releasing gates")
	}

	st := f.Hub().State()

	// Guarantee 1: conservation, stream by stream. produced = delivered
	// + shed exactly; the verdict's EventsShed agrees.
	var hostShed = map[string]uint64{}
	var totalShed uint64
	for _, h := range f.hosts {
		for _, s := range h.shards {
			hostShed[s.key.Tenant] += s.shedTotal
			totalShed += s.shedTotal
			var delivered uint64
			if g := gates[s.key]; g != nil {
				delivered = g.delivered.Load()
			} else if tp := taps[s.key]; tp != nil {
				delivered = tp.delivered.Load()
			} else {
				t.Fatalf("%s: neither gated nor tapped", s.key)
			}
			if s.produced != delivered+s.shedTotal {
				t.Errorf("%s: produced %d != delivered %d + shed %d",
					s.key, s.produced, delivered, s.shedTotal)
			}
		}
	}
	if totalShed == 0 {
		t.Fatal("overload produced no shedding")
	}
	if hostShed["tenant-00"] != 0 {
		t.Errorf("victim tenant shed %d events", hostShed["tenant-00"])
	}
	for _, s := range st.Streams {
		var wantShed uint64
		for _, h := range f.hosts {
			for _, sh := range h.shards {
				if sh.key == s.Key {
					wantShed = sh.shedTotal
				}
			}
		}
		if s.EventsShed != wantShed {
			t.Errorf("%s: verdict EventsShed %d, shard shed %d", s.Key, s.EventsShed, wantShed)
		}
	}
	// The same numbers in tenant stats and the obs registry.
	if got := st.Tenants[overloaded].Shed; got != hostShed[overloaded] {
		t.Errorf("tenant stats shed %d, shards shed %d", got, hostShed[overloaded])
	}
	if got := st.Tenants["tenant-00"].Shed; got != 0 {
		t.Errorf("victim tenant stats shed %d, want 0", got)
	}
	snap := reg.Snapshot()
	if got := uint64(snap.Counters["stream.events_shed"]); got != totalShed {
		t.Errorf("stream.events_shed counter %d, shards shed %d", got, totalShed)
	}

	// Guarantee 2: tenant-00's verdicts byte-identical to the unloaded
	// baseline.
	gotVictim := victimStreams(t, st, overloaded)
	if string(gotVictim) != string(wantVictim) {
		t.Errorf("overloading %s changed another tenant's verdicts\nbaseline:\n%s\noverloaded:\n%s",
			overloaded, wantVictim, gotVictim)
	}

	// And the overloaded tenant's own verdicts carry the shed count in
	// their evidence, not silence: an operator reading the verdict can
	// see its reduced evidence base.
	for _, s := range st.Streams {
		if s.Key.Tenant != overloaded {
			continue
		}
		if s.EventsShed == 0 {
			t.Errorf("%s: overloaded stream reports no shed events", s.Key)
		}
	}
}

// waitSettled polls the shed counter until it is positive and stops
// moving — the point where every gated producer has finished its epoch
// and parked in Close.
func waitSettled(reg *obs.Registry) bool {
	deadline := time.Now().Add(30 * time.Second)
	var last uint64
	stable := 0
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		cur := reg.Snapshot().Counters["stream.events_shed"]
		if cur > 0 && cur == last {
			stable++
			if stable >= 5 {
				return true
			}
		} else {
			stable = 0
		}
		last = cur
	}
	return false
}

// TestWrapListenerKeys pins that the wrap hook sees every stream
// exactly once, keyed correctly.
func TestWrapListenerKeys(t *testing.T) {
	cfg := isolationConfig("tenant-01")
	var mu sync.Mutex
	seen := map[Key]int{}
	cfg.WrapListener = func(k Key, next trace.Listener) trace.Listener {
		mu.Lock()
		seen[k]++
		mu.Unlock()
		return next
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if want := cfg.Hosts * cfg.StreamsPerHost; len(seen) != want {
		t.Fatalf("wrap saw %d distinct keys, want %d", len(seen), want)
	}
	for k, n := range seen {
		if n != 2 {
			t.Errorf("%s wrapped %d times, want once per epoch (2)", k, n)
		}
		if !strings.HasPrefix(k.Host, "host-") || !strings.HasPrefix(k.Tenant, "tenant-") {
			t.Errorf("malformed key %s", k)
		}
	}
}
