package fleet

import (
	"encoding/json"
	"testing"

	"cchunter/internal/core"
	"cchunter/internal/obs"
	"cchunter/internal/trace"
)

func testKey(host, tenant string, stream int, channel string) Key {
	return Key{Host: host, Tenant: tenant, Stream: stream, Channel: channel}
}

// detectedReport builds a distinct detected verdict; vary lr to vary
// the fingerprint.
func detectedReport(lr float64) core.Report {
	return core.Report{
		Detected:   true,
		Confidence: 1,
		Contention: []core.ContentionVerdict{{
			Kind:     trace.KindBusLock,
			Analysis: core.BurstAnalysis{Detected: true, LikelihoodRatio: lr},
		}},
	}
}

func cleanReport() core.Report {
	return core.Report{Confidence: 1}
}

func TestHubStaleAndOrdering(t *testing.T) {
	h := NewHub(nil)
	k := testKey("host-000", "tenant-00", 0, "bus")

	if !h.Submit(Update{Key: k, Seq: 2, Report: detectedReport(9)}) {
		t.Fatal("first submission rejected")
	}
	// An older interim arriving late must not overwrite the newer state.
	if h.Submit(Update{Key: k, Seq: 1, Report: cleanReport()}) {
		t.Error("stale submission applied")
	}
	st := h.State()
	if len(st.Streams) != 1 {
		t.Fatalf("streams = %d, want 1", len(st.Streams))
	}
	if !st.Streams[0].Detected {
		t.Error("stale clean verdict overwrote the newer detection")
	}
	if st.Streams[0].Stale != 1 || st.Stale != 1 {
		t.Errorf("stale counts = %d/%d, want 1/1", st.Streams[0].Stale, st.Stale)
	}
	// Equal Seq is stale too: each submission must carry a fresh cursor.
	if h.Submit(Update{Key: k, Seq: 2, Report: detectedReport(11)}) {
		t.Error("equal-Seq submission applied")
	}
}

func TestHubDedupe(t *testing.T) {
	h := NewHub(nil)
	k := testKey("host-000", "tenant-00", 0, "bus")

	if !h.Submit(Update{Key: k, Seq: 1, Report: detectedReport(9)}) {
		t.Fatal("first submission rejected")
	}
	// The identical verdict again: dropped as a repeat, but the Seq
	// cursor still advances so a later real change is not mistaken for
	// stale.
	if h.Submit(Update{Key: k, Seq: 2, Report: detectedReport(9)}) {
		t.Error("identical repeat verdict applied")
	}
	st := h.State()
	if st.Streams[0].Seq != 2 {
		t.Errorf("Seq = %d after dedupe, want 2 (cursor must advance)", st.Streams[0].Seq)
	}
	if st.Streams[0].Deduped != 1 || st.Deduped != 1 {
		t.Errorf("dedupe counts = %d/%d, want 1/1", st.Streams[0].Deduped, st.Deduped)
	}
	// A changed verdict with the next Seq applies.
	if !h.Submit(Update{Key: k, Seq: 3, Report: detectedReport(12)}) {
		t.Error("changed verdict deduplicated")
	}
	// The same verdict but with different finality is NOT a repeat: an
	// interim preview hardening into a final verdict is a state change.
	if !h.Submit(Update{Key: k, Seq: 4, Final: true, Report: detectedReport(12)}) {
		t.Error("interim→final transition deduplicated")
	}
	st = h.State()
	if st.Streams[0].Updates != 3 {
		t.Errorf("applied updates = %d, want 3", st.Streams[0].Updates)
	}
	if st.Finals != 1 || st.Streams[0].FinalEpochs != 1 || st.Streams[0].DetectedEpochs != 1 {
		t.Errorf("finals=%d finalEpochs=%d detectedEpochs=%d, want 1/1/1",
			st.Finals, st.Streams[0].FinalEpochs, st.Streams[0].DetectedEpochs)
	}
}

func TestHubFingerprintSensitivity(t *testing.T) {
	base := detectedReport(9)

	mutations := map[string]func(r core.Report) core.Report{
		"confidence": func(r core.Report) core.Report { r.Confidence = 0.5; return r },
		"failure":    func(r core.Report) core.Report { r.Failure = "watchdog"; return r },
		"likelihood": func(r core.Report) core.Report { r.Contention[0].Analysis.LikelihoodRatio = 10; return r },
		"shed": func(r core.Report) core.Report {
			r.Streaming = &core.StreamingInfo{EventsShed: 3}
			return r
		},
		"oscillation": func(r core.Report) core.Report {
			r.Oscillation = &core.OscillationVerdict{Detected: true}
			return r
		},
	}
	for name, mutate := range mutations {
		r := base
		r.Contention = append([]core.ContentionVerdict(nil), base.Contention...)
		if fingerprint(mutate(r)) == fingerprint(base) {
			t.Errorf("%s mutation not reflected in fingerprint — hub would dedupe a changed verdict", name)
		}
	}
	// And the identity case: metrics snapshots must NOT perturb it.
	withMetrics := base
	withMetrics.Metrics = &obs.Snapshot{}
	if fingerprint(withMetrics) != fingerprint(base) {
		t.Error("metrics snapshot changed the fingerprint — observability would defeat dedupe")
	}
}

func TestHubTenantAccountingAcrossHosts(t *testing.T) {
	h := NewHub(nil)
	h.register(testKey("host-000", "tenant-00", 0, "bus"))
	h.register(testKey("host-002", "tenant-00", 0, "bus"))

	// Two hosts of the same tenant report lifetime totals; the tenant
	// row is their sum, and a host re-reporting replaces its own
	// contribution instead of double-counting.
	h.accountHost("host-000", "tenant-00", 100, 10, 1)
	h.accountHost("host-002", "tenant-00", 50, 5, 2)
	h.accountHost("host-000", "tenant-00", 200, 20, 0)

	st := h.State()
	ten := st.Tenants["tenant-00"]
	if ten.Produced != 250 || ten.Shed != 25 || ten.Backlog != 2 {
		t.Errorf("tenant totals = produced %d shed %d backlog %d, want 250/25/2",
			ten.Produced, ten.Shed, ten.Backlog)
	}
	if ten.Streams != 2 {
		t.Errorf("tenant streams = %d, want 2", ten.Streams)
	}
}

func TestHubStateSortedAndSerializable(t *testing.T) {
	h := NewHub(nil)
	keys := []Key{
		testKey("host-001", "tenant-01", 1, "cache"),
		testKey("host-000", "tenant-00", 1, "benign"),
		testKey("host-001", "tenant-01", 0, "bus"),
		testKey("host-000", "tenant-00", 0, "benign"),
	}
	for i, k := range keys {
		h.Submit(Update{Key: k, Seq: 1, Report: detectedReport(float64(i + 2))})
	}
	st := h.State()
	for i := 1; i < len(st.Streams); i++ {
		if !keyLess(st.Streams[i-1].Key, st.Streams[i].Key) {
			t.Fatalf("streams not sorted at %d: %s !< %s",
				i, st.Streams[i-1].Key, st.Streams[i].Key)
		}
	}
	// Two serializations of the same state must be byte-identical —
	// the JSON endpoint is diffed by scrapers.
	a, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(h.State())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("repeated State() snapshots serialize differently")
	}
}

func TestHubCorrelationCacheInvalidation(t *testing.T) {
	h := NewHub(nil)
	a := testKey("host-000", "tenant-00", 0, "cache")
	b := testKey("host-001", "tenant-01", 0, "cache")
	osc := func(lag int) core.Report {
		return core.Report{
			Detected:   true,
			Confidence: 1,
			Oscillation: &core.OscillationVerdict{
				Detected: true,
				Best:     core.OscillationAnalysis{Detected: true, FundamentalLag: lag, PeakValue: 0.9},
			},
		}
	}
	h.Submit(Update{Key: a, Seq: 1, Report: osc(512)})
	if got := h.State().Correlations; len(got) != 0 {
		t.Fatalf("one-host correlation: %v", got)
	}
	// The matching signature on a second host must surface on the next
	// snapshot: Submit invalidates the lazy correlation cache.
	h.Submit(Update{Key: b, Seq: 1, Report: osc(530)})
	got := h.State().Correlations
	if len(got) != 1 {
		t.Fatalf("correlations = %d, want 1", len(got))
	}
	if got[0].Channel != "cache" || got[0].PeakLag != 530 || got[0].LagDelta != 18 {
		t.Errorf("correlation = %+v, want cache lag 530 ±18", got[0])
	}
	// Far-apart lags must not correlate.
	h.Submit(Update{Key: b, Seq: 2, Report: osc(1024)})
	if got := h.State().Correlations; len(got) != 0 {
		t.Errorf("disjoint lags correlated: %+v", got)
	}
}
