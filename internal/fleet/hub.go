package fleet

import (
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"math"
	"net/http"
	"sort"
	"sync"

	"cchunter/internal/core"
	"cchunter/internal/obs"
)

// Update is one shard→hub verdict submission. Seq orders a single
// stream's updates; the hub drops stale (out-of-order) submissions and
// dedupes repeats, so a slow interim can never overwrite a newer
// verdict and an unchanged verdict never churns fleet state.
type Update struct {
	Key    Key
	Seq    uint64
	Epoch  int
	Cycle  uint64
	Final  bool
	Report core.Report
}

// StreamState is the hub's current picture of one stream.
type StreamState struct {
	Key   Key    `json:"key"`
	Seq   uint64 `json:"seq"`
	Epoch int    `json:"epoch"`
	Cycle uint64 `json:"cycle"`
	// Final reports whether the latest applied update was an epoch-end
	// verdict (as opposed to an interim preview).
	Final bool `json:"final"`
	// Detected, Confidence, and Failure mirror the latest verdict.
	Detected   bool    `json:"detected"`
	Confidence float64 `json:"confidence"`
	Failure    string  `json:"failure,omitempty"`
	// PeakLag is the oscillation verdict's fundamental lag when the
	// cache detector fired (0 otherwise) — the cross-host correlation
	// signature.
	PeakLag int `json:"peakLag,omitempty"`
	// OnsetCycle is the earliest fired streaming onset estimate.
	OnsetCycle uint64 `json:"onsetCycle,omitempty"`
	// EventsShed is the latest final verdict's shed count.
	EventsShed uint64 `json:"eventsShed,omitempty"`
	// Updates/Deduped/Stale count this stream's applied, deduplicated,
	// and out-of-order-dropped submissions.
	Updates uint64 `json:"updates"`
	Deduped uint64 `json:"deduped,omitempty"`
	Stale   uint64 `json:"stale,omitempty"`
	// FinalEpochs and DetectedEpochs count completed epochs and how
	// many of them ended detected.
	FinalEpochs    int `json:"finalEpochs"`
	DetectedEpochs int `json:"detectedEpochs"`

	fp uint64
}

// TenantStats is one tenant's backpressure/shed accounting.
type TenantStats struct {
	// Streams is how many streams the tenant owns.
	Streams int `json:"streams"`
	// Produced and Shed are lifetime event counts; Produced-Shed
	// events reached the tenant's detectors.
	Produced uint64 `json:"produced"`
	Shed     uint64 `json:"shed"`
	// Backlog is the queued-batch depth at the last epoch boundary.
	Backlog int `json:"backlog"`
}

// State is a point-in-time fleet snapshot, shaped for JSON.
type State struct {
	// Streams is every stream's state, sorted by key for deterministic
	// serialization.
	Streams []StreamState `json:"streams"`
	// Tenants maps tenant name to its accounting.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
	// Correlations are cross-host channel signatures (see correlate.go).
	Correlations []Correlation `json:"correlations,omitempty"`
	// Aggregates.
	Updates         uint64 `json:"updates"`
	Deduped         uint64 `json:"deduped"`
	Stale           uint64 `json:"stale"`
	Finals          uint64 `json:"finals"`
	DetectedStreams int    `json:"detectedStreams"`
}

// Hub aggregates verdicts from every shard in the fleet. All methods
// are safe for concurrent use; shards on different hosts submit from
// their own goroutines.
type Hub struct {
	mu       sync.Mutex
	streams  map[Key]*StreamState
	tenants  map[string]*TenantStats
	hosts    map[string]hostTotals
	corr     []Correlation
	corrOK   bool
	updates  uint64
	deduped  uint64
	stale    uint64
	finals   uint64
	detected int

	reg *obs.Registry
}

// NewHub returns an empty hub recording aggregates into reg (nil is
// fine).
func NewHub(reg *obs.Registry) *Hub {
	return &Hub{
		streams: make(map[Key]*StreamState),
		tenants: make(map[string]*TenantStats),
		reg:     reg,
	}
}

// register pre-creates a stream's state (and its tenant's accounting
// row) so a snapshot before the first verdict still lists the fleet's
// full shape.
func (h *Hub) register(k Key) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.streams[k]; !ok {
		h.streams[k] = &StreamState{Key: k, Confidence: 1}
	}
	t := h.tenant(k.Tenant)
	t.Streams++
	h.reg.Gauge("fleet.hub.streams").Set(int64(len(h.streams)))
}

func (h *Hub) tenant(name string) *TenantStats {
	t, ok := h.tenants[name]
	if !ok {
		t = &TenantStats{}
		h.tenants[name] = t
	}
	return t
}

// Submit applies one update. It returns true when the update changed
// fleet state, false when it was dropped as stale (Seq not newer than
// the last applied) or deduplicated (identical verdict fingerprint
// with the same finality as the current state).
func (h *Hub) Submit(u Update) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.streams[u.Key]
	if !ok {
		st = &StreamState{Key: u.Key, Confidence: 1}
		h.streams[u.Key] = st
		h.tenant(u.Key.Tenant).Streams++
		h.reg.Gauge("fleet.hub.streams").Set(int64(len(h.streams)))
	}
	if u.Seq <= st.Seq {
		st.Stale++
		h.stale++
		h.reg.Counter("fleet.hub.stale").Inc()
		return false
	}
	fp := fingerprint(u.Report)
	if fp == st.fp && u.Final == st.Final && st.Updates > 0 {
		// An unchanged verdict: advance the cursor, count the repeat,
		// but leave the materialized state (and correlation cache)
		// untouched.
		st.Seq = u.Seq
		st.Deduped++
		h.deduped++
		h.reg.Counter("fleet.hub.deduped").Inc()
		return false
	}
	wasDetected := st.Detected
	st.Seq = u.Seq
	st.Epoch = u.Epoch
	st.Cycle = u.Cycle
	st.Final = u.Final
	st.fp = fp
	st.Updates++
	st.Detected = u.Report.Detected
	st.Confidence = u.Report.Confidence
	st.Failure = u.Report.Failure
	st.PeakLag = 0
	if osc := u.Report.Oscillation; osc != nil && osc.Detected {
		st.PeakLag = osc.Best.FundamentalLag
	}
	st.OnsetCycle = 0
	if s := u.Report.Streaming; s != nil {
		st.EventsShed = s.EventsShed
		for _, o := range s.Onsets {
			if o.Detected && (st.OnsetCycle == 0 || o.OnsetCycle < st.OnsetCycle) {
				st.OnsetCycle = o.OnsetCycle
			}
		}
	}
	h.updates++
	h.reg.Counter("fleet.hub.updates").Inc()
	if u.Final {
		st.FinalEpochs++
		h.finals++
		h.reg.Counter("fleet.hub.finals").Inc()
		if st.Detected {
			st.DetectedEpochs++
		}
	}
	if st.Detected != wasDetected {
		if st.Detected {
			h.detected++
		} else {
			h.detected--
		}
		h.reg.Gauge("fleet.hub.detected").Set(int64(h.detected))
	}
	h.corrOK = false
	return true
}

// hostTotals is one host's latest lifetime accounting report.
type hostTotals struct {
	tenant   string
	produced uint64
	shed     uint64
	backlog  int
}

// accountHost records one host's lifetime counters and recomputes its
// tenant's row (a tenant spans several hosts, each reporting its own
// totals). The totals are also published as registry gauges so the
// metrics endpoint shows the same numbers the fleet state does.
func (h *Hub) accountHost(hostName, tenant string, produced, shed uint64, backlog int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.hosts == nil {
		h.hosts = make(map[string]hostTotals)
	}
	h.hosts[hostName] = hostTotals{tenant: tenant, produced: produced, shed: shed, backlog: backlog}
	t := h.tenant(tenant)
	t.Produced, t.Shed, t.Backlog = 0, 0, 0
	for _, ht := range h.hosts {
		if ht.tenant != tenant {
			continue
		}
		t.Produced += ht.produced
		t.Shed += ht.shed
		t.Backlog += ht.backlog
	}
	h.reg.Gauge("fleet.tenant.produced."+tenant).Set(int64(t.Produced))
	h.reg.Gauge("fleet.tenant.shed."+tenant).Set(int64(t.Shed))
	h.reg.Gauge("fleet.tenant.backlog."+tenant).Set(int64(t.Backlog))
}

// State snapshots the hub: streams sorted by key, tenant accounting,
// and (recomputing lazily) cross-host correlations.
func (h *Hub) State() State {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.corrOK {
		h.corr = correlateLocked(h.streams)
		h.corrOK = true
		h.reg.Gauge("fleet.hub.correlations").Set(int64(len(h.corr)))
	}
	s := State{
		Streams: make([]StreamState, 0, len(h.streams)),
		Updates: h.updates,
		Deduped: h.deduped,
		Stale:   h.stale,
		Finals:  h.finals,
	}
	for _, st := range h.streams {
		s.Streams = append(s.Streams, *st)
		if st.Detected {
			s.DetectedStreams++
		}
	}
	sort.Slice(s.Streams, func(i, j int) bool {
		return keyLess(s.Streams[i].Key, s.Streams[j].Key)
	})
	if len(h.tenants) > 0 {
		s.Tenants = make(map[string]TenantStats, len(h.tenants))
		for name, t := range h.tenants {
			s.Tenants[name] = *t
		}
	}
	s.Correlations = append([]Correlation(nil), h.corr...)
	return s
}

// refreshCorrelations forces the lazy correlation pass now (Run calls
// it once at shutdown so a final snapshot is complete even if nobody
// polls State afterwards).
func (h *Hub) refreshCorrelations() {
	h.State()
}

// Handler serves the fleet state as indented JSON — the hub's half of
// the daemon's HTTP surface (the obs registry handler is the other).
func (h *Hub) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.State())
	})
}

// fingerprint hashes a report's verdict-bearing fields. Two reports
// with equal fingerprints render the same operator-facing verdict, so
// the hub treats the later one as a repeat. Metrics snapshots and
// retention diagnostics are deliberately excluded — they churn every
// quantum without changing what an operator would act on.
func fingerprint(r core.Report) uint64 {
	fh := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		fh.Write(buf[:])
	}
	wb := func(b bool) {
		if b {
			w(1)
		} else {
			w(0)
		}
	}
	wb(r.Detected)
	w(math.Float64bits(r.Confidence))
	fh.Write([]byte(r.Failure))
	for _, c := range r.Contention {
		w(uint64(c.Kind))
		wb(c.Analysis.Detected)
		w(math.Float64bits(c.Analysis.LikelihoodRatio))
		w(uint64(c.Analysis.ThresholdDensity))
		w(uint64(c.Analysis.BurstQuanta))
		w(math.Float64bits(c.Degradation.Confidence))
	}
	if o := r.Oscillation; o != nil {
		wb(o.Detected)
		w(uint64(o.DetectedWindows))
		w(uint64(o.Best.FundamentalLag))
		w(math.Float64bits(o.Best.PeakValue))
		w(math.Float64bits(o.Degradation.Confidence))
	}
	if s := r.Streaming; s != nil {
		w(s.EventsShed)
		for _, on := range s.Onsets {
			wb(on.Detected)
			w(on.OnsetCycle)
		}
	}
	return fh.Sum64()
}
