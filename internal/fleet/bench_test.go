package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
)

// benchFleetConfig is the fleet the committed BENCH_pipeline.json
// numbers come from: 1,024 streams across 128 hosts and 8 tenants, the
// daemon's default queue depth, covert traffic on every fourth stream.
func benchFleetConfig() Config {
	return Config{
		Hosts:          128,
		StreamsPerHost: 8,
		Tenants:        8,
		EpochQuanta:    8,
		InterimEvery:   4,
		QueueLen:       64,
		CovertEvery:    4,
		SplitPair:      true,
		Seed:           1,
	}
}

// BenchmarkFleetPipeline drives the full cchuntd pipeline — sources,
// bounded ingest queues, sharded streaming detectors, hub aggregation
// — over ≥1,000 streams and reports end-to-end throughput as
// processed events (produced minus shed) per wall-clock second. Set
// FLEET_BENCH_OUT=path to also write the machine-readable report that
// BENCH_pipeline.json pins:
//
//	FLEET_BENCH_OUT=BENCH_pipeline.json \
//	  go test -run NONE -bench BenchmarkFleetPipeline -benchtime 3x ./internal/fleet/
func BenchmarkFleetPipeline(b *testing.B) {
	cfg := benchFleetConfig()
	var produced, shed, finals uint64
	var lastState State
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Run(context.Background(), 1); err != nil {
			b.Fatal(err)
		}
		st := f.Hub().State()
		for _, ten := range st.Tenants {
			produced += ten.Produced
			shed += ten.Shed
		}
		finals += st.Finals
		lastState = st
	}
	b.StopTimer()

	elapsed := b.Elapsed().Seconds()
	processed := produced - shed
	eventsPerSec := float64(processed) / elapsed
	b.ReportMetric(eventsPerSec, "events/sec")
	b.ReportMetric(float64(cfg.Hosts*cfg.StreamsPerHost), "streams")
	b.ReportMetric(float64(shed)/float64(b.N), "shed/op")

	if want := uint64(b.N * cfg.Hosts * cfg.StreamsPerHost); finals != want {
		b.Fatalf("finals = %d, want %d — a stream missed its verdict", finals, want)
	}

	if out := os.Getenv("FLEET_BENCH_OUT"); out != "" {
		writeFleetBench(b, out, cfg, lastState, processed, shed, eventsPerSec)
	}
}

// fleetBenchDoc is the committed BENCH_pipeline.json schema.
type fleetBenchDoc struct {
	Schema       string                 `json:"schema"`
	GoVersion    string                 `json:"go_version"`
	GOMAXPROCS   int                    `json:"gomaxprocs"`
	Hosts        int                    `json:"hosts"`
	Streams      int                    `json:"streams"`
	Tenants      int                    `json:"tenants"`
	EpochQuanta  int                    `json:"epoch_quanta"`
	QueueLen     int                    `json:"queue_len"`
	Processed    uint64                 `json:"processed_events"`
	Shed         uint64                 `json:"shed_events"`
	EventsPerSec float64                `json:"events_per_sec"`
	TenantStats  map[string]TenantStats `json:"tenant_stats"`
	Detected     int                    `json:"detected_streams"`
	Correlations int                    `json:"correlations"`
}

func writeFleetBench(b *testing.B, path string, cfg Config, st State, processed, shed uint64, eps float64) {
	b.Helper()
	doc := fleetBenchDoc{
		Schema:       "cchunter-fleet-bench/1",
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Hosts:        cfg.Hosts,
		Streams:      cfg.Hosts * cfg.StreamsPerHost,
		Tenants:      cfg.Tenants,
		EpochQuanta:  cfg.EpochQuanta,
		QueueLen:     cfg.QueueLen,
		Processed:    processed,
		Shed:         shed,
		EventsPerSec: eps,
		TenantStats:  st.Tenants,
		Detected:     st.DetectedStreams,
		Correlations: len(st.Correlations),
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHubSubmit isolates the hub's per-verdict cost: dedupe
// fingerprinting plus state materialization, the work every interim in
// the fleet funnels through.
func BenchmarkHubSubmit(b *testing.B) {
	h := NewHub(nil)
	keys := make([]Key, 1024)
	for i := range keys {
		keys[i] = Key{
			Host:    fmt.Sprintf("host-%03d", i/8),
			Tenant:  fmt.Sprintf("tenant-%02d", i%8),
			Stream:  i % 8,
			Channel: "bus",
		}
	}
	rep := detectedReport(9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		h.Submit(Update{Key: k, Seq: uint64(i/len(keys) + 1), Report: rep})
	}
}

// BenchmarkCorrelate isolates the cross-host correlation scan at fleet
// scale with an adversarially high detected-stream count.
func BenchmarkCorrelate(b *testing.B) {
	streams := make(map[Key]*StreamState, 1024)
	for i := 0; i < 1024; i++ {
		k := Key{
			Host:    fmt.Sprintf("host-%03d", i/8),
			Tenant:  fmt.Sprintf("tenant-%02d", i%8),
			Stream:  i % 8,
			Channel: "cache",
		}
		streams[k] = &StreamState{
			Key:      k,
			Detected: i%4 == 0, // 256 detected streams
			PeakLag:  128 + (i%11)*64,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n += len(correlateLocked(streams))
	}
	if n == 0 {
		b.Fatal("correlation scan found nothing")
	}
}
