package fleet

import (
	"cchunter/internal/core"
	"cchunter/internal/stream"
	"cchunter/internal/trace"
)

// AnalyzeTrain pushes one recorded event train through the exact
// pipeline a fleet shard runs — bounded ingest queue, streaming
// detector, epoch finalize — and returns the verdict. The queue is
// sized so nothing can shed, which makes the result a pure function of
// the train: byte-identical to a solo streaming run over the same
// events, and (verdict fields) to the batch detector pinned by the
// golden corpus. The root-package equivalence test holds the fleet
// path to that.
// kinds selects the monitored burst events (empty = bus + divider).
func AnalyzeTrain(events []trace.Event, quantum uint64, contexts int, end uint64, kinds ...trace.Kind) (core.Report, error) {
	if contexts <= 0 {
		contexts = defaultContexts
	}
	det, err := buildDetector(quantum, contexts, kinds...)
	if err != nil {
		return core.Report{}, err
	}
	batches := len(events)/trace.DefaultBatchSize + 2
	in := stream.NewIngest(det, batches, nil)
	for i := 0; i < len(events); i += trace.DefaultBatchSize {
		j := i + trace.DefaultBatchSize
		if j > len(events) {
			j = len(events)
		}
		in.OnEvents(events[i:j])
	}
	in.Close()
	if shed := in.Shed(); shed > 0 {
		det.SetShed(shed)
	}
	if end == 0 && len(events) > 0 {
		end = events[len(events)-1].Cycle + 1
	}
	return det.Finalize(end), nil
}
