package fleet

import "sort"

// Cross-host correlation: the scenario the paper's single-machine
// auditor could never see. Under cloud co-residency churn, a covert
// pair's sender and receiver can land on *different* monitored hosts
// (Ge et al.; Yao et al., PAPERS.md) — each host's own verdict then
// shows one half of a channel, and only a hub holding fleet-wide state
// can notice that two hosts exhibit the same channel signature at the
// same time.
//
// The signature is deliberately coarse: for cache channels, the
// oscillation verdict's fundamental peak lag (≈ the cache-set count
// the pair primes, an implementation fingerprint that survives host
// migration); for contention channels, the channel family plus the
// CUSUM onset estimate (two hosts starting the same kind of burst
// pattern near-simultaneously). Coarse signatures trade precision for
// recall — the hub flags candidates, the flight recorder provides the
// evidence for triage (docs/OPERATIONS.md has the runbook).

// lagTolerance is the relative peak-lag slack two hosts may differ by
// and still correlate: interleaved noise shifts the measured lag a few
// percent around the primed set count (the paper's 533 vs 512).
const lagTolerance = 0.1

// onsetWindowCycles is how close two contention-channel onsets must be
// to correlate when both hosts report one.
const onsetWindowCycles = 1 << 22 // ~1.7ms at 2.5GHz, tens of quanta at fleet clock

// Correlation is one cross-host channel-signature match.
type Correlation struct {
	// Channel is the matched channel family (the shard keys' channel).
	Channel string `json:"channel"`
	// Keys are the matched streams, sorted; always on ≥2 distinct
	// hosts.
	Keys []Key `json:"keys"`
	// PeakLag is the shared oscillation lag for cache matches (0 for
	// onset-only matches).
	PeakLag int `json:"peakLag,omitempty"`
	// LagDelta is the matched lags' spread.
	LagDelta int `json:"lagDelta,omitempty"`
	// OnsetGap is the matched onset estimates' spread in cycles.
	OnsetGap uint64 `json:"onsetGap,omitempty"`
}

// correlateLocked scans current stream states for cross-host pairs.
// Caller holds the hub lock. O(n²) over *detected* streams only —
// detections are the rare case, and the scan runs lazily per snapshot,
// not per update.
func correlateLocked(streams map[Key]*StreamState) []Correlation {
	detected := make([]*StreamState, 0, 8)
	for _, st := range streams {
		if st.Detected && st.Failure == "" {
			detected = append(detected, st)
		}
	}
	sort.Slice(detected, func(i, j int) bool { return keyLess(detected[i].Key, detected[j].Key) })
	var out []Correlation
	for i := 0; i < len(detected); i++ {
		for j := i + 1; j < len(detected); j++ {
			a, b := detected[i], detected[j]
			if a.Key.Host == b.Key.Host {
				continue
			}
			if c, ok := match(a, b); ok {
				out = append(out, c)
			}
		}
	}
	return out
}

// match decides whether two detected streams on different hosts share
// a channel signature.
func match(a, b *StreamState) (Correlation, bool) {
	// Cache channels: peak lags within tolerance of each other.
	if a.PeakLag > 0 && b.PeakLag > 0 {
		hi := a.PeakLag
		if b.PeakLag > hi {
			hi = b.PeakLag
		}
		delta := a.PeakLag - b.PeakLag
		if delta < 0 {
			delta = -delta
		}
		tol := int(lagTolerance * float64(hi))
		if tol < 2 {
			tol = 2
		}
		if delta <= tol {
			return Correlation{
				Channel:  a.Key.Channel,
				Keys:     []Key{a.Key, b.Key},
				PeakLag:  hi,
				LagDelta: delta,
			}, true
		}
		return Correlation{}, false
	}
	// Contention channels: same family, both with onset estimates that
	// land inside one window.
	if a.Key.Channel == b.Key.Channel && a.OnsetCycle > 0 && b.OnsetCycle > 0 {
		gap := a.OnsetCycle - b.OnsetCycle
		if b.OnsetCycle > a.OnsetCycle {
			gap = b.OnsetCycle - a.OnsetCycle
		}
		if gap <= onsetWindowCycles {
			return Correlation{
				Channel:  a.Key.Channel,
				Keys:     []Key{a.Key, b.Key},
				OnsetGap: gap,
			}, true
		}
	}
	return Correlation{}, false
}

func keyLess(a, b Key) bool {
	if a.Host != b.Host {
		return a.Host < b.Host
	}
	if a.Tenant != b.Tenant {
		return a.Tenant < b.Tenant
	}
	if a.Stream != b.Stream {
		return a.Stream < b.Stream
	}
	return a.Channel < b.Channel
}
