package fleet

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"cchunter/internal/obs"
)

// testFleetConfig is a small fleet whose queues are sized so nothing
// can shed: verdicts are then a pure function of the seed.
func testFleetConfig() Config {
	return Config{
		Hosts:          4,
		StreamsPerHost: 2,
		Tenants:        2,
		EpochQuanta:    16,
		InterimEvery:   4,
		QueueLen:       256,
		CovertEvery:    4,
		SplitPair:      true,
		Seed:           42,
	}
}

func TestFleetEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testFleetConfig()
	cfg.Metrics = reg
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	st := f.Hub().State()

	if want := cfg.Hosts * cfg.StreamsPerHost; len(st.Streams) != want {
		t.Fatalf("streams = %d, want %d", len(st.Streams), want)
	}
	if want := uint64(cfg.Hosts * cfg.StreamsPerHost * 2); st.Finals != want {
		t.Errorf("finals = %d, want %d (every stream, every epoch)", st.Finals, want)
	}
	for _, s := range st.Streams {
		if s.FinalEpochs != 2 {
			t.Errorf("%s: finalEpochs = %d, want 2", s.Key, s.FinalEpochs)
		}
		if s.Failure != "" {
			t.Errorf("%s: degraded verdict: %s", s.Key, s.Failure)
		}
		if s.EventsShed != 0 {
			t.Errorf("%s: shed %d events with an over-sized queue", s.Key, s.EventsShed)
		}
	}
	if st.Stale != 0 {
		t.Errorf("stale = %d, want 0 (in-order submissions only)", st.Stale)
	}
	if st.DetectedStreams == 0 {
		t.Error("no stream detected despite planted covert sources")
	}
	// Benign streams must stay clean — a fleet that cries wolf on idle
	// hosts is useless.
	for _, s := range st.Streams {
		if s.Key.Channel == "benign" && s.Detected {
			t.Errorf("%s: benign stream detected", s.Key)
		}
	}

	// The split pair: same covert cache signature planted on host-000
	// and host-001, correlated only at the hub.
	var split *Correlation
	for i := range st.Correlations {
		c := &st.Correlations[i]
		hosts := map[string]bool{}
		for _, k := range c.Keys {
			hosts[k.Host] = true
		}
		if c.Channel == "cache" && hosts["host-000"] && hosts["host-001"] {
			split = c
			break
		}
	}
	if split == nil {
		t.Fatalf("split sender/receiver pair not correlated; correlations: %+v", st.Correlations)
	}
	if split.PeakLag == 0 {
		t.Error("cache correlation carries no peak-lag signature")
	}

	// Tenant accounting covers everything produced, with zero shed.
	var produced, shed uint64
	for _, ten := range st.Tenants {
		produced += ten.Produced
		shed += ten.Shed
	}
	if produced == 0 || shed != 0 {
		t.Errorf("tenant accounting: produced %d shed %d, want >0 / 0", produced, shed)
	}
	if got := reg.Snapshot().Counters["stream.events_shed"]; got != 0 {
		t.Errorf("stream.events_shed = %d, want 0", got)
	}
}

// TestFleetDeterministic pins that a fleet's entire final state — every
// verdict, counter, and correlation — is a pure function of its
// configuration: host scheduling must never leak into verdicts.
func TestFleetDeterministic(t *testing.T) {
	run := func() []byte {
		f, err := New(testFleetConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Run(context.Background(), 2); err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(f.Hub().State())
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Errorf("two identically-seeded fleet runs diverged:\nrun A:\n%s\nrun B:\n%s", a, b)
	}
}

// TestFleetCancelFinishesEpoch pins the shutdown contract: cancelling
// the run context ends the fleet after the in-flight epoch, with every
// stream still rendering a final verdict (no torn epochs).
func TestFleetCancelFinishesEpoch(t *testing.T) {
	cfg := testFleetConfig()
	cfg.SplitPair = false
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx, 0) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("fleet did not stop after cancellation")
	}
	st := f.Hub().State()
	for _, s := range st.Streams {
		if s.FinalEpochs == 0 {
			t.Errorf("%s: no final verdict before shutdown", s.Key)
		}
		if !s.Final {
			t.Errorf("%s: last applied update was an interim — epoch torn by shutdown", s.Key)
		}
	}
}

// TestFleetFlightCapture pins that detections produce replayable flight
// captures tagged with the stream key.
func TestFleetFlightCapture(t *testing.T) {
	cfg := testFleetConfig()
	cfg.FlightEvents = -1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	flights := f.Flights()
	if len(flights) == 0 {
		t.Fatal("no flights captured despite detections")
	}
	st := f.Hub().State()
	detected := map[string]bool{}
	for _, s := range st.Streams {
		if s.Detected {
			detected[s.Key.String()] = true
		}
	}
	for _, cf := range flights {
		if !detected[cf.Key.String()] {
			t.Errorf("flight for %s but the stream is not detected", cf.Key)
		}
		if len(cf.Flight.Events) == 0 {
			t.Errorf("flight for %s holds no events", cf.Key)
		}
		if cf.Flight.Meta.QuantumCycles == 0 {
			t.Errorf("flight for %s missing quantum metadata", cf.Key)
		}
	}
	// Flights drains: a second call returns nothing.
	if again := f.Flights(); len(again) != 0 {
		t.Errorf("Flights did not drain: %d left", len(again))
	}
}
