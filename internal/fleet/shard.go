package fleet

import (
	"context"
	"fmt"
	"time"

	"cchunter/internal/auditor"
	"cchunter/internal/core"
	"cchunter/internal/obs"
	"cchunter/internal/recorder"
	"cchunter/internal/runner"
	"cchunter/internal/stream"
	"cchunter/internal/trace"
)

// Key identifies one detection shard: the monitored host, the tenant
// that owns it, the host-local stream index, and the channel family its
// traffic exercises. Stream keeps two same-channel streams on one host
// distinct at the hub (their Seq cursors must never collide).
type Key struct {
	Host    string `json:"host"`
	Tenant  string `json:"tenant"`
	Stream  int    `json:"stream"`
	Channel string `json:"channel"`
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/s%d/%s", k.Host, k.Tenant, k.Stream, k.Channel)
}

// shardConfig carries the per-stream construction knobs.
type shardConfig struct {
	Quantum      uint64
	Contexts     int
	QueueLen     int
	FlightEvents int
	Watchdog     time.Duration
	Metrics      *obs.Registry
	Wrap         func(Key, trace.Listener) trace.Listener
}

// CapturedFlight pairs a shard's flight capture with its key, for the
// daemon's -record-dir dump.
type CapturedFlight struct {
	Key    Key
	Flight recorder.Flight
}

// shard is one (host, channel) detection stream: a seeded source, a
// bounded ingest queue, and a streaming detector that renders one
// verdict per epoch. The producer side (pumpQuantum) runs on the host
// goroutine; the detector runs on the ingest's consumer goroutine
// until the epoch closes, after which the host goroutine owns it
// again (Close is the hand-off barrier).
type shard struct {
	key Key
	cfg shardConfig
	src *source

	det   *stream.Detector
	in    *stream.Ingest
	rec   *recorder.Recorder
	epoch int
	seq   uint64
	batch []trace.Event
	gen   []trace.Event

	produced          uint64
	shedTotal         uint64
	lastQuantumEvents uint64
	endCycle          uint64

	flights []CapturedFlight
}

func newShard(key Key, cfg shardConfig) (*shard, error) {
	if cfg.Quantum == 0 {
		return nil, fmt.Errorf("fleet: shard %s needs a quantum", key)
	}
	if cfg.Contexts <= 0 {
		cfg.Contexts = defaultContexts
	}
	return &shard{key: key, cfg: cfg}, nil
}

// buildDetector wires a fresh auditor + streaming detector, exactly as
// a solo run does — which is what keeps fleet verdicts byte-identical
// to single-host ones for identical trains. kinds selects the burst
// events to monitor with their paper Δt (the auditor watches at most
// auditor.MaxMonitoredUnits of them); empty means the classic bus +
// divider pair every pre-ring caller programmed.
func buildDetector(quantum uint64, contexts int, kinds ...trace.Kind) (*stream.Detector, error) {
	aud, err := auditor.New(auditor.DefaultConfig(quantum))
	if err != nil {
		return nil, err
	}
	if len(kinds) == 0 {
		kinds = []trace.Kind{trace.KindBusLock, trace.KindDivContention}
	}
	for _, k := range kinds {
		if err := aud.Monitor(k, core.DefaultDeltaT(k)); err != nil {
			return nil, err
		}
	}
	if err := aud.MonitorConflicts(); err != nil {
		return nil, err
	}
	cfg := core.DefaultDetectorConfig(quantum, contexts)
	return stream.New(aud, stream.Config{Detector: cfg}), nil
}

// beginEpoch resets the source and stands up a fresh detector behind a
// fresh ingest queue.
func (s *shard) beginEpoch(epoch int) {
	s.epoch = epoch
	s.endCycle = 0
	s.src.reset(epoch)
	det, err := buildDetector(s.cfg.Quantum, s.cfg.Contexts)
	if err != nil {
		// Construction can only fail on bad static config, which New
		// validated; a failure here is a bug worth crashing on.
		panic(fmt.Sprintf("fleet: rebuilding %s: %v", s.key, err))
	}
	s.det = det
	var dst trace.Listener = det
	if s.cfg.FlightEvents != 0 {
		s.rec = recorder.New(s.cfg.FlightEvents)
		dst = tee{det, s.rec}
	} else {
		s.rec = nil
	}
	if s.cfg.Wrap != nil {
		dst = s.cfg.Wrap(s.key, dst)
	}
	s.in = stream.NewIngest(dst, s.cfg.QueueLen, s.cfg.Metrics)
}

// pumpQuantum generates one quantum of source events and enqueues them
// in BatchEvents-sized batches.
func (s *shard) pumpQuantum(batchEvents int) {
	s.gen = s.src.genQuantum(s.gen[:0])
	s.lastQuantumEvents = uint64(len(s.gen))
	s.produced += uint64(len(s.gen))
	for i := 0; i < len(s.gen); i += batchEvents {
		j := i + batchEvents
		if j > len(s.gen) {
			j = len(s.gen)
		}
		s.in.OnEvents(s.gen[i:j])
	}
	s.endCycle = s.src.quantum0
}

// interim submits a mid-epoch verdict. The analysis runs on the
// ingest's consumer goroutine (Do), after every batch queued so far —
// an ordered quiesce point, so it never races event delivery.
func (s *shard) interim(hub *Hub) {
	cycle := s.endCycle
	key, epoch := s.key, s.epoch
	det := s.det
	seq := s.nextSeq()
	s.in.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				hub.Submit(Update{
					Key: key, Seq: seq, Epoch: epoch,
					Report: core.DegradedReport(fmt.Sprintf("interim panic: %v", r)),
				})
			}
		}()
		rep := det.Interim(cycle)
		hub.Submit(Update{Key: key, Seq: seq, Epoch: epoch, Cycle: cycle, Report: rep})
	})
}

// finalizeEpoch closes the queue (draining it), reclaims the detector,
// and renders the epoch's final verdict under the watchdog. The shed
// count is folded into the verdict and, when a flight is captured,
// into its replay metadata.
func (s *shard) finalizeEpoch(hub *Hub) {
	s.in.Close()
	shed := s.in.Shed()
	s.shedTotal += shed
	s.det.SetShed(shed)
	end := s.endCycle

	det := s.det
	v, err := runner.Supervise(context.Background(), s.key.String(),
		s.cfg.Watchdog, s.cfg.Metrics, func(context.Context) (interface{}, error) {
			return det.Finalize(end), nil
		})
	var rep core.Report
	if err != nil {
		rep = core.DegradedReport(err.Error())
	} else {
		rep = v.(core.Report)
	}
	hub.Submit(Update{
		Key: s.key, Seq: s.nextSeq(), Epoch: s.epoch,
		Cycle: end, Final: true, Report: rep,
	})
	if s.rec != nil && rep.Detected {
		f := s.rec.Capture("detection", recorder.Meta{
			Seed:               s.src.seed,
			QuantumCycles:      s.cfg.Quantum,
			Contexts:           s.cfg.Contexts,
			ObservationDivisor: 1,
			EndCycle:           end,
			EventsShed:         shed,
		})
		s.flights = append(s.flights, CapturedFlight{Key: s.key, Flight: f})
	}
	s.det, s.in = nil, nil
}

// takeFlights drains the shard's captured flights.
func (s *shard) takeFlights() []CapturedFlight {
	out := s.flights
	s.flights = nil
	return out
}

func (s *shard) nextSeq() uint64 {
	s.seq++
	return s.seq
}

// tee fans one event stream out to two listeners in order — the
// detector and the flight recorder see identical trains.
type tee struct {
	a, b trace.Listener
}

func (t tee) OnEvent(e trace.Event) {
	t.a.OnEvent(e)
	t.b.OnEvent(e)
}

func (t tee) OnEvents(events []trace.Event) {
	trace.Deliver(t.a, events)
	trace.Deliver(t.b, events)
}
