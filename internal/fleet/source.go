package fleet

import (
	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

// defaultContexts is the hardware context count every simulated fleet
// host reports — the 4-core, 2-way-SMT machine of the paper's setup.
const defaultContexts = 8

// Profile selects the traffic shape a stream's source generates.
type Profile uint8

const (
	// ProfileBenign emits sparse, aperiodic mixed events — the no-
	// channel baseline a healthy host produces.
	ProfileBenign Profile = iota
	// ProfileBus emits recurrent bus-lock bursts on alternating
	// quanta, the memory-bus covert channel's indicator pattern.
	ProfileBus
	// ProfileDivider emits recurrent divider-contention bursts, the
	// integer-divider channel's pattern.
	ProfileDivider
	// ProfileCache emits phase-alternating conflict misses at a fixed
	// period, the cache channel's oscillation pattern. The period is
	// the stream's correlation signature.
	ProfileCache
)

// Channel names the monitored channel the profile exercises; it is the
// shard key's channel component.
func (p Profile) Channel() string {
	switch p {
	case ProfileBus:
		return "bus"
	case ProfileDivider:
		return "divider"
	case ProfileCache:
		return "cache"
	default:
		return "benign"
	}
}

// Covert reports whether the profile carries a planted channel.
func (p Profile) Covert() bool { return p != ProfileBenign }

// source is one stream's deterministic event generator. Everything
// derives from the seed (re-mixed per epoch), so a stream's train —
// and therefore its verdict, absent shedding — is a pure function of
// (seed, profile, period, epoch), independent of scheduling.
type source struct {
	seed    uint64
	profile Profile
	quantum uint64
	period  uint64 // cache oscillation period in cycles

	rng     *stats.RNG
	cycle   uint64
	quantum0 uint64 // first cycle of the current quantum
}

func newSource(seed uint64, p Profile, quantum, period uint64) *source {
	if period < 256 {
		period = 256
	}
	return &source{seed: seed, profile: p, quantum: quantum, period: period}
}

// reset rewinds the source to cycle zero with an epoch-mixed seed.
func (s *source) reset(epoch int) {
	s.rng = stats.NewRNG(deriveSeed(s.seed, 0x5eed, uint64(epoch)))
	s.cycle = 0
	s.quantum0 = 0
}

// genQuantum appends one OS quantum's worth of events to dst and
// advances the source's clock to the next quantum boundary. Cycles are
// strictly monotonic within the stream.
func (s *source) genQuantum(dst []trace.Event) []trace.Event {
	start := s.quantum0
	end := start + s.quantum
	q := start / s.quantum
	cycle := s.cycle
	if cycle < start {
		cycle = start
	}
	for cycle < end {
		switch s.profile {
		case ProfileBus:
			if q%2 == 0 {
				// Burst quantum: dense split-lock traffic.
				cycle += 300 + s.rng.Uint64()%500
				dst = append(dst, trace.Event{
					Cycle: cycle, Kind: trace.KindBusLock,
					Actor: uint8(s.rng.Uint64() % 2),
				})
			} else {
				// Quiet quantum: background-level locks only.
				cycle += 4_000 + s.rng.Uint64()%8_000
				if s.rng.Uint64()%3 == 0 {
					dst = append(dst, trace.Event{
						Cycle: cycle, Kind: trace.KindBusLock,
						Actor: uint8(2 + s.rng.Uint64()%4),
					})
				}
			}
		case ProfileDivider:
			if q%2 == 0 {
				// Burst quantum: contention every 60-180 cycles, several
				// events per ΔT_divider window — the density the
				// likelihood-ratio split needs to separate burst from
				// background.
				cycle += 60 + s.rng.Uint64()%120
				dst = append(dst, trace.Event{
					Cycle: cycle, Kind: trace.KindDivContention,
					Actor: 0, Victim: 1,
				})
			} else {
				cycle += 5_000 + s.rng.Uint64()%9_000
				if s.rng.Uint64()%4 == 0 {
					dst = append(dst, trace.Event{
						Cycle: cycle, Kind: trace.KindDivContention,
						Actor: uint8(2 + s.rng.Uint64()%2), Victim: uint8(4 + s.rng.Uint64()%2),
					})
				}
			}
		case ProfileCache:
			// Prime/probe oscillation: the trojan and spy alternate as
			// evictor every half period, producing the label-series
			// periodicity the oscillation detector keys on.
			cycle += 150 + s.rng.Uint64()%200
			phase := (cycle / (s.period / 2)) % 2
			dst = append(dst, trace.Event{
				Cycle: cycle, Kind: trace.KindConflictMiss,
				Actor: uint8(phase), Victim: uint8(1 - phase),
				Unit: uint32(s.rng.Uint64() % 64),
			})
		default: // ProfileBenign
			// Healthy hosts: unorganized conflict misses with random
			// actor/victim pairs — plenty of cache noise, no periodicity
			// for the oscillation detector and no split-lock or divider
			// contention at all. (At the fleet's compressed quantum a
			// single stray lock per quantum already forms a degenerate
			// two-bin density histogram, so "rare" is not rare enough —
			// a clean host emits none, matching the paper's observation
			// that benign programs essentially never split bus locks.)
			cycle += 1_000 + s.rng.Uint64()%3_000
			r := s.rng.Uint64()
			dst = append(dst, trace.Event{
				Cycle: cycle, Kind: trace.KindConflictMiss,
				Actor: uint8(r >> 8 % defaultContexts), Victim: uint8(r >> 16 % defaultContexts),
				Unit: uint32(r >> 24 % 512),
			})
		}
	}
	s.cycle = cycle
	s.quantum0 = end
	return dst
}
