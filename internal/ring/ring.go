// Package ring models a slotted ring interconnect connecting the cores
// to the address-sliced last-level cache, the contention medium of the
// lord-of-the-ring class of cross-core covert channels. Every L1 miss
// transits the ring from the issuing core's stop to the stop of the
// slice owning the line; a transit from one core waiting on a ring
// segment occupied by traffic from another core is the indicator event
// (KindRingContention). Like the divider, not every wait raises the
// event: only cross-context waits do.
package ring

import "cchunter/internal/trace"

// Config sets the ring parameters. The zero value means "no ring": the
// simulator leaves the interconnect unmodelled (its pre-ring behaviour)
// unless Stops is positive.
type Config struct {
	// Stops is the number of ring stops; one core and one LLC slice
	// hang off each stop. Zero disables the ring entirely.
	Stops int
	// HopCycles is how long a transit occupies each directed segment it
	// crosses, and the per-hop latency it adds to the miss.
	HopCycles uint64
}

// DefaultConfig returns a ring with one stop per core of the default
// four-core machine and a 4-cycle hop — a slot time in the range of
// real ring interconnects once scaled to the 2.5 GHz clock.
func DefaultConfig() Config {
	return Config{Stops: 4, HopCycles: 4}
}

// Ring is the interconnect state. The engine serializes calls in global
// time order. Segments are directed: segment s (s < Stops) carries
// clockwise traffic from stop s to stop s+1; segment Stops+j carries
// counter-clockwise traffic into stop j from stop j+1.
type Ring struct {
	cfg       Config
	sliceMask uint64 // stops-1 when Stops is a power of two, else 0
	busyFrom  []uint64
	busyUntil []uint64
	occupant  []uint8

	listener trace.Listener

	transits   uint64
	contention uint64
}

// New returns a ring. It panics on a non-positive stop count — callers
// gate construction on Config.Stops > 0.
func New(cfg Config, l trace.Listener) *Ring {
	if cfg.Stops <= 0 {
		panic("ring: Stops must be positive")
	}
	if cfg.HopCycles == 0 {
		cfg.HopCycles = DefaultConfig().HopCycles
	}
	n := 2 * cfg.Stops
	r := &Ring{
		cfg:       cfg,
		busyFrom:  make([]uint64, n),
		busyUntil: make([]uint64, n),
		occupant:  make([]uint8, n),
		listener:  l,
	}
	if s := uint64(cfg.Stops); s&(s-1) == 0 {
		r.sliceMask = s - 1
	}
	return r
}

// SliceOf returns the LLC slice (= ring stop) owning a cache line, the
// usual low-bits address hash.
func (r *Ring) SliceOf(lineAddr uint64) int {
	if r.sliceMask != 0 || r.cfg.Stops == 1 {
		return int(lineAddr & r.sliceMask)
	}
	return int(lineAddr % uint64(r.cfg.Stops))
}

// Transit moves one cache-line request from the issuing core's ring
// stop to the slice owning lineAddr, taking the shorter direction
// (clockwise on ties). Each hop reserves its directed segment for
// HopCycles; a hop that finds its segment reserved by another hardware
// context raises one KindRingContention event per transit (Actor =
// waiter, Victim = occupant, Unit = segment), stamped at the issue
// cycle so the global event stream stays time-ordered. It returns the
// arrival cycle and the cycles spent waiting.
func (r *Ring) Transit(now, stamp uint64, ctx uint8, core int, lineAddr uint64) (done, waited uint64) {
	stops := r.cfg.Stops
	src := core % stops
	dst := r.SliceOf(lineAddr)
	r.transits++
	if src == dst {
		return now, 0 // local slice: no ring traversal
	}
	cw := (dst - src + stops) % stops
	ccw := (src - dst + stops) % stops
	dir, hops := 1, cw
	if ccw < cw {
		dir, hops = -1, ccw
	}
	hop := r.cfg.HopCycles
	busyUntil := r.busyUntil
	cursor := now
	emitted := false
	stop := src
	for h := 0; h < hops; h++ {
		// dir is ±1 and stop stays in [0, stops): a compare-and-wrap
		// replaces the per-hop modulo.
		next := stop + dir
		if next == stops {
			next = 0
		} else if next < 0 {
			next = stops - 1
		}
		seg := stop // clockwise: segment index = source stop
		if dir < 0 {
			seg = stops + next // counter-clockwise: indexed by destination stop
		}
		start := cursor
		if busyUntil[seg] > start {
			waited += busyUntil[seg] - start
			start = busyUntil[seg]
			if r.occupant[seg] != ctx && !emitted {
				emitted = true
				r.contention++
				if r.listener != nil {
					r.listener.OnEvent(trace.Event{
						Cycle:  stamp,
						Kind:   trace.KindRingContention,
						Actor:  ctx,
						Victim: r.occupant[seg],
						Unit:   uint32(seg),
					})
				}
			}
		}
		r.busyFrom[seg] = start
		busyUntil[seg] = start + hop
		r.occupant[seg] = ctx
		cursor = start + hop
		stop = next
	}
	return cursor, waited
}

// Stats reports cumulative ring activity.
type Stats struct {
	Transits   uint64 // total slice transits issued
	Contention uint64 // cross-context segment waits (indicator events)
}

// Stats returns a snapshot of the counters.
func (r *Ring) Stats() Stats {
	return Stats{Transits: r.transits, Contention: r.contention}
}

// Config returns the ring configuration.
func (r *Ring) Config() Config { return r.cfg }
