package pool

import "testing"

func TestGetReturnsZeroedExactLength(t *testing.T) {
	for _, n := range []int{0, 1, 3, 8, 100, 1 << 12} {
		s := Float64s(n)
		if len(s) != n {
			t.Fatalf("Float64s(%d): len %d", n, len(s))
		}
		for i := range s {
			s[i] = 42
		}
		PutFloat64s(s)
		r := Float64s(n)
		if len(r) != n {
			t.Fatalf("recycled Float64s(%d): len %d", n, len(r))
		}
		for i, v := range r {
			if v != 0 {
				t.Fatalf("recycled Float64s(%d)[%d] = %v, want 0 (stale data leaked)", n, i, v)
			}
		}
		PutFloat64s(r)
	}
}

func TestIntsRoundTrip(t *testing.T) {
	s := Ints(17)
	if len(s) != 17 {
		t.Fatalf("Ints(17): len %d", len(s))
	}
	s[3] = 9
	PutInts(s)
	r := Ints(30) // larger request from the same class (cap 32)
	if len(r) != 30 {
		t.Fatalf("Ints(30): len %d", len(r))
	}
	for i, v := range r {
		if v != 0 {
			t.Fatalf("Ints(30)[%d] = %d, want 0", i, v)
		}
	}
	PutInts(r)
}

func TestPutOddCapacityStaysUsable(t *testing.T) {
	// A caller-made buffer with a non-power-of-two capacity lands in
	// the floor class and must still satisfy that class's gets.
	odd := make([]float64, 5, 13)
	PutFloat64s(odd)
	for i := 0; i < 4; i++ {
		s := Float64s(8) // class 3 (cap 8): a cap-13 buffer may serve it
		if len(s) != 8 {
			t.Fatalf("Float64s(8): len %d", len(s))
		}
		for _, v := range s {
			if v != 0 {
				t.Fatal("stale data in recycled odd-capacity buffer")
			}
		}
		PutFloat64s(s)
	}
}

func TestDisableFallsBackToMake(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	if Enabled() {
		t.Fatal("SetEnabled(false) did not take")
	}
	s := Float64s(16)
	if len(s) != 16 {
		t.Fatalf("disabled Float64s(16): len %d", len(s))
	}
	PutFloat64s(s) // must be a no-op, not a panic
	r := Float64s(16)
	for _, v := range r {
		if v != 0 {
			t.Fatal("disabled pool returned non-zero buffer")
		}
	}
}

func TestZeroAndHugeRequests(t *testing.T) {
	if s := Float64s(0); s != nil {
		t.Errorf("Float64s(0) = %v, want nil", s)
	}
	PutFloat64s(nil) // no-op
}
