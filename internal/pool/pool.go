// Package pool provides the size-classed, sync.Pool-backed scratch
// buffers shared by the analysis pipeline: label series, running
// minima, discretized-histogram feature vectors, k-means scratch, and
// density slices. A detector run borrows buffers, uses them strictly
// within the call, and returns them, so repeated scenario jobs on the
// experiment runner reach a steady state where the analysis hot path
// allocates nothing per job.
//
// Ownership contract (see DESIGN.md §12): Get transfers exclusive
// ownership of a zeroed, exactly-sized buffer to the caller; Put
// transfers it back and the caller must not touch the buffer again.
// A buffer that escapes into a long-lived result (a Report, a figure
// row) is simply never Put — the pool imposes no obligation, only an
// opportunity. Buffers are zeroed on Get, never on Put, so a recycled
// buffer is indistinguishable from a fresh make(): pooling cannot
// change any computed value, and the golden-verdict corpus pins that.
//
// All functions are safe for concurrent use; the zero-size request
// returns nil without touching any pool.
package pool

import (
	"sync"
	"sync/atomic"
)

// disabled turns every Get into a plain make and every Put into a
// no-op — a debugging aid (cchunt/ccrepro -no-pool) for bisecting
// whether a suspect value involves buffer reuse. Output is identical
// either way; only allocation behavior changes.
var disabled atomic.Bool

// SetEnabled toggles pooling globally. Intended for CLI flags and
// tests; the default is enabled.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether pooling is active.
func Enabled() bool { return !disabled.Load() }

// numClasses covers buffer capacities up to 2^31 entries; requests
// beyond the largest class fall back to plain make/discard.
const numClasses = 32

// class returns the smallest c with 1<<c >= n.
func class(n int) int {
	c := 0
	for 1<<c < n {
		c++
	}
	return c
}

// typedPools is one size-classed pool family. Entries are stored as
// *[]T so Put does not box a slice header per call; the pointer
// travels with the buffer.
type typedPools[T any] struct {
	classes [numClasses]sync.Pool
}

// get returns a zeroed length-n buffer (capacity 1<<class(n)).
func (p *typedPools[T]) get(n int) []T {
	if n <= 0 {
		return nil
	}
	c := class(n)
	if c >= numClasses || disabled.Load() {
		return make([]T, n)
	}
	if v := p.classes[c].Get(); v != nil {
		s := (*(v.(*[]T)))[:n]
		var zero T
		for i := range s {
			s[i] = zero
		}
		return s
	}
	return make([]T, n, 1<<c)
}

// put recycles a buffer into the class its capacity fully covers.
func (p *typedPools[T]) put(s []T) {
	c := cap(s)
	if c == 0 || disabled.Load() {
		return
	}
	// Floor class: the buffer must satisfy every get of its class.
	cl := 0
	for 1<<(cl+1) <= c && cl+1 < numClasses {
		cl++
	}
	s = s[:cap(s)]
	p.classes[cl].Put(&s)
}

var (
	float64s typedPools[float64]
	ints     typedPools[int]
)

// Float64s returns a zeroed []float64 of length n from the arena.
func Float64s(n int) []float64 { return float64s.get(n) }

// PutFloat64s returns a buffer obtained from Float64s (or any
// []float64 the caller owns outright) to the arena.
func PutFloat64s(s []float64) { float64s.put(s) }

// Ints returns a zeroed []int of length n from the arena.
func Ints(n int) []int { return ints.get(n) }

// PutInts returns a buffer obtained from Ints (or any []int the
// caller owns outright) to the arena.
func PutInts(s []int) { ints.put(s) }
