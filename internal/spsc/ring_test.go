package spsc

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRingCapacityRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {64, 64}, {65, 128},
	} {
		if got := New[int](c.ask).Cap(); got != c.want {
			t.Errorf("New(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

// TestRingWraparound pushes far more elements than the capacity so
// the cursors wrap the buffer many times, checking strict FIFO order
// throughout.
func TestRingWraparound(t *testing.T) {
	r := New[int](4)
	next := 0
	for i := 0; i < 1000; i++ {
		// Fill to capacity, then drain completely: every boundary
		// alignment of head/tail against the mask is exercised.
		pushed := 0
		for r.TryPush(i*10 + pushed) {
			pushed++
		}
		if pushed != r.Cap() {
			t.Fatalf("iteration %d: pushed %d into an empty ring of cap %d", i, pushed, r.Cap())
		}
		for k := 0; k < pushed; k++ {
			v, ok := r.TryPop()
			if !ok {
				t.Fatalf("iteration %d: pop %d failed", i, k)
			}
			if v != i*10+k {
				t.Fatalf("iteration %d: popped %d, want %d (FIFO broken)", i, v, i*10+k)
			}
			next++
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Error("drained ring still pops")
	}
}

// TestRingBackpressure pins the cap-bounded contract: a full ring
// rejects TryPush and blocks Push until the consumer frees a slot.
func TestRingBackpressure(t *testing.T) {
	r := New[int](2)
	r.Push(1)
	r.Push(2)
	if r.TryPush(3) {
		t.Fatal("TryPush succeeded on a full ring")
	}
	var pushed atomic.Bool
	done := make(chan struct{})
	go func() {
		r.Push(3) // must block until a pop frees a slot
		pushed.Store(true)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	if pushed.Load() {
		t.Fatal("Push returned while the ring was full")
	}
	if v, ok := r.TryPop(); !ok || v != 1 {
		t.Fatalf("pop = %d, %v; want 1, true", v, ok)
	}
	<-done
	if v, ok := r.TryPop(); !ok || v != 2 {
		t.Fatalf("pop = %d, %v; want 2, true", v, ok)
	}
	if v, ok := r.TryPop(); !ok || v != 3 {
		t.Fatalf("pop = %d, %v; want 3, true", v, ok)
	}
}

// TestRingQuiesceDrain pins the drain-on-close contract: a consumer
// looping on Pop sees every element pushed before Close, in order,
// and only then gets ok = false.
func TestRingQuiesceDrain(t *testing.T) {
	const n = 10_000
	r := New[int](8)
	got := make(chan []int, 1)
	go func() {
		var vs []int
		for {
			v, ok := r.Pop()
			if !ok {
				got <- vs
				return
			}
			vs = append(vs, v)
		}
	}()
	for i := 0; i < n; i++ {
		r.Push(i)
	}
	r.Close()
	vs := <-got
	if len(vs) != n {
		t.Fatalf("consumer saw %d elements, want %d", len(vs), n)
	}
	for i, v := range vs {
		if v != i {
			t.Fatalf("element %d = %d, want %d", i, v, i)
		}
	}
}

func TestRingPushAfterClosePanics(t *testing.T) {
	r := New[int](2)
	r.Close()
	defer func() {
		if recover() == nil {
			t.Error("Push on a closed ring did not panic")
		}
	}()
	r.Push(1)
}
