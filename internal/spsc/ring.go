// Package spsc provides a bounded, lock-free single-producer
// single-consumer ring queue — the per-shard pipeline between a
// simulator engine and the auditor consumer that drains it. The
// Lamport-style design needs no mutex and no channel: the producer
// owns the tail cursor, the consumer owns the head cursor, and each
// side only ever loads the other's cursor with acquire semantics, so
// a push and a pop never contend on the same cache line.
//
// Capacity is always rounded up to a power of two so positions wrap
// with a mask instead of a division. The queue is cap-bounded: a full
// ring makes the producer spin (yielding the OS thread between
// probes), which backpressures a simulator that outruns its auditor
// instead of buffering unboundedly.
package spsc

import (
	"runtime"
	"sync/atomic"
)

// pad keeps the hot cursors on distinct cache lines so producer and
// consumer never false-share.
type pad [64]byte

// Ring is a bounded SPSC queue of T. Exactly one goroutine may push
// and exactly one may pop; any other use is a data race.
type Ring[T any] struct {
	mask uint64
	buf  []T

	_      pad
	tail   atomic.Uint64 // next write slot, producer-owned
	_      pad
	head   atomic.Uint64 // next read slot, consumer-owned
	_      pad
	closed atomic.Bool
}

// New returns a ring holding at least capacity elements (rounded up
// to a power of two, minimum 2).
func New[T any](capacity int) *Ring[T] {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &Ring[T]{mask: n - 1, buf: make([]T, n)}
}

// Cap returns the ring's (rounded) capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued elements. It is exact only from
// the producer or consumer goroutine; elsewhere it is a snapshot.
func (r *Ring[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// TryPush enqueues v, reporting false when the ring is full or
// closed. Producer-side only.
func (r *Ring[T]) TryPush(v T) bool {
	if r.closed.Load() {
		return false
	}
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1) // release: publishes the slot write above
	return true
}

// Push enqueues v, spinning (with scheduler yields) while the ring is
// full — the cap-bounded backpressure path. It panics on a closed
// ring: the producer closes the ring, so a push after close is a
// lifecycle bug worth failing loudly on.
func (r *Ring[T]) Push(v T) {
	for !r.TryPush(v) {
		if r.closed.Load() {
			panic("spsc: push on closed ring")
		}
		runtime.Gosched()
	}
}

// TryPop dequeues the oldest element, reporting false when the ring
// is empty. Consumer-side only.
func (r *Ring[T]) TryPop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.tail.Load() {
		return zero, false
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero // drop the reference so slabs can be collected
	r.head.Store(h + 1)    // release: frees the slot for the producer
	return v, true
}

// Pop dequeues the oldest element, spinning while the ring is empty.
// It returns ok = false only once the ring is closed AND fully
// drained, so a consumer loop `for v, ok := r.Pop(); ok; ...` sees
// every element ever pushed — the drain-on-quiesce guarantee.
func (r *Ring[T]) Pop() (T, bool) {
	for {
		if v, ok := r.TryPop(); ok {
			return v, true
		}
		if r.closed.Load() {
			// Closed: one more check, since the producer may have
			// pushed between our TryPop and its Close.
			if v, ok := r.TryPop(); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
		runtime.Gosched()
	}
}

// Close marks the ring closed. Producer-side only; elements already
// queued remain poppable (Pop drains them before reporting closed).
func (r *Ring[T]) Close() { r.closed.Store(true) }

// Closed reports whether Close has been called.
func (r *Ring[T]) Closed() bool { return r.closed.Load() }
