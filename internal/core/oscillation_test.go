package core

import (
	"testing"

	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

func traceBus() trace.Kind  { return trace.KindBusLock }
func traceDiv() trace.Kind  { return trace.KindDivContention }
func traceConf() trace.Kind { return trace.KindConflictMiss }

// channelTrain builds a conflict-miss train like the cache channel's:
// per bit, a run of (trojan→spy) entries over half the sets followed
// by a run of (spy→trojan) entries — period = sets.
func channelTrain(bits, sets int, gap uint64) *trace.Train {
	tr := trace.NewTrain(bits * sets)
	cycle := uint64(0)
	for b := 0; b < bits; b++ {
		for s := 0; s < sets/2; s++ {
			tr.Append(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss,
				Actor: 0, Victim: 1, Unit: uint32(s)})
			cycle += gap
		}
		for s := 0; s < sets/2; s++ {
			tr.Append(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss,
				Actor: 1, Victim: 0, Unit: uint32(s)})
			cycle += gap
		}
	}
	return tr
}

// noisyChannelTrain interleaves channel entries with random other-pair
// noise at the given probability per entry.
func noisyChannelTrain(bits, sets int, gap uint64, noiseProb float64, seed uint64) *trace.Train {
	base := channelTrain(bits, sets, gap)
	rng := stats.NewRNG(seed)
	tr := trace.NewTrain(base.Len())
	for _, e := range base.Events() {
		tr.Append(e)
		if rng.Float64() < noiseProb {
			tr.Append(trace.Event{Cycle: e.Cycle, Kind: trace.KindConflictMiss,
				Actor: uint8(2 + rng.Intn(4)), Victim: uint8(2 + rng.Intn(4)),
				Unit: uint32(rng.Intn(1024))})
		}
	}
	return tr
}

func TestOscillationDetectsCacheChannel(t *testing.T) {
	tr := channelTrain(8, 512, 100)
	a := AnalyzeOscillation(tr, DefaultOscillationConfig(8))
	if !a.Detected {
		t.Fatalf("clean channel not detected: %+v", a)
	}
	if a.FundamentalLag < 480 || a.FundamentalLag > 545 {
		t.Errorf("fundamental lag = %d, want ≈512 (the number of sets)", a.FundamentalLag)
	}
	if a.PeakValue < 0.85 {
		t.Errorf("peak = %v, want ≥0.85 as in Figure 8b", a.PeakValue)
	}
	if a.Harmonics < 2 {
		t.Errorf("harmonics = %d", a.Harmonics)
	}
}

func TestOscillationLagTracksSetCount(t *testing.T) {
	// Figure 13: fewer sets → proportionally shorter period.
	for _, sets := range []int{64, 128, 256} {
		a := AnalyzeOscillation(channelTrain(16, sets, 100), DefaultOscillationConfig(8))
		if !a.Detected {
			t.Errorf("%d sets: not detected", sets)
			continue
		}
		lo, hi := sets*85/100, sets*115/100
		if a.FundamentalLag < lo || a.FundamentalLag > hi {
			t.Errorf("%d sets: fundamental = %d, want within 15%%", sets, a.FundamentalLag)
		}
	}
}

func TestOscillationSurvivesNoise(t *testing.T) {
	// Random conflicts from other contexts shift the peak slightly
	// (the paper sees 533 instead of 512) but must not erase it.
	a := AnalyzeOscillation(noisyChannelTrain(8, 512, 100, 0.05, 3), DefaultOscillationConfig(8))
	if !a.Detected {
		t.Fatalf("noisy channel not detected: peak=%v lag=%d", a.PeakValue, a.FundamentalLag)
	}
	if a.FundamentalLag < 500 || a.FundamentalLag > 600 {
		t.Errorf("noisy fundamental = %d, want slightly above 512", a.FundamentalLag)
	}
}

func TestOscillationRejectsRandomTraffic(t *testing.T) {
	rng := stats.NewRNG(11)
	tr := trace.NewTrain(4096)
	for i := uint64(0); i < 4096; i++ {
		tr.Append(trace.Event{Cycle: i * 50, Kind: trace.KindConflictMiss,
			Actor: uint8(rng.Intn(8)), Victim: uint8(rng.Intn(8)), Unit: uint32(rng.Intn(512))})
	}
	a := AnalyzeOscillation(tr, DefaultOscillationConfig(8))
	if a.Detected {
		t.Errorf("random traffic detected as covert: %+v", a)
	}
}

func TestOscillationRejectsBriefPeriodicity(t *testing.T) {
	// The paper's webserver shows periodicity between lags 120–180
	// that dies out: a couple of periods then noise. MinHarmonics=2
	// must reject it when the second harmonic is absent.
	tr := trace.NewTrain(2048)
	cycle := uint64(0)
	rng := stats.NewRNG(13)
	// Two clean periods of 150, then pure noise.
	for p := 0; p < 2; p++ {
		for i := 0; i < 75; i++ {
			tr.Append(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss, Actor: 0, Victim: 1, Unit: uint32(i)})
			cycle += 10
		}
		for i := 0; i < 75; i++ {
			tr.Append(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss, Actor: 1, Victim: 0, Unit: uint32(i)})
			cycle += 10
		}
	}
	for i := 0; i < 1500; i++ {
		tr.Append(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss,
			Actor: uint8(rng.Intn(8)), Victim: uint8(rng.Intn(8)), Unit: uint32(rng.Intn(512))})
		cycle += 10
	}
	a := AnalyzeOscillation(tr, DefaultOscillationConfig(8))
	if a.Detected {
		t.Errorf("brief periodicity flagged as covert: %+v", a)
	}
}

func TestOscillationEmptyAndTiny(t *testing.T) {
	if a := AnalyzeOscillation(nil, DefaultOscillationConfig(8)); a.Detected {
		t.Error("nil train detected")
	}
	tr := trace.NewTrain(2)
	tr.Append(trace.Event{Cycle: 1, Actor: 0, Victim: 1})
	if a := AnalyzeOscillation(tr, DefaultOscillationConfig(8)); a.Detected || a.Events != 1 {
		t.Error("tiny train should not be analyzable")
	}
}

func TestOscillationConstantPairNotDetected(t *testing.T) {
	// All events from one pair: constant label series, zero variance.
	tr := trace.NewTrain(512)
	for i := uint64(0); i < 512; i++ {
		tr.Append(trace.Event{Cycle: i, Kind: trace.KindConflictMiss, Actor: 0, Victim: 1, Unit: uint32(i % 7)})
	}
	if a := AnalyzeOscillation(tr, DefaultOscillationConfig(8)); a.Detected {
		t.Error("constant series detected as oscillation")
	}
}

func TestAnalyzeOscillationWindows(t *testing.T) {
	// Channel active only in [0, 100k); the rest quiet. Windowed
	// analysis isolates the active window.
	tr := channelTrain(4, 128, 100) // spans 4*128*100 = 51200 cycles
	analyses := AnalyzeOscillationWindows(tr, 0, 400_000, 100_000, DefaultOscillationConfig(8))
	if len(analyses) != 1 {
		t.Fatalf("non-empty windows = %d, want 1", len(analyses))
	}
	if !analyses[0].Detected {
		t.Error("active window not detected")
	}
	best, ok := BestWindow(analyses)
	if !ok || !best.Detected {
		t.Error("BestWindow wrong")
	}
	if _, ok := BestWindow(nil); ok {
		t.Error("BestWindow of empty should be !ok")
	}
	if AnalyzeOscillationWindows(nil, 0, 10, 5, DefaultOscillationConfig(8)) != nil {
		t.Error("nil train should give nil windows")
	}
	if AnalyzeOscillationWindows(tr, 0, 10, 0, DefaultOscillationConfig(8)) != nil {
		t.Error("zero window should give nil")
	}
}

func TestBestWindowPrefersDetected(t *testing.T) {
	a := OscillationAnalysis{Detected: false, PeakValue: 0.9}
	b := OscillationAnalysis{Detected: true, PeakValue: 0.6}
	best, ok := BestWindow([]OscillationAnalysis{a, b})
	if !ok || !best.Detected {
		t.Error("detected window should win over stronger undetected one")
	}
	c := OscillationAnalysis{Detected: true, PeakValue: 0.8}
	best, _ = BestWindow([]OscillationAnalysis{b, c})
	if best.PeakValue != 0.8 {
		t.Error("stronger detected window should win")
	}
}

func TestFinerWindowsHelpLowBandwidth(t *testing.T) {
	// Figure 11's mechanism: the channel is active for a small part of
	// the quantum and noise dominates the rest. Full-quantum analysis
	// dilutes the signal; quarter-quantum windows recover it.
	rng := stats.NewRNG(17)
	tr := trace.NewTrain(8192)
	cycle := uint64(0)
	// Active burst: 6 periods of 128 sets in [0, 160k).
	for b := 0; b < 6; b++ {
		for i := 0; i < 64; i++ {
			tr.Append(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss, Actor: 0, Victim: 1, Unit: uint32(i)})
			cycle += 100
		}
		for i := 0; i < 64; i++ {
			tr.Append(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss, Actor: 1, Victim: 0, Unit: uint32(i)})
			cycle += 100
		}
	}
	// Noise for the rest of the 1M-cycle quantum, 3× the event count.
	for i := 0; i < 2400; i++ {
		tr.Append(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss,
			Actor: uint8(rng.Intn(8)), Victim: uint8(rng.Intn(8)), Unit: uint32(rng.Intn(512))})
		cycle += 350
	}
	cfg := DefaultOscillationConfig(8)
	full := AnalyzeOscillation(tr, cfg)
	quarters := AnalyzeOscillationWindows(tr, 0, 1_000_000, 250_000, cfg)
	best, ok := BestWindow(quarters)
	if !ok {
		t.Fatal("no quarter windows")
	}
	if !best.Detected {
		t.Fatalf("quarter-window analysis missed the channel: %+v", best)
	}
	if best.PeakValue <= full.PeakValue {
		t.Errorf("finer window peak %v not stronger than full-quantum %v",
			best.PeakValue, full.PeakValue)
	}
}

func TestRawPairSeriesMode(t *testing.T) {
	// Clean channel: raw mode detects like couple mode.
	cfg := DefaultOscillationConfig(8)
	cfg.RawPairSeries = true
	clean := AnalyzeOscillation(channelTrain(8, 256, 100), cfg)
	if !clean.Detected {
		t.Fatalf("raw mode missed a clean channel: %+v", clean)
	}
	if clean.Pair != [2]uint8{0, 1} {
		t.Errorf("dominant pair = %v", clean.Pair)
	}
	if clean.FundamentalLag < 230 || clean.FundamentalLag > 290 {
		t.Errorf("raw fundamental = %d", clean.FundamentalLag)
	}

	// Noisy channel: the raw series dilutes with the noise share while
	// the couple projection holds up — the Figure 11 mechanism.
	noisy := noisyChannelTrain(8, 256, 100, 0.4, 5)
	rawA := AnalyzeOscillation(noisy, cfg)
	cfg.RawPairSeries = false
	coupleA := AnalyzeOscillation(noisy, cfg)
	if !coupleA.Detected {
		t.Fatalf("couple mode missed the noisy channel: %+v", coupleA)
	}
	if rawA.PeakValue >= coupleA.PeakValue {
		t.Errorf("raw peak %v should fall below couple peak %v under noise",
			rawA.PeakValue, coupleA.PeakValue)
	}
}

func TestAppearanceOrderSeries(t *testing.T) {
	tr := trace.NewTrain(0)
	tr.Append(trace.Event{Cycle: 1, Actor: 3, Victim: 4})
	tr.Append(trace.Event{Cycle: 2, Actor: 4, Victim: 3})
	tr.Append(trace.Event{Cycle: 3, Actor: 3, Victim: 4})
	tr.Append(trace.Event{Cycle: 4, Actor: 7, Victim: 1})
	s := appearanceOrderSeries(tr)
	want := []float64{0, 1, 0, 2}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("series = %v, want %v", s, want)
		}
	}
}

func TestDominantCouple(t *testing.T) {
	tr := trace.NewTrain(0)
	for i := uint64(0); i < 10; i++ {
		tr.Append(trace.Event{Cycle: i, Actor: 2, Victim: 5})
	}
	tr.Append(trace.Event{Cycle: 11, Actor: 0, Victim: 1})
	tr.Append(trace.Event{Cycle: 12, Actor: 3, Victim: 3})               // self: ignored
	tr.Append(trace.Event{Cycle: 13, Actor: 6, Victim: trace.NoContext}) // victimless: ignored
	if got := dominantCouple(tr); got != [2]uint8{2, 5} {
		t.Errorf("dominant couple = %v", got)
	}
}
