package core

import (
	"testing"

	"cchunter/internal/auditor"
	"cchunter/internal/stats"
)

// covertQuantum builds a quantum histogram shaped like Figure 6: heavy
// bin 0 (quiet windows) plus a burst distribution around burstBin.
func covertQuantum(q uint64, quiet, bursts uint64, burstBin int) auditor.QuantumHistogram {
	h := stats.NewHistogram(128)
	h.AddN(0, quiet)
	h.AddN(burstBin-1, bursts/4)
	h.AddN(burstBin, bursts/2)
	h.AddN(burstBin+1, bursts/4)
	return auditor.QuantumHistogram{Quantum: q, Hist: h}
}

// benignQuantum builds a histogram with geometrically decaying random
// conflict densities and no second distribution.
func benignQuantum(q uint64, scale uint64) auditor.QuantumHistogram {
	h := stats.NewHistogram(128)
	h.AddN(0, scale*100)
	h.AddN(1, scale*20)
	h.AddN(2, scale*4)
	h.AddN(3, scale)
	return auditor.QuantumHistogram{Quantum: q, Hist: h}
}

func covertRecords(n int) []auditor.QuantumHistogram {
	recs := make([]auditor.QuantumHistogram, n)
	for i := range recs {
		recs[i] = covertQuantum(uint64(i), 2000, 100, 20)
	}
	return recs
}

func TestThresholdDensityValley(t *testing.T) {
	h := stats.NewHistogram(32)
	h.AddN(0, 100)
	h.AddN(1, 10)
	h.AddN(2, 1) // valley
	h.AddN(20, 30)
	// Scanning left to right: bin 1 fails (next bin is smaller), bin 2
	// fails (1 > 0), bin 3 is the first bin smaller than its
	// predecessor and no larger than its successor.
	got := ThresholdDensity(h)
	if got != 3 {
		t.Errorf("threshold = %d, want 3", got)
	}
}

func TestThresholdDensityGentleSlopeFallback(t *testing.T) {
	// Monotone decreasing histogram: no valley; threshold is where the
	// slope flattens.
	h := stats.NewHistogram(32)
	h.AddN(0, 1000)
	h.AddN(1, 100)
	h.AddN(2, 95)
	h.AddN(3, 94)
	got := ThresholdDensity(h)
	if got < 2 || got > 3 {
		t.Errorf("gentle-slope threshold = %d, want 2..3", got)
	}
}

func TestThresholdDensityEdge(t *testing.T) {
	if got := ThresholdDensity(stats.NewHistogram(8)); got != 0 {
		t.Errorf("empty histogram threshold = %d", got)
	}
	h := stats.NewHistogram(8)
	h.AddN(0, 50)
	if got := ThresholdDensity(h); got != 0 {
		t.Errorf("bin0-only histogram threshold = %d", got)
	}
}

func TestLikelihoodRatio(t *testing.T) {
	h := stats.NewHistogram(32)
	h.AddN(0, 1000) // omitted from LR
	h.AddN(1, 10)
	h.AddN(20, 90)
	if got := LikelihoodRatio(h, 10); !almostEq(got, 0.9, 1e-9) {
		t.Errorf("LR = %v, want 0.9", got)
	}
	if got := LikelihoodRatio(h, 0); !almostEq(got, 1.0, 1e-9) {
		t.Errorf("LR with threshold 0 should clamp to 1: %v", got)
	}
	if got := LikelihoodRatio(stats.NewHistogram(8), 2); got != 0 {
		t.Errorf("empty LR = %v", got)
	}
}

func almostEq(a, b, eps float64) bool { return absf(a-b) <= eps }

func TestAnalyzeBurstsDetectsCovertPattern(t *testing.T) {
	a := AnalyzeBursts(covertRecords(16), DefaultBurstConfig())
	if !a.HasBursts {
		t.Errorf("covert pattern: HasBursts=false (LR=%v thr=%d burstMean=%v)",
			a.LikelihoodRatio, a.ThresholdDensity, a.BurstMean)
	}
	if a.LikelihoodRatio < 0.9 {
		t.Errorf("covert LR = %v, want ≥0.9 as in the paper", a.LikelihoodRatio)
	}
	if !a.Recurrent || !a.Detected {
		t.Errorf("covert pattern not flagged recurrent/detected: %+v", a)
	}
	if a.BurstMean <= 1.0 || a.NonBurstMean >= 1.0 {
		t.Errorf("distribution means wrong: non-burst=%v burst=%v", a.NonBurstMean, a.BurstMean)
	}
	if a.BurstQuanta != 16 {
		t.Errorf("burst quanta = %d, want 16", a.BurstQuanta)
	}
}

func TestAnalyzeBurstsRejectsBenignPattern(t *testing.T) {
	recs := make([]auditor.QuantumHistogram, 16)
	for i := range recs {
		recs[i] = benignQuantum(uint64(i), 10)
	}
	a := AnalyzeBursts(recs, DefaultBurstConfig())
	if a.Detected {
		t.Errorf("benign pattern detected as covert: %+v", a)
	}
	if a.LikelihoodRatio >= 0.5 {
		t.Errorf("benign LR = %v, want <0.5 as in the paper", a.LikelihoodRatio)
	}
}

func TestAnalyzeBurstsEmptyAndQuiet(t *testing.T) {
	if a := AnalyzeBursts(nil, DefaultBurstConfig()); a.Detected || a.QuantaAnalyzed != 0 {
		t.Error("empty input must not detect")
	}
	// All-quiet quanta: bin0 only.
	recs := make([]auditor.QuantumHistogram, 8)
	for i := range recs {
		h := stats.NewHistogram(128)
		h.AddN(0, 1000)
		recs[i] = auditor.QuantumHistogram{Quantum: uint64(i), Hist: h}
	}
	if a := AnalyzeBursts(recs, DefaultBurstConfig()); a.Detected {
		t.Error("quiet system must not detect")
	}
}

func TestAnalyzeBurstsSingleBurstNotRecurrent(t *testing.T) {
	// One bursty quantum among quiet ones: below MinBurstQuanta.
	recs := make([]auditor.QuantumHistogram, 8)
	for i := range recs {
		h := stats.NewHistogram(128)
		h.AddN(0, 1000)
		recs[i] = auditor.QuantumHistogram{Quantum: uint64(i), Hist: h}
	}
	recs[3] = covertQuantum(3, 1000, 50, 20)
	a := AnalyzeBursts(recs, DefaultBurstConfig())
	if a.Recurrent {
		t.Error("single burst quantum must not be recurrent")
	}
	if a.Detected {
		t.Error("single burst must not trigger detection")
	}
}

func TestAnalyzeBurstsLowBandwidth(t *testing.T) {
	// 0.1 bps-like: bursts in only ~5 of 512 quanta, but identical in
	// shape. Likelihood ratio stays high because bin 0 is omitted.
	recs := make([]auditor.QuantumHistogram, 512)
	for i := range recs {
		h := stats.NewHistogram(128)
		h.AddN(0, 2500)
		recs[i] = auditor.QuantumHistogram{Quantum: uint64(i), Hist: h}
	}
	for _, q := range []int{50, 150, 250, 350, 450} {
		recs[q] = covertQuantum(uint64(q), 2500, 40, 20)
	}
	a := AnalyzeBursts(recs, DefaultBurstConfig())
	if !a.Detected {
		t.Errorf("low-bandwidth channel missed: %+v", a)
	}
	if a.LikelihoodRatio < 0.9 {
		t.Errorf("low-bandwidth LR = %v, want ≥0.9", a.LikelihoodRatio)
	}
}

func TestAnalyzeBurstsWindowClipping(t *testing.T) {
	cfg := DefaultBurstConfig()
	cfg.WindowQuanta = 4
	recs := covertRecords(16)
	a := AnalyzeBursts(recs, cfg)
	if a.QuantaAnalyzed != 4 {
		t.Errorf("analyzed %d quanta, want window of 4", a.QuantaAnalyzed)
	}
}

func TestScatteredRandomBurstsNotRecurrent(t *testing.T) {
	// Bursty quanta whose shapes are all different (random densities
	// across the spectrum) cluster poorly: dominant share < 0.5.
	rng := stats.NewRNG(7)
	recs := make([]auditor.QuantumHistogram, 64)
	for i := range recs {
		h := stats.NewHistogram(128)
		h.AddN(0, 2000)
		// Random scatter: each bursty quantum has a unique profile.
		for j := 0; j < 4; j++ {
			h.AddN(2+rng.Intn(120), uint64(1+rng.Intn(4)))
		}
		recs[i] = auditor.QuantumHistogram{Quantum: uint64(i), Hist: h}
	}
	cfg := DefaultBurstConfig()
	a := AnalyzeBursts(recs, cfg)
	// The scattered shapes may or may not clear the clustering bar,
	// but the likelihood ratio must not mimic a covert channel's ≥0.9
	// with a coherent second distribution.
	if a.Detected && a.LikelihoodRatio >= 0.9 && a.DominantShare >= 0.9 {
		t.Errorf("random scatter looked exactly like a covert channel: %+v", a)
	}
}

func TestDiscretizeHistogram(t *testing.T) {
	h := stats.NewHistogram(128)
	h.AddN(0, 100) // excluded: bin 0 is the absence of contention
	h.AddN(2, 10)
	h.AddN(20, 50)
	f := DiscretizeHistogram(h, 0)
	if len(f) != 7 { // log2 bands covering 128 bins
		t.Fatalf("feature length %d", len(f))
	}
	if f[1] <= 0 { // bin 2 lives in band {2,3}
		t.Error("band {2,3} should have mass")
	}
	if f[4] <= 0 { // bin 20 lives in band {16..31}
		t.Error("band {16..31} should have mass")
	}
	if f[4] <= f[1] {
		t.Error("the heavier band should have the higher level")
	}
	for i, v := range f {
		if i != 1 && i != 4 && v != 0 {
			t.Errorf("unexpected mass in band %d", i)
		}
	}
	// Similar shapes at different absolute scales map to the same
	// features (normalization property) — and bin 0 mass is ignored.
	h2 := stats.NewHistogram(128)
	h2.AddN(0, 99999)
	h2.AddN(2, 100)
	h2.AddN(20, 500)
	f2 := DiscretizeHistogram(h2, 0)
	for i := range f {
		if absf(f[i]-f2[i]) > 0.1 {
			t.Errorf("scaled histogram features differ at %d: %v vs %v", i, f[i], f2[i])
		}
	}
	// Empty histogram: all-zero features; cap respected.
	fe := DiscretizeHistogram(stats.NewHistogram(128), 4)
	if len(fe) != 4 {
		t.Errorf("capped feature bins = %d", len(fe))
	}
	for _, v := range fe {
		if v != 0 {
			t.Error("empty histogram should give zero features")
		}
	}
}

func TestDefaultDeltaT(t *testing.T) {
	if DefaultDeltaT(traceBus()) != 100_000 || DefaultDeltaT(traceDiv()) != 500 {
		t.Error("paper Δt constants wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflict-miss Δt should panic")
		}
	}()
	DefaultDeltaT(traceConf())
}

func TestChooseDeltaT(t *testing.T) {
	// rate = 1 event / 5000 cycles, α = 20 → Δt = 100k.
	if got := ChooseDeltaT(1.0/5000, 20, 0, 0); got != 100_000 {
		t.Errorf("Δt = %d, want 100000", got)
	}
	if got := ChooseDeltaT(0, 20, 500, 0); got != 500 {
		t.Errorf("zero rate should clamp to min, got %d", got)
	}
	if got := ChooseDeltaT(1, 20, 0, 10); got != 10 {
		t.Errorf("max clamp failed: %d", got)
	}
	if got := ChooseDeltaT(100, 0.0001, 0, 0); got < 1 {
		t.Errorf("Δt must be at least 1, got %d", got)
	}
}

func TestDeltaTHeuristic(t *testing.T) {
	// Bus channel at 1000 bps: 2.5M-cycle bits, ~500 locks per bit →
	// ≈112k cycles, the right order of magnitude vs the paper's 100k.
	got := DeltaTHeuristic(2_500_000, 500)
	if got < 50_000 || got > 200_000 {
		t.Errorf("bus Δt heuristic = %d, want ~100k", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid input should panic")
		}
	}()
	DeltaTHeuristic(0, 10)
}
