// Package core implements CC-Hunter's detection algorithms — the
// paper's primary contribution:
//
//   - recurrent burst pattern detection (§IV-B) for covert channels on
//     combinational hardware (memory bus, integer divider), built on
//     event density histograms, a threshold-density split, a
//     likelihood-ratio test, and k-means clustering of discretized
//     histograms to establish recurrence; and
//   - oscillatory pattern detection (§IV-D) for covert channels on
//     memory hardware (shared caches), built on the autocorrelation of
//     the conflict-miss event train.
//
// The package consumes the CC-Auditor's outputs (internal/auditor) and
// is deliberately independent of the simulator: feed it event trains
// from any source.
package core

import "cchunter/internal/trace"

// Paper-calibrated observation windows (§IV-B step 1): for the memory
// bus channel Δt is 100,000 cycles (40 µs at 2.5 GHz); for the integer
// divider channel, 500 cycles (200 ns). The ring and TLB windows are
// ours, derived with DeltaTHeuristic from each channel's maximum
// bandwidth and conflicts-per-bit (see DESIGN.md §16).
const (
	DeltaTBus     uint64 = 100_000
	DeltaTDivider uint64 = 500
	DeltaTRing    uint64 = 1_250
	DeltaTTLB     uint64 = 10_000
)

// BurstKinds lists, in canonical order, every indicator event analyzed
// by the recurrent-burst detector. Batch and streaming detectors both
// iterate this list (filtered to the kinds the auditor monitored), so
// report ordering is identical across paths.
var BurstKinds = []trace.Kind{
	trace.KindBusLock,
	trace.KindDivContention,
	trace.KindRingContention,
	trace.KindTLBConflict,
}

// DefaultDeltaT returns the paper's Δt for the given indicator event.
// Conflict misses are analyzed by the oscillation detector and have no
// Δt; asking for one panics.
func DefaultDeltaT(kind trace.Kind) uint64 {
	switch kind {
	case trace.KindBusLock:
		return DeltaTBus
	case trace.KindDivContention:
		return DeltaTDivider
	case trace.KindRingContention:
		return DeltaTRing
	case trace.KindTLBConflict:
		return DeltaTTLB
	default:
		panic("core: no default Δt for " + kind.String())
	}
}

// ChooseDeltaT derives an observation window from a measured mean
// event rate (events per cycle): Δt = α × (1 / rate). α is the
// empirical constant of §IV-B that keeps Δt between the regime where
// per-window counts follow a Poisson distribution (Δt too small) and
// the regime where they converge to a normal distribution (Δt too
// large); it is determined from the maximum and minimum achievable
// covert-channel bandwidths on the hardware unit.
//
// The result is clamped to [min, max] (pass 0 to skip a bound).
func ChooseDeltaT(meanRate, alpha float64, min, max uint64) uint64 {
	if meanRate <= 0 || alpha <= 0 {
		if min > 0 {
			return min
		}
		return 1
	}
	dt := uint64(alpha / meanRate)
	if dt < 1 {
		dt = 1
	}
	if min > 0 && dt < min {
		dt = min
	}
	if max > 0 && dt > max {
		dt = max
	}
	return dt
}

// DeltaTHeuristic derives an observation window from the channel
// characteristics of a hardware unit, encoding the paper's α recipe:
// Δt sits at the geometric midpoint between the burst's inter-event
// spacing and the bit slot, i.e. Δt = bitCycles / √conflictsPerBit,
// where bitCycles is the bit-slot length at the *maximum* achievable
// bandwidth and conflictsPerBit is how many conflicts a reliable bit
// needs. For the memory bus (1000 bps max, ~500 locks per bit) this
// yields ≈112k cycles against the paper's empirical 100k; treat it as
// a starting point and prefer the paper's calibrated constants where
// they exist.
func DeltaTHeuristic(bitCycles uint64, conflictsPerBit float64) uint64 {
	if bitCycles == 0 || conflictsPerBit <= 0 {
		panic("core: invalid channel characteristics")
	}
	dt := uint64(float64(bitCycles) / sqrtf(conflictsPerBit))
	if dt < 1 {
		dt = 1
	}
	return dt
}
