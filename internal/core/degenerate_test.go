package core

// Degenerate-input tests: the detector must render a (non-)verdict,
// never die, when the sensor path delivers pathological trains —
// nothing at all, a single event, everything piled into one window, or
// densities past every hardware ceiling.

import (
	"testing"

	"cchunter/internal/auditor"
	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

func monitoredAuditor(t *testing.T, quantum uint64) *auditor.Auditor {
	t.Helper()
	a := auditor.MustNew(auditor.DefaultConfig(quantum))
	if err := a.Monitor(trace.KindBusLock, DeltaTBus); err != nil {
		t.Fatal(err)
	}
	if err := a.Monitor(trace.KindDivContention, DeltaTDivider); err != nil {
		t.Fatal(err)
	}
	if err := a.MonitorConflicts(); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzeEmptyTrain(t *testing.T) {
	quantum := uint64(1_000_000)
	a := monitoredAuditor(t, quantum)
	rep := NewDetector(a, DefaultDetectorConfig(quantum, 8)).Analyze(4 * quantum)
	if rep.Detected {
		t.Error("empty train must not alarm")
	}
	if rep.Confidence != 1 {
		t.Errorf("confidence = %v on a pristine empty path", rep.Confidence)
	}
	if rep.Oscillation != nil && rep.Oscillation.Detected {
		t.Error("empty conflict train must not oscillate")
	}
}

func TestAnalyzeSingleEvent(t *testing.T) {
	quantum := uint64(1_000_000)
	a := monitoredAuditor(t, quantum)
	a.OnEvent(trace.Event{Cycle: 10, Kind: trace.KindBusLock, Actor: 0, Victim: trace.NoContext})
	a.OnEvent(trace.Event{Cycle: 20, Kind: trace.KindConflictMiss, Actor: 0, Victim: 1})
	rep := NewDetector(a, DefaultDetectorConfig(quantum, 8)).Analyze(4 * quantum)
	if rep.Detected {
		t.Error("one event must not alarm")
	}
}

func TestAnalyzeAllEventsInOneWindow(t *testing.T) {
	// Every event lands inside a single Δt window of a single quantum;
	// all other windows are empty. Analysis must survive the extreme
	// one-bin-against-zeros histogram shape.
	quantum := uint64(1_000_000)
	a := monitoredAuditor(t, quantum)
	for i := 0; i < 100; i++ {
		a.OnEvent(trace.Event{Cycle: uint64(i), Kind: trace.KindBusLock, Actor: 1, Victim: trace.NoContext})
	}
	rep := NewDetector(a, DefaultDetectorConfig(quantum, 8)).Analyze(8 * quantum)
	for _, v := range rep.Contention {
		if v.Analysis.LikelihoodRatio < 0 || v.Analysis.LikelihoodRatio > 1 {
			t.Errorf("%v: LR %v outside [0,1]", v.Kind, v.Analysis.LikelihoodRatio)
		}
	}
}

func TestAnalyzeMaxDensitySaturation(t *testing.T) {
	// Densities far past the 128-entry histogram range: the top bin
	// clamps (as the hardware buffer would) and the verdict carries a
	// saturation diagnostic instead of an overflow.
	quantum := uint64(1_000_000)
	a := monitoredAuditor(t, quantum)
	for q := 0; q < 4; q++ {
		base := uint64(q) * quantum
		for i := 0; i < 50_000; i++ {
			a.OnEvent(trace.Event{
				Cycle: base + uint64(i)*10,
				Kind:  trace.KindBusLock, Actor: 1, Victim: trace.NoContext,
			})
		}
	}
	d := NewDetector(a, DefaultDetectorConfig(quantum, 8))
	rep := d.Analyze(4 * quantum)
	var bus *ContentionVerdict
	for i := range rep.Contention {
		if rep.Contention[i].Kind == trace.KindBusLock {
			bus = &rep.Contention[i]
		}
	}
	if bus == nil {
		t.Fatal("no bus verdict")
	}
	if !bus.Degradation.Degraded || bus.Degradation.SaturationRate == 0 {
		t.Errorf("saturated run reported pristine: %+v", bus.Degradation)
	}
	if rep.Confidence >= 1 {
		t.Errorf("report confidence %v should drop under saturation", rep.Confidence)
	}
}

func TestHistogramDegenerateInputs(t *testing.T) {
	h := stats.NewHistogram(8)
	if h.Total() != 0 || h.NonZeroMax() != -1 || h.MeanDensity() != 0 {
		t.Error("empty histogram statistics wrong")
	}
	// Over-range densities clamp into the top bin and are counted.
	h.Add(7)
	h.Add(10_000)
	if h.Bin(7) != 2 {
		t.Errorf("top bin = %d, want 2 (clamped)", h.Bin(7))
	}
	if h.Clamped() != 1 {
		t.Errorf("clamped = %d, want 1", h.Clamped())
	}
	// A single-entry histogram still yields sane statistics.
	one := stats.NewHistogram(4)
	one.Add(2)
	if one.MeanDensity() != 2 || one.NonZeroMax() != 2 {
		t.Errorf("single-entry stats: mean=%v max=%v", one.MeanDensity(), one.NonZeroMax())
	}
}

func TestUpstreamLossReachesVerdicts(t *testing.T) {
	quantum := uint64(1_000_000)
	a := monitoredAuditor(t, quantum)
	a.OnEvent(trace.Event{Cycle: 5, Kind: trace.KindBusLock, Actor: 0, Victim: trace.NoContext})
	cfg := DefaultDetectorConfig(quantum, 8)
	cfg.UpstreamLossRate = 0.25
	rep := NewDetector(a, cfg).Analyze(2 * quantum)
	if len(rep.Contention) == 0 {
		t.Fatal("no verdicts")
	}
	for _, v := range rep.Contention {
		if v.Degradation.EventLossRate != 0.25 || !v.Degradation.Degraded {
			t.Errorf("%v: degradation %+v, want loss 0.25", v.Kind, v.Degradation)
		}
	}
	if rep.Confidence > 0.75 {
		t.Errorf("confidence %v, want <= 0.75", rep.Confidence)
	}
}
