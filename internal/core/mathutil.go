package core

import "math"

var ln2 = math.Ln2

func ln(x float64) float64     { return math.Log(x) }
func sqrtf(x float64) float64  { return math.Sqrt(x) }
func absf(x float64) float64   { return math.Abs(x) }
func roundf(x float64) float64 { return math.Round(x) }
