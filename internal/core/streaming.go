package core

import "cchunter/internal/trace"

// OnsetReport is a change-detection verdict over one detector's
// decision statistic: when (in simulated cycles) the statistic first
// departed from its quiescent regime. The streaming daemon runs a
// CUSUM with an adaptive threshold over the sliding likelihood-ratio
// series (burst detectors) and the per-window peak series (oscillation
// detector); the batch path never produces one.
type OnsetReport struct {
	// Kind is the monitored indicator event the series came from.
	Kind trace.Kind `json:"kind"`
	// Detected reports whether the change detector fired.
	Detected bool `json:"detected"`
	// OnsetCycle is the simulated cycle at which the fired statistic
	// last left zero — the estimated start of the covert transmission.
	OnsetCycle uint64 `json:"onsetCycle"`
	// OnsetIndex is the sample index (quantum or observation window
	// ordinal) corresponding to OnsetCycle.
	OnsetIndex int `json:"onsetIndex"`
	// FiredCycle is the cycle of the sample that pushed the statistic
	// over threshold; OnsetCycle <= FiredCycle, and the gap is the
	// detection latency.
	FiredCycle uint64 `json:"firedCycle"`
	// Statistic is the CUSUM value when it fired (or its final value
	// when it never did).
	Statistic float64 `json:"statistic"`
	// Threshold is the (possibly adapted) threshold in effect at the
	// firing sample.
	Threshold float64 `json:"threshold"`
	// Samples is how many series samples the detector consumed.
	Samples int `json:"samples"`
}

// StreamingInfo carries the streaming daemon's extra evidence. It is
// only ever attached by the streaming path (internal/stream); the
// batch detector leaves it nil, which keeps batch reports — and the
// pinned golden corpus — byte-identical.
type StreamingInfo struct {
	// Quanta is how many OS time quanta the daemon drained.
	Quanta int `json:"quanta"`
	// WindowsAnalyzed is how many oscillation observation windows were
	// closed and analyzed mid-run.
	WindowsAnalyzed int `json:"windowsAnalyzed"`
	// WindowsRetained is how many window analyses the verdict carries;
	// under bounded retention it can be smaller than WindowsAnalyzed.
	WindowsRetained int `json:"windowsRetained"`
	// PeakRetainedEvents is the largest number of conflict-train
	// entries held at any point — the O(window) memory bound the
	// streaming path exists for.
	PeakRetainedEvents int `json:"peakRetainedEvents"`
	// Onsets holds one change-detection report per monitored series.
	Onsets []OnsetReport `json:"onsets,omitempty"`
	// EventsShed counts events dropped by a bounded ingest queue in
	// front of the daemon (0 when ingest ran unbounded).
	EventsShed uint64 `json:"eventsShed,omitempty"`
}

// Onset returns the streaming onset report for kind (nil when the
// daemon monitored no such series or streaming was off).
func (r *Report) Onset(kind trace.Kind) *OnsetReport {
	if r == nil || r.Streaming == nil {
		return nil
	}
	for i := range r.Streaming.Onsets {
		if r.Streaming.Onsets[i].Kind == kind {
			return &r.Streaming.Onsets[i]
		}
	}
	return nil
}

// DegradedReport builds the verdict a supervised pipeline publishes
// when a detector job died (panicked or overran its watchdog) instead
// of rendering an analysis: no detection claim either way, zero
// confidence, and the failure reason on record. A monitoring fleet
// treats it as "re-observe", never as "clean".
func DegradedReport(reason string) Report {
	return Report{
		Confidence: 0,
		Failure:    reason,
	}
}
