package core

import (
	"testing"

	"cchunter/internal/auditor"
	"cchunter/internal/pool"
	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

// allocFixture builds an auditor carrying both analysis workloads: a
// bursty bus-lock record stream and a cache-channel-shaped conflict
// train. mult multiplies the event volume inside the fixed 8-quantum
// observation window, so allocation counts can be compared at equal
// window counts but very different data sizes.
func allocFixture(t *testing.T, quantum uint64, mult int) *auditor.Auditor {
	t.Helper()
	a := auditor.MustNew(auditor.DefaultConfig(quantum))
	if err := a.Monitor(trace.KindBusLock, DeltaTBus); err != nil {
		t.Fatal(err)
	}
	if err := a.MonitorConflicts(); err != nil {
		t.Fatal(err)
	}
	feedBursts(a, 8, quantum, 500*mult)
	cycle := uint64(0)
	for bit := 0; bit < 8*mult; bit++ {
		for set := 0; set < 128; set++ {
			a.OnEvent(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss,
				Actor: 0, Victim: 1, Unit: uint32(set)})
			cycle += 300
		}
		for set := 0; set < 128; set++ {
			a.OnEvent(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss,
				Actor: 1, Victim: 0, Unit: uint32(set)})
			cycle += 300
		}
	}
	return a
}

// TestAnalysisPathAllocationFree pins the allocation-flat analysis
// path: after the detector's pooled workspaces warm up, a full Analyze
// — burst likelihood + k-means recurrence + windowed oscillation over
// a multi-thousand-event conflict train — costs only the verdict
// envelope (report slices, peak lists, merged histograms), bounded by
// a small constant that does NOT grow with the event volume inside the
// observation window. Before the workspace/pool refactor this path
// allocated per histogram bin, per k-means iteration, and per
// autocorrelation lag.
func TestAnalysisPathAllocationFree(t *testing.T) {
	const ceiling = 64.0
	quantum := uint64(10_000_000)
	end := uint64(8) * quantum
	for _, mult := range []int{1, 4} {
		a := allocFixture(t, quantum, mult)
		d := NewDetector(a, DefaultDetectorConfig(quantum, 8))
		rep := d.Analyze(end) // warm-up sizes every arena
		if !rep.Detected || rep.Oscillation == nil || !rep.Oscillation.Detected {
			t.Fatalf("mult=%d: fixture not detected (%+v) — allocation bound would be vacuous", mult, rep)
		}
		allocs := testing.AllocsPerRun(10, func() {
			d.Analyze(end)
		})
		if allocs > ceiling {
			t.Errorf("mult=%d: Analyze allocates %.0f times per run, want <= %.0f", mult, allocs, ceiling)
		}
		d.Release()
	}
}

// TestOscillationWorkspacePathAllocationFree pins the tightest loop:
// AnalyzeOscillation with a workspace, its pooled autocorrelogram
// recycled by the caller, allocates only the per-couple peak lists.
func TestOscillationWorkspacePathAllocationFree(t *testing.T) {
	a := allocFixture(t, 10_000_000, 1)
	train := a.ConflictTrain()
	if train == nil || train.Len() == 0 {
		t.Fatal("fixture produced no conflict train")
	}
	cfg := DefaultDetectorConfig(10_000_000, 8).Oscillation
	ws := wsPool.Get().(*stats.Workspace)
	defer wsPool.Put(ws)
	cfg.Workspace = ws
	out := AnalyzeOscillation(train, cfg) // warm-up
	pool.PutFloat64s(out.Autocorrelogram)
	allocs := testing.AllocsPerRun(10, func() {
		r := AnalyzeOscillation(train, cfg)
		pool.PutFloat64s(r.Autocorrelogram)
	})
	// The peak list and the couple-count list are the only survivors;
	// everything else (label series, FFT scratch, correlogram copy)
	// comes from the workspace or the pool.
	if allocs > 8 {
		t.Errorf("AnalyzeOscillation allocates %.0f times per run, want <= 8", allocs)
	}
}
