package core

import (
	"cchunter/internal/auditor"
	"cchunter/internal/pool"
	"cchunter/internal/stats"
)

// BurstConfig tunes the recurrent burst pattern detector (§IV-B).
type BurstConfig struct {
	// LikelihoodThreshold is the minimum likelihood ratio of the
	// second (burst) distribution for an alarm. The paper observes
	// ≥0.9 on real channels (even at 0.1 bps) and <0.5 on benign
	// programs, and sets a conservative 0.5.
	LikelihoodThreshold float64
	// WindowQuanta bounds how many OS time quanta one analysis covers
	// (paper: 512, i.e. 51.2 s, "to avoid diluting the significance of
	// event density histograms").
	WindowQuanta int
	// ClusterK is the k for the recurrence clustering step.
	ClusterK int
	// FeatureBins is the dimensionality histograms are compressed to
	// before clustering (the paper's "feature dimension reduction").
	FeatureBins int
	// MinBurstQuanta is the minimum number of quanta containing burst
	// windows for the pattern to count as recurrent.
	MinBurstQuanta int
	// DominantClusterShare is the fraction of bursty quanta the
	// largest burst cluster must hold: recurring transmissions produce
	// *similar* histograms that cluster together, while random bursts
	// scatter.
	DominantClusterShare float64
	// Seed drives the (deterministic) k-means initialization.
	Seed uint64
	// Workspace, when non-nil, supplies the recurrence clustering's
	// scratch (point-matrix headers, centroid arena, assignment and
	// distance vectors), so repeated burst analyses run allocation-flat.
	// Borrowed only for the duration of each analyzeRecurrence call;
	// must not be shared across goroutines. Results are bit-identical
	// with or without it (see TestKmeansWorkspaceMatchesReference).
	Workspace *stats.KmeansWorkspace
}

// DefaultBurstConfig returns the paper's parameters.
func DefaultBurstConfig() BurstConfig {
	return BurstConfig{
		LikelihoodThreshold:  0.5,
		WindowQuanta:         512,
		ClusterK:             4,
		FeatureBins:          8,
		MinBurstQuanta:       2,
		DominantClusterShare: 0.35,
		Seed:                 1,
	}
}

// BurstAnalysis is the outcome of one recurrent-burst analysis window.
type BurstAnalysis struct {
	// Histogram is the event density histogram merged over the window
	// (Figure 6).
	Histogram *stats.Histogram
	// ThresholdDensity is the bin splitting the non-burst distribution
	// from the burst distribution (§IV-B step 3).
	ThresholdDensity int
	// NonBurstMean is the mean density of the first distribution
	// (bins below the threshold); below 1.0 when bursts exist.
	NonBurstMean float64
	// BurstMean is the mean density of the second distribution (bins
	// at or above the threshold); above 1.0 when bursts exist.
	BurstMean float64
	// LikelihoodRatio is the burst distribution's share of all
	// non-zero-density windows (§IV-B step 4; bin #0 is omitted since
	// it contributes no contention).
	LikelihoodRatio float64
	// HasBursts reports whether a significant second distribution
	// exists.
	HasBursts bool
	// BurstQuanta is how many quanta contained burst windows.
	BurstQuanta int
	// QuantaAnalyzed is how many quanta the window covered.
	QuantaAnalyzed int
	// Recurrent reports whether burst patterns recur across quanta
	// (§IV-B step 5).
	Recurrent bool
	// DominantShare is the largest burst cluster's share of bursty
	// quanta.
	DominantShare float64
	// Detected is the final verdict: significant recurrent bursts.
	Detected bool
}

// AnalyzeBursts runs the recurrent burst pattern detection algorithm
// over a sequence of per-quantum event density histograms (the
// CC-Auditor's recorded output). Only the most recent
// cfg.WindowQuanta records are considered.
func AnalyzeBursts(records []auditor.QuantumHistogram, cfg BurstConfig) BurstAnalysis {
	if cfg.WindowQuanta > 0 && len(records) > cfg.WindowQuanta {
		records = records[len(records)-cfg.WindowQuanta:]
	}
	var out BurstAnalysis
	out.QuantaAnalyzed = len(records)
	if len(records) == 0 {
		return out
	}
	merged := stats.NewHistogram(records[0].Hist.NumBins())
	for _, r := range records {
		merged.Merge(r.Hist)
	}
	out.Histogram = merged
	out.ThresholdDensity = ThresholdDensity(merged)
	out.NonBurstMean = meanBelow(merged, out.ThresholdDensity)
	out.BurstMean = merged.MeanDensityFrom(out.ThresholdDensity)
	out.LikelihoodRatio = LikelihoodRatio(merged, out.ThresholdDensity)
	out.HasBursts = out.ThresholdDensity > 0 &&
		merged.TotalFrom(out.ThresholdDensity) > 0 &&
		out.BurstMean > 1.0 &&
		out.LikelihoodRatio >= cfg.LikelihoodThreshold

	// Step 5: recurrence of burst patterns across quanta.
	out.BurstQuanta, out.DominantShare, out.Recurrent = analyzeRecurrence(records, out.ThresholdDensity, cfg)
	out.Detected = out.HasBursts && out.Recurrent
	return out
}

// ThresholdDensity implements §IV-B step 3: scanning the histogram
// left to right, the threshold density is the first bin that is
// smaller than its predecessor and no larger than its successor. When
// no such bin exists, it falls back to the bin where the slope of the
// (fitted) curve becomes gentle. It returns 0 when the histogram has
// no usable mass (then there is no second distribution at all).
func ThresholdDensity(h *stats.Histogram) int {
	top := h.NonZeroMax()
	if top <= 0 {
		return 0
	}
	bins := h.Bins()
	for i := 1; i <= top; i++ {
		prev := bins[i-1]
		var next uint64
		if i+1 < len(bins) {
			next = bins[i+1]
		}
		if bins[i] < prev && bins[i] <= next {
			return i
		}
	}
	// Fallback: first bin where the downward slope flattens to under
	// 5% of the peak per bin.
	var peak uint64
	for _, b := range bins[:top+1] {
		if b > peak {
			peak = b
		}
	}
	gentle := peak / 20
	for i := 1; i <= top; i++ {
		drop := int64(bins[i-1]) - int64(bins[i])
		if drop >= 0 && uint64(drop) <= gentle {
			return i
		}
	}
	return top
}

// LikelihoodRatio implements §IV-B step 4: the number of samples in
// the identified (burst) distribution divided by the total number of
// samples, omitting bin #0 since it contributes no contention.
func LikelihoodRatio(h *stats.Histogram, threshold int) float64 {
	if threshold < 1 {
		threshold = 1
	}
	total := h.TotalFrom(1)
	if total == 0 {
		return 0
	}
	return float64(h.TotalFrom(threshold)) / float64(total)
}

// meanBelow returns the mean density over bins [0, threshold).
func meanBelow(h *stats.Histogram, threshold int) float64 {
	var s, n float64
	for i := 0; i < threshold && i < h.NumBins(); i++ {
		s += float64(i) * float64(h.Bin(i))
		n += float64(h.Bin(i))
	}
	if n == 0 {
		return 0
	}
	return s / n
}

// analyzeRecurrence implements §IV-B step 5: discretize each quantum's
// histogram into a short string, cluster the strings with k-means, and
// check that the quanta containing bursts form a coherent recurring
// cluster rather than scattered noise.
func analyzeRecurrence(records []auditor.QuantumHistogram, threshold int, cfg BurstConfig) (burstQuanta int, dominantShare float64, recurrent bool) {
	if threshold < 1 {
		threshold = 1
	}
	// The point matrix is pooled: each feature vector is borrowed for
	// the duration of the clustering and returned on every exit path.
	// With a workspace, the row-header array is workspace scratch too —
	// burstQuanta never exceeds len(records), so the appends below can
	// never outgrow it.
	var burstFeatures [][]float64
	if cfg.Workspace != nil {
		burstFeatures = cfg.Workspace.PointRows(len(records))
	}
	defer func() {
		for _, f := range burstFeatures {
			pool.PutFloat64s(f)
		}
	}()
	for _, r := range records {
		if r.Hist.TotalFrom(threshold) > 0 {
			burstQuanta++
			f := pool.Float64s(featureBands(r.Hist.NumBins(), cfg.FeatureBins))
			discretizeInto(f, r.Hist)
			burstFeatures = append(burstFeatures, f)
		}
	}
	if burstQuanta < cfg.MinBurstQuanta {
		return burstQuanta, 0, false
	}
	// With only a handful of bursty quanta there is no basis for many
	// clusters; k grows with the sample so that small windows are not
	// shredded into singletons.
	k := cfg.ClusterK
	if limit := 1 + len(burstFeatures)/3; k > limit {
		k = limit
	}
	rng := stats.SeededRNG(cfg.Seed)
	var assign []int
	var err error
	if cfg.Workspace != nil {
		assign, _, err = cfg.Workspace.KMeans(burstFeatures, k, 100, &rng)
	} else {
		assign, _, err = stats.KMeans(burstFeatures, k, 100, &rng)
	}
	if err != nil {
		// Unclusterable features (cannot happen for the fixed-width
		// discretization above, but a supervised detector degrades
		// rather than crashes): no recurrence can be established.
		return burstQuanta, 0, false
	}
	var sizes []int
	if cfg.Workspace != nil {
		sizes = cfg.Workspace.ClusterSizes(assign, k)
	} else {
		sizes = stats.ClusterSizes(assign, k)
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	dominantShare = float64(largest) / float64(len(burstFeatures))
	return burstQuanta, dominantShare, dominantShare >= cfg.DominantClusterShare
}

// DiscretizeHistogram compresses a histogram into a short string of
// log-scaled levels — the "discretize the event density histograms
// into strings" step. Bins are grouped into log₂-spaced density bands
// ({1}, {2,3}, {4..7}, {8..15}, ...), bin 0 is excluded (it records
// the absence of contention), and each band's level is the log-scaled
// *fraction* of non-zero-density windows it holds. Two quanta carrying
// the same burst pattern thus map to nearby strings regardless of how
// many windows they contain or how much unrelated low-density noise
// surrounds the bursts, while a quantum with and without the burst
// band differ sharply.
//
// maxFeatures caps the number of bands (0 means enough bands to cover
// every bin).
func DiscretizeHistogram(h *stats.Histogram, maxFeatures int) []float64 {
	out := make([]float64, featureBands(h.NumBins(), maxFeatures))
	discretizeInto(out, h)
	return out
}

// featureBands returns the number of log₂ density bands a histogram of
// numBins bins discretizes into, capped at maxFeatures (0 = no cap).
func featureBands(numBins, maxFeatures int) int {
	bands := 0
	for 1<<bands < numBins {
		bands++
	}
	if maxFeatures > 0 && bands > maxFeatures {
		bands = maxFeatures
	}
	return bands
}

// discretizeInto fills out (zeroed, length = featureBands(...)) with
// the discretized string of h. The recurrence step calls it with
// pooled vectors; DiscretizeHistogram with a fresh allocation.
func discretizeInto(out []float64, h *stats.Histogram) {
	n := h.NumBins()
	bands := len(out)
	total := float64(h.TotalFrom(1))
	if total == 0 {
		return
	}
	for f := 0; f < bands; f++ {
		lo := 1 << f
		hi := 1 << (f + 1)
		if f == bands-1 && hi < n {
			hi = n // last band absorbs the tail
		}
		var mass uint64
		for b := lo; b < hi && b < n; b++ {
			mass += h.Bin(b)
		}
		if mass > 0 {
			// Levels 1..~16 on a log scale of the mass fraction.
			frac := float64(mass) / total
			level := 16 + log2(frac) // frac=1 → 16; frac=2^-16 → 0
			if level < 1 {
				level = 1
			}
			out[f] = level
		}
	}
}

func log2(x float64) float64 { return ln(x) / ln2 }
