package core

import (
	"cchunter/internal/pool"
	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

// OscillationConfig tunes the oscillatory pattern detector (§IV-D).
type OscillationConfig struct {
	// MaxLag bounds the autocorrelogram (paper plots go to lag 1000).
	MaxLag int
	// MinLag ignores trivially short periods, which benign tight
	// loops produce in abundance.
	MinLag int
	// PeakThreshold is the minimum autocorrelation coefficient for a
	// peak to count as significant. The paper's channels peak at
	// 0.85–0.95; benign programs stay well below.
	PeakThreshold float64
	// HarmonicTolerance is the relative lag tolerance when matching
	// harmonics of the fundamental period (random conflicts shift the
	// paper's 512-set peak to lag 533, ~4%).
	HarmonicTolerance float64
	// MinHarmonics is how many periodic peaks (fundamental included)
	// must be present for sustained periodicity. Requiring ≥2 rejects
	// the paper's webserver case, whose brief periodicity dies past
	// lag 180.
	MinHarmonics int
	// MinProminence is how far a candidate peak must rise above the
	// lowest autocorrelation at any smaller lag. Benign run-length
	// correlation decays slowly from lag 0 and its wiggles sit on a
	// high shoulder (near-zero prominence); a true oscillation's peak
	// climbs from a deep valley (the anti-phase at half its period).
	MinProminence float64
	// MinCoupleShare is the minimum fraction of the train's events a
	// context couple must contribute before it is worth
	// autocorrelating (a covert channel's endpoints dominate their
	// train; couples below this share cannot carry a usable channel
	// within the window).
	MinCoupleShare float64
	// RawPairSeries selects the paper's original series formulation:
	// one series over all events, each labelled with its unique
	// ordered-pair identifier (§IV-D). Interleaved noise events then
	// carry labels far from the series mean and dilute the
	// autocorrelation — which is why the paper needs finer observation
	// windows for low-bandwidth channels (Figure 11). The default
	// (false) projects each candidate couple onto a ±1/0 series, which
	// is invariant to the amplitude of interleaved noise and only
	// sees its phase stretch; the ablation benchmarks compare the two.
	RawPairSeries bool
	// Contexts is the hardware context count.
	Contexts int
	// Workspace, when non-nil, supplies the FFT/autocorrelation scratch
	// buffers, so analyzing many couples and windows in sequence
	// allocates no per-call scratch. The workspace is borrowed only for
	// the duration of each autocorrelation (results are copied out) and
	// must not be shared across goroutines.
	Workspace *stats.Workspace
	// SegmentLen, when positive (and a Workspace is supplied), switches
	// the correlogram to the segmented Wiener–Khinchin estimate:
	// Bartlett-averaged autocorrelograms over fixed-size chunks. The
	// streaming daemon uses it for mid-window interim verdicts — each
	// chunk costs O(SegmentLen log SegmentLen) and nothing ever
	// transforms the whole series. It is an estimate; final (and batch)
	// analyses leave it zero and compute the exact §IV-D statistic.
	SegmentLen int
}

// DefaultOscillationConfig returns parameters matching the paper's
// plots.
func DefaultOscillationConfig(contexts int) OscillationConfig {
	return OscillationConfig{
		MaxLag:            1000,
		MinLag:            8,
		PeakThreshold:     0.5,
		HarmonicTolerance: 0.15,
		MinHarmonics:      2,
		MinProminence:     0.2,
		MinCoupleShare:    0.05,
		Contexts:          contexts,
	}
}

// OscillationAnalysis is the outcome of one oscillation analysis.
type OscillationAnalysis struct {
	// Pair is the unordered context couple whose event series showed
	// the strongest (or, failing detection, the most) structure.
	Pair [2]uint8
	// Autocorrelogram holds r_p for lags 0..MaxLag of the best
	// couple's label series (Figure 8b).
	Autocorrelogram []float64
	// Peaks are the significant local maxima.
	Peaks []stats.Peak
	// FundamentalLag is the lag of the strongest significant peak —
	// for a cache channel, approximately the number of cache sets used
	// for covert communication (plus an offset from interleaved
	// noise, as in the paper's 533 vs 512).
	FundamentalLag int
	// PeakValue is the autocorrelation at the fundamental lag.
	PeakValue float64
	// Harmonics counts significant peaks at (approximate) multiples of
	// the fundamental, itself included.
	Harmonics int
	// Events is the number of conflict-miss entries in the analyzed
	// window.
	Events int
	// Detected reports sustained periodicity: a covert timing channel
	// on the monitored cache.
	Detected bool
}

// AnalyzeOscillation runs the oscillatory pattern detector over a
// conflict-miss train (normally one observation window's worth — an OS
// time quantum, or a fraction of one for low-bandwidth channels, per
// §VI-A).
//
// Every conflict miss carries its ordered (replacer → victim) pair
// identifier. For each context couple {a, b} with a non-trivial share
// of the window, the train is mapped to a label series — +1 for a→b,
// −1 for b→a, 0 for events of other pairs (which thereby stretch the
// apparent period, exactly the paper's lag-533-for-512-sets effect) —
// and the series is autocorrelated. The strongest couple is reported.
func AnalyzeOscillation(train *trace.Train, cfg OscillationConfig) OscillationAnalysis {
	var out OscillationAnalysis
	if train == nil {
		return out
	}
	out.Events = train.Len()
	if out.Events < 4 {
		return out
	}
	if cfg.RawPairSeries {
		series := appearanceOrderSeries(train)
		out = analyzeSeries(series, cfg)
		pool.PutFloat64s(series)
		out.Pair = dominantCouple(train)
		out.Events = train.Len()
		return out
	}
	minEvents := int(cfg.MinCoupleShare * float64(out.Events))
	if minEvents < 4 {
		minEvents = 4
	}
	for _, couple := range coupleCounts(train, minEvents) {
		a := analyzeCouple(train, couple, cfg)
		if better(a, out) {
			// The dethroned analysis's correlogram is dead scratch now:
			// recycle it. The winner's transfers out of the pool with the
			// returned analysis and is never Put.
			pool.PutFloat64s(out.Autocorrelogram)
			out = a
		} else {
			pool.PutFloat64s(a.Autocorrelogram)
		}
	}
	out.Events = train.Len()
	return out
}

// ctxSlot maps a context id (or trace.NoContext) to its coordinate in
// the 16×16 flat pattern tables below. NoContext takes the last slot;
// real ids 15 and above do not fit and send the caller to the
// map-based reference build.
func ctxSlot(v uint8) (int, bool) {
	if v < 15 {
		return int(v), true
	}
	if v == trace.NoContext {
		return 15, true
	}
	return 0, false
}

// appearanceOrderSeries maps each event to its ordered pair's
// identifier, assigning identifiers in order of first appearance —
// the paper's "S→T is assigned '0' and T→S is assigned '1'". The
// transmitting pair's two directions dominate the window and thus get
// the small, adjacent identifiers. The returned series is pooled; the
// caller returns it after analysis.
//
// Identifiers live in a flat 256-entry table (16×16 ordered pairs,
// NoContext folded into the last slot) instead of a map: zeroing 512
// bytes replaces the per-window map allocation and per-pair hashing.
// appearanceOrderSeriesRef is the retained map build — the
// differential reference, and the fallback for machines with contexts
// the flat table cannot index.
func appearanceOrderSeries(train *trace.Train) []float64 {
	var ids [256]int16
	for i := range ids {
		ids[i] = -1
	}
	out := pool.Float64s(train.Len())
	next := int16(0)
	for i, e := range train.Events() {
		ai, okA := ctxSlot(e.Actor)
		vi, okV := ctxSlot(e.Victim)
		if !okA || !okV {
			pool.PutFloat64s(out)
			return appearanceOrderSeriesRef(train)
		}
		idx := ai<<4 | vi
		id := ids[idx]
		if id < 0 {
			id = next
			ids[idx] = id
			next++
		}
		out[i] = float64(id)
	}
	return out
}

// appearanceOrderSeriesRef is the original map-based build of
// appearanceOrderSeries, kept as the differential reference (first
// appearance assigns the next identifier — identical to the flat scan)
// and as the fallback for out-of-range context ids.
func appearanceOrderSeriesRef(train *trace.Train) []float64 {
	ids := make(map[[2]uint8]int)
	out := pool.Float64s(train.Len())
	for i, e := range train.Events() {
		key := [2]uint8{e.Actor, e.Victim}
		id, ok := ids[key]
		if !ok {
			id = len(ids)
			ids[key] = id
		}
		out[i] = float64(id)
	}
	return out
}

// dominantCouple reports the couple with the most events, for raw-mode
// attribution. Counts accumulate in a flat 16×16 table; the ascending
// (a, b) scan with a strict > keeps the smallest couple among count
// ties, exactly the reference's max-count-then-less ordering.
func dominantCouple(train *trace.Train) [2]uint8 {
	var counts [256]int
	for _, e := range train.Events() {
		if e.Victim == trace.NoContext || e.Victim == e.Actor {
			continue
		}
		a, b := e.Actor, e.Victim
		if a > b {
			a, b = b, a
		}
		if b >= 15 { // b = max(a, b): one compare guards both ids
			return dominantCoupleRef(train)
		}
		counts[int(a)<<4|int(b)]++
	}
	var best [2]uint8
	bestN := 0
	for a := 0; a < 15; a++ {
		for b := a + 1; b < 15; b++ {
			if n := counts[a<<4|b]; n > bestN {
				best, bestN = [2]uint8{uint8(a), uint8(b)}, n
			}
		}
	}
	return best
}

// dominantCoupleRef is the original map-based dominantCouple, kept as
// the differential reference and the wide-machine fallback.
func dominantCoupleRef(train *trace.Train) [2]uint8 {
	counts := make(map[[2]uint8]int)
	for _, e := range train.Events() {
		if e.Victim == trace.NoContext || e.Victim == e.Actor {
			continue
		}
		a, b := e.Actor, e.Victim
		if a > b {
			a, b = b, a
		}
		counts[[2]uint8{a, b}]++
	}
	var best [2]uint8
	bestN := 0
	for c, n := range counts {
		if n > bestN || (n == bestN && less(c, best)) {
			best, bestN = c, n
		}
	}
	return best
}

// better orders analyses: detected beats undetected; then higher peak.
func better(a, b OscillationAnalysis) bool {
	if a.Detected != b.Detected {
		return a.Detected
	}
	return a.PeakValue > b.PeakValue
}

// BetterOscillation reports whether a is a stronger analysis than b
// under the exact ordering BestWindow uses. The streaming daemon folds
// its per-window analyses through this incrementally, so its running
// "best window" is the one a batch BestWindow call over the same
// window sequence would pick.
func BetterOscillation(a, b OscillationAnalysis) bool { return better(a, b) }

// coupleCounts returns the unordered context couples with at least
// minEvents events (both directions combined) in the train. Counts
// accumulate in a flat 16×16 table whose ascending scan emits couples
// already in less() order — the reference's insertion sort, for free.
func coupleCounts(train *trace.Train, minEvents int) [][2]uint8 {
	var counts [256]int
	for _, e := range train.Events() {
		if e.Victim == trace.NoContext || e.Victim == e.Actor {
			continue
		}
		a, b := e.Actor, e.Victim
		if a > b {
			a, b = b, a
		}
		if b >= 15 {
			return coupleCountsRef(train, minEvents)
		}
		counts[int(a)<<4|int(b)]++
	}
	var out [][2]uint8
	for a := 0; a < 15; a++ {
		for b := a + 1; b < 15; b++ {
			if counts[a<<4|b] >= minEvents {
				out = append(out, [2]uint8{uint8(a), uint8(b)})
			}
		}
	}
	return out
}

// coupleCountsRef is the original map-based coupleCounts, kept as the
// differential reference and the wide-machine fallback.
func coupleCountsRef(train *trace.Train, minEvents int) [][2]uint8 {
	counts := make(map[[2]uint8]int)
	for _, e := range train.Events() {
		if e.Victim == trace.NoContext || e.Victim == e.Actor {
			continue
		}
		a, b := e.Actor, e.Victim
		if a > b {
			a, b = b, a
		}
		counts[[2]uint8{a, b}]++
	}
	var out [][2]uint8
	for c, n := range counts {
		if n >= minEvents {
			out = append(out, c)
		}
	}
	// Deterministic order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b [2]uint8) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// analyzeCouple autocorrelates one couple's ±1/0 label series. The
// series is pooled scratch: it is dead once analyzeSeries has copied
// out everything the analysis keeps.
func analyzeCouple(train *trace.Train, couple [2]uint8, cfg OscillationConfig) OscillationAnalysis {
	series := pool.Float64s(train.Len())
	for i, e := range train.Events() {
		switch {
		case e.Actor == couple[0] && e.Victim == couple[1]:
			series[i] = 1
		case e.Actor == couple[1] && e.Victim == couple[0]:
			series[i] = -1
		}
	}
	out := analyzeSeries(series, cfg)
	pool.PutFloat64s(series)
	out.Pair = couple
	out.Events = train.Len()
	return out
}

// analyzeSeries runs the peak/prominence/harmonic machinery over one
// label series.
func analyzeSeries(series []float64, cfg OscillationConfig) OscillationAnalysis {
	var out OscillationAnalysis
	maxLag := cfg.MaxLag
	if maxLag <= 0 {
		maxLag = 1000
	}
	if maxLag > len(series)-1 {
		maxLag = len(series) - 1
	}
	if cfg.Workspace != nil {
		// The workspace owns the slice it returns and will overwrite it
		// on its next use; OscillationAnalysis outlives that, so copy —
		// into a pooled buffer, which AnalyzeOscillation recycles when
		// this analysis loses the couple comparison.
		var acf []float64
		if cfg.SegmentLen > 0 {
			acf = cfg.Workspace.SegmentedAutocorrelogram(series, cfg.SegmentLen, maxLag)
		} else {
			acf = cfg.Workspace.Autocorrelogram(series, maxLag)
		}
		buf := pool.Float64s(len(acf))
		copy(buf, acf)
		out.Autocorrelogram = buf
	} else {
		out.Autocorrelogram = stats.Autocorrelogram(series, maxLag)
	}
	out.Peaks = stats.Peaks(out.Autocorrelogram, cfg.PeakThreshold)
	// Track the running minimum so each candidate peak's prominence
	// (rise above the deepest preceding valley) is available in one
	// pass. Pooled scratch, dead once the peak loop below finishes.
	runMin := pool.Float64s(len(out.Autocorrelogram))
	low := 1.0
	for lag := 1; lag < len(out.Autocorrelogram); lag++ {
		if out.Autocorrelogram[lag] < low {
			low = out.Autocorrelogram[lag]
		}
		runMin[lag] = low
	}
	for _, p := range out.Peaks {
		if p.Lag < cfg.MinLag {
			continue
		}
		if p.Value-runMin[p.Lag] < cfg.MinProminence {
			continue // wiggle on a decay shoulder, not an oscillation
		}
		if p.Value > out.PeakValue {
			out.FundamentalLag = p.Lag
			out.PeakValue = p.Value
		}
	}
	pool.PutFloat64s(runMin)
	if out.FundamentalLag == 0 {
		return out
	}
	out.Harmonics = countHarmonics(series, out.Autocorrelogram, out.FundamentalLag, cfg)
	out.Detected = out.Harmonics >= cfg.MinHarmonics
	return out
}

// countHarmonics counts multiples m×fundamental (m = 1, 2, ...) at
// which the label series shows a significant autocorrelation peak,
// scanning within the tolerance band around each multiple. Lags inside
// the precomputed correlogram are read from it; harmonics beyond
// MaxLag (a long fundamental in a short plot) are verified with
// targeted autocorrelation computations on the series. With a
// workspace, those probes reuse the centered copy and energy the
// correlogram pass just computed (bit-identical values, none of the
// per-lag mean/energy rework). Periodicity must be sustained, so
// counting stops at the first missing harmonic; harmonics the series
// is too short to verify cannot be counted.
func countHarmonics(series, acf []float64, fundamental int, cfg OscillationConfig) int {
	count := 0
	for m := 1; ; m++ {
		center := m * fundamental
		tol := int(float64(center) * cfg.HarmonicTolerance)
		if tol < 2 {
			tol = 2
		}
		if center-tol >= len(series) {
			break
		}
		// Harmonics decay with lag; accept a gentle relaxation of the
		// threshold for higher multiples.
		need := cfg.PeakThreshold
		if m > 1 {
			need *= 0.8
		}
		probe := func(lag int) bool {
			var v float64
			switch {
			case lag < len(acf):
				v = acf[lag]
			case cfg.Workspace != nil:
				// The workspace's centered buffer still holds this
				// series: analyzeSeries probes harmonics immediately
				// after its Autocorrelogram call.
				v = cfg.Workspace.CenteredAutocorrelation(lag)
			default:
				v = stats.Autocorrelation(series, lag)
			}
			return v >= need
		}
		// The harmonic passes iff any lag in the band clears need — a
		// property of the set of band lags, indifferent to scan order.
		// A present harmonic peaks at or near the exact multiple, so
		// scanning outward from the center finds a clearing lag in O(1)
		// probes instead of sweeping the whole band; an absent harmonic
		// (the terminating case) still probes every lag once.
		lo, hi := center-tol, center+tol
		if lo < 1 {
			lo = 1
		}
		if hi >= len(series) {
			hi = len(series) - 1
		}
		c0 := center
		if c0 > hi {
			c0 = hi
		}
		if c0 < lo {
			c0 = lo
		}
		cleared := false
		for off := 0; !cleared; off++ {
			up, down := c0+off, c0-off
			inUp, inDown := up <= hi, off > 0 && down >= lo
			if !inUp && !inDown {
				break
			}
			if inUp && probe(up) {
				cleared = true
			}
			if !cleared && inDown && probe(down) {
				cleared = true
			}
		}
		if cleared {
			count++
		} else {
			break
		}
	}
	return count
}

// AnalyzeOscillationWindows slices the train into observation windows
// of the given length in cycles (§VI-A's finer-granularity analysis:
// fractions of an OS time quantum) and analyzes each window
// independently, returning every non-empty window's analysis.
func AnalyzeOscillationWindows(train *trace.Train, start, end, window uint64, cfg OscillationConfig) []OscillationAnalysis {
	if train == nil || window == 0 || end <= start {
		return nil
	}
	var out []OscillationAnalysis
	for ws := start; ws < end; ws += window {
		we := ws + window
		if we > end {
			we = end
		}
		w := train.Window(ws, we)
		if w.Len() == 0 {
			continue
		}
		out = append(out, AnalyzeOscillation(w, cfg))
	}
	return out
}

// BestWindow returns the analysis with the strongest detected
// periodicity (highest peak among detected windows, falling back to
// the highest peak overall). ok is false for an empty slice.
func BestWindow(analyses []OscillationAnalysis) (best OscillationAnalysis, ok bool) {
	for _, a := range analyses {
		if !ok {
			best, ok = a, true
			continue
		}
		if better(a, best) {
			best = a
		}
	}
	return best, ok
}
