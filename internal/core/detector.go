package core

import (
	"fmt"
	"strings"
	"sync"

	"cchunter/internal/auditor"
	"cchunter/internal/obs"
	"cchunter/internal/pool"
	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

// DetectorConfig combines the two algorithms' parameters with the
// daemon's observation policy.
type DetectorConfig struct {
	// QuantumCycles is the OS time quantum.
	QuantumCycles uint64
	// Burst configures recurrent burst pattern detection.
	Burst BurstConfig
	// Oscillation configures oscillatory pattern detection.
	Oscillation OscillationConfig
	// ObservationDivisor splits each quantum into this many oscillation
	// observation windows (§VI-A: finer-grained windows — 0.75×, 0.5×,
	// 0.25× of a quantum — detect low-bandwidth channels more
	// effectively). 1 analyzes whole quanta.
	ObservationDivisor int
	// UpstreamLossRate is the fraction of indicator events known to
	// have been lost *before* the auditor saw them (a fault injector or
	// a real telemetry path that reports its own drops). It folds into
	// every verdict's Degradation; 0 for a pristine sensor path.
	UpstreamLossRate float64
	// Metrics, when non-nil, receives analysis observability: per-stage
	// timing spans (burst scan, oscillation lag scan), window and
	// verdict counters, and FFT-vs-naive autocorrelation path tallies.
	// Observational only — verdicts are byte-identical either way.
	Metrics *obs.Registry
}

// DefaultDetectorConfig returns the paper-calibrated detector for a
// machine with the given quantum and hardware context count.
func DefaultDetectorConfig(quantumCycles uint64, contexts int) DetectorConfig {
	return DetectorConfig{
		QuantumCycles:      quantumCycles,
		Burst:              DefaultBurstConfig(),
		Oscillation:        DefaultOscillationConfig(contexts),
		ObservationDivisor: 1,
	}
}

// Degradation qualifies a verdict rendered from an imperfect sensor
// path. A detector that keeps producing verdicts under dropped or
// saturated events must say how much it saw; "no channel" from a
// sensor that lost half its events is a different statement than "no
// channel" from a pristine one.
type Degradation struct {
	// EventLossRate is the estimated fraction of indicator events the
	// sensor path lost before this detector analyzed them (upstream
	// drops plus, for the cache detector, vector-register overruns).
	EventLossRate float64
	// SaturationRate is the fraction of Δt observation windows whose
	// recorded density is a floor rather than an exact count (16-bit
	// accumulator ceilings and 128-entry histogram-bin clamps).
	SaturationRate float64
	// ClampedTimestamps counts recorded events whose arrival order
	// contradicted their timestamps; non-zero means the train's
	// fine-grained ordering is partly reconstructed.
	ClampedTimestamps uint64
	// Confidence folds the diagnostics into one [0,1] factor: the
	// fraction of the evidence base that was delivered intact. 1 means
	// a pristine path; verdicts at low confidence should be re-observed
	// rather than acted on.
	Confidence float64
	// Degraded reports whether any diagnostic is non-zero.
	Degraded bool
}

// NewDegradation folds raw sensor-path diagnostics into a Degradation,
// exactly as the batch detector does internally. Exported for the
// streaming daemon (internal/stream), which assembles verdicts outside
// this package and must qualify them identically.
func NewDegradation(lossRate, satRate float64, clamped, events uint64) Degradation {
	return degradation(lossRate, satRate, clamped, events)
}

// degradation folds raw diagnostics into the exported struct.
func degradation(lossRate, satRate float64, clamped, events uint64) Degradation {
	d := Degradation{
		EventLossRate:     clamp01(lossRate),
		SaturationRate:    clamp01(satRate),
		ClampedTimestamps: clamped,
	}
	clampShare := 0.0
	if events > 0 {
		clampShare = clamp01(float64(clamped) / float64(events))
	}
	d.Confidence = (1 - d.EventLossRate) * (1 - d.SaturationRate) * (1 - clampShare)
	d.Degraded = d.Confidence < 1 || clamped > 0
	return d
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// ContentionVerdict is the burst-detection outcome for one monitored
// combinational unit.
type ContentionVerdict struct {
	Kind     trace.Kind
	Analysis BurstAnalysis
	// Degradation qualifies the verdict's sensor-path health.
	Degradation Degradation
}

// OscillationVerdict is the oscillation-detection outcome for the
// monitored cache.
type OscillationVerdict struct {
	// Windows holds every non-empty observation window's analysis.
	Windows []OscillationAnalysis
	// Best is the strongest window (see BestWindow).
	Best OscillationAnalysis
	// DetectedWindows counts windows with sustained periodicity.
	DetectedWindows int
	// Detected reports the overall oscillation verdict.
	Detected bool
	// Degradation qualifies the verdict's sensor-path health.
	Degradation Degradation
}

// Report is a full CC-Hunter analysis over one run.
type Report struct {
	// Contention holds one verdict per monitored combinational unit.
	Contention []ContentionVerdict
	// Oscillation holds the cache verdict; nil when conflict
	// monitoring was off.
	Oscillation *OscillationVerdict
	// Detected reports whether any monitored resource shows a covert
	// timing channel.
	Detected bool
	// Confidence is the weakest per-detector confidence in the report
	// (1 when every sensor path was pristine). A verdict — either way —
	// at low confidence calls for re-observation, not silence.
	Confidence float64
	// Metrics is a snapshot of the pipeline's observability registry,
	// present only when a run was instrumented (DetectorConfig.Metrics
	// or Scenario.Metrics). It never influences any verdict field and
	// is omitted from the rendered summary.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Streaming carries the streaming daemon's extra evidence (onset
	// times, retention bounds). The batch detector leaves it nil.
	Streaming *StreamingInfo `json:"streaming,omitempty"`
	// Failure is the non-empty reason when a supervised detector job
	// died (panic, watchdog) and this report is a degraded placeholder
	// rather than an analysis (see DegradedReport).
	Failure string `json:"failure,omitempty"`
}

// Failed reports whether this is a degraded placeholder from a crashed
// or timed-out detector job rather than a rendered analysis.
func (r Report) Failed() bool { return r.Failure != "" }

// String renders a terse human-readable summary.
func (r Report) String() string {
	var sb strings.Builder
	if r.Failure != "" {
		fmt.Fprintf(&sb, "verdict: detector failed (%s); no detection claim, re-observe", r.Failure)
		return sb.String()
	}
	for _, c := range r.Contention {
		fmt.Fprintf(&sb, "%s: detected=%v LR=%.3f threshold=%d burstQuanta=%d\n",
			c.Kind, c.Analysis.Detected, c.Analysis.LikelihoodRatio,
			c.Analysis.ThresholdDensity, c.Analysis.BurstQuanta)
	}
	if r.Oscillation != nil {
		fmt.Fprintf(&sb, "cache: detected=%v peak=%.3f at lag %d (%d/%d windows)\n",
			r.Oscillation.Detected, r.Oscillation.Best.PeakValue,
			r.Oscillation.Best.FundamentalLag, r.Oscillation.DetectedWindows,
			len(r.Oscillation.Windows))
	}
	fmt.Fprintf(&sb, "verdict: covert timing channel detected=%v", r.Detected)
	if r.Confidence < 1 {
		fmt.Fprintf(&sb, " (confidence %.3f: degraded sensor path)", r.Confidence)
	}
	return sb.String()
}

// Detector is the CC-Hunter software daemon's analysis half: it reads
// the CC-Auditor's recorded buffers and renders verdicts.
type Detector struct {
	aud *auditor.Auditor
	cfg DetectorConfig
	ws  *stats.Workspace
	kws *stats.KmeansWorkspace
}

// wsPool recycles autocorrelation workspaces across detectors. The
// FFT scratch, twiddle table, and centered-copy buffers dominate a
// detector's footprint; on the experiment runner, where every scenario
// job builds a fresh Detector, reuse means the steady state allocates
// no analysis scratch at all. A recycled workspace is handed over with
// its tallies reset and its buffers re-grown on first use, so results
// are identical to a fresh one.
var wsPool = sync.Pool{New: func() any { return stats.NewWorkspace() }}

// kwsPool does the same for the burst detector's k-means scratch. A
// KmeansWorkspace carries no counters or results across uses — every
// method re-zeroes the scratch it hands out — so recycling is
// result-neutral by construction.
var kwsPool = sync.Pool{New: func() any { return new(stats.KmeansWorkspace) }}

// NewDetector wraps an auditor. The auditor keeps collecting; call
// Analyze whenever a verdict is needed, and Release when the detector
// is done to recycle its scratch workspace.
func NewDetector(aud *auditor.Auditor, cfg DetectorConfig) *Detector {
	if aud == nil {
		panic("core: detector needs an auditor")
	}
	if cfg.QuantumCycles == 0 {
		panic("core: detector needs the quantum length")
	}
	if cfg.ObservationDivisor <= 0 {
		cfg.ObservationDivisor = 1
	}
	d := &Detector{aud: aud, cfg: cfg}
	if d.cfg.Oscillation.Workspace == nil {
		// One scratch workspace serves every couple and observation
		// window this detector ever analyzes; Analyze is synchronous,
		// so the borrow never overlaps.
		if pool.Enabled() {
			d.ws = wsPool.Get().(*stats.Workspace)
			d.ws.ResetCounts()
		} else {
			d.ws = stats.NewWorkspace()
		}
		d.cfg.Oscillation.Workspace = d.ws
	}
	if d.cfg.Burst.Workspace == nil {
		if pool.Enabled() {
			d.kws = kwsPool.Get().(*stats.KmeansWorkspace)
		} else {
			d.kws = new(stats.KmeansWorkspace)
		}
		d.cfg.Burst.Workspace = d.kws
	}
	return d
}

// Release returns the detector's pooled workspace to the arena. Only
// detectors that own their workspace (NewDetector created it) give one
// back; a caller-supplied OscillationConfig.Workspace stays with the
// caller. The detector must not be used after Release.
func (d *Detector) Release() {
	if d.kws != nil {
		if pool.Enabled() {
			kwsPool.Put(d.kws)
		}
		d.kws = nil
		d.cfg.Burst.Workspace = nil
	}
	if d.ws == nil {
		return
	}
	if pool.Enabled() {
		wsPool.Put(d.ws)
	}
	d.ws = nil
	d.cfg.Oscillation.Workspace = nil
}

// Analyze flushes the auditor up to endCycle and runs both detection
// algorithms over everything recorded so far.
func (d *Detector) Analyze(endCycle uint64) Report {
	reg := d.cfg.Metrics
	span := reg.Timer("detect.analyze_ns").Start()
	d.aud.Flush(endCycle)
	rep := Report{Confidence: 1}
	for _, kind := range BurstKinds {
		recs := d.aud.Histograms(kind)
		if d.aud.DeltaT(kind) == 0 {
			continue // not monitored
		}
		burstSpan := reg.Timer("detect.burst_ns").Start()
		a := AnalyzeBursts(recs, d.cfg.Burst)
		burstSpan.End()
		integ := d.aud.Integrity(kind)
		deg := degradation(d.cfg.UpstreamLossRate, integ.SaturationRate(), 0, integ.Windows)
		rep.Contention = append(rep.Contention, ContentionVerdict{Kind: kind, Analysis: a, Degradation: deg})
		if a.Detected {
			rep.Detected = true
		}
		if deg.Confidence < rep.Confidence {
			rep.Confidence = deg.Confidence
		}
	}
	if train := d.aud.ConflictTrain(); train != nil {
		window := d.cfg.QuantumCycles / uint64(d.cfg.ObservationDivisor)
		if window == 0 {
			window = d.cfg.QuantumCycles
		}
		oscSpan := reg.Timer("detect.oscillation_ns").Start()
		v := &OscillationVerdict{
			Windows: AnalyzeOscillationWindows(train, 0, endCycle, window, d.cfg.Oscillation),
		}
		oscSpan.End()
		reg.Counter("detect.windows").Add(uint64(len(v.Windows)))
		v.Best, _ = BestWindow(v.Windows)
		for _, w := range v.Windows {
			if w.Detected {
				v.DetectedWindows++
			}
		}
		v.Detected = v.DetectedWindows >= 1
		ci := d.aud.ConflictIntegrity()
		// Losses compose: an event survives the path only if it passes
		// both the upstream sensor faults and the vector registers.
		loss := 1 - (1-clamp01(d.cfg.UpstreamLossRate))*(1-ci.LossRate())
		v.Degradation = degradation(loss, 0, ci.ClampedTimestamps, ci.Recorded)
		rep.Oscillation = v
		if v.Detected {
			rep.Detected = true
		}
		if v.Degradation.Confidence < rep.Confidence {
			rep.Confidence = v.Degradation.Confidence
		}
	}
	span.End()
	if reg != nil {
		// The lag scans above ran through the detector's workspace;
		// publish which side of the FFT crossover they landed on.
		if d.ws != nil {
			fft, naive := d.ws.PathCounts()
			reg.Gauge("stats.autocorr.fft").Set(int64(fft))
			reg.Gauge("stats.autocorr.naive").Set(int64(naive))
		}
		rep.Metrics = reg.Snapshot()
	}
	return rep
}
