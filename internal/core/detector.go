package core

import (
	"fmt"
	"strings"

	"cchunter/internal/auditor"
	"cchunter/internal/trace"
)

// DetectorConfig combines the two algorithms' parameters with the
// daemon's observation policy.
type DetectorConfig struct {
	// QuantumCycles is the OS time quantum.
	QuantumCycles uint64
	// Burst configures recurrent burst pattern detection.
	Burst BurstConfig
	// Oscillation configures oscillatory pattern detection.
	Oscillation OscillationConfig
	// ObservationDivisor splits each quantum into this many oscillation
	// observation windows (§VI-A: finer-grained windows — 0.75×, 0.5×,
	// 0.25× of a quantum — detect low-bandwidth channels more
	// effectively). 1 analyzes whole quanta.
	ObservationDivisor int
}

// DefaultDetectorConfig returns the paper-calibrated detector for a
// machine with the given quantum and hardware context count.
func DefaultDetectorConfig(quantumCycles uint64, contexts int) DetectorConfig {
	return DetectorConfig{
		QuantumCycles:      quantumCycles,
		Burst:              DefaultBurstConfig(),
		Oscillation:        DefaultOscillationConfig(contexts),
		ObservationDivisor: 1,
	}
}

// ContentionVerdict is the burst-detection outcome for one monitored
// combinational unit.
type ContentionVerdict struct {
	Kind     trace.Kind
	Analysis BurstAnalysis
}

// OscillationVerdict is the oscillation-detection outcome for the
// monitored cache.
type OscillationVerdict struct {
	// Windows holds every non-empty observation window's analysis.
	Windows []OscillationAnalysis
	// Best is the strongest window (see BestWindow).
	Best OscillationAnalysis
	// DetectedWindows counts windows with sustained periodicity.
	DetectedWindows int
	// Detected reports the overall oscillation verdict.
	Detected bool
}

// Report is a full CC-Hunter analysis over one run.
type Report struct {
	// Contention holds one verdict per monitored combinational unit.
	Contention []ContentionVerdict
	// Oscillation holds the cache verdict; nil when conflict
	// monitoring was off.
	Oscillation *OscillationVerdict
	// Detected reports whether any monitored resource shows a covert
	// timing channel.
	Detected bool
}

// String renders a terse human-readable summary.
func (r Report) String() string {
	var sb strings.Builder
	for _, c := range r.Contention {
		fmt.Fprintf(&sb, "%s: detected=%v LR=%.3f threshold=%d burstQuanta=%d\n",
			c.Kind, c.Analysis.Detected, c.Analysis.LikelihoodRatio,
			c.Analysis.ThresholdDensity, c.Analysis.BurstQuanta)
	}
	if r.Oscillation != nil {
		fmt.Fprintf(&sb, "cache: detected=%v peak=%.3f at lag %d (%d/%d windows)\n",
			r.Oscillation.Detected, r.Oscillation.Best.PeakValue,
			r.Oscillation.Best.FundamentalLag, r.Oscillation.DetectedWindows,
			len(r.Oscillation.Windows))
	}
	fmt.Fprintf(&sb, "verdict: covert timing channel detected=%v", r.Detected)
	return sb.String()
}

// Detector is the CC-Hunter software daemon's analysis half: it reads
// the CC-Auditor's recorded buffers and renders verdicts.
type Detector struct {
	aud *auditor.Auditor
	cfg DetectorConfig
}

// NewDetector wraps an auditor. The auditor keeps collecting; call
// Analyze whenever a verdict is needed.
func NewDetector(aud *auditor.Auditor, cfg DetectorConfig) *Detector {
	if aud == nil {
		panic("core: detector needs an auditor")
	}
	if cfg.QuantumCycles == 0 {
		panic("core: detector needs the quantum length")
	}
	if cfg.ObservationDivisor <= 0 {
		cfg.ObservationDivisor = 1
	}
	return &Detector{aud: aud, cfg: cfg}
}

// Analyze flushes the auditor up to endCycle and runs both detection
// algorithms over everything recorded so far.
func (d *Detector) Analyze(endCycle uint64) Report {
	d.aud.Flush(endCycle)
	var rep Report
	for _, kind := range []trace.Kind{trace.KindBusLock, trace.KindDivContention} {
		recs := d.aud.Histograms(kind)
		if d.aud.DeltaT(kind) == 0 {
			continue // not monitored
		}
		a := AnalyzeBursts(recs, d.cfg.Burst)
		rep.Contention = append(rep.Contention, ContentionVerdict{Kind: kind, Analysis: a})
		if a.Detected {
			rep.Detected = true
		}
	}
	if train := d.aud.ConflictTrain(); train != nil {
		window := d.cfg.QuantumCycles / uint64(d.cfg.ObservationDivisor)
		if window == 0 {
			window = d.cfg.QuantumCycles
		}
		v := &OscillationVerdict{
			Windows: AnalyzeOscillationWindows(train, 0, endCycle, window, d.cfg.Oscillation),
		}
		v.Best, _ = BestWindow(v.Windows)
		for _, w := range v.Windows {
			if w.Detected {
				v.DetectedWindows++
			}
		}
		v.Detected = v.DetectedWindows >= 1
		rep.Oscillation = v
		if v.Detected {
			rep.Detected = true
		}
	}
	return rep
}
