package core

import (
	"strings"
	"testing"

	"cchunter/internal/auditor"
	"cchunter/internal/trace"
)

// feedBursts injects n bursts of `locks` bus-lock events, one burst at
// the start of each quantum.
func feedBursts(a *auditor.Auditor, quanta int, quantum uint64, locks int) {
	for q := 0; q < quanta; q++ {
		base := uint64(q) * quantum
		for i := 0; i < locks; i++ {
			a.OnEvent(trace.Event{
				Cycle: base + uint64(i)*2_000, // 50 per Δt=100k window
				Kind:  trace.KindBusLock,
				Actor: 1, Victim: trace.NoContext,
			})
		}
	}
}

func TestDetectorEndToEndBusChannel(t *testing.T) {
	quantum := uint64(10_000_000)
	a := auditor.MustNew(auditor.DefaultConfig(quantum))
	if err := a.Monitor(trace.KindBusLock, DeltaTBus); err != nil {
		t.Fatal(err)
	}
	feedBursts(a, 8, quantum, 500)
	d := NewDetector(a, DefaultDetectorConfig(quantum, 8))
	rep := d.Analyze(8 * quantum)
	if len(rep.Contention) != 1 {
		t.Fatalf("contention verdicts = %d", len(rep.Contention))
	}
	v := rep.Contention[0]
	if v.Kind != trace.KindBusLock {
		t.Errorf("kind = %v", v.Kind)
	}
	if !v.Analysis.Detected || !rep.Detected {
		t.Errorf("bus channel not detected: %+v", v.Analysis)
	}
	if !strings.Contains(rep.String(), "detected=true") {
		t.Errorf("report string: %q", rep.String())
	}
}

func TestDetectorQuietSystemNoAlarm(t *testing.T) {
	quantum := uint64(1_000_000)
	a := auditor.MustNew(auditor.DefaultConfig(quantum))
	if err := a.Monitor(trace.KindBusLock, DeltaTBus); err != nil {
		t.Fatal(err)
	}
	if err := a.Monitor(trace.KindDivContention, DeltaTDivider); err != nil {
		t.Fatal(err)
	}
	if err := a.MonitorConflicts(); err != nil {
		t.Fatal(err)
	}
	// Sparse random activity only.
	for i := uint64(0); i < 50; i++ {
		a.OnEvent(trace.Event{Cycle: i * 100_000, Kind: trace.KindBusLock, Actor: 2, Victim: trace.NoContext})
	}
	d := NewDetector(a, DefaultDetectorConfig(quantum, 8))
	rep := d.Analyze(8 * quantum)
	if rep.Detected {
		t.Errorf("quiet system raised an alarm:\n%s", rep)
	}
	if rep.Oscillation == nil {
		t.Error("oscillation verdict missing despite monitoring")
	}
}

func TestDetectorOscillationPath(t *testing.T) {
	quantum := uint64(1_000_000)
	a := auditor.MustNew(auditor.DefaultConfig(quantum))
	if err := a.MonitorConflicts(); err != nil {
		t.Fatal(err)
	}
	// Feed a channel-shaped conflict pattern through the auditor
	// (8-way runs per set: the vector register dedups them).
	cycle := uint64(0)
	for bit := 0; bit < 8; bit++ {
		for set := 0; set < 128; set++ {
			for w := 0; w < 8; w++ {
				a.OnEvent(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss,
					Actor: 0, Victim: 1, Unit: uint32(set)})
			}
			cycle += 300
		}
		for set := 0; set < 128; set++ {
			for w := 0; w < 8; w++ {
				a.OnEvent(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss,
					Actor: 1, Victim: 0, Unit: uint32(set)})
			}
			cycle += 300
		}
	}
	d := NewDetector(a, DefaultDetectorConfig(quantum, 8))
	rep := d.Analyze(quantum)
	if rep.Oscillation == nil || !rep.Oscillation.Detected {
		t.Fatalf("oscillation not detected: %+v", rep.Oscillation)
	}
	best := rep.Oscillation.Best
	if best.FundamentalLag < 220 || best.FundamentalLag > 290 {
		t.Errorf("fundamental = %d, want ≈256 (sets used)", best.FundamentalLag)
	}
	if !rep.Detected {
		t.Error("report-level verdict missing")
	}
}

func TestDetectorObservationDivisor(t *testing.T) {
	quantum := uint64(1_000_000)
	a := auditor.MustNew(auditor.DefaultConfig(quantum))
	if err := a.MonitorConflicts(); err != nil {
		t.Fatal(err)
	}
	cycle := uint64(0)
	for bit := 0; bit < 4; bit++ {
		for set := 0; set < 64; set++ {
			a.OnEvent(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss, Actor: 0, Victim: 1, Unit: uint32(set)})
			cycle += 100
		}
		for set := 0; set < 64; set++ {
			a.OnEvent(trace.Event{Cycle: cycle, Kind: trace.KindConflictMiss, Actor: 1, Victim: 0, Unit: uint32(set)})
			cycle += 100
		}
	}
	cfg := DefaultDetectorConfig(quantum, 8)
	cfg.ObservationDivisor = 4
	d := NewDetector(a, cfg)
	rep := d.Analyze(quantum)
	if rep.Oscillation == nil {
		t.Fatal("no oscillation verdict")
	}
	if len(rep.Oscillation.Windows) == 0 {
		t.Fatal("divisor produced no windows")
	}
}

func TestDetectorConstructorPanics(t *testing.T) {
	a := auditor.MustNew(auditor.DefaultConfig(1000))
	for name, f := range map[string]func(){
		"nil auditor": func() { NewDetector(nil, DefaultDetectorConfig(1000, 8)) },
		"zero quantum": func() {
			cfg := DefaultDetectorConfig(1000, 8)
			cfg.QuantumCycles = 0
			NewDetector(a, cfg)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDetectorNoMonitorsEmptyReport(t *testing.T) {
	a := auditor.MustNew(auditor.DefaultConfig(1000))
	d := NewDetector(a, DefaultDetectorConfig(1000, 8))
	rep := d.Analyze(5000)
	if len(rep.Contention) != 0 || rep.Oscillation != nil || rep.Detected {
		t.Errorf("unmonitored system report: %+v", rep)
	}
	if !strings.Contains(rep.String(), "detected=false") {
		t.Errorf("report string: %q", rep.String())
	}
}
