// Package mitigate implements the damage-control strategies the paper
// positions as CC-Hunter's complement (§I: after detection, "adopting
// damage control strategies like limiting resource sharing or
// bandwidth reduction"). Three mitigations cover the three channel
// media:
//
//   - BusLockLimiter: rate-limits atomic unaligned accesses per
//     context (the ancestor of modern split-lock detection): a context
//     that locks the bus too often gets exponentially penalized,
//     collapsing the bus channel's usable bandwidth.
//   - CachePartition: way-partitions the shared cache between context
//     groups (the Partition-Locking idea of Wang & Lee [16]): contexts
//     can no longer evict each other's blocks, so prime/probe carries
//     no signal.
//   - ClockFuzz: quantizes and jitters the latencies programs observe
//     (Hu's fuzzy time [3]): the spy's decoding margin drowns in
//     measurement noise while the architectural timing is unchanged.
//
// Mitigations are policies the OS/hypervisor applies after CC-Hunter
// raises an alarm; the simulator accepts them through sim.Config.
package mitigate

import "cchunter/internal/stats"

// BusLockLimiter penalizes contexts that issue bus locks at covert-
// channel rates.
type BusLockLimiter struct {
	// WindowCycles is the rate-measurement window.
	WindowCycles uint64
	// MaxLocks is the number of locks allowed per window before
	// penalties kick in.
	MaxLocks int
	// PenaltyCycles is added to each lock beyond the allowance (a
	// trap into the OS on real split-lock detection hardware).
	PenaltyCycles uint64

	lastWindow []uint64
	counts     []int
}

// NewBusLockLimiter returns a limiter for the given context count.
func NewBusLockLimiter(contexts int, windowCycles uint64, maxLocks int, penalty uint64) *BusLockLimiter {
	if contexts <= 0 || windowCycles == 0 || maxLocks < 0 {
		panic("mitigate: bad limiter parameters")
	}
	return &BusLockLimiter{
		WindowCycles:  windowCycles,
		MaxLocks:      maxLocks,
		PenaltyCycles: penalty,
		lastWindow:    make([]uint64, contexts),
		counts:        make([]int, contexts),
	}
}

// Penalty reports the extra cycles to charge a bus lock issued by ctx
// at the given cycle.
func (l *BusLockLimiter) Penalty(now uint64, ctx uint8) uint64 {
	w := now / l.WindowCycles
	if w != l.lastWindow[ctx] {
		l.lastWindow[ctx] = w
		l.counts[ctx] = 0
	}
	l.counts[ctx]++
	if l.counts[ctx] <= l.MaxLocks {
		return 0
	}
	return l.PenaltyCycles
}

// CachePartition confines each context to a slice of the cache's ways.
type CachePartition struct {
	// Groups maps a context ID to its partition group; contexts in
	// different groups never share ways.
	Groups []int
	// NumGroups is the partition count; ways are divided evenly.
	NumGroups int
}

// NewCachePartition builds a per-context partition: by default every
// context gets its own group when groups is nil.
func NewCachePartition(contexts int, groups []int) *CachePartition {
	if groups == nil {
		groups = make([]int, contexts)
		for i := range groups {
			groups[i] = i
		}
	}
	max := 0
	for _, g := range groups {
		if g < 0 {
			panic("mitigate: negative partition group")
		}
		if g > max {
			max = g
		}
	}
	return &CachePartition{Groups: groups, NumGroups: max + 1}
}

// WayRange returns the [lo, hi) way interval context ctx may allocate
// into, for a cache with the given associativity. Every context keeps
// at least one way.
func (p *CachePartition) WayRange(ctx uint8, ways int) (lo, hi int) {
	if int(ctx) >= len(p.Groups) {
		return 0, ways
	}
	g := p.Groups[ctx]
	per := ways / p.NumGroups
	if per < 1 {
		per = 1
	}
	lo = (g * per) % ways
	hi = lo + per
	if hi > ways {
		hi = ways
	}
	return lo, hi
}

// DividerTDM time-multiplexes a core's division units between its
// hyperthreads: each context may only issue divisions during its own
// epochs ("limiting resource sharing", §I). Cross-context divider
// contention becomes impossible, so the divider channel carries no
// signal — at the cost of divide latency for everyone on that core.
type DividerTDM struct {
	// EpochCycles is the length of one exclusive epoch.
	EpochCycles uint64
}

// NewDividerTDM builds the temporal partitioner.
func NewDividerTDM(epochCycles uint64) *DividerTDM {
	if epochCycles == 0 {
		panic("mitigate: epoch must be positive")
	}
	return &DividerTDM{EpochCycles: epochCycles}
}

// NextSlot returns the earliest cycle at or after now at which the
// given hyperthread (thread index within its core) may issue a
// division that completes within its own epoch, for a core with the
// given thread count. need is the operation's duration; requiring the
// operation to fit keeps one epoch's work from occupying the divider
// into the next thread's epoch (which would leak timing again).
func (t *DividerTDM) NextSlot(now uint64, thread, threadsPerCore int, need uint64) uint64 {
	if threadsPerCore <= 1 {
		return now
	}
	if need > t.EpochCycles {
		need = t.EpochCycles // degenerate: allow at epoch start
	}
	period := t.EpochCycles * uint64(threadsPerCore)
	phase := now % period
	lo := uint64(thread) * t.EpochCycles
	hi := lo + t.EpochCycles
	switch {
	case phase >= lo && phase+need <= hi:
		return now
	case phase < lo:
		return now + (lo - phase)
	default:
		return now + (period - phase) + lo
	}
}

// ClockFuzz degrades the timing observable programs see, without
// changing architectural timing. Note its limits: a spy that
// integrates many samples per bit defeats unbiased per-read noise
// (quantized deltas telescope), so fuzzing only squeezes channel
// bandwidth down to roughly the fuzz granularity — the paper's own
// §VII criticism of the approach. The simulator includes it for
// completeness; the mitigation study uses DividerTDM for the SMT
// channel instead.
type ClockFuzz struct {
	// QuantumCycles rounds every reported latency down to a multiple
	// of this value (clock-edge granularity).
	QuantumCycles uint64
	// JitterCycles adds a deterministic pseudo-random jitter in
	// [0, JitterCycles) to every reported latency.
	JitterCycles uint64

	rng *stats.RNG
}

// NewClockFuzz builds a fuzzer; seed makes the jitter reproducible.
func NewClockFuzz(quantum, jitter uint64, seed uint64) *ClockFuzz {
	if quantum == 0 {
		quantum = 1
	}
	return &ClockFuzz{QuantumCycles: quantum, JitterCycles: jitter, rng: stats.NewRNG(seed)}
}

// Observe transforms a true latency into the value the program sees.
func (f *ClockFuzz) Observe(latency uint64) uint64 {
	v := latency / f.QuantumCycles * f.QuantumCycles
	if f.JitterCycles > 0 {
		v += uint64(f.rng.Intn(int(f.JitterCycles)))
	}
	return v
}

// ObserveClock transforms an absolute clock read: fuzzy time quantizes
// every timer the program can see. No jitter is added so program-
// visible time stays monotonic.
func (f *ClockFuzz) ObserveClock(t uint64) uint64 {
	return t / f.QuantumCycles * f.QuantumCycles
}
