package mitigate

import "testing"

// TestConstructorValidation sweeps every constructor's parameter
// validation: bad configurations must panic at construction (they are
// code bugs, not runtime input), and the boundary-legal ones must not.
func TestConstructorValidation(t *testing.T) {
	cases := []struct {
		name      string
		construct func()
		wantPanic bool
	}{
		{"limiter/ok", func() { NewBusLockLimiter(8, 1000, 2, 50_000) }, false},
		{"limiter/zero-allowance-ok", func() { NewBusLockLimiter(1, 1, 0, 0) }, false},
		{"limiter/zero-contexts", func() { NewBusLockLimiter(0, 1000, 2, 1) }, true},
		{"limiter/negative-contexts", func() { NewBusLockLimiter(-1, 1000, 2, 1) }, true},
		{"limiter/zero-window", func() { NewBusLockLimiter(8, 0, 2, 1) }, true},
		{"limiter/negative-allowance", func() { NewBusLockLimiter(8, 1000, -1, 1) }, true},
		{"partition/ok", func() { NewCachePartition(4, []int{0, 0, 1, 1}) }, false},
		{"partition/default-groups-ok", func() { NewCachePartition(8, nil) }, false},
		{"partition/negative-group", func() { NewCachePartition(2, []int{0, -1}) }, true},
		{"tdm/ok", func() { NewDividerTDM(1000) }, false},
		{"tdm/zero-epoch", func() { NewDividerTDM(0) }, true},
		{"fuzz/zero-quantum-ok", func() { NewClockFuzz(0, 0, 1) }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if got := recover() != nil; got != tc.wantPanic {
					t.Errorf("panic = %v, want %v", got, tc.wantPanic)
				}
			}()
			tc.construct()
		})
	}
}

// TestBusLockLimiterSequences drives the limiter through lock
// sequences and checks every charged penalty.
func TestBusLockLimiterSequences(t *testing.T) {
	type lock struct {
		now  uint64
		ctx  uint8
		want uint64
	}
	cases := []struct {
		name     string
		window   uint64
		maxLocks int
		penalty  uint64
		locks    []lock
	}{
		{"within-allowance", 1000, 2, 50_000, []lock{
			{10, 0, 0}, {20, 0, 0},
		}},
		{"over-allowance", 1000, 2, 50_000, []lock{
			{10, 0, 0}, {20, 0, 0}, {30, 0, 50_000}, {40, 0, 50_000},
		}},
		{"window-reset", 1000, 1, 9_999, []lock{
			{10, 0, 0}, {20, 0, 9_999}, {1500, 0, 0},
		}},
		{"contexts-independent", 1000, 1, 7, []lock{
			{10, 0, 0}, {20, 0, 7}, {30, 1, 0}, {40, 1, 7},
		}},
		{"zero-allowance-always-charges", 1000, 0, 5, []lock{
			{10, 0, 5}, {1500, 0, 5},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewBusLockLimiter(4, tc.window, tc.maxLocks, tc.penalty)
			for i, lk := range tc.locks {
				if got := l.Penalty(lk.now, lk.ctx); got != lk.want {
					t.Errorf("lock %d (cycle %d, ctx %d): penalty = %d, want %d",
						i, lk.now, lk.ctx, got, lk.want)
				}
			}
		})
	}
}

// TestDividerTDMTable covers the temporal partitioner's slot
// arithmetic case by case.
func TestDividerTDMTable(t *testing.T) {
	cases := []struct {
		name           string
		epoch          uint64
		now            uint64
		thread         int
		threadsPerCore int
		need           uint64
		want           uint64
	}{
		{"in-own-epoch", 1000, 500, 0, 2, 5, 500},
		{"wait-for-epoch", 1000, 500, 1, 2, 5, 1000},
		{"wrap-to-next-period", 1000, 1500, 0, 2, 5, 2000},
		{"other-thread-in-epoch", 1000, 1500, 1, 2, 5, 1500},
		{"spill-defers", 1000, 998, 0, 2, 5, 2000},
		{"exact-fit-at-edge", 1000, 995, 0, 2, 5, 995},
		{"oversized-from-epoch-start", 1000, 2000, 0, 2, 5000, 2000},
		{"single-thread-unrestricted", 1000, 123, 0, 1, 5, 123},
		{"four-threads-last-epoch", 1000, 0, 3, 4, 5, 3000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tdm := NewDividerTDM(tc.epoch)
			if got := tdm.NextSlot(tc.now, tc.thread, tc.threadsPerCore, tc.need); got != tc.want {
				t.Errorf("NextSlot(%d, %d, %d, %d) = %d, want %d",
					tc.now, tc.thread, tc.threadsPerCore, tc.need, got, tc.want)
			}
		})
	}
}

func TestBusLockLimiterAllowance(t *testing.T) {
	l := NewBusLockLimiter(8, 1000, 2, 50_000)
	if l.Penalty(10, 0) != 0 || l.Penalty(20, 0) != 0 {
		t.Error("within allowance should be free")
	}
	if l.Penalty(30, 0) != 50_000 {
		t.Error("third lock in window should be penalized")
	}
	// New window resets the count.
	if l.Penalty(1500, 0) != 0 {
		t.Error("new window should reset allowance")
	}
	// Contexts are tracked independently.
	if l.Penalty(40, 1) != 0 {
		t.Error("other context has its own allowance")
	}
}

func TestBusLockLimiterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBusLockLimiter(0, 1000, 2, 1)
}

func TestCachePartitionIdentity(t *testing.T) {
	p := NewCachePartition(8, nil)
	if p.NumGroups != 8 {
		t.Fatalf("groups = %d", p.NumGroups)
	}
	seen := map[int]bool{}
	for ctx := uint8(0); ctx < 8; ctx++ {
		lo, hi := p.WayRange(ctx, 8)
		if hi-lo != 1 {
			t.Errorf("ctx %d gets %d ways, want 1", ctx, hi-lo)
		}
		if seen[lo] {
			t.Errorf("way %d assigned twice", lo)
		}
		seen[lo] = true
	}
}

func TestCachePartitionGroups(t *testing.T) {
	p := NewCachePartition(4, []int{0, 0, 1, 1})
	lo0, hi0 := p.WayRange(0, 8)
	lo1, hi1 := p.WayRange(1, 8)
	if lo0 != lo1 || hi0 != hi1 {
		t.Error("same group should share a range")
	}
	lo2, _ := p.WayRange(2, 8)
	if lo2 == lo0 {
		t.Error("different groups must not overlap")
	}
	// Out-of-range context gets the whole cache (fail open).
	lo, hi := p.WayRange(7, 8)
	if lo != 0 || hi != 8 {
		t.Error("unknown context should be unrestricted")
	}
	// More groups than ways: everyone keeps at least one way.
	many := NewCachePartition(16, nil)
	for ctx := uint8(0); ctx < 16; ctx++ {
		lo, hi := many.WayRange(ctx, 8)
		if hi-lo < 1 || lo < 0 || hi > 8 {
			t.Errorf("ctx %d range [%d,%d)", ctx, lo, hi)
		}
	}
}

func TestCachePartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCachePartition(2, []int{0, -1})
}

func TestDividerTDMSlots(t *testing.T) {
	tdm := NewDividerTDM(1000)
	// Thread 0 owns [0,1000), thread 1 owns [1000,2000), period 2000.
	if got := tdm.NextSlot(500, 0, 2, 5); got != 500 {
		t.Errorf("in-epoch = %d", got)
	}
	if got := tdm.NextSlot(500, 1, 2, 5); got != 1000 {
		t.Errorf("wait for epoch = %d", got)
	}
	if got := tdm.NextSlot(1500, 0, 2, 5); got != 2000 {
		t.Errorf("wrap to next period = %d", got)
	}
	if got := tdm.NextSlot(1500, 1, 2, 5); got != 1500 {
		t.Errorf("thread 1 in-epoch = %d", got)
	}
	// A division that would spill past the epoch end waits for the
	// thread's next epoch.
	if got := tdm.NextSlot(998, 0, 2, 5); got != 2000 {
		t.Errorf("spill should defer to next epoch, got %d", got)
	}
	// Oversized operations are allowed from the epoch start.
	if got := tdm.NextSlot(2000, 0, 2, 5000); got != 2000 {
		t.Errorf("oversized op = %d", got)
	}
	// Single-threaded cores are unrestricted.
	if got := tdm.NextSlot(123, 0, 1, 5); got != 123 {
		t.Errorf("single thread = %d", got)
	}
}

func TestDividerTDMNeverInPast(t *testing.T) {
	tdm := NewDividerTDM(777)
	for now := uint64(0); now < 10_000; now += 13 {
		for thread := 0; thread < 2; thread++ {
			got := tdm.NextSlot(now, thread, 2, 5)
			if got < now {
				t.Fatalf("slot %d before now %d", got, now)
			}
			// The returned cycle must be inside the thread's epoch.
			phase := got % (777 * 2)
			lo := uint64(thread) * 777
			if phase < lo || phase >= lo+777 {
				t.Fatalf("slot %d (phase %d) outside thread %d epoch", got, phase, thread)
			}
		}
	}
}

func TestDividerTDMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDividerTDM(0)
}

func TestClockFuzzQuantization(t *testing.T) {
	f := NewClockFuzz(500, 0, 1)
	if f.Observe(499) != 0 || f.Observe(500) != 500 || f.Observe(1234) != 1000 {
		t.Error("quantization wrong")
	}
	if f.ObserveClock(1499) != 1000 {
		t.Error("clock quantization wrong")
	}
}

func TestClockFuzzJitterBounded(t *testing.T) {
	f := NewClockFuzz(100, 50, 3)
	for i := 0; i < 1000; i++ {
		v := f.Observe(1000)
		if v < 1000 || v >= 1050 {
			t.Fatalf("jittered value %d out of [1000, 1050)", v)
		}
	}
}

func TestClockFuzzMonotoneClock(t *testing.T) {
	f := NewClockFuzz(250, 100, 5)
	prev := uint64(0)
	for tm := uint64(0); tm < 10_000; tm += 7 {
		v := f.ObserveClock(tm)
		if v < prev {
			t.Fatalf("clock went backwards: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestClockFuzzZeroQuantum(t *testing.T) {
	f := NewClockFuzz(0, 0, 1)
	if f.Observe(123) != 123 {
		t.Error("zero quantum should default to identity")
	}
}
