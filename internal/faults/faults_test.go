package faults

import (
	"errors"
	"reflect"
	"testing"

	"cchunter/internal/trace"
)

// collector records everything the injector delivers.
type collector struct {
	events []trace.Event
}

func (c *collector) OnEvent(e trace.Event) { c.events = append(c.events, e) }

// stream builds n bus-lock events spaced `gap` cycles apart.
func stream(n int, gap uint64) []trace.Event {
	out := make([]trace.Event, n)
	for i := range out {
		out[i] = trace.Event{
			Cycle: uint64(i) * gap,
			Kind:  trace.KindBusLock,
			Actor: uint8(i % 4),
			Victim: func() uint8 {
				if i%2 == 0 {
					return uint8((i + 1) % 4)
				}
				return trace.NoContext
			}(),
		}
	}
	return out
}

func inject(t *testing.T, cfg Config, events []trace.Event) (*collector, Stats) {
	t.Helper()
	var c collector
	in, err := NewInjector(cfg, &c)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	for _, e := range events {
		in.OnEvent(e)
	}
	in.Flush()
	return &c, in.Stats()
}

func TestPassThroughIsTransparent(t *testing.T) {
	// A non-zero config whose only fault can never engage (a saturating
	// counter too wide to fill) must deliver every event unchanged — the
	// transparency guarantee the simulator relies on.
	events := stream(500, 100)
	c, st := inject(t, Config{SaturateWindow: 1, SaturateMax: 1 << 30}, events)
	if !reflect.DeepEqual(c.events, events) {
		t.Fatal("pass-through injector altered the stream")
	}
	if st.Seen != 500 || st.Delivered != 500 || st.Lost() != 0 || st.CorruptionRate() != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestUniformDropRateAndDeterminism(t *testing.T) {
	events := stream(10_000, 50)
	c1, st := inject(t, Config{DropProb: 0.1, Seed: 7}, events)
	if st.Dropped == 0 {
		t.Fatal("no drops at 10%")
	}
	rate := st.LossRate()
	if rate < 0.05 || rate > 0.15 {
		t.Errorf("loss rate %.3f far from 0.1", rate)
	}
	if got := uint64(len(c1.events)); got != st.Delivered {
		t.Errorf("delivered %d but collected %d", st.Delivered, got)
	}
	// Same config, same stream: identical output.
	c2, _ := inject(t, Config{DropProb: 0.1, Seed: 7}, events)
	if !reflect.DeepEqual(c1.events, c2.events) {
		t.Error("same seed produced different streams")
	}
	// Different seed: different drops.
	c3, _ := inject(t, Config{DropProb: 0.1, Seed: 8}, events)
	if reflect.DeepEqual(c1.events, c3.events) {
		t.Error("different seed produced identical streams")
	}
}

func TestBurstDropIsConsecutive(t *testing.T) {
	events := stream(5_000, 10)
	_, st := inject(t, Config{BurstDropProb: 0.01, BurstLen: 16, Seed: 3}, events)
	if st.DroppedBurst == 0 {
		t.Fatal("no burst drops")
	}
	// Bursts drop in units of up to BurstLen; with 5000 events and p=1%
	// the expected count is far above one burst length.
	if st.DroppedBurst < 16 {
		t.Errorf("burst drops = %d, want >= one full burst", st.DroppedBurst)
	}
}

func TestTruncationGoesDark(t *testing.T) {
	events := stream(100, 1000) // cycles 0..99k
	c, st := inject(t, Config{TruncateAfter: 50_000}, events)
	if len(c.events) != 50 {
		t.Fatalf("delivered %d, want 50", len(c.events))
	}
	for _, e := range c.events {
		if e.Cycle >= 50_000 {
			t.Fatalf("event at %d past truncation", e.Cycle)
		}
	}
	if st.Truncated != 50 {
		t.Errorf("truncated = %d", st.Truncated)
	}
}

func TestSaturationCapsPerWindow(t *testing.T) {
	// 10 events per 1000-cycle window, cap at 3: 3 survive per window.
	var events []trace.Event
	for w := 0; w < 5; w++ {
		for i := 0; i < 10; i++ {
			events = append(events, trace.Event{
				Cycle: uint64(w)*1000 + uint64(i)*10,
				Kind:  trace.KindBusLock, Actor: 0, Victim: trace.NoContext,
			})
		}
	}
	c, st := inject(t, Config{SaturateWindow: 1000, SaturateMax: 3}, events)
	if len(c.events) != 15 {
		t.Fatalf("delivered %d, want 15", len(c.events))
	}
	if st.Saturated != 35 {
		t.Errorf("saturated = %d, want 35", st.Saturated)
	}
}

func TestJitterStaysBoundedAndClamped(t *testing.T) {
	events := stream(2_000, 1000)
	c, st := inject(t, Config{JitterCycles: 200, Seed: 5}, events)
	if st.Jittered == 0 {
		t.Fatal("no jitter applied")
	}
	for i, e := range c.events {
		orig := events[i].Cycle
		lo := uint64(0)
		if orig > 200 {
			lo = orig - 200
		}
		if e.Cycle < lo || e.Cycle > orig+200 {
			t.Fatalf("event %d jittered from %d to %d, outside ±200", i, orig, e.Cycle)
		}
	}
}

func TestDuplicationDelivers(t *testing.T) {
	events := stream(5_000, 10)
	c, st := inject(t, Config{DupProb: 0.1, Seed: 2}, events)
	if st.Duplicated == 0 {
		t.Fatal("no duplicates")
	}
	if uint64(len(c.events)) != st.Seen+st.Duplicated {
		t.Errorf("collected %d, want %d", len(c.events), st.Seen+st.Duplicated)
	}
}

func TestReorderSwapsAdjacentAndFlushes(t *testing.T) {
	events := stream(1_000, 100)
	c, st := inject(t, Config{ReorderProb: 0.2, Seed: 9}, events)
	if st.Reordered == 0 {
		t.Fatal("no reorders")
	}
	// Reordering is depth-one: no event is displaced by more than one
	// delivery slot, and Flush released any trailing held event.
	if uint64(len(c.events)) != st.Seen {
		t.Fatalf("collected %d of %d (held event not flushed?)", len(c.events), st.Seen)
	}
	for i := 1; i < len(c.events); i++ {
		if prev := c.events[i-1].Cycle; c.events[i].Cycle+200 < prev {
			t.Fatalf("event %d displaced more than one slot: %d after %d", i, c.events[i].Cycle, prev)
		}
	}
}

func TestContextCorruption(t *testing.T) {
	events := stream(4_000, 10)
	c, st := inject(t, Config{CtxFlipProb: 0.3, CtxSmearProb: 0.3, Seed: 11}, events)
	if st.CtxFlipped == 0 || st.CtxSmeared == 0 {
		t.Fatalf("no corruption: %+v", st)
	}
	// Events with Victim == NoContext are never flipped or smeared.
	for i, e := range c.events {
		if events[i].Victim == trace.NoContext && e != events[i] {
			t.Fatalf("pairless event %d corrupted: %+v -> %+v", i, events[i], e)
		}
	}
}

func TestValidateRejectsBadKnobs(t *testing.T) {
	for name, cfg := range map[string]Config{
		"prob > 1":             {DropProb: 1.5},
		"negative prob":        {DupProb: -0.1},
		"negative burst len":   {BurstDropProb: 0.1, BurstLen: -1},
		"sat max no window":    {SaturateMax: 5},
		"negative sat":         {SaturateWindow: 10, SaturateMax: -1},
		"reorder out of range": {ReorderProb: 2},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		} else if !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: %v does not wrap ErrBadConfig", name, err)
		}
	}
	if _, err := NewInjector(Config{DropProb: 0.5}, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil listener: %v", err)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	cfg, err := ParseSpec("drop=0.05, jitter=200, burstdrop=0.01, burstlen=4, seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{DropProb: 0.05, JitterCycles: 200, BurstDropProb: 0.01, BurstLen: 4, Seed: 7}
	if cfg != want {
		t.Errorf("parsed %+v, want %+v", cfg, want)
	}
	// String renders a spec ParseSpec accepts back to the same config
	// (seed excepted: it is not part of the fault fingerprint).
	back, err := ParseSpec(cfg.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", cfg.String(), err)
	}
	cfg.Seed, back.Seed = 0, 0
	if back != cfg {
		t.Errorf("round trip %+v != %+v", back, cfg)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for name, spec := range map[string]string{
		"unknown key": "warp=0.5",
		"no value":    "drop",
		"bad float":   "drop=abc",
		"negative":    "jitter=-5",
		"over range":  "drop=1.5",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("%s (%q): expected error", name, spec)
		} else if !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: %v does not wrap ErrBadConfig", name, err)
		}
	}
}

func TestIsZeroAndString(t *testing.T) {
	if !(Config{}).IsZero() || !(Config{Seed: 5}).IsZero() {
		t.Error("zero/seed-only configs must be zero")
	}
	if (Config{DropProb: 0.1}).IsZero() {
		t.Error("drop config is not zero")
	}
	// Saturation needs both knobs to engage.
	if !(Config{SaturateWindow: 100}).IsZero() {
		t.Error("window without max injects nothing")
	}
	if got := (Config{}).String(); got != "none" {
		t.Errorf("zero config renders %q", got)
	}
}

func TestBatchedDeliveryMatchesPerEvent(t *testing.T) {
	// Batched delivery is a pure amortization: the fault state machine
	// runs over each event in order either way, so the delivered
	// sequence, every RNG draw, and the counters must be identical at
	// any batch size — including sizes that split drop bursts and
	// reorder holds across batch boundaries.
	cfg := Config{
		DropProb:      0.05,
		BurstDropProb: 0.01,
		BurstLen:      4,
		JitterCycles:  50,
		DupProb:       0.03,
		ReorderProb:   0.05,
		CtxFlipProb:   0.02,
		CtxSmearProb:  0.02,
		Seed:          7,
	}
	events := stream(2000, 100)

	perEvent, perStats := inject(t, cfg, events)

	for _, batch := range []int{1, 3, 64, 512, len(events)} {
		var c collector
		in, err := NewInjector(cfg, &c)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		for lo := 0; lo < len(events); lo += batch {
			hi := lo + batch
			if hi > len(events) {
				hi = len(events)
			}
			in.OnEvents(events[lo:hi])
		}
		in.Flush()
		if !reflect.DeepEqual(c.events, perEvent.events) {
			t.Errorf("batch=%d: delivered stream differs from per-event path (%d vs %d events)",
				batch, len(c.events), len(perEvent.events))
		}
		if in.Stats() != perStats {
			t.Errorf("batch=%d: stats differ: %+v vs %+v", batch, in.Stats(), perStats)
		}
	}
}
