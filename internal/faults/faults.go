// Package faults is the sensor fault model for the CC-Auditor event
// pipeline. The paper's detectors assume the auditor delivers a clean,
// complete event train, but the hardware budget it argues for (16-bit
// accumulators, 128-entry histogram buffers, byte-wide vector-register
// entries) makes dropped, saturated, delayed, and mislabelled events
// inevitable at production scale. The Injector perturbs the event
// stream between the hardware units and the auditor with a
// deterministic, seeded fault model so every detector can be
// characterized — and regression-tested — under degraded sensors
// instead of only under laboratory-clean ones.
//
// Fault modes, and the hardware failure each one models:
//
//   - uniform drop: lost monitor messages on a congested on-chip
//     interconnect, or a daemon that cannot drain buffers fast enough;
//   - bursty drop: a monitoring buffer overrun — once a buffer fills,
//     *consecutive* events vanish until the daemon catches up;
//   - timestamp jitter: skew between per-unit countdown registers and
//     the global cycle counter (events are stamped where the unit saw
//     them, not where they happened);
//   - duplication: replayed vector-register entries when a drain races
//     the register swap;
//   - bounded reordering: events from different units arriving through
//     queues of different depth;
//   - context-ID corruption: bit flips or stale context tags in the
//     3-bit replacer/victim fields — either swapping Actor and Victim
//     or smearing a field to NoContext;
//   - saturation: a narrow saturating counter between the unit and the
//     auditor — within each window only the first N events are
//     delivered, mirroring the 16-bit accumulator / 128-entry
//     histogram-bin clamp at a configurable, smaller width;
//   - truncation: the monitoring path dying mid-run (daemon crash,
//     auditor reprogrammed away) — no events at all after some cycle.
//
// Everything is driven by one seeded RNG, so a faulted run is exactly
// as reproducible as a clean one, and a Config that IsZero() injects
// nothing and leaves the pipeline bit-identical to an unwired one.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cchunter/internal/obs"
	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

// ErrBadConfig is wrapped by every configuration validation error in
// this package, so callers can errors.Is against one sentinel.
var ErrBadConfig = errors.New("faults: bad configuration")

// Config selects which sensor faults to inject and how hard.
// The zero value injects nothing.
type Config struct {
	// DropProb is the per-event probability of a uniform drop.
	DropProb float64
	// BurstDropProb is the per-event probability that a drop *burst*
	// starts; once started, BurstLen consecutive events (this one
	// included) are discarded, modelling a monitoring-buffer overrun.
	BurstDropProb float64
	// BurstLen is the length of each drop burst (default 8 when a
	// burst probability is set).
	BurstLen int
	// JitterCycles perturbs each event's timestamp by a uniform offset
	// in [-JitterCycles, +JitterCycles] (clamped at cycle 0). Jittered
	// streams are generally no longer monotonic; consumers must clamp.
	JitterCycles uint64
	// DupProb is the per-event probability the event is delivered
	// twice, modelling a replayed vector-register entry.
	DupProb float64
	// ReorderProb is the per-event probability the event is held back
	// and delivered after its successor (bounded reordering of depth
	// one, applied independently per fault decision).
	ReorderProb float64
	// CtxFlipProb is the per-event probability that Actor and Victim
	// are swapped — a corrupted direction bit in the recorded pair.
	CtxFlipProb float64
	// CtxSmearProb is the per-event probability that the Victim field
	// is smeared to NoContext — a stale or unreadable context tag.
	CtxSmearProb float64
	// SaturateWindow and SaturateMax model a narrow saturating counter
	// in the delivery path: within each aligned window of
	// SaturateWindow cycles, only the first SaturateMax events are
	// delivered; the rest are absorbed by the saturated counter. Both
	// must be set for saturation to apply.
	SaturateWindow uint64
	SaturateMax    int
	// TruncateAfter, when non-zero, drops every event at or after this
	// cycle: the monitoring path went dark mid-run.
	TruncateAfter uint64
	// Seed drives all fault randomness (default 1).
	Seed uint64
}

// IsZero reports whether the configuration injects no faults at all.
func (c Config) IsZero() bool {
	return c.DropProb == 0 && c.BurstDropProb == 0 && c.JitterCycles == 0 &&
		c.DupProb == 0 && c.ReorderProb == 0 && c.CtxFlipProb == 0 &&
		c.CtxSmearProb == 0 && (c.SaturateWindow == 0 || c.SaturateMax == 0) &&
		c.TruncateAfter == 0
}

// Validate checks every knob's range, wrapping ErrBadConfig.
func (c Config) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"drop", c.DropProb},
		{"burst-drop", c.BurstDropProb},
		{"dup", c.DupProb},
		{"reorder", c.ReorderProb},
		{"ctx-flip", c.CtxFlipProb},
		{"ctx-smear", c.CtxSmearProb},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("%w: %s probability %v outside [0,1]", ErrBadConfig, p.name, p.v)
		}
	}
	if c.BurstLen < 0 {
		return fmt.Errorf("%w: burst length %d negative", ErrBadConfig, c.BurstLen)
	}
	if c.SaturateMax < 0 {
		return fmt.Errorf("%w: saturate max %d negative", ErrBadConfig, c.SaturateMax)
	}
	if c.SaturateMax > 0 && c.SaturateWindow == 0 {
		return fmt.Errorf("%w: saturate max without a saturate window", ErrBadConfig)
	}
	return nil
}

// Stats counts what the injector did to the stream; every counter is a
// number of events.
type Stats struct {
	// Seen is how many events entered the injector.
	Seen uint64
	// Delivered is how many events left it (duplicates included).
	Delivered uint64
	// Dropped counts uniform drops; DroppedBurst counts burst drops.
	Dropped, DroppedBurst uint64
	// Saturated counts events absorbed by the saturating counter.
	Saturated uint64
	// Truncated counts events past the truncation cycle.
	Truncated uint64
	// Jittered, Duplicated, Reordered, CtxFlipped, CtxSmeared count the
	// non-destructive corruptions applied.
	Jittered, Duplicated, Reordered, CtxFlipped, CtxSmeared uint64
}

// Lost is the total number of events that never reached the consumer.
func (s Stats) Lost() uint64 {
	return s.Dropped + s.DroppedBurst + s.Saturated + s.Truncated
}

// LossRate is the fraction of seen events lost, 0 for an empty stream.
func (s Stats) LossRate() float64 {
	if s.Seen == 0 {
		return 0
	}
	return float64(s.Lost()) / float64(s.Seen)
}

// CorruptionRate is the fraction of seen events that were delivered
// but altered (jitter, reorder, context corruption, duplication).
func (s Stats) CorruptionRate() float64 {
	if s.Seen == 0 {
		return 0
	}
	corrupted := s.Jittered + s.Duplicated + s.Reordered + s.CtxFlipped + s.CtxSmeared
	return float64(corrupted) / float64(s.Seen)
}

// Injector is a trace.Listener that applies the configured faults and
// forwards the surviving (possibly corrupted) events downstream. It is
// deterministic for a given (Config, event stream) pair — and, because
// the fault state machine is strictly per-event, for a given stream
// the delivered sequence is identical whether events arrive one
// callback at a time (OnEvent) or in slices (OnEvents).
type Injector struct {
	cfg  Config
	out  trace.Listener
	rng  *stats.RNG
	st   Stats
	skip int // remaining events of the current drop burst

	held    *trace.Event // event delayed by a reorder fault
	satSlot uint64       // current saturation window index
	satSeen int          // events delivered in the current window

	outBuf []trace.Event // survivors of the batch being processed

	// Live metrics, published per delivery (see Instrument). Gauges
	// mirror the Stats counters so a metrics endpoint shows sensor
	// degradation while the run is in flight.
	mSeen, mDelivered, mLost, mCorrupted *obs.Gauge
}

// Instrument points the injector at a metrics registry. After every
// delivery the injector publishes its seen/delivered/lost/corrupted
// totals as gauges. A nil registry disables publishing.
func (in *Injector) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	in.mSeen = reg.Gauge("faults.seen")
	in.mDelivered = reg.Gauge("faults.delivered")
	in.mLost = reg.Gauge("faults.lost")
	in.mCorrupted = reg.Gauge("faults.corrupted")
}

// publish pushes the current Stats totals into the gauges.
func (in *Injector) publish() {
	if in.mSeen == nil {
		return
	}
	in.mSeen.Set(int64(in.st.Seen))
	in.mDelivered.Set(int64(in.st.Delivered))
	in.mLost.Set(int64(in.st.Lost()))
	in.mCorrupted.Set(int64(in.st.Jittered + in.st.Duplicated + in.st.Reordered +
		in.st.CtxFlipped + in.st.CtxSmeared))
}

// NewInjector validates cfg and builds an injector forwarding to out.
func NewInjector(cfg Config, out trace.Listener) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("%w: nil downstream listener", ErrBadConfig)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.BurstDropProb > 0 && cfg.BurstLen == 0 {
		cfg.BurstLen = 8
	}
	return &Injector{cfg: cfg, out: out, rng: stats.NewRNG(cfg.Seed ^ 0xfa017)}, nil
}

// OnEvent implements trace.Listener.
func (in *Injector) OnEvent(e trace.Event) {
	in.outBuf = in.process(e, in.outBuf[:0])
	in.publish()
	trace.Deliver(in.out, in.outBuf)
}

// OnEvents implements trace.BatchListener: the whole batch runs
// through the fault stages in one pass, survivors accumulate in a
// reused arena, and the downstream chain is entered exactly once —
// the amortization that makes an always-on injector affordable. The
// fault state machine is applied to each event in order, so the
// delivered sequence and every RNG draw are identical to the
// per-event path's.
func (in *Injector) OnEvents(events []trace.Event) {
	out := in.outBuf[:0]
	for _, e := range events {
		out = in.process(e, out)
	}
	in.outBuf = out
	in.publish()
	trace.Deliver(in.out, out)
}

// process applies every fault stage to one event, appending the
// survivors (zero, one, or more events, counting reorder releases and
// duplicates) to out.
func (in *Injector) process(e trace.Event, out []trace.Event) []trace.Event {
	in.st.Seen++

	// Destructive faults first: an event that is never delivered
	// cannot also be corrupted.
	if in.cfg.TruncateAfter != 0 && e.Cycle >= in.cfg.TruncateAfter {
		in.st.Truncated++
		return out
	}
	if in.skip > 0 {
		in.skip--
		in.st.DroppedBurst++
		return out
	}
	if in.cfg.BurstDropProb > 0 && in.rng.Float64() < in.cfg.BurstDropProb {
		in.skip = in.cfg.BurstLen - 1
		in.st.DroppedBurst++
		return out
	}
	if in.cfg.DropProb > 0 && in.rng.Float64() < in.cfg.DropProb {
		in.st.Dropped++
		return out
	}
	if in.cfg.SaturateWindow > 0 && in.cfg.SaturateMax > 0 {
		slot := e.Cycle / in.cfg.SaturateWindow
		if slot != in.satSlot {
			in.satSlot, in.satSeen = slot, 0
		}
		if in.satSeen >= in.cfg.SaturateMax {
			in.st.Saturated++
			return out
		}
		in.satSeen++
	}

	// Corruptions.
	if in.cfg.JitterCycles > 0 {
		span := 2*in.cfg.JitterCycles + 1
		off := in.rng.Uint64() % span
		old := e.Cycle
		if off <= in.cfg.JitterCycles {
			e.Cycle += off
		} else if back := off - in.cfg.JitterCycles; back <= e.Cycle {
			e.Cycle -= back
		} else {
			e.Cycle = 0
		}
		if e.Cycle != old {
			in.st.Jittered++
		}
	}
	if in.cfg.CtxFlipProb > 0 && e.Victim != trace.NoContext &&
		in.rng.Float64() < in.cfg.CtxFlipProb {
		e.Actor, e.Victim = e.Victim, e.Actor
		in.st.CtxFlipped++
	}
	if in.cfg.CtxSmearProb > 0 && e.Victim != trace.NoContext &&
		in.rng.Float64() < in.cfg.CtxSmearProb {
		e.Victim = trace.NoContext
		in.st.CtxSmeared++
	}

	// Bounded reordering: hold this event back one delivery slot.
	if in.held != nil {
		held := *in.held
		in.held = nil
		out = in.emit(e, out)
		return in.emit(held, out)
	}
	if in.cfg.ReorderProb > 0 && in.rng.Float64() < in.cfg.ReorderProb {
		held := e
		in.held = &held
		in.st.Reordered++
		return out
	}
	return in.emit(e, out)
}

// emit appends a surviving event (plus its duplicate when the dup
// fault fires) to the batch being assembled.
func (in *Injector) emit(e trace.Event, out []trace.Event) []trace.Event {
	out = append(out, e)
	in.st.Delivered++
	if in.cfg.DupProb > 0 && in.rng.Float64() < in.cfg.DupProb {
		out = append(out, e)
		in.st.Delivered++
		in.st.Duplicated++
	}
	return out
}

// Flush releases any event still held by a reorder fault. Call it at
// the end of the run, before reading consumers.
func (in *Injector) Flush() {
	if in.held != nil {
		e := *in.held
		in.held = nil
		in.outBuf = in.emit(e, in.outBuf[:0])
		in.publish()
		trace.Deliver(in.out, in.outBuf)
	}
}

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats { return in.st }

// specKeys maps -faults spec keys to setters, shared by ParseSpec and
// its error message.
var specKeys = map[string]func(*Config, float64) error{
	"drop":      func(c *Config, v float64) error { c.DropProb = v; return nil },
	"burstdrop": func(c *Config, v float64) error { c.BurstDropProb = v; return nil },
	"burstlen":  func(c *Config, v float64) error { c.BurstLen = int(v); return nil },
	"jitter":    func(c *Config, v float64) error { c.JitterCycles = uint64(v); return nil },
	"dup":       func(c *Config, v float64) error { c.DupProb = v; return nil },
	"reorder":   func(c *Config, v float64) error { c.ReorderProb = v; return nil },
	"ctxflip":   func(c *Config, v float64) error { c.CtxFlipProb = v; return nil },
	"ctxsmear":  func(c *Config, v float64) error { c.CtxSmearProb = v; return nil },
	"satwindow": func(c *Config, v float64) error { c.SaturateWindow = uint64(v); return nil },
	"satmax":    func(c *Config, v float64) error { c.SaturateMax = int(v); return nil },
	"truncate":  func(c *Config, v float64) error { c.TruncateAfter = uint64(v); return nil },
	"seed":      func(c *Config, v float64) error { c.Seed = uint64(v); return nil },
}

// SpecKeys lists the keys ParseSpec understands, sorted, for usage
// messages.
func SpecKeys() []string {
	out := make([]string, 0, len(specKeys))
	for k := range specKeys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParseSpec parses a compact fault specification of the form
// "key=value,key=value", e.g. "drop=0.05,jitter=200,seed=7". An empty
// spec returns the zero Config. Unknown keys, malformed values, and
// out-of-range settings return errors wrapping ErrBadConfig.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return cfg, fmt.Errorf("%w: %q is not key=value", ErrBadConfig, part)
		}
		key := strings.ToLower(strings.TrimSpace(kv[0]))
		set, ok := specKeys[key]
		if !ok {
			return cfg, fmt.Errorf("%w: unknown fault key %q (known: %s)",
				ErrBadConfig, key, strings.Join(SpecKeys(), " "))
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return cfg, fmt.Errorf("%w: value for %q: %v", ErrBadConfig, key, err)
		}
		if v < 0 {
			return cfg, fmt.Errorf("%w: value for %q is negative", ErrBadConfig, key)
		}
		if err := set(&cfg, v); err != nil {
			return cfg, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// String renders the configuration as a canonical spec string, the
// inverse of ParseSpec for the set fields. Zero configs render "none".
func (c Config) String() string {
	if c.IsZero() {
		return "none"
	}
	var parts []string
	add := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	add("drop", c.DropProb)
	add("burstdrop", c.BurstDropProb)
	add("burstlen", float64(c.BurstLen))
	add("jitter", float64(c.JitterCycles))
	add("dup", c.DupProb)
	add("reorder", c.ReorderProb)
	add("ctxflip", c.CtxFlipProb)
	add("ctxsmear", c.CtxSmearProb)
	add("satwindow", float64(c.SaturateWindow))
	add("satmax", float64(c.SaturateMax))
	add("truncate", float64(c.TruncateAfter))
	return strings.Join(parts, ",")
}
