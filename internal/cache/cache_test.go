package cache

import (
	"errors"
	"testing"
	"testing/quick"

	"cchunter/internal/stats"
)

func small() *Cache {
	// 4 sets × 2 ways × 64 B lines.
	return MustNew(Config{SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 4})
}

func TestGeometry(t *testing.T) {
	c := MustNew(DefaultL2())
	if c.NumSets() != 512 {
		t.Errorf("L2 sets = %d, want 512 (paper geometry)", c.NumSets())
	}
	if c.NumBlocks() != 4096 || c.Ways() != 8 || c.LineBytes() != 64 {
		t.Errorf("L2 geometry: blocks=%d ways=%d line=%d", c.NumBlocks(), c.Ways(), c.LineBytes())
	}
	l1 := MustNew(DefaultL1())
	if l1.NumSets() != 64 {
		t.Errorf("L1 sets = %d, want 64", l1.NumSets())
	}
	if l1.HitLatency() >= MustNew(DefaultL2()).HitLatency() {
		t.Error("L1 should be faster than L2")
	}
}

func TestBadGeometryErrors(t *testing.T) {
	for name, cfg := range map[string]Config{
		"line not power of two": {SizeBytes: 512, LineBytes: 48, Ways: 2},
		"zero ways":             {SizeBytes: 512, LineBytes: 64, Ways: 0},
		"sets not power of two": {SizeBytes: 3 * 64 * 2, LineBytes: 64, Ways: 2},
	} {
		c, err := New(cfg)
		if err == nil || c != nil {
			t.Errorf("%s: expected error, got %v", name, c)
			continue
		}
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: error %v does not wrap ErrBadConfig", name, err)
		}
	}
}

func TestMustNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{SizeBytes: 512, LineBytes: 48, Ways: 2})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	r := c.Access(0x1000, 1)
	if r.Hit {
		t.Error("cold access should miss")
	}
	r = c.Access(0x1000, 1)
	if !r.Hit {
		t.Error("second access should hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Evictions != 0 {
		t.Errorf("stats: %+v", s)
	}
}

func TestSetMapping(t *testing.T) {
	c := small()
	// Addresses 64 bytes apart map to consecutive sets.
	if c.SetOfAddr(0) != 0 || c.SetOfAddr(64) != 1 || c.SetOfAddr(64*4) != 0 {
		t.Error("set mapping wrong")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 2 ways
	a := c.AddrForSet(0, 0, 1)
	b := c.AddrForSet(0, 1, 1)
	d := c.AddrForSet(0, 2, 1)
	c.Access(a, 0)
	c.Access(b, 0)
	c.Access(a, 0) // a is now MRU
	r := c.Access(d, 1)
	if !r.Evicted {
		t.Fatal("filling a full set must evict")
	}
	if r.EvictedLine != b>>6 {
		t.Errorf("evicted %x, want LRU block %x", r.EvictedLine, b>>6)
	}
	if r.EvictedOwner != 0 {
		t.Errorf("evicted owner = %d, want 0", r.EvictedOwner)
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Error("residency after eviction wrong")
	}
}

func TestOwnerUpdatesOnAccess(t *testing.T) {
	c := small()
	c.Access(0x40, 3)
	if o, ok := c.Owner(0x40); !ok || o != 3 {
		t.Errorf("owner = %d,%v", o, ok)
	}
	c.Access(0x40, 5)
	if o, _ := c.Owner(0x40); o != 5 {
		t.Errorf("owner after re-access = %d, want 5", o)
	}
	if _, ok := c.Owner(0xdead000); ok {
		t.Error("absent block should have no owner")
	}
}

func TestAddrForSetRoundTrip(t *testing.T) {
	c := MustNew(DefaultL2())
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		set := uint32(r.Intn(c.NumSets()))
		way := r.Intn(64)
		base := uint64(r.Intn(1 << 16))
		addr := c.AddrForSet(set, way, base)
		return c.SetOfAddr(addr) == set
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Distinct (way, base) pairs give distinct line addresses.
	seen := map[uint64]bool{}
	for way := 0; way < 16; way++ {
		for base := uint64(0); base < 4; base++ {
			la := c.AddrForSet(7, way, base) >> 6
			if seen[la] {
				t.Fatalf("alias at way=%d base=%d", way, base)
			}
			seen[la] = true
		}
	}
}

func TestAddrForSetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	small().AddrForSet(99, 0, 0)
}

func TestEvictionSetDefeatsResidency(t *testing.T) {
	// Priming a set with `ways` fresh conflicting blocks evicts all
	// previous residents — the covert channel's core mechanism.
	c := MustNew(DefaultL2())
	victim := c.AddrForSet(100, 0, 7)
	c.Access(victim, 1)
	for w := 0; w < c.Ways(); w++ {
		c.Access(c.AddrForSet(100, w, 9), 2)
	}
	if c.Contains(victim) {
		t.Error("prime did not evict the victim block")
	}
	if r := c.Access(victim, 1); r.Hit {
		t.Error("probe after prime should miss")
	}
}

func TestNoCrossSetInterference(t *testing.T) {
	c := MustNew(DefaultL2())
	resident := c.AddrForSet(5, 0, 1)
	c.Access(resident, 0)
	// Hammer a different set hard.
	for w := 0; w < 64; w++ {
		c.Access(c.AddrForSet(6, w, 2), 1)
	}
	if !c.Contains(resident) {
		t.Error("traffic in another set evicted an unrelated block")
	}
}

func TestStatsEvictionsCount(t *testing.T) {
	c := small()
	for w := 0; w < 5; w++ {
		c.Access(c.AddrForSet(1, w, 0), 0)
	}
	s := c.Stats()
	if s.Misses != 5 || s.Evictions != 3 {
		t.Errorf("stats: %+v (want 5 misses, 3 evictions)", s)
	}
}
