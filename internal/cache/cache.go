// Package cache implements the set-associative cache models used by
// the simulator: private L1s and the per-core L2 shared between
// hyperthreads that the paper's third covert channel exploits (§IV-C,
// after Xu et al.). Each cache block tracks its owner hardware context,
// which is what lets the conflict-miss tracker label replacements with
// (replacer → victim) pairs.
package cache

import (
	"errors"
	"fmt"
)

// ErrBadConfig is wrapped by every configuration validation error in
// this package.
var ErrBadConfig = errors.New("cache: bad configuration")

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the block size; must be a power of two.
	LineBytes int
	// Ways is the associativity.
	Ways int
	// HitLatency is the access latency in cycles when the block is
	// resident at this level.
	HitLatency uint64
}

// DefaultL1 models the paper's private 32 KB L1 (8-way, 64 B lines).
func DefaultL1() Config {
	return Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitLatency: 4}
}

// DefaultL2 models the paper's 256 KB L2 (8-way, 64 B lines, 512
// sets), shared between the two hyperthreads of a core as on Nehalem.
func DefaultL2() Config {
	return Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, HitLatency: 12}
}

type line struct {
	tag     uint64 // full line address (addr >> lineShift)
	owner   uint8
	valid   bool
	lastUse uint64 // LRU sequence number
}

// Cache is a single set-associative cache with true-LRU replacement.
// It is not safe for concurrent use; the simulation engine serializes
// all accesses in global time order.
type Cache struct {
	cfg       Config
	nsets     int
	lineShift uint
	setMask   uint64
	sets      [][]line
	seq       uint64

	hits, misses, evictions uint64
}

// New builds a cache from cfg, rejecting inconsistent geometries with
// an error wrapping ErrBadConfig. Cache configurations reach here from
// user-settable machine descriptions, so a bad one is input, not a
// programming error.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("%w: line size %d not a power of two", ErrBadConfig, cfg.LineBytes)
	}
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("%w: size %d and ways %d must be positive", ErrBadConfig, cfg.SizeBytes, cfg.Ways)
	}
	blocks := cfg.SizeBytes / cfg.LineBytes
	if blocks%cfg.Ways != 0 {
		return nil, fmt.Errorf("%w: capacity %dB not divisible into %d ways of %dB lines",
			ErrBadConfig, cfg.SizeBytes, cfg.Ways, cfg.LineBytes)
	}
	nsets := blocks / cfg.Ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("%w: %d sets is not a power of two", ErrBadConfig, nsets)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	sets := make([][]line, nsets)
	backing := make([]line, blocks)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{
		cfg:       cfg,
		nsets:     nsets,
		lineShift: shift,
		setMask:   uint64(nsets - 1),
		sets:      sets,
	}, nil
}

// MustNew is New for geometries known to be valid (tests, hardcoded
// defaults); it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Result describes the effect of one access.
type Result struct {
	// Hit reports whether the block was resident.
	Hit bool
	// Set is the set index the address maps to.
	Set uint32
	// LineAddr is the full line address (addr >> log2(LineBytes)).
	LineAddr uint64
	// Evicted reports whether installing the block displaced a valid
	// block.
	Evicted bool
	// EvictedLine is the displaced block's line address.
	EvictedLine uint64
	// EvictedOwner is the hardware context that owned the displaced
	// block.
	EvictedOwner uint8
}

// Access looks up addr for hardware context ctx, installing the block
// (and evicting the LRU victim) on a miss. The owner of the block is
// updated to ctx on every access, matching the paper's "current owner
// context in the cache block metadata".
func (c *Cache) Access(addr uint64, ctx uint8) Result {
	return c.AccessInWays(addr, ctx, 0, c.cfg.Ways)
}

// AccessInWays is Access with allocation restricted to ways [lo, hi) —
// the hook used by way-partitioning mitigation (Wang & Lee's
// Partition-Locking idea). Hits are honored in any way (data is data),
// but on a miss the victim is chosen only inside the context's
// partition, so one partition can never evict another's blocks.
func (c *Cache) AccessInWays(addr uint64, ctx uint8, lo, hi int) Result {
	if lo < 0 || hi > c.cfg.Ways || lo >= hi {
		panic(fmt.Sprintf("cache: bad way range [%d, %d) of %d", lo, hi, c.cfg.Ways))
	}
	lineAddr := addr >> c.lineShift
	set := lineAddr & c.setMask
	ways := c.sets[set]
	c.seq++
	res := Result{Set: uint32(set), LineAddr: lineAddr}
	for i := range ways {
		if ways[i].valid && ways[i].tag == lineAddr {
			ways[i].lastUse = c.seq
			ways[i].owner = ctx
			res.Hit = true
			c.hits++
			return res
		}
	}
	c.misses++
	// Miss: find an invalid way in range, else the LRU way in range.
	victim := -1
	for i := lo; i < hi; i++ {
		if !ways[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = lo
		for i := lo + 1; i < hi; i++ {
			if ways[i].lastUse < ways[victim].lastUse {
				victim = i
			}
		}
		res.Evicted = true
		res.EvictedLine = ways[victim].tag
		res.EvictedOwner = ways[victim].owner
		c.evictions++
	}
	ways[victim] = line{tag: lineAddr, owner: ctx, valid: true, lastUse: c.seq}
	return res
}

// InvalidateLine removes the block with the given line address (the
// Result.LineAddr / EvictedLine coordinate space) and reports whether
// it was resident. The simulator uses it for inclusive-hierarchy
// back-invalidation: when the shared L2 evicts a block, every L1 copy
// dies with it, as on real inclusive last-level caches — without this,
// stale private-cache copies would hide exactly the misses the covert
// channel and its detector both live on.
func (c *Cache) InvalidateLine(lineAddr uint64) bool {
	ways := c.sets[lineAddr&c.setMask]
	for i := range ways {
		if ways[i].valid && ways[i].tag == lineAddr {
			ways[i] = line{}
			return true
		}
	}
	return false
}

// Contains reports whether addr is resident, without touching LRU
// state. Intended for tests and assertions.
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	for _, l := range c.sets[lineAddr&c.setMask] {
		if l.valid && l.tag == lineAddr {
			return true
		}
	}
	return false
}

// Owner returns the owning context of addr's block and whether it is
// resident.
func (c *Cache) Owner(addr uint64) (uint8, bool) {
	lineAddr := addr >> c.lineShift
	for _, l := range c.sets[lineAddr&c.setMask] {
		if l.valid && l.tag == lineAddr {
			return l.owner, true
		}
	}
	return 0, false
}

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.nsets }

// NumBlocks returns the total number of blocks.
func (c *Cache) NumBlocks() int { return c.nsets * c.cfg.Ways }

// LineBytes returns the block size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() uint64 { return c.cfg.HitLatency }

// SetOfAddr returns the set index addr maps to.
func (c *Cache) SetOfAddr(addr uint64) uint32 {
	return uint32((addr >> c.lineShift) & c.setMask)
}

// AddrForSet builds an address that maps to the given set, with `way`
// selecting distinct conflicting line addresses within that set and
// base providing an address-space offset (e.g. a per-process tag).
// It is the inverse of SetOfAddr used by channel and workload code to
// construct eviction sets.
func (c *Cache) AddrForSet(set uint32, way int, base uint64) uint64 {
	if int(set) >= c.nsets {
		panic(fmt.Sprintf("cache: set %d out of range (%d sets)", set, c.nsets))
	}
	// Line address layout: [ base | way | set ]: the way bits sit just
	// above the set bits, so different ways collide in the same set
	// while different bases never alias.
	la := (base<<24|uint64(way))*uint64(c.nsets) + uint64(set)
	return la << c.lineShift
}

// Stats reports cumulative cache activity.
type Stats struct {
	Hits, Misses, Evictions uint64
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
