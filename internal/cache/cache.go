// Package cache implements the set-associative cache models used by
// the simulator: private L1s and the per-core L2 shared between
// hyperthreads that the paper's third covert channel exploits (§IV-C,
// after Xu et al.). Each cache block tracks its owner hardware context,
// which is what lets the conflict-miss tracker label replacements with
// (replacer → victim) pairs.
package cache

import (
	"errors"
	"fmt"
)

// ErrBadConfig is wrapped by every configuration validation error in
// this package.
var ErrBadConfig = errors.New("cache: bad configuration")

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the block size; must be a power of two.
	LineBytes int
	// Ways is the associativity.
	Ways int
	// HitLatency is the access latency in cycles when the block is
	// resident at this level.
	HitLatency uint64
}

// DefaultL1 models the paper's private 32 KB L1 (8-way, 64 B lines).
func DefaultL1() Config {
	return Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitLatency: 4}
}

// DefaultL2 models the paper's 256 KB L2 (8-way, 64 B lines, 512
// sets), shared between the two hyperthreads of a core as on Nehalem.
func DefaultL2() Config {
	return Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, HitLatency: 12}
}

// Valid blocks store tag and owner packed into one word:
//
//	bits 63..9  line address
//	bit      8  valid (the tag key lineAddr<<1|1 keeps it adjacent)
//	bits  7..0  owning hardware context
//
// An invalid way (word 0) can never match a lookup — the key is odd —
// so the way scan is a shift and a compare per way over one flat
// array, and a hit updates tag and owner with a single store. Line
// addresses are physical addresses shifted right by the line size,
// far below 2^55, so the packing never loses a bit.
const invalidTag = 0

func tagKey(lineAddr uint64) uint64 { return lineAddr<<1 | 1 }

func encodeTag(lineAddr uint64, ctx uint8) uint64 { return tagKey(lineAddr)<<8 | uint64(ctx) }

func tagOf(enc uint64) uint64 { return enc >> 8 }

func decodeTag(enc uint64) uint64 { return enc >> 9 }

func ownerOf(enc uint64) uint8 { return uint8(enc) }

// Cache is a single set-associative cache with true-LRU replacement.
// It is not safe for concurrent use; the simulation engine serializes
// all accesses in global time order.
//
// Block metadata lives in one flat array indexed by node =
// set*Ways+way: tags holds each way's packed tag+owner word (one
// cache line of words per 8-way set, so the hit scan touches a single
// array). Recency is an intrusive doubly-linked list per set,
// threaded through flat index arrays: every touch relinks the block
// at the head in O(1), and the eviction victim is the first
// in-partition node from the tail — no per-access timestamp scan and
// no per-access allocation.
type Cache struct {
	cfg       Config
	nsets     int
	lineShift uint
	setMask   uint64
	tags      []uint64 // packed tag+owner words; invalidTag = empty way

	// Per-set LRU lists over global node indexes; -1 terminates.
	// lruHead[s] is set s's most recently used way, lruTail[s] its
	// least recently used.
	lruPrev, lruNext []int32
	lruHead, lruTail []int32

	hits, misses, evictions uint64
}

// New builds a cache from cfg, rejecting inconsistent geometries with
// an error wrapping ErrBadConfig. Cache configurations reach here from
// user-settable machine descriptions, so a bad one is input, not a
// programming error.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("%w: line size %d not a power of two", ErrBadConfig, cfg.LineBytes)
	}
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("%w: size %d and ways %d must be positive", ErrBadConfig, cfg.SizeBytes, cfg.Ways)
	}
	blocks := cfg.SizeBytes / cfg.LineBytes
	if blocks%cfg.Ways != 0 {
		return nil, fmt.Errorf("%w: capacity %dB not divisible into %d ways of %dB lines",
			ErrBadConfig, cfg.SizeBytes, cfg.Ways, cfg.LineBytes)
	}
	nsets := blocks / cfg.Ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("%w: %d sets is not a power of two", ErrBadConfig, nsets)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	c := &Cache{
		cfg:       cfg,
		nsets:     nsets,
		lineShift: shift,
		setMask:   uint64(nsets - 1),
		tags:      make([]uint64, blocks),
		lruPrev:   make([]int32, blocks),
		lruNext:   make([]int32, blocks),
		lruHead:   make([]int32, nsets),
		lruTail:   make([]int32, nsets),
	}
	// Initial list order is way index order; it only matters once all
	// in-partition ways are valid, by which time every way has been
	// relinked by its install.
	for s := 0; s < nsets; s++ {
		base := int32(s * cfg.Ways)
		for w := 0; w < cfg.Ways; w++ {
			n := base + int32(w)
			c.lruPrev[n] = n - 1
			c.lruNext[n] = n + 1
		}
		c.lruPrev[base] = -1
		c.lruNext[base+int32(cfg.Ways)-1] = -1
		c.lruHead[s] = base
		c.lruTail[s] = base + int32(cfg.Ways) - 1
	}
	return c, nil
}

// touch moves way w of set s to the head (MRU end) of the set's
// recency list.
func (c *Cache) touch(set uint64, w int) {
	n := int32(int(set)*c.cfg.Ways + w)
	if c.lruHead[set] == n {
		return
	}
	p, nx := c.lruPrev[n], c.lruNext[n]
	if p >= 0 {
		c.lruNext[p] = nx
	}
	if nx >= 0 {
		c.lruPrev[nx] = p
	}
	if c.lruTail[set] == n {
		c.lruTail[set] = p
	}
	h := c.lruHead[set]
	c.lruPrev[n] = -1
	c.lruNext[n] = h
	c.lruPrev[h] = n
	c.lruHead[set] = n
}

// MustNew is New for geometries known to be valid (tests, hardcoded
// defaults); it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Result describes the effect of one access.
type Result struct {
	// Hit reports whether the block was resident.
	Hit bool
	// Set is the set index the address maps to.
	Set uint32
	// LineAddr is the full line address (addr >> log2(LineBytes)).
	LineAddr uint64
	// Evicted reports whether installing the block displaced a valid
	// block.
	Evicted bool
	// EvictedLine is the displaced block's line address.
	EvictedLine uint64
	// EvictedOwner is the hardware context that owned the displaced
	// block.
	EvictedOwner uint8
}

// Access looks up addr for hardware context ctx, installing the block
// (and evicting the LRU victim) on a miss. The owner of the block is
// updated to ctx on every access, matching the paper's "current owner
// context in the cache block metadata".
func (c *Cache) Access(addr uint64, ctx uint8) Result {
	return c.AccessInWays(addr, ctx, 0, c.cfg.Ways)
}

// AccessHit is Access for callers that only consume the hit/miss bit —
// the private-L1 step of every load, where eviction details are
// irrelevant (inclusive-hierarchy invalidations flow from the L2, not
// from L1 replacements). Cache state, LRU order, and counters advance
// exactly as Access would; only the Result construction is skipped.
func (c *Cache) AccessHit(addr uint64, ctx uint8) bool {
	lineAddr := addr >> c.lineShift
	set := lineAddr & c.setMask
	setBase := int(set) * c.cfg.Ways
	ways := c.tags[setBase : setBase+c.cfg.Ways]
	key := tagKey(lineAddr)
	enc := key<<8 | uint64(ctx)
	// One pass finds both the hit way and the first invalid way: L1
	// working sets of the probing channels are built to always miss, so
	// the miss path shouldn't rescan the tags it just read.
	victim := -1
	for i := range ways {
		w := ways[i]
		if tagOf(w) == key {
			ways[i] = enc
			c.touch(set, i)
			c.hits++
			return true
		}
		if w == invalidTag && victim < 0 {
			victim = i
		}
	}
	c.misses++
	if victim < 0 {
		// Unpartitioned access: the tail of the recency list is the
		// victim, the same choice AccessInWays makes with a full range.
		victim = int(c.lruTail[set]) - setBase
		c.evictions++
	}
	ways[victim] = enc
	c.touch(set, victim)
	return false
}

// AccessInWays is Access with allocation restricted to ways [lo, hi) —
// the hook used by way-partitioning mitigation (Wang & Lee's
// Partition-Locking idea). Hits are honored in any way (data is data),
// but on a miss the victim is chosen only inside the context's
// partition, so one partition can never evict another's blocks.
func (c *Cache) AccessInWays(addr uint64, ctx uint8, lo, hi int) Result {
	if lo < 0 || hi > c.cfg.Ways || lo >= hi {
		panic(fmt.Sprintf("cache: bad way range [%d, %d) of %d", lo, hi, c.cfg.Ways))
	}
	lineAddr := addr >> c.lineShift
	set := lineAddr & c.setMask
	setBase := int(set) * c.cfg.Ways
	ways := c.tags[setBase : setBase+c.cfg.Ways]
	key := tagKey(lineAddr)
	enc := key<<8 | uint64(ctx)
	res := Result{Set: uint32(set), LineAddr: lineAddr}
	for i := range ways {
		if tagOf(ways[i]) == key {
			ways[i] = enc
			c.touch(set, i)
			res.Hit = true
			c.hits++
			return res
		}
	}
	c.misses++
	// Miss: find an invalid way in range, else the LRU way in range —
	// the first in-partition node walking the recency list from the
	// tail. Every in-partition way is valid on that walk (the invalid
	// scan just failed), and relative list order of valid ways is
	// exactly last-touch order, so the walk lands on the same victim
	// the timestamp scan used to find.
	victim := -1
	for i := lo; i < hi; i++ {
		if ways[i] == invalidTag {
			victim = i
			break
		}
	}
	if victim < 0 {
		for n := c.lruTail[set]; n >= 0; n = c.lruPrev[n] {
			if w := int(n) - setBase; w >= lo && w < hi {
				victim = w
				break
			}
		}
		res.Evicted = true
		res.EvictedLine = decodeTag(ways[victim])
		res.EvictedOwner = ownerOf(ways[victim])
		c.evictions++
	}
	ways[victim] = enc
	c.touch(set, victim)
	return res
}

// InvalidateLine removes the block with the given line address (the
// Result.LineAddr / EvictedLine coordinate space) and reports whether
// it was resident. The simulator uses it for inclusive-hierarchy
// back-invalidation: when the shared L2 evicts a block, every L1 copy
// dies with it, as on real inclusive last-level caches — without this,
// stale private-cache copies would hide exactly the misses the covert
// channel and its detector both live on.
func (c *Cache) InvalidateLine(lineAddr uint64) bool {
	setBase := int(lineAddr&c.setMask) * c.cfg.Ways
	key := tagKey(lineAddr)
	for i := 0; i < c.cfg.Ways; i++ {
		if tagOf(c.tags[setBase+i]) == key {
			c.tags[setBase+i] = invalidTag
			return true
		}
	}
	return false
}

// Contains reports whether addr is resident, without touching LRU
// state. Intended for tests and assertions.
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	setBase := int(lineAddr&c.setMask) * c.cfg.Ways
	key := tagKey(lineAddr)
	for i := 0; i < c.cfg.Ways; i++ {
		if tagOf(c.tags[setBase+i]) == key {
			return true
		}
	}
	return false
}

// Owner returns the owning context of addr's block and whether it is
// resident.
func (c *Cache) Owner(addr uint64) (uint8, bool) {
	lineAddr := addr >> c.lineShift
	setBase := int(lineAddr&c.setMask) * c.cfg.Ways
	key := tagKey(lineAddr)
	for i := 0; i < c.cfg.Ways; i++ {
		if tagOf(c.tags[setBase+i]) == key {
			return ownerOf(c.tags[setBase+i]), true
		}
	}
	return 0, false
}

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.nsets }

// NumBlocks returns the total number of blocks.
func (c *Cache) NumBlocks() int { return c.nsets * c.cfg.Ways }

// LineBytes returns the block size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() uint64 { return c.cfg.HitLatency }

// SetOfAddr returns the set index addr maps to.
func (c *Cache) SetOfAddr(addr uint64) uint32 {
	return uint32((addr >> c.lineShift) & c.setMask)
}

// AddrForSet builds an address that maps to the given set, with `way`
// selecting distinct conflicting line addresses within that set and
// base providing an address-space offset (e.g. a per-process tag).
// It is the inverse of SetOfAddr used by channel and workload code to
// construct eviction sets.
func (c *Cache) AddrForSet(set uint32, way int, base uint64) uint64 {
	if int(set) >= c.nsets {
		panic(fmt.Sprintf("cache: set %d out of range (%d sets)", set, c.nsets))
	}
	// Line address layout: [ base | way | set ]: the way bits sit just
	// above the set bits, so different ways collide in the same set
	// while different bases never alias.
	la := (base<<24|uint64(way))*uint64(c.nsets) + uint64(set)
	return la << c.lineShift
}

// Stats reports cumulative cache activity.
type Stats struct {
	Hits, Misses, Evictions uint64
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
