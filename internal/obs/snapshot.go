package obs

import (
	"sort"
	"strings"
	"time"
)

// HistogramSnapshot is the frozen state of one histogram. Bounds and
// Buckets are parallel; Buckets has one extra trailing entry for
// observations above the last bound.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON:
// the metrics endpoint serves it, ccrepro -metrics-out writes it, and
// Report.Metrics embeds it. Maps marshal with sorted keys, so equal
// registries produce byte-identical JSON.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values. Recording may
// continue concurrently; each instrument is read atomically but the
// snapshot as a whole is not a consistent cut. Nil registry → nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Bounds:  h.bounds,
				Buckets: make([]uint64, len(h.buckets)),
				Count:   h.Count(),
				Sum:     h.Sum(),
			}
			for i := range h.buckets {
				hs.Buckets[i] = h.buckets[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// StageTimes extracts every timer histogram whose name ends in "_ns"
// as a stage → total-duration map, keyed by the name with the suffix
// stripped. The runner uses this for per-job stage-time attribution.
// Nil registry → nil.
func (r *Registry) StageTimes() map[string]time.Duration {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out map[string]time.Duration
	for name, h := range r.hists {
		if !strings.HasSuffix(name, "_ns") {
			continue
		}
		if out == nil {
			out = make(map[string]time.Duration)
		}
		out[strings.TrimSuffix(name, "_ns")] = time.Duration(h.Sum())
	}
	return out
}

// TopStages returns up to n stage names from times ordered by
// descending duration — the attribution shown on progress lines.
func TopStages(times map[string]time.Duration, n int) []string {
	names := make([]string, 0, len(times))
	for name := range times {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if times[names[i]] != times[names[j]] {
			return times[names[i]] > times[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) > n {
		names = names[:n]
	}
	return names
}
