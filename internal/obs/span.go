package obs

import "time"

// Timer is a histogram of durations in nanoseconds. Use Start to open
// a Span around a pipeline stage; ending the span observes its
// elapsed time. A nil Timer is a no-op and — critically for the
// disabled fast path — never calls time.Now.
type Timer struct {
	h *Histogram
}

// Timer returns the timer registered under name, creating it with
// DefaultLatencyBounds on first use. Nil registry → nil timer.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	return &Timer{h: r.Histogram(name, DefaultLatencyBounds())}
}

// Span is an open timing measurement. The zero Span (from a nil
// Timer) is inert: End on it does nothing.
type Span struct {
	t     *Timer
	start time.Time
}

// Start opens a span. On a nil timer it returns the zero Span without
// reading the clock.
func (t *Timer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// End closes the span, recording the elapsed nanoseconds.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.h.Observe(float64(time.Since(s.start).Nanoseconds()))
}

// ObserveDuration records an already-measured duration, for callers
// that time a stage themselves.
func (t *Timer) ObserveDuration(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(float64(d.Nanoseconds()))
}
