// Package obs is the observability layer of the detection pipeline: a
// metrics registry of counters, gauges, and fixed-bucket histograms
// backed by atomics, plus lightweight timing spans. Every stage of the
// pipeline — simulator engine, event batcher, fault injector,
// CC-Auditor, detectors, experiment runner — records what it sees into
// a Registry, and the registry is snapshotted as JSON for a live HTTP
// endpoint (cchunt -metrics-addr), a per-figure dump (ccrepro
// -metrics-out), or a Report's Metrics field.
//
// Two properties make the layer safe to compile into the hot path:
//
//   - Nil fast path. A nil *Registry hands out nil instruments, and
//     every instrument method is a nil-receiver no-op: one predictable
//     branch per call site, no allocation, no atomic traffic. The
//     pipeline is instrumented unconditionally and pays (measurably
//     <2%, see DESIGN.md §11) only when nobody asked for metrics.
//   - Lock-free recording. Instruments are registered once (under a
//     mutex) and then updated with plain atomic adds, so concurrent
//     experiment jobs can share one registry and a live HTTP reader
//     never blocks a recording writer.
//
// Metrics are observational only: nothing in the detection pipeline
// reads them back, so verdicts are byte-identical with and without a
// registry wired in (the golden-verdict suite pins this).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named instruments. The zero value is not usable; call
// NewRegistry. A nil *Registry is valid everywhere and disables
// recording at near-zero cost.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, ready-to-use registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. On a nil registry it returns nil, which is a valid no-op
// counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil registry → nil gauge (no-op).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (bounds must be
// sorted ascending; a final +Inf bucket is implicit). Re-requesting an
// existing histogram ignores bounds. Nil registry → nil histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing uint64. All methods are safe
// on a nil receiver and for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level. All methods are safe on a nil
// receiver and for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Max raises the gauge to v if v exceeds the current value.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bounds are upper
// bounds (inclusive); observations above the last bound land in an
// implicit overflow bucket. Count and Sum are tracked exactly, so mean
// latencies and totals need no bucket arithmetic. All methods are safe
// on a nil receiver and for concurrent use.
type Histogram struct {
	bounds  []float64 // immutable after construction
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefaultLatencyBounds buckets nanosecond timings from 1µs to ~17min
// in powers of four — wide enough for a single Δt-window close and a
// whole figure run alike.
func DefaultLatencyBounds() []float64 {
	bounds := make([]float64, 16)
	v := 1e3
	for i := range bounds {
		bounds[i] = v
		v *= 4
	}
	return bounds
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.ObserveN(v, 1)
}

// ObserveN records n observations of v in one histogram update — the
// amortization hook for single-writer hot loops (e.g. the auditor's
// Δt-window closes) that tally locally and flush per quantum.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	// Binary search for the first bound >= v; linear would do for the
	// typical 16 buckets, but search keeps wide histograms honest.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(n)
	h.count.Add(n)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}
