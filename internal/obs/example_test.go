package obs_test

import (
	"fmt"

	"cchunter/internal/obs"
)

// Example shows the wiring pattern every pipeline stage uses: resolve
// instruments from a registry that may be nil (metrics off — all
// operations become no-ops), record on the hot path, snapshot at the
// end. Library users enable metrics by setting Scenario.Metrics to a
// fresh registry and reading Result.Report.Metrics afterwards.
func Example() {
	reg := obs.NewRegistry() // pass nil instead to disable recording

	events := reg.Counter("auditor.events")
	density := reg.Histogram("auditor.density.bus", []float64{1, 4, 16, 64})
	for _, burst := range []float64{2, 2, 70, 3} {
		events.Inc()
		density.Observe(burst)
	}

	span := reg.Timer("detect.analyze_ns").Start()
	// ... run the analysis ...
	span.End()

	snap := reg.Snapshot()
	fmt.Println("events:", snap.Counters["auditor.events"])
	fmt.Println("density observations:", snap.Histograms["auditor.density.bus"].Count)
	// Output:
	// events: 4
	// density observations: 4
}
