package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry as pretty-printed JSON, in the spirit
// of expvar: GET it while a run is in flight to watch per-stage
// counters and latency histograms move. A nil registry serves "{}".
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		snap := r.Snapshot()
		if snap == nil {
			w.Write([]byte("{}\n"))
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}
