package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers one counter, gauge, and histogram
// from GOMAXPROCS goroutines and asserts exact totals: atomics must
// lose no updates, and concurrent Snapshot calls must not disturb the
// writers (run under -race in CI).
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 20000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine re-resolves its instruments by name, the way
			// independent pipeline stages would.
			c := reg.Counter("hammer.events")
			g := reg.Gauge("hammer.level")
			h := reg.Histogram("hammer.lat", []float64{1, 10, 100})
			for i := 0; i < perWorker; i++ {
				c.Add(2)
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}()
	}
	// Concurrent readers: snapshots mid-hammer must be well-formed.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if s := reg.Snapshot(); s == nil {
				t.Error("Snapshot returned nil on a live registry")
				return
			}
		}
	}()
	wg.Wait()
	<-done

	total := uint64(workers * perWorker)
	if got := reg.Counter("hammer.events").Value(); got != 3*total {
		t.Errorf("counter = %d, want %d", got, 3*total)
	}
	if got := reg.Gauge("hammer.level").Value(); got != int64(total) {
		t.Errorf("gauge = %d, want %d", got, total)
	}
	h := reg.Histogram("hammer.lat", nil)
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	// Sum of i%200 over perWorker i's, times workers; CAS float
	// accumulation of integers is exact (all values ≤ 2^53).
	var per float64
	for i := 0; i < perWorker; i++ {
		per += float64(i % 200)
	}
	if got := h.Sum(); got != per*float64(workers) {
		t.Errorf("histogram sum = %g, want %g", got, per*float64(workers))
	}
}

// TestNilRegistryFastPath pins the disabled-path contract: every
// operation on a nil registry and its nil instruments is a safe no-op.
func TestNilRegistryFastPath(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("x")
	h := reg.Histogram("x", []float64{1})
	tm := reg.Timer("x_ns")
	if c != nil || g != nil || h != nil || tm != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Add(5)
	c.Inc()
	g.Set(1)
	g.Add(1)
	g.Max(9)
	h.Observe(3)
	sp := tm.Start()
	sp.End()
	tm.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if reg.StageTimes() != nil {
		t.Fatal("nil registry stage times must be nil")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{10, 100, 1000})
	for _, v := range []float64{0, 10, 10.5, 99, 100, 101, 5000} {
		h.Observe(v)
	}
	want := []uint64{2, 3, 1, 1} // ≤10: {0,10}; ≤100: {10.5,99,100}; ≤1000: {101}; over: {5000}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5320.5) > 1e-9 {
		t.Errorf("sum = %g, want 5320.5", got)
	}
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Max(5)
	g.Max(3)
	g.Max(7)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge max = %d, want 7", got)
	}
}

// TestSnapshotJSONDeterminism: two registries fed identically must
// marshal to identical bytes — the property the golden-verdict suite
// leans on when comparing reports with metrics enabled.
func TestSnapshotJSONDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in different orders; maps must still sort on marshal.
		names := []string{"z.last", "a.first", "m.middle"}
		for _, n := range names {
			r.Counter(n).Add(7)
			r.Gauge("g." + n).Set(-3)
			r.Histogram("h."+n, []float64{1, 2}).Observe(1.5)
		}
		return r
	}
	a, _ := json.Marshal(build().Snapshot())
	b, _ := json.Marshal(build().Snapshot())
	if string(a) != string(b) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestStageTimes(t *testing.T) {
	reg := NewRegistry()
	reg.Timer("sim_ns").ObserveDuration(3 * time.Second)
	reg.Timer("analyze_ns").ObserveDuration(time.Second)
	reg.Histogram("not.a.timer", []float64{1}).Observe(99)

	times := reg.StageTimes()
	if len(times) != 2 {
		t.Fatalf("stage times = %v, want 2 entries", times)
	}
	if times["sim"] != 3*time.Second || times["analyze"] != time.Second {
		t.Errorf("stage times = %v", times)
	}
	if top := TopStages(times, 1); len(top) != 1 || top[0] != "sim" {
		t.Errorf("TopStages = %v, want [sim]", top)
	}
}

func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served").Add(42)
	rec := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("handler served invalid JSON: %v\n%s", err, rec.Body)
	}
	if snap.Counters["served"] != 42 {
		t.Errorf("served counter = %d, want 42", snap.Counters["served"])
	}

	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Body.String(); got != "{}\n" {
		t.Errorf("nil-registry handler served %q, want {}", got)
	}
}
