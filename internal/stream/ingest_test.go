package stream

import (
	"sync"
	"testing"

	"cchunter/internal/obs"
	"cchunter/internal/trace"
)

// sink is a batch-aware listener that can block deliveries on demand.
type sink struct {
	mu      sync.Mutex
	events  []trace.Event
	batches int
	gate    chan struct{} // when non-nil, OnEvents waits on it once per batch
	started chan struct{} // signaled when a delivery begins waiting
}

func (s *sink) OnEvent(e trace.Event) { s.OnEvents([]trace.Event{e}) }

func (s *sink) OnEvents(events []trace.Event) {
	if s.gate != nil {
		s.started <- struct{}{}
		<-s.gate
	}
	s.mu.Lock()
	s.events = append(s.events, events...)
	s.batches++
	s.mu.Unlock()
}

func ev(c uint64) trace.Event { return trace.Event{Cycle: c, Kind: trace.KindBusLock} }

// TestIngestDeliversInOrder: everything enqueued under capacity comes
// out in order, batched, and the producer's buffer is not aliased.
func TestIngestDeliversInOrder(t *testing.T) {
	dst := &sink{}
	in := NewIngest(dst, 64, nil)
	buf := []trace.Event{ev(1), ev(2), ev(3)}
	in.OnEvents(buf)
	buf[0] = ev(999) // mutate the producer buffer after handoff
	in.OnEvent(ev(4))
	in.Close()
	if in.Shed() != 0 {
		t.Fatalf("shed %d events under capacity", in.Shed())
	}
	if len(dst.events) != 4 {
		t.Fatalf("delivered %d events, want 4", len(dst.events))
	}
	for i, want := range []uint64{1, 2, 3, 4} {
		if dst.events[i].Cycle != want {
			t.Errorf("event %d has cycle %d, want %d", i, dst.events[i].Cycle, want)
		}
	}
	if dst.batches != 2 {
		t.Errorf("delivered in %d batches, want 2 (batch path unused?)", dst.batches)
	}
}

// TestIngestShedsUnderOverload: with the consumer wedged and the queue
// full, enqueues shed instead of blocking, the shed count is exact,
// and the metrics counter agrees.
func TestIngestShedsUnderOverload(t *testing.T) {
	dst := &sink{gate: make(chan struct{}), started: make(chan struct{}, 1)}
	reg := obs.NewRegistry()
	in := NewIngest(dst, 1, reg)

	in.OnEvents([]trace.Event{ev(1), ev(2)})
	<-dst.started                            // consumer is now wedged mid-delivery of batch 1
	in.OnEvents([]trace.Event{ev(3)})        // sits in the queue
	in.OnEvents([]trace.Event{ev(4), ev(5)}) // queue full: shed
	in.OnEvent(ev(6))                        // shed

	if got := in.Shed(); got != 3 {
		t.Fatalf("shed = %d, want 3", got)
	}
	close(dst.gate) // unwedge; remaining queued batch drains
	in.Close()
	if len(dst.events) != 3 {
		t.Fatalf("delivered %d events, want 3", len(dst.events))
	}
	snap := reg.Snapshot()
	if got := snap.Counters["stream.events_shed"]; got != 3 {
		t.Errorf("stream.events_shed = %d, want 3", got)
	}
}

// TestIngestNilRegistry: shedding with no registry must not panic.
func TestIngestNilRegistry(t *testing.T) {
	dst := &sink{gate: make(chan struct{}), started: make(chan struct{}, 1)}
	in := NewIngest(dst, 1, nil)
	in.OnEvent(ev(1))
	<-dst.started
	in.OnEvent(ev(2))
	in.OnEvent(ev(3)) // shed, nil counter path
	if in.Shed() == 0 {
		t.Error("nothing shed")
	}
	close(dst.gate)
	in.Close()
}
