package stream

import (
	"sync"
	"sync/atomic"

	"cchunter/internal/obs"
	"cchunter/internal/trace"
)

// Ingest is a bounded hand-off queue in front of an event consumer
// (typically a streaming Detector): producers enqueue event batches
// without ever blocking, a single consumer goroutine delivers them in
// order, and when the queue is full the batch is shed and counted
// instead of stalling the producer. This is the load-shedding contract
// of a monitoring pipeline — under overload the daemon degrades its
// evidence base (and says so, via the shed count folding into the
// verdict's Streaming info) rather than back-pressuring the system it
// observes.
//
// Events are copied on enqueue into a recycled buffer; the producer's
// batch buffer is never retained, and delivered buffers return to an
// internal pool, so steady-state ingestion allocates nothing.
// Deliveries happen on the consumer goroutine, so the wrapped listener
// needs no locking of its own as long as Ingest is its only caller.
type Ingest struct {
	dst  trace.Listener
	ch   chan item
	wg   sync.WaitGroup
	bufs sync.Pool
	shed atomic.Uint64

	mShed *obs.Counter
}

// item is one queue entry: an event batch, or a control function to
// run in order on the consumer goroutine (see Do).
type item struct {
	events []trace.Event
	fn     func()
}

// NewIngest starts the consumer goroutine. queueLen is the number of
// in-flight batches the queue holds before shedding (minimum 1).
// Call Close before reading the consumer's final state.
func NewIngest(dst trace.Listener, queueLen int, reg *obs.Registry) *Ingest {
	if queueLen < 1 {
		queueLen = 1
	}
	in := &Ingest{
		dst:   dst,
		ch:    make(chan item, queueLen),
		mShed: reg.Counter("stream.events_shed"),
	}
	in.bufs.New = func() any { b := make([]trace.Event, 0, trace.DefaultBatchSize); return &b }
	in.wg.Add(1)
	go func() {
		defer in.wg.Done()
		batcher, batchable := dst.(trace.BatchListener)
		for it := range in.ch {
			if it.fn != nil {
				it.fn()
				continue
			}
			if batchable {
				batcher.OnEvents(it.events)
			} else {
				for _, e := range it.events {
					in.dst.OnEvent(e)
				}
			}
			in.recycle(it.events)
		}
	}()
	return in
}

// OnEvent implements trace.Listener.
func (in *Ingest) OnEvent(e trace.Event) {
	buf := in.borrow(1)
	in.enqueue(append(buf, e))
}

// OnEvents implements trace.BatchListener. The batch is copied; the
// caller's buffer is free for reuse on return.
func (in *Ingest) OnEvents(events []trace.Event) {
	if len(events) == 0 {
		return
	}
	buf := in.borrow(len(events))
	in.enqueue(append(buf, events...))
}

// Do enqueues fn behind every batch already queued and runs it on the
// consumer goroutine — an ordered quiesce point. Unlike event batches,
// control operations are never shed: Do blocks until the queue has
// room (the caller accepts back-pressure on control, which is rare and
// must not be lost). fn runs with exclusive access to the consumer's
// state; a long fn delays subsequent deliveries. Must not be called
// after Close.
func (in *Ingest) Do(fn func()) {
	if fn == nil {
		return
	}
	in.ch <- item{fn: fn}
}

// borrow takes a zero-length buffer with at least capacity n from the
// recycling pool.
func (in *Ingest) borrow(n int) []trace.Event {
	p := in.bufs.Get().(*[]trace.Event)
	buf := (*p)[:0]
	if cap(buf) < n {
		buf = make([]trace.Event, 0, n)
	}
	*p = nil
	bufPtrPool.Put(p)
	return buf
}

// recycle returns a delivered buffer to the pool.
func (in *Ingest) recycle(buf []trace.Event) {
	p, _ := bufPtrPool.Get().(*[]trace.Event)
	if p == nil {
		p = new([]trace.Event)
	}
	*p = buf
	in.bufs.Put(p)
}

// bufPtrPool recycles the *[]trace.Event boxes themselves so borrow
// and recycle do not allocate a pointer per batch.
var bufPtrPool sync.Pool

func (in *Ingest) enqueue(events []trace.Event) {
	select {
	case in.ch <- item{events: events}:
	default:
		in.shed.Add(uint64(len(events)))
		in.mShed.Add(uint64(len(events)))
		in.recycle(events)
	}
}

// Close stops accepting events and blocks until every queued batch has
// been delivered. The Ingest must not be used afterwards.
func (in *Ingest) Close() {
	close(in.ch)
	in.wg.Wait()
}

// Shed reports how many events were dropped at the queue.
func (in *Ingest) Shed() uint64 { return in.shed.Load() }

// Pending reports how many queue entries (batches and control ops)
// currently await the consumer — the backpressure depth gauge.
func (in *Ingest) Pending() int { return len(in.ch) }
