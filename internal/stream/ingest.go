package stream

import (
	"sync"
	"sync/atomic"

	"cchunter/internal/obs"
	"cchunter/internal/trace"
)

// Ingest is a bounded hand-off queue in front of an event consumer
// (typically a streaming Detector): producers enqueue event batches
// without ever blocking, a single consumer goroutine delivers them in
// order, and when the queue is full the batch is shed and counted
// instead of stalling the producer. This is the load-shedding contract
// of a monitoring pipeline — under overload the daemon degrades its
// evidence base (and says so, via the shed count folding into the
// verdict's Streaming info) rather than back-pressuring the system it
// observes.
//
// Events are copied on enqueue; the producer's batch buffer is never
// retained. Deliveries happen on the consumer goroutine, so the
// wrapped listener needs no locking of its own as long as Ingest is
// its only caller.
type Ingest struct {
	dst  trace.Listener
	ch   chan []trace.Event
	wg   sync.WaitGroup
	shed atomic.Uint64

	mShed *obs.Counter
}

// NewIngest starts the consumer goroutine. queueLen is the number of
// in-flight batches the queue holds before shedding (minimum 1).
// Call Close before reading the consumer's final state.
func NewIngest(dst trace.Listener, queueLen int, reg *obs.Registry) *Ingest {
	if queueLen < 1 {
		queueLen = 1
	}
	in := &Ingest{
		dst:   dst,
		ch:    make(chan []trace.Event, queueLen),
		mShed: reg.Counter("stream.events_shed"),
	}
	in.wg.Add(1)
	go func() {
		defer in.wg.Done()
		batcher, batchable := dst.(trace.BatchListener)
		for events := range in.ch {
			if batchable {
				batcher.OnEvents(events)
				continue
			}
			for _, e := range events {
				in.dst.OnEvent(e)
			}
		}
	}()
	return in
}

// OnEvent implements trace.Listener.
func (in *Ingest) OnEvent(e trace.Event) {
	in.enqueue([]trace.Event{e})
}

// OnEvents implements trace.BatchListener. The batch is copied; the
// caller's buffer is free for reuse on return.
func (in *Ingest) OnEvents(events []trace.Event) {
	if len(events) == 0 {
		return
	}
	in.enqueue(append([]trace.Event(nil), events...))
}

func (in *Ingest) enqueue(events []trace.Event) {
	select {
	case in.ch <- events:
	default:
		in.shed.Add(uint64(len(events)))
		in.mShed.Add(uint64(len(events)))
	}
}

// Close stops accepting events and blocks until every queued batch has
// been delivered. The Ingest must not be used afterwards.
func (in *Ingest) Close() {
	close(in.ch)
	in.wg.Wait()
}

// Shed reports how many events were dropped at the queue.
func (in *Ingest) Shed() uint64 { return in.shed.Load() }
