package stream

import (
	"runtime"
	"testing"

	"cchunter/internal/core"
)

// soakRun streams a synthetic train of the given length through a
// bounded-retention detector, sampling the live heap as it goes, and
// returns the peak sampled heap and the detector's own retention
// high-water marks.
func soakRun(t *testing.T, quanta int, faulty bool) (peakHeap uint64, peakEvents, retained int) {
	t.Helper()
	events := synthTrain(21, quanta, testQuantum)
	if faulty {
		events = perturb(events, 31)
	}
	cfg := core.DefaultDetectorConfig(testQuantum, 4)
	cfg.ObservationDivisor = 2
	// Bound every growth axis: this is the daemon configuration, not
	// the byte-identical-Windows one.
	cfg.Burst.WindowQuanta = 64
	aud := newAuditor(t, testQuantum)
	d := New(aud, Config{Detector: cfg, RetainWindows: 8})

	var ms runtime.MemStats
	sample := func() {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peakHeap {
			peakHeap = ms.HeapAlloc
		}
	}
	const chunk = 256
	for i := 0; i < len(events); i += chunk {
		j := i + chunk
		if j > len(events) {
			j = len(events)
		}
		d.OnEvents(events[i:j])
		if (i/chunk)%64 == 0 {
			sample()
		}
	}
	sample()
	rep := d.Finalize(uint64(quanta) * testQuantum)
	if rep.Streaming == nil {
		t.Fatal("soak run lost its streaming info")
	}
	return peakHeap, rep.Streaming.PeakRetainedEvents, d.RetainedEvents()
}

// TestSoakBoundedMemory is the O(window) proof by experiment: a 10×
// longer trace must not grow the detector's peak heap. The paper's
// runs cover a few hundred OS quanta; the long leg here is 10× the
// short leg with identical event density, so any per-event or
// per-window retention shows up as a near-10× heap ratio. The
// retention high-water marks are checked exactly; the heap comparison
// gets slack for GC noise.
func TestSoakBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, tc := range []struct {
		name   string
		faulty bool
	}{
		{"clean", false},
		{"fault-injected", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			heap1, peak1, _ := soakRun(t, 100, tc.faulty)
			heap10, peak10, left10 := soakRun(t, 1000, tc.faulty)

			// The conflict train must never hold much more than one
			// observation window of deduplicated events, regardless of
			// trace length.
			if peak10 > 4*peak1+1024 {
				t.Errorf("peak retained events grew with trace length: %d (10×) vs %d (1×)",
					peak10, peak1)
			}
			if left10 > peak10 {
				t.Errorf("events left after finalize (%d) exceed the run's high-water mark (%d)",
					left10, peak10)
			}
			// Peak heap: allow 2× for GC jitter and ring warmup; a
			// linear O(trace) retention would show up as ~10×.
			if heap10 > 2*heap1+(8<<20) {
				t.Errorf("peak heap grew with trace length: %d bytes (10×) vs %d bytes (1×)",
					heap10, heap1)
			}
		})
	}
}
