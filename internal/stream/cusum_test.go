package stream

import "testing"

// feed pushes a series into a fresh detector and returns it.
func feed(cfg CUSUMConfig, series []float64) *CUSUM {
	c := NewCUSUM(cfg)
	for i, x := range series {
		c.Add(x, uint64(i)*1000)
	}
	return c
}

// TestCUSUMSeries drives the change detector through the canonical
// shapes a detection statistic can take: a step change (channel
// switches on), a slow ramp, a pulsed sender, benign drift, and
// benign noise. Only genuine changes may fire, and the onset estimate
// must land at the change, not at the alarm.
func TestCUSUMSeries(t *testing.T) {
	mk := func(n int, f func(i int) float64) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = f(i)
		}
		return s
	}
	// Deterministic triangle "noise" in [-amp, +amp].
	tri := func(i int, amp float64) float64 {
		return amp * (float64((i*7)%20)/10 - 1)
	}

	cases := []struct {
		name     string
		series   []float64
		wantFire bool
		onsetMin int // inclusive bounds on OnsetIndex when fired
		onsetMax int
	}{
		{
			name: "step",
			series: mk(60, func(i int) float64 {
				if i >= 30 {
					return 0.8
				}
				return 0.1
			}),
			wantFire: true,
			onsetMin: 30, onsetMax: 32,
		},
		{
			name: "ramp",
			series: mk(80, func(i int) float64 {
				if i < 40 {
					return 0.1
				}
				return 0.1 + 0.02*float64(i-40)
			}),
			wantFire: true,
			onsetMin: 40, onsetMax: 48,
		},
		{
			name: "pulsed", // sender active 5 of every 10 samples
			series: mk(80, func(i int) float64 {
				if i >= 30 && (i/5)%2 == 0 {
					return 0.9
				}
				return 0.1
			}),
			wantFire: true,
			onsetMin: 30, onsetMax: 40,
		},
		{
			name: "benign-drift", // slow wander the EWMA absorbs
			series: mk(200, func(i int) float64 {
				return 0.1 + 0.0004*float64(i) + tri(i, 0.01)
			}),
			wantFire: false,
		},
		{
			name: "benign-noise",
			series: mk(200, func(i int) float64 {
				return 0.2 + tri(i, 0.03)
			}),
			wantFire: false,
		},
		{
			name:     "constant",
			series:   mk(100, func(int) float64 { return 0.3 }),
			wantFire: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := feed(CUSUMConfig{}, tc.series)
			r := c.Report()
			if r.Detected != tc.wantFire {
				t.Fatalf("fired = %v, want %v (stat %.3f vs thr %.3f)",
					r.Detected, tc.wantFire, r.Statistic, r.Threshold)
			}
			if r.Samples != len(tc.series) {
				t.Errorf("samples = %d, want %d", r.Samples, len(tc.series))
			}
			if !tc.wantFire {
				return
			}
			if r.OnsetIndex < tc.onsetMin || r.OnsetIndex > tc.onsetMax {
				t.Errorf("onset index = %d, want in [%d, %d]", r.OnsetIndex, tc.onsetMin, tc.onsetMax)
			}
			if r.OnsetCycle != uint64(r.OnsetIndex)*1000 {
				t.Errorf("onset cycle %d does not match index %d", r.OnsetCycle, r.OnsetIndex)
			}
			if r.FiredCycle < r.OnsetCycle {
				t.Errorf("alarm at %d before onset %d", r.FiredCycle, r.OnsetCycle)
			}
		})
	}
}

// TestCUSUMLatches verifies the alarm is sticky: once fired, a return
// to baseline does not clear it, and the recorded onset is preserved.
func TestCUSUMLatches(t *testing.T) {
	c := NewCUSUM(CUSUMConfig{})
	for i := 0; i < 30; i++ {
		c.Add(0.1, uint64(i))
	}
	for i := 30; i < 40; i++ {
		c.Add(0.9, uint64(i))
	}
	if !c.Fired() {
		t.Fatal("step did not fire")
	}
	onset := c.Report().OnsetCycle
	for i := 40; i < 200; i++ {
		c.Add(0.1, uint64(i))
	}
	if !c.Fired() {
		t.Error("alarm un-latched")
	}
	if got := c.Report().OnsetCycle; got != onset {
		t.Errorf("onset moved after latch: %d -> %d", onset, got)
	}
}

// TestCUSUMFixedThreshold exercises the non-adaptive configuration.
func TestCUSUMFixedThreshold(t *testing.T) {
	cfg := CUSUMConfig{Drift: 0.05, Threshold: 1.0, Warmup: 4, Alpha: 0.05}
	c := NewCUSUM(cfg)
	fired := false
	for i := 0; i < 50; i++ {
		x := 0.1
		if i >= 20 {
			x = 0.6
		}
		if c.Add(x, uint64(i)) {
			fired = true
		}
	}
	if !fired {
		t.Fatal("fixed-threshold detector did not fire on a 0.5 step")
	}
	r := c.Report()
	// Excursion starts on the first post-step sample.
	if r.OnsetIndex < 20 || r.OnsetIndex > 22 {
		t.Errorf("onset index = %d, want ~20", r.OnsetIndex)
	}
	if r.Statistic < r.Threshold {
		t.Errorf("fired with statistic %.3f below threshold %.3f", r.Statistic, r.Threshold)
	}
}

// TestCUSUMWarmupSuppression: no alarm can fire inside the warmup
// window even on an extreme series.
func TestCUSUMWarmupSuppression(t *testing.T) {
	c := NewCUSUM(CUSUMConfig{Warmup: 16})
	for i := 0; i < 16; i++ {
		if c.Add(float64(i), uint64(i)) {
			t.Fatalf("fired during warmup at sample %d", i)
		}
	}
}
