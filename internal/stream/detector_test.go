package stream

import (
	"bytes"
	"encoding/json"
	"testing"

	"cchunter/internal/auditor"
	"cchunter/internal/core"
	"cchunter/internal/trace"
)

const testQuantum = 100_000

// newAuditor programs a fresh auditor the way a scenario run does:
// both combinational units plus the conflict-miss tracker.
func newAuditor(t testing.TB, quantum uint64) *auditor.Auditor {
	t.Helper()
	aud, err := auditor.New(auditor.DefaultConfig(quantum))
	if err != nil {
		t.Fatal(err)
	}
	if err := aud.Monitor(trace.KindBusLock, core.DeltaTBus); err != nil {
		t.Fatal(err)
	}
	if err := aud.Monitor(trace.KindDivContention, core.DeltaTDivider); err != nil {
		t.Fatal(err)
	}
	if err := aud.MonitorConflicts(); err != nil {
		t.Fatal(err)
	}
	return aud
}

// splitmix is the deterministic RNG all synthetic trains draw from.
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// synthTrain builds a mixed indicator-event train over the given
// number of quanta: bursty bus locks in alternating quanta, sparse
// divider contention, and a periodically oscillating conflict-miss
// pattern — enough structure to drive every analysis stage.
func synthTrain(seed uint64, quanta int, quantum uint64) []trace.Event {
	rng := splitmix(seed)
	var events []trace.Event
	var cycle uint64
	end := uint64(quanta) * quantum
	for cycle < end {
		cycle += 200 + rng.next()%1800
		q := cycle / quantum
		r := rng.next()
		switch {
		case q%2 == 0 && r%5 < 2: // bus burst quanta
			events = append(events, trace.Event{
				Cycle: cycle, Kind: trace.KindBusLock,
				Actor: uint8(r % 4),
			})
		case r%7 == 0:
			events = append(events, trace.Event{
				Cycle: cycle, Kind: trace.KindDivContention,
				Actor: uint8(r % 4), Victim: uint8((r >> 8) % 4),
			})
		case r%3 == 0: // oscillating conflicts: ~4k-cycle period
			phase := (cycle / 2000) % 2
			events = append(events, trace.Event{
				Cycle: cycle, Kind: trace.KindConflictMiss,
				Actor: uint8(phase), Victim: uint8(1 - phase),
				Unit: uint32(r % 64),
			})
		}
	}
	return events
}

// perturb applies sensor-style faults to a train: drops, bounded
// timestamp jitter (breaking monotonicity), and depth-one reordering.
// The result is what a degraded event path would deliver — both
// detectors must agree on it.
func perturb(events []trace.Event, seed uint64) []trace.Event {
	rng := splitmix(seed)
	out := make([]trace.Event, 0, len(events))
	for _, e := range events {
		r := rng.next()
		if r%20 == 0 { // 5% drop
			continue
		}
		if j := r % 7; j < 3 && e.Cycle > 500 {
			e.Cycle += (r>>8)%1000 - 500
		}
		out = append(out, e)
	}
	// Depth-one reordering.
	for i := 0; i+1 < len(out); i += 17 {
		out[i], out[i+1] = out[i+1], out[i]
	}
	return out
}

// batchReport renders the batch verdict over a train.
func batchReport(t testing.TB, events []trace.Event, cfg core.DetectorConfig, end uint64, chunk int) core.Report {
	t.Helper()
	aud := newAuditor(t, cfg.QuantumCycles)
	for i := 0; i < len(events); i += chunk {
		j := i + chunk
		if j > len(events) {
			j = len(events)
		}
		aud.OnEvents(events[i:j])
	}
	det := core.NewDetector(aud, cfg)
	rep := det.Analyze(end)
	det.Release()
	return rep
}

// streamReport renders the streaming verdict over the same train,
// optionally polling Interim along the way.
func streamReport(t testing.TB, events []trace.Event, scfg Config, end uint64, chunk int, pollInterim bool) core.Report {
	t.Helper()
	aud := newAuditor(t, scfg.Detector.QuantumCycles)
	d := New(aud, scfg)
	for i := 0; i < len(events); i += chunk {
		j := i + chunk
		if j > len(events) {
			j = len(events)
		}
		d.OnEvents(events[i:j])
		if pollInterim && (i/chunk)%5 == 0 {
			_ = d.Interim(events[j-1].Cycle)
		}
	}
	return d.Finalize(end)
}

// marshalVerdict strips the streaming-only block and freezes the rest.
func marshalVerdict(t testing.TB, rep core.Report) []byte {
	t.Helper()
	rep.Streaming = nil
	rep.Metrics = nil
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestStreamingEquivalenceSynthetic sweeps chunk sizes and divisors
// over clean and fault-perturbed trains: the streaming verdict must
// match the batch verdict byte for byte in every combination, and
// polling Interim mid-run must not perturb the final verdict.
func TestStreamingEquivalenceSynthetic(t *testing.T) {
	const quanta = 40
	end := uint64(quanta) * testQuantum
	for _, tc := range []struct {
		name    string
		seed    uint64
		faulty  bool
		divisor int
		chunk   int
		interim bool
	}{
		{name: "clean-chunk1", seed: 1, chunk: 1},
		{name: "clean-chunk64", seed: 1, chunk: 64},
		{name: "clean-divisor4", seed: 2, divisor: 4, chunk: 32},
		{name: "faulty", seed: 3, faulty: true, chunk: 32},
		{name: "faulty-divisor2", seed: 4, faulty: true, divisor: 2, chunk: 7},
		{name: "interim-polling", seed: 5, chunk: 32, interim: true},
		{name: "faulty-interim", seed: 6, faulty: true, chunk: 13, interim: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			events := synthTrain(tc.seed, quanta, testQuantum)
			if tc.faulty {
				events = perturb(events, tc.seed+100)
			}
			cfg := core.DefaultDetectorConfig(testQuantum, 4)
			if tc.divisor > 0 {
				cfg.ObservationDivisor = tc.divisor
			}
			want := marshalVerdict(t, batchReport(t, events, cfg, end, tc.chunk))
			got := marshalVerdict(t, streamReport(t, events, Config{Detector: cfg}, end, tc.chunk, tc.interim))
			if !bytes.Equal(want, got) {
				t.Errorf("streaming verdict differs from batch\nbatch:  %s\nstream: %s", want, got)
			}
		})
	}
}

// TestStreamingBoundedRetention: with RetainWindows set, the Windows
// slice is capped but every verdict field — detection decision, best
// window, counts, degradation — matches the unbounded run.
func TestStreamingBoundedRetention(t *testing.T) {
	const quanta = 40
	end := uint64(quanta) * testQuantum
	events := synthTrain(9, quanta, testQuantum)
	cfg := core.DefaultDetectorConfig(testQuantum, 4)
	cfg.ObservationDivisor = 4

	full := streamReport(t, events, Config{Detector: cfg}, end, 32, false)
	bounded := streamReport(t, events, Config{Detector: cfg, RetainWindows: 3}, end, 32, false)

	if full.Oscillation == nil || bounded.Oscillation == nil {
		t.Fatal("missing oscillation verdicts")
	}
	if n := len(bounded.Oscillation.Windows); n > 3 {
		t.Errorf("bounded run retained %d windows, cap is 3", n)
	}
	if len(full.Oscillation.Windows) <= 3 {
		t.Skip("train too sparse to exceed the retention bound")
	}
	// The retained tail must be the suffix of the full list.
	fw, bw := full.Oscillation.Windows, bounded.Oscillation.Windows
	for i := range bw {
		want, _ := json.Marshal(fw[len(fw)-len(bw)+i])
		got, _ := json.Marshal(bw[i])
		if !bytes.Equal(want, got) {
			t.Errorf("retained window %d is not the full run's suffix", i)
		}
	}
	full.Oscillation.Windows, bounded.Oscillation.Windows = nil, nil
	a, b := marshalVerdict(t, full), marshalVerdict(t, bounded)
	if !bytes.Equal(a, b) {
		t.Errorf("bounded retention changed verdict fields\nfull:    %s\nbounded: %s", a, b)
	}
}

// TestStreamingInfoShape sanity-checks the evidence block itself.
func TestStreamingInfoShape(t *testing.T) {
	const quanta = 20
	end := uint64(quanta) * testQuantum
	events := synthTrain(11, quanta, testQuantum)
	cfg := core.DefaultDetectorConfig(testQuantum, 4)
	aud := newAuditor(t, testQuantum)
	d := New(aud, Config{Detector: cfg})
	d.OnEvents(events)
	d.SetShed(17)
	rep := d.Finalize(end)
	info := rep.Streaming
	if info == nil {
		t.Fatal("no streaming info")
	}
	if info.Quanta == 0 {
		t.Error("no quanta drained")
	}
	if info.EventsShed != 17 {
		t.Errorf("events shed = %d, want 17", info.EventsShed)
	}
	if info.PeakRetainedEvents == 0 {
		t.Error("peak retained events never tracked")
	}
	// One onset per monitored kind plus the conflict peak series.
	if len(info.Onsets) != 3 {
		t.Fatalf("got %d onset reports, want 3", len(info.Onsets))
	}
	kinds := map[trace.Kind]bool{}
	for _, o := range info.Onsets {
		kinds[o.Kind] = true
	}
	for _, k := range []trace.Kind{trace.KindBusLock, trace.KindDivContention, trace.KindConflictMiss} {
		if !kinds[k] {
			t.Errorf("no onset report for %s", k)
		}
	}
	if rep.Onset(trace.KindBusLock) == nil {
		t.Error("Report.Onset lookup failed for bus-lock")
	}
}
