package stream

import (
	"bytes"
	"testing"

	"cchunter/internal/core"
	"cchunter/internal/trace"
)

// FuzzStreamingMatchesBatch asserts the tentpole invariant over
// fuzzer-chosen trains: whatever event sequence arrives — including
// out-of-order timestamps the auditor must clamp — the streaming
// verdict equals the batch verdict byte for byte.
func FuzzStreamingMatchesBatch(f *testing.F) {
	f.Add(uint64(1), uint16(300), uint8(16), false)
	f.Add(uint64(7), uint16(900), uint8(3), true)
	f.Add(uint64(42), uint16(50), uint8(64), true)
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, chunkRaw uint8, faulty bool) {
		rng := splitmix(seed)
		events := make([]trace.Event, 0, n)
		var cycle uint64
		for i := 0; i < int(n); i++ {
			r := rng.next()
			cycle += r % 5000
			e := trace.Event{Cycle: cycle}
			switch r % 3 {
			case 0:
				e.Kind = trace.KindBusLock
				e.Actor = uint8(r>>8) % 4
			case 1:
				e.Kind = trace.KindDivContention
				e.Actor, e.Victim = uint8(r>>8)%4, uint8(r>>16)%4
			default:
				e.Kind = trace.KindConflictMiss
				e.Actor, e.Victim = uint8(r>>8)%4, uint8(r>>16)%4
				e.Unit = uint32(r>>24) % 128
			}
			if faulty && r%11 == 0 && e.Cycle > 10_000 {
				e.Cycle -= r % 10_000 // out-of-order delivery
			}
			events = append(events, e)
		}
		end := cycle + 1
		chunk := int(chunkRaw)%64 + 1
		cfg := core.DefaultDetectorConfig(testQuantum, 4)
		cfg.ObservationDivisor = int(seed%4) + 1

		want := marshalVerdict(t, batchReport(t, events, cfg, end, chunk))
		got := marshalVerdict(t, streamReport(t, events, Config{Detector: cfg}, end, chunk, seed%2 == 0))
		if !bytes.Equal(want, got) {
			t.Errorf("streaming verdict diverged from batch\nbatch:  %s\nstream: %s", want, got)
		}
	})
}
