// Package stream is the streaming half of the CC-Hunter software
// daemon: a bounded-memory detector that drains the CC-Auditor's
// buffers as the run progresses, renders verdicts mid-run, and reports
// *when* a covert transmission started — not just that one happened.
//
// The batch detector (internal/core) reads everything the auditor
// recorded at the end of a run; its memory grows with trace length.
// The streaming detector holds a ring of the last WindowQuanta quantum
// histograms and the conflict events of the currently open observation
// window, so its footprint is O(window) no matter how long the run is,
// and its final verdict is byte-identical to the batch path's.
package stream

import (
	"math"

	"cchunter/internal/core"
)

// CUSUMConfig tunes the change detector that turns a detection
// statistic's sample series into an onset time.
type CUSUMConfig struct {
	// Drift is the per-sample allowance k subtracted from each
	// deviation before accumulation: fluctuations smaller than Drift
	// (and baseline wander the EWMA tracks) never accumulate, which is
	// what separates a benign slow drift from a channel switching on.
	Drift float64
	// Threshold is the fixed firing level h for the cumulative sum
	// (ignored when Adaptive is set).
	Threshold float64
	// Adaptive replaces the fixed threshold with K·σ, where σ is the
	// EWMA estimate of the series' standard deviation — quiet series
	// fire on small excursions, noisy ones demand proportionally more
	// evidence.
	Adaptive bool
	// K is the adaptive threshold in baseline standard deviations.
	K float64
	// MinThreshold floors the adaptive threshold so a perfectly
	// constant warmup (σ = 0) does not fire on roundoff.
	MinThreshold float64
	// Alpha is the EWMA smoothing factor for the baseline mean and
	// variance (0 < Alpha <= 1; smaller tracks slower).
	Alpha float64
	// Warmup is how many leading samples establish the baseline before
	// the detector is willing to fire.
	Warmup int
}

// DefaultCUSUMConfig returns a change detector calibrated for the
// detection statistics this package feeds it: likelihood ratios and
// autocorrelation peaks, both in [0, 1], near-constant while a channel
// is silent.
func DefaultCUSUMConfig() CUSUMConfig {
	return CUSUMConfig{
		Drift:        0.05,
		Adaptive:     true,
		K:            6,
		MinThreshold: 0.2,
		Alpha:        0.05,
		Warmup:       8,
	}
}

// CUSUM is a one-sided cumulative-sum change detector over a scalar
// series: S ← max(0, S + (x − mean − Drift)), firing when S crosses
// the (possibly adaptive) threshold. The onset estimate is the classic
// CUSUM one — the sample at which S last left zero before the firing
// crossing; everything since that sample contributed to the alarm.
type CUSUM struct {
	cfg CUSUMConfig

	s       float64
	n       int
	mean    float64
	varEWMA float64

	// Candidate onset: where the current positive excursion began.
	excIndex int
	excCycle uint64
	inExc    bool

	fired      bool
	onsetIndex int
	onsetCycle uint64
	firedCycle uint64
	firedStat  float64
	firedThr   float64
	lastThr    float64
}

// NewCUSUM builds a change detector. Zero-value fields of cfg fall
// back to the defaults, so CUSUMConfig{} is usable.
func NewCUSUM(cfg CUSUMConfig) *CUSUM {
	def := DefaultCUSUMConfig()
	if cfg.Drift <= 0 {
		cfg.Drift = def.Drift
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = def.Alpha
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = def.Warmup
	}
	if cfg.Adaptive {
		if cfg.K <= 0 {
			cfg.K = def.K
		}
		if cfg.MinThreshold <= 0 {
			cfg.MinThreshold = def.MinThreshold
		}
	} else if cfg.Threshold <= 0 {
		cfg.Adaptive = true
		cfg.K = def.K
		cfg.MinThreshold = def.MinThreshold
	}
	return &CUSUM{cfg: cfg}
}

// Add consumes one sample stamped with its simulated cycle (cycles
// must be non-decreasing) and reports whether the detector fired on
// this sample. Once fired, the alarm latches; further samples keep the
// statistic series going but cannot un-fire it.
func (c *CUSUM) Add(x float64, cycle uint64) bool {
	i := c.n
	c.n++
	if i < c.cfg.Warmup {
		// Baseline establishment: running average, no change scoring.
		c.mean += (x - c.mean) / float64(i+1)
		d := x - c.mean
		c.varEWMA += (d*d - c.varEWMA) / float64(i+1)
		return false
	}
	dev := x - c.mean - c.cfg.Drift
	prev := c.s
	c.s += dev
	if c.s < 0 {
		c.s = 0
	}
	if prev == 0 && c.s > 0 {
		c.excIndex, c.excCycle, c.inExc = i, cycle, true
	} else if c.s == 0 {
		c.inExc = false
	}
	thr := c.cfg.Threshold
	if c.cfg.Adaptive {
		thr = c.cfg.K * math.Sqrt(c.varEWMA)
		if thr < c.cfg.MinThreshold {
			thr = c.cfg.MinThreshold
		}
	}
	c.lastThr = thr
	firedNow := false
	if !c.fired && c.s >= thr {
		c.fired, firedNow = true, true
		c.onsetIndex, c.onsetCycle = c.excIndex, c.excCycle
		if !c.inExc { // crossed in a single sample
			c.onsetIndex, c.onsetCycle = i, cycle
		}
		c.firedCycle, c.firedStat, c.firedThr = cycle, c.s, thr
	}
	// The baseline keeps tracking only while the detector is quiescent:
	// once an excursion is building, freezing the baseline stops the
	// change itself from being absorbed into "normal".
	if c.s == 0 {
		a := c.cfg.Alpha
		d := x - c.mean
		c.mean += a * d
		c.varEWMA = (1-a)*c.varEWMA + a*d*d
	}
	return firedNow
}

// Fired reports whether the detector has latched an alarm.
func (c *CUSUM) Fired() bool { return c.fired }

// Report renders the onset verdict (Kind left zero for the caller to
// stamp).
func (c *CUSUM) Report() core.OnsetReport {
	r := core.OnsetReport{
		Detected:  c.fired,
		Samples:   c.n,
		Statistic: c.s,
		Threshold: c.lastThr,
	}
	if c.fired {
		r.OnsetIndex = c.onsetIndex
		r.OnsetCycle = c.onsetCycle
		r.FiredCycle = c.firedCycle
		r.Statistic = c.firedStat
		r.Threshold = c.firedThr
	}
	return r
}
