package stream

import (
	"cchunter/internal/auditor"
	"cchunter/internal/core"
	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

// Config tunes the streaming daemon around a batch-equivalent
// detector configuration.
type Config struct {
	// Detector carries the same knobs the batch path uses; the final
	// verdict is rendered from them byte-identically.
	Detector core.DetectorConfig
	// RetainWindows bounds how many per-window oscillation analyses the
	// final verdict's Windows slice carries (keeping the most recent).
	// 0 retains every analysis, which makes the whole Report — Windows
	// slice included — byte-identical to the batch path; a bound keeps
	// memory O(RetainWindows) on arbitrarily long runs while the
	// verdict fields (Detected, Best, DetectedWindows, Degradation)
	// stay identical either way.
	RetainWindows int
	// SegmentLen is the chunk size of the segmented Wiener–Khinchin
	// estimate interim verdicts use for the still-open observation
	// window (default 2048). Final analyses always use the exact
	// correlogram.
	SegmentLen int
	// Cusum tunes the onset change detectors (zero value = defaults).
	Cusum CUSUMConfig
}

// kindState is the sliding burst-detection state for one monitored
// combinational unit: a ring of the last WindowQuanta quantum
// histograms — exactly the suffix AnalyzeBursts would slice from a
// full record list — plus an incrementally maintained merged histogram
// the sliding likelihood ratio is read from in O(bins) per quantum.
type kindState struct {
	kind    trace.Kind
	ring    []auditor.QuantumHistogram
	ringCap int // 0 = unbounded
	merged  *stats.Histogram
	cus     *CUSUM
	quanta  int
	lastLR  float64
}

func (ks *kindState) push(rec auditor.QuantumHistogram, quantumLen uint64) {
	ks.merged.Merge(rec.Hist)
	if ks.ringCap > 0 && len(ks.ring) == ks.ringCap {
		ks.merged.Unmerge(ks.ring[0].Hist)
		copy(ks.ring, ks.ring[1:])
		ks.ring[len(ks.ring)-1] = rec
	} else {
		ks.ring = append(ks.ring, rec)
	}
	ks.quanta++
	ks.lastLR = core.LikelihoodRatio(ks.merged, core.ThresholdDensity(ks.merged))
	ks.cus.Add(ks.lastLR, rec.Quantum*quantumLen)
}

// Detector is the streaming CC-Hunter daemon. It wraps a programmed
// auditor, registers as the simulator's event listener in the
// auditor's place (forwarding everything), and drains the auditor's
// buffers as the run progresses:
//
//   - per OS quantum, the recorded density histograms move into a
//     sliding ring of the last BurstConfig.WindowQuanta quanta and the
//     likelihood ratio over the ring's merged histogram is updated
//     incrementally;
//   - per observation window, the conflict train's closed window is
//     analyzed with the exact oscillation machinery and then trimmed,
//     so the train holds O(window) events;
//   - CUSUM change detectors over the likelihood-ratio and peak series
//     estimate each channel's onset cycle.
//
// Finalize renders a Report whose verdict fields are byte-identical to
// core.Detector.Analyze over the same run. Not safe for concurrent
// use; wrap it in an Ingest queue to decouple producers.
type Detector struct {
	aud  *auditor.Auditor
	cfg  Config
	dcfg core.DetectorConfig
	ws   *stats.Workspace

	quantumLen  uint64
	lastQuantum uint64
	kinds       []*kindState
	scratch     []auditor.QuantumHistogram

	oscOn           bool
	window          uint64
	curWs           uint64
	analyses        []core.OscillationAnalysis
	windowsAnalyzed int
	best            core.OscillationAnalysis
	bestOK          bool
	detectedWindows int
	peakRetained    int
	peakCusum       *CUSUM

	shed      uint64
	finalized bool
}

// New wraps an already-programmed auditor (Monitor/MonitorConflicts
// done) in a streaming daemon. Register the returned Detector — not
// the auditor — as the simulator's listener.
func New(aud *auditor.Auditor, cfg Config) *Detector {
	if aud == nil {
		panic("stream: detector needs an auditor")
	}
	if cfg.Detector.QuantumCycles == 0 {
		panic("stream: detector needs the quantum length")
	}
	if cfg.Detector.ObservationDivisor <= 0 {
		cfg.Detector.ObservationDivisor = 1
	}
	if cfg.SegmentLen <= 0 {
		cfg.SegmentLen = 2048
	}
	d := &Detector{
		aud:        aud,
		cfg:        cfg,
		dcfg:       cfg.Detector,
		quantumLen: cfg.Detector.QuantumCycles,
	}
	if d.dcfg.Oscillation.Workspace == nil {
		d.ws = stats.NewWorkspace()
		d.dcfg.Oscillation.Workspace = d.ws
	}
	if d.dcfg.Burst.Workspace == nil {
		// One k-means scratch for every interim and final burst
		// analysis this daemon ever runs; analyses are sequential, so
		// the borrow never overlaps.
		d.dcfg.Burst.Workspace = new(stats.KmeansWorkspace)
	}
	for _, kind := range core.BurstKinds {
		if aud.DeltaT(kind) == 0 {
			continue
		}
		bins := 1
		if h := aud.MergedHistogram(kind); h != nil {
			bins = h.NumBins()
		}
		d.kinds = append(d.kinds, &kindState{
			kind:    kind,
			ringCap: d.dcfg.Burst.WindowQuanta,
			merged:  stats.NewHistogram(bins),
			cus:     NewCUSUM(cfg.Cusum),
		})
	}
	if aud.ConflictTrain() != nil {
		d.oscOn = true
		d.window = d.quantumLen / uint64(d.dcfg.ObservationDivisor)
		if d.window == 0 {
			d.window = d.quantumLen
		}
		d.peakCusum = NewCUSUM(cfg.Cusum)
	}
	return d
}

// OnEvent implements trace.Listener.
func (d *Detector) OnEvent(e trace.Event) {
	d.aud.OnEvent(e)
	d.advance(e.Cycle)
}

// OnEvents implements trace.BatchListener: the auditor sweeps the
// whole batch first, then the daemon drains once at the batch's last
// cycle — the same state the per-event path reaches, met with one
// drain instead of len(events).
func (d *Detector) OnEvents(events []trace.Event) {
	if len(events) == 0 {
		return
	}
	d.aud.OnEvents(events)
	d.advance(events[len(events)-1].Cycle)
}

// advance drains whatever the auditor has finished recording below
// cycle: quantum histograms on quantum rolls, closed observation
// windows on the conflict train.
func (d *Detector) advance(cycle uint64) {
	if q := cycle / d.quantumLen; q != d.lastQuantum {
		d.lastQuantum = q
		d.drainQuanta()
	}
	if d.oscOn && cycle >= d.curWs+d.window {
		d.aud.ForceDrainConflicts()
		d.closeWindows()
	}
}

// drainQuanta moves newly recorded quantum histograms into each kind's
// sliding ring and updates its likelihood-ratio series.
func (d *Detector) drainQuanta() {
	for _, ks := range d.kinds {
		d.scratch = d.aud.DrainHistograms(ks.kind, d.scratch[:0])
		for _, rec := range d.scratch {
			ks.push(rec, d.quantumLen)
		}
	}
	d.scratch = d.scratch[:0]
}

// closeWindows analyzes every observation window the train has moved
// past. A window [ws, ws+w) is closed only once an event at or beyond
// its end is *recorded* (post-dedup, post-clamp): recorded cycles are
// monotonic, so nothing can land in the window afterwards and its
// analysis equals the batch one. The train is trimmed behind each
// closed window, which is the O(window) memory bound.
func (d *Detector) closeWindows() {
	train := d.aud.ConflictTrain()
	if n := train.Len(); n > d.peakRetained {
		d.peakRetained = n
	}
	for train.Len() > 0 && train.At(train.Len()-1).Cycle >= d.curWs+d.window {
		we := d.curWs + d.window
		d.analyzeWindow(train, d.curWs, we)
		d.curWs = we
		d.aud.TrimConflicts(we)
	}
}

// analyzeWindow runs the exact oscillation analysis over one closed
// window and folds it into the running verdict.
func (d *Detector) analyzeWindow(train *trace.Train, ws, we uint64) {
	w := train.Window(ws, we)
	if w.Len() == 0 {
		return
	}
	a := core.AnalyzeOscillation(w, d.dcfg.Oscillation)
	d.windowsAnalyzed++
	if d.cfg.RetainWindows > 0 && len(d.analyses) == d.cfg.RetainWindows {
		copy(d.analyses, d.analyses[1:])
		d.analyses[len(d.analyses)-1] = a
	} else {
		d.analyses = append(d.analyses, a)
	}
	if !d.bestOK {
		d.best, d.bestOK = a, true
	} else if core.BetterOscillation(a, d.best) {
		d.best = a
	}
	if a.Detected {
		d.detectedWindows++
	}
	d.peakCusum.Add(a.PeakValue, ws)
}

// SetUpstreamLoss updates the upstream (sensor-path) loss rate folded
// into every verdict's degradation diagnostics. The fault injector's
// counters are only final once the run ends, so the scenario sets this
// between the last event and Finalize.
func (d *Detector) SetUpstreamLoss(rate float64) { d.dcfg.UpstreamLossRate = rate }

// SetShed records how many upstream events were load-shed before they
// reached the daemon (an Ingest queue's count); the number folds into
// the verdict's Streaming evidence block. Call it before Finalize.
func (d *Detector) SetShed(n uint64) { d.shed = n }

// RetainedEvents reports how many conflict-train entries the daemon
// currently holds — the quantity the soak test pins to O(window).
func (d *Detector) RetainedEvents() int {
	if t := d.aud.ConflictTrain(); t != nil {
		return t.Len()
	}
	return 0
}

// Interim renders a mid-run verdict from everything drained so far:
// the sliding-ring burst analyses over completed quanta, the
// oscillation fold over closed windows, plus a segmented-correlogram
// estimate of the still-open window. It does not flush the auditor, so
// it never perturbs the final verdict.
func (d *Detector) Interim(cycle uint64) core.Report {
	rep := core.Report{Confidence: 1}
	for _, ks := range d.kinds {
		a := core.AnalyzeBursts(ks.ring, d.dcfg.Burst)
		integ := d.aud.Integrity(ks.kind)
		deg := core.NewDegradation(d.dcfg.UpstreamLossRate, integ.SaturationRate(), 0, integ.Windows)
		rep.Contention = append(rep.Contention, core.ContentionVerdict{Kind: ks.kind, Analysis: a, Degradation: deg})
		if a.Detected {
			rep.Detected = true
		}
		if deg.Confidence < rep.Confidence {
			rep.Confidence = deg.Confidence
		}
	}
	if d.oscOn {
		d.aud.ForceDrainConflicts()
		train := d.aud.ConflictTrain()
		v := &core.OscillationVerdict{}
		best, bestOK := d.best, d.bestOK
		detected := d.detectedWindows
		if open := train.Window(d.curWs, cycle+1); open.Len() > 0 {
			cfg := d.dcfg.Oscillation
			cfg.SegmentLen = d.cfg.SegmentLen
			a := core.AnalyzeOscillation(open, cfg)
			if !bestOK {
				best, bestOK = a, true
			} else if core.BetterOscillation(a, best) {
				best = a
			}
			if a.Detected {
				detected++
			}
		}
		if bestOK {
			v.Best = best
		}
		v.DetectedWindows = detected
		v.Detected = detected >= 1
		ci := d.aud.ConflictIntegrity()
		loss := 1 - (1-clamp01(d.dcfg.UpstreamLossRate))*(1-ci.LossRate())
		v.Degradation = core.NewDegradation(loss, 0, ci.ClampedTimestamps, ci.Recorded)
		rep.Oscillation = v
		if v.Detected {
			rep.Detected = true
		}
		if v.Degradation.Confidence < rep.Confidence {
			rep.Confidence = v.Degradation.Confidence
		}
	}
	rep.Streaming = d.streamingInfo()
	return rep
}

// Finalize flushes the auditor at endCycle, closes every remaining
// observation window, and renders the final verdict. The assembly
// mirrors core.Detector.Analyze operation for operation, so on the
// same event sequence the two reports' verdict fields are
// byte-identical (the streaming report additionally carries
// Report.Streaming, which the batch path leaves nil).
func (d *Detector) Finalize(endCycle uint64) core.Report {
	reg := d.dcfg.Metrics
	d.aud.Flush(endCycle)
	d.drainQuanta()
	if d.oscOn {
		train := d.aud.ConflictTrain()
		if n := train.Len(); n > d.peakRetained {
			d.peakRetained = n
		}
		for d.curWs < endCycle {
			we := d.curWs + d.window
			if we > endCycle {
				we = endCycle
			}
			d.analyzeWindow(train, d.curWs, we)
			d.curWs = we
			d.aud.TrimConflicts(we)
		}
	}
	d.finalized = true

	rep := core.Report{Confidence: 1}
	for _, ks := range d.kinds {
		a := core.AnalyzeBursts(ks.ring, d.dcfg.Burst)
		integ := d.aud.Integrity(ks.kind)
		deg := core.NewDegradation(d.dcfg.UpstreamLossRate, integ.SaturationRate(), 0, integ.Windows)
		rep.Contention = append(rep.Contention, core.ContentionVerdict{Kind: ks.kind, Analysis: a, Degradation: deg})
		if a.Detected {
			rep.Detected = true
		}
		if deg.Confidence < rep.Confidence {
			rep.Confidence = deg.Confidence
		}
	}
	if d.oscOn {
		v := &core.OscillationVerdict{Windows: d.analyses}
		if d.bestOK {
			v.Best = d.best
		}
		v.DetectedWindows = d.detectedWindows
		v.Detected = v.DetectedWindows >= 1
		ci := d.aud.ConflictIntegrity()
		loss := 1 - (1-clamp01(d.dcfg.UpstreamLossRate))*(1-ci.LossRate())
		v.Degradation = core.NewDegradation(loss, 0, ci.ClampedTimestamps, ci.Recorded)
		rep.Oscillation = v
		if v.Detected {
			rep.Detected = true
		}
		if v.Degradation.Confidence < rep.Confidence {
			rep.Confidence = v.Degradation.Confidence
		}
	}
	rep.Streaming = d.streamingInfo()
	if reg != nil {
		if d.ws != nil {
			fft, naive := d.ws.PathCounts()
			reg.Gauge("stats.autocorr.fft").Set(int64(fft))
			reg.Gauge("stats.autocorr.naive").Set(int64(naive))
		}
		reg.Counter("stream.windows_closed").Add(uint64(d.windowsAnalyzed))
		rep.Metrics = reg.Snapshot()
	}
	return rep
}

// streamingInfo assembles the streaming-only evidence block.
func (d *Detector) streamingInfo() *core.StreamingInfo {
	info := &core.StreamingInfo{
		WindowsAnalyzed:    d.windowsAnalyzed,
		WindowsRetained:    len(d.analyses),
		PeakRetainedEvents: d.peakRetained,
		EventsShed:         d.shed,
	}
	for _, ks := range d.kinds {
		if ks.quanta > info.Quanta {
			info.Quanta = ks.quanta
		}
		r := ks.cus.Report()
		r.Kind = ks.kind
		info.Onsets = append(info.Onsets, r)
	}
	if d.peakCusum != nil {
		r := d.peakCusum.Report()
		r.Kind = trace.KindConflictMiss
		info.Onsets = append(info.Onsets, r)
	}
	return info
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
