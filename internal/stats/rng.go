// Package stats provides the small statistical toolkit CC-Hunter's
// detection algorithms are built on: summary statistics, histograms,
// reference distributions (Poisson, normal), autocorrelation, a seeded
// deterministic random number generator, and a k-means clusterer used by
// the recurrent-burst pattern detector.
//
// Everything in this package is deterministic: no global state, no
// wall-clock time, no math/rand default source. Experiments that need
// randomness thread an explicit *stats.RNG through.
package stats

// RNG is a small deterministic pseudo-random number generator
// (xorshift64* with a splitmix64-seeded state). It is intentionally not
// cryptographic: its job is reproducible workloads and messages, so that
// every experiment in the repository regenerates bit-identical results.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded from seed. Two RNGs built from the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := SeededRNG(seed)
	return &r
}

// SeededRNG returns the generator for seed by value, for hot callers
// that want the state on their own stack instead of a fresh heap
// object per analysis. SeededRNG(s) and *NewRNG(s) are the same
// generator.
func SeededRNG(seed uint64) RNG {
	// splitmix64 step so that small seeds (0, 1, 2...) still produce
	// well-mixed initial states.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x853c49e6748fea9b
	}
	return RNG{state: z}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). A non-positive n returns
// 0 — the degenerate range has a single representable value, and the
// detection pipeline's supervision layer prefers a deterministic
// degraded draw over a crashed detector job.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bit returns a pseudo-random bit as 0 or 1.
func (r *RNG) Bit() int {
	return int(r.Uint64() >> 63)
}

// Bits returns n pseudo-random bits, most significant first, as a slice
// of 0/1 values. It is used to generate the random message patterns of
// the paper's Figure 12 experiment (256 random 64-bit messages).
func (r *RNG) Bits(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = r.Bit()
	}
	return out
}

// Uint64Bits packs the low 64 bits of a message into a []int of 0/1
// values, most significant bit first. It is handy for encoding a known
// 64-bit value (e.g. the paper's "randomly-chosen credit card number").
func Uint64Bits(v uint64) []int {
	out := make([]int, 64)
	for i := 0; i < 64; i++ {
		out[i] = int(v>>(63-i)) & 1
	}
	return out
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Poisson draws a Poisson-distributed value with mean lambda using
// Knuth's method for small lambda and a normal approximation for large
// lambda. It is used by workload models to generate background event
// traffic.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction.
	v := lambda + sqrt(lambda)*r.NormFloat64() + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// NormFloat64 returns a standard normally distributed value using the
// polar Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * sqrt(-2*ln(s)/s)
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -ln(u)
		}
	}
}
