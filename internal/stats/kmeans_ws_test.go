package stats

import (
	"math"
	"reflect"
	"testing"
)

// randomPoints draws an n×dim matrix from r, with a few coincident
// rows mixed in so degenerate geometry (zero distances, empty
// k-means++ mass) stays covered.
func randomPoints(r *RNG, n, dim int) [][]float64 {
	points := make([][]float64, n)
	for i := range points {
		p := make([]float64, dim)
		if i%7 == 3 && i > 0 {
			copy(p, points[i-1]) // duplicate point
		} else {
			for d := range p {
				p[d] = r.NormFloat64() * 5
			}
		}
		points[i] = p
	}
	return points
}

// TestKmeansWorkspaceMatchesReference differentially pins the
// workspace build against the retained allocating KMeans: same points,
// same seed, identical assignments, bit-identical centroids, identical
// cluster sizes and silhouette — across shapes, k values, and repeated
// reuse of one workspace (stale scratch must never leak through).
func TestKmeansWorkspaceMatchesReference(t *testing.T) {
	var ws KmeansWorkspace
	cases := []struct{ n, dim, k int }{
		{1, 1, 1}, {2, 1, 5}, {10, 2, 3}, {50, 4, 2},
		{100, 3, 8}, {17, 6, 4}, {64, 2, 64}, {5, 1, 2},
	}
	for ci, tc := range cases {
		seed := uint64(ci)*101 + 7
		points := randomPoints(NewRNG(seed), tc.n, tc.dim)

		wantAssign, wantCent, wantErr := KMeans(points, tc.k, 100, NewRNG(seed))
		gotAssign, gotCent, gotErr := ws.KMeans(points, tc.k, 100, NewRNG(seed))
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("n=%d dim=%d k=%d: err %v vs reference %v", tc.n, tc.dim, tc.k, gotErr, wantErr)
		}
		if !reflect.DeepEqual(gotAssign, wantAssign) {
			t.Errorf("n=%d dim=%d k=%d: assignments diverge from reference", tc.n, tc.dim, tc.k)
		}
		if !reflect.DeepEqual(gotCent, wantCent) {
			t.Errorf("n=%d dim=%d k=%d: centroids diverge from reference", tc.n, tc.dim, tc.k)
		}

		k := tc.k
		if k > tc.n {
			k = tc.n
		}
		if !reflect.DeepEqual(ws.ClusterSizes(gotAssign, k), ClusterSizes(wantAssign, k)) {
			t.Errorf("n=%d dim=%d k=%d: cluster sizes diverge", tc.n, tc.dim, tc.k)
		}
		wantSil := Silhouette(points, wantAssign, k)
		gotSil := ws.Silhouette(points, gotAssign, k)
		if gotSil != wantSil && !(math.IsNaN(gotSil) && math.IsNaN(wantSil)) {
			t.Errorf("n=%d dim=%d k=%d: silhouette %v, reference %v", tc.n, tc.dim, tc.k, gotSil, wantSil)
		}
	}
}

// TestKmeansWorkspaceEdgeCases pins the degenerate-input contract to
// the reference's: empty input and k<=0 return nils.
func TestKmeansWorkspaceEdgeCases(t *testing.T) {
	var ws KmeansWorkspace
	if a, c, err := ws.KMeans(nil, 3, 10, nil); a != nil || c != nil || err != nil {
		t.Error("empty input should return nils")
	}
	if a, c, err := ws.KMeans([][]float64{{1}}, 0, 10, nil); a != nil || c != nil || err != nil {
		t.Error("k=0 should return nils")
	}
	if _, _, err := ws.KMeans([][]float64{{1, 2}, {3}}, 2, 10, NewRNG(1)); err == nil {
		t.Error("ragged points should error like the reference")
	}
}

// TestKmeansWorkspaceAllocationFree pins the tentpole property: after
// one warm-up call, clustering (plus sizes and silhouette) through the
// workspace performs zero heap allocations.
func TestKmeansWorkspaceAllocationFree(t *testing.T) {
	var ws KmeansWorkspace
	points := randomPoints(NewRNG(3), 60, 4)
	ws.KMeans(points, 4, 100, NewRNG(3)) // warm-up sizes the arenas
	rng := SeededRNG(3)
	allocs := testing.AllocsPerRun(20, func() {
		r := rng // value copy: reset the stream without a heap RNG
		assign, _, err := ws.KMeans(points, 4, 100, &r)
		if err != nil {
			t.Fatal(err)
		}
		ws.Silhouette(points, assign, 4)
	})
	if allocs > 0 {
		t.Errorf("warmed workspace clustering allocates %.1f times per run, want 0", allocs)
	}
}

// FuzzKmeansWorkspace drives the workspace and the reference with
// fuzzer-chosen shapes and seeds, reusing one workspace across every
// input, and requires bit-identical results.
func FuzzKmeansWorkspace(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(2), uint8(3))
	f.Add(uint64(99), uint8(40), uint8(5), uint8(1))
	f.Add(uint64(0xbeef), uint8(3), uint8(1), uint8(7))
	var ws KmeansWorkspace
	f.Fuzz(func(t *testing.T, seed uint64, n, dim, k uint8) {
		pn := int(n%80) + 1
		pd := int(dim%6) + 1
		pk := int(k%12) + 1
		points := randomPoints(NewRNG(seed), pn, pd)
		wantAssign, wantCent, wantErr := KMeans(points, pk, 100, NewRNG(seed))
		gotAssign, gotCent, gotErr := ws.KMeans(points, pk, 100, NewRNG(seed))
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: %v vs %v", gotErr, wantErr)
		}
		if !reflect.DeepEqual(gotAssign, wantAssign) || !reflect.DeepEqual(gotCent, wantCent) {
			t.Fatalf("workspace diverges from reference (seed=%d n=%d dim=%d k=%d)", seed, pn, pd, pk)
		}
		kk := pk
		if kk > pn {
			kk = pn
		}
		wantSil := Silhouette(points, wantAssign, kk)
		gotSil := ws.Silhouette(points, gotAssign, kk)
		if gotSil != wantSil && !(math.IsNaN(gotSil) && math.IsNaN(wantSil)) {
			t.Fatalf("silhouette diverges: %v vs %v", gotSil, wantSil)
		}
	})
}
