package stats

import (
	"reflect"
	"testing"
)

// TestHistogramAddAllMatchesAdd pins the unrolled bulk fill against
// the scalar path, including the fallback cases: negative (invalid)
// and past-the-top (clamped) densities scattered through the slice so
// both the 4-wide fast groups and the scalar spill execute.
func TestHistogramAddAllMatchesAdd(t *testing.T) {
	rng := NewRNG(99)
	densities := make([]int, 1003) // odd length: exercises the tail loop
	for i := range densities {
		switch rng.Intn(10) {
		case 0:
			densities[i] = -1 - rng.Intn(5) // invalid
		case 1:
			densities[i] = 16 + rng.Intn(100) // clamped
		default:
			densities[i] = rng.Intn(16)
		}
	}
	scalar := NewHistogram(16)
	for _, d := range densities {
		scalar.Add(d)
	}
	bulk := NewHistogram(16)
	bulk.AddAll(densities)
	if !reflect.DeepEqual(bulk.Bins(), scalar.Bins()) {
		t.Errorf("AddAll bins = %v, want %v", bulk.Bins(), scalar.Bins())
	}
	if bulk.Clamped() != scalar.Clamped() || bulk.Invalid() != scalar.Invalid() {
		t.Errorf("AddAll clamped/invalid = %d/%d, want %d/%d",
			bulk.Clamped(), bulk.Invalid(), scalar.Clamped(), scalar.Invalid())
	}
}
