package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMeanInts(t *testing.T) {
	if got := MeanInts([]int{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("MeanInts = %v, want 2", got)
	}
	if got := MeanInts(nil); got != 0 {
		t.Errorf("MeanInts(nil) = %v, want 0", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3, 3, 3}); got != 0 {
		t.Errorf("Variance of constant = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -2, 7, 0})
	if min != -2 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-2, 7)", min, max)
	}
	imin, imax := MinMaxInts([]int{4, 4, 4})
	if imin != 4 || imax != 4 {
		t.Errorf("MinMaxInts = (%v, %v), want (4, 4)", imin, imax)
	}
}

func TestMinMaxEmptyIsZero(t *testing.T) {
	if min, max := MinMax(nil); min != 0 || max != 0 {
		t.Fatalf("MinMax(nil) = (%v, %v), want (0, 0)", min, max)
	}
	if min, max := MinMaxInts(nil); min != 0 || max != 0 {
		t.Fatalf("MinMaxInts(nil) = (%v, %v), want (0, 0)", min, max)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil, 50) = %v, want 0", got)
	}
	// Out-of-range percentiles clamp instead of panicking.
	if got := Percentile([]float64{1, 2, 3}, 150); got != 3 {
		t.Fatalf("Percentile(..., 150) = %v, want 3 (clamped to 100)", got)
	}
	// Mismatched correlation lengths use the common prefix.
	if got := Correlation([]float64{1, 2, 3, 99}, []float64{1, 2, 3}); got != 1 {
		t.Fatalf("Correlation over common prefix = %v, want 1", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v, want 0", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v, want 2", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("P99 single = %v, want 7", got)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Correlation(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Correlation(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v, want -1", got)
	}
	if got := Correlation(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("correlation with constant = %v, want 0", got)
	}
}

func TestCorrelationBounds(t *testing.T) {
	// Property: |corr| <= 1 for arbitrary non-degenerate inputs.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 8 + r.Intn(64)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		c := Correlation(xs, ys)
		return IsFinite(c) && c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Uint64() == c.Uint64() && i > 0 {
			continue
		}
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of range [0,1)", v)
		}
	}
}

func TestRNGBitsAndUint64Bits(t *testing.T) {
	bits := NewRNG(3).Bits(64)
	if len(bits) != 64 {
		t.Fatalf("Bits(64) len = %d", len(bits))
	}
	for _, b := range bits {
		if b != 0 && b != 1 {
			t.Fatalf("bit value %d", b)
		}
	}
	got := Uint64Bits(0x8000000000000001)
	if got[0] != 1 || got[63] != 1 {
		t.Errorf("Uint64Bits MSB/LSB wrong: %v %v", got[0], got[63])
	}
	for i := 1; i < 63; i++ {
		if got[i] != 0 {
			t.Errorf("Uint64Bits bit %d = %d, want 0", i, got[i])
		}
	}
}

func TestRNGPerm(t *testing.T) {
	p := NewRNG(5).Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 20 {
		t.Fatalf("permutation missing elements: %v", p)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	r := NewRNG(11)
	for _, lambda := range []float64{0.5, 3, 50} {
		n := 20000
		var sum int
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / float64(n)
		if !almostEqual(mean, lambda, 0.15*lambda+0.05) {
			t.Errorf("Poisson(%v) empirical mean %v", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive lambda should be 0")
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	n := 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}
