package stats

import (
	"math"
	"math/bits"
)

// fft.go implements the fast autocorrelogram path: a radix-2 iterative
// FFT plus the Wiener–Khinchin theorem. The naive §IV-D sum costs
// O(n·maxLag); computing the power spectrum of the zero-padded,
// mean-centered series and transforming back yields every lag at once
// in O(L log L), L being the padded transform length. The detectors
// autocorrelate event trains of 10^4–10^6 entries at lags up to
// thousands, which is where the O(n·maxLag) sum dominated ccrepro's
// wall-clock; see DESIGN.md §10 for the measured crossover.

// nextPow2 returns the smallest power of two >= n (minimum 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// fftCostFactor calibrates the FFT-path cost estimate against the
// naive path's n·(maxLag+1) multiply-adds: one butterfly (two complex
// mul/adds plus table loads) costs about this many naive inner-loop
// iterations. Measured with BenchmarkAutocorrelogramCrossover: across
// n = 1k..64k the break-even ratio n·maxLag / (L·log₂L) lands between
// 4.5 and 6.2 (see DESIGN.md §10); the exact value only moves the
// crossover by a few percent of runtime, both paths being correct.
const fftCostFactor = 5

// useFFT reports whether the FFT path is predicted to be cheaper than
// the naive sum for a series of length n at lags 0..maxLag.
func useFFT(n, maxLag int) bool {
	l := nextPow2(n + maxLag)
	logL := bits.Len(uint(l)) - 1
	return n*(maxLag+1) > fftCostFactor*l*logL
}

// fftRadix2 runs an in-place radix-2 FFT over the complex series
// (re, im), whose length must be a power of two. The twiddle table
// (twre, twim) holds e^{-2πik/L} for k in [0, L/2); invert selects the
// inverse transform (conjugated twiddles plus the 1/L scale).
func fftRadix2(re, im, twre, twim []float64, invert bool) {
	n := len(re)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		stride := n / length
		for start := 0; start < n; start += length {
			for k := 0; k < half; k++ {
				wr := twre[k*stride]
				wi := twim[k*stride]
				if invert {
					wi = -wi
				}
				i, j := start+k, start+k+half
				vr := re[j]*wr - im[j]*wi
				vi := re[j]*wi + im[j]*wr
				re[j], im[j] = re[i]-vr, im[i]-vi
				re[i], im[i] = re[i]+vr, im[i]+vi
			}
		}
	}
	if invert {
		inv := 1 / float64(n)
		for i := range re {
			re[i] *= inv
			im[i] *= inv
		}
	}
}

// Workspace holds the scratch buffers of the autocorrelogram fast
// path: the FFT's complex series and twiddle table, the mean-centered
// input copy, and the output correlogram. A caller that analyzes many
// trains (the detector daemon, the experiment sweeps) holds one
// Workspace and reuses it; after the first call at a given size,
// Workspace.Autocorrelogram performs no allocations at all.
//
// The zero value is ready to use. A Workspace is not safe for
// concurrent use; give each goroutine its own.
type Workspace struct {
	re, im     []float64 // FFT scratch, length = padded transform size
	twre, twim []float64 // twiddle table e^{-2πik/L}, length L/2
	twN        int       // transform size the table is built for
	centered   []float64 // mean-centered copy of the input
	cden       float64   // energy Σ(x-mean)² of the centered copy
	acf        []float64 // output buffer, returned to the caller
	segAcc     []float64 // Bartlett accumulation buffer (segmented path)

	// Path-selection tallies, read via PathCounts. Plain (non-atomic)
	// because a Workspace is single-goroutine by contract.
	fftCalls, naiveCalls uint64
}

// PathCounts reports how many Autocorrelogram calls took the FFT path
// versus the naive sum — the observability layer publishes these so a
// run can show which side of the crossover its trains landed on.
func (w *Workspace) PathCounts() (fft, naive uint64) {
	return w.fftCalls, w.naiveCalls
}

// ResetCounts zeroes the path-selection tallies. A pooled workspace is
// reset when it is handed to a new owner, so its published counts
// cover exactly that owner's calls — the same numbers a freshly
// allocated workspace would report. Scratch buffers keep their
// capacity; they carry no information across calls.
func (w *Workspace) ResetCounts() {
	w.fftCalls, w.naiveCalls = 0, 0
}

// NewWorkspace returns an empty workspace. Equivalent to new(Workspace);
// provided for call-site readability.
func NewWorkspace() *Workspace { return new(Workspace) }

// grow returns buf resized to n, reusing its capacity when possible.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// ensureFFT sizes the complex scratch and twiddle table for transform
// length nfft (a power of two).
func (w *Workspace) ensureFFT(nfft int) {
	w.re = grow(w.re, nfft)
	w.im = grow(w.im, nfft)
	if w.twN != nfft {
		half := nfft / 2
		if half < 1 {
			half = 1
		}
		w.twre = grow(w.twre, half)
		w.twim = grow(w.twim, half)
		for k := 0; k < half; k++ {
			// Each entry straight from cos/sin: no recurrence, so the
			// table's accuracy does not degrade with transform size.
			ang := -2 * math.Pi * float64(k) / float64(nfft)
			w.twre[k] = math.Cos(ang)
			w.twim[k] = math.Sin(ang)
		}
		w.twN = nfft
	}
}

// Autocorrelogram computes the autocorrelation coefficients for lags
// 0..maxLag inclusive, exactly as the package-level Autocorrelogram,
// selecting the FFT path above the measured crossover and reusing the
// workspace's buffers throughout.
//
// The returned slice is owned by the workspace and is overwritten by
// the next call; callers that keep a correlogram must copy it.
func (w *Workspace) Autocorrelogram(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		maxLag = 0
	}
	w.acf = grow(w.acf, maxLag+1)
	out := w.acf
	w.centered = grow(w.centered, n)
	den := centerInto(w.centered, xs)
	w.cden = den
	if den == 0 {
		for i := range out {
			out[i] = 0 // constant series has no autocorrelation
		}
		return out
	}
	if useFFT(n, maxLag) {
		w.fftCalls++
		w.fftAutocorr(w.centered, den, out)
	} else {
		w.naiveCalls++
		naiveAutocorr(w.centered, den, out)
	}
	return out
}

// SegmentedAutocorrelogram estimates the autocorrelation coefficients
// for lags 0..maxLag by Bartlett averaging: the series is cut into
// consecutive fixed-size segments, each segment's autocorrelogram is
// computed independently (through the same FFT/naive crossover and the
// same scratch buffers), and the per-lag coefficients are averaged.
// The streaming daemon uses this for mid-window estimates: each chunk
// costs O(segLen log segLen) and the estimate refines as chunks
// arrive, without ever holding (or transforming) the whole series. On
// a stationary series the average converges to the full correlogram;
// it is an estimate, not the exact §IV-D statistic, which the window
// close recomputes exactly.
//
// A trailing partial segment shorter than segLen is dropped; maxLag is
// clamped below segLen. When the series is shorter than one segment
// (or segLen is zero) the call falls through to the exact
// Autocorrelogram. The returned slice is owned by the workspace and is
// overwritten by the next segmented call.
func (w *Workspace) SegmentedAutocorrelogram(xs []float64, segLen, maxLag int) []float64 {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if segLen <= 0 || segLen >= n {
		return w.Autocorrelogram(xs, maxLag)
	}
	if maxLag >= segLen {
		maxLag = segLen - 1
	}
	if maxLag < 0 {
		maxLag = 0
	}
	w.segAcc = grow(w.segAcc, maxLag+1)
	acc := w.segAcc
	for i := range acc {
		acc[i] = 0
	}
	segments := 0
	for start := 0; start+segLen <= n; start += segLen {
		acf := w.Autocorrelogram(xs[start:start+segLen], maxLag)
		for p, v := range acf {
			acc[p] += v
		}
		segments++
	}
	inv := 1 / float64(segments)
	for p := range acc {
		acc[p] *= inv
	}
	return acc
}

// CenteredAutocorrelation returns r_p of the series most recently
// passed to Autocorrelogram, reusing its mean-centered copy and
// energy. The value is bit-identical to Autocorrelation(series, p):
// the centered entries are the very (x−mean) differences that call
// would recompute, and the numerator accumulates over ascending i in
// the same order, so every IEEE operation matches. The oscillation
// detector uses this for harmonic probes beyond the correlogram's
// maxLag, which previously re-derived the mean and the energy for
// every probed lag (≈40% of the cache-channel figure's profile).
func (w *Workspace) CenteredAutocorrelation(p int) float64 {
	n := len(w.centered)
	if p < 0 || p >= n || w.cden == 0 {
		return 0
	}
	c := w.centered
	var num float64
	for i := 0; i+p < n; i++ {
		num += c[i] * c[i+p]
	}
	return num / w.cden
}

// fftAutocorr fills out[p] = r_p for the centered series via the
// Wiener–Khinchin theorem. Zero-padding to L >= n+maxLag keeps the
// circular correlation's wraparound terms out of the lags we read: the
// alias of lag p lands at lag L-p, which stays above maxLag for every
// p <= maxLag. Both paths normalize by the directly computed energy
// den = Σd² (not the FFT's own c[0]), so they agree to roundoff and
// degrade identically on near-constant series.
func (w *Workspace) fftAutocorr(centered []float64, den float64, out []float64) {
	n := len(centered)
	maxLag := len(out) - 1
	nfft := nextPow2(n + maxLag)
	w.ensureFFT(nfft)
	re, im := w.re, w.im
	copy(re, centered)
	for i := n; i < nfft; i++ {
		re[i] = 0
	}
	for i := range im {
		im[i] = 0
	}
	fftRadix2(re, im, w.twre, w.twim, false)
	for i := 0; i < nfft; i++ {
		re[i] = re[i]*re[i] + im[i]*im[i] // power spectrum
		im[i] = 0
	}
	fftRadix2(re, im, w.twre, w.twim, true)
	for p := 0; p <= maxLag; p++ {
		out[p] = re[p] / den
	}
}

// naiveAutocorr is the direct §IV-D sum over a centered series, shared
// by the small-input path and the FFT oracle tests.
func naiveAutocorr(centered []float64, den float64, out []float64) {
	n := len(centered)
	for p := range out {
		var num float64
		for i := 0; i+p < n; i++ {
			num += centered[i] * centered[i+p]
		}
		out[p] = num / den
	}
}

// centerInto writes xs - mean(xs) into dst (which must have the same
// length) and returns the energy Σ(x-mean)² — the §IV-D denominator —
// in the same pass.
func centerInto(dst, xs []float64) float64 {
	m := Mean(xs)
	var den float64
	for i, x := range xs {
		d := x - m
		dst[i] = d
		den += d * d
	}
	return den
}

// AutocorrelogramNaive always takes the direct O(n·maxLag) path. It is
// the property-test oracle for the FFT path and the baseline the
// BenchmarkAutocorrelogram speedup is measured against; detection code
// should call Autocorrelogram (or a Workspace), which select the
// faster path automatically.
func AutocorrelogramNaive(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		maxLag = 0
	}
	out := make([]float64, maxLag+1)
	centered := make([]float64, n)
	den := centerInto(centered, xs)
	if den == 0 {
		return out
	}
	naiveAutocorr(centered, den, out)
	return out
}
