package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeSeries turns fuzz bytes into a float64 series, sanitizing
// non-finite values the way any real consumer of telemetry must: the
// autocorrelation math is only specified over finite inputs.
func decodeSeries(data []byte) []float64 {
	var xs []float64
	for len(data) >= 8 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		// Bound magnitudes so squared sums stay finite.
		if v > 1e9 {
			v = 1e9
		} else if v < -1e9 {
			v = -1e9
		}
		xs = append(xs, v)
	}
	return xs
}

// FuzzAutocorrelation asserts the §IV-D statistic never panics and
// stays bounded, whatever series a corrupted sensor path produces.
// The seed corpus mirrors the fault injector's corruption modes:
// clean periodicity, drops (zeroed samples), duplication (repeated
// samples), saturation (clipped plateaus), and jitter (perturbed).
func FuzzAutocorrelation(f *testing.F) {
	encode := func(xs []float64) []byte {
		out := make([]byte, 8*len(xs))
		for i, v := range xs {
			binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
		}
		return out
	}
	clean := make([]float64, 64)
	dropped := make([]float64, 64)
	duplicated := make([]float64, 64)
	saturated := make([]float64, 64)
	jittered := make([]float64, 64)
	r := NewRNG(1)
	for i := range clean {
		v := math.Sin(float64(i) / 4)
		clean[i] = v
		if r.Float64() < 0.2 {
			dropped[i] = 0
		} else {
			dropped[i] = v
		}
		duplicated[i] = clean[i/2*2]
		if v > 0.5 {
			saturated[i] = 0.5
		} else {
			saturated[i] = v
		}
		jittered[i] = v + (r.Float64()-0.5)/4
	}
	for _, seed := range [][]float64{clean, dropped, duplicated, saturated, jittered, {}, {1}, {2, 2, 2}} {
		f.Add(encode(seed), 5)
	}

	f.Fuzz(func(t *testing.T, data []byte, lag int) {
		xs := decodeSeries(data)
		if lag > 1<<20 || lag < -(1<<20) {
			lag %= 1 << 20
		}
		r := Autocorrelation(xs, lag)
		if math.IsNaN(r) || r < -1.000001 || r > 1.000001 {
			t.Fatalf("Autocorrelation(%d samples, lag %d) = %v, outside [-1, 1]", len(xs), lag, r)
		}
		maxLag := lag
		if maxLag < 0 {
			maxLag = -maxLag
		}
		acf := Autocorrelogram(xs, maxLag)
		if len(xs) > 0 && len(acf) == 0 {
			t.Fatal("non-empty series produced empty autocorrelogram")
		}
		for p, v := range acf {
			if math.IsNaN(v) || v < -1.000001 || v > 1.000001 {
				t.Fatalf("acf[%d] = %v, outside [-1, 1]", p, v)
			}
		}
		// Peaks must only report lags that exist.
		for _, pk := range Peaks(acf, 0.1) {
			if pk.Lag <= 0 || pk.Lag >= len(acf) {
				t.Fatalf("peak at impossible lag %d of %d", pk.Lag, len(acf))
			}
		}
	})
}

// FuzzHistogramAdd asserts density histograms clamp instead of
// overflowing whatever density sequence arrives.
func FuzzHistogramAdd(f *testing.F) {
	f.Add([]byte{0, 1, 2, 255}, 8)
	f.Add([]byte{128, 128, 128}, 1)
	f.Fuzz(func(t *testing.T, data []byte, bins int) {
		bins = bins%1024 + 1
		if bins <= 0 {
			bins += 1024
		}
		h := NewHistogram(bins)
		var n uint64
		for _, b := range data {
			h.Add(int(b) * int(b)) // densities up to 65025, past any bin count
			n++
		}
		if h.Total() != n {
			t.Fatalf("total %d after %d adds", h.Total(), n)
		}
		if mx := h.NonZeroMax(); mx >= bins {
			t.Fatalf("bin index %d outside %d bins", mx, bins)
		}
	})
}
