package stats

import (
	"errors"
	"fmt"
)

// ErrBadInput is wrapped by every input validation error in this
// package, matching the ErrBadConfig convention of the auditor and
// fault-injector packages: callers test with errors.Is and degrade
// instead of crashing.
var ErrBadInput = errors.New("stats: bad input")

// KMeans clusters fixed-dimension float vectors with Lloyd's algorithm.
// The recurrent-burst detector (§IV-B step 5) discretizes each quantum's
// event-density histogram into a short string and clusters the string
// feature vectors to find recurring burst shapes across a 512-quantum
// window. Initialization is deterministic k-means++ driven by the
// provided RNG, so detection runs are reproducible.
//
// It returns the cluster assignment for each point and the final
// centroids. k is clamped to len(points); empty input returns nils.
// Points of mixed dimensionality are an ErrBadInput: there is no
// meaningful distance between them.
func KMeans(points [][]float64, k int, maxIter int, rng *RNG) (assign []int, centroids [][]float64, err error) {
	n := len(points)
	if n == 0 || k <= 0 {
		return nil, nil, nil
	}
	if k > n {
		k = n
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, nil, fmt.Errorf("%w: KMeans point %d has dimension %d, want %d",
				ErrBadInput, i, len(p), dim)
		}
	}
	centroids = kmeansppInit(points, k, rng)
	assign = make([]int, n)
	counts := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, sqDist(p, centroids[0])
			for c := 1; c < k; c++ {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				if assign[i] != best {
					changed = true
				}
				assign[i] = best
			}
		}
		if iter > 0 && !changed {
			break
		}
		// Recompute centroids.
		for c := range centroids {
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
			counts[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				centroids[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster on the farthest point from
				// its centroid; keeps k clusters alive deterministically.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], points[far])
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range centroids[c] {
				centroids[c][d] *= inv
			}
		}
	}
	return assign, centroids, nil
}

// kmeansppInit chooses k starting centroids with the k-means++ weighting.
func kmeansppInit(points [][]float64, k int, rng *RNG) [][]float64 {
	if rng == nil {
		rng = NewRNG(1)
	}
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		var sum float64
		for i, p := range points {
			best := sqDist(p, centroids[0])
			for _, c := range centroids[1:] {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		idx := 0
		if sum > 0 {
			target := rng.Float64() * sum
			var acc float64
			for i, d := range d2 {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
		} else {
			idx = rng.Intn(n)
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ClusterSizes returns how many points landed in each of k clusters.
func ClusterSizes(assign []int, k int) []int {
	sizes := make([]int, k)
	for _, a := range assign {
		if a >= 0 && a < k {
			sizes[a]++
		}
	}
	return sizes
}

// Silhouette returns the mean silhouette coefficient of a clustering, a
// quick quality measure in [-1, 1] used by tests to sanity-check that
// the recurrence clusters are actually compact.
func Silhouette(points [][]float64, assign []int, k int) float64 {
	n := len(points)
	if n < 2 || k < 2 {
		return 0
	}
	sizes := ClusterSizes(assign, k)
	var total float64
	counted := 0
	for i := range points {
		ci := assign[i]
		if sizes[ci] < 2 {
			continue // silhouette undefined for singleton clusters
		}
		var a float64
		b := -1.0
		meanTo := make([]float64, k)
		cnt := make([]int, k)
		for j := range points {
			if i == j {
				continue
			}
			d := sqrt(sqDist(points[i], points[j]))
			meanTo[assign[j]] += d
			cnt[assign[j]]++
		}
		for c := 0; c < k; c++ {
			if cnt[c] == 0 {
				continue
			}
			m := meanTo[c] / float64(cnt[c])
			if c == ci {
				a = m
			} else if b < 0 || m < b {
				b = m
			}
		}
		if b < 0 {
			continue
		}
		den := a
		if b > den {
			den = b
		}
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
