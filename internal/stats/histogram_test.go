package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramAddAndBins(t *testing.T) {
	h := NewHistogram(8)
	h.Add(0)
	h.Add(0)
	h.Add(3)
	h.AddN(5, 4)
	if h.Bin(0) != 2 || h.Bin(3) != 1 || h.Bin(5) != 4 {
		t.Errorf("bins wrong: %v", h.Bins())
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if h.NumBins() != 8 {
		t.Errorf("NumBins = %d", h.NumBins())
	}
	if h.Bin(-1) != 0 || h.Bin(100) != 0 {
		t.Error("out-of-range Bin should be 0")
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(4)
	h.Add(10) // clamps into bin 3
	h.AddN(99, 2)
	if h.Bin(3) != 3 {
		t.Errorf("clamped mass = %d, want 3", h.Bin(3))
	}
	if h.Clamped() != 3 {
		t.Errorf("Clamped = %d, want 3", h.Clamped())
	}
}

func TestHistogramDegradedInputs(t *testing.T) {
	// Zero bins clamp to one usable bin.
	h := NewHistogram(0)
	if h.NumBins() != 1 {
		t.Errorf("NewHistogram(0) has %d bins, want 1", h.NumBins())
	}
	h.Add(3)
	if h.Bin(0) != 1 || h.Clamped() != 1 {
		t.Errorf("1-bin histogram: bin0=%d clamped=%d, want 1,1", h.Bin(0), h.Clamped())
	}

	// Negative densities are tallied as invalid, never recorded as mass.
	h = NewHistogram(4)
	h.Add(-1)
	h.AddN(-7, 3)
	if h.Total() != 0 || h.Invalid() != 4 {
		t.Errorf("negative adds: total=%d invalid=%d, want 0,4", h.Total(), h.Invalid())
	}

	// Merging a deeper histogram folds its out-of-range mass into the
	// top bin as clamped mass; a shallower one merges in place.
	a := NewHistogram(4)
	deep := NewHistogram(6)
	deep.Add(5)
	deep.Add(1)
	a.Merge(deep)
	if a.Bin(3) != 1 || a.Bin(1) != 1 || a.Clamped() != 1 {
		t.Errorf("deep merge: bins=%v clamped=%d, want mass at 1 and 3, clamped 1", a.Bins(), a.Clamped())
	}
	shallow := NewHistogram(2)
	shallow.Add(1)
	a.Merge(shallow)
	if a.Bin(1) != 2 {
		t.Errorf("shallow merge: bin1=%d, want 2", a.Bin(1))
	}
}

func TestHistogramMergeAndClone(t *testing.T) {
	a := NewHistogram(6)
	a.Add(1)
	a.Add(5)
	b := NewHistogram(6)
	b.Add(1)
	b.AddN(20, 2) // clamped
	a.Merge(b)
	if a.Bin(1) != 2 || a.Bin(5) != 3 || a.Clamped() != 2 {
		t.Errorf("merge wrong: %v clamped=%d", a.Bins(), a.Clamped())
	}
	a.Merge(nil) // no-op
	c := a.Clone()
	c.Add(2)
	if a.Bin(2) != 0 {
		t.Error("Clone shares storage with original")
	}
}

func TestHistogramMeanDensity(t *testing.T) {
	h := NewHistogram(16)
	h.AddN(0, 10)
	h.AddN(10, 10)
	if got := h.MeanDensity(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("MeanDensity = %v, want 5", got)
	}
	if got := h.MeanDensityFrom(1); !almostEqual(got, 10, 1e-12) {
		t.Errorf("MeanDensityFrom(1) = %v, want 10", got)
	}
	if got := h.MeanDensityFrom(11); got != 0 {
		t.Errorf("MeanDensityFrom past data = %v, want 0", got)
	}
	if got := NewHistogram(4).MeanDensity(); got != 0 {
		t.Errorf("empty MeanDensity = %v", got)
	}
}

func TestHistogramNonZeroMaxAndReset(t *testing.T) {
	h := NewHistogram(8)
	if h.NonZeroMax() != -1 {
		t.Error("empty histogram NonZeroMax should be -1")
	}
	h.Add(2)
	h.Add(6)
	if h.NonZeroMax() != 6 {
		t.Errorf("NonZeroMax = %d, want 6", h.NonZeroMax())
	}
	h.Reset()
	if h.Total() != 0 || h.Clamped() != 0 || h.NonZeroMax() != -1 {
		t.Error("Reset did not clear state")
	}
}

func TestHistogramTotalFrom(t *testing.T) {
	h := NewHistogram(8)
	h.AddN(0, 5)
	h.AddN(3, 2)
	h.AddN(7, 1)
	if got := h.TotalFrom(1); got != 3 {
		t.Errorf("TotalFrom(1) = %d, want 3", got)
	}
	if got := h.TotalFrom(-5); got != 8 {
		t.Errorf("TotalFrom(-5) = %d, want 8", got)
	}
}

func TestHistogramTotalInvariant(t *testing.T) {
	// Property: Total always equals the number of Add calls.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		h := NewHistogram(1 + r.Intn(64))
		n := r.Intn(500)
		for i := 0; i < n; i++ {
			h.Add(r.Intn(100))
		}
		return h.Total() == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(4)
	if got := h.String(); got != "Histogram{empty}" {
		t.Errorf("empty String = %q", got)
	}
	h.AddN(1, 3)
	h.Add(9)
	s := h.String()
	if !strings.Contains(s, "total=4") || !strings.Contains(s, "clamped=1") {
		t.Errorf("String missing totals: %q", s)
	}
}

func TestHistogramFloats(t *testing.T) {
	h := NewHistogram(3)
	h.Add(0)
	h.AddN(2, 5)
	f := h.Floats()
	if len(f) != 3 || f[0] != 1 || f[1] != 0 || f[2] != 5 {
		t.Errorf("Floats = %v", f)
	}
}
