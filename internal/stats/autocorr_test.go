package stats

import (
	"testing"
	"testing/quick"
)

func TestAutocorrelationLag0(t *testing.T) {
	xs := []float64{1, 3, 2, 5, 4, 6}
	if got := Autocorrelation(xs, 0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("r_0 = %v, want 1", got)
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	xs := []float64{4, 4, 4, 4}
	for p := 0; p < 4; p++ {
		if got := Autocorrelation(xs, p); got != 0 {
			t.Errorf("constant series r_%d = %v, want 0", p, got)
		}
	}
}

func TestAutocorrelationOutOfRange(t *testing.T) {
	xs := []float64{1, 2, 3}
	if Autocorrelation(xs, -1) != 0 || Autocorrelation(xs, 3) != 0 {
		t.Error("out-of-range lags should return 0")
	}
}

func TestAutocorrelationPeriodicSignal(t *testing.T) {
	// Alternating 0/1 signal: strong positive correlation at even lags,
	// strong negative at odd lags.
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	if r2 := Autocorrelation(xs, 2); r2 < 0.9 {
		t.Errorf("r_2 of alternating series = %v, want > 0.9", r2)
	}
	if r1 := Autocorrelation(xs, 1); r1 > -0.9 {
		t.Errorf("r_1 of alternating series = %v, want < -0.9", r1)
	}
}

func TestAutocorrelogramPeriodDetection(t *testing.T) {
	// Period-16 square wave: the autocorrelogram must peak at lag 16.
	xs := make([]float64, 512)
	for i := range xs {
		if i%16 < 8 {
			xs[i] = 1
		}
	}
	acf := Autocorrelogram(xs, 64)
	if len(acf) != 65 {
		t.Fatalf("acf length %d, want 65", len(acf))
	}
	if !almostEqual(acf[0], 1, 1e-12) {
		t.Errorf("acf[0] = %v, want 1", acf[0])
	}
	peaks := Peaks(acf, 0.5)
	found := false
	for _, p := range peaks {
		if p.Lag == 16 {
			found = true
		}
	}
	if !found {
		t.Errorf("no peak at lag 16; peaks = %v", peaks)
	}
}

func TestAutocorrelogramEdgeCases(t *testing.T) {
	if Autocorrelogram(nil, 10) != nil {
		t.Error("empty series should give nil")
	}
	acf := Autocorrelogram([]float64{1, 2}, 100)
	if len(acf) != 2 {
		t.Errorf("maxLag should clamp to n-1, got len %d", len(acf))
	}
	acf = Autocorrelogram([]float64{5, 5, 5}, -2)
	if len(acf) != 1 || acf[0] != 0 {
		t.Errorf("constant series / negative lag handling wrong: %v", acf)
	}
}

func TestAutocorrelogramMatchesSingleLag(t *testing.T) {
	r := NewRNG(21)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Float64()
	}
	acf := Autocorrelogram(xs, 50)
	for p := 0; p <= 50; p++ {
		if want := Autocorrelation(xs, p); !almostEqual(acf[p], want, 1e-9) {
			t.Fatalf("acf[%d] = %v, single-lag = %v", p, acf[p], want)
		}
	}
}

func TestAutocorrelationBounded(t *testing.T) {
	// Property: |r_p| <= 1 for random series and random lags.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 16 + r.Intn(128)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		p := r.Intn(n)
		v := Autocorrelation(xs, p)
		return IsFinite(v) && v >= -1.0000001 && v <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeaksPlateauAndThreshold(t *testing.T) {
	acf := []float64{1, 0.2, 0.8, 0.8, 0.1, 0.9, 0.05}
	peaks := Peaks(acf, 0.7)
	if len(peaks) != 2 {
		t.Fatalf("peaks = %v, want 2 entries", peaks)
	}
	if peaks[0].Lag != 2 || peaks[1].Lag != 5 {
		t.Errorf("peak lags = %d,%d want 2,5", peaks[0].Lag, peaks[1].Lag)
	}
	if got := Peaks(acf, 0.95); len(got) != 0 {
		t.Errorf("threshold 0.95 should remove all peaks, got %v", got)
	}
}

func TestPeaksEndOfSeries(t *testing.T) {
	// A rising final point counts as a peak (series end treated as
	// falling edge).
	acf := []float64{1, 0.1, 0.6}
	peaks := Peaks(acf, 0.5)
	if len(peaks) != 1 || peaks[0].Lag != 2 {
		t.Errorf("end-of-series peak not detected: %v", peaks)
	}
}

func TestWhiteNoiseHasNoStrongPeaks(t *testing.T) {
	r := NewRNG(99)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	acf := Autocorrelogram(xs, 512)
	for p := 1; p < len(acf); p++ {
		if abs(acf[p]) > 0.2 {
			t.Fatalf("white noise acf[%d] = %v, |r| should stay small", p, acf[p])
		}
	}
}
