package stats

import "math"

// Thin wrappers so the rest of the package reads tersely; they also give
// one place to swap in fixed-point math if the detector is ever ported
// to a no-FPU environment (the CC-Auditor software daemon of §V-B runs
// on a host core, so float64 is fine here).
func exp(x float64) float64  { return math.Exp(x) }
func ln(x float64) float64   { return math.Log(x) }
func sqrt(x float64) float64 { return math.Sqrt(x) }
func abs(x float64) float64  { return math.Abs(x) }

// IsFinite reports whether x is neither NaN nor infinite.
func IsFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
