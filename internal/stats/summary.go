package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanInts returns the arithmetic mean of xs, or 0 for an empty slice.
func MeanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (not sample variance);
// the detector always works on complete observation windows, so there is
// no sampling correction to make. It returns 0 for fewer than one value.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values in xs, or (0, 0) for
// an empty slice — a truncated sensor path can legitimately deliver an
// empty window, and an analysis over it must degrade, not crash.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// MinMaxInts returns the smallest and largest values in xs, or (0, 0)
// for an empty slice (see MinMax).
func MinMaxInts(xs []int) (min, max int) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. An empty slice returns 0 and an
// out-of-range p is clamped into [0, 100]: percentile queries run over
// data a degraded sensor path produced, and must not crash on it.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if len(c) == 1 {
		return c[0]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Correlation returns the Pearson correlation coefficient between xs and
// ys. Mismatched lengths correlate the common prefix (a truncated series
// still carries its shape); it returns 0 when the overlap is empty or
// either series has zero variance (no linear relationship measurable).
func Correlation(xs, ys []float64) float64 {
	if len(ys) < len(xs) {
		xs = xs[:len(ys)]
	} else if len(xs) < len(ys) {
		ys = ys[:len(xs)]
	}
	if len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / sqrt(sxx*syy)
}
