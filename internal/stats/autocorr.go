package stats

// Autocorrelation implements the autocorrelation coefficient of §IV-D:
//
//	r_p = Σ_{i=1..n-p} (X_i - X̄)(X_{i+p} - X̄)  /  Σ_{i=1..n} (X_i - X̄)²
//
// for a single lag p. It returns 0 when the series is constant (zero
// denominator) or when p is out of the usable range [0, len(xs)-1].
// Numerator and denominator accumulate in one fused walk after the
// mean, matching the centered pass Autocorrelogram's paths share.
func Autocorrelation(xs []float64, p int) float64 {
	n := len(xs)
	if p < 0 || p >= n {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i, x := range xs {
		d := x - m
		den += d * d
		if i+p < n {
			num += d * (xs[i+p] - m)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Autocorrelogram returns the autocorrelation coefficients for lags
// 0..maxLag inclusive (out[0] is always 1 for a non-constant series).
// This is the chart the oscillatory-pattern detector inspects for
// periodic peaks. maxLag is clamped to len(xs)-1.
//
// Above the measured size crossover the Wiener–Khinchin FFT path
// (O(n log n)) is selected automatically; below it the direct §IV-D
// sum runs (see fft.go and DESIGN.md §10). Callers on a hot path
// should hold a Workspace instead, which computes the same values
// without allocating.
func Autocorrelogram(xs []float64, maxLag int) []float64 {
	var w Workspace
	// The workspace is function-local, so handing its output buffer to
	// the caller is safe: nothing else will overwrite it.
	return w.Autocorrelogram(xs, maxLag)
}

// Peak describes a local maximum in an autocorrelogram.
type Peak struct {
	Lag   int     // lag at which the peak occurs
	Value float64 // autocorrelation coefficient at the peak
}

// Peaks returns the local maxima of an autocorrelogram whose value is at
// least minValue, skipping lag 0 (which is trivially 1). A point is a
// local maximum when it is strictly greater than its left neighbour and
// at least its right neighbour; plateaus report their left edge.
func Peaks(acf []float64, minValue float64) []Peak {
	var out []Peak
	for i := 1; i < len(acf); i++ {
		left := acf[i-1]
		right := left // treat the series end as a falling edge
		if i+1 < len(acf) {
			right = acf[i+1]
		}
		if acf[i] > left && acf[i] >= right && acf[i] >= minValue {
			out = append(out, Peak{Lag: i, Value: acf[i]})
		}
	}
	return out
}
