package stats

// Autocorrelation implements the autocorrelation coefficient of §IV-D:
//
//	r_p = Σ_{i=1..n-p} (X_i - X̄)(X_{i+p} - X̄)  /  Σ_{i=1..n} (X_i - X̄)²
//
// for a single lag p. It returns 0 when the series is constant (zero
// denominator) or when p is out of the usable range [0, len(xs)-1].
func Autocorrelation(xs []float64, p int) float64 {
	n := len(xs)
	if p < 0 || p >= n {
		return 0
	}
	m := Mean(xs)
	var den float64
	for _, x := range xs {
		d := x - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	var num float64
	for i := 0; i+p < n; i++ {
		num += (xs[i] - m) * (xs[i+p] - m)
	}
	return num / den
}

// Autocorrelogram returns the autocorrelation coefficients for lags
// 0..maxLag inclusive (out[0] is always 1 for a non-constant series).
// This is the chart the oscillatory-pattern detector inspects for
// periodic peaks. maxLag is clamped to len(xs)-1.
func Autocorrelogram(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		maxLag = 0
	}
	out := make([]float64, maxLag+1)
	m := Mean(xs)
	centered := make([]float64, n)
	var den float64
	for i, x := range xs {
		centered[i] = x - m
		den += centered[i] * centered[i]
	}
	if den == 0 {
		return out // all zeros: constant series has no autocorrelation
	}
	for p := 0; p <= maxLag; p++ {
		var num float64
		for i := 0; i+p < n; i++ {
			num += centered[i] * centered[i+p]
		}
		out[p] = num / den
	}
	return out
}

// Peak describes a local maximum in an autocorrelogram.
type Peak struct {
	Lag   int     // lag at which the peak occurs
	Value float64 // autocorrelation coefficient at the peak
}

// Peaks returns the local maxima of an autocorrelogram whose value is at
// least minValue, skipping lag 0 (which is trivially 1). A point is a
// local maximum when it is strictly greater than its left neighbour and
// at least its right neighbour; plateaus report their left edge.
func Peaks(acf []float64, minValue float64) []Peak {
	var out []Peak
	for i := 1; i < len(acf); i++ {
		left := acf[i-1]
		right := left // treat the series end as a falling edge
		if i+1 < len(acf) {
			right = acf[i+1]
		}
		if acf[i] > left && acf[i] >= right && acf[i] >= minValue {
			out = append(out, Peak{Lag: i, Value: acf[i]})
		}
	}
	return out
}
