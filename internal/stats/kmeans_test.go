package stats

import (
	"errors"
	"testing"
	"testing/quick"
)

func twoBlobs(r *RNG, n int) ([][]float64, []int) {
	points := make([][]float64, 0, 2*n)
	truth := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		points = append(points, []float64{r.NormFloat64() * 0.3, r.NormFloat64() * 0.3})
		truth = append(truth, 0)
	}
	for i := 0; i < n; i++ {
		points = append(points, []float64{10 + r.NormFloat64()*0.3, 10 + r.NormFloat64()*0.3})
		truth = append(truth, 1)
	}
	return points, truth
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	r := NewRNG(17)
	points, truth := twoBlobs(r, 50)
	assign, centroids, _ := KMeans(points, 2, 100, NewRNG(1))
	if len(centroids) != 2 {
		t.Fatalf("got %d centroids", len(centroids))
	}
	// All points with the same truth label must share a cluster.
	for i := 1; i < 50; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("blob 0 split across clusters")
		}
	}
	for i := 51; i < 100; i++ {
		if assign[i] != assign[50] {
			t.Fatalf("blob 1 split across clusters")
		}
	}
	if assign[0] == assign[50] {
		t.Fatal("blobs merged into one cluster")
	}
	_ = truth
}

func TestKMeansDeterministic(t *testing.T) {
	points, _ := twoBlobs(NewRNG(23), 30)
	a1, c1, _ := KMeans(points, 3, 50, NewRNG(5))
	a2, c2, _ := KMeans(points, 3, 50, NewRNG(5))
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same-seed KMeans produced different assignments")
		}
	}
	for i := range c1 {
		for d := range c1[i] {
			if c1[i][d] != c2[i][d] {
				t.Fatal("same-seed KMeans produced different centroids")
			}
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if a, c, err := KMeans(nil, 3, 10, nil); a != nil || c != nil || err != nil {
		t.Error("empty input should return nils")
	}
	points := [][]float64{{1}, {2}}
	assign, centroids, _ := KMeans(points, 5, 10, NewRNG(2))
	if len(centroids) != 2 {
		t.Errorf("k should clamp to n, got %d centroids", len(centroids))
	}
	if len(assign) != 2 {
		t.Errorf("assign length %d", len(assign))
	}
	// k=1 puts everything together.
	assign, _, _ = KMeans(points, 1, 10, NewRNG(2))
	if assign[0] != 0 || assign[1] != 0 {
		t.Error("k=1 should assign all points to cluster 0")
	}
}

func TestKMeansMixedDimensionsError(t *testing.T) {
	_, _, err := KMeans([][]float64{{1, 2}, {1}}, 1, 5, NewRNG(1))
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("mixed dimensions: err = %v, want ErrBadInput", err)
	}
}

func TestKMeansAssignmentsValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(40)
		dim := 1 + r.Intn(4)
		k := 1 + r.Intn(6)
		points := make([][]float64, n)
		for i := range points {
			p := make([]float64, dim)
			for d := range p {
				p[d] = r.Float64() * 10
			}
			points[i] = p
		}
		assign, centroids, _ := KMeans(points, k, 30, NewRNG(seed+1))
		if len(assign) != n {
			return false
		}
		for _, a := range assign {
			if a < 0 || a >= len(centroids) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClusterSizes(t *testing.T) {
	sizes := ClusterSizes([]int{0, 1, 1, 2, 1}, 3)
	if sizes[0] != 1 || sizes[1] != 3 || sizes[2] != 1 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestSilhouetteQuality(t *testing.T) {
	points, _ := twoBlobs(NewRNG(41), 30)
	assign, _, _ := KMeans(points, 2, 50, NewRNG(3))
	s := Silhouette(points, assign, 2)
	if s < 0.8 {
		t.Errorf("well-separated blobs silhouette = %v, want > 0.8", s)
	}
	// Degenerate cases return 0.
	if Silhouette(points[:1], []int{0}, 1) != 0 {
		t.Error("single point silhouette should be 0")
	}
}
