package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// maxAbsDiff returns the largest absolute element difference.
func maxAbsDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// forceFFT runs the workspace FFT path regardless of the crossover so
// small fuzz inputs still exercise it.
func forceFFT(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		maxLag = 0
	}
	var w Workspace
	out := make([]float64, maxLag+1)
	centered := make([]float64, n)
	den := centerInto(centered, xs)
	if den == 0 {
		return out
	}
	w.fftAutocorr(centered, den, out)
	return out
}

func TestFFTMatchesNaiveOnPeriodicSeries(t *testing.T) {
	// Period-24 square wave, deliberately non-power-of-two length.
	xs := make([]float64, 3000)
	for i := range xs {
		if i%24 < 12 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	want := AutocorrelogramNaive(xs, 300)
	got := forceFFT(xs, 300)
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("fft vs naive diverge by %g", d)
	}
	// And the auto-selecting entry points agree with both.
	if d := maxAbsDiff(Autocorrelogram(xs, 300), want); d > 1e-9 {
		t.Fatalf("Autocorrelogram vs naive diverge by %g", d)
	}
}

func TestFFTConstantSeriesIsAllZeros(t *testing.T) {
	xs := make([]float64, 777)
	for i := range xs {
		xs[i] = 3.25
	}
	for _, acf := range [][]float64{forceFFT(xs, 100), Autocorrelogram(xs, 100)} {
		for p, v := range acf {
			if v != 0 {
				t.Fatalf("constant series acf[%d] = %v, want 0", p, v)
			}
		}
	}
}

func TestWorkspaceReuseAcrossSizes(t *testing.T) {
	// Shrinking, growing, and repeating sizes must all stay correct:
	// the scratch buffers and twiddle tables resize on the fly.
	w := NewWorkspace()
	r := NewRNG(5)
	for _, n := range []int{64, 4097, 129, 4097, 1 << 12, 33} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Sin(float64(i)/7) + r.NormFloat64()/8
		}
		maxLag := n / 3
		got := append([]float64(nil), w.Autocorrelogram(xs, maxLag)...)
		want := AutocorrelogramNaive(xs, maxLag)
		if len(got) != len(want) {
			t.Fatalf("n=%d: len %d vs %d", n, len(got), len(want))
		}
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("n=%d: workspace vs naive diverge by %g", n, d)
		}
	}
}

func TestWorkspaceZeroAllocsAfterWarmup(t *testing.T) {
	w := NewWorkspace()
	xs := make([]float64, 1<<14)
	for i := range xs {
		xs[i] = float64(i%37) - 18
	}
	w.Autocorrelogram(xs, 1024) // warm the buffers
	allocs := testing.AllocsPerRun(10, func() {
		w.Autocorrelogram(xs, 1024)
	})
	if allocs != 0 {
		t.Fatalf("workspace path allocated %v times per run, want 0", allocs)
	}
}

func TestUseFFTPrefersNaiveForTinyLagBudgets(t *testing.T) {
	// A long series with a handful of lags is exactly where the naive
	// sum stays cheaper than a million-point transform.
	if useFFT(1<<20, 2) {
		t.Error("useFFT chose the FFT for 2 lags over a 1M series")
	}
	if !useFFT(1<<16, 4096) {
		t.Error("useFFT refused the FFT at paper-scale train length")
	}
}

// FuzzAutocorrFFTMatchesNaive is the property test of the tentpole:
// the FFT and naive autocorrelograms agree within 1e-9 on arbitrary
// series — random lengths, non-power-of-two sizes, constant runs. The
// comparison is meaningful at any input scale because both paths
// normalize by the same directly-computed energy, making FFT roundoff
// relative to the coefficients, not the raw samples.
func FuzzAutocorrFFTMatchesNaive(f *testing.F) {
	encode := func(xs []float64) []byte {
		out := make([]byte, 8*len(xs))
		for i, v := range xs {
			binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
		}
		return out
	}
	square := make([]float64, 100) // non-power-of-two on purpose
	constant := make([]float64, 65)
	ramp := make([]float64, 33)
	for i := range square {
		if i%10 < 5 {
			square[i] = 1
		}
	}
	for i := range constant {
		constant[i] = -2.5
	}
	for i := range ramp {
		ramp[i] = float64(i)
	}
	f.Add(encode(square), 30)
	f.Add(encode(constant), 64)
	f.Add(encode(ramp), 7)
	f.Add(encode([]float64{1}), 0)
	f.Add(encode(nil), 5)

	f.Fuzz(func(t *testing.T, data []byte, maxLag int) {
		xs := decodeSeries(data)
		if maxLag < 0 {
			maxLag = -maxLag
		}
		maxLag %= 1 << 13
		want := AutocorrelogramNaive(xs, maxLag)
		got := forceFFT(xs, maxLag)
		if len(got) != len(want) {
			t.Fatalf("length mismatch: fft %d, naive %d", len(got), len(want))
		}
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("fft vs naive diverge by %g (%d samples, maxLag %d)",
				d, len(xs), maxLag)
		}
		auto := Autocorrelogram(xs, maxLag)
		if d := maxAbsDiff(auto, want); d > 1e-9 {
			t.Fatalf("auto-selected path diverges by %g", d)
		}
	})
}
