package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-width integer histogram over event densities: bin
// i counts how many Δt observation windows contained exactly i events
// (or, for densities past the last bin, are clamped into it). It mirrors
// the CC-Auditor's 128-entry histogram buffer but is not bounded to 128
// bins so the software analysis can work at any resolution.
type Histogram struct {
	bins []uint64
	// clamped counts windows whose density exceeded the highest bin;
	// they are folded into the last bin but remembered so analyses can
	// tell saturation from genuine mass at the top.
	clamped uint64
	// invalid counts observations rejected as impossible (negative
	// densities). They carry no mass; a corrupted sensor path degrades
	// the record, it must not crash the detector.
	invalid uint64
}

// NewHistogram returns a histogram with the given number of bins; a
// non-positive count is clamped to one bin (every density then records
// as clamped mass — degraded, never crashed).
func NewHistogram(bins int) *Histogram {
	if bins <= 0 {
		bins = 1
	}
	return &Histogram{bins: make([]uint64, bins)}
}

// Add records one observation window containing density events.
// Negative densities are counted as invalid and otherwise ignored:
// densities are counts, and a value that cannot be a count is sensor
// corruption, not mass.
func (h *Histogram) Add(density int) {
	if density < 0 {
		h.invalid++
		return
	}
	if density >= len(h.bins) {
		h.clamped++
		density = len(h.bins) - 1
	}
	h.bins[density]++
}

// AddAll records one observation window per density — the bulk fill
// for density slices. The hot loop is unrolled four-wide: a group of
// four in-range densities costs four array bumps and a single combined
// range check, and only groups containing a negative or clamped value
// fall back to the scalar path. Equivalent to calling Add per element.
func (h *Histogram) AddAll(densities []int) {
	bins := h.bins
	top := len(bins)
	i := 0
	for ; i+4 <= len(densities); i += 4 {
		d0, d1, d2, d3 := densities[i], densities[i+1], densities[i+2], densities[i+3]
		// A negative value sets the sign bit of the OR; a clamped one
		// fails the max comparison. Either sends the group scalar.
		if d0|d1|d2|d3 >= 0 && d0 < top && d1 < top && d2 < top && d3 < top {
			bins[d0]++
			bins[d1]++
			bins[d2]++
			bins[d3]++
			continue
		}
		h.Add(d0)
		h.Add(d1)
		h.Add(d2)
		h.Add(d3)
	}
	for ; i < len(densities); i++ {
		h.Add(densities[i])
	}
}

// AddN records n observation windows at the same density.
func (h *Histogram) AddN(density int, n uint64) {
	if density < 0 {
		h.invalid += n
		return
	}
	if density >= len(h.bins) {
		h.clamped += n
		density = len(h.bins) - 1
	}
	h.bins[density] += n
}

// Bins returns a copy of the bin counts.
func (h *Histogram) Bins() []uint64 {
	return append([]uint64(nil), h.bins...)
}

// Bin returns the count in bin i, or 0 when i is out of range.
func (h *Histogram) Bin(i int) uint64 {
	if i < 0 || i >= len(h.bins) {
		return 0
	}
	return h.bins[i]
}

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Clamped returns how many observations exceeded the top bin.
func (h *Histogram) Clamped() uint64 { return h.clamped }

// Invalid returns how many observations were rejected as impossible
// (negative densities from a corrupted path).
func (h *Histogram) Invalid() uint64 { return h.invalid }

// Total returns the number of recorded observation windows.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, b := range h.bins {
		t += b
	}
	return t
}

// TotalFrom returns the number of windows with density >= from.
func (h *Histogram) TotalFrom(from int) uint64 {
	if from < 0 {
		from = 0
	}
	var t uint64
	for i := from; i < len(h.bins); i++ {
		t += h.bins[i]
	}
	return t
}

// Reset clears all bins.
func (h *Histogram) Reset() {
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.clamped = 0
	h.invalid = 0
}

// Merge adds other's bins into h. Histograms of equal depth merge
// exactly. When other is deeper, its out-of-range mass folds into h's
// top bin and counts as clamped — the same degradation Add applies to
// an over-deep density. When other is shallower, its bins land where
// they are; only mass at other's own top bin may under-report the true
// density, which other's clamped tally already records.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i, b := range other.bins {
		if i >= len(h.bins) {
			h.bins[len(h.bins)-1] += b
			h.clamped += b
			continue
		}
		h.bins[i] += b
	}
	h.clamped += other.clamped
	h.invalid += other.invalid
}

// Unmerge subtracts other's bins from h — the inverse of a prior
// equal-depth Merge(other). The streaming daemon's sliding window
// keeps one merged histogram over the last N quanta and evicts the
// oldest quantum in O(bins) with this instead of re-merging the whole
// window. Both histograms must have the same depth and other must have
// been merged into h earlier (counts never go negative; a violation
// clamps at zero rather than wrapping).
func (h *Histogram) Unmerge(other *Histogram) {
	if other == nil || len(other.bins) != len(h.bins) {
		return
	}
	for i, b := range other.bins {
		if b > h.bins[i] {
			h.bins[i] = 0
			continue
		}
		h.bins[i] -= b
	}
	if other.clamped > h.clamped {
		h.clamped = 0
	} else {
		h.clamped -= other.clamped
	}
	if other.invalid > h.invalid {
		h.invalid = 0
	} else {
		h.invalid -= other.invalid
	}
}

// Clone returns a deep copy of h.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{bins: append([]uint64(nil), h.bins...), clamped: h.clamped, invalid: h.invalid}
}

// NonZeroMax returns the highest bin index with a non-zero count, or -1
// when the histogram is empty.
func (h *Histogram) NonZeroMax() int {
	for i := len(h.bins) - 1; i >= 0; i-- {
		if h.bins[i] != 0 {
			return i
		}
	}
	return -1
}

// MeanDensity returns the mean event density across all windows.
func (h *Histogram) MeanDensity() float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	var s float64
	for i, b := range h.bins {
		s += float64(i) * float64(b)
	}
	return s / float64(total)
}

// MeanDensityFrom returns the mean density restricted to bins >= from.
// The burst detector uses this to check that the second distribution's
// mean sits above 1.0 (§IV-B step 3).
func (h *Histogram) MeanDensityFrom(from int) float64 {
	if from < 0 {
		from = 0
	}
	var s, n float64
	for i := from; i < len(h.bins); i++ {
		s += float64(i) * float64(h.bins[i])
		n += float64(h.bins[i])
	}
	if n == 0 {
		return 0
	}
	return s / n
}

// Floats returns the bin counts as float64s, convenient for the curve
// and correlation helpers.
func (h *Histogram) Floats() []float64 {
	out := make([]float64, len(h.bins))
	for i, b := range h.bins {
		out[i] = float64(b)
	}
	return out
}

// String renders a compact ASCII sketch of the histogram, useful in test
// failures and the cctrace tool.
func (h *Histogram) String() string {
	top := h.NonZeroMax()
	if top < 0 {
		return "Histogram{empty}"
	}
	var max uint64
	for _, b := range h.bins[:top+1] {
		if b > max {
			max = b
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Histogram{total=%d", h.Total())
	if h.clamped > 0 {
		fmt.Fprintf(&sb, " clamped=%d", h.clamped)
	}
	sb.WriteString("}\n")
	for i := 0; i <= top; i++ {
		bar := 0
		if max > 0 {
			bar = int(h.bins[i] * 40 / max)
		}
		fmt.Fprintf(&sb, "%4d | %-40s %d\n", i, strings.Repeat("#", bar), h.bins[i])
	}
	return sb.String()
}
