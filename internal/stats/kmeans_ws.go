package stats

import "fmt"

// KmeansWorkspace owns the scratch buffers of one k-means clustering —
// the assignment and count arrays, the flat centroid arena, the
// k-means++ distance vector, and the silhouette accumulators — so
// repeated clusterings (one per analyzed quantum window, thousands per
// calibration corpus replay) run without a single heap allocation
// after warm-up.
//
// The zero value is ready to use. A workspace is not safe for
// concurrent use; slices returned by its methods alias the workspace
// and are valid only until its next call. KMeans (the allocating
// build) is retained verbatim as the differential reference — see
// TestKmeansWorkspaceMatchesReference.
type KmeansWorkspace struct {
	assign    []int
	counts    []int
	centroids [][]float64
	cbuf      []float64 // flat k×dim centroid backing
	d2        []float64
	meanTo    []float64
	cnt       []int
	sizes     []int
	points    [][]float64
}

// PointRows returns a length-0 row-header slice with capacity for at
// least capHint points, so callers can assemble a point matrix by
// appending without allocating the header array on every analysis.
// The headers alias the workspace; they are valid until the next
// PointRows call.
func (w *KmeansWorkspace) PointRows(capHint int) [][]float64 {
	if cap(w.points) < capHint {
		w.points = make([][]float64, 0, capHint)
	}
	return w.points[:0]
}

// intsScratch returns a zeroed length-n view of *buf, growing it only
// when capacity is short.
func intsScratch(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// floatsScratch returns a zeroed length-n view of *buf.
func floatsScratch(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// centroidRows shapes the workspace's centroid arena into k rows of
// dim, each row capped so row-local appends can never bleed across.
func (w *KmeansWorkspace) centroidRows(k, dim int) [][]float64 {
	if cap(w.cbuf) < k*dim {
		w.cbuf = make([]float64, k*dim)
	}
	w.cbuf = w.cbuf[:k*dim]
	if cap(w.centroids) < k {
		w.centroids = make([][]float64, k)
	}
	w.centroids = w.centroids[:k]
	for i := range w.centroids {
		w.centroids[i] = w.cbuf[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return w.centroids
}

// KMeans is stats.KMeans running entirely in the workspace: identical
// arithmetic, identical RNG consumption, identical results (pinned by
// the differential test and fuzzer), zero steady-state allocations.
// The returned slices alias the workspace.
func (w *KmeansWorkspace) KMeans(points [][]float64, k int, maxIter int, rng *RNG) (assign []int, centroids [][]float64, err error) {
	n := len(points)
	if n == 0 || k <= 0 {
		return nil, nil, nil
	}
	if k > n {
		k = n
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, nil, fmt.Errorf("%w: KMeans point %d has dimension %d, want %d",
				ErrBadInput, i, len(p), dim)
		}
	}
	centroids = w.kmeansppInit(points, k, dim, rng)
	assign = intsScratch(&w.assign, n)
	counts := intsScratch(&w.counts, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, sqDist(p, centroids[0])
			for c := 1; c < k; c++ {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				if assign[i] != best {
					changed = true
				}
				assign[i] = best
			}
		}
		if iter > 0 && !changed {
			break
		}
		// Recompute centroids.
		for c := range centroids {
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
			counts[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				centroids[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster on the farthest point from
				// its centroid; keeps k clusters alive deterministically.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], points[far])
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range centroids[c] {
				centroids[c][d] *= inv
			}
		}
	}
	return assign, centroids, nil
}

// kmeansppInit is kmeansppInit writing into the centroid arena: the
// same draws from rng in the same order, centroid copies instead of
// fresh appends.
func (w *KmeansWorkspace) kmeansppInit(points [][]float64, k, dim int, rng *RNG) [][]float64 {
	if rng == nil {
		rng = NewRNG(1)
	}
	n := len(points)
	rows := w.centroidRows(k, dim)
	first := rng.Intn(n)
	copy(rows[0], points[first])
	m := 1
	d2 := floatsScratch(&w.d2, n)
	for m < k {
		var sum float64
		for i, p := range points {
			best := sqDist(p, rows[0])
			for _, c := range rows[1:m] {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		idx := 0
		if sum > 0 {
			target := rng.Float64() * sum
			var acc float64
			for i, d := range d2 {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
		} else {
			idx = rng.Intn(n)
		}
		copy(rows[m], points[idx])
		m++
	}
	return rows
}

// ClusterSizes is stats.ClusterSizes into the workspace's sizes
// scratch; the result aliases the workspace.
func (w *KmeansWorkspace) ClusterSizes(assign []int, k int) []int {
	sizes := intsScratch(&w.sizes, k)
	for _, a := range assign {
		if a >= 0 && a < k {
			sizes[a]++
		}
	}
	return sizes
}

// Silhouette is stats.Silhouette with the per-point mean-distance
// accumulators drawn from the workspace instead of freshly allocated
// for every point.
func (w *KmeansWorkspace) Silhouette(points [][]float64, assign []int, k int) float64 {
	n := len(points)
	if n < 2 || k < 2 {
		return 0
	}
	sizes := w.ClusterSizes(assign, k)
	var total float64
	counted := 0
	for i := range points {
		ci := assign[i]
		if sizes[ci] < 2 {
			continue // silhouette undefined for singleton clusters
		}
		var a float64
		b := -1.0
		meanTo := floatsScratch(&w.meanTo, k)
		cnt := intsScratch(&w.cnt, k)
		for j := range points {
			if i == j {
				continue
			}
			d := sqrt(sqDist(points[i], points[j]))
			meanTo[assign[j]] += d
			cnt[assign[j]]++
		}
		for c := 0; c < k; c++ {
			if cnt[c] == 0 {
				continue
			}
			m := meanTo[c] / float64(cnt[c])
			if c == ci {
				a = m
			} else if b < 0 || m < b {
				b = m
			}
		}
		if b < 0 {
			continue
		}
		den := a
		if b > den {
			den = b
		}
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
