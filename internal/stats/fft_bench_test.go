package stats

import (
	"fmt"
	"testing"
)

// benchSeries builds a deterministic pseudo-periodic series.
func benchSeries(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%17) - 8
	}
	return xs
}

// BenchmarkAutocorrelogramCrossover is the measurement behind
// fftCostFactor: it times the naive and FFT paths across the
// (length, maxLag) grid the detectors actually visit. Re-run it when
// porting to new hardware and adjust the constant if the break-even
// ratio moves (DESIGN.md §10 records the reference numbers).
func BenchmarkAutocorrelogramCrossover(b *testing.B) {
	for _, n := range []int{4096, 16384, 65536} {
		for _, lag := range []int{64, 256, 1024, 4096} {
			if lag >= n {
				continue
			}
			xs := benchSeries(n)
			b.Run(fmt.Sprintf("naive/n=%d/lag=%d", n, lag), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					AutocorrelogramNaive(xs, lag)
				}
			})
			b.Run(fmt.Sprintf("fft/n=%d/lag=%d", n, lag), func(b *testing.B) {
				w := NewWorkspace()
				centered := make([]float64, n)
				out := make([]float64, lag+1)
				den := centerInto(centered, xs)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.fftAutocorr(centered, den, out)
				}
			})
		}
	}
}

// BenchmarkWorkspaceAutocorrelogram is the workspace-reusing hot path
// at paper-scale train length — the configuration the acceptance
// criterion pins (n=65536, maxLag=4096, zero allocs/op).
func BenchmarkWorkspaceAutocorrelogram(b *testing.B) {
	xs := benchSeries(65536)
	w := NewWorkspace()
	w.Autocorrelogram(xs, 4096) // warm the buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Autocorrelogram(xs, 4096)
	}
}
