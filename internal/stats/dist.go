package stats

import "math"

// PoissonPMF returns P(X = k) for X ~ Poisson(lambda). Computed in log
// space so it stays finite for the large ks that show up in bursty
// event-density histograms.
func PoissonPMF(lambda float64, k int) float64 {
	if lambda < 0 || k < 0 {
		return 0
	}
	if lambda == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return exp(float64(k)*ln(lambda) - lambda - lg)
}

// PoissonCDF returns P(X <= k) for X ~ Poisson(lambda) by direct
// summation; ks in this codebase are histogram bin indices (< 128), so
// the loop is cheap.
func PoissonCDF(lambda float64, k int) float64 {
	if k < 0 {
		return 0
	}
	var s float64
	for i := 0; i <= k; i++ {
		s += PoissonPMF(lambda, i)
	}
	if s > 1 {
		return 1
	}
	return s
}

// NormalPDF returns the density of N(mu, sigma²) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (x - mu) / sigma
	return exp(-z*z/2) / (sigma * sqrt(2*math.Pi))
}

// NormalCDF returns P(X <= x) for X ~ N(mu, sigma²).
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// ChiSquareGoodness computes the chi-square statistic of observed counts
// against expected counts, skipping bins whose expectation is below
// minExpected (small-expectation bins destabilize the statistic). It
// also returns the degrees of freedom used (bins kept - 1).
func ChiSquareGoodness(observed, expected []float64, minExpected float64) (chi2 float64, dof int) {
	n := len(observed)
	if len(expected) < n {
		n = len(expected)
	}
	kept := 0
	for i := 0; i < n; i++ {
		if expected[i] < minExpected {
			continue
		}
		d := observed[i] - expected[i]
		chi2 += d * d / expected[i]
		kept++
	}
	if kept > 0 {
		dof = kept - 1
	}
	return chi2, dof
}

// PoissonFit returns, for a set of per-window event counts, the MLE
// Poisson rate (the mean) and the chi-square statistic of the empirical
// distribution against that Poisson. The recurrent-burst detector uses
// the Poisson as the "no covert channel" reference for what random,
// independent conflicts look like inside Δt windows (Figure 5's dotted
// line).
func PoissonFit(counts []int) (lambda, chi2 float64) {
	if len(counts) == 0 {
		return 0, 0
	}
	lambda = MeanInts(counts)
	_, max := MinMaxInts(counts)
	obs := make([]float64, max+1)
	for _, c := range counts {
		obs[c]++
	}
	expd := make([]float64, max+1)
	total := float64(len(counts))
	for k := 0; k <= max; k++ {
		expd[k] = total * PoissonPMF(lambda, k)
	}
	chi2, _ = ChiSquareGoodness(obs, expd, 1.0)
	return lambda, chi2
}
