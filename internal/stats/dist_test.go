package stats

import (
	"testing"
	"testing/quick"
)

func TestPoissonPMFBasics(t *testing.T) {
	if got := PoissonPMF(0, 0); got != 1 {
		t.Errorf("P(0;0) = %v, want 1", got)
	}
	if got := PoissonPMF(0, 3); got != 0 {
		t.Errorf("P(3;0) = %v, want 0", got)
	}
	if got := PoissonPMF(2, -1); got != 0 {
		t.Errorf("negative k should be 0, got %v", got)
	}
	// P(k=1; lambda=1) = e^-1.
	if got := PoissonPMF(1, 1); !almostEqual(got, 0.3678794411714423, 1e-12) {
		t.Errorf("P(1;1) = %v", got)
	}
	// Large k stays finite (log-space computation).
	if got := PoissonPMF(100, 100); !IsFinite(got) || got <= 0 {
		t.Errorf("P(100;100) = %v, want finite positive", got)
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.3, 1, 5, 20} {
		var s float64
		for k := 0; k < 200; k++ {
			s += PoissonPMF(lambda, k)
		}
		if !almostEqual(s, 1, 1e-9) {
			t.Errorf("sum of pmf(lambda=%v) = %v", lambda, s)
		}
	}
}

func TestPoissonCDFMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		lambda := r.Float64() * 30
		prev := -1.0
		for k := 0; k < 60; k++ {
			c := PoissonCDF(lambda, k)
			if c < prev-1e-12 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if PoissonCDF(5, -1) != 0 {
		t.Error("CDF at k<0 should be 0")
	}
}

func TestNormalPDFAndCDF(t *testing.T) {
	if got := NormalPDF(0, 0, 1); !almostEqual(got, 0.3989422804014327, 1e-12) {
		t.Errorf("phi(0) = %v", got)
	}
	if got := NormalCDF(0, 0, 1); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Phi(0) = %v, want 0.5", got)
	}
	if got := NormalCDF(1.96, 0, 1); !almostEqual(got, 0.975, 1e-3) {
		t.Errorf("Phi(1.96) = %v, want ~0.975", got)
	}
	// Degenerate sigma behaves like a step function.
	if NormalCDF(1, 2, 0) != 0 || NormalCDF(3, 2, 0) != 1 {
		t.Error("degenerate normal CDF should be a step at mu")
	}
	if NormalPDF(0, 0, 0) != 0 {
		t.Error("degenerate normal PDF should be 0")
	}
}

func TestChiSquareGoodness(t *testing.T) {
	obs := []float64{10, 20, 30}
	expd := []float64{10, 20, 30}
	chi2, dof := ChiSquareGoodness(obs, expd, 1)
	if chi2 != 0 || dof != 2 {
		t.Errorf("identical distributions: chi2=%v dof=%d", chi2, dof)
	}
	// Bins below minExpected are skipped.
	obs = []float64{10, 1}
	expd = []float64{10, 0.01}
	chi2, dof = ChiSquareGoodness(obs, expd, 1)
	if chi2 != 0 || dof != 0 {
		t.Errorf("low-expectation bin not skipped: chi2=%v dof=%d", chi2, dof)
	}
}

func TestPoissonFitRecoversLambda(t *testing.T) {
	r := NewRNG(31)
	counts := make([]int, 5000)
	for i := range counts {
		counts[i] = r.Poisson(4)
	}
	lambda, chi2 := PoissonFit(counts)
	if !almostEqual(lambda, 4, 0.2) {
		t.Errorf("fitted lambda = %v, want ~4", lambda)
	}
	// A genuine Poisson sample should fit well: chi2 per dof small.
	if chi2 > 50 {
		t.Errorf("chi2 = %v unexpectedly large for true Poisson data", chi2)
	}
	if l, c := PoissonFit(nil); l != 0 || c != 0 {
		t.Error("empty input should give zeros")
	}
}

func TestPoissonFitRejectsBimodal(t *testing.T) {
	// Covert-channel-like density data: half the windows quiet, half
	// bursty. The Poisson fit must be visibly bad (large chi2).
	counts := make([]int, 0, 2000)
	for i := 0; i < 1000; i++ {
		counts = append(counts, 0)
	}
	for i := 0; i < 1000; i++ {
		counts = append(counts, 20)
	}
	_, chi2 := PoissonFit(counts)
	if chi2 < 1000 {
		t.Errorf("bimodal data chi2 = %v, want very large", chi2)
	}
}
