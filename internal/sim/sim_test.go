package sim

import (
	"testing"

	"cchunter/internal/trace"
)

func TestComputeAdvancesClock(t *testing.T) {
	s := MustNew(TestConfig())
	defer s.Close()
	var end uint64
	s.Spawn(NewProgram("p", func(m *Machine) {
		m.Compute(1000)
		m.Compute(500)
		end = m.Now()
	}))
	s.Run(1_000_000)
	if end != 1500 {
		t.Errorf("clock after computes = %d, want 1500", end)
	}
}

func TestLoadLatencies(t *testing.T) {
	s := MustNew(TestConfig())
	defer s.Close()
	var cold, l1hit, l2hit uint64
	s.Spawn(NewProgram("p", func(m *Machine) {
		addr := m.PrivateAddr(7)
		cold = m.Load(addr)  // miss everywhere
		l1hit = m.Load(addr) // L1 hit
		// Evict addr from the 8-way L1 set but not from L2: touch 8
		// more lines mapping to the same L1 set (64 L1 sets; stride 64
		// lines in line-index space re-hits the same L1 set while
		// spreading across L2 sets only as far as the geometry says).
		geo := m.Geometry()
		for i := 1; i <= geo.L1Ways; i++ {
			m.Load(m.PrivateAddr(7 + uint64(i*geo.L1Sets)))
		}
		l2hit = m.Load(addr)
	}))
	s.Run(10_000_000)
	cfg := TestConfig()
	if cold <= l2hit || l2hit <= l1hit {
		t.Errorf("latency ordering wrong: cold=%d l2=%d l1=%d", cold, l2hit, l1hit)
	}
	if l1hit != cfg.L1.HitLatency {
		t.Errorf("l1 hit = %d, want %d", l1hit, cfg.L1.HitLatency)
	}
	wantL2 := cfg.L1.HitLatency + cfg.L2.HitLatency
	if l2hit != wantL2 {
		t.Errorf("l2 hit = %d, want %d", l2hit, wantL2)
	}
	wantCold := wantL2 + cfg.Bus.AccessCycles + cfg.MemCycles
	if cold != wantCold {
		t.Errorf("cold = %d, want %d", cold, wantCold)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []trace.Event {
		cfg := TestConfig()
		cfg.MigrationProb = 0.5
		s := MustNew(cfg)
		defer s.Close()
		rec := trace.NewRecorder()
		s.AddListener(rec)
		for i := 0; i < 4; i++ {
			i := i
			s.Spawn(NewProgram("worker", func(m *Machine) {
				for j := 0; ; j++ {
					m.AtomicUnaligned(m.PrivateAddr(uint64(j)))
					m.DivN(3)
					m.Compute(uint64(100 * (i + 1)))
					m.Load(m.PrivateAddr(uint64(j % 64)))
				}
			}))
		}
		s.Run(3_000_000)
		return append([]trace.Event(nil), rec.Train().Events()...)
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no events generated")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEventStreamMonotonic(t *testing.T) {
	// The recorder panics on out-of-order events; drive a busy mixed
	// workload (batches included) to exercise the stamping rules.
	s := MustNew(TestConfig())
	defer s.Close()
	rec := trace.NewRecorder()
	s.AddListener(rec)
	for i := 0; i < 6; i++ {
		s.Spawn(NewProgram("mix", func(m *Machine) {
			addrs := make([]uint64, 16)
			for j := 0; ; j++ {
				for k := range addrs {
					addrs[k] = m.PrivateAddr(uint64(j*16 + k))
				}
				m.LoadN(addrs)
				m.DivN(8)
				m.AtomicUnaligned(0)
			}
		}))
	}
	s.Run(2_000_000)
	if rec.Train().Len() == 0 {
		t.Fatal("expected events")
	}
}

func TestBusLockEventsEmitted(t *testing.T) {
	s := MustNew(TestConfig())
	defer s.Close()
	rec := trace.NewRecorder(trace.KindBusLock)
	s.AddListener(rec)
	s.Spawn(NewProgram("locker", func(m *Machine) {
		for i := 0; i < 10; i++ {
			m.AtomicUnaligned(0)
		}
	}))
	s.Run(10_000_000)
	if rec.Train().Len() != 10 {
		t.Errorf("bus lock events = %d, want 10", rec.Train().Len())
	}
	if got := s.BusStats().Locks; got != 10 {
		t.Errorf("bus stats locks = %d", got)
	}
}

func TestDividerContentionBetweenHyperthreads(t *testing.T) {
	s := MustNew(TestConfig())
	defer s.Close()
	rec := trace.NewRecorder(trace.KindDivContention)
	s.AddListener(rec)
	hammer := func(m *Machine) {
		for {
			m.Div()
		}
	}
	s.Spawn(NewProgram("t", hammer), Pin(0))
	s.Spawn(NewProgram("s", hammer), Pin(1)) // same core, other thread
	s.Run(100_000)
	if rec.Train().Len() == 0 {
		t.Fatal("no contention between hyperthreads")
	}
	// Both directions should appear.
	dirs := map[[2]uint8]bool{}
	for _, e := range rec.Train().Events() {
		dirs[[2]uint8{e.Actor, e.Victim}] = true
	}
	if !dirs[[2]uint8{0, 1}] || !dirs[[2]uint8{1, 0}] {
		t.Errorf("contention directions seen: %v", dirs)
	}
}

func TestNoDividerContentionAcrossCores(t *testing.T) {
	s := MustNew(TestConfig())
	defer s.Close()
	rec := trace.NewRecorder(trace.KindDivContention)
	s.AddListener(rec)
	hammer := func(m *Machine) {
		for {
			m.Div()
		}
	}
	s.Spawn(NewProgram("a", hammer), Pin(0))
	s.Spawn(NewProgram("b", hammer), Pin(2)) // different core
	s.Run(100_000)
	if rec.Train().Len() != 0 {
		t.Errorf("cross-core divider contention should be impossible, got %d events",
			rec.Train().Len())
	}
}

func TestConflictMissEventsOnSharedL2(t *testing.T) {
	s := MustNew(TestConfig())
	defer s.Close()
	rec := trace.NewRecorder(trace.KindConflictMiss)
	s.AddListener(rec)
	// Two hyperthreads ping-pong on the same L2 sets in alternating
	// time slots, the way the covert channel's prime and probe phases
	// alternate.
	const slot = 50_000
	pingpong := func(phase uint64) func(m *Machine) {
		return func(m *Machine) {
			geo := m.Geometry()
			for i := uint64(0); ; i++ {
				m.WaitUntil((2*i + phase) * slot)
				for set := uint32(0); set < 8; set++ {
					for w := 0; w < geo.L2Ways; w++ {
						m.Load(m.L2AddrForSet(set, w))
					}
				}
			}
		}
	}
	s.Spawn(NewProgram("t", pingpong(0)), Pin(0))
	s.Spawn(NewProgram("s", pingpong(1)), Pin(1))
	s.Run(3_000_000)
	if rec.Train().Len() == 0 {
		t.Fatal("no conflict misses on contended sets")
	}
	// Cross-context replacements must dominate.
	cross := 0
	for _, e := range rec.Train().Events() {
		if e.Victim != trace.NoContext && e.Victim != e.Actor {
			cross++
		}
	}
	if cross == 0 {
		t.Error("no cross-context conflict misses")
	}
}

func TestWaitUntilAndSleep(t *testing.T) {
	s := MustNew(TestConfig())
	defer s.Close()
	var a, b uint64
	s.Spawn(NewProgram("p", func(m *Machine) {
		a = m.WaitUntil(5000)
		b = m.WaitUntil(100) // already past: no-op
	}))
	s.Run(1_000_000)
	if a != 5000 || b != 5000 {
		t.Errorf("WaitUntil clocks = %d, %d", a, b)
	}
}

func TestQuantumRoundRobin(t *testing.T) {
	cfg := TestConfig()
	cfg.Cores = 1
	cfg.ThreadsPerCore = 1
	cfg.QuantumCycles = 10_000
	s := MustNew(cfg)
	defer s.Close()
	var aSlices, bSlices []uint64
	s.Spawn(NewProgram("a", func(m *Machine) {
		for {
			m.Compute(1000)
			aSlices = append(aSlices, m.Now())
		}
	}))
	s.Spawn(NewProgram("b", func(m *Machine) {
		for {
			m.Compute(1000)
			bSlices = append(bSlices, m.Now())
		}
	}))
	s.Run(100_000)
	if len(aSlices) == 0 || len(bSlices) == 0 {
		t.Fatal("both processes must get CPU time on one context")
	}
	if s.SchedStats().ContextSwitches == 0 {
		t.Error("expected context switches")
	}
	// Process a runs the first quantum; process b must not observe
	// clocks below one quantum.
	if bSlices[0] < cfg.QuantumCycles {
		t.Errorf("b ran during a's first quantum at %d", bSlices[0])
	}
}

func TestMigration(t *testing.T) {
	cfg := TestConfig()
	cfg.QuantumCycles = 5_000
	cfg.MigrationProb = 1.0
	s := MustNew(cfg)
	defer s.Close()
	s.Spawn(NewProgram("wanderer", func(m *Machine) {
		for {
			m.Compute(1000)
		}
	}))
	s.Run(200_000)
	if s.SchedStats().Migrations == 0 {
		t.Error("expected migrations with probability 1")
	}
}

func TestPinnedNeverMigrates(t *testing.T) {
	cfg := TestConfig()
	cfg.QuantumCycles = 5_000
	cfg.MigrationProb = 1.0
	s := MustNew(cfg)
	defer s.Close()
	s.Spawn(NewProgram("pinned", func(m *Machine) {
		for {
			m.Compute(1000)
		}
	}), Pin(3))
	s.Run(200_000)
	if s.SchedStats().Migrations != 0 {
		t.Errorf("pinned process migrated %d times", s.SchedStats().Migrations)
	}
}

func TestProcessCompletion(t *testing.T) {
	s := MustNew(TestConfig())
	defer s.Close()
	p := s.Spawn(NewProgram("finite", func(m *Machine) {
		m.Compute(100)
	}))
	s.Run(1_000_000)
	if !p.Done() {
		t.Error("finite program should be done")
	}
	if p.Name() != "finite" || p.ID() != 0 {
		t.Errorf("identity: %q %d", p.Name(), p.ID())
	}
}

func TestRunIsResumable(t *testing.T) {
	s := MustNew(TestConfig())
	defer s.Close()
	var ticks []uint64
	s.Spawn(NewProgram("p", func(m *Machine) {
		for {
			m.Compute(10_000)
			ticks = append(ticks, m.Now())
		}
	}))
	s.Run(50_000)
	n1 := len(ticks)
	s.Run(100_000)
	if len(ticks) <= n1 {
		t.Error("second Run made no progress")
	}
	if n1 < 4 || n1 > 6 {
		t.Errorf("first Run ticks = %d, want ~5", n1)
	}
}

func TestCloseStopsPrograms(t *testing.T) {
	s := MustNew(TestConfig())
	s.Spawn(NewProgram("loop", func(m *Machine) {
		for {
			m.Compute(100)
		}
	}))
	s.Run(10_000)
	s.Close()
	s.Close() // idempotent
}

func TestSpawnAfterRunPanics(t *testing.T) {
	s := MustNew(TestConfig())
	defer s.Close()
	s.Spawn(NewProgram("p", func(m *Machine) { m.Compute(1) }))
	s.Run(100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Spawn(NewProgram("late", func(m *Machine) {}))
}

func TestGeometry(t *testing.T) {
	s := MustNew(DefaultConfig())
	defer s.Close()
	g := s.Geometry()
	if g.Contexts != 8 || g.Cores != 4 || g.ThreadsPerCore != 2 {
		t.Errorf("geometry: %+v", g)
	}
	if g.L2Sets != 2048 || g.L2Ways != 8 || g.LineBytes != 64 {
		t.Errorf("L2 geometry: %+v", g)
	}
	if g.L1Sets != 64 {
		t.Errorf("L1 sets = %d", g.L1Sets)
	}
}

func TestCyclesHelpers(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.CyclesPerSecond(0.1) != 250_000_000 {
		t.Error("CyclesPerSecond wrong")
	}
	if cfg.CyclesPerBit(1000) != 2_500_000 {
		t.Error("CyclesPerBit wrong")
	}
	if cfg.Contexts() != 8 {
		t.Error("Contexts wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CyclesPerBit(0) should panic")
		}
	}()
	cfg.CyclesPerBit(0)
}

func TestPrivateAddressesDoNotAlias(t *testing.T) {
	s := MustNew(TestConfig())
	defer s.Close()
	var lat1 uint64
	s.Spawn(NewProgram("a", func(m *Machine) {
		m.Load(m.PrivateAddr(1))
	}), Pin(0))
	s.Spawn(NewProgram("b", func(m *Machine) {
		m.Compute(100_000) // run after a's load
		lat1 = m.Load(m.PrivateAddr(1))
	}), Pin(1))
	s.Run(1_000_000)
	cfg := TestConfig()
	wantCold := cfg.L1.HitLatency + cfg.L2.HitLatency + cfg.Bus.AccessCycles + cfg.MemCycles
	if lat1 != wantCold {
		t.Errorf("process b hit process a's line: lat=%d want cold=%d", lat1, wantCold)
	}
}

func TestTrackerKindSelectable(t *testing.T) {
	for _, kind := range []TrackerKind{TrackerGenerational, TrackerIdeal} {
		cfg := TestConfig()
		cfg.Tracker = kind
		s := MustNew(cfg)
		rec := trace.NewRecorder(trace.KindConflictMiss)
		s.AddListener(rec)
		pingpong := func(m *Machine) {
			geo := m.Geometry()
			for {
				for w := 0; w < geo.L2Ways; w++ {
					m.Load(m.L2AddrForSet(0, w))
				}
				m.Sleep(100)
			}
		}
		s.Spawn(NewProgram("t", pingpong), Pin(0))
		s.Spawn(NewProgram("s", pingpong), Pin(1))
		s.Run(1_000_000)
		if rec.Train().Len() == 0 {
			t.Errorf("tracker %v found no conflicts", kind)
		}
		s.Close()
	}
}
