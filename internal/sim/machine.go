package sim

import "errors"

// Program is the code a software process runs. Under the goroutine
// driver Run executes on its own goroutine but only ever makes
// progress while the engine has resumed it, so implementations need no
// synchronization. Run returns when the program is finished; infinite
// server loops simply never return and are torn down by System.Close.
//
// Programs that additionally implement Stepper are executed by direct
// calls with no goroutine at all (the default driver); see step.go.
//
// Programs must not recover panics they did not raise: the engine
// stops goroutine-driven programs by panicking through their stack
// with a sentinel.
type Program interface {
	// Name labels the process for reporting.
	Name() string
	// Run executes the program against the machine handle.
	Run(m *Machine)
}

// errStopped is panicked through a program's stack when the engine
// tears it down.
var errStopped = errors.New("sim: program stopped")

// programFunc adapts a function to the Program interface.
type programFunc struct {
	name string
	fn   func(m *Machine)
}

// NewProgram wraps a function as a named Program, convenient for tests
// and small workloads.
func NewProgram(name string, fn func(m *Machine)) Program {
	return &programFunc{name: name, fn: fn}
}

func (p *programFunc) Name() string   { return p.name }
func (p *programFunc) Run(m *Machine) { p.fn(m) }

// response is the goroutine driver's reply to a blocked program.
type response struct {
	now     uint64 // context clock after the op
	latency uint64 // cycles the op took from issue to completion
	stop    bool   // engine is tearing the program down
}

// Machine is a program's handle onto its hardware context. All methods
// block the calling program until the engine has executed the
// operation; latencies are simulated cycles, never wall-clock time.
type Machine struct {
	proc *Process
	geo  Geometry
}

// Do executes one decoded operation through the blocking driver and
// returns its result. The convenience wrappers below (Compute, Load,
// ...) are thin shims over it.
func (m *Machine) Do(op Op) OpResult {
	p := m.proc
	p.reqCh <- op
	resp := <-p.respCh
	if resp.stop {
		panic(errStopped)
	}
	return OpResult{Now: resp.now, Latency: resp.latency}
}

// Compute spends the given number of cycles of pure computation.
func (m *Machine) Compute(cycles uint64) {
	m.Do(Op{Kind: OpCompute, Cycles: cycles})
}

// Load reads addr through the cache hierarchy and returns the access
// latency in cycles — the observable that covert-channel receivers
// decode bits from.
func (m *Machine) Load(addr uint64) uint64 {
	return m.Do(Op{Kind: OpLoad, Addr: addr}).Latency
}

// Store writes addr through the cache hierarchy (modelled identically
// to Load: write-allocate) and returns the latency.
func (m *Machine) Store(addr uint64) uint64 {
	return m.Do(Op{Kind: OpStore, Addr: addr}).Latency
}

// LoadN performs the loads back-to-back in one engine round and
// returns the total latency. It exists so that high-event-rate
// programs (streaming workloads, cache priming loops) don't pay one
// engine handshake per access; within a batch other contexts do not
// interleave, so keep batches to the natural run lengths of the
// modelled code.
func (m *Machine) LoadN(addrs []uint64) uint64 {
	if len(addrs) == 0 {
		return 0
	}
	return m.Do(Op{Kind: OpLoadN, Addrs: addrs}).Latency
}

// AtomicUnaligned performs an atomic access spanning two cache lines
// at addr, locking the memory bus (the bus covert channel's
// transmitter primitive). It returns the latency.
func (m *Machine) AtomicUnaligned(addr uint64) uint64 {
	return m.Do(Op{Kind: OpAtomicUnaligned, Addr: addr}).Latency
}

// Div issues one integer division and returns its latency, including
// any wait on a busy divider.
func (m *Machine) Div() uint64 {
	return m.Do(Op{Kind: OpDiv}).Latency
}

// DivN issues n back-to-back divisions in one engine round and returns
// the total latency. The same batching caveat as LoadN applies.
func (m *Machine) DivN(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return m.Do(Op{Kind: OpDivN, Count: n}).Latency
}

// TLBProbe looks up addr's translation in the core's shared TLB,
// filling on a miss, without touching the cache hierarchy, and returns
// the latency — the accessed-bit probe primitive of the TLB covert
// channel (a hit means the translation survived; a page-walk latency
// means the other hyperthread evicted it).
func (m *Machine) TLBProbe(addr uint64) uint64 {
	return m.Do(Op{Kind: OpTLBProbe, Addr: addr}).Latency
}

// Now returns the context's current cycle.
func (m *Machine) Now() uint64 {
	return m.Do(Op{Kind: OpNow}).Now
}

// WaitUntil sleeps until the given absolute cycle (a no-op when it is
// already past) and returns the clock afterwards. Channel programs use
// it to pace bit slots; workload models use it to pace request
// arrivals.
func (m *Machine) WaitUntil(cycle uint64) uint64 {
	return m.Do(Op{Kind: OpWaitUntil, Cycles: cycle}).Now
}

// Sleep advances the clock by d cycles without touching any shared
// resource.
func (m *Machine) Sleep(d uint64) uint64 {
	now := m.Now()
	return m.WaitUntil(now + d)
}

// Geometry returns the static machine description.
func (m *Machine) Geometry() Geometry { return m.geo }

// PID returns the process's unique identifier.
func (m *Machine) PID() int { return m.proc.id }

// PrivateAddr maps a process-local line index to an address that no
// other process aliases (distinct tag space), while leaving the cache
// set index fully under the program's control via the low bits.
func (m *Machine) PrivateAddr(lineIndex uint64) uint64 {
	return (uint64(m.proc.id+1)<<44 | lineIndex) << 6
}

// L2AddrForSet builds an address mapping to the given L2 set, with way
// selecting distinct conflicting lines, in this process's private tag
// space. Covert-channel and workload code uses it to build eviction
// sets.
func (m *Machine) L2AddrForSet(set uint32, way int) uint64 {
	return m.proc.sys.l2.AddrForSet(set, way, uint64(m.proc.id+1))
}
