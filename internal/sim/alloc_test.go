package sim

import "testing"

// spinStepper issues an endless stream of compute ops — the minimal
// steady-state op workload for allocation measurement.
type spinStepper struct{}

func (spinStepper) Name() string     { return "spin" }
func (s spinStepper) Run(m *Machine) { RunSteps(s, m) }
func (spinStepper) Begin(*Machine)   {}
func (spinStepper) Step(OpResult) (Op, bool) {
	return Op{Kind: OpCompute, Cycles: 50}, true
}

// TestOpPathAllocationFree pins the engine's zero-allocation contract
// on both drivers: once processes are started, executing ops — the
// direct Step calls of the step driver, and the by-value Op channel
// round-trip of the goroutine reference driver (the old per-op
// `p.pending = &req` heap escape) — allocates nothing.
func TestOpPathAllocationFree(t *testing.T) {
	for name, driver := range map[string]Driver{
		"step":      DriverStep,
		"goroutine": DriverGoroutine,
	} {
		t.Run(name, func(t *testing.T) {
			cfg := TestConfig()
			cfg.Driver = driver
			s := MustNew(cfg)
			defer s.Close()
			for ctx := 0; ctx < 4; ctx++ {
				s.Spawn(spinStepper{}, Pin(ctx))
			}
			// Warm-up: start the processes (goroutine spawns, first
			// channel parks) and reach steady state.
			until := uint64(100_000)
			s.Run(until)
			allocs := testing.AllocsPerRun(20, func() {
				until += 200_000
				s.Run(until)
			})
			if allocs != 0 {
				t.Errorf("%s driver: %v allocs per Run chunk in steady state, want 0",
					name, allocs)
			}
		})
	}
}
