// Package sim is a deterministic discrete-event simulator of a small
// SMT multicore — the substrate standing in for the paper's MARSSx86
// full-system setup (quad-core 2.5 GHz, two hyperthreads per core,
// per-core L1s and divider banks, a chip-shared L2 with conflict-miss
// tracking, and a shared memory bus with lock semantics).
//
// Programs run as goroutines but the engine serializes all execution:
// it always resumes the hardware context with the smallest local clock
// and executes exactly one operation against shared state, so results
// are bit-for-bit reproducible and free of Go runtime/GC timing jitter
// — the property that makes a timing-channel reproduction in Go
// possible at all (see DESIGN.md).
package sim

import (
	"cchunter/internal/bus"
	"cchunter/internal/cache"
	"cchunter/internal/divider"
	"cchunter/internal/faults"
	"cchunter/internal/mitigate"
	"cchunter/internal/obs"
	"cchunter/internal/ring"
	"cchunter/internal/tlb"
)

// TrackerKind selects the conflict-miss tracker attached to each
// shared cache.
type TrackerKind int

const (
	// TrackerGenerational is the paper's practical generation/Bloom
	// design (the default).
	TrackerGenerational TrackerKind = iota
	// TrackerIdeal is the exact fully-associative LRU stack.
	TrackerIdeal
)

// Driver selects how the engine executes programs.
type Driver int

const (
	// DriverStep (the default) executes programs implementing Stepper
	// with direct calls — no goroutine, no channel round-trip, no
	// per-op allocation. Programs implementing only the blocking
	// Program interface still run on the goroutine driver.
	DriverStep Driver = iota
	// DriverGoroutine forces every program through the legacy
	// goroutine-per-process channel driver. It is kept as the
	// differential-test reference for the step engine (the way
	// conflict.IdealReference pins the generational tracker): both
	// drivers execute the identical op stream, so all results must be
	// byte-identical.
	DriverGoroutine
)

// Config describes the simulated machine.
type Config struct {
	// Cores is the number of physical cores (paper: 4).
	Cores int
	// ThreadsPerCore is the number of SMT hardware contexts per core
	// (paper: 2).
	ThreadsPerCore int
	// ClockHz is the nominal clock, used only to convert seconds-based
	// quantities (bandwidth, OS quantum) into cycles (paper: 2.5 GHz).
	ClockHz uint64
	// QuantumCycles is the OS scheduler time quantum (paper: 0.1 s =
	// 250 M cycles).
	QuantumCycles uint64
	// CtxSwitchCycles is charged when a context switches between
	// software processes at a quantum boundary.
	CtxSwitchCycles uint64
	// MemCycles is the DRAM access latency beyond the bus transfer.
	MemCycles uint64
	// L1 configures the per-core L1 (shared by the core's
	// hyperthreads, as on Nehalem).
	L1 cache.Config
	// L2 configures the chip-shared last-level cache — the medium of
	// the cache covert channel, shared by every hardware context as in
	// Xu et al.'s cross-VM setting. The paper models 256 KB per core;
	// we default to one shared 1 MB cache so that the channel's
	// largest configuration (512 sets) occupies a quarter of the
	// cache, preserving the "enough capacity left" premise that makes
	// premature evictions conflict misses, and so that other tenants'
	// traffic interleaves into the conflict-miss train exactly as the
	// paper's noise discussion assumes (see DESIGN.md §2).
	L2 cache.Config
	// Bus configures the shared memory bus.
	Bus bus.Config
	// Div configures each core's divider bank.
	Div divider.Config
	// Ring configures the slotted ring interconnect between the cores
	// and the sliced last-level cache. The zero value (Stops == 0)
	// leaves the interconnect unmodelled, keeping every pre-ring
	// simulation bit-for-bit identical; ring-channel scenarios enable
	// it explicitly.
	Ring ring.Config
	// TLB configures each core's hyperthread-shared sTLB. The zero
	// value selects tlb.DefaultConfig(). The TLB is only exercised by
	// OpTLBProbe operations, so non-TLB scenarios are unaffected.
	TLB tlb.Config
	// Tracker selects the conflict-miss tracker implementation.
	Tracker TrackerKind
	// MigrationProb is the per-quantum probability that a context's
	// current unpinned process migrates to another context, modelling
	// the OS moving processes across cores (§V-A).
	MigrationProb float64
	// Mitigations holds the damage-control policies the OS applies
	// after a CC-Hunter alarm (see internal/mitigate). All nil by
	// default: an unprotected machine.
	Mitigations Mitigations
	// Faults perturbs the indicator-event stream between the hardware
	// units and the registered listeners (auditor, recorders), modelling
	// an imperfect CC-Auditor sensor path (see internal/faults). The
	// zero value leaves the path pristine and the simulation bit-for-bit
	// identical to a build without the injector.
	Faults faults.Config
	// Metrics, when non-nil, receives pipeline observability data:
	// operation and scheduling counters from the engine, batch and
	// fault-injection counters from the delivery chain. Metrics are
	// observational only — nothing in the simulation reads them back,
	// so results are byte-identical with or without a registry (the
	// golden-verdict suite pins this). Nil (the default) selects the
	// no-op fast path.
	Metrics *obs.Registry
	// Driver selects the program-execution driver: the coroutine-free
	// step engine (default) or the goroutine reference driver. Purely
	// an execution-strategy knob — results are byte-identical either
	// way (pinned by the driver differential tests and the golden
	// corpus).
	Driver Driver
	// EventBatch sets the event-delivery batch size between the
	// hardware units and the fault-injector/listener chain. 0 selects
	// trace.DefaultBatchSize; 1 disables batching and delivers each
	// event through a direct per-event callback. Batching is purely a
	// performance knob: events reach every consumer in the same order
	// at any batch size, so results are byte-identical (pinned by
	// TestBatchedDeliveryMatchesPerEvent in the root package).
	EventBatch int
	// Seed drives all scheduling randomness.
	Seed uint64
}

// Mitigations bundles the optional post-detection defenses.
type Mitigations struct {
	// BusLimiter rate-limits bus locks per context.
	BusLimiter *mitigate.BusLockLimiter
	// Partition way-partitions the shared L2 between contexts.
	Partition *mitigate.CachePartition
	// Fuzz degrades the latencies programs observe.
	Fuzz *mitigate.ClockFuzz
	// DividerTDM time-multiplexes each core's dividers between its
	// hyperthreads.
	DividerTDM *mitigate.DividerTDM
}

// DefaultConfig returns the paper-calibrated machine.
func DefaultConfig() Config {
	return Config{
		Cores:           4,
		ThreadsPerCore:  2,
		ClockHz:         2_500_000_000,
		QuantumCycles:   250_000_000,
		CtxSwitchCycles: 5_000,
		MemCycles:       150,
		L1:              cache.DefaultL1(),
		L2:              cache.Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 8, HitLatency: 12},
		Bus:             bus.DefaultConfig(),
		Div:             divider.DefaultConfig(),
		Tracker:         TrackerGenerational,
		MigrationProb:   0,
		Seed:            1,
	}
}

// TestConfig returns a machine scaled for fast unit tests: same
// structure, much shorter quantum.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.QuantumCycles = 1_000_000
	cfg.CtxSwitchCycles = 500
	return cfg
}

// Contexts returns the number of hardware contexts.
func (c Config) Contexts() int { return c.Cores * c.ThreadsPerCore }

// CyclesPerSecond converts seconds to cycles at the configured clock.
func (c Config) CyclesPerSecond(seconds float64) uint64 {
	return uint64(seconds * float64(c.ClockHz))
}

// CyclesPerBit returns the duration of one bit slot at the given
// channel bandwidth in bits per second.
func (c Config) CyclesPerBit(bps float64) uint64 {
	if bps <= 0 {
		panic("sim: bandwidth must be positive")
	}
	return uint64(float64(c.ClockHz) / bps)
}

// Geometry is the static machine description visible to programs.
type Geometry struct {
	Contexts         int
	Cores            int
	ThreadsPerCore   int
	ClockHz          uint64
	QuantumCycles    uint64
	LineBytes        int
	L1Sets, L1Ways   int
	L2Sets, L2Ways   int
	MemCycles        uint64
	RingStops        int // 0 when the ring interconnect is disabled
	TLBSets, TLBWays int
}
