package sim

import (
	"errors"
	"fmt"

	"cchunter/internal/bus"
	"cchunter/internal/cache"
	"cchunter/internal/conflict"
	"cchunter/internal/divider"
	"cchunter/internal/faults"
	"cchunter/internal/obs"
	"cchunter/internal/ring"
	"cchunter/internal/stats"
	"cchunter/internal/tlb"
	"cchunter/internal/trace"
)

// ErrBadConfig is wrapped by every configuration validation error in
// this package.
var ErrBadConfig = errors.New("sim: bad configuration")

// Process is one software process known to the simulated OS.
type Process struct {
	id      int
	name    string
	prog    Program
	pinned  int // hardware context ID, or -1 when free to migrate
	sys     *System
	machine *Machine

	// Goroutine-driver plumbing (nil-channel-free even on the step
	// path: the channels are always allocated, but never used when the
	// engine drives the program by direct Step calls).
	reqCh  chan Op
	respCh chan response

	// step is non-nil when the engine drives this program
	// coroutine-free; last carries the previous op's result into the
	// next Step call.
	step Stepper
	last OpResult

	// pendOp is the fetched-but-not-yet-executed operation, held by
	// value: the steady-state op path performs no per-op allocation.
	pendOp  Op
	hasPend bool

	started bool
	done    bool

	ctx *hwContext // context the process is currently queued on
}

// ID returns the process identifier.
func (p *Process) ID() int { return p.id }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Done reports whether the program has returned.
func (p *Process) Done() bool { return p.done }

// core bundles the per-core hardware.
type core struct {
	id  int
	l1  *cache.Cache
	div *divider.Bank
	tlb *tlb.TLB
}

// hwContext is one SMT hardware context.
type hwContext struct {
	id         uint8
	core       *core
	clock      uint64
	quantumEnd uint64
	runq       []*Process // runq[0] is the currently scheduled process
	heapIdx    int        // position in System.heap, -1 when idle
}

// System is the simulated machine plus its OS layer.
type System struct {
	cfg       Config
	cores     []*core
	contexts  []*hwContext
	l2        *cache.Cache
	tracker   conflict.Tracker
	// trackGen aliases tracker when the practical generational design
	// is selected (the default): the hot path then observes through a
	// concrete pointer — a direct, inlinable call — instead of an
	// interface dispatch per L2 access.
	trackGen  *conflict.Generational
	bus       *bus.Bus
	ring      *ring.Ring // nil unless cfg.Ring.Stops > 0
	lineShift uint       // log2(L2 line bytes), for ring slice hashing
	listeners trace.Tee
	// emit is the listener the hardware units report to: a batcher in
	// front of the fault injector (when one is configured) or of
	// &listeners directly; with cfg.EventBatch == 1 the batcher is
	// omitted and emit is the downstream stage itself.
	emit     trace.Listener
	batcher  *trace.Batcher
	injector *faults.Injector
	procs    []*Process
	rng      *stats.RNG
	heap     []*hwContext // min-heap over non-idle contexts; see ctxheap.go
	started  bool
	closed   bool

	migrations uint64
	switches   uint64

	// Observability: opCount accumulates executed operations between
	// publishes (a plain add per op — cheaper than checking whether
	// metrics are enabled); the instruments are nil when cfg.Metrics is
	// nil, making every publish a no-op.
	opCount     uint64
	mOps        *obs.Counter
	mSwitches   *obs.Gauge
	mMigrations *obs.Gauge
	mRunNS      *obs.Timer
}

// New builds a system from cfg, rejecting inconsistent machine
// descriptions with an error wrapping ErrBadConfig. Listeners
// registered later receive every indicator event the hardware emits —
// routed through the sensor fault injector when cfg.Faults is set.
func New(cfg Config) (*System, error) {
	if cfg.Cores <= 0 || cfg.ThreadsPerCore <= 0 {
		return nil, fmt.Errorf("%w: need at least one core and one thread, got %d cores × %d threads",
			ErrBadConfig, cfg.Cores, cfg.ThreadsPerCore)
	}
	if cfg.QuantumCycles == 0 {
		return nil, fmt.Errorf("%w: quantum must be positive", ErrBadConfig)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.EventBatch < 0 {
		return nil, fmt.Errorf("%w: EventBatch must be >= 0, got %d",
			ErrBadConfig, cfg.EventBatch)
	}
	s := &System{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
	s.mOps = cfg.Metrics.Counter("sim.ops")
	s.mSwitches = cfg.Metrics.Gauge("sim.ctx_switches")
	s.mMigrations = cfg.Metrics.Gauge("sim.migrations")
	s.mRunNS = cfg.Metrics.Timer("sim.run_ns")
	s.emit = &s.listeners
	if !cfg.Faults.IsZero() {
		inj, err := faults.NewInjector(cfg.Faults, &s.listeners)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		inj.Instrument(cfg.Metrics)
		s.injector = inj
		s.emit = inj
	}
	if cfg.EventBatch != 1 {
		s.batcher = trace.NewBatcher(s.emit, cfg.EventBatch)
		s.batcher.Instrument(cfg.Metrics)
		s.emit = s.batcher
	}
	s.bus = bus.New(cfg.Bus, s.emit)
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("%w: L2: %v", ErrBadConfig, err)
	}
	s.l2 = l2
	for b := cfg.L2.LineBytes; b > 1; b >>= 1 {
		s.lineShift++
	}
	if cfg.Ring.Stops > 0 {
		s.ring = ring.New(cfg.Ring, s.emit)
	}
	tlbCfg := cfg.TLB
	if tlbCfg.Sets == 0 {
		tlbCfg = tlb.DefaultConfig()
	}
	switch cfg.Tracker {
	case TrackerIdeal:
		s.tracker = conflict.MustNewIdeal(s.l2.NumBlocks())
	default:
		t, err := conflict.NewGenerational(conflict.GenerationalConfig{TotalBlocks: s.l2.NumBlocks()})
		if err != nil {
			return nil, fmt.Errorf("%w: tracker: %v", ErrBadConfig, err)
		}
		s.tracker = t
		s.trackGen = t
	}
	for c := 0; c < cfg.Cores; c++ {
		l1, err := cache.New(cfg.L1)
		if err != nil {
			return nil, fmt.Errorf("%w: L1: %v", ErrBadConfig, err)
		}
		co := &core{
			id:  c,
			l1:  l1,
			div: divider.New(cfg.Div, s.emit),
			tlb: tlb.New(tlbCfg, s.emit),
		}
		s.cores = append(s.cores, co)
		for t := 0; t < cfg.ThreadsPerCore; t++ {
			s.contexts = append(s.contexts, &hwContext{
				id:         uint8(c*cfg.ThreadsPerCore + t),
				core:       co,
				quantumEnd: cfg.QuantumCycles,
				heapIdx:    -1,
			})
		}
	}
	return s, nil
}

// MustNew is New for configurations known to be valid (tests, the
// hardcoded defaults); it panics on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// publishMetrics flushes the accumulated operation count and the
// scheduling counters into the registry. Called at quantum boundaries
// and at quiesce, so a live metrics endpoint tracks the run at OS-tick
// granularity without per-operation atomic traffic.
func (s *System) publishMetrics() {
	if s.mOps == nil {
		return
	}
	s.mOps.Add(s.opCount)
	s.opCount = 0
	s.mSwitches.Set(int64(s.switches))
	s.mMigrations.Set(int64(s.migrations))
}

// FaultStats returns the sensor fault injector's counters and whether
// an injector is configured at all.
func (s *System) FaultStats() (faults.Stats, bool) {
	if s.injector == nil {
		return faults.Stats{}, false
	}
	return s.injector.Stats(), true
}

// AddListener registers a hardware event listener (an auditor, a raw
// recorder, ...). Must be called before Run.
func (s *System) AddListener(l trace.Listener) {
	s.listeners = append(s.listeners, l)
}

// SpawnOption adjusts process placement.
type SpawnOption func(*Process)

// Pin fixes the process to a hardware context; it will never migrate.
// The divider and cache channels pin the trojan and spy onto the two
// hyperthreads of one core, as in the paper.
func Pin(contextID int) SpawnOption {
	return func(p *Process) { p.pinned = contextID }
}

// Spawn registers a program as a software process. Unpinned processes
// are placed on the least-loaded context (ties to the lowest ID).
// Spawn must precede Run.
func (s *System) Spawn(prog Program, opts ...SpawnOption) *Process {
	if s.started {
		panic("sim: Spawn after Run")
	}
	p := &Process{
		id:     len(s.procs),
		name:   prog.Name(),
		prog:   prog,
		pinned: -1,
		sys:    s,
		reqCh:  make(chan Op),
		respCh: make(chan response),
	}
	for _, o := range opts {
		o(p)
	}
	var target *hwContext
	if p.pinned >= 0 {
		if p.pinned >= len(s.contexts) {
			panic(fmt.Sprintf("sim: pin to context %d of %d", p.pinned, len(s.contexts)))
		}
		target = s.contexts[p.pinned]
	} else {
		// Prefer idle cores over idle sibling contexts, as a real
		// scheduler spreads load before doubling up hyperthreads.
		coreLoad := func(c *hwContext) int {
			load := 0
			for _, o := range s.contexts {
				if o.core == c.core {
					load += len(o.runq)
				}
			}
			return load
		}
		target = s.contexts[0]
		bestCore, bestCtx := coreLoad(target), len(target.runq)
		for _, c := range s.contexts[1:] {
			cl, xl := coreLoad(c), len(c.runq)
			if cl < bestCore || (cl == bestCore && xl < bestCtx) {
				target, bestCore, bestCtx = c, cl, xl
			}
		}
	}
	target.runq = append(target.runq, p)
	p.ctx = target
	p.machine = &Machine{proc: p, geo: s.Geometry()}
	s.procs = append(s.procs, p)
	return p
}

// Geometry returns the static machine description.
func (s *System) Geometry() Geometry {
	return Geometry{
		Contexts:       len(s.contexts),
		Cores:          s.cfg.Cores,
		ThreadsPerCore: s.cfg.ThreadsPerCore,
		ClockHz:        s.cfg.ClockHz,
		QuantumCycles:  s.cfg.QuantumCycles,
		LineBytes:      s.cfg.L2.LineBytes,
		L1Sets:         s.cores[0].l1.NumSets(),
		L1Ways:         s.cores[0].l1.Ways(),
		L2Sets:         s.l2.NumSets(),
		L2Ways:         s.l2.Ways(),
		MemCycles:      s.cfg.MemCycles,
		RingStops:      s.cfg.Ring.Stops,
		TLBSets:        s.cores[0].tlb.Config().Sets,
		TLBWays:        s.cores[0].tlb.Config().Ways,
	}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Now returns the minimum clock across contexts that still have work,
// i.e. the global simulated time.
func (s *System) Now() uint64 {
	var now uint64
	first := true
	for _, c := range s.contexts {
		if len(c.runq) == 0 {
			continue
		}
		if first || c.clock < now {
			now = c.clock
			first = false
		}
	}
	return now
}

// Stats reports OS-level scheduling counters.
type SchedStats struct {
	ContextSwitches uint64
	Migrations      uint64
}

// SchedStats returns scheduling counters.
func (s *System) SchedStats() SchedStats {
	return SchedStats{ContextSwitches: s.switches, Migrations: s.migrations}
}

// BusStats exposes the shared bus counters.
func (s *System) BusStats() bus.Stats { return s.bus.Stats() }

// CoreDividerStats exposes a core's divider counters.
func (s *System) CoreDividerStats(core int) divider.Stats {
	return s.cores[core].div.Stats()
}

// RingStats exposes the ring interconnect counters; ok is false when
// the ring is disabled.
func (s *System) RingStats() (st ring.Stats, ok bool) {
	if s.ring == nil {
		return ring.Stats{}, false
	}
	return s.ring.Stats(), true
}

// CoreTLBStats exposes a core's shared-TLB counters.
func (s *System) CoreTLBStats(core int) tlb.Stats {
	return s.cores[core].tlb.Stats()
}

// L2Stats exposes the shared L2's counters.
func (s *System) L2Stats() cache.Stats {
	return s.l2.Stats()
}
