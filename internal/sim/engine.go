package sim

import (
	"cchunter/internal/cache"
	"cchunter/internal/conflict"
	"cchunter/internal/trace"
)

// Run advances the simulation until every context's clock reaches the
// absolute cycle `until` (or all processes finish). It may be called
// repeatedly with increasing targets; state carries over. Determinism:
// the engine always executes the pending operation of the context with
// the smallest clock, breaking ties by context ID.
func (s *System) Run(until uint64) {
	if s.closed {
		panic("sim: Run after Close")
	}
	s.started = true
	span := s.mRunNS.Start() // zero Span when metrics are off: no clock read
	defer span.End()
	defer s.quiesce()
	for {
		c := s.pickContext()
		if c == nil || c.clock >= until {
			return
		}
		p := c.runq[0]
		if !p.started {
			s.startProc(p)
		}
		if p.done {
			s.reapProc(c, p)
			continue
		}
		if p.pending == nil {
			req, ok := <-p.reqCh
			if !ok {
				p.done = true
				s.reapProc(c, p)
				continue
			}
			p.pending = &req
		}
		if c.clock >= c.quantumEnd {
			s.quantumBoundary(c)
			continue // placement may have changed; re-pick
		}
		req := *p.pending
		p.pending = nil
		s.execute(c, p, req)
	}
}

// quiesce parks every running program goroutine: each one is either
// finished or blocked waiting for its next response, so the caller can
// safely read program state (decoded bits, latency series) without
// racing a goroutine that was still executing between operations.
func (s *System) quiesce() {
	for _, p := range s.procs {
		if !p.started || p.done || p.pending != nil {
			continue
		}
		req, ok := <-p.reqCh
		if !ok {
			p.done = true
			if p.ctx != nil {
				s.reapProc(p.ctx, p)
			}
			continue
		}
		p.pending = &req
	}
	// Drain the delivery pipeline front to back: buffered batches first
	// (they feed the injector), then any event the injector's reorder
	// stage is still holding, so listeners see a complete stream before
	// the caller analyzes.
	if s.batcher != nil {
		s.batcher.Flush()
	}
	if s.injector != nil {
		s.injector.Flush()
	}
	s.publishMetrics()
}

// pickContext returns the non-idle context with the smallest clock.
func (s *System) pickContext() *hwContext {
	var best *hwContext
	for _, c := range s.contexts {
		if len(c.runq) == 0 {
			continue
		}
		if best == nil || c.clock < best.clock {
			best = c
		}
	}
	return best
}

func (s *System) startProc(p *Process) {
	p.started = true
	go func() {
		defer close(p.reqCh)
		defer func() {
			if r := recover(); r != nil && r != errStopped {
				panic(r)
			}
		}()
		p.prog.Run(p.machine)
	}()
}

// reapProc removes a finished process from its context's run queue.
func (s *System) reapProc(c *hwContext, p *Process) {
	for i, q := range c.runq {
		if q == p {
			c.runq = append(c.runq[:i], c.runq[i+1:]...)
			break
		}
	}
}

// quantumBoundary handles an OS timer tick on context c: rotate the
// run queue (charging a context-switch cost when a different process
// comes in) and, with MigrationProb, migrate the outgoing unpinned
// process to the least-loaded other context.
func (s *System) quantumBoundary(c *hwContext) {
	for c.quantumEnd <= c.clock {
		c.quantumEnd += s.cfg.QuantumCycles
	}
	s.publishMetrics()
	if len(c.runq) == 0 {
		return
	}
	cur := c.runq[0]
	if s.cfg.MigrationProb > 0 && cur.pinned < 0 && len(s.contexts) > 1 &&
		s.rng.Float64() < s.cfg.MigrationProb {
		var target *hwContext
		for _, o := range s.contexts {
			if o == c {
				continue
			}
			if target == nil || len(o.runq) < len(target.runq) {
				target = o
			}
		}
		c.runq = c.runq[1:]
		// The process resumes once the target context's clock catches
		// up; its clock never runs backwards because the engine always
		// executes the globally smallest clock first.
		if target.clock < c.clock {
			target.clock = c.clock
		}
		target.runq = append(target.runq, cur)
		cur.ctx = target
		s.migrations++
		return
	}
	if len(c.runq) > 1 {
		c.runq = append(c.runq[1:], cur)
		c.clock += s.cfg.CtxSwitchCycles
		s.switches++
	}
}

// execute performs one operation for process p on context c at the
// context's current clock and replies to the program. Indicator events
// are stamped at the issue cycle, which equals the global minimum
// clock, keeping the event stream time-ordered.
func (s *System) execute(c *hwContext, p *Process, req request) {
	s.opCount++ // published at quantum boundaries; see publishMetrics
	t0 := c.clock
	var latency uint64
	switch req.kind {
	case opCompute:
		latency = req.cycles
	case opNow:
		latency = 0
	case opWaitUntil:
		if req.cycles > c.clock {
			latency = req.cycles - c.clock
		}
	case opLoad, opStore:
		latency = s.memAccess(c, req.addr, t0, t0)
	case opLoadN:
		for _, a := range req.addrs {
			latency += s.memAccess(c, a, t0+latency, t0)
		}
	case opAtomicUnaligned:
		start := t0
		if lim := s.cfg.Mitigations.BusLimiter; lim != nil {
			start += lim.Penalty(t0, c.id)
		}
		done, _ := s.bus.LockAccess(start, c.id)
		latency = done - t0
	case opDiv:
		start := s.dividerSlot(c, t0)
		done, _ := c.core.div.DivideStamped(start, t0, c.id)
		latency = done - t0
	case opDivN:
		cursor := t0
		for i := 0; i < req.count; i++ {
			cursor = s.dividerSlot(c, cursor)
			cursor, _ = c.core.div.DivideStamped(cursor, t0, c.id)
		}
		latency = cursor - t0
	default:
		panic("sim: unknown op")
	}
	c.clock = t0 + latency
	observedLat := latency
	observedNow := c.clock
	if f := s.cfg.Mitigations.Fuzz; f != nil {
		// Fuzzy time: every measurement the program can make — op
		// latencies and clock reads — is degraded; the architectural
		// clock is not.
		switch req.kind {
		case opLoad, opStore, opLoadN, opAtomicUnaligned, opDiv, opDivN:
			observedLat = f.Observe(latency)
		}
		observedNow = f.ObserveClock(c.clock)
	}
	p.respCh <- response{now: observedNow, latency: observedLat}
}

// dividerSlot applies the divider time-multiplexing mitigation: the
// earliest cycle at or after now when this context may divide.
func (s *System) dividerSlot(c *hwContext, now uint64) uint64 {
	tdm := s.cfg.Mitigations.DividerTDM
	if tdm == nil {
		return now
	}
	thread := int(c.id) % s.cfg.ThreadsPerCore
	return tdm.NextSlot(now, thread, s.cfg.ThreadsPerCore, c.core.div.Config().DivCycles)
}

// memAccess runs one load/store through the core's hierarchy: L1, the
// hyperthread-shared L2 with its conflict-miss tracker, then the
// shared bus and memory. It returns the total latency. `now` is the
// access's timing start; `stamp` is the cycle any emitted event is
// stamped with (the issue cycle of the enclosing request, which keeps
// the global event stream time-ordered across batched accesses).
func (s *System) memAccess(c *hwContext, addr uint64, now, stamp uint64) uint64 {
	co := c.core
	l1 := co.l1.Access(addr, c.id)
	lat := co.l1.HitLatency()
	if l1.Hit {
		return lat
	}
	var l2 cache.Result
	if part := s.cfg.Mitigations.Partition; part != nil {
		lo, hi := part.WayRange(c.id, s.l2.Ways())
		l2 = s.l2.AccessInWays(addr, c.id, lo, hi)
	} else {
		l2 = s.l2.Access(addr, c.id)
	}
	lat += s.l2.HitLatency()
	if l2.Evicted {
		// Inclusive hierarchy: an L2 eviction back-invalidates every
		// core's L1 copy.
		for _, other := range s.cores {
			other.l1.InvalidateLine(l2.EvictedLine)
		}
	}
	isConflict := s.tracker.Observe(conflict.Observation{
		LineAddr:     l2.LineAddr,
		Set:          l2.Set,
		Ctx:          c.id,
		Hit:          l2.Hit,
		Evicted:      l2.Evicted,
		EvictedLine:  l2.EvictedLine,
		EvictedOwner: l2.EvictedOwner,
	})
	if isConflict {
		victim := trace.NoContext
		if l2.Evicted {
			victim = l2.EvictedOwner
		}
		s.emit.OnEvent(trace.Event{
			Cycle:  stamp,
			Kind:   trace.KindConflictMiss,
			Actor:  c.id,
			Victim: victim,
			Unit:   l2.Set,
		})
	}
	if l2.Hit {
		return lat
	}
	busStart := now + lat
	done, _ := s.bus.Access(busStart, c.id)
	return (done - now) + s.cfg.MemCycles
}

// Close tears down all still-running program goroutines. The system
// cannot be used afterwards.
func (s *System) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, p := range s.procs {
		if !p.started || p.done {
			continue
		}
		if p.pending == nil {
			req, ok := <-p.reqCh
			if !ok {
				p.done = true
				continue
			}
			p.pending = &req
		}
		p.pending = nil
		p.respCh <- response{stop: true}
		for range p.reqCh {
			// drain until the goroutine closes the channel
		}
		p.done = true
	}
}
