package sim

import (
	"cchunter/internal/cache"
	"cchunter/internal/conflict"
	"cchunter/internal/trace"
)

// Run advances the simulation until every context's clock reaches the
// absolute cycle `until` (or all processes finish). It may be called
// repeatedly with increasing targets; state carries over. Determinism:
// the engine always executes the pending operation of the context with
// the smallest clock, breaking ties by context ID (the heap order of
// ctxheap.go).
//
// Stepper programs execute on the coroutine-free path: the engine
// pulls each op with a direct Step call and stores it by value, so the
// steady-state op loop performs no channel operation and no heap
// allocation. Programs implementing only the blocking interface run on
// the goroutine driver, one channel round-trip per op, with the
// pending op likewise held by value (the old `p.pending = &req` per-op
// escape is gone on both paths).
func (s *System) Run(until uint64) {
	if s.closed {
		panic("sim: Run after Close")
	}
	if !s.started {
		s.started = true
		s.heapInit()
	}
	span := s.mRunNS.Start() // zero Span when metrics are off: no clock read
	defer span.End()
	defer s.quiesce()
	for {
		c := s.heapMin()
		if c == nil || c.clock >= until {
			return
		}
		p := c.runq[0]
		if !p.started {
			s.startProc(p)
		}
		if p.done {
			s.reapProc(c, p)
			continue
		}
		if !p.hasPend {
			// Stepper fetch inlined: this runs once per op, and the call
			// through fetchOp costs a visible fraction of the whole run.
			if p.step != nil {
				op, ok := p.step.Step(p.last)
				if !ok {
					p.done = true
					s.reapProc(c, p)
					continue
				}
				p.pendOp, p.hasPend = op, true
			} else if !s.fetchOp(p) {
				s.reapProc(c, p)
				continue
			}
		}
		if c.clock >= c.quantumEnd {
			s.quantumBoundary(c)
			continue // placement may have changed; re-pick
		}
		p.hasPend = false
		res := s.execute(c, &p.pendOp)
		if p.step != nil {
			p.last = res
		} else {
			p.respCh <- response{now: res.Now, latency: res.Latency}
		}
	}
}

// fetchOp obtains the process's next operation — a direct Step call on
// the coroutine-free path, a channel receive from the program
// goroutine otherwise — and stores it by value in p.pendOp. It returns
// false (marking the process done) when the program has finished.
func (s *System) fetchOp(p *Process) bool {
	if p.step != nil {
		op, ok := p.step.Step(p.last)
		if !ok {
			p.done = true
			return false
		}
		p.pendOp, p.hasPend = op, true
		return true
	}
	op, ok := <-p.reqCh
	if !ok {
		p.done = true
		return false
	}
	p.pendOp, p.hasPend = op, true
	return true
}

// quiesce parks every running program at an op boundary: the next
// operation is prefetched (advancing program-side state up to the
// point of issuing it), so the caller can safely read program state
// (decoded bits, latency series) knowing every completed op's effects
// have been applied. On the goroutine driver this doubles as the
// synchronization point proving the goroutine is blocked.
func (s *System) quiesce() {
	for _, p := range s.procs {
		if !p.started || p.done || p.hasPend {
			continue
		}
		if !s.fetchOp(p) && p.ctx != nil {
			s.reapProc(p.ctx, p)
		}
	}
	// Drain the delivery pipeline front to back: buffered batches first
	// (they feed the injector), then any event the injector's reorder
	// stage is still holding, so listeners see a complete stream before
	// the caller analyzes.
	if s.batcher != nil {
		s.batcher.Flush()
	}
	if s.injector != nil {
		s.injector.Flush()
	}
	s.publishMetrics()
}

// startProc activates a process on first schedule. Steppers get the
// direct driver (no goroutine) unless the configuration forces the
// goroutine reference driver for differential testing.
func (s *System) startProc(p *Process) {
	p.started = true
	if st, ok := p.prog.(Stepper); ok && s.cfg.Driver != DriverGoroutine {
		p.step = st
		st.Begin(p.machine)
		return
	}
	go func() {
		defer close(p.reqCh)
		defer func() {
			if r := recover(); r != nil && r != errStopped {
				panic(r)
			}
		}()
		p.prog.Run(p.machine)
	}()
}

// reapProc removes a finished process from its context's run queue.
// The departing process is almost always the currently scheduled one
// (runq[0]); the linear fallback only runs for processes reaped off
// the run position (e.g. at quiesce after a migration).
func (s *System) reapProc(c *hwContext, p *Process) {
	if len(c.runq) > 0 && c.runq[0] == p {
		c.runq = c.runq[1:]
	} else {
		for i, q := range c.runq {
			if q == p {
				c.runq = append(c.runq[:i], c.runq[i+1:]...)
				break
			}
		}
	}
	if len(c.runq) == 0 {
		s.heapRemove(c)
	}
}

// quantumBoundary handles an OS timer tick on context c: rotate the
// run queue (charging a context-switch cost when a different process
// comes in) and, with MigrationProb, migrate the outgoing unpinned
// process to the least-loaded other context.
func (s *System) quantumBoundary(c *hwContext) {
	for c.quantumEnd <= c.clock {
		c.quantumEnd += s.cfg.QuantumCycles
	}
	s.publishMetrics()
	if len(c.runq) == 0 {
		return
	}
	cur := c.runq[0]
	if s.cfg.MigrationProb > 0 && cur.pinned < 0 && len(s.contexts) > 1 &&
		s.rng.Float64() < s.cfg.MigrationProb {
		var target *hwContext
		for _, o := range s.contexts {
			if o == c {
				continue
			}
			if target == nil || len(o.runq) < len(target.runq) {
				target = o
			}
		}
		c.runq = c.runq[1:]
		if len(c.runq) == 0 {
			s.heapRemove(c)
		}
		// The process resumes once the target context's clock catches
		// up; its clock never runs backwards because the engine always
		// executes the globally smallest clock first.
		if target.clock < c.clock {
			target.clock = c.clock
		}
		target.runq = append(target.runq, cur)
		cur.ctx = target
		if target.heapIdx < 0 {
			s.heapPush(target)
		} else {
			s.heapFix(target)
		}
		s.migrations++
		return
	}
	if len(c.runq) > 1 {
		c.runq = append(c.runq[1:], cur)
		c.clock += s.cfg.CtxSwitchCycles
		s.heapFix(c)
		s.switches++
	}
}

// execute performs one operation on context c at the context's
// current clock and returns the program-observable result. The op is
// passed by pointer (it lives in the process's pendOp slot) so the
// steady-state loop moves no 56-byte struct per operation. Indicator
// events are stamped at the issue cycle, which equals the global
// minimum clock, keeping the event stream time-ordered.
func (s *System) execute(c *hwContext, op *Op) OpResult {
	s.opCount++ // published at quantum boundaries; see publishMetrics
	t0 := c.clock
	var latency uint64
	switch op.Kind {
	case OpCompute:
		latency = op.Cycles
	case OpNow:
		latency = 0
	case OpWaitUntil:
		if op.Cycles > c.clock {
			latency = op.Cycles - c.clock
		}
	case OpLoad, OpStore:
		latency = s.memAccess(c, op.Addr, t0, t0)
	case OpLoadN:
		for _, a := range op.Addrs {
			latency += s.memAccess(c, a, t0+latency, t0)
		}
	case OpAtomicUnaligned:
		start := t0
		if lim := s.cfg.Mitigations.BusLimiter; lim != nil {
			start += lim.Penalty(t0, c.id)
		}
		done, _ := s.bus.LockAccess(start, c.id)
		latency = done - t0
	case OpDiv:
		start := s.dividerSlot(c, t0)
		done, _ := c.core.div.DivideStamped(start, t0, c.id)
		latency = done - t0
	case OpDivN:
		cursor := t0
		for i := 0; i < op.Count; i++ {
			cursor = s.dividerSlot(c, cursor)
			cursor, _ = c.core.div.DivideStamped(cursor, t0, c.id)
		}
		latency = cursor - t0
	case OpTLBProbe:
		latency, _ = c.core.tlb.Probe(t0, t0, c.id, op.Addr)
	default:
		panic("sim: unknown op")
	}
	c.clock = t0 + latency
	if latency != 0 {
		s.heapFix(c)
	}
	observedLat := latency
	observedNow := c.clock
	if f := s.cfg.Mitigations.Fuzz; f != nil {
		// Fuzzy time: every measurement the program can make — op
		// latencies and clock reads — is degraded; the architectural
		// clock is not.
		switch op.Kind {
		case OpLoad, OpStore, OpLoadN, OpAtomicUnaligned, OpDiv, OpDivN, OpTLBProbe:
			observedLat = f.Observe(latency)
		}
		observedNow = f.ObserveClock(c.clock)
	}
	return OpResult{Now: observedNow, Latency: observedLat}
}

// dividerSlot applies the divider time-multiplexing mitigation: the
// earliest cycle at or after now when this context may divide.
func (s *System) dividerSlot(c *hwContext, now uint64) uint64 {
	tdm := s.cfg.Mitigations.DividerTDM
	if tdm == nil {
		return now
	}
	thread := int(c.id) % s.cfg.ThreadsPerCore
	return tdm.NextSlot(now, thread, s.cfg.ThreadsPerCore, c.core.div.Config().DivCycles)
}

// memAccess runs one load/store through the core's hierarchy: L1, the
// hyperthread-shared L2 with its conflict-miss tracker, then the
// shared bus and memory. It returns the total latency. `now` is the
// access's timing start; `stamp` is the cycle any emitted event is
// stamped with (the issue cycle of the enclosing request, which keeps
// the global event stream time-ordered across batched accesses).
func (s *System) memAccess(c *hwContext, addr uint64, now, stamp uint64) uint64 {
	co := c.core
	lat := co.l1.HitLatency()
	if co.l1.AccessHit(addr, c.id) {
		return lat
	}
	if s.ring != nil {
		// The miss transits the ring to the slice owning the line
		// before the shared L2 services it.
		done, _ := s.ring.Transit(now+lat, stamp, c.id, co.id, addr>>s.lineShift)
		lat = done - now
	}
	var l2 cache.Result
	if part := s.cfg.Mitigations.Partition; part != nil {
		lo, hi := part.WayRange(c.id, s.l2.Ways())
		l2 = s.l2.AccessInWays(addr, c.id, lo, hi)
	} else {
		l2 = s.l2.Access(addr, c.id)
	}
	lat += s.l2.HitLatency()
	if l2.Evicted {
		// Inclusive hierarchy: an L2 eviction back-invalidates every
		// core's L1 copy.
		for _, other := range s.cores {
			other.l1.InvalidateLine(l2.EvictedLine)
		}
	}
	ob := conflict.Observation{
		LineAddr:     l2.LineAddr,
		Set:          l2.Set,
		Ctx:          c.id,
		Hit:          l2.Hit,
		Evicted:      l2.Evicted,
		EvictedLine:  l2.EvictedLine,
		EvictedOwner: l2.EvictedOwner,
	}
	var isConflict bool
	if s.trackGen != nil {
		// Concrete call on the default tracker; skips the interface
		// dispatch this loop pays once per L2 access.
		isConflict = s.trackGen.Observe(ob)
	} else {
		isConflict = s.tracker.Observe(ob)
	}
	if isConflict {
		victim := trace.NoContext
		if l2.Evicted {
			victim = l2.EvictedOwner
		}
		s.emit.OnEvent(trace.Event{
			Cycle:  stamp,
			Kind:   trace.KindConflictMiss,
			Actor:  c.id,
			Victim: victim,
			Unit:   l2.Set,
		})
	}
	if l2.Hit {
		return lat
	}
	busStart := now + lat
	done, _ := s.bus.Access(busStart, c.id)
	return (done - now) + s.cfg.MemCycles
}

// Close tears down all still-running program goroutines. Stepper
// processes have no goroutine: they are simply marked done. The system
// cannot be used afterwards.
func (s *System) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, p := range s.procs {
		if !p.started || p.done {
			continue
		}
		if p.step != nil {
			p.done = true
			p.hasPend = false
			continue
		}
		if !p.hasPend {
			if _, ok := <-p.reqCh; !ok {
				p.done = true
				continue
			}
		}
		p.hasPend = false
		p.respCh <- response{stop: true}
		for range p.reqCh {
			// drain until the goroutine closes the channel
		}
		p.done = true
	}
}
