package sim

// ctxHeap is an indexed binary min-heap over the non-idle hardware
// contexts, keyed by (clock, context id). It replaces the O(contexts)
// linear scan the engine used to run before every operation: the
// scheduling invariant — execute the pending op of the context with
// the smallest clock, ties to the lowest id — is exactly the heap
// order, so heapMin is the old pickContext.
//
// Membership tracks runq occupancy: a context is in the heap iff its
// run queue is non-empty. Each hwContext carries its own heap index
// so key updates (every executed op moves a clock) are O(log n)
// sift operations with no search.

// ctxLess is the engine's documented scheduling order.
func ctxLess(a, b *hwContext) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.id < b.id)
}

// heapInit (re)builds the heap from the contexts that currently have
// runnable processes. Called once when Run first starts.
func (s *System) heapInit() {
	s.heap = s.heap[:0]
	for _, c := range s.contexts {
		c.heapIdx = -1
		if len(c.runq) > 0 {
			c.heapIdx = len(s.heap)
			s.heap = append(s.heap, c)
		}
	}
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.heapDown(i)
	}
}

// heapMin returns the non-idle context with the smallest (clock, id),
// or nil when every context is idle.
func (s *System) heapMin() *hwContext {
	if len(s.heap) == 0 {
		return nil
	}
	return s.heap[0]
}

// heapPush inserts a context that just became non-idle.
func (s *System) heapPush(c *hwContext) {
	c.heapIdx = len(s.heap)
	s.heap = append(s.heap, c)
	s.heapUp(c.heapIdx)
}

// heapRemove deletes a context that just went idle.
func (s *System) heapRemove(c *hwContext) {
	i := c.heapIdx
	if i < 0 {
		return
	}
	last := len(s.heap) - 1
	if i != last {
		s.heap[i] = s.heap[last]
		s.heap[i].heapIdx = i
	}
	s.heap = s.heap[:last]
	c.heapIdx = -1
	if i != last {
		s.heapFix(s.heap[i])
	}
}

// heapFix restores heap order after c's clock changed.
func (s *System) heapFix(c *hwContext) {
	if c.heapIdx < 0 {
		return
	}
	if len(s.heap) == 2 {
		// Two runnable contexts — the trojan/spy steady state of every
		// channel scenario, hit once per executed op: order is a single
		// compare-and-swap, no sift needed.
		h := s.heap
		if ctxLess(h[1], h[0]) {
			h[0], h[1] = h[1], h[0]
			h[0].heapIdx, h[1].heapIdx = 0, 1
		}
		return
	}
	if !s.heapDown(c.heapIdx) {
		s.heapUp(c.heapIdx)
	}
}

func (s *System) heapUp(i int) {
	h := s.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !ctxLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].heapIdx, h[parent].heapIdx = i, parent
		i = parent
	}
}

func (s *System) heapDown(i int) bool {
	h := s.heap
	n := len(h)
	moved := false
	for {
		least := i
		if l := 2*i + 1; l < n && ctxLess(h[l], h[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && ctxLess(h[r], h[least]) {
			least = r
		}
		if least == i {
			return moved
		}
		h[i], h[least] = h[least], h[i]
		h[i].heapIdx, h[least].heapIdx = i, least
		i = least
		moved = true
	}
}
