package sim

// OpKind identifies one machine operation.
type OpKind uint8

const (
	// OpCompute spends Cycles cycles of pure computation.
	OpCompute OpKind = iota
	// OpLoad reads Addr through the cache hierarchy.
	OpLoad
	// OpStore writes Addr (modelled identically to OpLoad).
	OpStore
	// OpLoadN performs the loads in Addrs back-to-back in one round.
	OpLoadN
	// OpAtomicUnaligned locks the memory bus for an atomic access
	// spanning two lines at Addr.
	OpAtomicUnaligned
	// OpDiv issues one integer division.
	OpDiv
	// OpDivN issues Count back-to-back divisions in one round.
	OpDivN
	// OpNow reads the context's clock.
	OpNow
	// OpWaitUntil sleeps until absolute cycle Cycles.
	OpWaitUntil
	// OpTLBProbe looks up Addr's translation in the core's shared TLB
	// (filling on a miss) without touching the cache hierarchy.
	OpTLBProbe
)

// Op is one decoded machine operation. It is the unit of work the
// engine executes: Steppers hand ops to the engine by value, so the
// steady-state execution path performs no per-op allocation.
type Op struct {
	Kind   OpKind
	Addr   uint64   // OpLoad / OpStore / OpAtomicUnaligned target
	Addrs  []uint64 // OpLoadN batch (owned by the program; stable until its next Step)
	Cycles uint64   // OpCompute amount / OpWaitUntil absolute target
	Count  int      // OpDivN count
}

// OpResult is the engine's reply to an executed Op. Both fields are
// the program-observable values: with a fuzzy-clock mitigation active
// they are degraded, while the architectural clock is not.
type OpResult struct {
	Now     uint64 // context clock after the op
	Latency uint64 // cycles from issue to completion
}

// Stepper is a resumable program: a state machine the engine drives
// with direct calls instead of a goroutine. The engine calls Step to
// obtain the next operation, executes it, and passes the result to the
// following Step call — zero channel traffic, zero stack switches.
//
// Every Stepper must also implement the blocking Program interface;
// RunSteps adapts Step to the goroutine driver so the exact same
// program logic runs under either driver (the differential-test
// lever: Config.Driver selects which one executes).
//
// A Stepper instance holds per-run state and must not be spawned into
// more than one process.
type Stepper interface {
	Program
	// Begin hands the stepper its machine handle before the first
	// Step. Only the non-blocking Machine methods (Geometry, PID,
	// PrivateAddr, L2AddrForSet) may be called on it.
	Begin(m *Machine)
	// Step returns the next operation given the previous op's result.
	// The first call receives the zero OpResult. ok=false means the
	// program finished; Step is never called again.
	Step(prev OpResult) (op Op, ok bool)
}

// RunSteps drives a Stepper through the blocking Machine API. Stepper
// implementations use it as their entire Program.Run body, so the
// goroutine reference driver executes the identical op stream.
func RunSteps(s Stepper, m *Machine) {
	s.Begin(m)
	var prev OpResult
	for {
		op, ok := s.Step(prev)
		if !ok {
			return
		}
		prev = m.Do(op)
	}
}
