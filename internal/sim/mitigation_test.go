package sim

import (
	"testing"

	"cchunter/internal/mitigate"
	"cchunter/internal/trace"
)

func TestBusLimiterSlowsLockStorms(t *testing.T) {
	run := func(withLimiter bool) uint64 {
		cfg := TestConfig()
		if withLimiter {
			cfg.Mitigations.BusLimiter = mitigate.NewBusLockLimiter(cfg.Contexts(), 100_000, 2, 200_000)
		}
		s := MustNew(cfg)
		defer s.Close()
		var end uint64
		s.Spawn(NewProgram("storm", func(m *Machine) {
			for i := 0; i < 50; i++ {
				m.AtomicUnaligned(0)
			}
			end = m.Now()
		}))
		s.Run(100_000_000)
		return end
	}
	free := run(false)
	limited := run(true)
	if limited < 10*free {
		t.Errorf("limiter barely slowed the storm: %d vs %d cycles", limited, free)
	}
}

func TestPartitionPreventsCrossContextEviction(t *testing.T) {
	cfg := TestConfig()
	cfg.Mitigations.Partition = mitigate.NewCachePartition(cfg.Contexts(), nil)
	s := MustNew(cfg)
	defer s.Close()
	rec := trace.NewRecorder(trace.KindConflictMiss)
	s.AddListener(rec)
	const slot = 50_000
	pingpong := func(phase uint64) func(m *Machine) {
		return func(m *Machine) {
			geo := m.Geometry()
			for i := uint64(0); ; i++ {
				m.WaitUntil((2*i + phase) * slot)
				for set := uint32(0); set < 8; set++ {
					for w := 0; w < geo.L2Ways; w++ {
						m.Load(m.L2AddrForSet(set, w))
					}
				}
			}
		}
	}
	s.Spawn(NewProgram("t", pingpong(0)), Pin(0))
	s.Spawn(NewProgram("s", pingpong(1)), Pin(1))
	s.Run(3_000_000)
	for _, e := range rec.Train().Events() {
		if e.Victim != trace.NoContext && e.Victim != e.Actor {
			t.Fatalf("cross-context eviction under partitioning: %+v", e)
		}
	}
}

func TestDividerTDMEliminatesContention(t *testing.T) {
	cfg := TestConfig()
	cfg.Mitigations.DividerTDM = mitigate.NewDividerTDM(10_000)
	s := MustNew(cfg)
	defer s.Close()
	rec := trace.NewRecorder(trace.KindDivContention)
	s.AddListener(rec)
	hammer := func(m *Machine) {
		for {
			m.Div()
		}
	}
	s.Spawn(NewProgram("a", hammer), Pin(0))
	s.Spawn(NewProgram("b", hammer), Pin(1))
	s.Run(500_000)
	if n := rec.Train().Len(); n != 0 {
		t.Errorf("TDM left %d contention events", n)
	}
}

func TestClockFuzzDegradesObservations(t *testing.T) {
	cfg := TestConfig()
	cfg.Mitigations.Fuzz = mitigate.NewClockFuzz(1000, 0, 1)
	s := MustNew(cfg)
	defer s.Close()
	var lat, now1, now2 uint64
	s.Spawn(NewProgram("p", func(m *Machine) {
		lat = m.Load(m.PrivateAddr(1)) // true ~226, quantized to 0
		now1 = m.Now()
		m.Compute(100)
		now2 = m.Now()
	}))
	s.Run(1_000_000)
	if lat%1000 != 0 {
		t.Errorf("latency %d not quantized", lat)
	}
	if now1%1000 != 0 || now2%1000 != 0 {
		t.Errorf("clock reads %d, %d not quantized", now1, now2)
	}
	if now2 < now1 {
		t.Error("fuzzed clock went backwards")
	}
}
