package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// renderChunk is the flush threshold for the CSV writers' append
// buffers: rows accumulate into one scratch slice and go to the writer
// in chunks, so a dump costs a handful of allocations total instead of
// two fmt allocations per row.
const renderChunk = 32 << 10

// WriteCSV writes the train as "cycle,kind,actor,victim,unit" rows,
// preceded by a header, for offline plotting.
func (t *Train) WriteCSV(w io.Writer) error {
	buf := make([]byte, 0, renderChunk+256)
	buf = append(buf, "cycle,kind,actor,victim,unit\n"...)
	for _, e := range t.events {
		buf = strconv.AppendUint(buf, e.Cycle, 10)
		buf = append(buf, ',')
		buf = append(buf, e.Kind.String()...)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, uint64(e.Actor), 10)
		buf = append(buf, ',')
		if e.Victim != NoContext {
			buf = strconv.AppendUint(buf, uint64(e.Victim), 10)
		}
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, uint64(e.Unit), 10)
		buf = append(buf, '\n')
		if len(buf) >= renderChunk {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ASCIITrain renders the event train as the familiar raster plot of the
// paper's Figure 4: time flows left to right across width columns; each
// column is drawn dark when it contains at least one event. It returns
// an empty string for an empty train.
func (t *Train) ASCIITrain(width int) string {
	if t.Len() == 0 || width <= 0 {
		return ""
	}
	first, last := t.Span()
	span := last - first
	if span == 0 {
		span = 1
	}
	cols := make([]int, width)
	for _, e := range t.events {
		idx := int(uint64(width-1) * (e.Cycle - first) / span)
		if idx >= width {
			idx = width - 1
		}
		cols[idx]++
	}
	var sb strings.Builder
	for _, c := range cols {
		switch {
		case c == 0:
			sb.WriteByte(' ')
		case c < 3:
			sb.WriteByte('.')
		case c < 10:
			sb.WriteByte('|')
		default:
			sb.WriteByte('#')
		}
	}
	return sb.String()
}

// WriteSeriesCSV writes a generic (x, y) float series as CSV with the
// given column names; used by experiments to dump autocorrelograms and
// latency traces.
func WriteSeriesCSV(w io.Writer, xName, yName string, ys []float64) error {
	buf := make([]byte, 0, renderChunk+256)
	buf = append(buf, xName...)
	buf = append(buf, ',')
	buf = append(buf, yName...)
	buf = append(buf, '\n')
	for i, y := range ys {
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, ',')
		// 'g' with the shortest precision is exactly fmt's %g.
		buf = strconv.AppendFloat(buf, y, 'g', -1, 64)
		buf = append(buf, '\n')
		if len(buf) >= renderChunk {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ASCIISeries renders a y-series as a rows×width ASCII line chart with
// min/max annotations — a quick look at autocorrelograms and latency
// traces without leaving the terminal.
func ASCIISeries(ys []float64, width, rows int) string {
	if len(ys) == 0 || width <= 0 || rows <= 0 {
		return ""
	}
	min, max := ys[0], ys[0]
	for _, y := range ys {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	span := max - min
	if span == 0 {
		span = 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i, y := range ys {
		col := i * (width - 1) / maxInt(len(ys)-1, 1)
		row := int(float64(rows-1) * (max - y) / span)
		grid[row][col] = '*'
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "max=%.4g\n", max)
	for _, line := range grid {
		sb.Write(line)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "min=%.4g\n", min)
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
