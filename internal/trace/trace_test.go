package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"cchunter/internal/stats"
)

func mkTrain(cycles ...uint64) *Train {
	t := NewTrain(len(cycles))
	for _, c := range cycles {
		t.Append(Event{Cycle: c, Kind: KindBusLock, Actor: 1, Victim: NoContext})
	}
	return t
}

func TestKindString(t *testing.T) {
	if KindBusLock.String() != "bus-lock" ||
		KindDivContention.String() != "div-contention" ||
		KindConflictMiss.String() != "conflict-miss" ||
		KindRingContention.String() != "ring-contention" ||
		KindTLBConflict.String() != "tlb-conflict" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should include numeric value")
	}
	if NumKinds() != 5 {
		t.Errorf("NumKinds = %d", NumKinds())
	}
}

func TestAppendMonotonic(t *testing.T) {
	tr := mkTrain(5, 5, 9)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	tr.Append(Event{Cycle: 3})
}

func TestSpan(t *testing.T) {
	if f, l := NewTrain(0).Span(); f != 0 || l != 0 {
		t.Error("empty span should be (0,0)")
	}
	if f, l := mkTrain(3, 8, 20).Span(); f != 3 || l != 20 {
		t.Errorf("span = (%d,%d)", f, l)
	}
}

func TestWindow(t *testing.T) {
	tr := mkTrain(0, 10, 20, 30, 40)
	w := tr.Window(10, 30)
	if w.Len() != 2 || w.At(0).Cycle != 10 || w.At(1).Cycle != 20 {
		t.Errorf("window events: %v", w.Events())
	}
	if tr.Window(100, 200).Len() != 0 {
		t.Error("window past end should be empty")
	}
	if tr.Window(20, 20).Len() != 0 {
		t.Error("empty range should be empty")
	}
}

func TestWindowBoundaries(t *testing.T) {
	empty := NewTrain(0)
	if w := empty.Window(0, 100); w.Len() != 0 {
		t.Errorf("empty train window: %v", w.Events())
	}
	if w := empty.Window(0, 0); w.Len() != 0 {
		t.Error("empty train, empty range: non-empty window")
	}

	tr := mkTrain(5, 5, 5, 9, 12, 12)
	// start == end on an occupied cycle selects nothing.
	if w := tr.Window(5, 5); w.Len() != 0 {
		t.Errorf("start==end window: %v", w.Events())
	}
	// A window past the last event is empty even when start is in range.
	if w := tr.Window(13, 1000); w.Len() != 0 {
		t.Errorf("window past last event: %v", w.Events())
	}
	// Ties: searchCycle must land on the *first* of an equal run, so a
	// window starting at a duplicated cycle takes the whole run...
	if w := tr.Window(5, 9); w.Len() != 3 {
		t.Errorf("window at duplicated start took %d events, want 3", w.Len())
	}
	// ...and a window ending at one excludes the whole run.
	if w := tr.Window(9, 12); w.Len() != 1 || w.At(0).Cycle != 9 {
		t.Errorf("window ending at duplicated cycle: %v", w.Events())
	}
	// Half-open on both sides: end equal to the last cycle excludes it.
	if w := tr.Window(0, 12); w.Len() != 4 {
		t.Errorf("end at last cycle took %d events, want 4", w.Len())
	}
}

func TestSearchCycleFirstOfEqualRun(t *testing.T) {
	events := mkTrain(1, 3, 3, 3, 7, 7).events
	cases := []struct {
		c    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 4}, {7, 4}, {8, 6},
	}
	for _, tc := range cases {
		if got := searchCycle(events, tc.c); got != tc.want {
			t.Errorf("searchCycle(%d) = %d, want %d", tc.c, got, tc.want)
		}
	}
	if got := searchCycle(nil, 5); got != 0 {
		t.Errorf("searchCycle on empty slice = %d, want 0", got)
	}
}

func TestDensitiesBoundaries(t *testing.T) {
	if got := NewTrain(0).Densities(0, 40, 10, false); len(got) != 4 {
		t.Errorf("empty train densities: %v", got)
	}
	tr := mkTrain(10, 10, 10, 25)
	// All events before start / after end contribute nothing.
	if got := tr.Densities(30, 50, 10, false); got[0] != 0 || got[1] != 0 {
		t.Errorf("densities past last event: %v", got)
	}
	// A duplicated cycle exactly at start lands fully in window 0.
	if got := tr.Densities(10, 30, 10, false); got[0] != 3 || got[1] != 1 {
		t.Errorf("densities with tied start cycle: %v", got)
	}
	// An event exactly at end is excluded (half-open range).
	if got := tr.Densities(0, 25, 5, false); got[2] != 3 || got[4] != 0 {
		t.Errorf("densities with event at end: %v", got)
	}
}

func TestFilterKindAndActor(t *testing.T) {
	tr := NewTrain(0)
	tr.Append(Event{Cycle: 1, Kind: KindBusLock, Actor: 0})
	tr.Append(Event{Cycle: 2, Kind: KindConflictMiss, Actor: 1})
	tr.Append(Event{Cycle: 3, Kind: KindBusLock, Actor: 1})
	if got := tr.FilterKind(KindBusLock).Len(); got != 2 {
		t.Errorf("FilterKind len = %d", got)
	}
	if got := tr.FilterActor(1).Len(); got != 2 {
		t.Errorf("FilterActor len = %d", got)
	}
}

func TestDensities(t *testing.T) {
	tr := mkTrain(0, 1, 2, 10, 11, 25)
	// Windows of 10 over [0, 30): [0,10)=3, [10,20)=2, [20,30)=1.
	got := tr.Densities(0, 30, 10, false)
	if len(got) != 3 || got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Errorf("densities = %v", got)
	}
	// Partial window [20, 26) excluded vs included.
	if got := tr.Densities(0, 26, 10, false); len(got) != 2 {
		t.Errorf("partial excluded: %v", got)
	}
	if got := tr.Densities(0, 26, 10, true); len(got) != 3 || got[2] != 1 {
		t.Errorf("partial included: %v", got)
	}
	if got := tr.Densities(5, 5, 10, true); got != nil {
		t.Errorf("empty range: %v", got)
	}
}

func TestDensitiesPanicsOnZeroDt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dt=0 should panic")
		}
	}()
	mkTrain(1).Densities(0, 10, 0, false)
}

func TestDensitiesSumInvariant(t *testing.T) {
	// Property: the densities over a full multiple-of-dt range sum to
	// the number of in-range events.
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		tr := NewTrain(0)
		var c uint64
		n := r.Intn(300)
		for i := 0; i < n; i++ {
			c += uint64(r.Intn(50))
			tr.Append(Event{Cycle: c})
		}
		dt := uint64(1 + r.Intn(100))
		end := (c/dt + 1) * dt
		ds := tr.Densities(0, end, dt, false)
		sum := 0
		for _, d := range ds {
			sum += d
		}
		return sum == tr.Window(0, end).Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMeanRate(t *testing.T) {
	tr := mkTrain(0, 5, 9)
	if got := tr.MeanRate(0, 10); got != 0.3 {
		t.Errorf("MeanRate = %v, want 0.3", got)
	}
	if tr.MeanRate(10, 10) != 0 {
		t.Error("degenerate range should be 0")
	}
}

func TestInterEventIntervals(t *testing.T) {
	if mkTrain(7).InterEventIntervals() != nil {
		t.Error("single event should give nil")
	}
	got := mkTrain(0, 3, 10).InterEventIntervals()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("intervals = %v", got)
	}
}

func TestPairIDAndSeries(t *testing.T) {
	e := Event{Actor: 2, Victim: 3}
	if got := e.PairID(8); got != 19 {
		t.Errorf("PairID = %d, want 19", got)
	}
	noVictim := Event{Actor: 5, Victim: NoContext}
	if got := noVictim.PairID(8); got != 69 {
		t.Errorf("victimless PairID = %d, want 69", got)
	}
	tr := NewTrain(0)
	tr.Append(Event{Cycle: 1, Actor: 0, Victim: 1})
	tr.Append(Event{Cycle: 2, Actor: 1, Victim: 0})
	s := tr.PairSeries(2)
	if len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Errorf("PairSeries = %v", s)
	}
}

func TestCycles(t *testing.T) {
	got := mkTrain(2, 4, 8).Cycles()
	if len(got) != 3 || got[0] != 2 || got[2] != 8 {
		t.Errorf("Cycles = %v", got)
	}
}

func TestRecorderFiltersAndLimits(t *testing.T) {
	r := NewRecorder(KindBusLock)
	r.OnEvent(Event{Cycle: 1, Kind: KindBusLock})
	r.OnEvent(Event{Cycle: 2, Kind: KindConflictMiss})
	if r.Train().Len() != 1 {
		t.Errorf("filtered recorder len = %d", r.Train().Len())
	}
	all := NewRecorder()
	all.SetLimit(2)
	for i := uint64(0); i < 5; i++ {
		all.OnEvent(Event{Cycle: i})
	}
	if all.Train().Len() != 2 {
		t.Errorf("limited recorder len = %d", all.Train().Len())
	}
	all.Reset()
	if all.Train().Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestTeeAndListenerFunc(t *testing.T) {
	var count int
	a := NewRecorder()
	tee := Tee{a, ListenerFunc(func(Event) { count++ })}
	tee.OnEvent(Event{Cycle: 1})
	tee.OnEvent(Event{Cycle: 2})
	if a.Train().Len() != 2 || count != 2 {
		t.Errorf("tee fanned out %d/%d", a.Train().Len(), count)
	}
}

func TestWriteCSV(t *testing.T) {
	tr := NewTrain(0)
	tr.Append(Event{Cycle: 1, Kind: KindConflictMiss, Actor: 2, Victim: 3, Unit: 7})
	tr.Append(Event{Cycle: 2, Kind: KindBusLock, Actor: 1, Victim: NoContext})
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "cycle,kind,actor,victim,unit\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "1,conflict-miss,2,3,7") {
		t.Errorf("missing row: %q", out)
	}
	if !strings.Contains(out, "2,bus-lock,1,,0") {
		t.Errorf("victimless row wrong: %q", out)
	}
}

func TestASCIITrain(t *testing.T) {
	if mkTrain().ASCIITrain(10) != "" {
		t.Error("empty train should render empty")
	}
	out := mkTrain(0, 1, 2, 3, 100).ASCIITrain(20)
	if len(out) != 20 {
		t.Errorf("width = %d", len(out))
	}
	if out[0] == ' ' || out[len(out)-1] == ' ' {
		t.Errorf("expected marks at both ends: %q", out)
	}
	if !strings.Contains(out, " ") {
		t.Errorf("expected gap in the middle: %q", out)
	}
}

func TestWriteSeriesCSVAndASCIISeries(t *testing.T) {
	var sb strings.Builder
	if err := WriteSeriesCSV(&sb, "lag", "acf", []float64{1, 0.5}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lag,acf\n0,1\n1,0.5\n") {
		t.Errorf("csv = %q", sb.String())
	}
	plot := ASCIISeries([]float64{0, 1, 0, 1}, 8, 3)
	if !strings.Contains(plot, "*") || !strings.Contains(plot, "max=") {
		t.Errorf("plot = %q", plot)
	}
	if ASCIISeries(nil, 8, 3) != "" {
		t.Error("empty series should render empty")
	}
	// Constant series must not divide by zero.
	if plot := ASCIISeries([]float64{2, 2}, 4, 2); !strings.Contains(plot, "*") {
		t.Errorf("constant series plot = %q", plot)
	}
}
