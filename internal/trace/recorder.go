package trace

// Listener receives events as the simulator executes. Implementations
// must not block; they are called synchronously on the engine's
// execution path.
type Listener interface {
	OnEvent(Event)
}

// Recorder is a Listener that appends every event (optionally filtered
// by kind) to a Train. It stands in for an ideal, infinitely deep
// monitoring buffer; the CC-Auditor model in internal/auditor applies
// the paper's real hardware limits on top of the same Listener
// interface.
type Recorder struct {
	train *Train
	kinds map[Kind]bool // nil means all kinds
	limit int           // 0 means unlimited
}

// NewRecorder returns a recorder capturing the given kinds (all kinds
// when none are listed).
func NewRecorder(kinds ...Kind) *Recorder {
	r := &Recorder{train: NewTrain(1024)}
	if len(kinds) > 0 {
		r.kinds = make(map[Kind]bool, len(kinds))
		for _, k := range kinds {
			r.kinds[k] = true
		}
	}
	return r
}

// SetLimit caps the number of recorded events; once reached, further
// events are dropped. Zero means unlimited.
func (r *Recorder) SetLimit(n int) { r.limit = n }

// OnEvent implements Listener.
func (r *Recorder) OnEvent(e Event) {
	if r.kinds != nil && !r.kinds[e.Kind] {
		return
	}
	if r.limit > 0 && r.train.Len() >= r.limit {
		return
	}
	r.train.Append(e)
}

// OnEvents implements BatchListener: an unfiltered, unlimited recorder
// bulk-appends the whole batch into its train arena; filtered or
// capped recorders keep the per-event path, whose checks they need.
func (r *Recorder) OnEvents(events []Event) {
	if r.kinds == nil && r.limit == 0 {
		r.train.AppendBatch(events)
		return
	}
	for _, e := range events {
		r.OnEvent(e)
	}
}

// Train returns the recorded train.
func (r *Recorder) Train() *Train { return r.train }

// Reset discards all recorded events.
func (r *Recorder) Reset() { r.train = NewTrain(1024) }

// Tee is a Listener that fans events out to several listeners.
type Tee []Listener

// OnEvent implements Listener.
func (t Tee) OnEvent(e Event) {
	for _, l := range t {
		l.OnEvent(e)
	}
}

// OnEvents implements BatchListener: each fan-out target gets the
// batch through its own fastest entry point.
func (t Tee) OnEvents(events []Event) {
	for _, l := range t {
		Deliver(l, events)
	}
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc func(Event)

// OnEvent implements Listener.
func (f ListenerFunc) OnEvent(e Event) { f(e) }
