package trace_test

import (
	"encoding/binary"
	"testing"

	"cchunter/internal/faults"
	"cchunter/internal/trace"
)

// decodeEvents turns fuzz bytes into an arbitrary (not necessarily
// ordered) event stream: 5 bytes per event — a 4-byte cycle delta
// applied signed-ish plus a control byte for kind/contexts.
func decodeEvents(data []byte) []trace.Event {
	var out []trace.Event
	var cycle uint64
	for len(data) >= 5 {
		delta := uint64(binary.LittleEndian.Uint32(data[:4]))
		ctl := data[4]
		data = data[5:]
		if ctl&0x80 != 0 && delta <= cycle {
			cycle -= delta // out-of-order arrivals included on purpose
		} else {
			cycle += delta % 100_000
		}
		victim := (ctl >> 3) & 0x07
		if ctl&0x40 != 0 {
			victim = trace.NoContext
		}
		out = append(out, trace.Event{
			Cycle:  cycle,
			Kind:   trace.Kind(int(ctl) % trace.NumKinds()),
			Actor:  ctl & 0x07,
			Victim: victim,
			Unit:   uint32(delta % 512),
		})
	}
	return out
}

// clampedTrain ingests a stream through Train.AppendClamped, the
// degraded-path entry point.
type clampedTrain struct {
	tr      *trace.Train
	clamped int
}

func (c *clampedTrain) OnEvent(e trace.Event) {
	if c.tr.AppendClamped(e) {
		c.clamped++
	}
}

// FuzzTrainIngest asserts train ingestion of arbitrary — jittered,
// reordered, duplicated, corrupted — event streams never panics and
// always yields a monotonic train with sane derived statistics. The
// seed corpus routes a clean stream through the fault injector in each
// of its corruption modes.
func FuzzTrainIngest(f *testing.F) {
	encode := func(events []trace.Event) []byte {
		var out []byte
		var prev uint64
		for _, e := range events {
			var rec [5]byte
			binary.LittleEndian.PutUint32(rec[:4], uint32(e.Cycle-prev))
			prev = e.Cycle
			rec[4] = byte(e.Kind) | e.Actor&0x07 | (e.Victim&0x07)<<3
			out = append(out, rec[:]...)
		}
		return out
	}
	clean := make([]trace.Event, 200)
	for i := range clean {
		clean[i] = trace.Event{Cycle: uint64(i) * 500, Kind: trace.KindConflictMiss, Actor: uint8(i % 4), Victim: uint8((i + 1) % 4)}
	}
	for _, cfg := range []faults.Config{
		{},
		{JitterCycles: 400, Seed: 3},
		{ReorderProb: 0.3, Seed: 4},
		{DupProb: 0.3, Seed: 5},
		{CtxFlipProb: 0.5, CtxSmearProb: 0.5, Seed: 6},
		{DropProb: 0.4, Seed: 7},
	} {
		var c clampedTrain
		c.tr = trace.NewTrain(0)
		in, err := faults.NewInjector(cfg, &c)
		if err != nil {
			f.Fatal(err)
		}
		for _, e := range clean {
			in.OnEvent(e)
		}
		in.Flush()
		f.Add(encode(c.tr.Events()))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		events := decodeEvents(data)
		c := clampedTrain{tr: trace.NewTrain(0)}
		for _, e := range events {
			c.OnEvent(e)
		}
		if c.tr.Len() != len(events) {
			t.Fatalf("train len %d, ingested %d", c.tr.Len(), len(events))
		}
		for i := 1; i < c.tr.Len(); i++ {
			if c.tr.At(i).Cycle < c.tr.At(i-1).Cycle {
				t.Fatalf("train not monotonic at %d", i)
			}
		}
		if c.tr.Len() == 0 {
			return
		}
		first, last := c.tr.Span()
		if first > last {
			t.Fatalf("span [%d, %d] inverted", first, last)
		}
		// Derived views must hold up on arbitrary trains.
		densities := c.tr.Densities(first, last+1, 1000, true)
		var total int
		for _, d := range densities {
			if d < 0 {
				t.Fatalf("negative density %d", d)
			}
			total += d
		}
		if total != c.tr.Len() {
			t.Fatalf("densities sum %d, want %d", total, c.tr.Len())
		}
		if w := c.tr.Window(first, last+1); w.Len() != c.tr.Len() {
			t.Fatalf("full window len %d, want %d", w.Len(), c.tr.Len())
		}
		for _, iv := range c.tr.InterEventIntervals() {
			if iv > last-first {
				t.Fatalf("interval %d wider than span", iv)
			}
		}
		for _, p := range c.tr.PairSeries(8) {
			if p < 0 {
				t.Fatalf("negative pair id %v", p)
			}
		}
	})
}
