// Package trace defines the event model shared by every layer of the
// reproduction: hardware units emit Events, the CC-Auditor accumulates
// them, and the detection algorithms consume them as event trains
// (uni-dimensional time series of event occurrences, §IV-B).
package trace

import "fmt"

// Kind identifies the hardware indicator event behind a conflict
// (§IV-B step 1: the first step in detecting covert timing channels is
// identifying the event behind the resource contention).
type Kind uint8

const (
	// KindBusLock fires when a context performs an atomic unaligned
	// memory access spanning two cache lines, locking the memory bus
	// (or its QPI-emulated equivalent).
	KindBusLock Kind = iota
	// KindDivContention fires for every cycle in which a division from
	// one hardware context waits on a divider occupied by an
	// instruction from another context.
	KindDivContention
	// KindConflictMiss fires when a cache access misses because the
	// block was prematurely evicted from a set-associative cache (it
	// would have been retained by a fully-associative cache of the
	// same capacity), and another context's block is replaced to make
	// room.
	KindConflictMiss
	// KindRingContention fires when a memory access from one core waits
	// on a slotted-ring interconnect segment occupied by traffic from
	// another core (the lord-of-the-ring style cross-core channel).
	KindRingContention
	// KindTLBConflict fires when a TLB fill from one hardware context
	// evicts a translation inserted by the other hyperthread sharing
	// the core's sTLB.
	KindTLBConflict
	numKinds
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindBusLock:
		return "bus-lock"
	case KindDivContention:
		return "div-contention"
	case KindConflictMiss:
		return "conflict-miss"
	case KindRingContention:
		return "ring-contention"
	case KindTLBConflict:
		return "tlb-conflict"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// NumKinds returns the number of defined event kinds.
func NumKinds() int { return int(numKinds) }

// NoContext marks an absent context ID (e.g. a conflict miss that
// evicted an unowned block).
const NoContext uint8 = 0xff

// Event is a single indicator-event occurrence.
type Event struct {
	// Cycle is the simulated global time of the occurrence.
	Cycle uint64
	// Kind says which indicator event fired.
	Kind Kind
	// Actor is the hardware context that caused the event: the context
	// issuing the bus lock, the context waiting on the divider, or the
	// replacer of a conflict miss.
	Actor uint8
	// Victim is the other side where one exists: the context occupying
	// the divider, or the owner of the evicted cache block. NoContext
	// when absent.
	Victim uint8
	// Unit is the cache set index for conflict misses (used by the
	// auditor's per-set run-length dedup); 0 otherwise.
	Unit uint32
}

// PairID encodes the ordered (Actor, Victim) pair as a unique small
// integer given the total number of hardware contexts, as the paper's
// vector register does ("every ordered pair of trojan/spy contexts have
// unique identifiers"). Events without a victim map to the Actor-only
// band above all pair IDs.
func (e Event) PairID(contexts int) int {
	if e.Victim == NoContext {
		return contexts*contexts + int(e.Actor)
	}
	return int(e.Actor)*contexts + int(e.Victim)
}

// Train is an append-only event train: a time-ordered series of events
// on one shared resource. Append enforces monotonically non-decreasing
// cycles, which every producer in the simulator satisfies because ops
// execute in global time order.
type Train struct {
	events []Event
}

// NewTrain returns an empty train with capacity hint n.
func NewTrain(n int) *Train {
	return &Train{events: make([]Event, 0, n)}
}

// Append adds an event to the train. It panics if the event would make
// the train non-monotonic in time; that would mean the simulator's
// global ordering is broken, which is a bug worth failing loudly on.
func (t *Train) Append(e Event) {
	if n := len(t.events); n > 0 && e.Cycle < t.events[n-1].Cycle {
		panic(fmt.Sprintf("trace: out-of-order event at cycle %d after %d",
			e.Cycle, t.events[n-1].Cycle))
	}
	t.events = append(t.events, e)
}

// Reserve ensures capacity for n more events, growing the backing
// arena geometrically so repeated batch appends amortize to O(1) per
// event regardless of batch size.
func (t *Train) Reserve(n int) {
	need := len(t.events) + n
	if cap(t.events) >= need {
		return
	}
	newCap := 2 * cap(t.events)
	if newCap < need {
		newCap = need
	}
	if newCap < 1024 {
		newCap = 1024
	}
	grown := make([]Event, len(t.events), newCap)
	copy(grown, t.events)
	t.events = grown
}

// AppendBatch adds a slice of events with one capacity reservation and
// a single monotonicity pass — the batched-delivery equivalent of
// calling Append per event, with identical panic semantics on
// out-of-order input. The input slice is copied, never retained.
func (t *Train) AppendBatch(events []Event) {
	if len(events) == 0 {
		return
	}
	last := uint64(0)
	if n := len(t.events); n > 0 {
		last = t.events[n-1].Cycle
	} else {
		last = events[0].Cycle
	}
	for _, e := range events {
		if e.Cycle < last {
			panic(fmt.Sprintf("trace: out-of-order event at cycle %d after %d",
				e.Cycle, last))
		}
		last = e.Cycle
	}
	t.Reserve(len(events))
	t.events = append(t.events, events...)
}

// AppendClamped adds an event to the train, clamping a non-monotonic
// cycle up to the previous event's cycle instead of panicking. It
// returns true when clamping occurred. This is the ingestion path for
// *degraded* streams — timestamp jitter and bounded reordering from a
// faulty sensor path deliver events slightly out of order, and real
// capture hardware timestamps on arrival, which is exactly what the
// clamp models. Producers that guarantee global time order keep using
// Append, whose panic still flags genuine simulator bugs.
func (t *Train) AppendClamped(e Event) bool {
	clamped := false
	if n := len(t.events); n > 0 && e.Cycle < t.events[n-1].Cycle {
		e.Cycle = t.events[n-1].Cycle
		clamped = true
	}
	t.events = append(t.events, e)
	return clamped
}

// TrimFront discards every event with Cycle < before and returns how
// many were dropped. The streaming detector calls it after closing an
// observation window so a train holds O(window) events regardless of
// run length; the surviving suffix is compacted to the front of the
// backing array, so the arena is reused rather than regrown. Appending
// still clamps against the (unchanged) last retained event, which keeps
// a trimmed train's future contents identical to an untrimmed one's.
func (t *Train) TrimFront(before uint64) int {
	lo := searchCycle(t.events, before)
	if lo == 0 {
		return 0
	}
	n := copy(t.events, t.events[lo:])
	t.events = t.events[:n]
	return lo
}

// Len returns the number of events.
func (t *Train) Len() int { return len(t.events) }

// Events returns the underlying events. Callers must not mutate it.
func (t *Train) Events() []Event { return t.events }

// At returns the i-th event.
func (t *Train) At(i int) Event { return t.events[i] }

// Span returns the first and last event cycles, or (0, 0) for an empty
// train.
func (t *Train) Span() (first, last uint64) {
	if len(t.events) == 0 {
		return 0, 0
	}
	return t.events[0].Cycle, t.events[len(t.events)-1].Cycle
}

// Window returns a new train containing the events with
// start <= Cycle < end. The events slice is shared, not copied.
func (t *Train) Window(start, end uint64) *Train {
	lo := searchCycle(t.events, start)
	hi := searchCycle(t.events, end)
	return &Train{events: t.events[lo:hi]}
}

// searchCycle returns the index of the first event with Cycle >= c.
func searchCycle(events []Event, c uint64) int {
	lo, hi := 0, len(events)
	for lo < hi {
		mid := (lo + hi) / 2
		if events[mid].Cycle < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// FilterKind returns a new train with only events of kind k (copied).
func (t *Train) FilterKind(k Kind) *Train {
	out := &Train{}
	for _, e := range t.events {
		if e.Kind == k {
			out.events = append(out.events, e)
		}
	}
	return out
}

// FilterActor returns a new train with only events whose Actor is a.
func (t *Train) FilterActor(a uint8) *Train {
	out := &Train{}
	for _, e := range t.events {
		if e.Actor == a {
			out.events = append(out.events, e)
		}
	}
	return out
}

// Densities slices [start, end) into consecutive Δt windows and returns
// the event count in each (§IV-B step 1: Δt is the observation window
// to count the number of event occurrences within that interval).
// Events outside the range are ignored (the train is time-ordered, so
// the range is narrowed by binary search and only events inside it are
// visited). A partial trailing window is included when includePartial
// is true.
func (t *Train) Densities(start, end, dt uint64, includePartial bool) []int {
	return t.DensitiesInto(nil, start, end, dt, includePartial)
}

// DensitiesInto is Densities filling a caller-provided buffer (grown
// when too small, e.g. from internal/pool), so repeated density sweeps
// allocate nothing in steady state. The count loop is unrolled
// four-wide; the windows are disjoint only across groups, so each
// group's bumps still land on the right bins when several events share
// a window. Returns the filled slice.
func (t *Train) DensitiesInto(out []int, start, end, dt uint64, includePartial bool) []int {
	if dt == 0 {
		panic("trace: Densities with dt == 0")
	}
	if end <= start {
		return out[:0]
	}
	span := end - start
	n := int(span / dt)
	partial := span%dt != 0
	total := n
	if partial && includePartial {
		total++
	}
	if cap(out) < total {
		out = make([]int, total)
	} else {
		out = out[:total]
		for i := range out {
			out[i] = 0
		}
	}
	lo := searchCycle(t.events, start)
	hi := searchCycle(t.events, end)
	ev := t.events[lo:hi]
	i := 0
	for ; i+4 <= len(ev); i += 4 {
		i0 := int((ev[i].Cycle - start) / dt)
		i1 := int((ev[i+1].Cycle - start) / dt)
		i2 := int((ev[i+2].Cycle - start) / dt)
		i3 := int((ev[i+3].Cycle - start) / dt)
		if i3 < total { // events are time-ordered: i0 <= i1 <= i2 <= i3
			out[i0]++
			out[i1]++
			out[i2]++
			out[i3]++
			continue
		}
		for _, idx := range [4]int{i0, i1, i2, i3} {
			if idx < total {
				out[idx]++
			}
		}
	}
	for ; i < len(ev); i++ {
		if idx := int((ev[i].Cycle - start) / dt); idx < total {
			out[idx]++
		}
	}
	return out
}

// MeanRate returns the average event rate in events per cycle over
// [start, end), or 0 for an empty range.
func (t *Train) MeanRate(start, end uint64) float64 {
	if end <= start {
		return 0
	}
	w := t.Window(start, end)
	return float64(w.Len()) / float64(end-start)
}

// InterEventIntervals returns the cycle gaps between consecutive
// events.
func (t *Train) InterEventIntervals() []uint64 {
	if len(t.events) < 2 {
		return nil
	}
	out := make([]uint64, len(t.events)-1)
	for i := 1; i < len(t.events); i++ {
		out[i-1] = t.events[i].Cycle - t.events[i-1].Cycle
	}
	return out
}

// PairSeries maps each event, in train order, to its ordered-pair
// identifier (see Event.PairID) as a float series. This is the series
// the oscillatory-pattern detector autocorrelates (§IV-D): for a
// two-party cache channel it reduces to the paper's 0/1 labelling of
// "S→T" and "T→S", and interference from other pairs perturbs rather
// than erases the periodicity.
func (t *Train) PairSeries(contexts int) []float64 {
	out := make([]float64, len(t.events))
	for i, e := range t.events {
		out[i] = float64(e.PairID(contexts))
	}
	return out
}

// Cycles returns the event timestamps.
func (t *Train) Cycles() []uint64 {
	out := make([]uint64, len(t.events))
	for i, e := range t.events {
		out[i] = e.Cycle
	}
	return out
}
