package trace

import (
	"reflect"
	"testing"
)

// TestDensitiesIntoMatchesAndReuses pins the unrolled, buffer-reusing
// density fill: results equal the allocating path for assorted window
// alignments, and a recycled buffer (larger, dirty) is zeroed and
// reused instead of reallocated.
func TestDensitiesIntoMatchesAndReuses(t *testing.T) {
	tr := NewTrain(0)
	cycle := uint64(0)
	for i := 0; i < 500; i++ {
		tr.Append(Event{Cycle: cycle})
		cycle += uint64(1 + (i*7)%97)
	}
	buf := make([]int, 0, 4096)
	for i := range buf[:cap(buf)] {
		buf = buf[:cap(buf)]
		buf[i] = -777 // dirt: must be cleared by the fill
	}
	for _, tc := range []struct {
		start, end, dt uint64
		partial        bool
	}{
		{0, cycle, 100, false},
		{0, cycle, 100, true},
		{50, cycle - 31, 7, true},
		{0, cycle, 1, false},
		{cycle, cycle, 10, true}, // empty range
	} {
		want := make([]int, 0)
		if tc.end > tc.start {
			span := tc.end - tc.start
			n := int(span / tc.dt)
			if span%tc.dt != 0 && tc.partial {
				n++
			}
			want = make([]int, n)
			for _, e := range tr.Events() {
				if e.Cycle < tc.start || e.Cycle >= tc.end {
					continue
				}
				if idx := int((e.Cycle - tc.start) / tc.dt); idx < n {
					want[idx]++
				}
			}
		}
		got := tr.DensitiesInto(buf, tc.start, tc.end, tc.dt, tc.partial)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("DensitiesInto(%+v) differs from reference", tc)
		}
		if len(want) > 0 && len(want) <= cap(buf) && &got[:1][0] != &buf[:1][0] {
			t.Errorf("DensitiesInto(%+v) reallocated despite sufficient capacity", tc)
		}
		alloc := tr.Densities(tc.start, tc.end, tc.dt, tc.partial)
		if len(alloc) != len(want) || (len(want) > 0 && !reflect.DeepEqual(alloc, want)) {
			t.Errorf("Densities(%+v) differs from reference", tc)
		}
	}
}
