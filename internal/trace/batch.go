package trace

// batch.go is the batched event-delivery layer. The simulator's
// hardware units emit one Event per occurrence, but pushing each event
// through the whole unit → fault-injector → auditor listener chain one
// callback at a time pays interface dispatch, bounds checks, and
// per-stage bookkeeping per event. Delivering events in slices
// amortizes all of that to one pass per batch while leaving every
// consumer's per-event state machine untouched — which is why batching
// is observationally invisible: the same events arrive in the same
// order, so verdicts are byte-identical at every batch size (the
// regression tests in the root package pin this).

import "cchunter/internal/obs"

// DefaultBatchSize is the event batch used when a caller does not pick
// one: big enough to amortize dispatch, small enough (~12 KB) to stay
// cache-resident.
const DefaultBatchSize = 512

// BatchListener is implemented by consumers that accept events in
// slices. The slice is only valid for the duration of the call and
// must not be retained or mutated; implementations that keep events
// must copy them (Train.AppendBatch does).
type BatchListener interface {
	OnEvents([]Event)
}

// Deliver hands a batch to a listener, using its batched entry point
// when it has one and falling back to per-event callbacks otherwise.
func Deliver(l Listener, events []Event) {
	if len(events) == 0 {
		return
	}
	if bl, ok := l.(BatchListener); ok {
		bl.OnEvents(events)
		return
	}
	for _, e := range events {
		l.OnEvent(e)
	}
}

// Batcher is a Listener that accumulates events into a fixed-capacity
// arena and forwards them downstream in slices: full batches flush
// automatically, and the producer calls Flush at synchronization
// points (end of run, before reading consumers). The arena is reused
// across flushes, so steady-state operation allocates nothing.
type Batcher struct {
	out Listener
	buf []Event

	mEvents  *obs.Counter // events delivered downstream
	mFlushes *obs.Counter // batches handed off
}

// NewBatcher returns a batcher delivering to out in batches of the
// given size (DefaultBatchSize when size <= 0).
func NewBatcher(out Listener, size int) *Batcher {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &Batcher{out: out, buf: make([]Event, 0, size)}
}

// OnEvent implements Listener: append to the arena, flushing when it
// fills.
func (b *Batcher) OnEvent(e Event) {
	b.buf = append(b.buf, e)
	if len(b.buf) == cap(b.buf) {
		b.Flush()
	}
}

// OnEvents implements BatchListener, letting batchers compose.
func (b *Batcher) OnEvents(events []Event) {
	for _, e := range events {
		b.OnEvent(e)
	}
}

// Instrument points the batcher at a metrics registry: every flush
// records the batch count and size. A nil registry disables recording
// (the counters stay nil, and nil counters are no-ops).
func (b *Batcher) Instrument(reg *obs.Registry) {
	b.mEvents = reg.Counter("trace.batch.events")
	b.mFlushes = reg.Counter("trace.batch.flushes")
}

// Flush delivers any buffered events downstream and resets the arena.
func (b *Batcher) Flush() {
	if len(b.buf) == 0 {
		return
	}
	b.mEvents.Add(uint64(len(b.buf)))
	b.mFlushes.Inc()
	Deliver(b.out, b.buf)
	b.buf = b.buf[:0]
}

// Pending reports how many events sit in the arena awaiting delivery.
func (b *Batcher) Pending() int { return len(b.buf) }
