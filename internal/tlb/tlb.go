// Package tlb models the second-level (shared) TLB of an SMT core —
// the translation cache both hyperthreads fill and evict, the medium
// of accessed-bit TLB covert channels. The indicator event is a TLB
// fill from one hardware context evicting a translation inserted by
// the other context (KindTLBConflict); same-context evictions are the
// normal working-set churn and stay silent.
package tlb

import "cchunter/internal/trace"

// PageShift is the page size the TLB translates (4 KiB pages).
const PageShift = 12

// Config sets the sTLB geometry.
type Config struct {
	// Sets is the number of TLB sets; must be a power of two.
	Sets int
	// Ways is the set associativity.
	Ways int
	// HitCycles is the lookup latency on a hit.
	HitCycles uint64
	// WalkCycles is the page-walk latency charged on a miss — the
	// latency contrast the spy's accessed-bit probe decodes.
	WalkCycles uint64
}

// DefaultConfig returns a small sTLB: 16 sets × 4 ways, 1-cycle hits,
// and a 120-cycle page walk. Real sTLBs are larger; a small one keeps
// the channel's working set (and the simulation) compact while
// preserving the set-conflict structure the channel exploits.
func DefaultConfig() Config {
	return Config{Sets: 16, Ways: 4, HitCycles: 1, WalkCycles: 120}
}

// TLB is one core's shared TLB. The engine serializes calls in global
// time order. Entries record the inserting context so cross-context
// evictions are attributable.
type TLB struct {
	cfg   Config
	pages []uint64 // sets × ways, virtual page numbers
	owner []uint8
	valid []bool
	used  []uint64 // LRU ticks, monotonic per-TLB
	tick  uint64

	listener trace.Listener

	lookups   uint64
	misses    uint64
	conflicts uint64
}

// New returns an sTLB. It panics on a bad geometry.
func New(cfg Config, l trace.Listener) *TLB {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic("tlb: Sets must be a positive power of two")
	}
	if cfg.Ways <= 0 {
		panic("tlb: Ways must be positive")
	}
	if cfg.HitCycles == 0 || cfg.WalkCycles == 0 {
		panic("tlb: zero latency")
	}
	n := cfg.Sets * cfg.Ways
	return &TLB{
		cfg:      cfg,
		pages:    make([]uint64, n),
		owner:    make([]uint8, n),
		valid:    make([]bool, n),
		used:     make([]uint64, n),
		listener: l,
	}
}

// SetOf returns the TLB set an address's page maps to.
func (t *TLB) SetOf(addr uint64) int {
	return int((addr >> PageShift) & uint64(t.cfg.Sets-1))
}

// Probe looks up addr's translation, filling on a miss, and returns the
// latency and whether it hit. A fill that evicts a valid entry inserted
// by another context raises KindTLBConflict (Actor = filler, Victim =
// previous owner, Unit = set), stamped at the issue cycle.
func (t *TLB) Probe(now, stamp uint64, ctx uint8, addr uint64) (latency uint64, hit bool) {
	_ = now
	t.lookups++
	t.tick++
	page := addr >> PageShift
	set := int(page & uint64(t.cfg.Sets-1))
	base := set * t.cfg.Ways
	victim := base
	for w := 0; w < t.cfg.Ways; w++ {
		i := base + w
		if t.valid[i] && t.pages[i] == page {
			t.used[i] = t.tick
			return t.cfg.HitCycles, true
		}
		if !t.valid[victim] {
			continue // keep the first invalid way
		}
		if !t.valid[i] || t.used[i] < t.used[victim] {
			victim = i
		}
	}
	t.misses++
	if t.valid[victim] && t.owner[victim] != ctx {
		t.conflicts++
		if t.listener != nil {
			t.listener.OnEvent(trace.Event{
				Cycle:  stamp,
				Kind:   trace.KindTLBConflict,
				Actor:  ctx,
				Victim: t.owner[victim],
				Unit:   uint32(set),
			})
		}
	}
	t.pages[victim] = page
	t.owner[victim] = ctx
	t.valid[victim] = true
	t.used[victim] = t.tick
	return t.cfg.WalkCycles, false
}

// Stats reports cumulative TLB activity.
type Stats struct {
	Lookups   uint64 // probes issued
	Misses    uint64 // fills (page walks)
	Conflicts uint64 // cross-context evictions (indicator events)
}

// Stats returns a snapshot of the counters.
func (t *TLB) Stats() Stats {
	return Stats{Lookups: t.lookups, Misses: t.misses, Conflicts: t.conflicts}
}

// Config returns the TLB configuration.
func (t *TLB) Config() Config { return t.cfg }
