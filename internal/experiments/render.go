package experiments

import (
	"fmt"
	"strings"

	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

// Summary renders the Figure 2 outcome as text.
func (r Figure2Result) Summary() string {
	zero, one := meansByBit(r.Message, r.Latency)
	return fmt.Sprintf("Figure 2 (bus channel, %d bits): avg latency '0'=%.0f cycles, '1'=%.0f cycles, bit errors=%d",
		len(r.Message), zero, one, r.BitErrors)
}

// Summary renders the Figure 3 outcome as text.
func (r Figure3Result) Summary() string {
	zero, one := meansByBit(r.Message, r.Latency)
	return fmt.Sprintf("Figure 3 (divider channel, %d bits): avg loop latency '0'=%.0f cycles, '1'=%.0f cycles, bit errors=%d",
		len(r.Message), zero, one, r.BitErrors)
}

// Summary renders the Figure 4 trains as ASCII rasters.
func (r Figure4Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4a (memory bus lock train, %d events):\n[%s]\n",
		r.BusLocks.Len(), r.BusLocks.ASCIITrain(100))
	fmt.Fprintf(&sb, "Figure 4b (divider contention train, %d events):\n[%s]",
		r.DivContention.Len(), r.DivContention.ASCIITrain(100))
	return sb.String()
}

// Summary renders the Figure 5 construction.
func (r Figure5Result) Summary() string {
	return fmt.Sprintf("Figure 5 (illustration): %d Δt windows, histogram top bin %d (Poisson would predict %.2g there)\n%s",
		len(r.Densities), r.Histogram.NonZeroMax(), r.Poisson[r.Histogram.NonZeroMax()], r.Histogram)
}

// Summary renders the Figure 6 histograms and statistics.
func (r Figure6Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6a (bus lock density, Δt=100k): threshold=%d LR=%.3f burst-mean=%.1f (paper: burst bin ≈20, LR≥0.9)\n",
		r.BusThreshold, r.BusLR, r.BusBurstMean)
	sb.WriteString(histTail(r.Bus, 30))
	fmt.Fprintf(&sb, "Figure 6b (divider contention density, Δt=500): threshold=%d LR=%.3f burst-mean=%.1f (paper: bins 84–105)\n",
		r.DivThreshold, r.DivLR, r.DivBurstMean)
	sb.WriteString(histTail(r.Div, 128))
	return sb.String()
}

// Summary renders the Figure 7 outcome.
func (r Figure7Result) Summary() string {
	zero, one := meansByBit(r.Message, r.Ratio)
	return fmt.Sprintf("Figure 7 (cache channel, %d bits): G1/G0 ratio '0'=%.2f, '1'=%.2f, bit errors=%d (paper: <1 vs >1)",
		len(r.Message), zero, one, r.BitErrors)
}

// Summary renders the Figure 8 outcome.
func (r Figure8Result) Summary() string {
	return fmt.Sprintf("Figure 8 (cache channel, %d sets): %d conflict entries, ACF peak %.3f at lag %d, detected=%v (paper: 0.893 at lag 533)",
		r.SetsUsed, r.Train.Len(), r.PeakValue, r.PeakLag, r.Detected)
}

// Summary renders Table I.
func (r TableIResult) Summary() string {
	m := r.Model
	var sb strings.Builder
	sb.WriteString("Table I: CC-Auditor hardware estimates (paper values in parens)\n")
	fmt.Fprintf(&sb, "  %-22s area %.4f mm² (0.0028)  power %.1f mW (2.8)  latency %.2f ns (0.17)\n",
		"Histogram buffers", m.HistogramBuffers.AreaMM2, m.HistogramBuffers.PowerMW, m.HistogramBuffers.LatencyNS)
	fmt.Fprintf(&sb, "  %-22s area %.4f mm² (0.0011)  power %.1f mW (0.8)  latency %.2f ns (0.17)\n",
		"Registers", m.Registers.AreaMM2, m.Registers.PowerMW, m.Registers.LatencyNS)
	fmt.Fprintf(&sb, "  %-22s area %.4f mm² (0.004)   power %.1f mW (5.4)  latency %.2f ns (0.12)",
		"Conflict miss detector", m.ConflictMissDetector.AreaMM2, m.ConflictMissDetector.PowerMW, m.ConflictMissDetector.LatencyNS)
	return sb.String()
}

// Summary renders the Figure 10 sweep.
func (r Figure10Result) Summary() string {
	var sb strings.Builder
	sb.WriteString("Figure 10 (bandwidth sweep 0.1 / 10 / 1000 bps):\n")
	for _, row := range r.Rows {
		switch row.Channel {
		case "cache":
			fmt.Fprintf(&sb, "  %-8s %7.1f bps: peak %.3f at lag %d, detected=%v, bit errors=%d\n",
				row.Channel, row.PaperBPS, row.PeakValue, row.PeakLag, row.Detected, row.BitErrors)
		default:
			fmt.Fprintf(&sb, "  %-8s %7.1f bps: LR=%.3f burst-mean=%.1f, detected=%v, bit errors=%d\n",
				row.Channel, row.PaperBPS, row.LikelihoodRatio, row.BurstMean, row.Detected, row.BitErrors)
		}
	}
	sb.WriteString("  (paper: LR stays ≥0.9 at every bandwidth; zero misses)")
	return sb.String()
}

// Summary renders the Figure 11 window study.
func (r Figure11Result) Summary() string {
	var sb strings.Builder
	sb.WriteString("Figure 11 (0.1 bps cache channel, reduced observation windows):\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %.2f× quantum: peak %.3f at lag %d, detected=%v\n",
			row.Fraction, row.PeakValue, row.PeakLag, row.Detected)
	}
	sb.WriteString("  (paper: finer windows recover significant repetitive peaks)")
	return sb.String()
}

// Summary renders the Figure 12 aggregate.
func (r Figure12Result) Summary() string {
	return fmt.Sprintf("Figure 12 (%d random messages): worst LR bus=%.3f div=%.3f; cache peak ∈ [%.3f, %.3f], lag ∈ [%d, %d]; all detected=%v (paper: LR>0.9, insignificant ACF deviations)",
		r.Messages, r.BusLRMin, r.DivLRMin, r.CachePeakMin, r.CachePeakMax, r.CacheLagMin, r.CacheLagMax, r.AllDetected)
}

// Summary renders the Figure 13 sweep.
func (r Figure13Result) Summary() string {
	var sb strings.Builder
	sb.WriteString("Figure 13 (cache channel set-count sweep):\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %3d sets: peak %.3f at lag %d, detected=%v, bit errors=%d\n",
			row.Sets, row.PeakValue, row.PeakLag, row.Detected, row.BitErrors)
	}
	sb.WriteString("  (paper: peaks ≈0.95, lag tracks the set count, biased up by noise)")
	return sb.String()
}

// Summary renders the sensor fault robustness sweep.
func (r RobustnessResult) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Robustness (sensor fault sweep, uniform event drop): pass-through identical=%v\n",
		r.BaselineIdentical)
	for _, row := range r.Rows {
		switch row.Channel {
		case "cache":
			fmt.Fprintf(&sb, "  %-8s drop=%.2f: peak=%.3f detected=%v confidence=%.3f measured-loss=%.3f\n",
				row.Channel, row.DropRate, row.PeakValue, row.Detected, row.Confidence, row.MeasuredLoss)
		default:
			fmt.Fprintf(&sb, "  %-8s drop=%.2f: LR=%.3f detected=%v confidence=%.3f measured-loss=%.3f\n",
				row.Channel, row.DropRate, row.LikelihoodRatio, row.Detected, row.Confidence, row.MeasuredLoss)
		}
	}
	for _, row := range r.BenignRows {
		fmt.Fprintf(&sb, "  benign   drop=%.2f: worst-LR=%.3f cache-peak=%.3f alarm=%v confidence=%.3f\n",
			row.DropRate, row.LikelihoodRatio, row.PeakValue, row.Detected, row.Confidence)
	}
	sb.WriteString("  (expected: LR ≥0.9 and detection through 5% drop; benign LR <0.5 at every rate;\n   confidence <1 whenever the injector was active)")
	return sb.String()
}

// Summary renders the Figure 14 false-alarm study.
func (r Figure14Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 14 (benign pairs): %d false alarms (paper: zero)\n", r.FalseAlarms)
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-12s + %-12s busLR=%.3f divLR=%.3f cache-peak=%.3f alarm=%v\n",
			row.Pair[0], row.Pair[1], row.BusLR, row.DivLR, row.PeakValue, row.FalseAlarm)
	}
	sb.WriteString("  (paper: mailserver shows a bins-5–8 second distribution at LR<0.5;\n   webserver shows brief periodicity that dies out — neither alarms)")
	return sb.String()
}

// meansByBit returns the mean series value over '0' bits and '1' bits.
func meansByBit(msg []int, series []float64) (zeroMean, oneMean float64) {
	var z, o float64
	var nz, no int
	n := len(msg)
	if len(series) < n {
		n = len(series)
	}
	for i := 0; i < n; i++ {
		if msg[i] == 0 {
			z += series[i]
			nz++
		} else {
			o += series[i]
			no++
		}
	}
	if nz > 0 {
		zeroMean = z / float64(nz)
	}
	if no > 0 {
		oneMean = o / float64(no)
	}
	return zeroMean, oneMean
}

// histTail renders the first maxBins bins of a histogram as a compact
// two-line table.
func histTail(h *stats.Histogram, maxBins int) string {
	if h == nil {
		return "  (no histogram)\n"
	}
	top := h.NonZeroMax()
	if top > maxBins {
		top = maxBins
	}
	var sb strings.Builder
	sb.WriteString("  density:")
	for b := 0; b <= top; b++ {
		if h.Bin(b) > 0 {
			fmt.Fprintf(&sb, " %d:%d", b, h.Bin(b))
		}
	}
	sb.WriteString("\n")
	return sb.String()
}

// WriteFigureCSVs is implemented by results that can dump their series
// for external plotting.
type csvSeries struct {
	Name string
	X    string
	Y    string
	Data []float64
}

// SeriesForCSV extracts plottable series per figure id; cmd/ccrepro
// writes them to files.
func SeriesForCSV(id string, result interface{}) []csvSeries {
	switch r := result.(type) {
	case Figure2Result:
		return []csvSeries{{Name: "fig2_latency", X: "bit", Y: "cycles", Data: r.Latency}}
	case Figure3Result:
		return []csvSeries{{Name: "fig3_latency", X: "bit", Y: "cycles", Data: r.Latency}}
	case Figure6Result:
		return []csvSeries{
			{Name: "fig6a_bus_hist", X: "density", Y: "frequency", Data: r.Bus.Floats()},
			{Name: "fig6b_div_hist", X: "density", Y: "frequency", Data: r.Div.Floats()},
		}
	case Figure7Result:
		return []csvSeries{{Name: "fig7_ratio", X: "bit", Y: "ratio", Data: r.Ratio}}
	case Figure8Result:
		return []csvSeries{{Name: "fig8_acf", X: "lag", Y: "r", Data: r.Autocorrelogram}}
	case Figure12Result:
		return []csvSeries{
			{Name: "fig12_bus_mean", X: "density", Y: "mean", Data: r.BusMean},
			{Name: "fig12_bus_min", X: "density", Y: "min", Data: r.BusMin},
			{Name: "fig12_bus_max", X: "density", Y: "max", Data: r.BusMax},
			{Name: "fig12_div_mean", X: "density", Y: "mean", Data: r.DivMean},
			{Name: "fig12_div_min", X: "density", Y: "min", Data: r.DivMin},
			{Name: "fig12_div_max", X: "density", Y: "max", Data: r.DivMax},
		}
	case Figure13Result:
		var out []csvSeries
		for _, row := range r.Rows {
			out = append(out, csvSeries{
				Name: fmt.Sprintf("fig13_acf_%dsets", row.Sets),
				X:    "lag", Y: "r", Data: row.Autocorrelogram,
			})
		}
		return out
	case Figure14Result:
		var out []csvSeries
		for _, row := range r.Rows {
			prefix := fmt.Sprintf("fig14_%s_%s", row.Pair[0], row.Pair[1])
			out = append(out,
				csvSeries{Name: prefix + "_bus", X: "density", Y: "frequency", Data: row.BusHist.Floats()},
				csvSeries{Name: prefix + "_div", X: "density", Y: "frequency", Data: row.DivHist.Floats()},
				csvSeries{Name: prefix + "_acf", X: "lag", Y: "r", Data: row.Autocorrelogram},
			)
		}
		return out
	case Figure10Result:
		var out []csvSeries
		for _, row := range r.Rows {
			if row.Hist != nil {
				out = append(out, csvSeries{
					Name: fmt.Sprintf("fig10_%s_%gbps_hist", row.Channel, row.PaperBPS),
					X:    "density", Y: "frequency", Data: row.Hist.Floats(),
				})
			}
			if row.Autocorrelogram != nil {
				out = append(out, csvSeries{
					Name: fmt.Sprintf("fig10_%s_%gbps_acf", row.Channel, row.PaperBPS),
					X:    "lag", Y: "r", Data: row.Autocorrelogram,
				})
			}
		}
		return out
	case EvasionResult:
		noiseLR := make([]float64, len(r.Rows))
		noiseErr := make([]float64, len(r.Rows))
		for i, row := range r.Rows {
			noiseLR[i] = row.LikelihoodRatio
			noiseErr[i] = row.ErrorRate
		}
		out := []csvSeries{
			{Name: "evade_noise_lr", X: "noise_index", Y: "lr", Data: noiseLR},
			{Name: "evade_noise_errrate", X: "noise_index", Y: "errrate", Data: noiseErr},
		}
		byChannel := map[string]*struct{ stat, errrate []float64 }{}
		order := []string{}
		for _, row := range r.Frontier {
			name := string(row.Channel)
			c, ok := byChannel[name]
			if !ok {
				c = &struct{ stat, errrate []float64 }{}
				byChannel[name] = c
				order = append(order, name)
			}
			c.stat = append(c.stat, row.Statistic)
			c.errrate = append(c.errrate, row.ErrorRate)
		}
		for _, name := range order {
			out = append(out,
				csvSeries{Name: "evade_frontier_" + name + "_stat", X: "setting_index", Y: "stat", Data: byChannel[name].stat},
				csvSeries{Name: "evade_frontier_" + name + "_errrate", X: "setting_index", Y: "errrate", Data: byChannel[name].errrate},
			)
		}
		return out
	case RobustnessResult:
		byChannel := map[string]*struct{ strength, confidence []float64 }{}
		order := []string{}
		rows := append(append([]RobustnessRow(nil), r.Rows...), r.BenignRows...)
		for _, row := range rows {
			name := string(row.Channel)
			if name == "none" || name == "" {
				name = "benign"
			}
			c, ok := byChannel[name]
			if !ok {
				c = &struct{ strength, confidence []float64 }{}
				byChannel[name] = c
				order = append(order, name)
			}
			strength := row.LikelihoodRatio
			if row.Channel == "cache" {
				strength = row.PeakValue
			}
			c.strength = append(c.strength, strength)
			c.confidence = append(c.confidence, row.Confidence)
		}
		var out []csvSeries
		for _, name := range order {
			out = append(out,
				csvSeries{Name: "robust_" + name + "_strength", X: "rate_index", Y: "strength", Data: byChannel[name].strength},
				csvSeries{Name: "robust_" + name + "_confidence", X: "rate_index", Y: "confidence", Data: byChannel[name].confidence},
			)
		}
		return out
	default:
		return nil
	}
}

// WriteTrainCSV is re-exported so cmd binaries can dump trains without
// importing trace directly.
func WriteTrainCSV(w interface{ Write(p []byte) (int, error) }, t *trace.Train) error {
	return t.WriteCSV(w)
}
