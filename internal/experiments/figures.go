package experiments

import (
	"cchunter"
	"cchunter/internal/auditor"
	"cchunter/internal/core"
	"cchunter/internal/runner"
	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

// Figure2Result is the memory bus channel's per-bit latency trace.
type Figure2Result struct {
	// Message is the transmitted bit pattern.
	Message []int
	// Latency is the spy's average memory access latency per bit
	// (cycles): high for '1' (contended bus), low for '0'.
	Latency []float64
	// BitErrors is the channel's decoding error count.
	BitErrors int
}

// Figure2 reproduces "Average latency per memory access in Memory Bus
// Covert Channel" for a 64-bit message.
func Figure2(o Options) Figure2Result {
	o = o.norm()
	msg := o.message()
	res := o.run(cchunter.Scenario{
		Channel:        cchunter.ChannelMemoryBus,
		BandwidthBPS:   o.rowBPS(1000),
		Message:        msg,
		QuantumCycles:  o.rowQuantum(1000),
		DurationQuanta: 2,
		Seed:           o.Seed,
	})
	n := len(msg)
	if len(res.PerBitSeries) < n {
		n = len(res.PerBitSeries)
	}
	return Figure2Result{
		Message:   msg,
		Latency:   res.PerBitSeries[:n],
		BitErrors: cchunter.BitErrors(msg, res.Decoded[:n]),
	}
}

// Figure3Result is the divider channel's per-bit loop latency trace.
type Figure3Result struct {
	Message   []int
	Latency   []float64 // average division-loop latency per bit
	BitErrors int
}

// Figure3 reproduces "Average loop execution time in Integer Divider
// Covert Channel" for the same message.
func Figure3(o Options) Figure3Result {
	o = o.norm()
	msg := o.message()
	res := o.run(cchunter.Scenario{
		Channel:        cchunter.ChannelIntegerDivider,
		BandwidthBPS:   o.rowBPS(1000),
		Message:        msg,
		QuantumCycles:  o.rowQuantum(1000),
		DurationQuanta: 2,
		Seed:           o.Seed,
	})
	n := len(msg)
	if len(res.PerBitSeries) < n {
		n = len(res.PerBitSeries)
	}
	return Figure3Result{
		Message:   msg,
		Latency:   res.PerBitSeries[:n],
		BitErrors: cchunter.BitErrors(msg, res.Decoded[:n]),
	}
}

// Figure4Result holds the two event trains of Figure 4.
type Figure4Result struct {
	// BusLocks is the memory bus lock event train (Figure 4a).
	BusLocks *trace.Train
	// DivContention is the divider contention event train (4b).
	DivContention *trace.Train
}

// Figure4 reproduces the event-train raster plots: thick bands of
// events wherever the trojan transmits a '1'.
func Figure4(o Options) Figure4Result {
	o = o.norm()
	msg := o.message()
	results := o.runShardJobs([]runner.Job{
		o.scenarioJob("fig4/bus", cchunter.Scenario{
			Channel:        cchunter.ChannelMemoryBus,
			BandwidthBPS:   o.rowBPS(1000),
			Message:        msg,
			QuantumCycles:  o.rowQuantum(1000),
			DurationQuanta: 2,
			Seed:           o.Seed,
			RecordRaw:      true,
		}),
		o.scenarioJob("fig4/div", cchunter.Scenario{
			Channel:        cchunter.ChannelIntegerDivider,
			BandwidthBPS:   o.rowBPS(1000),
			Message:        msg,
			QuantumCycles:  o.rowQuantum(1000),
			DurationQuanta: 2,
			Seed:           o.Seed,
			RecordRaw:      true,
		}),
	})
	bus := results[0].Value.(*cchunter.Result)
	div := results[1].Value.(*cchunter.Result)
	return Figure4Result{
		BusLocks:      bus.RawTrain.FilterKind(trace.KindBusLock),
		DivContention: div.RawTrain.FilterKind(trace.KindDivContention),
	}
}

// Figure5Result is the didactic event-density histogram construction.
type Figure5Result struct {
	// Densities are the per-Δt event counts of the synthetic train.
	Densities []int
	// Histogram is the resulting event density histogram.
	Histogram *stats.Histogram
	// Poisson is the same-rate Poisson expectation per bin (Figure 5's
	// dotted line).
	Poisson []float64
}

// Figure5 reproduces the illustration of §IV-B: a bursty event train,
// its density histogram, and the Poisson reference a random train of
// the same rate would follow.
func Figure5(o Options) Figure5Result {
	o = o.norm()
	rng := stats.NewRNG(o.Seed)
	train := trace.NewTrain(0)
	// Synthetic train: sparse random singles plus periodic bursts.
	var cycle uint64
	for i := 0; i < 64; i++ {
		if i%8 == 3 { // burst
			for j := 0; j < 12; j++ {
				train.Append(trace.Event{Cycle: cycle + uint64(j)*20})
			}
		} else if rng.Float64() < 0.5 {
			train.Append(trace.Event{Cycle: cycle + uint64(rng.Intn(900))})
		}
		cycle += 1000
	}
	densities := train.Densities(0, cycle, 1000, false)
	hist := stats.NewHistogram(16)
	hist.AddAll(densities)
	lambda := stats.MeanInts(densities)
	poisson := make([]float64, hist.NumBins())
	total := float64(hist.Total())
	for k := range poisson {
		poisson[k] = total * stats.PoissonPMF(lambda, k)
	}
	return Figure5Result{Densities: densities, Histogram: hist, Poisson: poisson}
}

// Figure6Result holds the two event density histograms of Figure 6
// plus the detection statistics read off them.
type Figure6Result struct {
	Bus, Div                   *stats.Histogram
	BusThreshold, DivThreshold int
	BusLR, DivLR               float64
	BusBurstMean, DivBurstMean float64
}

// Figure6 reproduces the event density histograms for the bus channel
// (Δt = 100k cycles; burst bin around density 20) and the divider
// channel (Δt = 500 cycles; burst distribution around bins 84–105).
func Figure6(o Options) Figure6Result {
	o = o.norm()
	msg := o.message()
	results := o.runShardJobs([]runner.Job{
		o.scenarioJob("fig6/bus", cchunter.Scenario{
			Channel:        cchunter.ChannelMemoryBus,
			BandwidthBPS:   o.rowBPS(1000),
			Message:        msg,
			QuantumCycles:  o.rowQuantum(1000),
			DurationQuanta: 2,
			Seed:           o.Seed,
		}),
		o.scenarioJob("fig6/div", cchunter.Scenario{
			Channel:        cchunter.ChannelIntegerDivider,
			BandwidthBPS:   o.rowBPS(1000),
			Message:        msg,
			QuantumCycles:  o.rowQuantum(1000),
			DurationQuanta: 2,
			Seed:           o.Seed,
		}),
	})
	bus := results[0].Value.(*cchunter.Result)
	div := results[1].Value.(*cchunter.Result)
	out := Figure6Result{Bus: bus.BusHistogram, Div: div.DivHistogram}
	out.BusThreshold = core.ThresholdDensity(out.Bus)
	out.DivThreshold = core.ThresholdDensity(out.Div)
	out.BusLR = core.LikelihoodRatio(out.Bus, out.BusThreshold)
	out.DivLR = core.LikelihoodRatio(out.Div, out.DivThreshold)
	out.BusBurstMean = out.Bus.MeanDensityFrom(out.BusThreshold)
	out.DivBurstMean = out.Div.MeanDensityFrom(out.DivThreshold)
	return out
}

// Figure7Result is the cache channel's per-bit access-time ratio.
type Figure7Result struct {
	Message   []int
	Ratio     []float64 // G1/G0 access-time ratio per bit
	BitErrors int
}

// Figure7 reproduces "Ratios of cache access times between G1 and G0
// cache sets in Cache Covert Channel".
func Figure7(o Options) Figure7Result {
	o = o.norm()
	msg := o.message()
	res := o.run(cchunter.Scenario{
		Channel:       cchunter.ChannelSharedCache,
		BandwidthBPS:  o.cacheBPS(100),
		Message:       msg,
		CacheSets:     512,
		QuantumCycles: o.cacheQuantum(),
		Seed:          o.Seed,
	})
	n := len(msg)
	if len(res.PerBitSeries) < n {
		n = len(res.PerBitSeries)
	}
	return Figure7Result{
		Message:   msg,
		Ratio:     res.PerBitSeries[:n],
		BitErrors: cchunter.BitErrors(msg, res.Decoded[:n]),
	}
}

// Figure8Result is the cache channel's conflict-miss train and its
// autocorrelogram.
type Figure8Result struct {
	// Train is the (deduplicated) conflict-miss event train (8a).
	Train *trace.Train
	// Autocorrelogram is r_p for lags 0..1000 (8b).
	Autocorrelogram []float64
	// PeakLag and PeakValue locate the dominant peak; the paper sees
	// ≈0.893 at lag 533 for 512 sets (the offset from 512 comes from
	// interleaved random conflicts).
	PeakLag   int
	PeakValue float64
	// SetsUsed echoes the channel configuration.
	SetsUsed int
	// Detected is the oscillation verdict.
	Detected bool
}

// Figure8 reproduces the oscillatory pattern study on the shared
// cache: 512 sets used for transmission, autocorrelation peak at a lag
// close to (slightly above) the set count.
func Figure8(o Options) Figure8Result {
	o = o.norm()
	res := o.run(cchunter.Scenario{
		Channel:       cchunter.ChannelSharedCache,
		BandwidthBPS:  o.cacheBPS(100),
		Message:       o.message(),
		CacheSets:     512,
		QuantumCycles: o.cacheQuantum(),
		Seed:          o.Seed,
	})
	osc := res.Report.Oscillation
	out := Figure8Result{Train: res.ConflictTrain, SetsUsed: 512}
	if osc != nil {
		out.Autocorrelogram = osc.Best.Autocorrelogram
		out.PeakLag = osc.Best.FundamentalLag
		out.PeakValue = osc.Best.PeakValue
		out.Detected = osc.Detected
	}
	return out
}

// TableIResult is the CC-Auditor hardware cost table.
type TableIResult struct {
	Model auditor.CostModel
}

// TableI reproduces the area/power/latency estimates of the
// CC-Auditor hardware.
func TableI() TableIResult {
	return TableIResult{Model: auditor.EstimateCost(auditor.DefaultSizing())}
}
