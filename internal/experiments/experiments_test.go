package experiments

import (
	"testing"

	"cchunter"
)

// fast keeps unit-test experiment runs quick; benches run closer to
// paper scale.
var fast = Options{Seed: 1, TimeScale: 100, MessageBits: 16}

func TestFigure2Shape(t *testing.T) {
	r := Figure2(fast)
	if r.BitErrors != 0 {
		t.Errorf("bit errors = %d", r.BitErrors)
	}
	if len(r.Latency) != len(r.Message) {
		t.Fatalf("series length %d vs %d bits", len(r.Latency), len(r.Message))
	}
	// Contended ('1') latencies clearly above uncontended ('0') ones.
	lo, hi := minMaxByBit(r.Message, r.Latency)
	if hi < 2*lo {
		t.Errorf("latency separation too weak: '0'≈%v '1'≈%v", lo, hi)
	}
}

// minMaxByBit returns the mean series value over '0' bits and over '1'
// bits.
func minMaxByBit(msg []int, series []float64) (zeroMean, oneMean float64) {
	var z, o float64
	var nz, no int
	for i, b := range msg {
		if b == 0 {
			z += series[i]
			nz++
		} else {
			o += series[i]
			no++
		}
	}
	if nz > 0 {
		zeroMean = z / float64(nz)
	}
	if no > 0 {
		oneMean = o / float64(no)
	}
	return zeroMean, oneMean
}

func TestFigure3Shape(t *testing.T) {
	r := Figure3(fast)
	if r.BitErrors != 0 {
		t.Errorf("bit errors = %d", r.BitErrors)
	}
	lo, hi := minMaxByBit(r.Message, r.Latency)
	if hi < 1.5*lo {
		t.Errorf("loop latency separation too weak: '0'≈%v '1'≈%v", lo, hi)
	}
}

func TestFigure4Trains(t *testing.T) {
	r := Figure4(fast)
	if r.BusLocks.Len() == 0 || r.DivContention.Len() == 0 {
		t.Fatal("empty trains")
	}
	// Thick bands: both trains must show large bursts separated by
	// silence (inter-event gap spread).
	for name, tr := range map[string]interface{ InterEventIntervals() []uint64 }{
		"bus": r.BusLocks, "div": r.DivContention,
	} {
		gaps := tr.InterEventIntervals()
		var small, large int
		for _, g := range gaps {
			if g < 10_000 {
				small++
			}
			if g > 500_000 {
				large++
			}
		}
		if small == 0 || large == 0 {
			t.Errorf("%s train not banded: %d tight, %d wide gaps", name, small, large)
		}
	}
}

func TestFigure5Didactic(t *testing.T) {
	r := Figure5(fast)
	if r.Histogram.Total() == 0 {
		t.Fatal("empty histogram")
	}
	// The bursty train must disagree with its Poisson reference in the
	// tail: mass at high densities the Poisson predicts as ~zero.
	top := r.Histogram.NonZeroMax()
	if top < 5 {
		t.Fatalf("no burst tail: top bin %d", top)
	}
	if r.Poisson[top] > 0.5 {
		t.Errorf("Poisson predicts %v windows at density %d; bursts should be surprising", r.Poisson[top], top)
	}
}

func TestFigure6Histograms(t *testing.T) {
	r := Figure6(fast)
	if r.BusLR < 0.9 || r.DivLR < 0.9 {
		t.Errorf("likelihood ratios: bus=%v div=%v, want ≥0.9", r.BusLR, r.DivLR)
	}
	if r.BusBurstMean < 10 || r.BusBurstMean > 40 {
		t.Errorf("bus burst mean %v, paper shows ≈20", r.BusBurstMean)
	}
	if r.DivBurstMean < 50 || r.DivBurstMean > 128 {
		t.Errorf("div burst mean %v, paper shows ≈84–105", r.DivBurstMean)
	}
	// Both histograms must be bimodal: big bin 0 plus a distinct tail.
	if r.Bus.Bin(0) == 0 || r.Div.Bin(0) == 0 {
		t.Error("missing non-burst mass at bin 0")
	}
}

func TestFigure7Ratios(t *testing.T) {
	r := Figure7(fast)
	if r.BitErrors != 0 {
		t.Errorf("bit errors = %d", r.BitErrors)
	}
	for i, b := range r.Message {
		if b == 1 && r.Ratio[i] <= 1 {
			t.Errorf("bit %d: '1' ratio %v", i, r.Ratio[i])
		}
		if b == 0 && r.Ratio[i] >= 1 {
			t.Errorf("bit %d: '0' ratio %v", i, r.Ratio[i])
		}
	}
}

func TestFigure8Oscillation(t *testing.T) {
	r := Figure8(fast)
	if !r.Detected {
		t.Fatalf("cache channel not detected (peak %v at %d)", r.PeakValue, r.PeakLag)
	}
	// Paper: peak ≈0.893 at lag 533 for 512 sets — close to, and
	// typically slightly above, the set count.
	if r.PeakLag < 490 || r.PeakLag > 600 {
		t.Errorf("peak lag %d, want ≈512", r.PeakLag)
	}
	if r.PeakValue < 0.75 {
		t.Errorf("peak value %v, want ≥0.75 (paper: 0.893; see EXPERIMENTS.md)", r.PeakValue)
	}
	if r.Train.Len() < 2048 {
		t.Errorf("conflict train too short: %d", r.Train.Len())
	}
}

func TestTableI(t *testing.T) {
	m := TableI().Model
	if m.HistogramBuffers.AreaMM2 <= 0 {
		t.Fatal("empty model")
	}
	// Total area must stay negligible vs the paper's 263 mm² i7 die.
	total := m.HistogramBuffers.AreaMM2 + m.Registers.AreaMM2 + m.ConflictMissDetector.AreaMM2
	if total > 0.05 {
		t.Errorf("auditor area %v mm² suspiciously large", total)
	}
}

func TestFigure10BandwidthSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth sweep is slow")
	}
	r := Figure10(Options{Seed: 1, TimeScale: 100, MessageBits: 16})
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.Detected {
			t.Errorf("%s at %g bps not detected (LR=%v peak=%v)",
				row.Channel, row.PaperBPS, row.LikelihoodRatio, row.PeakValue)
		}
		switch row.Channel {
		case cchunter.ChannelMemoryBus, cchunter.ChannelIntegerDivider:
			if row.LikelihoodRatio < 0.9 {
				t.Errorf("%s at %g bps LR = %v, want ≥0.9", row.Channel, row.PaperBPS, row.LikelihoodRatio)
			}
		}
	}
}

func TestFigure11FinerWindowsStronger(t *testing.T) {
	if testing.Short() {
		t.Skip("low-bandwidth run is slow")
	}
	r := Figure11(Options{Seed: 1, TimeScale: 100})
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	full := r.Rows[0]
	quarter := r.Rows[3]
	if !quarter.Detected {
		t.Errorf("quarter-quantum window failed to detect: %+v", quarter)
	}
	if quarter.PeakValue < full.PeakValue {
		t.Errorf("finer window peak %v weaker than full-quantum %v",
			quarter.PeakValue, full.PeakValue)
	}
}

func TestFigure12MessagePatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-message sweep is slow")
	}
	r := Figure12(Options{Seed: 1, TimeScale: 100, MessageBits: 16}, 4)
	if !r.AllDetected {
		t.Error("some message pattern escaped detection")
	}
	if r.BusLRMin < 0.9 || r.DivLRMin < 0.9 {
		t.Errorf("worst LRs: bus=%v div=%v", r.BusLRMin, r.DivLRMin)
	}
	// Cache autocorrelation deviations stay small across messages.
	if r.CachePeakMax-r.CachePeakMin > 0.2 {
		t.Errorf("cache peak range [%v, %v] too wide", r.CachePeakMin, r.CachePeakMax)
	}
	if len(r.BusMean) == 0 || len(r.DivMean) == 0 {
		t.Error("missing bin statistics")
	}
	for b := range r.BusMean {
		if r.BusMin[b] > r.BusMean[b] || r.BusMean[b] > r.BusMax[b] {
			t.Fatalf("bin %d: min/mean/max ordering broken", b)
		}
	}
}

func TestFigure13SetSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("set sweep is slow")
	}
	r := Figure13(Options{Seed: 1, TimeScale: 100, MessageBits: 16})
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.Detected {
			t.Errorf("%d sets: not detected", row.Sets)
			continue
		}
		// Lag tracks the set count, biased upward by noise.
		if row.PeakLag < row.Sets*9/10 || row.PeakLag > row.Sets*14/10 {
			t.Errorf("%d sets: lag %d", row.Sets, row.PeakLag)
		}
		if row.PeakValue < 0.7 {
			t.Errorf("%d sets: peak %v, paper shows ≈0.95", row.Sets, row.PeakValue)
		}
	}
}

func TestFigure14NoFalseAlarms(t *testing.T) {
	if testing.Short() {
		t.Skip("false-alarm sweep is slow")
	}
	r := Figure14(Options{Seed: 1, TimeScale: 100}, 24)
	if r.FalseAlarms != 0 {
		for _, row := range r.Rows {
			if row.FalseAlarm {
				t.Errorf("false alarm on %v (busLR=%v divLR=%v peak=%v)",
					row.Pair, row.BusLR, row.DivLR, row.PeakValue)
			}
		}
	}
	// The paper's specific observations:
	for _, row := range r.Rows {
		if row.Pair[0] == "mailserver" {
			if row.BusHist.TotalFrom(4) == 0 {
				t.Error("mailserver should show a second distribution at bins ≥4")
			}
			if row.BusLR >= 0.5 {
				t.Errorf("mailserver bus LR = %v, paper reports <0.5", row.BusLR)
			}
		}
		if row.PeakValue > 0.9 {
			t.Errorf("%v: benign peak %v looks like a covert channel", row.Pair, row.PeakValue)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.norm()
	if o.Seed != 1 || o.TimeScale != 100 || o.MessageBits != 64 {
		t.Errorf("defaults: %+v", o)
	}
	if o.quantum() != 2_500_000 {
		t.Errorf("quantum = %d", o.quantum())
	}
	if o.bps(10) != 1000 {
		t.Errorf("bps scaling wrong")
	}
	if o.cacheScale() != 10 || o.cacheQuantum() != 25_000_000 {
		t.Errorf("cache scaling wrong: %v %v", o.cacheScale(), o.cacheQuantum())
	}
	paper := Options{TimeScale: 1}.norm()
	if paper.quantum() != 250_000_000 || paper.cacheScale() != 1 {
		t.Error("paper scale wrong")
	}
}

func TestBitsForBandwidth(t *testing.T) {
	o := Options{MessageBits: 64}.norm()
	if bitsForBandwidth(o, 0.1) != 4 {
		t.Error("low bandwidth should use few bits")
	}
	if bitsForBandwidth(o, 10) != 16 {
		t.Error("mid bandwidth should cap at 16")
	}
	if bitsForBandwidth(o, 1000) != 64 {
		t.Error("high bandwidth should use the full message")
	}
}
