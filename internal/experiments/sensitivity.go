package experiments

import (
	"fmt"

	"cchunter"
	"cchunter/internal/core"
	"cchunter/internal/runner"
	"cchunter/internal/stats"
)

// ChannelSummary condenses one detection run for the sweep tables.
type ChannelSummary struct {
	// Channel identifies which covert channel ran.
	Channel cchunter.Channel
	// PaperBPS is the unscaled bandwidth the row corresponds to.
	PaperBPS float64
	// Hist is the indicator event density histogram (burst channels).
	Hist *stats.Histogram
	// LikelihoodRatio and BurstMean summarize the burst analysis.
	LikelihoodRatio, BurstMean float64
	// Autocorrelogram, PeakLag and PeakValue summarize the
	// oscillation analysis (cache channel).
	Autocorrelogram []float64
	PeakLag         int
	PeakValue       float64
	// Detected is the per-resource verdict.
	Detected bool
	// BitErrors reports channel reliability for the run.
	BitErrors int
}

// Figure10Result is the bandwidth sweep: every channel at 0.1, 10 and
// 1000 bits per second.
type Figure10Result struct {
	Rows []ChannelSummary
}

// figure10Bandwidths are the paper's three sweep points.
var figure10Bandwidths = []float64{0.1, 10, 1000}

// Figure10 reproduces the bandwidth test: even at 0.1 bps the burst
// channels keep likelihood ratios above 0.9 (the magnitudes of the Δt
// frequencies shrink, not the ratio), and the cache channel keeps its
// periodicity though with reduced strength at the lowest bandwidth.
func Figure10(o Options) Figure10Result {
	o = o.norm()
	var jobs []runner.Job
	for _, paperBPS := range figure10Bandwidths {
		bits := bitsForBandwidth(o, paperBPS)
		msg := cchunter.RandomMessage(bits, o.Seed)

		for _, ch := range []cchunter.Channel{cchunter.ChannelMemoryBus, cchunter.ChannelIntegerDivider} {
			sc := cchunter.Scenario{
				Channel:       ch,
				BandwidthBPS:  o.rowBPS(paperBPS),
				Message:       msg,
				QuantumCycles: o.rowQuantum(paperBPS),
				Seed:          o.Seed,
				Metrics:       o.Metrics,
			}
			jobs = append(jobs, runner.Job{
				Name: fmt.Sprintf("fig10/%s/%gbps", ch, paperBPS),
				Run: func(uint64) (interface{}, error) {
					res, err := sc.Run()
					if err != nil {
						return nil, err
					}
					return summarizeBurst(sc.Channel, paperBPS, res), nil
				},
			})
		}

		sets := 512
		if paperBPS >= 1000 {
			// High-bandwidth cache channels must shrink their set
			// groups to fit a bit into the slot, as in Xu et al.
			sets = 64
		}
		sc := cchunter.Scenario{
			Channel:       cchunter.ChannelSharedCache,
			BandwidthBPS:  o.cacheBPS(paperBPS),
			Message:       msg,
			CacheSets:     sets,
			QuantumCycles: o.cacheQuantum(),
			Seed:          o.Seed,
			Metrics:       o.Metrics,
		}
		jobs = append(jobs, runner.Job{
			Name: fmt.Sprintf("fig10/cache/%gbps", paperBPS),
			Run: func(uint64) (interface{}, error) {
				res, err := sc.Run()
				if err != nil {
					return nil, err
				}
				return summarizeCache(paperBPS, res), nil
			},
		})
	}
	var out Figure10Result
	for _, r := range o.runJobs(jobs) {
		out.Rows = append(out.Rows, r.Value.(ChannelSummary))
	}
	return out
}

// bitsForBandwidth bounds message length so low-bandwidth runs stay
// tractable: at 0.1 bps even the paper's observations cover only a
// handful of bits (64 bits would take over ten minutes of machine
// time).
func bitsForBandwidth(o Options, paperBPS float64) int {
	switch {
	case paperBPS < 1:
		return 4
	case paperBPS < 100:
		return min(o.MessageBits, 16)
	default:
		return o.MessageBits
	}
}

func summarizeBurst(ch cchunter.Channel, paperBPS float64, res *cchunter.Result) ChannelSummary {
	s := ChannelSummary{Channel: ch, PaperBPS: paperBPS, BitErrors: res.BitErrors}
	kind := cchunter.EventBusLock
	s.Hist = res.BusHistogram
	if ch == cchunter.ChannelIntegerDivider {
		kind = cchunter.EventDivContention
		s.Hist = res.DivHistogram
	}
	for _, v := range res.Report.Contention {
		if v.Kind == kind {
			s.LikelihoodRatio = v.Analysis.LikelihoodRatio
			s.BurstMean = v.Analysis.BurstMean
			s.Detected = v.Analysis.Detected
		}
	}
	return s
}

func summarizeCache(paperBPS float64, res *cchunter.Result) ChannelSummary {
	s := ChannelSummary{Channel: cchunter.ChannelSharedCache, PaperBPS: paperBPS, BitErrors: res.BitErrors}
	if osc := res.Report.Oscillation; osc != nil {
		s.Autocorrelogram = osc.Best.Autocorrelogram
		s.PeakLag = osc.Best.FundamentalLag
		s.PeakValue = osc.Best.PeakValue
		s.Detected = osc.Detected
	}
	return s
}

// Figure11Row is one observation-window fraction's outcome.
type Figure11Row struct {
	// Fraction of an OS time quantum used as the observation window.
	Fraction float64
	// PeakValue is the strongest window's peak autocorrelation.
	PeakValue float64
	// PeakLag is that window's fundamental lag.
	PeakLag int
	// Detected reports whether any window showed sustained
	// periodicity.
	Detected bool
}

// Figure11Result is the reduced-observation-window study.
type Figure11Result struct {
	Rows []Figure11Row
}

// Figure11 reproduces the low-bandwidth fine-grained analysis: a
// 0.1 bps cache channel running against co-scheduled cache-hungry
// processes. At full-quantum windows the interleaved noise dilutes the
// autocorrelation; at 0.75×, 0.5× and 0.25× quantum windows the
// repetitive peaks return.
func Figure11(o Options) Figure11Result {
	o = o.norm()
	res := o.run(cchunter.Scenario{
		Channel:       cchunter.ChannelSharedCache,
		BandwidthBPS:  o.cacheBPS(0.1),
		Message:       cchunter.RandomMessage(4, o.Seed),
		CacheSets:     256,
		CacheRounds:   6, // redundancy for reliability; the first round re-warms the tracker
		QuantumCycles: o.cacheQuantum(),
		Workloads:     []string{"tenant", "tenant"},
		Seed:          o.Seed,
	})
	// The paper's original series formulation (unique pair identifiers
	// over all events) is what loses strength at full-quantum windows
	// under interleaved noise -- the effect Figure 11 demonstrates.
	cfg := core.DefaultOscillationConfig(res.Contexts)
	cfg.RawPairSeries = true
	// With only a few bursts in the window, periodicity cannot sustain
	// past the first harmonic; the paper reads the "significant
	// repetitive peaks" directly, so the fine-grained analysis accepts
	// a strong fundamental.
	cfg.MinHarmonics = 1
	cfg.PeakThreshold = 0.45
	var out Figure11Result
	for _, frac := range []float64{1.0, 0.75, 0.5, 0.25} {
		window := uint64(float64(res.QuantumCycles) * frac)
		analyses := core.AnalyzeOscillationWindows(res.ConflictTrain, 0, res.EndCycle, window, cfg)
		best, ok := core.BestWindow(analyses)
		row := Figure11Row{Fraction: frac}
		if ok {
			row.PeakValue = best.PeakValue
			row.PeakLag = best.FundamentalLag
			row.Detected = best.Detected
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Figure12Result aggregates runs over many random messages.
type Figure12Result struct {
	// Messages is how many random 64-bit messages were run.
	Messages int
	// BusMean/BusMin/BusMax are per-bin statistics of the bus lock
	// density histogram across runs; likewise Div*.
	BusMean, BusMin, BusMax []float64
	DivMean, DivMin, DivMax []float64
	// BusLRMin and DivLRMin are the worst likelihood ratios observed.
	BusLRMin, DivLRMin float64
	// CachePeakMin/Max bound the cache channel's peak autocorrelation.
	CachePeakMin, CachePeakMax float64
	// CacheLagMin/Max bound the fundamental lag.
	CacheLagMin, CacheLagMax int
	// AllDetected reports whether every run of every channel was
	// caught.
	AllDetected bool
}

// figure12Run is one random message's outcome across all three
// channels.
type figure12Run struct {
	busBins, divBins []float64
	bus, div, cache  ChannelSummary
}

// Figure12 reproduces the encoded-message-pattern test: random 64-bit
// messages (the paper uses 256) through all three channels. Despite
// variations in peak Δt frequencies, likelihood ratios stay above 0.9
// and the cache autocorrelograms barely move.
//
// Each message is one runner job; its message bits and scenario seed
// come from the job's runner.DeriveSeed stream, so every message's
// randomness is independent of every other's and of the worker count.
func Figure12(o Options, messages int) Figure12Result {
	o = o.norm()
	if messages <= 0 {
		messages = 256
	}
	jobs := make([]runner.Job, messages)
	for i := range jobs {
		jobs[i] = runner.Job{
			Name: fmt.Sprintf("fig12/msg-%03d", i),
			Run: func(seed uint64) (interface{}, error) {
				msg := cchunter.RandomMessage(o.MessageBits, seed)
				bus, err := (cchunter.Scenario{
					Channel: cchunter.ChannelMemoryBus, BandwidthBPS: o.rowBPS(1000),
					Message: msg, QuantumCycles: o.rowQuantum(1000), DurationQuanta: 2,
					Seed: seed, Metrics: o.Metrics,
				}).Run()
				if err != nil {
					return nil, err
				}
				div, err := (cchunter.Scenario{
					Channel: cchunter.ChannelIntegerDivider, BandwidthBPS: o.rowBPS(1000),
					Message: msg, QuantumCycles: o.rowQuantum(1000), DurationQuanta: 2,
					Seed: seed, Metrics: o.Metrics,
				}).Run()
				if err != nil {
					return nil, err
				}
				cache, err := (cchunter.Scenario{
					Channel: cchunter.ChannelSharedCache, BandwidthBPS: o.cacheBPS(100),
					Message: msg, CacheSets: 512, QuantumCycles: o.cacheQuantum(), Seed: seed,
					Metrics: o.Metrics,
				}).Run()
				if err != nil {
					return nil, err
				}
				return figure12Run{
					busBins: histFloats(bus.BusHistogram),
					divBins: histFloats(div.DivHistogram),
					bus:     summarizeBurst(cchunter.ChannelMemoryBus, 1000, bus),
					div:     summarizeBurst(cchunter.ChannelIntegerDivider, 1000, div),
					cache:   summarizeCache(100, cache),
				}, nil
			},
		}
	}

	out := Figure12Result{Messages: messages, AllDetected: true}
	out.BusLRMin, out.DivLRMin = 1, 1
	out.CachePeakMin = 1
	var busBins, divBins [][]float64
	for _, r := range o.runJobs(jobs) {
		mr := r.Value.(figure12Run)
		busBins = append(busBins, mr.busBins)
		divBins = append(divBins, mr.divBins)
		if mr.bus.LikelihoodRatio < out.BusLRMin {
			out.BusLRMin = mr.bus.LikelihoodRatio
		}
		if mr.div.LikelihoodRatio < out.DivLRMin {
			out.DivLRMin = mr.div.LikelihoodRatio
		}
		if mr.cache.PeakValue < out.CachePeakMin {
			out.CachePeakMin = mr.cache.PeakValue
		}
		if mr.cache.PeakValue > out.CachePeakMax {
			out.CachePeakMax = mr.cache.PeakValue
		}
		if out.CacheLagMin == 0 || mr.cache.PeakLag < out.CacheLagMin {
			out.CacheLagMin = mr.cache.PeakLag
		}
		if mr.cache.PeakLag > out.CacheLagMax {
			out.CacheLagMax = mr.cache.PeakLag
		}
		if !mr.bus.Detected || !mr.div.Detected || !mr.cache.Detected {
			out.AllDetected = false
		}
	}
	out.BusMean, out.BusMin, out.BusMax = binStats(busBins)
	out.DivMean, out.DivMin, out.DivMax = binStats(divBins)
	return out
}

func histFloats(h *stats.Histogram) []float64 {
	if h == nil {
		return nil
	}
	return h.Floats()
}

// binStats computes per-bin mean/min/max across runs.
func binStats(runs [][]float64) (mean, min, max []float64) {
	if len(runs) == 0 {
		return nil, nil, nil
	}
	n := len(runs[0])
	mean = make([]float64, n)
	min = make([]float64, n)
	max = make([]float64, n)
	copy(min, runs[0])
	copy(max, runs[0])
	for _, r := range runs {
		for b, v := range r {
			mean[b] += v
			if v < min[b] {
				min[b] = v
			}
			if v > max[b] {
				max[b] = v
			}
		}
	}
	for b := range mean {
		mean[b] /= float64(len(runs))
	}
	return mean, min, max
}

// Figure13Row is one cache-set-count configuration's outcome.
type Figure13Row struct {
	Sets      int
	PeakLag   int
	PeakValue float64
	Detected  bool
	BitErrors int
	// Autocorrelogram for rendering.
	Autocorrelogram []float64
}

// Figure13Result is the varying-set-count study.
type Figure13Result struct {
	Rows []Figure13Row
}

// Figure13 reproduces the cache channel with 64, 128 and 256 sets:
// the autocorrelogram stays strongly periodic (peaks ≈0.95) and the
// fundamental lag tracks the number of sets, biased slightly upward by
// random conflict misses.
func Figure13(o Options) Figure13Result {
	o = o.norm()
	var jobs []runner.Job
	for _, sets := range []int{64, 128, 256} {
		sc := cchunter.Scenario{
			Channel:       cchunter.ChannelSharedCache,
			BandwidthBPS:  o.cacheBPS(100),
			Message:       cchunter.RandomMessage(min(o.MessageBits, 32), o.Seed),
			CacheSets:     sets,
			QuantumCycles: o.cacheQuantum(),
			Seed:          o.Seed,
			Metrics:       o.Metrics,
		}
		jobs = append(jobs, runner.Job{
			Name: fmt.Sprintf("fig13/%dsets", sets),
			Run: func(uint64) (interface{}, error) {
				res, err := sc.Run()
				if err != nil {
					return nil, err
				}
				row := Figure13Row{Sets: sc.CacheSets, BitErrors: res.BitErrors}
				if osc := res.Report.Oscillation; osc != nil {
					row.PeakLag = osc.Best.FundamentalLag
					row.PeakValue = osc.Best.PeakValue
					row.Detected = osc.Detected
					row.Autocorrelogram = osc.Best.Autocorrelogram
				}
				return row, nil
			},
		})
	}
	var out Figure13Result
	for _, r := range o.runJobs(jobs) {
		out.Rows = append(out.Rows, r.Value.(Figure13Row))
	}
	return out
}

// Figure14Row is one benign pair's outcome.
type Figure14Row struct {
	// Pair names the two programs run as hyperthread siblings.
	Pair [2]string
	// BusHist and DivHist are the indicator event density histograms.
	BusHist, DivHist *stats.Histogram
	// BusLR and DivLR are the likelihood ratios (expected < 0.5).
	BusLR, DivLR float64
	// PeakValue is the strongest cache autocorrelation seen.
	PeakValue float64
	// Autocorrelogram of the strongest window, for rendering.
	Autocorrelogram []float64
	// FalseAlarm reports whether any resource raised a detection.
	FalseAlarm bool
}

// Figure14Result is the false-alarm study.
type Figure14Result struct {
	Rows []Figure14Row
	// FalseAlarms counts rows that alarmed (the paper reports zero).
	FalseAlarms int
}

// Figure14Pairs are the paper's representative benign pairs.
func Figure14Pairs() [][2]string {
	return [][2]string{
		{"gobmk", "sjeng"},
		{"bzip2", "h264ref"},
		{"stream", "stream"},
		{"mailserver", "mailserver"},
		{"webserver", "webserver"},
	}
}

// Figure14 reproduces the false-alarm test: benign pairs sharing a
// physical core must not trigger either detector, even though some
// (mailserver) show real second distributions — their likelihood
// ratios stay below 0.5 — and some (webserver) show brief periodicity
// that dies out.
func Figure14(o Options, quanta int) Figure14Result {
	o = o.norm()
	if quanta <= 0 {
		quanta = 64
	}
	var jobs []runner.Job
	for i, pair := range Figure14Pairs() {
		sc := cchunter.Scenario{
			Channel:        cchunter.ChannelNone,
			Workloads:      []string{pair[0], pair[1]},
			DurationQuanta: quanta,
			QuantumCycles:  o.quantum(),
			Seed:           o.Seed + uint64(i),
			Metrics:        o.Metrics,
		}
		jobs = append(jobs, runner.Job{
			Name: fmt.Sprintf("fig14/%s+%s", pair[0], pair[1]),
			Run: func(uint64) (interface{}, error) {
				res, err := sc.Run()
				if err != nil {
					return nil, err
				}
				row := Figure14Row{Pair: pair, BusHist: res.BusHistogram, DivHist: res.DivHistogram}
				for _, v := range res.Report.Contention {
					switch v.Kind {
					case cchunter.EventBusLock:
						row.BusLR = v.Analysis.LikelihoodRatio
					case cchunter.EventDivContention:
						row.DivLR = v.Analysis.LikelihoodRatio
					}
				}
				if osc := res.Report.Oscillation; osc != nil {
					row.PeakValue = osc.Best.PeakValue
					row.Autocorrelogram = osc.Best.Autocorrelogram
				}
				row.FalseAlarm = res.Report.Detected
				return row, nil
			},
		})
	}
	var out Figure14Result
	for _, r := range o.runJobs(jobs) {
		row := r.Value.(Figure14Row)
		if row.FalseAlarm {
			out.FalseAlarms++
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
