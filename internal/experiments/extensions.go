package experiments

import (
	"fmt"
	"strings"

	"cchunter"
	"cchunter/internal/runner"
)

// MitigationRow is one (channel, defense) cell of the mitigation
// study.
type MitigationRow struct {
	Channel    cchunter.Channel
	Mitigation string // "" = unprotected baseline
	BitErrors  int
	Decoded    int
	Detected   bool
}

// ErrorRate returns the channel's bit error rate for the run.
func (r MitigationRow) ErrorRate() float64 {
	if r.Decoded == 0 {
		return 1
	}
	return float64(r.BitErrors) / float64(r.Decoded)
}

// MitigationResult is the post-detection damage-control study.
type MitigationResult struct {
	Rows []MitigationRow
}

// ExtMitigation runs each covert channel unprotected and under its
// matching defense (internal/mitigate) — the "damage control
// strategies like limiting resource sharing or bandwidth reduction"
// the paper positions as CC-Hunter's complement (§I). The defenses
// should push the channels' bit error rates toward coin-flipping.
func ExtMitigation(o Options) MitigationResult {
	o = o.norm()
	var out MitigationResult
	cases := []struct {
		ch  cchunter.Channel
		mit string
	}{
		{cchunter.ChannelMemoryBus, ""},
		{cchunter.ChannelMemoryBus, "buslimit"},
		{cchunter.ChannelIntegerDivider, ""},
		{cchunter.ChannelIntegerDivider, "tdm"},
		{cchunter.ChannelSharedCache, ""},
		{cchunter.ChannelSharedCache, "partition"},
	}
	var jobs []runner.Job
	for _, c := range cases {
		msg := cchunter.RandomMessage(min(o.MessageBits, 32), o.Seed)
		sc := cchunter.Scenario{
			Channel:    c.ch,
			Message:    msg,
			Mitigation: c.mit,
			Seed:       o.Seed,
			Metrics:    o.Metrics,
		}
		switch c.ch {
		case cchunter.ChannelSharedCache:
			sc.BandwidthBPS = o.cacheBPS(100)
			sc.QuantumCycles = o.cacheQuantum()
			sc.CacheSets = 256
		default:
			sc.BandwidthBPS = o.rowBPS(1000)
			sc.QuantumCycles = o.rowQuantum(1000)
			sc.DurationQuanta = 2
		}
		mit := c.mit
		if mit == "" {
			mit = "none"
		}
		jobs = append(jobs, runner.Job{
			Name: fmt.Sprintf("mitigate/%s/%s", c.ch, mit),
			Run: func(uint64) (interface{}, error) {
				res, err := sc.Run()
				if err != nil {
					return nil, err
				}
				return MitigationRow{
					Channel:    sc.Channel,
					Mitigation: sc.Mitigation,
					BitErrors:  res.BitErrors,
					Decoded:    len(res.Decoded),
					Detected:   res.Report.Detected,
				}, nil
			},
		})
	}
	for _, r := range o.runJobs(jobs) {
		out.Rows = append(out.Rows, r.Value.(MitigationRow))
	}
	return out
}

// Summary renders the mitigation study.
func (r MitigationResult) Summary() string {
	var sb strings.Builder
	sb.WriteString("Mitigation study (extension; §I's damage-control complement):\n")
	for _, row := range r.Rows {
		mit := row.Mitigation
		if mit == "" {
			mit = "none"
		}
		fmt.Fprintf(&sb, "  %-8s defense=%-9s error rate %5.1f%% (%d/%d bits), detected=%v\n",
			row.Channel, mit, row.ErrorRate()*100, row.BitErrors, row.Decoded, row.Detected)
	}
	sb.WriteString("  (defenses push reliability toward coin-flipping; an unreliable channel is a dead channel)")
	return sb.String()
}

// EvasionRow is one camouflage-intensity point of the evasion study.
type EvasionRow struct {
	// Noise is the trojan's camouflage probability per '0' slot.
	Noise float64
	// LikelihoodRatio is the burst detector's statistic.
	LikelihoodRatio float64
	// Detected is the verdict.
	Detected bool
	// ErrorRate is the spy's bit error rate.
	ErrorRate float64
}

// EvasionResult is the §III evasion study.
type EvasionResult struct {
	Rows []EvasionRow
}

// ExtEvasion sweeps the bus trojan's camouflage intensity: the §III
// argument that "it is impossible for a covert timing channel to just
// randomly inflate conflict events ... simply to evade detection" —
// camouflage bursts are indistinguishable from signal bursts to the
// spy too, so reliability collapses while the burst statistics stay
// channel-like.
func ExtEvasion(o Options) EvasionResult {
	o = o.norm()
	var jobs []runner.Job
	for _, noise := range []float64{0, 0.25, 0.5, 1.0} {
		msg := cchunter.RandomMessage(min(o.MessageBits, 32), o.Seed)
		sc := cchunter.Scenario{
			Channel:        cchunter.ChannelMemoryBus,
			BandwidthBPS:   o.rowBPS(1000),
			Message:        msg,
			QuantumCycles:  o.rowQuantum(1000),
			DurationQuanta: 2,
			EvasionNoise:   noise,
			Seed:           o.Seed,
			Metrics:        o.Metrics,
		}
		jobs = append(jobs, runner.Job{
			Name: fmt.Sprintf("evade/noise%.0f%%", noise*100),
			Run: func(uint64) (interface{}, error) {
				res, err := sc.Run()
				if err != nil {
					return nil, err
				}
				row := EvasionRow{Noise: sc.EvasionNoise}
				for _, v := range res.Report.Contention {
					if v.Kind == cchunter.EventBusLock {
						row.LikelihoodRatio = v.Analysis.LikelihoodRatio
						row.Detected = v.Analysis.Detected
					}
				}
				if n := len(res.Decoded); n > 0 {
					row.ErrorRate = float64(res.BitErrors) / float64(n)
				}
				return row, nil
			},
		})
	}
	var out EvasionResult
	for _, r := range o.runJobs(jobs) {
		out.Rows = append(out.Rows, r.Value.(EvasionRow))
	}
	return out
}

// Summary renders the evasion study.
func (r EvasionResult) Summary() string {
	var sb strings.Builder
	sb.WriteString("Evasion study (extension; the paper's §III argument):\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  camouflage %.0f%%: LR=%.3f detected=%v, spy bit error rate %.1f%%\n",
			row.Noise*100, row.LikelihoodRatio, row.Detected, row.ErrorRate*100)
	}
	sb.WriteString("  (inflating random conflicts destroys the spy's decoding before it hides the bursts)")
	return sb.String()
}
