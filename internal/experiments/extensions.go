package experiments

import (
	"fmt"
	"strings"

	"cchunter"
	"cchunter/internal/runner"
)

// MitigationRow is one (channel, defense) cell of the mitigation
// study.
type MitigationRow struct {
	Channel    cchunter.Channel
	Mitigation string // "" = unprotected baseline
	BitErrors  int
	Decoded    int
	Detected   bool
}

// ErrorRate returns the channel's bit error rate for the run.
func (r MitigationRow) ErrorRate() float64 {
	if r.Decoded == 0 {
		return 1
	}
	return float64(r.BitErrors) / float64(r.Decoded)
}

// MitigationResult is the post-detection damage-control study.
type MitigationResult struct {
	Rows []MitigationRow
}

// ExtMitigation runs each covert channel unprotected and under its
// matching defense (internal/mitigate) — the "damage control
// strategies like limiting resource sharing or bandwidth reduction"
// the paper positions as CC-Hunter's complement (§I). The defenses
// should push the channels' bit error rates toward coin-flipping.
func ExtMitigation(o Options) MitigationResult {
	o = o.norm()
	var out MitigationResult
	cases := []struct {
		ch  cchunter.Channel
		mit string
	}{
		{cchunter.ChannelMemoryBus, ""},
		{cchunter.ChannelMemoryBus, "buslimit"},
		{cchunter.ChannelIntegerDivider, ""},
		{cchunter.ChannelIntegerDivider, "tdm"},
		{cchunter.ChannelSharedCache, ""},
		{cchunter.ChannelSharedCache, "partition"},
	}
	var jobs []runner.Job
	for _, c := range cases {
		msg := cchunter.RandomMessage(min(o.MessageBits, 32), o.Seed)
		sc := cchunter.Scenario{
			Channel:    c.ch,
			Message:    msg,
			Mitigation: c.mit,
			Seed:       o.Seed,
			Metrics:    o.Metrics,
		}
		switch c.ch {
		case cchunter.ChannelSharedCache:
			sc.BandwidthBPS = o.cacheBPS(100)
			sc.QuantumCycles = o.cacheQuantum()
			sc.CacheSets = 256
		default:
			sc.BandwidthBPS = o.rowBPS(1000)
			sc.QuantumCycles = o.rowQuantum(1000)
			sc.DurationQuanta = 2
		}
		mit := c.mit
		if mit == "" {
			mit = "none"
		}
		jobs = append(jobs, runner.Job{
			Name: fmt.Sprintf("mitigate/%s/%s", c.ch, mit),
			Run: func(uint64) (interface{}, error) {
				res, err := sc.Run()
				if err != nil {
					return nil, err
				}
				return MitigationRow{
					Channel:    sc.Channel,
					Mitigation: sc.Mitigation,
					BitErrors:  res.BitErrors,
					Decoded:    len(res.Decoded),
					Detected:   res.Report.Detected,
				}, nil
			},
		})
	}
	for _, r := range o.runJobs(jobs) {
		out.Rows = append(out.Rows, r.Value.(MitigationRow))
	}
	return out
}

// Summary renders the mitigation study.
func (r MitigationResult) Summary() string {
	var sb strings.Builder
	sb.WriteString("Mitigation study (extension; §I's damage-control complement):\n")
	for _, row := range r.Rows {
		mit := row.Mitigation
		if mit == "" {
			mit = "none"
		}
		fmt.Fprintf(&sb, "  %-8s defense=%-9s error rate %5.1f%% (%d/%d bits), detected=%v\n",
			row.Channel, mit, row.ErrorRate()*100, row.BitErrors, row.Decoded, row.Detected)
	}
	sb.WriteString("  (defenses push reliability toward coin-flipping; an unreliable channel is a dead channel)")
	return sb.String()
}

// EvasionRow is one camouflage-intensity point of the evasion study.
type EvasionRow struct {
	// Noise is the trojan's camouflage probability per '0' slot.
	Noise float64
	// LikelihoodRatio is the burst detector's statistic.
	LikelihoodRatio float64
	// Detected is the verdict.
	Detected bool
	// ErrorRate is the spy's bit error rate.
	ErrorRate float64
}

// FrontierRow is one (channel, evader setting) point of the
// detection-vs-evasion frontier: the same channel transmitting the
// same message with an adaptive sender at the given period jitter and
// amplitude duty cycle.
type FrontierRow struct {
	Channel cchunter.Channel
	// Jitter is the evader's period-jitter fraction (0 = strictly
	// periodic slots).
	Jitter float64
	// Duty is the evader's amplitude duty cycle (0 = full amplitude).
	Duty float64
	// Statistic is the detector's decision statistic for the channel's
	// own medium: the burst likelihood ratio for bus/divider/ring/tlb,
	// the autocorrelation peak for the cache.
	Statistic float64
	// Detected is the medium's own verdict (burst or oscillation).
	Detected bool
	// Confidence is the whole report's confidence.
	Confidence float64
	// ErrorRate is the spy's bit error rate — what evasion costs the
	// channel itself.
	ErrorRate float64
}

// EvasionResult is the §III evasion study plus the adaptive-evader
// frontier.
type EvasionResult struct {
	// Rows is the legacy camouflage-noise sweep on the bus channel.
	Rows []EvasionRow
	// Frontier is the detection-vs-evasion frontier: every channel ×
	// every evader setting of frontierSettings, baseline first.
	Frontier []FrontierRow
}

// frontierSettings is the evader grid swept per channel: the full-
// amplitude baseline, four amplitude duty cycles down to deep
// starvation, and two period jitters. Calibrated so each channel keeps
// at least one setting where detection survives and reaches at least
// one where it degrades (cache folds at 1/8 amplitude; bus, ring, and
// tlb around 1/16; the divider — whose spy keeps hammering the shared
// unit regardless of the trojan's pace — only once the trojan is
// starved to ~1/500 of its natural rate).
var frontierSettings = []struct{ Jitter, Duty float64 }{
	{0, 0},     // baseline: strictly periodic, full amplitude
	{0, 0.125}, // amplitude thinned to 1/8
	{0, 0.06},  // amplitude thinned to ~1/16
	{0, 0.03},  // amplitude thinned to ~1/32
	{0, 0.002}, // deep starvation: ~1/500 amplitude
	{0.2, 0},   // ±20% slot phase jitter
	{0.5, 0},   // ±50% slot phase jitter
}

// frontierChannels are the media the frontier sweeps — all five
// modelled channels.
var frontierChannels = []cchunter.Channel{
	cchunter.ChannelMemoryBus,
	cchunter.ChannelIntegerDivider,
	cchunter.ChannelSharedCache,
	cchunter.ChannelRingInterconnect,
	cchunter.ChannelTLB,
}

// frontierScenario builds the channel's pinned frontier configuration:
// burst channels run the Figure 10 style row setup; the cache runs the
// golden-corpus oscillation configuration (256 sets, ≤10 bits).
func (o Options) frontierScenario(ch cchunter.Channel) cchunter.Scenario {
	sc := cchunter.Scenario{Channel: ch, Seed: o.Seed}
	switch ch {
	case cchunter.ChannelSharedCache:
		sc.BandwidthBPS = o.cacheBPS(100)
		sc.QuantumCycles = o.cacheQuantum()
		sc.CacheSets = 256
		sc.Message = cchunter.RandomMessage(min(o.MessageBits, 10), o.Seed)
	default:
		sc.BandwidthBPS = o.rowBPS(1000)
		sc.QuantumCycles = o.rowQuantum(1000)
		sc.DurationQuanta = 2
		sc.Message = cchunter.RandomMessage(min(o.MessageBits, 16), o.Seed)
	}
	return sc
}

// frontierStat reads the channel's own decision statistic out of a
// report: the burst likelihood ratio of the channel's event kind, or
// the cache's autocorrelation peak.
func frontierStat(ch cchunter.Channel, res *cchunter.Result) (stat float64, detected bool) {
	if ch == cchunter.ChannelSharedCache {
		if osc := res.Report.Oscillation; osc != nil {
			return osc.Best.PeakValue, osc.Detected
		}
		return 0, false
	}
	kind := map[cchunter.Channel]cchunter.EventKind{
		cchunter.ChannelMemoryBus:        cchunter.EventBusLock,
		cchunter.ChannelIntegerDivider:   cchunter.EventDivContention,
		cchunter.ChannelRingInterconnect: cchunter.EventRingContention,
		cchunter.ChannelTLB:              cchunter.EventTLBConflict,
	}[ch]
	for _, v := range res.Report.Contention {
		if v.Kind == kind {
			return v.Analysis.LikelihoodRatio, v.Analysis.Detected
		}
	}
	return 0, false
}

// ExtEvasion runs the two evasion studies as one figure. The legacy
// sweep inflates the bus trojan's camouflage noise: the §III argument
// that "it is impossible for a covert timing channel to just randomly
// inflate conflict events ... simply to evade detection" — camouflage
// bursts are indistinguishable from signal bursts to the spy too, so
// reliability collapses while the burst statistics stay channel-like.
//
// The frontier sweep then probes the argument's boundary with
// *adaptive* senders (period jitter, amplitude duty cycling) on every
// channel: settings exist where the detection statistic degrades while
// the channel — whose two ends share the evader schedule — still
// decodes, mapping where recurrence detection ends and residual
// channel capacity begins. All rows run as shardable scenario jobs, so
// the figure is byte-identical at every -j and -shards count.
func ExtEvasion(o Options) EvasionResult {
	o = o.norm()
	noises := []float64{0, 0.25, 0.5, 1.0}
	var jobs []runner.Job
	for _, noise := range noises {
		msg := cchunter.RandomMessage(min(o.MessageBits, 32), o.Seed)
		jobs = append(jobs, o.scenarioJob(fmt.Sprintf("evade/noise%.0f%%", noise*100),
			cchunter.Scenario{
				Channel:        cchunter.ChannelMemoryBus,
				BandwidthBPS:   o.rowBPS(1000),
				Message:        msg,
				QuantumCycles:  o.rowQuantum(1000),
				DurationQuanta: 2,
				EvasionNoise:   noise,
				Seed:           o.Seed,
			}))
	}
	for _, ch := range frontierChannels {
		for _, set := range frontierSettings {
			sc := o.frontierScenario(ch)
			sc.EvaderJitter = set.Jitter
			sc.EvaderDuty = set.Duty
			jobs = append(jobs, o.scenarioJob(
				fmt.Sprintf("evade/%s/j%g-d%g", ch, set.Jitter, set.Duty), sc))
		}
	}
	results := o.runShardJobs(jobs)

	errRate := func(res *cchunter.Result) float64 {
		if n := len(res.Decoded); n > 0 {
			return float64(res.BitErrors) / float64(n)
		}
		return 0
	}
	var out EvasionResult
	for i, noise := range noises {
		res := results[i].Value.(*cchunter.Result)
		row := EvasionRow{Noise: noise, ErrorRate: errRate(res)}
		for _, v := range res.Report.Contention {
			if v.Kind == cchunter.EventBusLock {
				row.LikelihoodRatio = v.Analysis.LikelihoodRatio
				row.Detected = v.Analysis.Detected
			}
		}
		out.Rows = append(out.Rows, row)
	}
	i := len(noises)
	for _, ch := range frontierChannels {
		for _, set := range frontierSettings {
			res := results[i].Value.(*cchunter.Result)
			i++
			stat, detected := frontierStat(ch, res)
			out.Frontier = append(out.Frontier, FrontierRow{
				Channel:    ch,
				Jitter:     set.Jitter,
				Duty:       set.Duty,
				Statistic:  stat,
				Detected:   detected,
				Confidence: res.Report.Confidence,
				ErrorRate:  errRate(res),
			})
		}
	}
	return out
}

// Summary renders the evasion study.
func (r EvasionResult) Summary() string {
	var sb strings.Builder
	sb.WriteString("Evasion study (extension; the paper's §III argument):\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  camouflage %.0f%%: LR=%.3f detected=%v, spy bit error rate %.1f%%\n",
			row.Noise*100, row.LikelihoodRatio, row.Detected, row.ErrorRate*100)
	}
	sb.WriteString("  (inflating random conflicts destroys the spy's decoding before it hides the bursts)\n")
	sb.WriteString("Detection-vs-evasion frontier (adaptive senders; duty 0 = full amplitude):\n")
	for _, row := range r.Frontier {
		fmt.Fprintf(&sb, "  %-8s jitter=%.2f duty=%.3f: stat=%.3f detected=%v confidence=%.2f, bit error rate %.1f%%\n",
			row.Channel, row.Jitter, row.Duty, row.Statistic, row.Detected,
			row.Confidence, row.ErrorRate*100)
	}
	sb.WriteString("  (amplitude starvation and period jitter degrade recurrence detection before reliability;\n   each channel crosses the frontier at some setting — the cost CC-Hunter imposes is bandwidth)")
	return sb.String()
}
