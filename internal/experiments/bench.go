package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"cchunter/internal/stats"
)

// bench.go is the benchmark-trajectory emitter: ccrepro -bench-out
// wraps each figure job in wall-clock and allocation accounting and
// writes one JSON document per run. CI compares successive documents
// (tools/benchcmp) so a performance regression in the detection
// pipeline fails the build instead of silently accumulating.

// BenchSchema versions the report format for the comparison tool.
const BenchSchema = "cchunter-bench/1"

// BenchFigure is one figure's measured cost and key detection metrics.
// The metrics pin correctness alongside speed: a "faster" pipeline
// that changes a likelihood ratio or a fundamental lag is a broken
// pipeline, and the comparison tool treats metric drift as failure.
type BenchFigure struct {
	// ID is the figure identifier as passed to -fig.
	ID string `json:"id"`
	// NS is the figure's wall-clock time in nanoseconds.
	NS int64 `json:"ns"`
	// Allocs and Bytes are the heap allocation count and volume during
	// the figure (runtime.MemStats deltas; valid because -bench-out
	// forces serial execution).
	Allocs uint64 `json:"allocs"`
	Bytes  uint64 `json:"bytes"`
	// Metrics are the figure's scalar detection outcomes (likelihood
	// ratios, peak lags, bit errors ...). Deterministic given seed and
	// scale, so the comparison is (near-)exact.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the whole -bench-out document.
type BenchReport struct {
	Schema string `json:"schema"`
	// CalibrationNS is the runtime of a fixed reference workload on
	// the machine that produced the report. Comparing ns across
	// machines is meaningless; comparing ns scaled by the calibration
	// ratio is merely noisy, which a tolerance absorbs.
	CalibrationNS int64         `json:"calibration_ns"`
	GoVersion     string        `json:"go_version"`
	Seed          uint64        `json:"seed"`
	TimeScale     float64       `json:"time_scale"`
	Figures       []BenchFigure `json:"figures"`
}

// Calibrate times the reference workload: a paper-scale FFT
// autocorrelation (n=65536, maxLag=4096), best of three. It exercises
// the same arithmetic the detection pipeline leans on, so its runtime
// tracks the machine speed that matters for the figures.
func Calibrate() int64 {
	xs := make([]float64, 65536)
	for i := range xs {
		xs[i] = float64(i%17) - 8
	}
	w := stats.NewWorkspace()
	best := int64(0)
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		w.Autocorrelogram(xs, 4096)
		ns := time.Since(t0).Nanoseconds()
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// NewBenchReport returns an empty report stamped with the current
// machine calibration and toolchain.
func NewBenchReport(seed uint64, timeScale float64) BenchReport {
	return BenchReport{
		Schema:        BenchSchema,
		CalibrationNS: Calibrate(),
		GoVersion:     runtime.Version(),
		Seed:          seed,
		TimeScale:     timeScale,
	}
}

// WriteBenchReport writes the report as indented JSON. Map keys
// marshal sorted, so equal reports produce equal bytes.
func WriteBenchReport(w io.Writer, rep BenchReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadBenchReport parses a -bench-out document, rejecting unknown
// schemas.
func ReadBenchReport(r io.Reader) (BenchReport, error) {
	var rep BenchReport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return rep, err
	}
	if rep.Schema != BenchSchema {
		return rep, fmt.Errorf("experiments: unknown bench schema %q", rep.Schema)
	}
	return rep, nil
}

// BenchMetrics extracts the scalar detection outcomes of a figure
// result for the benchmark trajectory. Unknown result types get no
// metrics (their timing is still recorded).
func BenchMetrics(result interface{}) map[string]float64 {
	m := map[string]float64{}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	switch r := result.(type) {
	case Figure2Result:
		m["bit_errors"] = float64(r.BitErrors)
	case Figure3Result:
		m["bit_errors"] = float64(r.BitErrors)
	case Figure4Result:
		m["bus_events"] = float64(r.BusLocks.Len())
		m["div_events"] = float64(r.DivContention.Len())
	case Figure5Result:
		m["windows"] = float64(len(r.Densities))
	case Figure6Result:
		m["bus_lr"] = r.BusLR
		m["div_lr"] = r.DivLR
		m["bus_threshold"] = float64(r.BusThreshold)
		m["div_threshold"] = float64(r.DivThreshold)
	case Figure7Result:
		m["bit_errors"] = float64(r.BitErrors)
	case Figure8Result:
		m["peak_lag"] = float64(r.PeakLag)
		m["peak_value"] = r.PeakValue
		m["detected"] = b2f(r.Detected)
	case Figure10Result:
		for _, row := range r.Rows {
			key := fmt.Sprintf("%s_%gbps", row.Channel, row.PaperBPS)
			if row.Hist != nil {
				m[key+"_lr"] = row.LikelihoodRatio
			} else {
				m[key+"_peak"] = row.PeakValue
			}
			m[key+"_detected"] = b2f(row.Detected)
		}
	case Figure11Result:
		for _, row := range r.Rows {
			key := fmt.Sprintf("window_%g", row.Fraction)
			m[key+"_peak"] = row.PeakValue
			m[key+"_detected"] = b2f(row.Detected)
		}
	case Figure12Result:
		m["bus_lr_min"] = r.BusLRMin
		m["div_lr_min"] = r.DivLRMin
		m["cache_peak_min"] = r.CachePeakMin
		m["all_detected"] = b2f(r.AllDetected)
	case Figure13Result:
		for _, row := range r.Rows {
			key := fmt.Sprintf("sets_%d", row.Sets)
			m[key+"_lag"] = float64(row.PeakLag)
			m[key+"_peak"] = row.PeakValue
		}
	case Figure14Result:
		m["false_alarms"] = float64(r.FalseAlarms)
		m["pairs"] = float64(len(r.Rows))
	case TableIResult:
		cm := r.Model
		m["area_mm2"] = cm.HistogramBuffers.AreaMM2 + cm.Registers.AreaMM2 +
			cm.ConflictMissDetector.AreaMM2
		m["power_mw"] = cm.HistogramBuffers.PowerMW + cm.Registers.PowerMW +
			cm.ConflictMissDetector.PowerMW
	case MitigationResult:
		for _, row := range r.Rows {
			mit := row.Mitigation
			if mit == "" {
				mit = "none"
			}
			m[fmt.Sprintf("%s_%s_errrate", row.Channel, mit)] = row.ErrorRate()
		}
	case EvasionResult:
		for _, row := range r.Rows {
			key := fmt.Sprintf("noise_%g", row.Noise)
			m[key+"_lr"] = row.LikelihoodRatio
			m[key+"_errrate"] = row.ErrorRate
		}
		for _, row := range r.Frontier {
			key := fmt.Sprintf("frontier_%s_j%g_d%g", row.Channel, row.Jitter, row.Duty)
			m[key+"_stat"] = row.Statistic
			m[key+"_detected"] = b2f(row.Detected)
			m[key+"_errrate"] = row.ErrorRate
		}
	case RobustnessResult:
		m["baseline_identical"] = b2f(r.BaselineIdentical)
		for _, row := range r.Rows {
			key := fmt.Sprintf("%s_drop_%g", row.Channel, row.DropRate)
			m[key+"_detected"] = b2f(row.Detected)
			m[key+"_confidence"] = row.Confidence
		}
	default:
		return nil
	}
	return m
}
