package experiments

import (
	"strings"
	"testing"
)

func TestExtMitigation(t *testing.T) {
	if testing.Short() {
		t.Skip("mitigation sweep is slow")
	}
	r := ExtMitigation(Options{Seed: 1, TimeScale: 100, MessageBits: 16})
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	base := map[string]MitigationRow{}
	defended := map[string]MitigationRow{}
	for _, row := range r.Rows {
		if row.Mitigation == "" {
			base[string(row.Channel)] = row
		} else {
			defended[string(row.Channel)] = row
		}
	}
	for ch, b := range base {
		d, ok := defended[ch]
		if !ok {
			t.Fatalf("missing defended row for %s", ch)
		}
		if b.ErrorRate() != 0 {
			t.Errorf("%s baseline should be error-free, got %.2f", ch, b.ErrorRate())
		}
		if !b.Detected {
			t.Errorf("%s baseline should be detected", ch)
		}
		// The defense must wreck reliability: ≥25% errors is already a
		// dead channel (coin flipping is 50%).
		if d.ErrorRate() < 0.25 {
			t.Errorf("%s under %s still decodes: error rate %.2f",
				ch, d.Mitigation, d.ErrorRate())
		}
	}
	if !strings.Contains(r.Summary(), "defense") {
		t.Error("summary broken")
	}
}

func TestExtEvasion(t *testing.T) {
	if testing.Short() {
		t.Skip("evasion sweep is slow")
	}
	r := ExtEvasion(Options{Seed: 1, TimeScale: 100, MessageBits: 16})
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	clean := r.Rows[0]
	full := r.Rows[len(r.Rows)-1]
	if clean.Noise != 0 || clean.ErrorRate != 0 || !clean.Detected {
		t.Errorf("clean row wrong: %+v", clean)
	}
	// Full camouflage: the histogram is still burst-dominated (it is
	// made of bursts!), so detection holds...
	if !full.Detected {
		t.Errorf("full camouflage escaped detection: %+v", full)
	}
	// ...while the spy's reliability collapses (the paper's argument
	// why evasion-by-inflation is self-defeating).
	if full.ErrorRate < 0.2 {
		t.Errorf("full camouflage error rate %.2f too low", full.ErrorRate)
	}
	// Error rate grows with camouflage intensity.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].ErrorRate < r.Rows[i-1].ErrorRate {
			t.Errorf("error rate not monotone: %+v", r.Rows)
			break
		}
	}
	if !strings.Contains(r.Summary(), "camouflage") {
		t.Error("summary broken")
	}

	// The adaptive-evader frontier: every channel × every setting,
	// baseline first per channel.
	if want := len(frontierChannels) * len(frontierSettings); len(r.Frontier) != want {
		t.Fatalf("frontier rows = %d, want %d", len(r.Frontier), want)
	}
	degraded := map[string]bool{}
	for _, row := range r.Frontier {
		ch := string(row.Channel)
		if row.Jitter == 0 && row.Duty == 0 {
			// Full-amplitude periodic baseline: detected, error-free.
			if !row.Detected {
				t.Errorf("%s frontier baseline not detected", ch)
			}
			if row.ErrorRate != 0 {
				t.Errorf("%s frontier baseline has %.1f%% errors", ch, row.ErrorRate*100)
			}
			continue
		}
		if !row.Detected {
			degraded[ch] = true
		}
	}
	// The acceptance bar: at least one adaptive-evader setting per
	// channel where detection degrades.
	for _, ch := range frontierChannels {
		if !degraded[string(ch)] {
			t.Errorf("%s never crossed the detection frontier", ch)
		}
	}
	// And the frontier is a real trade, not a dead channel: some
	// setting evades detection while the spy still decodes (≤5% BER).
	crossed := false
	for _, row := range r.Frontier {
		if !row.Detected && row.ErrorRate <= 0.05 {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Error("no frontier point evades detection while preserving reliability")
	}
	if !strings.Contains(r.Summary(), "frontier") {
		t.Error("frontier summary broken")
	}
}
