// Package experiments regenerates every table and figure of the
// paper's evaluation. Each Figure*/Table* function builds the
// corresponding scenario, runs it on the simulator, and returns the
// same rows/series the paper plots; cmd/ccrepro renders them and
// EXPERIMENTS.md records the comparison against the paper.
//
// Parallelism: every simulator run inside a figure is an independent
// (configuration, seed) pair, so multi-run figures decompose into
// internal/runner jobs executed on a bounded worker pool
// (Options.Workers; cmd/ccrepro's -j flag). Each job captures its
// entire configuration — including its seed — before the pool starts,
// so the assembled figure is bit-for-bit identical at every worker
// count; Workers = 1 reproduces the serial path. See DESIGN.md §9 for
// the determinism contract.
//
// Scaling: the paper's machine runs at 2.5 GHz with a 0.1 s OS time
// quantum. Simulating minutes of that machine is event-bounded, not
// cycle-bounded, but the benign workloads still make full-scale runs
// slow; Options.TimeScale therefore shrinks the quantum and raises the
// nominal bandwidths by the same factor (default 100×), which
// preserves every quantity detection depends on — conflicts per bit,
// event densities per Δt, and bits per quantum. TimeScale = 1 runs at
// full paper scale.
package experiments

import (
	"fmt"

	"cchunter"
	"cchunter/internal/runner"
)

// Options tunes an experiment run.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// TimeScale divides the OS quantum and multiplies bandwidths
	// (default 100; 1 = paper scale).
	TimeScale float64
	// MessageBits is the message length (default 64, the paper's
	// credit-card number).
	MessageBits int
	// Workers bounds the worker pool multi-run figures execute on
	// (default GOMAXPROCS; 1 = serial). Results are identical at
	// every worker count.
	Workers int
	// Shards, when positive, runs whole-scenario figure jobs (the
	// independent (configuration, seed) streams of Figures 4 and 6)
	// as simulator shards: a pool of Shards lanes, each scenario with
	// pipelined SPSC event delivery overlapping its simulation with
	// its auditing (see Scenario.Pipelined). Zero keeps the legacy
	// synchronous path on the Workers pool. Purely a throughput knob:
	// results are byte-identical at every shard count (pinned by the
	// shard-determinism tests and CI lane).
	Shards int
	// Slices, when > 1, splits every scenario's observation quanta
	// across that many quantum-sliced audit lanes (see
	// Scenario.Slices): one engine produces, the slice auditors
	// consume in parallel, and the slices merge deterministically
	// before analysis. Orthogonal to Shards (across-scenario
	// parallelism) — slicing parallelizes within one run. Results are
	// byte-identical at every slice count.
	Slices int
	// Metrics, when non-nil, instruments every scenario the experiment
	// runs (see Scenario.Metrics). The registry is race-safe, so a
	// figure's parallel sub-runs may share one; figure results are
	// byte-identical with or without it. ccrepro -metrics-out gives
	// each figure its own registry and dumps the snapshots.
	Metrics *cchunter.MetricsRegistry
}

func (o Options) norm() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 100
	}
	if o.MessageBits <= 0 {
		o.MessageBits = 64
	}
	return o
}

// quantum returns the scaled OS time quantum in cycles.
func (o Options) quantum() uint64 {
	return uint64(250_000_000 / o.TimeScale)
}

// bps converts a paper-quoted bandwidth to its scaled equivalent.
func (o Options) bps(paperBPS float64) float64 {
	return paperBPS * o.TimeScale
}

// message returns the experiment's message bits.
func (o Options) message() []int {
	return cchunter.RandomMessage(o.MessageBits, o.Seed)
}

// rowScale returns the time scale usable for a burst-channel run at
// the given paper bandwidth. Scaling multiplies the bandwidth, but a
// bit slot must stay long enough to hold the channel's real
// microstructure — lock spacing, burst lengths, and several Δt
// observation windows — which does not compress. Capping the scaled
// bandwidth at 2500 actual bits/second (a 1M-cycle slot) preserves the
// paper's bits-per-quantum and events-per-Δt ratios at every sweep
// point.
func (o Options) rowScale(paperBPS float64) float64 {
	s := o.TimeScale
	if max := 2500 / paperBPS; s > max {
		s = max
	}
	if s < 1 {
		s = 1
	}
	return s
}

// rowQuantum is the scaled quantum for a burst-channel run.
func (o Options) rowQuantum(paperBPS float64) uint64 {
	return uint64(250_000_000 / o.rowScale(paperBPS))
}

// rowBPS is the scaled bandwidth for a burst-channel run.
func (o Options) rowBPS(paperBPS float64) float64 {
	return paperBPS * o.rowScale(paperBPS)
}

// Cache-channel experiments cap the time scale at 10×: one 512-set bit
// costs ~1.4M cycles of real cache work that no clock rescaling can
// compress, and the per-quantum oscillation analysis needs several
// bits per quantum (at paper scale: a 0.1 s quantum at ~100 bps).
func (o Options) cacheScale() float64 {
	if o.TimeScale > 10 {
		return 10
	}
	return o.TimeScale
}

// cacheQuantum returns the quantum used by cache-channel experiments.
func (o Options) cacheQuantum() uint64 {
	return uint64(250_000_000 / o.cacheScale())
}

// cacheBPS converts a paper-quoted cache-channel bandwidth.
func (o Options) cacheBPS(paperBPS float64) float64 {
	return paperBPS * o.cacheScale()
}

// run executes a scenario with the experiment's instrumentation,
// failing loudly: experiment configurations are code, so an error here
// is a bug, not user input.
func (o Options) run(sc cchunter.Scenario) *cchunter.Result {
	sc.Metrics = o.Metrics
	sc.Slices = o.Slices
	res, err := sc.Run()
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// runJobs executes a figure's sub-runs on the experiment worker pool,
// failing loudly like run: the jobs are built from code, so an error
// is a bug. Results come back in job order.
func (o Options) runJobs(jobs []runner.Job) []runner.Result {
	results, err := runner.Run(o.Workers, o.Seed, jobs)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return results
}

// scenarioJob wraps one scenario as a runner job that ignores the
// derived seed: the scenario's own Seed is part of the experiment's
// pinned configuration. With Shards set the scenario becomes a shard:
// its event delivery is pipelined through an SPSC conduit.
func (o Options) scenarioJob(name string, sc cchunter.Scenario) runner.Job {
	sc.Metrics = o.Metrics
	sc.Pipelined = o.Shards > 0
	sc.Slices = o.Slices
	return runner.Job{Name: name, Run: func(uint64) (interface{}, error) {
		return sc.Run()
	}}
}

// runShardJobs executes whole-scenario jobs. With Shards > 0 they run
// on a pool of Shards lanes — the per-shard systems then pipeline into
// their auditors concurrently; otherwise they share the experiment
// worker pool like any other job. Results come back in input order
// either way, so figure output is byte-identical at every shard count.
func (o Options) runShardJobs(jobs []runner.Job) []runner.Result {
	workers := o.Workers
	if o.Shards > 0 {
		workers = o.Shards
	}
	results, err := runner.Run(workers, o.Seed, jobs)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return results
}
