package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"testing"

	"cchunter/internal/trace"
)

// figureDigest renders a figure set exactly the way cmd/ccrepro does —
// text summaries plus every CSV series — into one hash, so a digest
// mismatch means user-visible bytes changed.
type figureDigest struct {
	h hash.Hash
}

func newFigureDigest() *figureDigest { return &figureDigest{h: sha256.New()} }

func (d *figureDigest) add(id string, summary string, result interface{}) {
	fmt.Fprintln(d.h, summary)
	for _, s := range SeriesForCSV(id, result) {
		fmt.Fprintln(d.h, s.Name)
		if err := trace.WriteSeriesCSV(d.h, s.X, s.Y, s.Data); err != nil {
			panic(err)
		}
	}
}

func (d *figureDigest) train(t *trace.Train) {
	if err := t.WriteCSV(d.h); err != nil {
		panic(err)
	}
}

func (d *figureDigest) sum() string { return hex.EncodeToString(d.h.Sum(nil)) }

// reproDigest regenerates a representative figure subset — every
// experiment with internal fan-out that is fast enough for a unit
// test — at the given worker count.
func reproDigest(workers int) string {
	o := Options{Seed: 1, TimeScale: 100, MessageBits: 16, Workers: workers}
	d := newFigureDigest()

	f4 := Figure4(o)
	d.add("4", f4.Summary(), f4)
	d.train(f4.BusLocks)
	d.train(f4.DivContention)

	f6 := Figure6(o)
	d.add("6", f6.Summary(), f6)

	f12 := Figure12(o, 3)
	d.add("12", f12.Summary(), f12)

	f13 := Figure13(o)
	d.add("13", f13.Summary(), f13)

	ev := ExtEvasion(o)
	d.add("e", ev.Summary(), ev)
	return d.sum()
}

// slowDigest covers the two heaviest fan-outs, compared across fewer
// worker counts to bound test time.
func slowDigest(workers int) string {
	o := Options{Seed: 1, TimeScale: 100, MessageBits: 16, Workers: workers}
	d := newFigureDigest()

	f10 := Figure10(o)
	d.add("10", f10.Summary(), f10)

	rb := Robustness(o)
	d.add("r", rb.Summary(), rb)
	return d.sum()
}

// TestDeterminismAcrossWorkers is the determinism gate: the parallel
// path must emit byte-identical summaries and CSVs at every worker
// count. ccrepro -j N is the same code path, so this also covers the
// CLI (CI additionally diffs full ccrepro -j 1 vs -j 8 output trees).
func TestDeterminismAcrossWorkers(t *testing.T) {
	serial := reproDigest(1)
	for _, workers := range []int{4, 0} {
		if got := reproDigest(workers); got != serial {
			t.Fatalf("workers=%d digest %s != serial digest %s: scheduling leaked into results",
				workers, got, serial)
		}
	}
	if testing.Short() {
		return
	}
	slowSerial := slowDigest(1)
	if got := slowDigest(4); got != slowSerial {
		t.Fatalf("slow figures: workers=4 digest %s != serial %s", got, slowSerial)
	}
}
