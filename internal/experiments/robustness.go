package experiments

import (
	"fmt"

	"cchunter"
	"cchunter/internal/runner"
)

// RobustnessRow is one (channel, fault-rate) cell of the sensor fault
// sweep.
type RobustnessRow struct {
	// Channel identifies the covert channel (ChannelNone for the
	// benign false-alarm rows).
	Channel cchunter.Channel
	// DropRate is the injected uniform event-drop probability.
	DropRate float64
	// LikelihoodRatio is the burst detector's statistic (for the benign
	// rows, the worse of the bus and divider ratios).
	LikelihoodRatio float64
	// PeakValue is the cache detector's strongest autocorrelation peak.
	PeakValue float64
	// Detected is the overall verdict for the run.
	Detected bool
	// Confidence is the report's weakest per-detector confidence.
	Confidence float64
	// MeasuredLoss is the loss rate the injector actually inflicted.
	MeasuredLoss float64
	// BitErrors reports channel reliability under the faulted sensor
	// (the channel itself is unaffected; only the monitor degrades).
	BitErrors int
}

// RobustnessResult is the sensor fault sweep: detection strength and
// false-alarm behavior as the event path between the hardware units
// and the auditor drops a growing fraction of indicator events.
type RobustnessResult struct {
	// Rows holds the covert-channel runs, grouped by channel then rate.
	Rows []RobustnessRow
	// BenignRows holds the no-channel runs at the same fault rates.
	BenignRows []RobustnessRow
	// BaselineIdentical reports whether a run with the injector wired
	// in but configured to pass everything through produced a report
	// and decoded bitstream identical to a run with no injector at all
	// — the transparency guarantee the fault model promises.
	BaselineIdentical bool
}

// robustnessDropRates are the swept uniform drop probabilities.
var robustnessDropRates = []float64{0, 0.05, 0.10, 0.20}

// Robustness sweeps uniform event drop across all three covert
// channels and a benign pair. The paper's detectors key on densities
// and periodicity rather than exact counts, so likelihood ratios and
// autocorrelation peaks should survive moderate sensor loss — while
// every verdict carries a confidence reflecting what the sensor path
// actually delivered.
func Robustness(o Options) RobustnessResult {
	o = o.norm()

	msg := cchunter.RandomMessage(min(o.MessageBits, 32), o.Seed)
	burstScenario := func(ch cchunter.Channel, rate float64) cchunter.Scenario {
		return cchunter.Scenario{
			Channel:       ch,
			BandwidthBPS:  o.rowBPS(1000),
			Message:       msg,
			QuantumCycles: o.rowQuantum(1000),
			Seed:          o.Seed,
			Faults:        dropFaults(rate, o.Seed),
			Metrics:       o.Metrics,
		}
	}

	// Transparency baseline: a pass-through injector (saturation window
	// wide enough to never engage, no probabilistic faults) must leave
	// the run bit-identical to one with no injector wired at all.
	jobs := []runner.Job{{
		Name: "robust/baseline",
		Run: func(uint64) (interface{}, error) {
			plain, err := burstScenario(cchunter.ChannelMemoryBus, 0).Run()
			if err != nil {
				return nil, err
			}
			wired := burstScenario(cchunter.ChannelMemoryBus, 0)
			wired.Faults = cchunter.FaultConfig{SaturateWindow: 1, SaturateMax: 1 << 30, Seed: o.Seed}
			through, err := wired.Run()
			if err != nil {
				return nil, err
			}
			return plain.Report.String() == through.Report.String() &&
				equalBits(plain.Decoded, through.Decoded), nil
		},
	}}

	for _, ch := range []cchunter.Channel{cchunter.ChannelMemoryBus, cchunter.ChannelIntegerDivider} {
		for _, rate := range robustnessDropRates {
			sc := burstScenario(ch, rate)
			jobs = append(jobs, runner.Job{
				Name: fmt.Sprintf("robust/%s/drop%.2f", ch, rate),
				Run: func(uint64) (interface{}, error) {
					res, err := sc.Run()
					if err != nil {
						return nil, err
					}
					s := summarizeBurst(sc.Channel, 1000, res)
					return robustnessRow(sc.Channel, rate, res, s.LikelihoodRatio, 0), nil
				},
			})
		}
	}
	for _, rate := range robustnessDropRates {
		sc := cchunter.Scenario{
			Channel:       cchunter.ChannelSharedCache,
			BandwidthBPS:  o.cacheBPS(100),
			Message:       msg,
			CacheSets:     512,
			QuantumCycles: o.cacheQuantum(),
			Seed:          o.Seed,
			Faults:        dropFaults(rate, o.Seed),
			Metrics:       o.Metrics,
		}
		jobs = append(jobs, runner.Job{
			Name: fmt.Sprintf("robust/cache/drop%.2f", rate),
			Run: func(uint64) (interface{}, error) {
				res, err := sc.Run()
				if err != nil {
					return nil, err
				}
				s := summarizeCache(100, res)
				return robustnessRow(cchunter.ChannelSharedCache, rate, res, 0, s.PeakValue), nil
			},
		})
	}

	// Benign rows: the same degraded sensor must not start alarming on
	// innocent sharing — loss thins trains, it does not invent bursts.
	for _, rate := range robustnessDropRates {
		sc := cchunter.Scenario{
			Channel:        cchunter.ChannelNone,
			Workloads:      []string{"gobmk", "sjeng"},
			DurationQuanta: 32,
			QuantumCycles:  o.quantum(),
			Seed:           o.Seed,
			Faults:         dropFaults(rate, o.Seed),
			Metrics:        o.Metrics,
		}
		jobs = append(jobs, runner.Job{
			Name: fmt.Sprintf("robust/benign/drop%.2f", rate),
			Run: func(uint64) (interface{}, error) {
				res, err := sc.Run()
				if err != nil {
					return nil, err
				}
				worstLR := 0.0
				for _, v := range res.Report.Contention {
					if v.Analysis.LikelihoodRatio > worstLR {
						worstLR = v.Analysis.LikelihoodRatio
					}
				}
				peak := 0.0
				if osc := res.Report.Oscillation; osc != nil {
					peak = osc.Best.PeakValue
				}
				return robustnessRow(cchunter.ChannelNone, rate, res, worstLR, peak), nil
			},
		})
	}

	var out RobustnessResult
	for _, r := range o.runJobs(jobs) {
		switch v := r.Value.(type) {
		case bool:
			out.BaselineIdentical = v
		case RobustnessRow:
			if v.Channel == cchunter.ChannelNone {
				out.BenignRows = append(out.BenignRows, v)
			} else {
				out.Rows = append(out.Rows, v)
			}
		}
	}
	return out
}

// dropFaults builds a uniform-drop fault config, zero when rate is 0.
func dropFaults(rate float64, seed uint64) cchunter.FaultConfig {
	if rate == 0 {
		return cchunter.FaultConfig{}
	}
	return cchunter.FaultConfig{DropProb: rate, Seed: seed}
}

func robustnessRow(ch cchunter.Channel, rate float64, res *cchunter.Result, lr, peak float64) RobustnessRow {
	row := RobustnessRow{
		Channel:         ch,
		DropRate:        rate,
		LikelihoodRatio: lr,
		PeakValue:       peak,
		Detected:        res.Report.Detected,
		Confidence:      res.Report.Confidence,
		BitErrors:       res.BitErrors,
	}
	if fs := res.FaultStats; fs != nil {
		row.MeasuredLoss = fs.LossRate()
	}
	return row
}

func equalBits(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
