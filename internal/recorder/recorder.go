// Package recorder is the pipeline's flight recorder: a bounded ring
// of the most recent raw indicator events, serialized as a versioned
// "flight" when a verdict fires. A flight is the forensic artifact of
// a detection — small enough to keep per alarm, complete enough to
// replay deterministically through any detector version (cctrace
// replay), so a verdict rendered by last month's binary can be
// re-examined under today's analysis without re-running the workload.
package recorder

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cchunter/internal/trace"
)

// FlightSchema versions the serialized format.
const FlightSchema = "cchunter-flight/1"

// Meta is the run context a flight needs for faithful replay.
type Meta struct {
	// Seed is the scenario seed the run used.
	Seed uint64 `json:"seed"`
	// QuantumCycles is the OS time quantum.
	QuantumCycles uint64 `json:"quantumCycles"`
	// Contexts is the machine's hardware context count.
	Contexts int `json:"contexts"`
	// ObservationDivisor is the oscillation window divisor.
	ObservationDivisor int `json:"observationDivisor"`
	// EndCycle is the simulated cycle the verdict was rendered at.
	EndCycle uint64 `json:"endCycle"`
	// EventsShed counts events the live run's bounded ingest queue
	// dropped before they reached the detector (and therefore before
	// they could reach this recorder). A replay of such a flight is
	// working from the same degraded evidence base the live verdict
	// was, and reports the count instead of silently diverging.
	EventsShed uint64 `json:"eventsShed,omitempty"`
	// Kinds lists the burst-event kinds the live run's auditor
	// monitored, in programming order. Empty (captures from before the
	// ring/TLB channels existed) means the classic bus + divider pair,
	// so old flights replay byte-identically.
	Kinds []trace.Kind `json:"kinds,omitempty"`
}

// Flight is one serialized capture.
type Flight struct {
	// Schema is FlightSchema.
	Schema string `json:"schema"`
	// Reason says why the capture happened (e.g. "detection").
	Reason string `json:"reason"`
	// Meta carries the replay context.
	Meta Meta `json:"meta"`
	// Truncated reports that the ring wrapped: Events is the suffix of
	// the run's raw train, and Dropped events preceded it.
	Truncated bool `json:"truncated,omitempty"`
	// Dropped counts events evicted from the ring before capture.
	Dropped uint64 `json:"dropped,omitempty"`
	// Events is the captured raw event train, in arrival order.
	Events []trace.Event `json:"events"`
}

// Recorder is the in-memory ring. It implements trace.Listener and
// trace.BatchListener; register it alongside the auditor so it sees
// the same (post-fault-injection) event stream the detectors see.
type Recorder struct {
	buf     []trace.Event
	head    int // index of the oldest entry when full
	n       int
	dropped uint64
}

// DefaultCapacity holds roughly one paper observation window of
// deduplicated conflict activity plus contention events around it.
const DefaultCapacity = 65536

// New builds a recorder holding the last capacity events (<=0 selects
// DefaultCapacity).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]trace.Event, capacity)}
}

// OnEvent implements trace.Listener.
func (r *Recorder) OnEvent(e trace.Event) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.head] = e
	r.head = (r.head + 1) % len(r.buf)
	r.dropped++
}

// OnEvents implements trace.BatchListener.
func (r *Recorder) OnEvents(events []trace.Event) {
	for _, e := range events {
		r.OnEvent(e)
	}
}

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int { return r.n }

// Dropped reports how many events have been evicted so far.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Capture snapshots the ring into a Flight. The recorder keeps
// recording; capture does not drain it.
func (r *Recorder) Capture(reason string, meta Meta) Flight {
	events := make([]trace.Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		events = append(events, r.buf[(r.head+i)%len(r.buf)])
	}
	return Flight{
		Schema:    FlightSchema,
		Reason:    reason,
		Meta:      meta,
		Truncated: r.dropped > 0,
		Dropped:   r.dropped,
		Events:    events,
	}
}

// Write serializes the flight as indented JSON.
func (f Flight) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteFile serializes the flight to path.
func (f Flight) WriteFile(path string) error {
	tmp, err := os.CreateTemp("", "flight-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := f.Write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Read parses a flight and validates its schema.
func Read(r io.Reader) (Flight, error) {
	var f Flight
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return f, fmt.Errorf("recorder: parsing flight: %w", err)
	}
	if f.Schema != FlightSchema {
		return f, fmt.Errorf("recorder: unsupported flight schema %q (want %q)", f.Schema, FlightSchema)
	}
	if f.Meta.QuantumCycles == 0 {
		return f, fmt.Errorf("recorder: flight has no quantum")
	}
	return f, nil
}

// ReadFile parses a flight file.
func ReadFile(path string) (Flight, error) {
	file, err := os.Open(path)
	if err != nil {
		return Flight{}, err
	}
	defer file.Close()
	return Read(file)
}
