package recorder

import (
	"fmt"

	"cchunter/internal/auditor"
	"cchunter/internal/core"
	"cchunter/internal/stream"
	"cchunter/internal/trace"
)

// rebuild wires a fresh auditor exactly as a scenario run does: the
// flight's monitored burst kinds (bus and divider when the capture
// predates Meta.Kinds) at the paper Δt values plus the conflict-miss
// tracker front-end.
func rebuild(f Flight) (*auditor.Auditor, core.DetectorConfig, uint64, error) {
	aud, err := auditor.New(auditor.DefaultConfig(f.Meta.QuantumCycles))
	if err != nil {
		return nil, core.DetectorConfig{}, 0, fmt.Errorf("recorder: building auditor: %w", err)
	}
	kinds := f.Meta.Kinds
	if len(kinds) == 0 {
		kinds = []trace.Kind{trace.KindBusLock, trace.KindDivContention}
	}
	for _, k := range kinds {
		if err := aud.Monitor(k, core.DefaultDeltaT(k)); err != nil {
			return nil, core.DetectorConfig{}, 0, err
		}
	}
	if err := aud.MonitorConflicts(); err != nil {
		return nil, core.DetectorConfig{}, 0, err
	}
	contexts := f.Meta.Contexts
	if contexts <= 0 {
		contexts = 8
	}
	cfg := core.DefaultDetectorConfig(f.Meta.QuantumCycles, contexts)
	cfg.ObservationDivisor = f.Meta.ObservationDivisor
	end := f.Meta.EndCycle
	if end == 0 && len(f.Events) > 0 {
		end = f.Events[len(f.Events)-1].Cycle + 1
	}
	return aud, cfg, end, nil
}

// Replay feeds a flight's events through a freshly built batch
// pipeline and renders the verdict at the flight's end cycle. Replays
// are deterministic: the same flight always produces the same report.
// A truncated flight replays the captured suffix only, so its verdict
// can differ from the live run's — the flight says so via Truncated.
func Replay(f Flight) (core.Report, error) {
	aud, cfg, end, err := rebuild(f)
	if err != nil {
		return core.Report{}, err
	}
	aud.OnEvents(f.Events)
	det := core.NewDetector(aud, cfg)
	rep := det.Analyze(end)
	det.Release()
	return rep, nil
}

// ReplayStreaming replays the flight through the streaming detector
// instead, event by event, exercising the incremental path end to end
// (ring maintenance, window closing, CUSUM onset tracking). On a
// complete flight the verdict fields match Replay's byte for byte;
// the streaming report additionally carries onset info.
func ReplayStreaming(f Flight) (core.Report, error) {
	aud, cfg, end, err := rebuild(f)
	if err != nil {
		return core.Report{}, err
	}
	det := stream.New(aud, stream.Config{Detector: cfg})
	// The live run's ingest queue shed these events before anything —
	// detector or recorder — saw them. Fold the count into the replayed
	// verdict's Streaming block so live and replayed reports agree on
	// how much evidence the verdict rests on.
	det.SetShed(f.Meta.EventsShed)
	det.OnEvents(f.Events)
	return det.Finalize(end), nil
}
