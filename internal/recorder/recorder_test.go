package recorder

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"cchunter/internal/trace"
)

func ev(c uint64) trace.Event {
	return trace.Event{Cycle: c, Kind: trace.KindBusLock, Actor: uint8(c % 4)}
}

func TestRecorderRingOrder(t *testing.T) {
	r := New(4)
	for c := uint64(1); c <= 3; c++ {
		r.OnEvent(ev(c))
	}
	f := r.Capture("test", Meta{QuantumCycles: 100})
	if f.Truncated || f.Dropped != 0 {
		t.Errorf("under-capacity capture marked truncated (%v, %d)", f.Truncated, f.Dropped)
	}
	got := make([]uint64, len(f.Events))
	for i, e := range f.Events {
		got[i] = e.Cycle
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("events = %v, want [1 2 3]", got)
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := New(4)
	r.OnEvents([]trace.Event{ev(1), ev(2), ev(3), ev(4), ev(5), ev(6)})
	if r.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	f := r.Capture("test", Meta{QuantumCycles: 100})
	if !f.Truncated || f.Dropped != 2 {
		t.Errorf("wrapped capture not marked truncated (%v, %d)", f.Truncated, f.Dropped)
	}
	for i, want := range []uint64{3, 4, 5, 6} {
		if f.Events[i].Cycle != want {
			t.Errorf("event %d cycle = %d, want %d (oldest-first order lost)", i, f.Events[i].Cycle, want)
		}
	}
	// Capture must not drain: a second capture sees the same ring.
	f2 := r.Capture("again", Meta{QuantumCycles: 100})
	if len(f2.Events) != 4 {
		t.Errorf("second capture holds %d events, want 4", len(f2.Events))
	}
}

func TestFlightFileRoundtrip(t *testing.T) {
	r := New(8)
	r.OnEvents([]trace.Event{ev(10), ev(20), ev(30)})
	f := r.Capture("detection", Meta{
		Seed: 3, QuantumCycles: 2_500_000, Contexts: 8,
		ObservationDivisor: 2, EndCycle: 99,
	})
	path := filepath.Join(t.TempDir(), "flight.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(f)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Errorf("roundtrip changed the flight:\n%s\n%s", a, b)
	}
}

func TestReadRejectsBadFlights(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schema":"other/9","meta":{"quantumCycles":1}}`)); err == nil {
		t.Error("foreign schema accepted")
	}
	if _, err := Read(strings.NewReader(`{"schema":"cchunter-flight/1","meta":{}}`)); err == nil {
		t.Error("flight without a quantum accepted")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestReplayDeterministic: two replays of the same synthetic flight
// produce identical reports, batch and streaming replays agree on the
// verdict fields, and replay of an empty flight is well-formed.
func TestReplayDeterministic(t *testing.T) {
	r := New(0)
	rng := uint64(0x9e3779b97f4a7c15)
	var cycle uint64
	for i := 0; i < 5000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		cycle += rng % 2000
		e := trace.Event{Cycle: cycle, Actor: uint8(rng % 4), Victim: uint8((rng >> 8) % 4)}
		switch rng % 3 {
		case 0:
			e.Kind = trace.KindBusLock
		case 1:
			e.Kind = trace.KindDivContention
		default:
			e.Kind = trace.KindConflictMiss
			e.Unit = uint32(rng>>16) % 64
		}
		r.OnEvent(e)
	}
	f := r.Capture("test", Meta{
		QuantumCycles: 100_000, Contexts: 4, ObservationDivisor: 1, EndCycle: cycle + 1,
	})

	rep1, err := Replay(f)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Replay(f)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep1)
	b, _ := json.Marshal(rep2)
	if !bytes.Equal(a, b) {
		t.Error("two replays differ")
	}

	repS, err := ReplayStreaming(f)
	if err != nil {
		t.Fatal(err)
	}
	if repS.Streaming == nil {
		t.Error("streaming replay has no streaming info")
	}
	repS.Streaming = nil
	c, _ := json.Marshal(repS)
	if !bytes.Equal(a, c) {
		t.Errorf("streaming replay diverged from batch replay:\n%s\n%s", a, c)
	}

	empty := Flight{Schema: FlightSchema, Meta: Meta{QuantumCycles: 100_000, Contexts: 4}}
	if _, err := Replay(empty); err != nil {
		t.Errorf("empty flight replay failed: %v", err)
	}
}

// TestReplayCarriesShedCount pins that a flight recorded under load
// shedding replays with the live run's shed count in its verdict: the
// replayed report must state the same reduced evidence base the live
// one did, and the count must survive the file round-trip.
func TestReplayCarriesShedCount(t *testing.T) {
	r := New(0)
	var cycle uint64
	for i := 0; i < 200; i++ {
		cycle += 1_000
		r.OnEvent(trace.Event{Cycle: cycle, Kind: trace.KindBusLock})
	}
	f := r.Capture("detection", Meta{
		QuantumCycles: 100_000, Contexts: 4, ObservationDivisor: 1,
		EndCycle: cycle + 1, EventsShed: 37,
	})

	path := filepath.Join(t.TempDir(), "shed.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.EventsShed != 37 {
		t.Fatalf("EventsShed lost in round-trip: %d", got.Meta.EventsShed)
	}

	rep, err := ReplayStreaming(got)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Streaming == nil || rep.Streaming.EventsShed != 37 {
		t.Errorf("replayed verdict does not carry the live shed count: %+v", rep.Streaming)
	}

	// A clean flight's replay must not invent one.
	clean := r.Capture("detection", Meta{
		QuantumCycles: 100_000, Contexts: 4, ObservationDivisor: 1, EndCycle: cycle + 1,
	})
	repClean, err := ReplayStreaming(clean)
	if err != nil {
		t.Fatal(err)
	}
	if repClean.Streaming != nil && repClean.Streaming.EventsShed != 0 {
		t.Errorf("clean replay invented shed events: %d", repClean.Streaming.EventsShed)
	}
}
