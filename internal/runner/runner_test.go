package runner

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// hashJobs builds n CPU-bound jobs whose results depend only on the
// derived seed, never on scheduling.
func hashJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		jobs[i] = Job{
			Name: fmt.Sprintf("job-%02d", i),
			Run: func(seed uint64) (interface{}, error) {
				v := seed
				for k := 0; k < 1000; k++ {
					v = mix64(v)
				}
				return v, nil
			},
		}
	}
	return jobs
}

func TestRunPreservesOrderAndDeterminism(t *testing.T) {
	jobs := hashJobs(23)
	serial, err := Run(1, 42, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(serial), len(jobs))
	}
	for i, r := range serial {
		if r.Name != jobs[i].Name {
			t.Fatalf("result %d is %q, want %q: ordering broken", i, r.Name, jobs[i].Name)
		}
	}
	for _, workers := range []int{2, 4, 8, 0} {
		parallel, err := Run(workers, 42, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if serial[i].Name != parallel[i].Name || !reflect.DeepEqual(serial[i].Value, parallel[i].Value) {
				t.Fatalf("workers=%d: result %d (%s) diverged from serial run",
					workers, i, parallel[i].Name)
			}
		}
	}
}

func TestRunRootSeedChangesResults(t *testing.T) {
	jobs := hashJobs(4)
	a, _ := Run(2, 1, jobs)
	b, _ := Run(2, 2, jobs)
	same := 0
	for i := range a {
		if reflect.DeepEqual(a[i].Value, b[i].Value) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different root seeds produced identical results")
	}
}

func TestRunCancelsOnFirstError(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	jobs := make([]Job, 50)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Name: fmt.Sprintf("job-%02d", i),
			Run: func(uint64) (interface{}, error) {
				started.Add(1)
				if i == 3 {
					return nil, boom
				}
				// Slow enough that the pool records the failure long
				// before the other worker can drain the queue.
				time.Sleep(time.Millisecond)
				return i, nil
			},
		}
	}
	results, err := Run(2, 1, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if results == nil {
		t.Fatal("results dropped on error")
	}
	if results[3].Err == nil {
		t.Error("failing job's result lost")
	}
	// With 2 workers and the failure at job 3, dispatch must stop
	// almost immediately; far fewer than the 50 jobs may start.
	if n := started.Load(); n > 10 {
		t.Errorf("%d jobs started after early failure, want dispatch to stop", n)
	}
	// Jobs that never ran report zero results, not phantom values.
	if results[49].Value != nil || results[49].Name != "" {
		t.Errorf("undispatched job has non-zero result: %+v", results[49])
	}
}

func TestRunSerialErrorStopsImmediately(t *testing.T) {
	var started int
	jobs := []Job{
		{Name: "ok", Run: func(uint64) (interface{}, error) { started++; return 1, nil }},
		{Name: "bad", Run: func(uint64) (interface{}, error) { started++; return nil, errors.New("x") }},
		{Name: "never", Run: func(uint64) (interface{}, error) { started++; return 3, nil }},
	}
	_, err := Run(1, 1, jobs)
	if err == nil {
		t.Fatal("want error")
	}
	if started != 2 {
		t.Errorf("started = %d, want 2 (serial run must stop at the failure)", started)
	}
}

func TestRunRejectsBadNames(t *testing.T) {
	if _, err := Run(1, 1, []Job{
		{Name: "a", Run: func(uint64) (interface{}, error) { return nil, nil }},
		{Name: "a", Run: func(uint64) (interface{}, error) { return nil, nil }},
	}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := Run(1, 1, []Job{
		{Name: "", Run: func(uint64) (interface{}, error) { return nil, nil }},
	}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestRunEmpty(t *testing.T) {
	results, err := Run(4, 1, nil)
	if err != nil || results != nil {
		t.Errorf("empty run: %v, %v", results, err)
	}
}

func TestProgressCallback(t *testing.T) {
	var dones []int
	var total int
	p := Pool{Workers: 3, OnProgress: func(pr Progress) {
		dones = append(dones, pr.Done)
		total = pr.Total
		if pr.Last.Name == "" {
			t.Error("progress without a job result")
		}
		if pr.Done == pr.Total && pr.ETA != 0 {
			t.Errorf("final ETA = %v, want 0", pr.ETA)
		}
	}}
	if _, err := p.Run(1, hashJobs(9)); err != nil {
		t.Fatal(err)
	}
	if total != 9 || len(dones) != 9 {
		t.Fatalf("callbacks: %d with total %d, want 9/9", len(dones), total)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done counts %v not monotone", dones)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, "fig2") != DeriveSeed(1, "fig2") {
		t.Error("derivation unstable")
	}
	if DeriveSeed(1, "fig2") == DeriveSeed(1, "fig3") {
		t.Error("different names collide")
	}
	if DeriveSeed(1, "fig2") == DeriveSeed(2, "fig2") {
		t.Error("different roots collide")
	}
	// Nearby roots and names must not produce correlated seeds: check
	// all pairwise distinct over a small grid.
	seen := map[uint64]string{}
	for root := uint64(0); root < 64; root++ {
		for i := 0; i < 64; i++ {
			name := fmt.Sprintf("job-%d", i)
			s := DeriveSeed(root, name)
			if s == 0 {
				t.Fatal("zero seed")
			}
			key := fmt.Sprintf("%d/%s", root, name)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s", prev, key)
			}
			seen[s] = key
		}
	}
}
