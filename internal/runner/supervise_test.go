package runner

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"cchunter/internal/obs"
)

func TestSupervisePanicRecovered(t *testing.T) {
	reg := obs.NewRegistry()
	v, err := Supervise(context.Background(), "boom", 0, reg,
		func(context.Context) (interface{}, error) { panic("kaboom") })
	if v != nil {
		t.Errorf("panicking job returned a value: %v", v)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Job != "boom" || pe.Value != "kaboom" {
		t.Errorf("panic error carries %q/%v", pe.Job, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Errorf("error text %q hides the panic value", pe.Error())
	}
	if got := reg.Snapshot().Counters["runner.panics_recovered"]; got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}
}

func TestSuperviseWatchdogAbandonsStuckJob(t *testing.T) {
	reg := obs.NewRegistry()
	release := make(chan struct{})
	defer close(release)
	start := time.Now()
	_, err := Supervise(context.Background(), "stuck", 50*time.Millisecond, reg,
		func(context.Context) (interface{}, error) {
			<-release // ignores its context entirely
			return nil, nil
		})
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("abandonment took %v; grace period not bounded", elapsed)
	}
	if got := reg.Snapshot().Counters["runner.watchdog_fired"]; got != 1 {
		t.Errorf("watchdog_fired = %d, want 1", got)
	}
}

func TestSuperviseCooperativeCancel(t *testing.T) {
	_, err := Supervise(context.Background(), "coop", 30*time.Millisecond, nil,
		func(ctx context.Context) (interface{}, error) {
			<-ctx.Done() // honors cancellation
			return nil, ctx.Err()
		})
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
}

func TestSuperviseFastJobUnaffected(t *testing.T) {
	v, err := Supervise(context.Background(), "quick", time.Minute, nil,
		func(context.Context) (interface{}, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("got (%v, %v), want (42, nil)", v, err)
	}
}

// TestPoolRecoversPanic: a pool with Recover converts a panicking job
// into a typed failure while a concurrently dispatched healthy job
// still completes (both jobs are claimed before the failure can stop
// dispatch).
func TestPoolRecoversPanic(t *testing.T) {
	reg := obs.NewRegistry()
	jobs := []Job{
		{Name: "panics", Run: func(uint64) (interface{}, error) { panic("dead detector") }},
		{Name: "ok", Run: func(seed uint64) (interface{}, error) { return seed, nil }},
	}
	results, err := Pool{Workers: 2, Recover: true, Metrics: reg}.Run(1, jobs)
	if err == nil {
		t.Fatal("pool swallowed the panic")
	}
	if !results[0].Panicked {
		t.Errorf("panicking job not flagged: %+v", results[0])
	}
	var pe *PanicError
	if !errors.As(results[0].Err, &pe) {
		t.Errorf("panic result err = %v, want *PanicError", results[0].Err)
	}
	if reg.Snapshot().Counters["runner.panics_recovered"] == 0 {
		t.Error("panic not counted")
	}
}

// TestPoolWatchdogFlagsStuckJob: the pool-level watchdog abandons an
// unresponsive job, flags it, and counts the fire.
func TestPoolWatchdogFlagsStuckJob(t *testing.T) {
	reg := obs.NewRegistry()
	release := make(chan struct{})
	defer close(release)
	jobs := []Job{
		{Name: "hangs", Run: func(uint64) (interface{}, error) { <-release; return nil, nil }},
		{Name: "ok", Run: func(uint64) (interface{}, error) { return "fine", nil }},
	}
	results, err := Pool{Workers: 2, Watchdog: 30 * time.Millisecond, Metrics: reg}.Run(1, jobs)
	if err == nil {
		t.Fatal("pool reported success despite a stuck job")
	}
	if !results[0].TimedOut {
		t.Errorf("hung job not flagged as timed out: %+v", results[0])
	}
	if results[1].Err != nil {
		t.Errorf("healthy job failed: %+v", results[1])
	}
	if reg.Snapshot().Counters["runner.watchdog_fired"] == 0 {
		t.Error("watchdog fire not counted")
	}
}

// TestPoolRunCtxReceivesCancellation: RunCtx jobs get a live context
// wired to the watchdog.
func TestPoolRunCtxReceivesCancellation(t *testing.T) {
	jobs := []Job{{
		Name:    "ctx",
		Timeout: 20 * time.Millisecond,
		RunCtx: func(ctx context.Context, _ uint64) (interface{}, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}}
	results, err := Pool{Workers: 1}.Run(1, jobs)
	if err == nil {
		t.Fatal("cancelled job reported success")
	}
	if !results[0].TimedOut {
		t.Errorf("job not flagged as timed out: %+v", results[0])
	}
}

// TestPoolSupervisedDeterminism: supervision must not disturb the
// pool's bit-for-bit contract — supervised and unsupervised runs of
// healthy jobs produce identical values in identical order.
func TestPoolSupervisedDeterminism(t *testing.T) {
	mkJobs := func() []Job {
		var jobs []Job
		for _, name := range []string{"a", "b", "c", "d", "e"} {
			jobs = append(jobs, Job{
				Name: name,
				Run:  func(seed uint64) (interface{}, error) { return seed, nil },
			})
		}
		return jobs
	}
	plain, err := Pool{Workers: 2}.Run(7, mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := Pool{Workers: 2, Watchdog: time.Minute, Recover: true}.Run(7, mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Value != guarded[i].Value || plain[i].Name != guarded[i].Name {
			t.Errorf("job %d diverged under supervision: %v vs %v",
				i, plain[i].Value, guarded[i].Value)
		}
	}
}
