package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"cchunter/internal/obs"
)

// ErrWatchdog is wrapped by every watchdog-timeout error, so callers
// can errors.Is a supervised job's failure and publish a degraded
// verdict instead of aborting the run.
var ErrWatchdog = errors.New("runner: watchdog timeout")

// PanicError is the error a recovered job panic is converted into. The
// panic value and stack are preserved for the post-mortem; the pipeline
// itself keeps running.
type PanicError struct {
	// Job is the panicking job's name.
	Job string
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %q panicked: %v", e.Job, e.Value)
}

// Supervise runs fn under a watchdog and panic recovery — the
// supervision contract of one detector job in a long-lived monitoring
// pipeline:
//
//   - fn receives a context that is cancelled when the watchdog fires,
//     so a cooperative job can stop early;
//   - a panic inside fn is recovered into a *PanicError result;
//   - if fn has not returned within timeout, Supervise cancels the
//     context, waits a short grace period for a cooperative exit, and
//     then abandons the goroutine, returning an ErrWatchdog-wrapped
//     error. The abandoned goroutine keeps its panic recovery, so a
//     late crash cannot take the process down either.
//
// A zero timeout disables the watchdog (fn runs on the calling
// goroutine; only panic recovery applies). reg, which may be nil,
// tallies runner.watchdog_fired and runner.panics_recovered.
func Supervise(ctx context.Context, name string, timeout time.Duration, reg *obs.Registry, fn func(ctx context.Context) (interface{}, error)) (interface{}, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	run := func(ctx context.Context) (v interface{}, err error) {
		defer func() {
			if r := recover(); r != nil {
				reg.Counter("runner.panics_recovered").Inc()
				v, err = nil, &PanicError{Job: name, Value: r, Stack: debug.Stack()}
			}
		}()
		return fn(ctx)
	}
	if timeout <= 0 {
		return run(ctx)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		v   interface{}
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		var o outcome
		o.v, o.err = run(ctx)
		ch <- o
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-timer.C:
	}
	reg.Counter("runner.watchdog_fired").Inc()
	cancel()
	// Grace period: a job that honors its context comes back quickly
	// and the goroutine is reaped; an unresponsive one is abandoned
	// (it still carries panic recovery).
	grace := timeout / 4
	if grace > 100*time.Millisecond {
		grace = 100 * time.Millisecond
	}
	graceTimer := time.NewTimer(grace)
	defer graceTimer.Stop()
	select {
	case <-ch:
	case <-graceTimer.C:
	}
	return nil, fmt.Errorf("%w: job %q exceeded %v", ErrWatchdog, name, timeout)
}
