// Package runner is the experiment orchestrator: a bounded worker
// pool that executes a set of named, independent jobs in parallel
// while guaranteeing that the results are bit-for-bit identical to a
// serial run.
//
// The contract that makes this possible has three parts:
//
//  1. Jobs are closures over their own inputs. A job must not read
//     mutable state shared with another job; everything it needs is
//     captured at decomposition time, before any job runs.
//  2. Randomness is derived, never shared. Each job receives a seed
//     computed by DeriveSeed(rootSeed, jobName) — a SplitMix-style
//     hash — so a job's random stream depends only on the root seed
//     and its own stable name, not on which worker picks it up or in
//     what order jobs finish.
//  3. Results are reported in input order. Pool.Run returns one
//     Result per job, indexed exactly like the job slice, regardless
//     of completion order.
//
// Under this contract, worker count is a pure throughput knob:
// Pool{Workers: 1} reproduces the serial path and any other worker
// count produces the same bytes. cmd/ccrepro's determinism gate and
// the tests in this package enforce that equivalence.
//
// Allocation behavior at steady state: jobs draw their analysis
// scratch — label series, running minima, discretized feature
// vectors, autocorrelation workspaces — from the size-classed arena
// in internal/pool and return it when the job's detector finishes
// (Detector.Release). sync.Pool keeps per-P free lists, so a worker
// that runs many similar jobs quickly re-acquires the buffers the
// previous job on that worker released, and a long `ccrepro -j N`
// sweep reaches a steady state where the analysis hot path allocates
// nothing per job. Buffers are zeroed on Get, so reuse cannot leak
// state between jobs — the bit-for-bit guarantee above is unaffected.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cchunter/internal/obs"
)

// Job is one named unit of work. Name must be unique within a Run
// call and stable across runs: it is the job's identity for seed
// derivation, progress reporting, and timing summaries.
type Job struct {
	Name string
	// Run produces the job's result. The seed argument is
	// DeriveSeed(rootSeed, Name); jobs that pin their own seeds (for
	// example, to reproduce a documented paper configuration) may
	// ignore it.
	Run func(seed uint64) (interface{}, error)
	// RunCtx, when set, is used instead of Run and receives a context
	// that is cancelled when the job's watchdog fires, so a
	// cooperative job can stop early. Without a watchdog the context
	// is never cancelled.
	RunCtx func(ctx context.Context, seed uint64) (interface{}, error)
	// Timeout overrides the pool's Watchdog for this job (0 = inherit).
	Timeout time.Duration
	// Stages, when set, is called once after Run returns to harvest
	// per-stage time attribution (e.g. an obs.Registry's StageTimes).
	// It runs on the job's worker, before the result is reported, so
	// it may read state Run wrote without synchronization.
	Stages func() map[string]time.Duration
}

// Result is one job's outcome, delivered in input order.
type Result struct {
	// Name echoes the job's name.
	Name string
	// Value is whatever the job returned.
	Value interface{}
	// Err is the job's error, nil on success.
	Err error
	// Elapsed is the job's wall-clock execution time.
	Elapsed time.Duration
	// Worker is the index of the worker that ran the job (0-based).
	// Informational only: results never depend on it.
	Worker int
	// Panicked reports the job died by panic and was recovered
	// (Err is a *PanicError).
	Panicked bool
	// TimedOut reports the watchdog abandoned the job (Err wraps
	// ErrWatchdog).
	TimedOut bool
	// Stages is the job's per-stage time attribution, nil unless the
	// job provided a Stages hook. Informational only, like Elapsed.
	Stages map[string]time.Duration
}

// Progress is a snapshot delivered to Pool.OnProgress after each job
// completes. Callbacks are serialized; they never run concurrently.
type Progress struct {
	// Last is the job that just finished.
	Last Result
	// Done and Total count completed and scheduled jobs.
	Done, Total int
	// Elapsed is wall-clock time since Run started; ETA is the
	// remaining-time estimate assuming uniform job cost.
	Elapsed, ETA time.Duration
}

// Pool executes jobs across a bounded set of workers.
type Pool struct {
	// Workers bounds concurrent jobs. Zero or negative means
	// runtime.GOMAXPROCS(0). Workers == 1 is the serial path.
	Workers int
	// OnProgress, when set, is called after each job completes.
	OnProgress func(Progress)
	// Watchdog, when positive, bounds each job's wall-clock execution:
	// an overrunning job's context is cancelled, and if it still does
	// not return the job is abandoned with an ErrWatchdog-wrapped
	// error. Zero disables supervision, which is the byte-identical
	// legacy path (jobs run on the worker goroutine itself).
	Watchdog time.Duration
	// Recover converts a panicking job into a *PanicError result
	// instead of crashing the process. Always on when Watchdog is set
	// (an abandoned goroutine's late panic must not take the pool
	// down).
	Recover bool
	// Metrics, which may be nil, tallies runner.watchdog_fired and
	// runner.panics_recovered.
	Metrics *obs.Registry
}

// Run executes every job and returns their results in input order.
//
// On the first job error, no further jobs are started; jobs already
// in flight run to completion and their results are kept. The
// returned error is the lowest-indexed job error (so which error is
// reported does not depend on scheduling), wrapped with its job name;
// the full per-job picture stays available in the results.
func (p Pool) Run(rootSeed uint64, jobs []Job) ([]Result, error) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return nil, nil
	}
	seen := make(map[string]struct{}, len(jobs))
	for _, j := range jobs {
		if j.Name == "" {
			return nil, fmt.Errorf("runner: job with empty name")
		}
		if _, dup := seen[j.Name]; dup {
			return nil, fmt.Errorf("runner: duplicate job name %q", j.Name)
		}
		if j.Run == nil && j.RunCtx == nil {
			return nil, fmt.Errorf("runner: job %q has no Run function", j.Name)
		}
		seen[j.Name] = struct{}{}
	}

	results := make([]Result, len(jobs))
	start := time.Now()
	var (
		mu     sync.Mutex
		next   int  // index of the next job to dispatch
		done   int  // completed job count
		failed bool // stop dispatching new jobs
		wg     sync.WaitGroup
	)
	// claim hands out the next undispatched job index, or false once
	// the jobs are exhausted or a failure stopped the pool.
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if failed || next >= len(jobs) {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	complete := func(i int, r Result) {
		mu.Lock()
		results[i] = r
		done++
		if r.Err != nil {
			failed = true
		}
		cb := p.OnProgress
		var prog Progress
		if cb != nil {
			elapsed := time.Since(start)
			prog = Progress{Last: r, Done: done, Total: len(jobs), Elapsed: elapsed}
			if done > 0 {
				prog.ETA = elapsed / time.Duration(done) * time.Duration(len(jobs)-done)
			}
		}
		mu.Unlock()
		if cb != nil {
			cb(prog)
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				job := jobs[i]
				t0 := time.Now()
				v, err := p.execute(job, DeriveSeed(rootSeed, job.Name))
				r := Result{
					Name:    job.Name,
					Value:   v,
					Err:     err,
					Elapsed: time.Since(t0),
					Worker:  worker,
				}
				var pe *PanicError
				r.Panicked = errors.As(err, &pe)
				r.TimedOut = errors.Is(err, ErrWatchdog)
				if job.Stages != nil {
					r.Stages = job.Stages()
				}
				complete(i, r)
			}
		}(w)
	}
	wg.Wait()

	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("runner: job %q: %w", jobs[i].Name, results[i].Err)
		}
	}
	return results, nil
}

// execute runs one job under the pool's supervision policy. With no
// watchdog and no recovery configured, the job runs directly on the
// worker goroutine — the legacy path, byte-identical in behavior and
// timing to the unsupervised pool.
func (p Pool) execute(job Job, seed uint64) (interface{}, error) {
	timeout := p.Watchdog
	if job.Timeout > 0 {
		timeout = job.Timeout
	}
	run := job.RunCtx
	if run == nil {
		run = func(_ context.Context, seed uint64) (interface{}, error) { return job.Run(seed) }
	}
	if timeout <= 0 && !p.Recover {
		return run(context.Background(), seed)
	}
	return Supervise(context.Background(), job.Name, timeout, p.Metrics,
		func(ctx context.Context) (interface{}, error) { return run(ctx, seed) })
}

// Run is the convenience form: a pool with the given worker count and
// no progress callback.
func Run(workers int, rootSeed uint64, jobs []Job) ([]Result, error) {
	return Pool{Workers: workers}.Run(rootSeed, jobs)
}

// DeriveSeed hashes (rootSeed, jobName) into a job-private RNG seed
// using SplitMix64 finalization steps. The derivation is stable
// across runs, platforms, and worker counts, collision-resistant
// enough for experiment fan-outs, and never returns zero (several
// seed consumers treat zero as "use the default").
func DeriveSeed(rootSeed uint64, jobName string) uint64 {
	z := mix64(rootSeed ^ 0x9e3779b97f4a7c15)
	for i := 0; i < len(jobName); i++ {
		z = mix64(z ^ uint64(jobName[i])*0x100000001b3)
	}
	if z == 0 {
		z = 0x853c49e6748fea9b
	}
	return z
}

// mix64 is the SplitMix64 output finalizer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
