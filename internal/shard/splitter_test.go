package shard

import (
	"reflect"
	"testing"

	"cchunter/internal/trace"
)

// laneLog records one lane's delivered events plus the open/seal
// lifecycle, so routing tests can assert both placement and ordering.
type laneLog struct {
	events []trace.Event
	sealed bool
}

func (l *laneLog) OnEvent(e trace.Event) { l.events = append(l.events, e) }

func ev(cycle uint64) trace.Event {
	return trace.Event{Cycle: cycle, Kind: trace.KindBusLock, Victim: trace.NoContext}
}

func newTestSplitter(bounds []uint64) (*Splitter, []*laneLog) {
	logs := make([]*laneLog, len(bounds))
	s := NewSplitter(bounds,
		func(i int) trace.Listener {
			if logs[i] != nil {
				panic("lane opened twice")
			}
			logs[i] = &laneLog{}
			return logs[i]
		},
		func(i int) {
			if logs[i] == nil || logs[i].sealed {
				panic("seal of unopened or already-sealed lane")
			}
			logs[i].sealed = true
		})
	return s, logs
}

// TestSplitterRoutesByBounds pins the basic contract: each lane
// receives exactly the events delivered while the frontier is inside
// its cycle range, and their concatenation is the input order.
func TestSplitterRoutesByBounds(t *testing.T) {
	s, logs := newTestSplitter([]uint64{100, 200, 300})
	in := []trace.Event{ev(10), ev(99), ev(100), ev(150), ev(200), ev(250), ev(999)}
	s.OnEvents(in)
	s.Finish()

	wantPerLane := [][]trace.Event{
		{ev(10), ev(99)},
		{ev(100), ev(150)},
		{ev(200), ev(250), ev(999)}, // tail lane absorbs past-the-end cycles
	}
	var concat []trace.Event
	for i, log := range logs {
		if log == nil {
			t.Fatalf("lane %d never opened", i)
		}
		if !log.sealed {
			t.Errorf("lane %d not sealed", i)
		}
		if !reflect.DeepEqual(log.events, wantPerLane[i]) {
			t.Errorf("lane %d got %v, want %v", i, log.events, wantPerLane[i])
		}
		concat = append(concat, log.events...)
	}
	if !reflect.DeepEqual(concat, in) {
		t.Errorf("lane concatenation reorders the stream: %v", concat)
	}
}

// TestSplitterFrontierRouting pins the jitter contract: routing
// follows the running-maximum cycle, so an out-of-order event stays in
// the lane whose range contains the frontier — exactly where the
// global auditor's advance-only window state would have put it.
func TestSplitterFrontierRouting(t *testing.T) {
	s, logs := newTestSplitter([]uint64{100, 200})
	// 150 moves the frontier into lane 1; the jittered 90 must follow
	// it there, not resurrect lane 0.
	s.OnEvents([]trace.Event{ev(50), ev(150), ev(90), ev(160)})
	s.Finish()
	want0 := []trace.Event{ev(50)}
	want1 := []trace.Event{ev(150), ev(90), ev(160)}
	if !reflect.DeepEqual(logs[0].events, want0) {
		t.Errorf("lane 0 got %v, want %v", logs[0].events, want0)
	}
	if !reflect.DeepEqual(logs[1].events, want1) {
		t.Errorf("lane 1 got %v, want %v", logs[1].events, want1)
	}
}

// TestSplitterSkipsEmptyLanes pins laziness: a lane whose range the
// frontier jumps straight over is never opened and never sealed.
func TestSplitterSkipsEmptyLanes(t *testing.T) {
	s, logs := newTestSplitter([]uint64{100, 200, 300, 400})
	s.OnEvents([]trace.Event{ev(10), ev(350)})
	s.Finish()
	if logs[1] != nil || logs[2] != nil {
		t.Error("empty middle lanes were opened")
	}
	if logs[0] == nil || !logs[0].sealed {
		t.Error("lane 0 should be open and sealed")
	}
	if logs[3] == nil || !logs[3].sealed {
		t.Error("tail lane should be open and sealed by Finish")
	}
}

// TestSplitterPerEventPath drives the unbatched OnEvent entry point
// across a bound and checks it matches the batched routing.
func TestSplitterPerEventPath(t *testing.T) {
	s, logs := newTestSplitter([]uint64{100, 200})
	for _, e := range []trace.Event{ev(10), ev(99), ev(120), ev(80)} {
		s.OnEvent(e)
	}
	s.Finish()
	want0 := []trace.Event{ev(10), ev(99)}
	want1 := []trace.Event{ev(120), ev(80)}
	if !reflect.DeepEqual(logs[0].events, want0) || !reflect.DeepEqual(logs[1].events, want1) {
		t.Errorf("per-event routing: lane0=%v lane1=%v", logs[0].events, logs[1].events)
	}
}

// TestSplitterEagerSeal pins that a lane is sealed as soon as the
// frontier passes its bound — not deferred to Finish — so its consumer
// can quiesce while the run continues.
func TestSplitterEagerSeal(t *testing.T) {
	s, logs := newTestSplitter([]uint64{100, 200})
	s.OnEvents([]trace.Event{ev(10)})
	if logs[0].sealed {
		t.Fatal("lane 0 sealed while frontier still inside it")
	}
	s.OnEvents([]trace.Event{ev(110)})
	if !logs[0].sealed {
		t.Error("lane 0 not sealed after frontier crossed its bound")
	}
	if logs[1].sealed {
		t.Error("tail lane sealed early")
	}
	s.Finish()
	if !logs[1].sealed {
		t.Error("Finish did not seal the tail lane")
	}
}
