package shard

import (
	"reflect"
	"testing"

	"cchunter/internal/trace"
)

// TestConduitPreservesOrder pins the conduit's FIFO contract: events
// shipped through the ring reach the downstream listener in exactly
// push order. The downstream recorder's train panics on out-of-order
// cycles, so ordering is checked structurally as well as by value.
func TestConduitPreservesOrder(t *testing.T) {
	rec := trace.NewRecorder()
	c := NewConduit(rec, 4, 8) // tiny ring: forces backpressure and recycling
	var want []trace.Event
	cycle := uint64(0)
	emit := func(n int) []trace.Event {
		batch := make([]trace.Event, n)
		for i := range batch {
			batch[i] = trace.Event{Cycle: cycle, Kind: trace.KindBusLock, Actor: uint8(i % 3)}
			cycle += 7
		}
		return batch
	}
	for i := 0; i < 200; i++ {
		switch i % 3 {
		case 0: // batched path
			b := emit(5)
			want = append(want, b...)
			c.OnEvents(b)
			// The producer's buffer is reused immediately — the conduit
			// must have copied it.
			for j := range b {
				b[j] = trace.Event{}
			}
		case 1: // per-event path
			b := emit(3)
			want = append(want, b...)
			for _, e := range b {
				c.OnEvent(e)
			}
		case 2: // mixed, with an explicit flush between
			b := emit(1)
			want = append(want, b...)
			c.OnEvent(b[0])
			c.Flush()
		}
	}
	c.Drain()
	if got := rec.Train().Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("conduit delivered %d events, want %d; order or content differs",
			len(got), len(want))
	}
}

// TestConduitDrainIsIdempotentAndFallsBackSynchronous: after Drain the
// conduit still delivers (synchronously), so defensive Close-time
// flushes never lose events.
func TestConduitDrainSynchronousFallback(t *testing.T) {
	rec := trace.NewRecorder()
	c := NewConduit(rec, 0, 0)
	c.OnEvents([]trace.Event{{Cycle: 1}})
	c.Drain()
	c.Drain() // idempotent
	c.OnEvents([]trace.Event{{Cycle: 2}})
	c.OnEvent(trace.Event{Cycle: 3})
	if n := rec.Train().Len(); n != 3 {
		t.Fatalf("recorded %d events, want 3 (post-drain delivery lost)", n)
	}
}

// TestMergeTrains pins the deterministic merge order: ascending cycle,
// ties by actor context, then shard index — independent of which shard
// holds which events.
func TestMergeTrains(t *testing.T) {
	t1 := trace.NewTrain(4)
	t1.Append(trace.Event{Cycle: 5, Actor: 2})
	t1.Append(trace.Event{Cycle: 10, Actor: 1})
	t2 := trace.NewTrain(4)
	t2.Append(trace.Event{Cycle: 5, Actor: 1})
	t2.Append(trace.Event{Cycle: 10, Actor: 1, Unit: 9}) // tie with t1's: shard order decides
	t3 := trace.NewTrain(4)
	t3.Append(trace.Event{Cycle: 1, Actor: 7})

	got := MergeTrains([]*trace.Train{t1, t2, nil, t3})
	want := []trace.Event{
		{Cycle: 1, Actor: 7},
		{Cycle: 5, Actor: 1},
		{Cycle: 5, Actor: 2},
		{Cycle: 10, Actor: 1}, // shard 0 before shard 1 on a full tie
		{Cycle: 10, Actor: 1, Unit: 9},
	}
	if !reflect.DeepEqual(got.Events(), want) {
		t.Fatalf("merge order = %+v, want %+v", got.Events(), want)
	}
	if MergeTrains(nil).Len() != 0 {
		t.Error("empty merge should yield an empty train")
	}
}
