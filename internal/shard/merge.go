package shard

import "cchunter/internal/trace"

// MergeTrains merges per-shard event trains into one train with a
// deterministic total order: ascending cycle, ties broken by actor
// context id, then by shard index. Within one shard events already
// arrive in simulator order, so the merge is a standard k-way merge
// over sorted inputs and the output never depends on which shard
// finished first — the property the sharded experiment path needs for
// byte-identical aggregation at any shard count.
func MergeTrains(trains []*trace.Train) *trace.Train {
	total := 0
	for _, t := range trains {
		if t != nil {
			total += t.Len()
		}
	}
	out := trace.NewTrain(total)
	pos := make([]int, len(trains))
	for {
		best := -1
		var bestEv trace.Event
		for i, t := range trains {
			if t == nil || pos[i] >= t.Len() {
				continue
			}
			e := t.At(pos[i])
			if best < 0 || e.Cycle < bestEv.Cycle ||
				(e.Cycle == bestEv.Cycle && e.Actor < bestEv.Actor) {
				best, bestEv = i, e
			}
		}
		if best < 0 {
			return out
		}
		pos[best]++
		out.Append(bestEv)
	}
}
