package shard

import "cchunter/internal/trace"

// Splitter partitions one engine's time-ordered event stream across
// quantum-sliced audit lanes: lane i owns the cycle range
// [bounds[i-1], bounds[i]) and receives exactly the events a single
// downstream listener would process while its observation frontier is
// inside that range. The engine stays the lone producer; the lanes
// (normally Conduits feeding slice-local auditors) consume in
// parallel, so one long run's auditing parallelizes instead of only
// whole runs.
//
// Routing is by the *running maximum* event cycle, not the raw cycle:
// a degraded sensor path (timestamp jitter) may deliver events whose
// cycles run briefly backwards, and the auditor's window state only
// ever advances — an out-of-order event lands in whatever window is
// open when it arrives. Frontier routing reproduces that exactly: each
// lane's stream is a contiguous segment of arrival order, so the
// concatenation of the lanes is the original stream and every
// slice-local state machine sees what the global one would have.
//
// Lanes open lazily (first event) and seal eagerly (frontier passes
// their bound): at most the backlogged suffix of lanes is ever live,
// so idle-lane consumers never spin.
type Splitter struct {
	bounds []uint64 // ascending end cycle of lane i; the last lane also absorbs the tail
	open   func(lane int) trace.Listener
	seal   func(lane int)

	lanes    []trace.Listener
	cur      int
	frontier uint64
}

// NewSplitter builds a splitter over len(bounds) lanes. open is called
// at most once per lane, on its first event; seal is called once per
// *opened* lane when the frontier passes its bound (and from Finish
// for the tail). Lanes that never receive an event are never opened
// and never sealed.
func NewSplitter(bounds []uint64, open func(lane int) trace.Listener, seal func(lane int)) *Splitter {
	if len(bounds) == 0 {
		panic("shard: splitter needs at least one lane")
	}
	return &Splitter{
		bounds: bounds,
		open:   open,
		seal:   seal,
		lanes:  make([]trace.Listener, len(bounds)),
	}
}

// lane returns lane i, opening it on first use.
func (s *Splitter) lane(i int) trace.Listener {
	if s.lanes[i] == nil {
		s.lanes[i] = s.open(i)
	}
	return s.lanes[i]
}

// advance moves the routing cursor to the lane owning the frontier,
// sealing every opened lane it leaves behind.
func (s *Splitter) advance() {
	for s.cur < len(s.bounds)-1 && s.frontier >= s.bounds[s.cur] {
		if s.lanes[s.cur] != nil {
			s.seal(s.cur)
		}
		s.cur++
	}
}

// OnEvent implements trace.Listener.
func (s *Splitter) OnEvent(e trace.Event) {
	if e.Cycle > s.frontier {
		s.frontier = e.Cycle
		s.advance()
	}
	s.lane(s.cur).OnEvent(e)
}

// OnEvents implements trace.BatchListener: one pass over the batch,
// cut into contiguous segments wherever the frontier crosses a lane
// bound, each segment delivered to its lane in order.
func (s *Splitter) OnEvents(events []trace.Event) {
	start := 0
	for i := range events {
		c := events[i].Cycle
		if c <= s.frontier {
			continue
		}
		s.frontier = c
		if s.cur == len(s.bounds)-1 || s.frontier < s.bounds[s.cur] {
			continue
		}
		// Event i belongs to a later lane: flush the segment so far.
		if i > start {
			trace.Deliver(s.lane(s.cur), events[start:i])
		}
		start = i
		s.advance()
	}
	if start < len(events) {
		trace.Deliver(s.lane(s.cur), events[start:])
	}
}

// Finish seals the still-open tail lane (if any). Call once, after the
// producer has emitted its last event; the caller then drains the lane
// consumers in lane order.
func (s *Splitter) Finish() {
	if s.lanes[s.cur] != nil {
		s.seal(s.cur)
	}
}
