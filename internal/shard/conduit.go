// Package shard pipelines a simulator shard with its analysis
// consumers. A Conduit interposes between a sim.System's event
// emission and its listeners (auditor, recorders): instead of running
// the listener chain synchronously on the engine's execution path, it
// copies each event batch into a recycled slab and ships it through a
// bounded lock-free SPSC ring to a consumer goroutine that owns the
// downstream listeners. Simulation and auditing then overlap in time.
//
// The handoff is observationally invisible: the ring is FIFO and the
// consumer applies batches in push order, so every listener sees the
// same events in the same order as with synchronous delivery — which
// is why sharded runs are byte-identical to unsharded ones (pinned by
// the conduit equivalence tests and the shard-determinism CI lane).
//
// Slabs recycle through a reverse free ring, so steady-state delivery
// allocates nothing: the consumer returns each drained slab and the
// producer refills it with the next batch.
package shard

import (
	"cchunter/internal/spsc"
	"cchunter/internal/trace"
)

// DefaultDepth is the default ring depth in batches. At the default
// 512-event batch size this bounds in-flight events to ~32k — enough
// to absorb auditor hiccups without letting the simulator run
// unboundedly ahead.
const DefaultDepth = 64

// Conduit is a trace.Listener that forwards events to a downstream
// listener on its own consumer goroutine via an SPSC ring. The
// producer side (OnEvent/OnEvents/Flush) must be called from one
// goroutine — the simulator engine's, which is single-threaded.
type Conduit struct {
	out  trace.Listener
	ring *spsc.Ring[[]trace.Event]
	free *spsc.Ring[[]trace.Event]
	cur  []trace.Event // per-event path accumulator
	slab int
	done chan struct{}
}

// NewConduit starts a conduit delivering to out. depth bounds the
// in-flight batches (DefaultDepth when <= 0); slab is the capacity
// hint for recycled batch slabs (trace.DefaultBatchSize when <= 0).
func NewConduit(out trace.Listener, depth, slab int) *Conduit {
	if depth <= 0 {
		depth = DefaultDepth
	}
	if slab <= 0 {
		slab = trace.DefaultBatchSize
	}
	c := &Conduit{
		out:  out,
		ring: spsc.New[[]trace.Event](depth),
		free: spsc.New[[]trace.Event](depth),
		slab: slab,
		done: make(chan struct{}),
	}
	go c.consume()
	return c
}

// consume drains the ring, applies each slab to the downstream
// listeners, and recycles it. Runs until Drain closes the ring.
func (c *Conduit) consume() {
	defer close(c.done)
	for {
		slab, ok := c.ring.Pop()
		if !ok {
			return
		}
		trace.Deliver(c.out, slab)
		// Recycle; if the free ring is momentarily full the slab is
		// simply dropped for the GC — correctness never depends on it.
		c.free.TryPush(slab[:0])
	}
}

// grab returns an empty slab with at least n capacity, recycled when
// possible.
func (c *Conduit) grab(n int) []trace.Event {
	if s, ok := c.free.TryPop(); ok && cap(s) >= n {
		return s
	}
	if n < c.slab {
		n = c.slab
	}
	return make([]trace.Event, 0, n)
}

// OnEvents implements trace.BatchListener: copy the batch (the
// producer's buffer is reused after we return) and ship it.
func (c *Conduit) OnEvents(events []trace.Event) {
	if len(events) == 0 {
		return
	}
	if c.ring.Closed() {
		// After Drain (e.g. a defensive flush during Close) fall back
		// to synchronous delivery; the consumer is gone.
		trace.Deliver(c.out, events)
		return
	}
	c.flushCur()
	slab := append(c.grab(len(events)), events...)
	c.ring.Push(slab)
}

// OnEvent implements trace.Listener for unbatched producers: events
// accumulate into a pending slab that ships when full or on Flush.
func (c *Conduit) OnEvent(e trace.Event) {
	if c.ring.Closed() {
		c.out.OnEvent(e)
		return
	}
	if c.cur == nil {
		c.cur = c.grab(c.slab)
	}
	c.cur = append(c.cur, e)
	if len(c.cur) == cap(c.cur) {
		c.flushCur()
	}
}

// flushCur ships the pending per-event slab, if any.
func (c *Conduit) flushCur() {
	if len(c.cur) > 0 {
		c.ring.Push(c.cur)
		c.cur = nil
	}
}

// Flush ships any pending per-event slab downstream. It does not wait
// for the consumer; use Drain for the end-of-run barrier.
func (c *Conduit) Flush() { c.flushCur() }

// Seal flushes pending events and closes the ring without waiting:
// the consumer keeps draining the backlog in the background and exits
// when done. The splitter seals a lane the moment the event frontier
// passes it, so a sliced run's earlier lanes finish (and free their
// goroutines) while the simulation is still producing for later ones.
// Drain remains the barrier that waits for the consumer.
func (c *Conduit) Seal() {
	if c.ring.Closed() {
		return
	}
	c.flushCur()
	c.ring.Close()
}

// Drain flushes pending events, closes the ring, and blocks until the
// consumer has applied every in-flight batch — the quiesce barrier
// between simulation and analysis. On an already-sealed conduit it
// just waits out the backlog. After Drain the conduit delivers
// synchronously, so late stragglers (a defensive Close-time flush)
// still reach the listeners.
func (c *Conduit) Drain() {
	c.Seal()
	<-c.done
}
