// Package bus models the shared memory bus (or its QuickPath
// Interconnect emulation) that the paper's first covert channel
// exploits (§IV-A). The channel's indicator event is the bus lock: an
// atomic memory access that spans two cache lines forces the bus into a
// locked, contended state on Intel Nehalem / AMD K10 class machines,
// and the behaviour is still emulated on QPI-based parts for unaligned
// atomics (Intel 7500 datasheet, paper ref [22]).
package bus

import "cchunter/internal/trace"

// Config sets the timing parameters of the bus model.
type Config struct {
	// AccessCycles is the bus occupancy of one ordinary memory
	// transfer (cache-line fill).
	AccessCycles uint64
	// LockCycles is the bus occupancy of one atomic unaligned access
	// spanning two cache lines: the split transaction locks the bus
	// for substantially longer than a normal transfer.
	LockCycles uint64
	// QPIEmulation records that the modelled interconnect is QPI
	// rather than a legacy shared bus. Lock behaviour is identical
	// (the paper's point is precisely that QPI retains it); the flag
	// only changes reporting.
	QPIEmulation bool
}

// DefaultConfig returns timings loosely calibrated to the paper's
// 2.5 GHz Xeon E5540 platform: ~24 ns per line fill on the bus, and
// ~1 µs of bus occupancy per atomic unaligned access — the split
// transaction stalls the whole memory system, which is exactly why it
// makes a usable covert channel transmitter.
func DefaultConfig() Config {
	return Config{AccessCycles: 60, LockCycles: 2_500}
}

// Bus is the shared interconnect. All methods take the requesting
// context and the issue cycle and return the completion cycle; the
// engine serializes calls in global time order, so the model keeps
// plain busy-until state.
type Bus struct {
	cfg       Config
	busyUntil uint64
	listener  trace.Listener

	// Counters for reporting.
	transfers      uint64
	locks          uint64
	waitedCycles   uint64
	lockWaitCycles uint64
}

// New returns a bus with the given configuration.
func New(cfg Config, l trace.Listener) *Bus {
	if cfg.AccessCycles == 0 {
		cfg.AccessCycles = DefaultConfig().AccessCycles
	}
	if cfg.LockCycles == 0 {
		cfg.LockCycles = DefaultConfig().LockCycles
	}
	return &Bus{cfg: cfg, listener: l}
}

// Access performs an ordinary memory transfer issued at cycle now by
// ctx. It returns the completion cycle and how long the request waited
// for the bus (the covert channel's receiver decodes bits from exactly
// this waiting time).
func (b *Bus) Access(now uint64, ctx uint8) (done, waited uint64) {
	start := now
	if b.busyUntil > start {
		waited = b.busyUntil - start
		start = b.busyUntil
	}
	done = start + b.cfg.AccessCycles
	b.busyUntil = done
	b.transfers++
	b.waitedCycles += waited
	return done, waited
}

// LockAccess performs an atomic unaligned access spanning two cache
// lines: it acquires the bus, holds it locked for LockCycles, and emits
// a KindBusLock indicator event stamped at the issue cycle (events are
// stamped at issue so that the global event stream stays time-ordered).
func (b *Bus) LockAccess(now uint64, ctx uint8) (done, waited uint64) {
	start := now
	if b.busyUntil > start {
		waited = b.busyUntil - start
		start = b.busyUntil
	}
	done = start + b.cfg.LockCycles
	b.busyUntil = done
	b.locks++
	b.lockWaitCycles += waited
	if b.listener != nil {
		b.listener.OnEvent(trace.Event{
			Cycle:  now,
			Kind:   trace.KindBusLock,
			Actor:  ctx,
			Victim: trace.NoContext,
		})
	}
	return done, waited
}

// Stats reports cumulative bus activity.
type Stats struct {
	Transfers      uint64 // ordinary transfers completed
	Locks          uint64 // bus-lock (atomic unaligned) operations
	WaitedCycles   uint64 // cycles ordinary transfers spent waiting
	LockWaitCycles uint64 // cycles lock operations spent waiting
}

// Stats returns a snapshot of the counters.
func (b *Bus) Stats() Stats {
	return Stats{
		Transfers:      b.transfers,
		Locks:          b.locks,
		WaitedCycles:   b.waitedCycles,
		LockWaitCycles: b.lockWaitCycles,
	}
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// BusyUntil returns the cycle at which the bus becomes free; exposed
// for tests and the engine's introspection tools.
func (b *Bus) BusyUntil() uint64 { return b.busyUntil }
