package bus

import (
	"testing"

	"cchunter/internal/trace"
)

func TestAccessUncontended(t *testing.T) {
	b := New(Config{AccessCycles: 60, LockCycles: 400}, nil)
	done, waited := b.Access(1000, 0)
	if done != 1060 || waited != 0 {
		t.Errorf("done=%d waited=%d", done, waited)
	}
	if b.BusyUntil() != 1060 {
		t.Errorf("busyUntil=%d", b.BusyUntil())
	}
}

func TestAccessSerializes(t *testing.T) {
	b := New(Config{AccessCycles: 60, LockCycles: 400}, nil)
	b.Access(0, 0)
	done, waited := b.Access(10, 1)
	if waited != 50 {
		t.Errorf("waited=%d, want 50", waited)
	}
	if done != 120 {
		t.Errorf("done=%d, want 120", done)
	}
}

func TestLockAccessHoldsBusAndEmitsEvent(t *testing.T) {
	rec := trace.NewRecorder()
	b := New(Config{AccessCycles: 60, LockCycles: 400}, rec)
	done, _ := b.LockAccess(100, 3)
	if done != 500 {
		t.Errorf("lock done=%d, want 500", done)
	}
	// A subsequent plain access must wait out the lock.
	_, waited := b.Access(150, 1)
	if waited != 350 {
		t.Errorf("access during lock waited=%d, want 350", waited)
	}
	if rec.Train().Len() != 1 {
		t.Fatalf("events=%d, want 1", rec.Train().Len())
	}
	e := rec.Train().At(0)
	if e.Kind != trace.KindBusLock || e.Actor != 3 || e.Cycle != 100 {
		t.Errorf("event=%+v", e)
	}
	if e.Victim != trace.NoContext {
		t.Errorf("bus lock should have no victim, got %d", e.Victim)
	}
}

func TestPlainAccessEmitsNoEvent(t *testing.T) {
	rec := trace.NewRecorder()
	b := New(Config{AccessCycles: 60, LockCycles: 400}, rec)
	b.Access(0, 0)
	if rec.Train().Len() != 0 {
		t.Error("plain access must not emit bus-lock events")
	}
}

func TestStats(t *testing.T) {
	b := New(Config{AccessCycles: 10, LockCycles: 100}, nil)
	b.Access(0, 0)     // busy until 10
	b.Access(0, 1)     // waits 10
	b.LockAccess(0, 0) // waits 20
	s := b.Stats()
	if s.Transfers != 2 || s.Locks != 1 {
		t.Errorf("counts: %+v", s)
	}
	if s.WaitedCycles != 10 || s.LockWaitCycles != 20 {
		t.Errorf("waits: %+v", s)
	}
}

func TestZeroConfigGetsDefaults(t *testing.T) {
	b := New(Config{}, nil)
	if b.Config().AccessCycles == 0 || b.Config().LockCycles == 0 {
		t.Error("defaults not applied")
	}
	if b.Config().LockCycles <= b.Config().AccessCycles {
		t.Error("a lock should occupy the bus longer than a plain access")
	}
}

// TestOperationSequences drives the bus through mixed access/lock
// sequences and checks completion and wait cycles at every step.
func TestOperationSequences(t *testing.T) {
	type op struct {
		lock       bool
		now        uint64
		ctx        uint8
		wantDone   uint64
		wantWaited uint64
	}
	cases := []struct {
		name string
		cfg  Config
		ops  []op
	}{
		{"back-to-back-accesses", Config{AccessCycles: 60, LockCycles: 400}, []op{
			{false, 0, 0, 60, 0},
			{false, 10, 1, 120, 50},
			{false, 120, 0, 180, 0},
		}},
		{"lock-stalls-access", Config{AccessCycles: 60, LockCycles: 400}, []op{
			{true, 100, 0, 500, 0},
			{false, 150, 1, 560, 350},
		}},
		{"access-stalls-lock", Config{AccessCycles: 60, LockCycles: 400}, []op{
			{false, 0, 1, 60, 0},
			{true, 10, 0, 460, 50},
		}},
		{"idle-gap-no-wait", Config{AccessCycles: 60, LockCycles: 400}, []op{
			{true, 0, 0, 400, 0},
			{false, 1000, 1, 1060, 0},
		}},
		{"lock-queue", Config{AccessCycles: 10, LockCycles: 100}, []op{
			{true, 0, 0, 100, 0},
			{true, 0, 1, 200, 100},
			{true, 0, 0, 300, 200},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := New(tc.cfg, nil)
			for i, o := range tc.ops {
				var done, waited uint64
				if o.lock {
					done, waited = b.LockAccess(o.now, o.ctx)
				} else {
					done, waited = b.Access(o.now, o.ctx)
				}
				if done != o.wantDone || waited != o.wantWaited {
					t.Errorf("op %d: done=%d waited=%d, want done=%d waited=%d",
						i, done, waited, o.wantDone, o.wantWaited)
				}
			}
		})
	}
}

// TestConfigDefaults checks each zero field falls back to the default
// independently — a partially specified config is valid input.
func TestConfigDefaults(t *testing.T) {
	def := DefaultConfig()
	cases := []struct {
		name                 string
		cfg                  Config
		wantAccess, wantLock uint64
	}{
		{"all-zero", Config{}, def.AccessCycles, def.LockCycles},
		{"access-only", Config{AccessCycles: 7}, 7, def.LockCycles},
		{"lock-only", Config{LockCycles: 9_999}, def.AccessCycles, 9_999},
		{"fully-specified", Config{AccessCycles: 3, LockCycles: 11}, 3, 11},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := New(tc.cfg, nil).Config()
			if got.AccessCycles != tc.wantAccess || got.LockCycles != tc.wantLock {
				t.Errorf("config = %+v, want access=%d lock=%d", got, tc.wantAccess, tc.wantLock)
			}
		})
	}
}

func TestContentionObservableLatencyDifference(t *testing.T) {
	// The spy's decoding premise: average access latency under a
	// storm of bus locks is clearly higher than on an idle bus.
	idle := New(DefaultConfig(), nil)
	var idleTotal uint64
	now := uint64(0)
	for i := 0; i < 100; i++ {
		done, _ := idle.Access(now, 1)
		idleTotal += done - now
		now = done + 1000 // spy paces its probes
	}

	stormy := New(DefaultConfig(), nil)
	now = 0
	var stormyTotal uint64
	for i := 0; i < 100; i++ {
		stormy.LockAccess(now, 0) // trojan locks just before the probe
		done, _ := stormy.Access(now+1, 1)
		stormyTotal += done - (now + 1)
		now = done + 1000
	}
	if stormyTotal <= idleTotal*3 {
		t.Errorf("contended latency %d not clearly above idle %d", stormyTotal, idleTotal)
	}
}
