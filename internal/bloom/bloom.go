// Package bloom implements the k-hash Bloom filters used by CC-Hunter's
// practical conflict-miss tracker (§V-A, Figure 9). Each cache
// "generation" owns one three-hash Bloom filter that remembers the tags
// of blocks replaced while that generation was live; a hit on an
// incoming tag means the block was recently evicted before the cache
// reached full capacity — i.e. a conflict miss.
package bloom

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrBadConfig is wrapped by every configuration validation error in
// this package.
var ErrBadConfig = errors.New("bloom: bad configuration")

// Filter is a standard Bloom filter with k independent hash functions
// derived from a 128-bit double hash. The zero value is not usable; use
// New.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes int
	added  int
}

// New returns a Bloom filter with nbits bits and k hash functions. The
// paper's tracker uses k=3 and 4×N bits for an N-block cache; both are
// choices of the caller. nbits is rounded up to a multiple of 64.
func New(nbits int, k int) (*Filter, error) {
	if nbits <= 0 {
		return nil, fmt.Errorf("%w: filter needs a positive number of bits, got %d", ErrBadConfig, nbits)
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: filter needs at least one hash function, got %d", ErrBadConfig, k)
	}
	words := (nbits + 63) / 64
	return &Filter{
		bits:   make([]uint64, words),
		nbits:  uint64(words * 64),
		hashes: k,
	}, nil
}

// MustNew is New for sizes known to be valid (internal wiring from
// already-validated configurations); it panics on error.
func MustNew(nbits int, k int) *Filter {
	f, err := New(nbits, k)
	if err != nil {
		panic(err)
	}
	return f
}

// mix64 is the splitmix64 finalizer; a cheap, well-distributed 64-bit
// mixer that stands in for the hardware hash trees of the real design.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// indexes derives the k bit positions for key via double hashing
// (Kirsch-Mitzenmacher): position_i = h1 + i*h2 mod nbits.
func (f *Filter) indexes(key uint64, out []uint64) []uint64 {
	h1 := mix64(key)
	h2 := mix64(key ^ 0x9e3779b97f4a7c15)
	h2 |= 1 // ensure odd so positions cycle through the table
	out = out[:0]
	for i := 0; i < f.hashes; i++ {
		out = append(out, (h1+uint64(i)*h2)%f.nbits)
	}
	return out
}

// AppendProbes fills dst (reusing its capacity, discarding its
// contents) with key's k bit positions and returns it. The positions
// depend only on the filter's geometry (bit count and
// hash count), so one probe set can be replayed against any filter of
// identical geometry via ContainsAt/AddAt — the practical conflict
// tracker hashes each incoming tag once and checks all four
// generation filters with the same positions.
func (f *Filter) AppendProbes(dst []uint64, key uint64) []uint64 {
	return f.indexes(key, dst)
}

// ContainsAt is Contains for positions precomputed with AppendProbes
// on a filter of the same geometry.
func (f *Filter) ContainsAt(positions []uint64) bool {
	for _, idx := range positions {
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// AddAt is Add for positions precomputed with AppendProbes on a
// filter of the same geometry.
func (f *Filter) AddAt(positions []uint64) {
	for _, idx := range positions {
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.added++
}

// Add inserts key into the filter.
func (f *Filter) Add(key uint64) {
	var buf [8]uint64
	for _, idx := range f.indexes(key, buf[:0]) {
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.added++
}

// Contains reports whether key may have been added. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(key uint64) bool {
	var buf [8]uint64
	for _, idx := range f.indexes(key, buf[:0]) {
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear flash-clears the filter, as the tracker does when a generation
// is discarded.
func (f *Filter) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.added = 0
}

// Added returns how many keys have been inserted since the last Clear.
func (f *Filter) Added() int { return f.added }

// Bits returns the configured size of the filter in bits.
func (f *Filter) Bits() int { return int(f.nbits) }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() int { return f.hashes }

// FillRatio returns the fraction of bits currently set, a cheap proxy
// for the false-positive rate.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.nbits)
}

// EstimatedFPR returns the classical Bloom false-positive estimate
// (1 - e^{-kn/m})^k for the current number of added keys.
func (f *Filter) EstimatedFPR() float64 {
	k := float64(f.hashes)
	n := float64(f.added)
	m := float64(f.nbits)
	inner := 1 - expNeg(k*n/m)
	fpr := 1.0
	for i := 0; i < f.hashes; i++ {
		fpr *= inner
	}
	return fpr
}

// expNeg computes e^{-x} with a short series/squaring scheme to avoid
// importing math in this tiny package. Accuracy of ~1e-9 is far beyond
// what an FPR estimate needs.
func expNeg(x float64) float64 {
	if x < 0 {
		return 1 / expNeg(-x)
	}
	// Argument reduction: e^-x = (e^-x/2^k)^(2^k).
	k := 0
	for x > 0.5 {
		x /= 2
		k++
	}
	// Taylor series for e^-x, x in [0, 0.5].
	term := 1.0
	sum := 1.0
	for i := 1; i < 16; i++ {
		term *= -x / float64(i)
		sum += term
	}
	for i := 0; i < k; i++ {
		sum *= sum
	}
	return sum
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// String describes the filter configuration and fill state.
func (f *Filter) String() string {
	return fmt.Sprintf("bloom.Filter{bits=%d k=%d added=%d fill=%.3f}",
		f.nbits, f.hashes, f.added, f.FillRatio())
}

// AnyContainsAt probes a bank of same-geometry filters with one
// precomputed position set (see AppendProbes) and reports whether any
// filter contains all positions — the generational conflict tracker's
// "was this tag evicted in any live generation?" test, fused so the
// tag is hashed once and the filters are swept in one pass. The sweep
// keeps a candidate bitmask over the filters (banks are small: the
// tracker has four generations) and tests each probe position against
// every still-candidate filter, unrolled four-wide across the bank;
// most misses clear the whole mask on the first position and exit
// after a handful of word loads. Equivalent to calling ContainsAt on
// each filter in turn.
func AnyContainsAt(filters []*Filter, positions []uint64) bool {
	if len(filters) > 64 {
		panic("bloom: probe bank wider than 64 filters")
	}
	alive := uint64(1)<<uint(len(filters)) - 1
	for _, idx := range positions {
		word, bit := idx/64, uint64(1)<<(idx%64)
		mask := alive
		// Unrolled four-wide over the bank's still-alive filters.
		for mask != 0 {
			i0 := bits.TrailingZeros64(mask)
			mask &= mask - 1
			if filters[i0].bits[word]&bit == 0 {
				alive &^= 1 << uint(i0)
			}
			if mask == 0 {
				break
			}
			i1 := bits.TrailingZeros64(mask)
			mask &= mask - 1
			if filters[i1].bits[word]&bit == 0 {
				alive &^= 1 << uint(i1)
			}
			if mask == 0 {
				break
			}
			i2 := bits.TrailingZeros64(mask)
			mask &= mask - 1
			if filters[i2].bits[word]&bit == 0 {
				alive &^= 1 << uint(i2)
			}
			if mask == 0 {
				break
			}
			i3 := bits.TrailingZeros64(mask)
			mask &= mask - 1
			if filters[i3].bits[word]&bit == 0 {
				alive &^= 1 << uint(i3)
			}
		}
		if alive == 0 {
			return false
		}
	}
	return true
}
