package bloom

import "testing"

// TestAnyContainsAtMatchesPerFilter pins the fused probe bank against
// the per-filter reference: for random keys across partially filled
// same-geometry filters, AnyContainsAt equals "any ContainsAt".
func TestAnyContainsAtMatchesPerFilter(t *testing.T) {
	filters := make([]*Filter, 4)
	for i := range filters {
		filters[i] = MustNew(1024, 3)
	}
	// Populate each filter with a distinct key stripe.
	for k := uint64(0); k < 200; k++ {
		filters[k%4].Add(k * 2654435761)
	}
	probes := make([]uint64, 0, 8)
	mismatches := 0
	for k := uint64(0); k < 2000; k++ {
		key := k * 1099511628211
		probes = filters[0].AppendProbes(probes, key)
		want := false
		for _, f := range filters {
			if f.ContainsAt(probes) {
				want = true
				break
			}
		}
		if got := AnyContainsAt(filters, probes); got != want {
			mismatches++
			t.Errorf("key %d: AnyContainsAt = %v, per-filter = %v", key, got, want)
			if mismatches > 5 {
				t.Fatal("too many mismatches")
			}
		}
	}
	// Degenerate banks.
	probes = filters[0].AppendProbes(probes, 12345)
	if AnyContainsAt(nil, probes) {
		t.Error("empty bank should never contain")
	}
	// k = 4 striped into filters[0] above.
	if !AnyContainsAt(filters[:1], filters[0].AppendProbes(probes, 4*2654435761)) {
		t.Error("single-filter bank missed a present key")
	}
}
