package bloom

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"cchunter/internal/stats"
)

func TestNoFalseNegatives(t *testing.T) {
	f := MustNew(4096, 3)
	r := stats.NewRNG(1)
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = r.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for key %x", k)
		}
	}
	if f.Added() != 200 {
		t.Errorf("Added = %d, want 200", f.Added())
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	fn := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		f := MustNew(64+r.Intn(2048), 1+r.Intn(4))
		n := r.Intn(100)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = r.Uint64()
			f.Add(keys[i])
		}
		for _, k := range keys {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	// 4 bits per key with k=3: classical FPR ~14.7%. Verify empirical
	// FPR is in the right ballpark and the estimator is close to it.
	f := MustNew(4096, 3)
	r := stats.NewRNG(2)
	for i := 0; i < 1024; i++ {
		f.Add(r.Uint64())
	}
	fp := 0
	trials := 20000
	for i := 0; i < trials; i++ {
		if f.Contains(r.Uint64()) {
			fp++
		}
	}
	got := float64(fp) / float64(trials)
	if got > 0.25 {
		t.Errorf("empirical FPR %.3f too high for 4 bits/key", got)
	}
	est := f.EstimatedFPR()
	if math.Abs(got-est) > 0.08 {
		t.Errorf("estimator %.3f far from empirical %.3f", est, got)
	}
}

func TestClear(t *testing.T) {
	f := MustNew(256, 3)
	f.Add(42)
	f.Clear()
	if f.Added() != 0 {
		t.Errorf("Added after Clear = %d", f.Added())
	}
	if f.FillRatio() != 0 {
		t.Errorf("FillRatio after Clear = %v", f.FillRatio())
	}
	// A cleared filter behaves like a fresh one (42 very likely absent;
	// with 3 hashes over 256 zeroed bits it is guaranteed absent).
	if f.Contains(42) {
		t.Error("cleared filter still contains key")
	}
}

func TestSizeRounding(t *testing.T) {
	f := MustNew(65, 2)
	if f.Bits() != 128 {
		t.Errorf("Bits = %d, want 128 (rounded up to word)", f.Bits())
	}
	if f.Hashes() != 2 {
		t.Errorf("Hashes = %d", f.Hashes())
	}
}

func TestConstructorErrors(t *testing.T) {
	for name, fn := range map[string]func() (*Filter, error){
		"zero bits":   func() (*Filter, error) { return New(0, 3) },
		"zero hashes": func() (*Filter, error) { return New(64, 0) },
	} {
		f, err := fn()
		if err == nil || f != nil {
			t.Errorf("%s: expected error, got %v", name, f)
			continue
		}
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: error %v does not wrap ErrBadConfig", name, err)
		}
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, 3)
}

func TestExpNeg(t *testing.T) {
	for _, x := range []float64{0, 0.1, 0.5, 1, 3, 10} {
		want := math.Exp(-x)
		if got := expNeg(x); math.Abs(got-want) > 1e-6 {
			t.Errorf("expNeg(%v) = %v, want %v", x, got, want)
		}
	}
	if got := expNeg(-1); math.Abs(got-math.E) > 1e-6 {
		t.Errorf("expNeg(-1) = %v, want e", got)
	}
}

func TestFillRatioMonotone(t *testing.T) {
	f := MustNew(1024, 3)
	r := stats.NewRNG(3)
	prev := 0.0
	for i := 0; i < 100; i++ {
		f.Add(r.Uint64())
		fr := f.FillRatio()
		if fr < prev {
			t.Fatal("fill ratio decreased after Add")
		}
		prev = fr
	}
	if prev <= 0 || prev > 1 {
		t.Errorf("final fill ratio %v out of range", prev)
	}
}

func TestString(t *testing.T) {
	f := MustNew(128, 3)
	f.Add(1)
	if s := f.String(); s == "" {
		t.Error("String empty")
	}
}
