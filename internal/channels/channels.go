// Package channels implements the three realistic covert timing
// channels the paper evaluates CC-Hunter against (§IV):
//
//   - a memory bus channel after Wu et al. [9]: the trojan signals '1'
//     by issuing atomic unaligned accesses that lock the bus, and the
//     spy decodes from its memory access latencies;
//   - an integer divider channel after Wang & Lee [7]: trojan and spy
//     run as hyperthreads of one core; the trojan saturates the
//     divider for '1' and the spy times division loops;
//   - a shared-cache channel after Xu et al. [10]: the trojan replaces
//     the blocks of one of two dynamically chosen cache-set groups
//     (G1 for '1', G0 for '0') and the spy compares its probe
//     latencies over the two groups.
//
// Each channel is a (Trojan, Spy) pair of sim.Programs synchronized by
// bit slots derived from the configured bandwidth, as real
// implementations synchronize on wall-clock slots.
package channels

import (
	"cchunter/internal/sim"
	"cchunter/internal/stats"
)

// Protocol is the part of a channel configuration the trojan and spy
// agree on beforehand (the covert channel's synchronization phase).
type Protocol struct {
	// Message is the bit sequence to transmit (e.g. a 64-bit credit
	// card number).
	Message []int
	// BPS is the channel bandwidth in bits per second; each bit
	// occupies ClockHz/BPS cycles.
	BPS float64
	// Start is the absolute cycle of the first bit slot.
	Start uint64
	// Repeat loops the message until the simulation stops.
	Repeat bool
	// Seed parameterizes dynamic choices (e.g. which cache sets carry
	// the cache channel).
	Seed uint64
	// Evader parameterizes the adaptive sender sweeping against the
	// auditor; the zero value transmits exactly as before.
	Evader Evader
}

// Evader is the adaptive-sender parameterization (after "Towards a
// Better Indicator for Cache Timing Channels"): senders that modulate
// their period and amplitude to slide under recurrence detectors.
// Trojan and spy share the Protocol, so both derive identical slot
// offsets and pacing — evasion costs detection confidence, not (much)
// channel fidelity.
type Evader struct {
	// JitterFrac shifts every bit slot's active phase by a
	// seed-and-slot-keyed pseudorandom offset of up to this fraction
	// of the slot, breaking the train's strict periodicity. Must be
	// in [0, 0.5]; 0 disables jitter.
	JitterFrac float64
	// DutyFrac is the amplitude duty cycle in (0, 1]: the sender thins
	// its contention to this fraction of its natural event rate
	// (inflated intra-burst spacing, skipped priming rounds), draining
	// the per-Δt densities the burst detector feeds on. 0 or 1 means
	// full amplitude.
	DutyFrac float64
}

// active reports whether the evader changes anything.
func (e Evader) active() bool {
	return e.JitterFrac > 0 || (e.DutyFrac > 0 && e.DutyFrac < 1)
}

// validate panics on out-of-range evader parameters.
func (e Evader) validate() {
	if e.JitterFrac < 0 || e.JitterFrac > 0.5 {
		panic("channels: JitterFrac must be in [0, 0.5]")
	}
	if e.DutyFrac < 0 || e.DutyFrac > 1 {
		panic("channels: DutyFrac must be in [0, 1]")
	}
}

// hash64 is SplitMix64's finalizer — the keyed draw behind the
// evader's per-slot choices. Pure arithmetic: no allocation, no state.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// slotJitter returns the evader's phase offset for global slot i, in
// [0, JitterFrac×slot). Both ends of the channel call it with the same
// protocol, so the shifted slots stay aligned.
func (p Protocol) slotJitter(i int, slot uint64) uint64 {
	f := p.Evader.JitterFrac
	if f <= 0 {
		return 0
	}
	span := uint64(f * float64(slot))
	if span == 0 {
		return 0
	}
	return hash64(p.Seed^uint64(i)*0x9e3779b97f4a7c15) % span
}

// dutyGap returns the idle stretch the sender inserts after an op of
// the given latency so its event rate scales by DutyFrac: at duty d,
// rate×d means a gap of latency×(1-d)/d.
func (p Protocol) dutyGap(latency uint64) uint64 {
	d := p.Evader.DutyFrac
	if d <= 0 || d >= 1 {
		return 0
	}
	return uint64(float64(latency) * (1 - d) / d)
}

// dutySpacing inflates a fixed intra-burst event spacing by
// 1/DutyFrac, thinning the event rate to the duty cycle.
func (p Protocol) dutySpacing(spacing uint64) uint64 {
	d := p.Evader.DutyFrac
	if d <= 0 || d >= 1 {
		return spacing
	}
	return uint64(float64(spacing) / d)
}

// dutySkip reports whether the evader drops sub-unit n of slot i (a
// priming round, a probe): at duty d a pseudorandom (1-d) share of
// them is skipped, keyed so the pattern never repeats across slots.
func (p Protocol) dutySkip(i, n int) bool {
	d := p.Evader.DutyFrac
	if d <= 0 || d >= 1 {
		return false
	}
	x := hash64(p.Seed ^ uint64(i)<<32 ^ uint64(n))
	return float64(x>>11)/(1<<53) >= d
}

// validate panics on unusable protocol parameters: channel
// configurations are experiment code, not user input.
func (p Protocol) validate() {
	if len(p.Message) == 0 {
		panic("channels: empty message")
	}
	if p.BPS <= 0 {
		panic("channels: bandwidth must be positive")
	}
	for _, b := range p.Message {
		if b != 0 && b != 1 {
			panic("channels: message bits must be 0 or 1")
		}
	}
	p.Evader.validate()
}

// slotCycles returns the bit-slot length for the machine geometry.
func (p Protocol) slotCycles(geo sim.Geometry) uint64 {
	return uint64(float64(geo.ClockHz) / p.BPS)
}

// bitAt returns the bit transmitted in global slot index i.
func (p Protocol) bitAt(i int) (bit int, done bool) {
	if i < len(p.Message) {
		return p.Message[i], false
	}
	if !p.Repeat {
		return 0, true
	}
	return p.Message[i%len(p.Message)], false
}

// RandomMessage generates an n-bit random message — the experiments'
// stand-in for the paper's "randomly-chosen 64-bit credit card
// number".
func RandomMessage(n int, seed uint64) []int {
	return stats.NewRNG(seed).Bits(n)
}

// BitErrors counts positions where decoded differs from sent,
// comparing up to the shorter length and counting missing bits as
// errors.
func BitErrors(sent, decoded []int) int {
	errs := 0
	n := len(sent)
	if len(decoded) < n {
		errs += n - len(decoded)
		n = len(decoded)
	}
	for i := 0; i < n; i++ {
		if sent[i] != decoded[i] {
			errs++
		}
	}
	return errs
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
