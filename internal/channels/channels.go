// Package channels implements the three realistic covert timing
// channels the paper evaluates CC-Hunter against (§IV):
//
//   - a memory bus channel after Wu et al. [9]: the trojan signals '1'
//     by issuing atomic unaligned accesses that lock the bus, and the
//     spy decodes from its memory access latencies;
//   - an integer divider channel after Wang & Lee [7]: trojan and spy
//     run as hyperthreads of one core; the trojan saturates the
//     divider for '1' and the spy times division loops;
//   - a shared-cache channel after Xu et al. [10]: the trojan replaces
//     the blocks of one of two dynamically chosen cache-set groups
//     (G1 for '1', G0 for '0') and the spy compares its probe
//     latencies over the two groups.
//
// Each channel is a (Trojan, Spy) pair of sim.Programs synchronized by
// bit slots derived from the configured bandwidth, as real
// implementations synchronize on wall-clock slots.
package channels

import (
	"cchunter/internal/sim"
	"cchunter/internal/stats"
)

// Protocol is the part of a channel configuration the trojan and spy
// agree on beforehand (the covert channel's synchronization phase).
type Protocol struct {
	// Message is the bit sequence to transmit (e.g. a 64-bit credit
	// card number).
	Message []int
	// BPS is the channel bandwidth in bits per second; each bit
	// occupies ClockHz/BPS cycles.
	BPS float64
	// Start is the absolute cycle of the first bit slot.
	Start uint64
	// Repeat loops the message until the simulation stops.
	Repeat bool
	// Seed parameterizes dynamic choices (e.g. which cache sets carry
	// the cache channel).
	Seed uint64
}

// validate panics on unusable protocol parameters: channel
// configurations are experiment code, not user input.
func (p Protocol) validate() {
	if len(p.Message) == 0 {
		panic("channels: empty message")
	}
	if p.BPS <= 0 {
		panic("channels: bandwidth must be positive")
	}
	for _, b := range p.Message {
		if b != 0 && b != 1 {
			panic("channels: message bits must be 0 or 1")
		}
	}
}

// slotCycles returns the bit-slot length for the machine geometry.
func (p Protocol) slotCycles(geo sim.Geometry) uint64 {
	return uint64(float64(geo.ClockHz) / p.BPS)
}

// bitAt returns the bit transmitted in global slot index i.
func (p Protocol) bitAt(i int) (bit int, done bool) {
	if i < len(p.Message) {
		return p.Message[i], false
	}
	if !p.Repeat {
		return 0, true
	}
	return p.Message[i%len(p.Message)], false
}

// RandomMessage generates an n-bit random message — the experiments'
// stand-in for the paper's "randomly-chosen 64-bit credit card
// number".
func RandomMessage(n int, seed uint64) []int {
	return stats.NewRNG(seed).Bits(n)
}

// BitErrors counts positions where decoded differs from sent,
// comparing up to the shorter length and counting missing bits as
// errors.
func BitErrors(sent, decoded []int) int {
	errs := 0
	n := len(sent)
	if len(decoded) < n {
		errs += n - len(decoded)
		n = len(decoded)
	}
	for i := 0; i < n; i++ {
		if sent[i] != decoded[i] {
			errs++
		}
	}
	return errs
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
