package channels

import "cchunter/internal/sim"

// RingConfig configures the ring-interconnect covert channel (after
// the lord-of-the-ring cross-core attacks). Trojan and spy run on
// *different cores* whose ring paths to a common LLC slice overlap:
// with the default four-stop ring the trojan on core 0 and the spy on
// core 1 both route clockwise to the slice two stops from the trojan,
// sharing the spy-side segment.
type RingConfig struct {
	Protocol
	// LinesPerSide is each endpoint's working-set size in cache lines.
	// All lines map to one L1 set (more lines than L1 ways, so every
	// access misses L1 and transits the ring) and to per-line L2 sets
	// (so after warm-up every access is an L2 hit with a fixed,
	// deterministic latency).
	LinesPerSide int
	// MaxBurstCycles caps the per-bit active phase.
	MaxBurstCycles uint64
	// SlowFracDen is the spy's decision denominator: a slot decodes as
	// '1' when more than 1/SlowFracDen of its samples were slower than
	// the calibrated uncontended baseline.
	SlowFracDen int
}

// DefaultRingConfig returns a ring channel carrying message bits at
// bps bits per second.
func DefaultRingConfig(message []int, bps float64) RingConfig {
	return RingConfig{
		Protocol:       Protocol{Message: message, BPS: bps, Start: 0, Seed: 1},
		LinesPerSide:   16,
		MaxBurstCycles: 500_000,
		SlowFracDen:    8,
	}
}

// ringLineIndex maps working-set slot j of a program to a private line
// index that (a) keeps every line in one L1 set — the low L1-set bits
// are the constant `slice` — and (b) lands on ring slice `slice`, for
// any power-of-two L1 set count that is a multiple of the stop count.
func ringLineIndex(j, l1Sets, slice int) uint64 {
	return uint64(j*l1Sets + slice)
}

// ringTargetSlice picks the contended slice: the stop diametrically
// across from the trojan's core-0 stop, so the trojan's clockwise path
// covers the spy's (core 1) single clockwise hop into the slice.
func ringTargetSlice(stops int) int {
	return stops / 2
}

// RingTrojan transmits by hammering loads across the ring into the
// shared slice during '1' slots, occupying the ring segments the spy's
// probes must cross. It is a sim.Stepper.
type RingTrojan struct {
	cfg RingConfig

	m     *sim.Machine
	addrs []uint64 // working-set addresses, precomputed at Begin
	slot  uint64
	burst uint64
	slice int
	i     int    // slot index
	bit   int    // bit for the current slot
	j     int    // working-set cursor
	start uint64 // current slot start cycle
	now   uint64 // last observed clock
	pc    int
}

// RingTrojan states.
const (
	rtSlot     = iota // decode next bit, wait for its slot
	rtGate            // skip '0' slots after the slot wait
	rtLoop            // burst-bound check
	rtLoad            // one load through the ring
	rtLoadDone        // record the clock, pace the evader's duty gap
	rtGapDone         // return from the duty-cycle idle gap
)

// NewRingTrojan builds the transmitter.
func NewRingTrojan(cfg RingConfig) *RingTrojan {
	cfg.Protocol.validate()
	if cfg.LinesPerSide <= 0 || cfg.MaxBurstCycles == 0 {
		panic("channels: ring trojan needs LinesPerSide and MaxBurstCycles")
	}
	return &RingTrojan{cfg: cfg}
}

// Name implements sim.Program.
func (t *RingTrojan) Name() string { return "ring-trojan" }

// Run implements sim.Program via the goroutine reference driver.
func (t *RingTrojan) Run(m *sim.Machine) { sim.RunSteps(t, m) }

// Begin implements sim.Stepper.
func (t *RingTrojan) Begin(m *sim.Machine) {
	geo := m.Geometry()
	if geo.RingStops <= 0 {
		panic("channels: ring channel needs the ring interconnect enabled")
	}
	t.m = m
	t.slot = t.cfg.slotCycles(geo)
	t.burst = minU64(t.slot, t.cfg.MaxBurstCycles)
	t.slice = ringTargetSlice(geo.RingStops)
	t.addrs = ringWorkingSet(m, geo.L1Sets, t.slice, t.cfg.LinesPerSide)
	t.pc = rtSlot
}

// ringWorkingSet precomputes the endpoint's probe addresses once at
// Begin, so the per-load addr step is a table read instead of a
// geometry fetch plus address arithmetic.
func ringWorkingSet(m *sim.Machine, l1Sets, slice, lines int) []uint64 {
	addrs := make([]uint64, lines)
	for j := range addrs {
		addrs[j] = m.PrivateAddr(ringLineIndex(j, l1Sets, slice))
	}
	return addrs
}

// addr returns the next working-set address, cycling the set so every
// load misses L1 and transits the ring.
func (t *RingTrojan) addr() uint64 {
	a := t.addrs[t.j]
	t.j++
	if t.j == len(t.addrs) {
		t.j = 0
	}
	return a
}

// Step implements sim.Stepper.
func (t *RingTrojan) Step(prev sim.OpResult) (sim.Op, bool) {
	for {
		switch t.pc {
		case rtSlot:
			bit, done := t.cfg.bitAt(t.i)
			if done {
				return sim.Op{}, false
			}
			t.bit = bit
			t.start = t.cfg.Start + uint64(t.i)*t.slot + t.cfg.slotJitter(t.i, t.slot)
			t.pc = rtGate
			return sim.Op{Kind: sim.OpWaitUntil, Cycles: t.start}, true

		case rtGate:
			t.now = prev.Now
			if t.bit == 0 {
				t.i++
				t.pc = rtSlot // quiet ring signals '0'
				continue
			}
			t.pc = rtLoop

		case rtLoop:
			if t.now < t.start+t.burst {
				t.pc = rtLoad
				continue
			}
			t.i++
			t.pc = rtSlot

		case rtLoad:
			t.pc = rtLoadDone
			return sim.Op{Kind: sim.OpLoad, Addr: t.addr()}, true

		case rtLoadDone:
			t.now = prev.Now
			if gap := t.cfg.dutyGap(prev.Latency); gap > 0 {
				t.pc = rtGapDone
				return sim.Op{Kind: sim.OpWaitUntil, Cycles: t.now + gap}, true
			}
			t.pc = rtLoop

		case rtGapDone:
			t.now = prev.Now
			t.pc = rtLoop
		}
	}
}

// RingSpy decodes by timing its own ring transits into the shared
// slice: a probe that waits on a segment the trojan occupies comes
// back slower than the calibrated uncontended baseline. It is a
// sim.Stepper.
type RingSpy struct {
	cfg     RingConfig
	decoded []int
	// perBitSlowFrac is the fraction of each slot's probes that ran
	// slower than baseline — the channel's per-bit observable.
	perBitSlowFrac []float64

	m       *sim.Machine
	addrs   []uint64 // working-set addresses, precomputed at Begin
	slot    uint64
	burst   uint64
	slice   int
	base    uint64 // calibrated uncontended probe latency
	i       int    // slot index
	j       int    // working-set cursor
	w       int    // warm-up pass cursor
	start   uint64 // current slot start cycle
	now     uint64 // last observed clock
	samples uint64 // probes this slot
	slow    uint64 // probes slower than base this slot
	pc      int
}

// RingSpy states.
const (
	rsWarm     = iota // touch the working set twice, calibrate base
	rsWarmDone        // record a warm-pass probe's latency
	rsSlot            // decode slot bounds, wait for the slot
	rsGate            // reset the slot's accumulators
	rsLoop            // burst-bound check / close out the bit
	rsLoadDone        // classify one probe's latency
)

// NewRingSpy builds the receiver.
func NewRingSpy(cfg RingConfig) *RingSpy {
	cfg.Protocol.validate()
	if cfg.LinesPerSide <= 0 || cfg.MaxBurstCycles == 0 || cfg.SlowFracDen <= 0 {
		panic("channels: ring spy needs LinesPerSide, MaxBurstCycles, and SlowFracDen")
	}
	return &RingSpy{cfg: cfg}
}

// Name implements sim.Program.
func (s *RingSpy) Name() string { return "ring-spy" }

// Run implements sim.Program via the goroutine reference driver.
func (s *RingSpy) Run(m *sim.Machine) { sim.RunSteps(s, m) }

// Begin implements sim.Stepper.
func (s *RingSpy) Begin(m *sim.Machine) {
	geo := m.Geometry()
	if geo.RingStops <= 0 {
		panic("channels: ring channel needs the ring interconnect enabled")
	}
	s.m = m
	s.slot = s.cfg.slotCycles(geo)
	s.burst = minU64(s.slot, s.cfg.MaxBurstCycles)
	s.slice = ringTargetSlice(geo.RingStops)
	s.addrs = ringWorkingSet(m, geo.L1Sets, s.slice, s.cfg.LinesPerSide)
	s.pc = rsWarm
}

func (s *RingSpy) addr() uint64 {
	a := s.addrs[s.j]
	s.j++
	if s.j == len(s.addrs) {
		s.j = 0
	}
	return a
}

// Step implements sim.Stepper.
func (s *RingSpy) Step(prev sim.OpResult) (sim.Op, bool) {
	for {
		switch s.pc {
		case rsWarm:
			// Two passes over the working set before the first slot: the
			// first fills the L2, the second calibrates the uncontended
			// baseline. The minimum second-pass latency wins — contention
			// only ever adds wait cycles, so the floor is the uncontended
			// L2-resident transit even if the trojan is already active.
			if s.w < 2*s.cfg.LinesPerSide {
				s.w++
				s.pc = rsWarmDone
				return sim.Op{Kind: sim.OpLoad, Addr: s.addr()}, true
			}
			s.pc = rsSlot

		case rsWarmDone:
			if s.w > s.cfg.LinesPerSide { // second pass: L2-resident
				if s.base == 0 || prev.Latency < s.base {
					s.base = prev.Latency
				}
			}
			s.pc = rsWarm

		case rsSlot:
			if _, done := s.cfg.bitAt(s.i); done {
				return sim.Op{}, false
			}
			s.start = s.cfg.Start + uint64(s.i)*s.slot + s.cfg.slotJitter(s.i, s.slot)
			s.pc = rsGate
			return sim.Op{Kind: sim.OpWaitUntil, Cycles: s.start}, true

		case rsGate:
			s.now = prev.Now
			s.samples, s.slow = 0, 0
			s.pc = rsLoop

		case rsLoop:
			if s.now < s.start+s.burst {
				s.pc = rsLoadDone
				return sim.Op{Kind: sim.OpLoad, Addr: s.addr()}, true
			}
			s.perBitSlowFrac = append(s.perBitSlowFrac, float64(s.slow)/float64(s.samples))
			// Both ends know the evader's duty cycle, so the spy scales
			// its decision threshold with it: a thinned '1' still clears
			// the (equally thinned) bar.
			thresh := s.samples
			if d := s.cfg.Evader.DutyFrac; d > 0 && d < 1 {
				thresh = uint64(float64(s.samples) * d)
			}
			if s.slow*uint64(s.cfg.SlowFracDen) > thresh {
				s.decoded = append(s.decoded, 1)
			} else {
				s.decoded = append(s.decoded, 0)
			}
			s.i++
			s.pc = rsSlot

		case rsLoadDone:
			s.now = prev.Now
			s.samples++
			if prev.Latency > s.base {
				s.slow++
			}
			s.pc = rsLoop
		}
	}
}

// Decoded returns the bits the spy inferred so far.
func (s *RingSpy) Decoded() []int { return s.decoded }

// PerBitSlowFrac returns the fraction of probes per bit slot that ran
// slower than the calibrated baseline.
func (s *RingSpy) PerBitSlowFrac() []float64 { return s.perBitSlowFrac }
