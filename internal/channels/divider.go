package channels

import "cchunter/internal/sim"

// DivConfig configures the integer divider covert channel. Trojan and
// spy must be pinned onto the two hyperthreads of one core: the
// divider bank is per-core.
type DivConfig struct {
	Protocol
	// MaxBurstCycles caps the contention burst within a bit slot.
	MaxBurstCycles uint64
	// OpsPerSample is the constant number of divisions in each of the
	// spy's timed loop iterations (§IV-A: "executing loop iterations
	// with a constant number of integer division operations and
	// timing them"). The spy iterates continuously through the burst.
	OpsPerSample int
	// DecisionLatency is the spy's per-iteration threshold separating
	// contended from uncontended divider state, in cycles.
	DecisionLatency uint64
}

// DefaultDivConfig returns a paper-shaped divider channel: with the
// default 5-cycle divider, saturating trojan and spy threads put
// ~90-100 cross-context wait events into each Δt = 500-cycle window,
// Figure 6b's burst bins.
func DefaultDivConfig(message []int, bps float64) DivConfig {
	return DivConfig{
		Protocol:        Protocol{Message: message, BPS: bps, Start: 0, Seed: 1},
		MaxBurstCycles:  50_000,
		OpsPerSample:    20,
		DecisionLatency: 150,
	}
}

// DivTrojan transmits by saturating the core's division units. It is
// a sim.Stepper with the exact op order of the original blocking loop.
type DivTrojan struct {
	cfg DivConfig

	slot   uint64
	burst  uint64
	i      int    // slot index
	bit    int    // bit for the current slot
	start  uint64 // current slot start cycle
	now    uint64 // last observed clock
	divLat uint64 // latency of the last division (evader pacing)
	pc     int
}

// DivTrojan states.
const (
	dtSlot    = iota // decode next bit, wait for its slot
	dtGate           // skip '0' slots after the slot wait
	dtLoop           // burst-bound check
	dtDiv            // one division (followed by a clock read)
	dtNow            // issue the clock read
	dtNowDone        // record the clock read
	dtGapDone        // return from the evader's duty-cycle idle gap
)

// NewDivTrojan builds the transmitter.
func NewDivTrojan(cfg DivConfig) *DivTrojan {
	cfg.Protocol.validate()
	if cfg.MaxBurstCycles == 0 {
		panic("channels: div trojan needs MaxBurstCycles")
	}
	return &DivTrojan{cfg: cfg}
}

// Name implements sim.Program.
func (t *DivTrojan) Name() string { return "div-trojan" }

// Run implements sim.Program via the goroutine reference driver.
func (t *DivTrojan) Run(m *sim.Machine) { sim.RunSteps(t, m) }

// Begin implements sim.Stepper.
func (t *DivTrojan) Begin(m *sim.Machine) {
	geo := m.Geometry()
	t.slot = t.cfg.slotCycles(geo)
	t.burst = minU64(t.slot, t.cfg.MaxBurstCycles)
	t.pc = dtSlot
}

// Step implements sim.Stepper.
func (t *DivTrojan) Step(prev sim.OpResult) (sim.Op, bool) {
	for {
		switch t.pc {
		case dtSlot:
			bit, done := t.cfg.bitAt(t.i)
			if done {
				return sim.Op{}, false
			}
			t.bit = bit
			t.start = t.cfg.Start + uint64(t.i)*t.slot + t.cfg.slotJitter(t.i, t.slot)
			t.pc = dtGate
			return sim.Op{Kind: sim.OpWaitUntil, Cycles: t.start}, true

		case dtGate:
			t.now = prev.Now
			if t.bit == 0 {
				t.i++
				t.pc = dtSlot // empty loop: division units stay un-contended
				continue
			}
			t.pc = dtLoop

		case dtLoop:
			// Individual (unbatched) divisions so the two hyperthreads'
			// instructions interleave cycle by cycle, as on real SMT.
			if t.now < t.start+t.burst {
				t.pc = dtDiv
				continue
			}
			t.i++
			t.pc = dtSlot

		case dtDiv:
			t.pc = dtNow
			return sim.Op{Kind: sim.OpDiv}, true

		case dtNow:
			t.divLat = prev.Latency
			t.pc = dtNowDone
			return sim.Op{Kind: sim.OpNow}, true

		case dtNowDone:
			t.now = prev.Now
			if gap := t.cfg.dutyGap(t.divLat); gap > 0 {
				// Amplitude duty cycle: idle after each division so the
				// contention rate scales to DutyFrac.
				t.pc = dtGapDone
				return sim.Op{Kind: sim.OpWaitUntil, Cycles: t.now + gap}, true
			}
			t.pc = dtLoop

		case dtGapDone:
			t.now = prev.Now
			t.pc = dtLoop
		}
	}
}

// DivSpy decodes by timing constant-length division loops. It is a
// sim.Stepper with the exact op order of the original blocking loop.
type DivSpy struct {
	cfg     DivConfig
	decoded []int
	// perBitLatency is the spy's average loop latency per bit — the
	// Figure 3 series.
	perBitLatency []float64

	slot  uint64
	burst uint64
	i     int    // slot index
	j     int    // division index within the sample
	start uint64 // current slot start cycle
	now   uint64 // last observed clock
	t0    uint64 // sample start clock
	total uint64 // accumulated sample latency
	iters uint64 // samples taken this slot
	pc    int
}

// DivSpy states.
const (
	dsSlot    = iota // decode slot bounds, wait for the slot
	dsGate           // initialize the slot's accumulators
	dsLoop           // burst-bound check / close out the bit
	dsDiv            // the OpsPerSample division loop
	dsNow            // issue the sample's closing clock read
	dsNowDone        // record the sample latency
)

// NewDivSpy builds the receiver.
func NewDivSpy(cfg DivConfig) *DivSpy {
	cfg.Protocol.validate()
	if cfg.OpsPerSample <= 0 || cfg.MaxBurstCycles == 0 {
		panic("channels: div spy needs OpsPerSample and MaxBurstCycles")
	}
	return &DivSpy{cfg: cfg}
}

// Name implements sim.Program.
func (s *DivSpy) Name() string { return "div-spy" }

// Run implements sim.Program via the goroutine reference driver.
func (s *DivSpy) Run(m *sim.Machine) { sim.RunSteps(s, m) }

// Begin implements sim.Stepper.
func (s *DivSpy) Begin(m *sim.Machine) {
	geo := m.Geometry()
	s.slot = s.cfg.slotCycles(geo)
	s.burst = minU64(s.slot, s.cfg.MaxBurstCycles)
	s.pc = dsSlot
}

// Step implements sim.Stepper.
func (s *DivSpy) Step(prev sim.OpResult) (sim.Op, bool) {
	for {
		switch s.pc {
		case dsSlot:
			if _, done := s.cfg.bitAt(s.i); done {
				return sim.Op{}, false
			}
			s.start = s.cfg.Start + uint64(s.i)*s.slot + s.cfg.slotJitter(s.i, s.slot)
			s.pc = dsGate
			return sim.Op{Kind: sim.OpWaitUntil, Cycles: s.start}, true

		case dsGate:
			s.now = prev.Now
			s.total, s.iters = 0, 0
			s.pc = dsLoop

		case dsLoop:
			if s.now < s.start+s.burst {
				s.t0 = s.now
				s.j = 0
				s.pc = dsDiv
				continue
			}
			avg := s.total / s.iters
			s.perBitLatency = append(s.perBitLatency, float64(avg))
			if avg > s.cfg.DecisionLatency {
				s.decoded = append(s.decoded, 1)
			} else {
				s.decoded = append(s.decoded, 0)
			}
			s.i++
			s.pc = dsSlot

		case dsDiv:
			if s.j < s.cfg.OpsPerSample {
				s.j++
				return sim.Op{Kind: sim.OpDiv}, true
			}
			s.pc = dsNow

		case dsNow:
			s.pc = dsNowDone
			return sim.Op{Kind: sim.OpNow}, true

		case dsNowDone:
			s.now = prev.Now
			s.total += s.now - s.t0
			s.iters++
			s.pc = dsLoop
		}
	}
}

// Decoded returns the bits the spy inferred so far.
func (s *DivSpy) Decoded() []int { return s.decoded }

// PerBitLatency returns the spy's average division-loop latency per
// bit (cycles) — the observable of Figure 3.
func (s *DivSpy) PerBitLatency() []float64 { return s.perBitLatency }
