package channels

import "cchunter/internal/sim"

// DivConfig configures the integer divider covert channel. Trojan and
// spy must be pinned onto the two hyperthreads of one core: the
// divider bank is per-core.
type DivConfig struct {
	Protocol
	// MaxBurstCycles caps the contention burst within a bit slot.
	MaxBurstCycles uint64
	// OpsPerSample is the constant number of divisions in each of the
	// spy's timed loop iterations (§IV-A: "executing loop iterations
	// with a constant number of integer division operations and
	// timing them"). The spy iterates continuously through the burst.
	OpsPerSample int
	// DecisionLatency is the spy's per-iteration threshold separating
	// contended from uncontended divider state, in cycles.
	DecisionLatency uint64
}

// DefaultDivConfig returns a paper-shaped divider channel: with the
// default 5-cycle divider, saturating trojan and spy threads put
// ~90-100 cross-context wait events into each Δt = 500-cycle window,
// Figure 6b's burst bins.
func DefaultDivConfig(message []int, bps float64) DivConfig {
	return DivConfig{
		Protocol:        Protocol{Message: message, BPS: bps, Start: 0, Seed: 1},
		MaxBurstCycles:  50_000,
		OpsPerSample:    20,
		DecisionLatency: 150,
	}
}

// DivTrojan transmits by saturating the core's division units.
type DivTrojan struct {
	cfg DivConfig
}

// NewDivTrojan builds the transmitter.
func NewDivTrojan(cfg DivConfig) *DivTrojan {
	cfg.Protocol.validate()
	if cfg.MaxBurstCycles == 0 {
		panic("channels: div trojan needs MaxBurstCycles")
	}
	return &DivTrojan{cfg: cfg}
}

// Name implements sim.Program.
func (t *DivTrojan) Name() string { return "div-trojan" }

// Run implements sim.Program.
func (t *DivTrojan) Run(m *sim.Machine) {
	geo := m.Geometry()
	slot := t.cfg.slotCycles(geo)
	burst := minU64(slot, t.cfg.MaxBurstCycles)
	for i := 0; ; i++ {
		bit, done := t.cfg.bitAt(i)
		if done {
			return
		}
		start := t.cfg.Start + uint64(i)*slot
		now := m.WaitUntil(start)
		if bit == 0 {
			continue // empty loop: division units stay un-contended
		}
		// Individual (unbatched) divisions so the two hyperthreads'
		// instructions interleave cycle by cycle, as on real SMT.
		for now < start+burst {
			m.Div()
			now = m.Now()
		}
	}
}

// DivSpy decodes by timing constant-length division loops.
type DivSpy struct {
	cfg     DivConfig
	decoded []int
	// perBitLatency is the spy's average loop latency per bit — the
	// Figure 3 series.
	perBitLatency []float64
}

// NewDivSpy builds the receiver.
func NewDivSpy(cfg DivConfig) *DivSpy {
	cfg.Protocol.validate()
	if cfg.OpsPerSample <= 0 || cfg.MaxBurstCycles == 0 {
		panic("channels: div spy needs OpsPerSample and MaxBurstCycles")
	}
	return &DivSpy{cfg: cfg}
}

// Name implements sim.Program.
func (s *DivSpy) Name() string { return "div-spy" }

// Run implements sim.Program.
func (s *DivSpy) Run(m *sim.Machine) {
	geo := m.Geometry()
	slot := s.cfg.slotCycles(geo)
	burst := minU64(slot, s.cfg.MaxBurstCycles)
	for i := 0; ; i++ {
		if _, done := s.cfg.bitAt(i); done {
			return
		}
		start := s.cfg.Start + uint64(i)*slot
		now := m.WaitUntil(start)
		var total, iters uint64
		for now < start+burst {
			t0 := now
			for j := 0; j < s.cfg.OpsPerSample; j++ {
				m.Div()
			}
			now = m.Now()
			total += now - t0
			iters++
		}
		avg := total / iters
		s.perBitLatency = append(s.perBitLatency, float64(avg))
		if avg > s.cfg.DecisionLatency {
			s.decoded = append(s.decoded, 1)
		} else {
			s.decoded = append(s.decoded, 0)
		}
	}
}

// Decoded returns the bits the spy inferred so far.
func (s *DivSpy) Decoded() []int { return s.decoded }

// PerBitLatency returns the spy's average division-loop latency per
// bit (cycles) — the observable of Figure 3.
func (s *DivSpy) PerBitLatency() []float64 { return s.perBitLatency }
