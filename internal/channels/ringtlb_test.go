package channels

import (
	"reflect"
	"testing"

	"cchunter/internal/ring"
	"cchunter/internal/sim"
	"cchunter/internal/trace"
)

// ringSimConfig is the test machine with the ring interconnect
// enabled; everything else matches TestConfig.
func ringSimConfig() sim.Config {
	cfg := sim.TestConfig()
	cfg.Ring = ring.DefaultConfig()
	return cfg
}

// runRingChannel drives a ring-interconnect channel end to end and
// returns the spy and the recorded ring-contention train.
func runRingChannel(t *testing.T, cfg RingConfig) (*RingSpy, *trace.Train) {
	t.Helper()
	s := sim.MustNew(ringSimConfig())
	defer s.Close()
	rec := trace.NewRecorder(trace.KindRingContention)
	s.AddListener(rec)
	spy := NewRingSpy(cfg)
	s.Spawn(NewRingTrojan(cfg), sim.Pin(0))
	s.Spawn(spy, sim.Pin(2)) // different core: contention is in the ring
	slot := cfg.slotCycles(s.Geometry())
	s.Run(uint64(len(cfg.Message)+1) * slot)
	return spy, rec.Train()
}

// runTLBChannel drives a TLB channel end to end and returns the spy
// and the recorded tlb-conflict train. Trojan and spy share core 0 as
// hyperthreads: the sTLB is per-core.
func runTLBChannel(t *testing.T, cfg TLBConfig) (*TLBSpy, *trace.Train) {
	t.Helper()
	s := sim.MustNew(sim.TestConfig())
	defer s.Close()
	rec := trace.NewRecorder(trace.KindTLBConflict)
	s.AddListener(rec)
	spy := NewTLBSpy(cfg)
	s.Spawn(NewTLBTrojan(cfg), sim.Pin(0))
	s.Spawn(spy, sim.Pin(1))
	slot := cfg.symbolSlot(s.Geometry())
	s.Run(uint64(len(cfg.Message)/cfg.SymbolBits+2) * slot)
	return spy, rec.Train()
}

func TestRingChannelTransmits(t *testing.T) {
	msg := RandomMessage(24, 21)
	spy, train := runRingChannel(t, DefaultRingConfig(msg, 25_000))
	if errs := BitErrors(msg, spy.Decoded()); errs != 0 {
		t.Errorf("ring channel at 25 kbps: %d bit errors\nsent    %v\ndecoded %v",
			errs, msg, spy.Decoded())
	}
	if train.Len() == 0 {
		t.Fatal("ring channel emitted no ring-contention events")
	}
	for _, ev := range train.Events()[:1] {
		if ev.Kind != trace.KindRingContention {
			t.Fatalf("recorded kind %v, want %v", ev.Kind, trace.KindRingContention)
		}
	}
}

func TestTLBChannelTransmits(t *testing.T) {
	msg := RandomMessage(24, 22)
	spy, train := runTLBChannel(t, DefaultTLBConfig(msg, 25_000))
	if errs := BitErrors(msg, spy.Decoded()); errs != 0 {
		t.Errorf("tlb channel at 25 kbps: %d bit errors\nsent    %v\ndecoded %v",
			errs, msg, spy.Decoded())
	}
	if train.Len() == 0 {
		t.Fatal("tlb channel emitted no tlb-conflict events")
	}
	if got := len(spy.PerSymbolMissFrac()); got < len(msg)/2 {
		t.Errorf("only %d per-symbol observables for a %d-bit message", got, len(msg))
	}
}

// TestTLBChannelOddMessage pins the trailing-partial-symbol contract:
// a message whose length is not a multiple of SymbolBits still decodes
// exactly, with the pad bits trimmed.
func TestTLBChannelOddMessage(t *testing.T) {
	msg := RandomMessage(13, 23)
	spy, _ := runTLBChannel(t, DefaultTLBConfig(msg, 25_000))
	if len(spy.Decoded()) != len(msg) {
		t.Fatalf("decoded %d bits for a %d-bit message", len(spy.Decoded()), len(msg))
	}
	if errs := BitErrors(msg, spy.Decoded()); errs != 0 {
		t.Errorf("odd-length tlb message: %d bit errors", errs)
	}
}

func TestTLBSymbolAt(t *testing.T) {
	cfg := DefaultTLBConfig([]int{1, 0, 1, 1, 1}, 1000) // 0b10, 0b11, 0b10 (pad)
	for i, want := range []int{2, 3, 2} {
		sym, done := cfg.symbolAt(i)
		if done || sym != want {
			t.Errorf("symbolAt(%d) = (%d, %v), want (%d, false)", i, sym, done, want)
		}
	}
	if _, done := cfg.symbolAt(3); !done {
		t.Error("symbolAt past the message must report done")
	}
}

func TestDecodeTLBSymbol(t *testing.T) {
	for _, tc := range []struct {
		misses []int
		want   int
	}{
		{nil, 0},
		{[]int{0, 0, 0, 0}, 0},
		{[]int{1, 9, 2, 3}, 1},
		{[]int{0, 0, 0, 7}, 3},
		{[]int{5, 5, 2, 5}, 0}, // ties break to the lowest group
		{[]int{2, 4, 4, 1}, 1},
	} {
		if got := DecodeTLBSymbol(tc.misses); got != tc.want {
			t.Errorf("DecodeTLBSymbol(%v) = %d, want %d", tc.misses, got, tc.want)
		}
	}
}

// FuzzTLBSetDecode fuzzes the spy's set-index decoding: the decoded
// symbol must index the (joint) maximum of the miss histogram, with
// ties broken toward the lowest group — the determinism the golden
// corpus pins.
func FuzzTLBSetDecode(f *testing.F) {
	f.Add(uint64(0x0102030405060708), uint8(4))
	f.Add(uint64(0), uint8(8))
	f.Add(uint64(0xffffffffffffffff), uint8(1))
	f.Fuzz(func(t *testing.T, packed uint64, nRaw uint8) {
		n := int(nRaw) % 9
		misses := make([]int, n)
		for g := range misses {
			misses[g] = int(packed >> uint(8*g) & 0xff)
		}
		sym := DecodeTLBSymbol(misses)
		if sym < 0 || (n > 0 && sym >= n) || (n == 0 && sym != 0) {
			t.Fatalf("DecodeTLBSymbol(%v) = %d out of range", misses, sym)
		}
		for g, c := range misses {
			if c > misses[sym] {
				t.Fatalf("DecodeTLBSymbol(%v) = %d but group %d has more misses",
					misses, sym, g)
			}
			if g < sym && c == misses[sym] {
				t.Fatalf("DecodeTLBSymbol(%v) = %d broke the tie upward past %d",
					misses, sym, g)
			}
		}
	})
}

// TestEvaderUnitDutyIsIdentity pins the evader's zero-cost contract:
// DutyFrac 1 (full amplitude) and the zero Evader produce byte-
// identical decoded bits and event trains on both new channels.
func TestEvaderUnitDutyIsIdentity(t *testing.T) {
	msg := RandomMessage(16, 31)

	base := DefaultRingConfig(msg, 25_000)
	unit := base
	unit.Evader = Evader{DutyFrac: 1}
	spyA, trainA := runRingChannel(t, base)
	spyB, trainB := runRingChannel(t, unit)
	if !reflect.DeepEqual(spyA.Decoded(), spyB.Decoded()) {
		t.Error("ring: DutyFrac 1 changed the decoded bits")
	}
	if !reflect.DeepEqual(trainA.Events(), trainB.Events()) {
		t.Error("ring: DutyFrac 1 changed the event train")
	}

	tbase := DefaultTLBConfig(msg, 25_000)
	tunit := tbase
	tunit.Evader = Evader{DutyFrac: 1}
	tspyA, ttrainA := runTLBChannel(t, tbase)
	tspyB, ttrainB := runTLBChannel(t, tunit)
	if !reflect.DeepEqual(tspyA.Decoded(), tspyB.Decoded()) {
		t.Error("tlb: DutyFrac 1 changed the decoded bits")
	}
	if !reflect.DeepEqual(ttrainA.Events(), ttrainB.Events()) {
		t.Error("tlb: DutyFrac 1 changed the event train")
	}
}

// TestEvaderPreservesFidelity checks the adaptive sender's design
// premise: moderate jitter and duty evasion degrade the *detector's*
// food supply, not the channel — both ends derive the same offsets, so
// the message still lands.
func TestEvaderPreservesFidelity(t *testing.T) {
	msg := RandomMessage(16, 33)

	rcfg := DefaultRingConfig(msg, 25_000)
	rcfg.Evader = Evader{JitterFrac: 0.2, DutyFrac: 0.5}
	spy, train := runRingChannel(t, rcfg)
	if errs := BitErrors(msg, spy.Decoded()); errs != 0 {
		t.Errorf("evading ring channel: %d bit errors", errs)
	}
	if train.Len() == 0 {
		t.Error("evading ring channel emitted no events at all")
	}

	tcfg := DefaultTLBConfig(msg, 25_000)
	tcfg.Evader = Evader{JitterFrac: 0.2, DutyFrac: 0.5}
	tspy, ttrain := runTLBChannel(t, tcfg)
	if errs := BitErrors(msg, tspy.Decoded()); errs != 0 {
		t.Errorf("evading tlb channel: %d bit errors", errs)
	}
	if ttrain.Len() == 0 {
		t.Error("evading tlb channel emitted no events at all")
	}
}

// TestEvaderDutyThinsTrain checks the duty cycle does what the
// frontier experiment assumes: a quarter-amplitude sender emits a
// visibly sparser event train than the full-rate sender.
func TestEvaderDutyThinsTrain(t *testing.T) {
	msg := RandomMessage(16, 35)
	full := DefaultRingConfig(msg, 25_000)
	thin := full
	thin.Evader = Evader{DutyFrac: 0.25}
	_, fullTrain := runRingChannel(t, full)
	_, thinTrain := runRingChannel(t, thin)
	if fullTrain.Len() == 0 {
		t.Fatal("full-amplitude run emitted no events")
	}
	if thinTrain.Len()*2 >= fullTrain.Len() {
		t.Errorf("duty 0.25 train has %d events vs %d at full amplitude; expected <half",
			thinTrain.Len(), fullTrain.Len())
	}
}

// TestRingTLBSteppersAllocationFree extends the engine's
// zero-allocation contract (TestOpPathAllocationFree) to the new
// channel hot paths: in steady state, ring loads and TLB probes —
// trojan and spy, both drivers — allocate nothing. The spies' per-slot
// result slices are pre-reserved so the measurement sees only the op
// path, not amortized append growth.
func TestRingTLBSteppersAllocationFree(t *testing.T) {
	msg := []int{1, 0, 1, 1, 0, 1, 0, 0}
	for name, driver := range map[string]sim.Driver{
		"step":      sim.DriverStep,
		"goroutine": sim.DriverGoroutine,
	} {
		t.Run("ring/"+name, func(t *testing.T) {
			cfg := ringSimConfig()
			cfg.Driver = driver
			s := sim.MustNew(cfg)
			defer s.Close()
			c := DefaultRingConfig(msg, 25_000)
			c.Repeat = true
			spy := NewRingSpy(c)
			spy.decoded = make([]int, 0, 1<<16)
			spy.perBitSlowFrac = make([]float64, 0, 1<<16)
			s.Spawn(NewRingTrojan(c), sim.Pin(0))
			s.Spawn(spy, sim.Pin(2))
			until := uint64(300_000)
			s.Run(until)
			allocs := testing.AllocsPerRun(20, func() {
				until += 200_000
				s.Run(until)
			})
			if allocs != 0 {
				t.Errorf("ring channel on %s driver: %v allocs per Run chunk, want 0",
					name, allocs)
			}
		})
		t.Run("tlb/"+name, func(t *testing.T) {
			cfg := sim.TestConfig()
			cfg.Driver = driver
			s := sim.MustNew(cfg)
			defer s.Close()
			c := DefaultTLBConfig(msg, 25_000)
			c.Repeat = true
			spy := NewTLBSpy(c)
			spy.decoded = make([]int, 0, 1<<16)
			spy.perSymbolMissFrac = make([]float64, 0, 1<<16)
			s.Spawn(NewTLBTrojan(c), sim.Pin(0))
			s.Spawn(spy, sim.Pin(1))
			until := uint64(500_000)
			s.Run(until)
			allocs := testing.AllocsPerRun(20, func() {
				until += 200_000
				s.Run(until)
			})
			if allocs != 0 {
				t.Errorf("tlb channel on %s driver: %v allocs per Run chunk, want 0",
					name, allocs)
			}
		})
	}
}
