package channels

import "cchunter/internal/sim"

// TLBConfig configures the shared-TLB covert channel (after the
// accessed-bit TLB channels of deermichel/tlbchannels). Trojan and spy
// must run as hyperthreads of one core: the sTLB is per-core. Unlike
// the binary channels, each slot carries a multi-bit *symbol*: the
// trojan evicts one of 2^SymbolBits disjoint TLB-set groups and the
// spy decodes the symbol as the group with the most probe misses.
type TLBConfig struct {
	Protocol
	// SymbolBits is the symbol width in bits; the TLB's sets are split
	// into 2^SymbolBits groups.
	SymbolBits int
	// RoundsPerSymbol is how many evict/probe rounds reinforce each
	// symbol.
	RoundsPerSymbol int
	// MaxBurstCycles caps the per-symbol active phase.
	MaxBurstCycles uint64
	// MissLatency is the spy's probe threshold: a probe at least this
	// slow lost its translation to the trojan (sits between the TLB
	// hit latency and the page-walk latency).
	MissLatency uint64
}

// DefaultTLBConfig returns a TLB channel carrying message bits at bps
// bits per second, two bits per symbol.
func DefaultTLBConfig(message []int, bps float64) TLBConfig {
	return TLBConfig{
		Protocol:        Protocol{Message: message, BPS: bps, Start: 0, Seed: 1},
		SymbolBits:      2,
		RoundsPerSymbol: 4,
		MaxBurstCycles:  100_000,
		MissLatency:     60,
	}
}

// groups returns the symbol alphabet size.
func (cfg TLBConfig) groups() int { return 1 << cfg.SymbolBits }

// symbolSlot returns the slot length: SymbolBits bit slots, so BPS
// stays bits per second.
func (cfg TLBConfig) symbolSlot(geo sim.Geometry) uint64 {
	return uint64(cfg.SymbolBits) * cfg.slotCycles(geo)
}

// symbolAt assembles the symbol for slot si from the message bits,
// MSB first, zero-padding a trailing partial symbol. done mirrors
// bitAt: the slot after the last message bit (unless repeating).
func (cfg TLBConfig) symbolAt(si int) (sym int, done bool) {
	if _, d := cfg.bitAt(si * cfg.SymbolBits); d {
		return 0, true
	}
	for k := 0; k < cfg.SymbolBits; k++ {
		b, d := cfg.bitAt(si*cfg.SymbolBits + k)
		if d {
			b = 0
		}
		sym = sym<<1 | b
	}
	return sym, false
}

// DecodeTLBSymbol maps a per-group probe-miss histogram to the decoded
// symbol: the group with the most misses, lowest group on ties (the
// deterministic tie-break the golden corpus pins). An empty histogram
// decodes to 0.
func DecodeTLBSymbol(misses []int) int {
	best := 0
	for g := 1; g < len(misses); g++ {
		if misses[g] > misses[best] {
			best = g
		}
	}
	return best
}

// tlbPage maps (way, set) to a process-private line index whose page
// lands on the given TLB set: line indexes carry the page number in
// their high bits (one page = 64 lines at 4 KiB pages and 64 B lines).
func tlbPage(way, set, sets int) uint64 {
	return uint64(way*sets+set) << 6
}

// TLBTrojan transmits symbol s by filling every way of TLB-set group s
// with its own translations, evicting the spy's. It is a sim.Stepper.
type TLBTrojan struct {
	cfg TLBConfig

	m         *sim.Machine
	slot      uint64
	round     uint64
	sets      int // TLB sets per group
	ways      int
	si        int // slot (symbol) index
	sym       int // symbol for the current slot
	r         int // round index within the slot
	n         int // probe index within the round
	start     uint64
	pc        int
	groupBase int // first TLB set of the current symbol's group
}

// TLBTrojan states.
const (
	ttSlot  = iota // assemble next symbol, select its group
	ttRound        // wait for the next evict round
	ttProbe        // fill one page of the group
)

// NewTLBTrojan builds the transmitter.
func NewTLBTrojan(cfg TLBConfig) *TLBTrojan {
	cfg.Protocol.validate()
	if cfg.SymbolBits <= 0 || cfg.RoundsPerSymbol <= 0 || cfg.MaxBurstCycles == 0 {
		panic("channels: tlb trojan needs SymbolBits, RoundsPerSymbol, and MaxBurstCycles")
	}
	return &TLBTrojan{cfg: cfg}
}

// Name implements sim.Program.
func (t *TLBTrojan) Name() string { return "tlb-trojan" }

// Run implements sim.Program via the goroutine reference driver.
func (t *TLBTrojan) Run(m *sim.Machine) { sim.RunSteps(t, m) }

// Begin implements sim.Stepper.
func (t *TLBTrojan) Begin(m *sim.Machine) {
	geo := m.Geometry()
	t.m = m
	t.slot = t.cfg.symbolSlot(geo)
	burst := minU64(t.slot, t.cfg.MaxBurstCycles)
	t.round = burst / uint64(t.cfg.RoundsPerSymbol)
	t.sets = geo.TLBSets / t.cfg.groups()
	if t.sets == 0 {
		panic("channels: more symbol groups than TLB sets")
	}
	t.ways = geo.TLBWays
	t.pc = ttSlot
}

// Step implements sim.Stepper.
func (t *TLBTrojan) Step(prev sim.OpResult) (sim.Op, bool) {
	for {
		switch t.pc {
		case ttSlot:
			sym, done := t.cfg.symbolAt(t.si)
			if done {
				return sim.Op{}, false
			}
			t.sym = sym
			t.groupBase = sym * t.sets
			// Slot 0 is the spy's priming slot; symbols start at slot 1.
			t.start = t.cfg.Start + uint64(t.si+1)*t.slot + t.cfg.slotJitter(t.si, t.slot)
			t.r = 0
			t.pc = ttRound

		case ttRound:
			if t.r < t.cfg.RoundsPerSymbol {
				t.n = 0
				t.pc = ttProbe
				return sim.Op{Kind: sim.OpWaitUntil, Cycles: t.start + uint64(t.r)*t.round}, true
			}
			t.si++
			t.pc = ttSlot

		case ttProbe:
			for t.n < t.sets*t.ways {
				if t.cfg.dutySkip(t.si, t.r*t.sets*t.ways+t.n) {
					t.n++
					continue
				}
				set := t.groupBase + t.n%t.sets
				way := t.n / t.sets
				t.n++
				geo := t.m.Geometry()
				return sim.Op{Kind: sim.OpTLBProbe,
					Addr: t.m.PrivateAddr(tlbPage(way, set, geo.TLBSets))}, true
			}
			t.r++
			t.pc = ttRound
		}
	}
}

// TLBSpy decodes by keeping its own translation in every way of every
// set and probing them each round: the group the trojan filled comes
// back as page walks. Probing re-primes, so one pass serves both
// roles. It is a sim.Stepper.
type TLBSpy struct {
	cfg     TLBConfig
	decoded []int
	// perSymbolMissFrac is the winning group's share of each symbol's
	// probe misses — the channel's confidence observable.
	perSymbolMissFrac []float64

	m      *sim.Machine
	slot   uint64
	round  uint64
	sets   int // total TLB sets
	ways   int
	misses []int // per-group miss counts for the current symbol
	si     int
	r      int
	n      int // probe index within the round
	set    int // set of the probe in flight
	start  uint64
	pc     int
}

// TLBSpy states.
const (
	tsPrime     = iota // initial prime of every set and way
	tsSlot             // decode slot bounds / close out the symbol
	tsRound            // wait past the trojan's evict phase
	tsProbe            // issue one probe
	tsProbeDone        // classify the probe's latency
)

// NewTLBSpy builds the receiver.
func NewTLBSpy(cfg TLBConfig) *TLBSpy {
	cfg.Protocol.validate()
	if cfg.SymbolBits <= 0 || cfg.RoundsPerSymbol <= 0 ||
		cfg.MaxBurstCycles == 0 || cfg.MissLatency == 0 {
		panic("channels: tlb spy needs SymbolBits, RoundsPerSymbol, MaxBurstCycles, and MissLatency")
	}
	return &TLBSpy{cfg: cfg}
}

// Name implements sim.Program.
func (s *TLBSpy) Name() string { return "tlb-spy" }

// Run implements sim.Program via the goroutine reference driver.
func (s *TLBSpy) Run(m *sim.Machine) { sim.RunSteps(s, m) }

// Begin implements sim.Stepper.
func (s *TLBSpy) Begin(m *sim.Machine) {
	geo := m.Geometry()
	s.m = m
	s.slot = s.cfg.symbolSlot(geo)
	burst := minU64(s.slot, s.cfg.MaxBurstCycles)
	s.round = burst / uint64(s.cfg.RoundsPerSymbol)
	s.sets = geo.TLBSets
	s.ways = geo.TLBWays
	s.misses = make([]int, s.cfg.groups())
	if s.sets/s.cfg.groups() == 0 {
		panic("channels: more symbol groups than TLB sets")
	}
	s.pc = tsPrime
}

// probeOp issues the n-th probe of a pass, recording its set for the
// classification step.
func (s *TLBSpy) probeOp() sim.Op {
	s.set = s.n % s.sets
	way := s.n / s.sets
	s.n++
	return sim.Op{Kind: sim.OpTLBProbe,
		Addr: s.m.PrivateAddr(tlbPage(way, s.set, s.sets))}
}

// Step implements sim.Stepper.
func (s *TLBSpy) Step(prev sim.OpResult) (sim.Op, bool) {
	for {
		switch s.pc {
		case tsPrime:
			if s.n < s.sets*s.ways {
				return s.probeOp(), true
			}
			s.pc = tsSlot

		case tsSlot:
			if _, done := s.cfg.symbolAt(s.si); done {
				return sim.Op{}, false
			}
			s.start = s.cfg.Start + uint64(s.si+1)*s.slot + s.cfg.slotJitter(s.si, s.slot)
			for g := range s.misses {
				s.misses[g] = 0
			}
			s.r = 0
			s.pc = tsRound

		case tsRound:
			if s.r < s.cfg.RoundsPerSymbol {
				s.n = 0
				s.pc = tsProbe
				// Probe halfway into the round, after the trojan's fills.
				return sim.Op{Kind: sim.OpWaitUntil,
					Cycles: s.start + uint64(s.r)*s.round + s.round/2}, true
			}
			sym := DecodeTLBSymbol(s.misses)
			total, win := 0, s.misses[sym]
			for _, c := range s.misses {
				total += c
			}
			frac := 0.0
			if total > 0 {
				frac = float64(win) / float64(total)
			}
			s.perSymbolMissFrac = append(s.perSymbolMissFrac, frac)
			for k := 0; k < s.cfg.SymbolBits; k++ {
				if _, d := s.cfg.bitAt(s.si*s.cfg.SymbolBits + k); d {
					break // trailing pad bits of the last symbol
				}
				s.decoded = append(s.decoded, (sym>>uint(s.cfg.SymbolBits-1-k))&1)
			}
			s.si++
			s.pc = tsSlot

		case tsProbe:
			if s.n < s.sets*s.ways {
				s.pc = tsProbeDone
				return s.probeOp(), true
			}
			s.r++
			s.pc = tsRound

		case tsProbeDone:
			if prev.Latency >= s.cfg.MissLatency {
				s.misses[s.set/(s.sets/s.cfg.groups())]++
			}
			s.pc = tsProbe
		}
	}
}

// Decoded returns the bits the spy inferred so far.
func (s *TLBSpy) Decoded() []int { return s.decoded }

// PerSymbolMissFrac returns the winning group's share of probe misses
// per symbol slot.
func (s *TLBSpy) PerSymbolMissFrac() []float64 { return s.perSymbolMissFrac }
