package channels

import (
	"reflect"
	"testing"
)

// corruptWord flips one bit inside coded word w (data or parity) —
// the Berger check detects every single-bit flip, so the word becomes
// an erasure.
func corruptWord(coded []int, w, bit int) {
	off := w*fecWordBits + bit%fecWordBits
	if off < len(coded) {
		coded[off] ^= 1
	}
}

func TestFECRoundTripClean(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 16, 31, 32, 33, 64, 100} {
		data := RandomMessage(n, uint64(n)+1)
		coded := FECEncode(data)
		if len(coded) != FECOverhead(n) {
			t.Errorf("n=%d: coded length %d, want FECOverhead %d",
				n, len(coded), FECOverhead(n))
		}
		got, erasures, unrecovered := FECDecode(coded, n)
		if !reflect.DeepEqual(got, data) {
			t.Errorf("n=%d: clean round trip corrupted the data", n)
		}
		if erasures != 0 || unrecovered != 0 {
			t.Errorf("n=%d: clean frame reported %d erasures, %d unrecovered",
				n, erasures, unrecovered)
		}
	}
}

func TestFECRecoversSingleErasurePerGroup(t *testing.T) {
	const n = 64 // 8 words = 2 groups
	data := RandomMessage(n, 5)
	words := (n + 7) / 8
	groups := (words + fecGroup - 1) / fecGroup
	// One corrupted word per group, sweeping every in-group position
	// including the parity word itself.
	for pos := 0; pos < fecGroup+1; pos++ {
		coded := FECEncode(data)
		for g := 0; g < groups; g++ {
			corruptWord(coded, g*(fecGroup+1)+pos, 3+g)
		}
		got, erasures, unrecovered := FECDecode(coded, n)
		if !reflect.DeepEqual(got, data) {
			t.Errorf("pos=%d: single erasure per group not recovered", pos)
		}
		if unrecovered != 0 {
			t.Errorf("pos=%d: %d words stayed unrecovered", pos, unrecovered)
		}
		wantErasures := groups
		if pos == fecGroup {
			wantErasures = 0 // parity corruption erases no data word
		}
		if erasures != wantErasures {
			t.Errorf("pos=%d: %d erasures, want %d", pos, erasures, wantErasures)
		}
	}
}

func TestFECDoubleErasureReported(t *testing.T) {
	const n = 32 // one group
	data := RandomMessage(n, 6)
	coded := FECEncode(data)
	corruptWord(coded, 0, 0)
	corruptWord(coded, 1, 5)
	_, erasures, unrecovered := FECDecode(coded, n)
	if erasures != 2 {
		t.Errorf("erasures = %d, want 2", erasures)
	}
	if unrecovered != 2 {
		t.Errorf("unrecovered = %d, want 2 (one parity cannot fix two words)",
			unrecovered)
	}
}

func TestFECDecodeGarbageSafe(t *testing.T) {
	for _, coded := range [][]int{
		nil,
		{},
		{1},
		make([]int, 5),
		RandomMessage(200, 9),
	} {
		for _, n := range []int{0, 1, 8, 64, 1000} {
			got, _, _ := FECDecode(coded, n)
			if len(got) != n {
				t.Fatalf("FECDecode(len %d coded, %d) returned %d bits",
					len(coded), n, len(got))
			}
		}
	}
	if got, _, _ := FECDecode(RandomMessage(48, 2), -3); len(got) != 0 {
		t.Error("negative nbits must decode to an empty slice")
	}
}

// FuzzFECRoundTrip drives the framing layer with adversarial payloads
// and corruption positions: encode → corrupt at most one word per
// group → decode must never panic and must reproduce the payload
// exactly; decoding raw garbage must never panic either.
func FuzzFECRoundTrip(f *testing.F) {
	f.Add([]byte{0xa5, 0x5a}, uint16(16), uint64(0), uint64(0))
	f.Add([]byte{1, 2, 3, 4, 5}, uint16(33), uint64(3), uint64(7))
	f.Add([]byte{}, uint16(1), uint64(1), uint64(11))
	f.Fuzz(func(t *testing.T, payload []byte, nbitsRaw uint16, wordSel, bitSel uint64) {
		nbits := int(nbitsRaw)%200 + 1
		data := make([]int, nbits)
		for i := range data {
			if len(payload) > 0 {
				data[i] = int(payload[i%len(payload)]>>(uint(i)%8)) & 1
			}
		}
		coded := FECEncode(data)

		// Clean decode is exact.
		got, erasures, unrecovered := FECDecode(coded, nbits)
		if !reflect.DeepEqual(got, data) {
			t.Fatal("clean round trip corrupted the payload")
		}
		if erasures != 0 || unrecovered != 0 {
			t.Fatalf("clean frame reported erasures=%d unrecovered=%d",
				erasures, unrecovered)
		}

		// One corrupted word per group — any position, data or parity —
		// must be fully recovered.
		words := (nbits + 7) / 8
		groups := (words + fecGroup - 1) / fecGroup
		for g := 0; g < groups; g++ {
			w := g*(fecGroup+1) + int(wordSel%uint64(fecGroup+1))
			corruptWord(coded, w, int(bitSel))
		}
		got, _, unrecovered = FECDecode(coded, nbits)
		if unrecovered != 0 {
			t.Fatalf("single corrupt word per group left %d unrecovered", unrecovered)
		}
		if !reflect.DeepEqual(got, data) {
			t.Fatal("single corrupt word per group not corrected")
		}

		// Truncated and garbage frames decode without panicking.
		if len(coded) > 0 {
			FECDecode(coded[:int(wordSel)%len(coded)], nbits)
		}
		garbage := make([]int, int(bitSel)%97)
		for i := range garbage {
			garbage[i] = int(wordSel>>uint(i%64)) & 1
		}
		if out, _, _ := FECDecode(garbage, nbits); len(out) != nbits {
			t.Fatalf("garbage decode returned %d bits, want %d", len(out), nbits)
		}
	})
}
