package channels

// Two-layer forward-error-correction framing in the style of the TLB
// channel literature: an inner Berger-style check per 8-bit data word
// turns corrupted words into *erasures* (the check counts zero bits, so
// it detects every unidirectional error and most random flips), and an
// outer XOR parity word per group of fecGroup data words recovers any
// single erased word in the group. Both layers are pure bit-slice
// transforms, usable over every channel in this package: encode the
// message before handing it to a trojan, decode what the spy received.
//
// Frame layout, all bits in transmission order:
//
//	group := fecGroup × (8 data bits + 4-bit zero-count check)
//	         followed by one parity word (8+4 bits) = XOR of the
//	         group's data bytes, Berger-checked like a data word
//
// The last group is padded with zero bytes; FECDecode trims back to
// the caller's bit count.

// fecGroup is the outer-code group size: one parity word protects this
// many data words.
const fecGroup = 4

// fecWordBits is the size of one coded word: 8 data bits plus the
// 4-bit Berger check.
const fecWordBits = 12

// FECOverhead returns the coded length in bits for n data bits.
func FECOverhead(n int) int {
	words := (n + 7) / 8
	groups := (words + fecGroup - 1) / fecGroup
	return (groups*fecGroup + groups) * fecWordBits
}

// FECEncode frames data bits (values 0/1) for transmission. The result
// always decodes back to the input via FECDecode, even with any single
// corrupted word per group.
func FECEncode(data []int) []int {
	words := (len(data) + 7) / 8
	groups := (words + fecGroup - 1) / fecGroup
	out := make([]int, 0, (groups*fecGroup+groups)*fecWordBits)
	bitOf := func(i int) int {
		if i < len(data) && data[i] == 1 {
			return 1
		}
		return 0
	}
	appendWord := func(b byte) {
		zeros := 8
		for k := 7; k >= 0; k-- {
			bit := int(b>>uint(k)) & 1
			zeros -= bit
			out = append(out, bit)
		}
		for k := 3; k >= 0; k-- {
			out = append(out, (zeros>>uint(k))&1)
		}
	}
	for g := 0; g < groups; g++ {
		parity := byte(0)
		for w := 0; w < fecGroup; w++ {
			var b byte
			base := (g*fecGroup + w) * 8
			for k := 0; k < 8; k++ {
				b = b<<1 | byte(bitOf(base+k))
			}
			parity ^= b
			appendWord(b)
		}
		appendWord(parity)
	}
	return out
}

// fecReadWord decodes one coded word starting at off. A word that runs
// past the input, or whose Berger check disagrees with its payload, is
// an erasure (ok == false).
func fecReadWord(coded []int, off int) (b byte, ok bool) {
	if off+fecWordBits > len(coded) {
		return 0, false
	}
	zeros := 0
	for k := 0; k < 8; k++ {
		bit := coded[off+k] & 1
		b = b<<1 | byte(bit)
		zeros += 1 - bit
	}
	check := 0
	for k := 8; k < fecWordBits; k++ {
		check = check<<1 | coded[off+k]&1
	}
	return b, check == zeros
}

// FECDecode recovers nbits data bits from a coded frame. Words whose
// inner check fails are erasures; each group's parity word reconstructs
// a single erasure. It returns the recovered bits (zero-filled where
// recovery failed), the erasure count, and how many erased words stayed
// unrecovered. It never panics, whatever the input: short frames and
// garbage decode to best effort.
func FECDecode(coded []int, nbits int) (data []int, erasures, unrecovered int) {
	if nbits < 0 {
		nbits = 0
	}
	words := (nbits + 7) / 8
	groups := (words + fecGroup - 1) / fecGroup
	data = make([]int, nbits)
	for g := 0; g < groups; g++ {
		var word [fecGroup]byte
		var bad [fecGroup]bool
		badCount := 0
		base := g * (fecGroup + 1) * fecWordBits
		parityAcc := byte(0)
		for w := 0; w < fecGroup; w++ {
			b, ok := fecReadWord(coded, base+w*fecWordBits)
			word[w] = b
			if !ok {
				bad[w] = true
				badCount++
				erasures++
			} else {
				parityAcc ^= b
			}
		}
		parity, parityOK := fecReadWord(coded, base+fecGroup*fecWordBits)
		if badCount == 1 && parityOK {
			for w := 0; w < fecGroup; w++ {
				if bad[w] {
					word[w] = parity ^ parityAcc
					bad[w] = false
					badCount--
				}
			}
		}
		unrecovered += badCount
		for w := 0; w < fecGroup; w++ {
			if bad[w] {
				continue // leave the zero fill
			}
			for k := 0; k < 8; k++ {
				i := (g*fecGroup+w)*8 + k
				if i < nbits {
					data[i] = int(word[w]>>uint(7-k)) & 1
				}
			}
		}
	}
	return data, erasures, unrecovered
}
