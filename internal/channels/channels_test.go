package channels

import (
	"testing"

	"cchunter/internal/auditor"
	"cchunter/internal/sim"
	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

func TestRandomMessage(t *testing.T) {
	m := RandomMessage(64, 42)
	if len(m) != 64 {
		t.Fatalf("len = %d", len(m))
	}
	ones := 0
	for _, b := range m {
		if b != 0 && b != 1 {
			t.Fatalf("bad bit %d", b)
		}
		ones += b
	}
	if ones < 16 || ones > 48 {
		t.Errorf("suspicious bit balance: %d ones", ones)
	}
	m2 := RandomMessage(64, 42)
	for i := range m {
		if m[i] != m2[i] {
			t.Fatal("same seed produced different messages")
		}
	}
}

func TestBitErrors(t *testing.T) {
	if BitErrors([]int{1, 0, 1}, []int{1, 0, 1}) != 0 {
		t.Error("identical should be 0")
	}
	if BitErrors([]int{1, 0, 1}, []int{1, 1, 1}) != 1 {
		t.Error("one flip should be 1")
	}
	if BitErrors([]int{1, 0, 1, 1}, []int{1, 0}) != 2 {
		t.Error("missing bits count as errors")
	}
}

func TestProtocolValidate(t *testing.T) {
	for name, p := range map[string]Protocol{
		"empty message": {BPS: 10},
		"zero bps":      {Message: []int{1}},
		"bad bit":       {Message: []int{2}, BPS: 10},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			p.validate()
		}()
	}
}

func TestProtocolRepeat(t *testing.T) {
	p := Protocol{Message: []int{1, 0}, BPS: 10, Repeat: true}
	if b, done := p.bitAt(5); done || b != 0 {
		t.Error("repeat indexing wrong")
	}
	p.Repeat = false
	if _, done := p.bitAt(2); !done {
		t.Error("non-repeat should finish")
	}
}

// runBusChannel drives a bus channel end to end and returns the spy
// and the recorded bus-lock train.
func runBusChannel(t *testing.T, message []int, bps float64) (*BusSpy, *trace.Train) {
	t.Helper()
	cfg := DefaultBusConfig(message, bps)
	s := sim.MustNew(sim.TestConfig())
	defer s.Close()
	rec := trace.NewRecorder(trace.KindBusLock)
	s.AddListener(rec)
	spy := NewBusSpy(cfg)
	s.Spawn(NewBusTrojan(cfg), sim.Pin(0))
	s.Spawn(spy, sim.Pin(2)) // different core: the bus is chip-wide
	slot := uint64(float64(sim.TestConfig().ClockHz) / bps)
	s.Run(uint64(len(message)+1) * slot)
	return spy, rec.Train()
}

func TestBusChannelDecodes(t *testing.T) {
	msg := RandomMessage(16, 7)
	spy, train := runBusChannel(t, msg, 25_000)
	if errs := BitErrors(msg, spy.Decoded()); errs != 0 {
		t.Errorf("bus channel bit errors = %d (decoded %v)", errs, spy.Decoded())
	}
	if train.Len() == 0 {
		t.Fatal("no bus lock events")
	}
	// Locks only during '1' bits: count events per slot.
	slot := uint64(2.5e9 / 25_000)
	for i, bit := range msg {
		n := train.Window(uint64(i)*slot, uint64(i+1)*slot).Len()
		if bit == 1 && n < 10 {
			t.Errorf("bit %d ('1'): only %d locks", i, n)
		}
		if bit == 0 && n != 0 {
			t.Errorf("bit %d ('0'): %d locks, want 0", i, n)
		}
	}
}

func TestBusChannelLatencySeparation(t *testing.T) {
	msg := []int{1, 0, 1, 0, 1, 0}
	spy, _ := runBusChannel(t, msg, 25_000)
	lat := spy.PerBitLatency()
	if len(lat) != len(msg) {
		t.Fatalf("latency samples = %d", len(lat))
	}
	// Figure 2's shape: contended slots clearly above uncontended.
	for i, bit := range msg {
		if bit == 1 && lat[i] < 2*lat[1] {
			t.Errorf("bit %d: '1' latency %v not well above '0' latency %v", i, lat[i], lat[1])
		}
	}
}

func runDivChannel(t *testing.T, message []int, bps float64) (*DivSpy, *trace.Train) {
	t.Helper()
	cfg := DefaultDivConfig(message, bps)
	s := sim.MustNew(sim.TestConfig())
	defer s.Close()
	rec := trace.NewRecorder(trace.KindDivContention)
	s.AddListener(rec)
	spy := NewDivSpy(cfg)
	s.Spawn(NewDivTrojan(cfg), sim.Pin(0))
	s.Spawn(spy, sim.Pin(1)) // hyperthread siblings
	slot := uint64(float64(sim.TestConfig().ClockHz) / bps)
	s.Run(uint64(len(message)+1) * slot)
	return spy, rec.Train()
}

func TestDivChannelDecodes(t *testing.T) {
	msg := RandomMessage(12, 9)
	spy, train := runDivChannel(t, msg, 5_000)
	if errs := BitErrors(msg, spy.Decoded()); errs != 0 {
		t.Errorf("div channel bit errors = %d (decoded %v)", errs, spy.Decoded())
	}
	if train.Len() == 0 {
		t.Fatal("no contention events")
	}
}

func TestDivChannelContentionDensity(t *testing.T) {
	// During a '1' burst the contention density per Δt=500 must land
	// in the high bins (paper: 84–105), and '0' slots must be silent.
	msg := []int{1, 0}
	_, train := runDivChannel(t, msg, 5_000)
	slot := uint64(2.5e9 / 5_000) // 500k cycles
	burst := uint64(100_000)
	densities := train.Densities(0, burst, 500, false)
	high := 0
	for _, d := range densities {
		if d >= 60 {
			high++
		}
	}
	if high < len(densities)/2 {
		t.Errorf("burst densities too low: %v", densities[:10])
	}
	if n := train.Window(slot, 2*slot).Len(); n != 0 {
		t.Errorf("'0' slot has %d events", n)
	}
}

func runCacheChannel(t *testing.T, message []int, bps float64, sets int) (*CacheSpy, *auditor.Auditor, uint64) {
	t.Helper()
	cfg := DefaultCacheConfig(message, bps)
	cfg.SetsUsed = sets
	simCfg := sim.TestConfig()
	s := sim.MustNew(simCfg)
	defer s.Close()
	aud := auditor.MustNew(auditor.DefaultConfig(simCfg.QuantumCycles))
	if err := aud.MonitorConflicts(); err != nil {
		t.Fatal(err)
	}
	s.AddListener(aud)
	spy := NewCacheSpy(cfg)
	s.Spawn(NewCacheTrojan(cfg), sim.Pin(0))
	s.Spawn(spy, sim.Pin(1)) // hyperthread siblings share the L2
	slot := uint64(float64(simCfg.ClockHz) / bps)
	end := uint64(len(message)+2) * slot
	s.Run(end)
	aud.Flush(end)
	return spy, aud, end
}

func TestCacheChannelDecodes(t *testing.T) {
	msg := RandomMessage(10, 21)
	spy, _, _ := runCacheChannel(t, msg, 1000, 512)
	if errs := BitErrors(msg, spy.Decoded()); errs != 0 {
		t.Errorf("cache channel bit errors = %d (decoded %v, ratios %v)",
			errs, spy.Decoded(), spy.PerBitRatio())
	}
	// Figure 7's shape: ratio > 1 for '1', < 1 for '0'.
	for i, bit := range msg {
		r := spy.PerBitRatio()[i]
		if bit == 1 && r <= 1 {
			t.Errorf("bit %d: '1' ratio %v", i, r)
		}
		if bit == 0 && r >= 1 {
			t.Errorf("bit %d: '0' ratio %v", i, r)
		}
	}
}

func TestCacheChannelOscillationPeriod(t *testing.T) {
	// The deduplicated conflict train's period equals the total number
	// of sets used (Figure 8b / Figure 13).
	for _, sets := range []int{128, 256} {
		msg := RandomMessage(8, 33)
		_, aud, _ := runCacheChannel(t, msg, 1000, sets)
		train := aud.ConflictTrain()
		if train.Len() < 4*sets {
			t.Fatalf("%d sets: conflict train too short: %d", sets, train.Len())
		}
		// Autocorrelate the ±1 label series of the (0,1) couple.
		series := make([]float64, train.Len())
		for i, e := range train.Events() {
			switch {
			case e.Actor == 0 && e.Victim == 1:
				series[i] = 1
			case e.Actor == 1 && e.Victim == 0:
				series[i] = -1
			}
		}
		acf := stats.Autocorrelogram(series, sets*3/2)
		peaks := stats.Peaks(acf, 0.5)
		found := false
		for _, p := range peaks {
			if p.Lag >= sets*85/100 && p.Lag <= sets*115/100 {
				found = true
			}
		}
		if !found {
			t.Errorf("%d sets: no autocorrelation peak near lag %d (peaks %v)", sets, sets, peaks)
		}
	}
}

func TestCacheChannelSetSelectionDisjoint(t *testing.T) {
	cfg := DefaultCacheConfig([]int{1}, 1000)
	cfg.SetsUsed = 512
	geo := sim.Geometry{L2Sets: 2048, L2Ways: 8, ClockHz: 2_500_000_000}
	g1, g0 := selectSets(cfg, geo)
	if len(g1) != 256 || len(g0) != 256 {
		t.Fatalf("group sizes %d/%d", len(g1), len(g0))
	}
	seen := map[uint32]bool{}
	for _, s := range append(append([]uint32{}, g1...), g0...) {
		if seen[s] {
			t.Fatal("G1 and G0 overlap")
		}
		seen[s] = true
	}
	// Same seed, same groups (synchronization property).
	h1, h0 := selectSets(cfg, geo)
	for i := range g1 {
		if g1[i] != h1[i] || g0[i] != h0[i] {
			t.Fatal("set selection not deterministic")
		}
	}
}

func TestCacheChannelConfigPanics(t *testing.T) {
	geo := sim.Geometry{L2Sets: 64, L2Ways: 8}
	cfg := DefaultCacheConfig([]int{1}, 10)
	cfg.SetsUsed = 128 // more than the cache has
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	selectSets(cfg, geo)
}

func TestConstructorValidation(t *testing.T) {
	good := Protocol{Message: []int{1}, BPS: 10}
	for name, f := range map[string]func(){
		"bus trojan": func() { NewBusTrojan(BusConfig{Protocol: good}) },
		"bus spy":    func() { NewBusSpy(BusConfig{Protocol: good}) },
		"div trojan": func() { NewDivTrojan(DivConfig{Protocol: good}) },
		"div spy":    func() { NewDivSpy(DivConfig{Protocol: good}) },
		"cache troj": func() { NewCacheTrojan(CacheConfig{Protocol: good}) },
		"cache spy":  func() { NewCacheSpy(CacheConfig{Protocol: good}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: zero config should panic", name)
				}
			}()
			f()
		}()
	}
}
