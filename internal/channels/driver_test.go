package channels

import (
	"reflect"
	"testing"

	"cchunter/internal/ring"
	"cchunter/internal/sim"
	"cchunter/internal/trace"
)

// TestDriversProduceIdenticalChannels is the step engine's
// differential test: every covert channel run under the coroutine-free
// step driver must be byte-identical — decoded bits, per-bit
// observables, and the full raw event train — to the same run under
// the legacy goroutine reference driver. The two drivers execute the
// identical op stream through the identical engine core, so any
// divergence is a conversion bug in a Stepper state machine.
func TestDriversProduceIdenticalChannels(t *testing.T) {
	type outcome struct {
		decoded []int
		series  []float64
		events  []trace.Event
	}
	run := func(channel string, driver sim.Driver) outcome {
		cfg := sim.TestConfig()
		cfg.Driver = driver
		if channel == "ring" {
			cfg.Ring = ring.DefaultConfig()
		}
		s := sim.MustNew(cfg)
		defer s.Close()
		rec := trace.NewRecorder()
		s.AddListener(rec)
		msg := RandomMessage(12, 11)
		var dur uint64
		var decoded func() []int
		var series func() []float64
		switch channel {
		case "bus":
			c := DefaultBusConfig(msg, 25_000)
			spy := NewBusSpy(c)
			s.Spawn(NewBusTrojan(c), sim.Pin(0))
			s.Spawn(spy, sim.Pin(2))
			dur = uint64(len(msg)+1) * c.slotCycles(s.Geometry())
			decoded, series = spy.Decoded, spy.PerBitLatency
		case "div":
			c := DefaultDivConfig(msg, 25_000)
			spy := NewDivSpy(c)
			s.Spawn(NewDivTrojan(c), sim.Pin(0))
			s.Spawn(spy, sim.Pin(1))
			dur = uint64(len(msg)+1) * c.slotCycles(s.Geometry())
			decoded, series = spy.Decoded, spy.PerBitLatency
		case "cache":
			c := DefaultCacheConfig(msg, 2_000)
			c.SetsUsed = 256
			spy := NewCacheSpy(c)
			s.Spawn(NewCacheTrojan(c), sim.Pin(0))
			s.Spawn(spy, sim.Pin(1))
			dur = uint64(len(msg)+2) * c.slotCycles(s.Geometry())
			decoded, series = spy.Decoded, spy.PerBitRatio
		case "ring":
			c := DefaultRingConfig(msg, 25_000)
			spy := NewRingSpy(c)
			s.Spawn(NewRingTrojan(c), sim.Pin(0))
			s.Spawn(spy, sim.Pin(2))
			dur = uint64(len(msg)+1) * c.slotCycles(s.Geometry())
			decoded, series = spy.Decoded, spy.PerBitSlowFrac
		case "tlb":
			c := DefaultTLBConfig(msg, 25_000)
			spy := NewTLBSpy(c)
			s.Spawn(NewTLBTrojan(c), sim.Pin(0))
			s.Spawn(spy, sim.Pin(1))
			dur = uint64(len(msg)/c.SymbolBits+2) * c.symbolSlot(s.Geometry())
			decoded, series = spy.Decoded, spy.PerSymbolMissFrac
		}
		s.Run(dur)
		return outcome{decoded(), series(), rec.Train().Events()}
	}
	for _, channel := range []string{"bus", "div", "cache", "ring", "tlb"} {
		t.Run(channel, func(t *testing.T) {
			step := run(channel, sim.DriverStep)
			ref := run(channel, sim.DriverGoroutine)
			if !reflect.DeepEqual(step.decoded, ref.decoded) {
				t.Errorf("decoded bits differ: step %v vs goroutine %v",
					step.decoded, ref.decoded)
			}
			if !reflect.DeepEqual(step.series, ref.series) {
				t.Errorf("per-bit series differ between drivers")
			}
			if !reflect.DeepEqual(step.events, ref.events) {
				t.Errorf("event trains differ: step %d events vs goroutine %d",
					len(step.events), len(ref.events))
			}
			if len(step.events) == 0 {
				t.Fatal("no events recorded; differential test is vacuous")
			}
		})
	}
}
