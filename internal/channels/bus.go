package channels

import (
	"cchunter/internal/sim"
	"cchunter/internal/stats"
)

// BusConfig configures the memory bus covert channel.
type BusConfig struct {
	Protocol
	// LockSpacing is the cycle distance between consecutive atomic
	// unaligned accesses during a '1' burst. With the default bus
	// lock occupancy this keeps the bus contended for roughly half of
	// the burst, and puts ~20 lock events into each Δt = 100k-cycle
	// window — the paper's Figure 6a burst bin.
	LockSpacing uint64
	// MaxBurstCycles caps the burst length within a bit slot: at low
	// bandwidths the trojan transmits its conflicts early in the slot
	// and stays dormant for the rest ("a certain number of conflicts
	// ... frequently followed by longer periods of dormancy", §VI-A).
	MaxBurstCycles uint64
	// SamplesPerBit is how many latency samples the spy averages per
	// bit.
	SamplesPerBit int
	// DecisionLatency is the spy's per-sample latency threshold
	// separating contended from uncontended bus state.
	DecisionLatency uint64
	// EvasionNoise is the probability that the trojan camouflages a
	// '0' slot with a burst of random intensity — the §III evasion
	// strategy of "artificially inflating the patterns of random
	// conflicts". The paper's point, reproduced by the evasion
	// experiment: the spy cannot tell camouflage from signal, so
	// reliability collapses long before detection does.
	EvasionNoise float64
}

// DefaultBusConfig returns a paper-shaped bus channel carrying message
// bits at bps bits per second.
func DefaultBusConfig(message []int, bps float64) BusConfig {
	return BusConfig{
		Protocol:        Protocol{Message: message, BPS: bps, Start: 0, Seed: 1},
		LockSpacing:     5_000,
		MaxBurstCycles:  1_000_000,
		SamplesPerBit:   20,
		DecisionLatency: 600,
	}
}

// BusTrojan transmits the message by modulating memory bus contention.
// It is a sim.Stepper: the engine pulls its ops with direct calls; the
// op and RNG-draw order are exactly those of the original blocking
// loop (the evasion draw happens after the slot-start wait).
type BusTrojan struct {
	cfg BusConfig

	rng     *stats.RNG
	slot    uint64
	burst   uint64
	i       int    // slot index
	bit     int    // bit for the current slot
	start   uint64 // current slot start cycle
	spacing uint64 // lock spacing for the current burst
	k       uint64 // lock index within the burst
	pc      int
}

// BusTrojan states.
const (
	btSlot  = iota // decode next bit, wait for its slot
	btGate         // evasion/camouflage decision after the slot wait
	btBurst        // wait for the next lock position
	btLock         // issue the bus lock
)

// NewBusTrojan builds the transmitter.
func NewBusTrojan(cfg BusConfig) *BusTrojan {
	cfg.Protocol.validate()
	if cfg.LockSpacing == 0 || cfg.MaxBurstCycles == 0 {
		panic("channels: bus trojan needs LockSpacing and MaxBurstCycles")
	}
	return &BusTrojan{cfg: cfg}
}

// Name implements sim.Program.
func (t *BusTrojan) Name() string { return "bus-trojan" }

// Run implements sim.Program via the goroutine reference driver.
func (t *BusTrojan) Run(m *sim.Machine) { sim.RunSteps(t, m) }

// Begin implements sim.Stepper.
func (t *BusTrojan) Begin(m *sim.Machine) {
	geo := m.Geometry()
	t.rng = stats.NewRNG(t.cfg.Seed ^ 0xe7a510)
	t.slot = t.cfg.slotCycles(geo)
	t.burst = minU64(t.slot, t.cfg.MaxBurstCycles)
	t.pc = btSlot
}

// Step implements sim.Stepper.
func (t *BusTrojan) Step(prev sim.OpResult) (sim.Op, bool) {
	for {
		switch t.pc {
		case btSlot:
			bit, done := t.cfg.bitAt(t.i)
			if done {
				return sim.Op{}, false
			}
			t.bit = bit
			t.start = t.cfg.Start + uint64(t.i)*t.slot + t.cfg.slotJitter(t.i, t.slot)
			t.pc = btGate
			return sim.Op{Kind: sim.OpWaitUntil, Cycles: t.start}, true

		case btGate:
			t.spacing = t.cfg.dutySpacing(t.cfg.LockSpacing)
			if t.bit == 0 {
				if t.cfg.EvasionNoise <= 0 || t.rng.Float64() >= t.cfg.EvasionNoise {
					t.i++
					t.pc = btSlot // un-contended bus signals '0'
					continue
				}
				// Camouflage: a burst of random (lower) intensity.
				t.spacing = t.cfg.dutySpacing(t.cfg.LockSpacing * uint64(1+t.rng.Intn(3)))
			}
			t.k = 0
			t.pc = btBurst

		case btBurst:
			if t.k*t.spacing < t.burst {
				t.pc = btLock
				return sim.Op{Kind: sim.OpWaitUntil, Cycles: t.start + t.k*t.spacing}, true
			}
			t.i++
			t.pc = btSlot

		case btLock:
			t.k++
			t.pc = btBurst
			return sim.Op{Kind: sim.OpAtomicUnaligned}, true
		}
	}
}

// BusSpy decodes the message from memory access latencies. Like the
// trojan it is a sim.Stepper with the exact op order of the original
// blocking loop.
type BusSpy struct {
	cfg     BusConfig
	decoded []int
	// perBitLatency records the spy's average memory latency for each
	// bit — the series of Figure 2.
	perBitLatency []float64

	m       *sim.Machine
	slot    uint64
	spacing uint64
	probe   uint64
	i       int    // slot index
	k       int    // sample index within the slot
	start   uint64 // current slot start cycle
	total   uint64 // latency accumulator for the slot
	pc      int
}

// BusSpy states.
const (
	bsSlot   = iota // decode slot bounds, close out the previous bit
	bsSample        // wait for the next sample position
	bsLoad          // issue the probing load
	bsAcc           // accumulate the load latency
)

// NewBusSpy builds the receiver.
func NewBusSpy(cfg BusConfig) *BusSpy {
	cfg.Protocol.validate()
	if cfg.SamplesPerBit <= 0 {
		panic("channels: bus spy needs SamplesPerBit")
	}
	return &BusSpy{cfg: cfg}
}

// Name implements sim.Program.
func (s *BusSpy) Name() string { return "bus-spy" }

// Run implements sim.Program via the goroutine reference driver.
func (s *BusSpy) Run(m *sim.Machine) { sim.RunSteps(s, m) }

// Begin implements sim.Stepper.
func (s *BusSpy) Begin(m *sim.Machine) {
	geo := m.Geometry()
	s.m = m
	s.slot = s.cfg.slotCycles(geo)
	burst := minU64(s.slot, s.cfg.MaxBurstCycles)
	s.spacing = burst / uint64(s.cfg.SamplesPerBit)
	if s.spacing == 0 {
		s.spacing = 1
	}
	s.pc = bsSlot
}

// Step implements sim.Stepper.
func (s *BusSpy) Step(prev sim.OpResult) (sim.Op, bool) {
	for {
		switch s.pc {
		case bsSlot:
			if _, done := s.cfg.bitAt(s.i); done {
				return sim.Op{}, false
			}
			s.start = s.cfg.Start + uint64(s.i)*s.slot + s.cfg.slotJitter(s.i, s.slot)
			s.total = 0
			s.k = 0
			s.pc = bsSample

		case bsSample:
			if s.k < s.cfg.SamplesPerBit {
				// Sample a third of the way into each spacing interval so
				// the probes never alias onto the trojan's lock grid.
				s.pc = bsLoad
				return sim.Op{Kind: sim.OpWaitUntil,
					Cycles: s.start + uint64(s.k)*s.spacing + s.spacing/3}, true
			}
			avg := s.total / uint64(s.cfg.SamplesPerBit)
			s.perBitLatency = append(s.perBitLatency, float64(avg))
			if avg > s.cfg.DecisionLatency {
				s.decoded = append(s.decoded, 1)
			} else {
				s.decoded = append(s.decoded, 0)
			}
			s.i++
			s.pc = bsSlot

		case bsLoad:
			// A fresh line address misses the whole hierarchy, so the
			// load's latency exposes the bus state.
			s.probe++
			s.pc = bsAcc
			return sim.Op{Kind: sim.OpLoad, Addr: s.m.PrivateAddr(1<<30 + s.probe)}, true

		case bsAcc:
			s.total += prev.Latency
			s.k++
			s.pc = bsSample
		}
	}
}

// Decoded returns the bits the spy inferred so far.
func (s *BusSpy) Decoded() []int { return s.decoded }

// PerBitLatency returns the spy's average memory latency per bit slot
// (in cycles) — the observable plotted in Figure 2.
func (s *BusSpy) PerBitLatency() []float64 { return s.perBitLatency }
