package channels

import (
	"cchunter/internal/sim"
	"cchunter/internal/stats"
)

// BusConfig configures the memory bus covert channel.
type BusConfig struct {
	Protocol
	// LockSpacing is the cycle distance between consecutive atomic
	// unaligned accesses during a '1' burst. With the default bus
	// lock occupancy this keeps the bus contended for roughly half of
	// the burst, and puts ~20 lock events into each Δt = 100k-cycle
	// window — the paper's Figure 6a burst bin.
	LockSpacing uint64
	// MaxBurstCycles caps the burst length within a bit slot: at low
	// bandwidths the trojan transmits its conflicts early in the slot
	// and stays dormant for the rest ("a certain number of conflicts
	// ... frequently followed by longer periods of dormancy", §VI-A).
	MaxBurstCycles uint64
	// SamplesPerBit is how many latency samples the spy averages per
	// bit.
	SamplesPerBit int
	// DecisionLatency is the spy's per-sample latency threshold
	// separating contended from uncontended bus state.
	DecisionLatency uint64
	// EvasionNoise is the probability that the trojan camouflages a
	// '0' slot with a burst of random intensity — the §III evasion
	// strategy of "artificially inflating the patterns of random
	// conflicts". The paper's point, reproduced by the evasion
	// experiment: the spy cannot tell camouflage from signal, so
	// reliability collapses long before detection does.
	EvasionNoise float64
}

// DefaultBusConfig returns a paper-shaped bus channel carrying message
// bits at bps bits per second.
func DefaultBusConfig(message []int, bps float64) BusConfig {
	return BusConfig{
		Protocol:        Protocol{Message: message, BPS: bps, Start: 0, Seed: 1},
		LockSpacing:     5_000,
		MaxBurstCycles:  1_000_000,
		SamplesPerBit:   20,
		DecisionLatency: 600,
	}
}

// BusTrojan transmits the message by modulating memory bus contention.
type BusTrojan struct {
	cfg BusConfig
}

// NewBusTrojan builds the transmitter.
func NewBusTrojan(cfg BusConfig) *BusTrojan {
	cfg.Protocol.validate()
	if cfg.LockSpacing == 0 || cfg.MaxBurstCycles == 0 {
		panic("channels: bus trojan needs LockSpacing and MaxBurstCycles")
	}
	return &BusTrojan{cfg: cfg}
}

// Name implements sim.Program.
func (t *BusTrojan) Name() string { return "bus-trojan" }

// Run implements sim.Program.
func (t *BusTrojan) Run(m *sim.Machine) {
	geo := m.Geometry()
	rng := stats.NewRNG(t.cfg.Seed ^ 0xe7a510)
	slot := t.cfg.slotCycles(geo)
	burst := minU64(slot, t.cfg.MaxBurstCycles)
	for i := 0; ; i++ {
		bit, done := t.cfg.bitAt(i)
		if done {
			return
		}
		start := t.cfg.Start + uint64(i)*slot
		m.WaitUntil(start)
		spacing := t.cfg.LockSpacing
		if bit == 0 {
			if t.cfg.EvasionNoise <= 0 || rng.Float64() >= t.cfg.EvasionNoise {
				continue // un-contended bus signals '0'
			}
			// Camouflage: a burst of random (lower) intensity.
			spacing *= uint64(1 + rng.Intn(3))
		}
		for k := uint64(0); k*spacing < burst; k++ {
			m.WaitUntil(start + k*spacing)
			m.AtomicUnaligned(0)
		}
	}
}

// BusSpy decodes the message from memory access latencies.
type BusSpy struct {
	cfg     BusConfig
	decoded []int
	// perBitLatency records the spy's average memory latency for each
	// bit — the series of Figure 2.
	perBitLatency []float64
}

// NewBusSpy builds the receiver.
func NewBusSpy(cfg BusConfig) *BusSpy {
	cfg.Protocol.validate()
	if cfg.SamplesPerBit <= 0 {
		panic("channels: bus spy needs SamplesPerBit")
	}
	return &BusSpy{cfg: cfg}
}

// Name implements sim.Program.
func (s *BusSpy) Name() string { return "bus-spy" }

// Run implements sim.Program.
func (s *BusSpy) Run(m *sim.Machine) {
	geo := m.Geometry()
	slot := s.cfg.slotCycles(geo)
	burst := minU64(slot, s.cfg.MaxBurstCycles)
	spacing := burst / uint64(s.cfg.SamplesPerBit)
	if spacing == 0 {
		spacing = 1
	}
	probe := uint64(0)
	for i := 0; ; i++ {
		if _, done := s.cfg.bitAt(i); done {
			return
		}
		start := s.cfg.Start + uint64(i)*slot
		var total uint64
		for k := 0; k < s.cfg.SamplesPerBit; k++ {
			// Sample a third of the way into each spacing interval so
			// the probes never alias onto the trojan's lock grid.
			m.WaitUntil(start + uint64(k)*spacing + spacing/3)
			// A fresh line address misses the whole hierarchy, so the
			// load's latency exposes the bus state.
			probe++
			total += m.Load(m.PrivateAddr(1<<30 + probe))
		}
		avg := total / uint64(s.cfg.SamplesPerBit)
		s.perBitLatency = append(s.perBitLatency, float64(avg))
		if avg > s.cfg.DecisionLatency {
			s.decoded = append(s.decoded, 1)
		} else {
			s.decoded = append(s.decoded, 0)
		}
	}
}

// Decoded returns the bits the spy inferred so far.
func (s *BusSpy) Decoded() []int { return s.decoded }

// PerBitLatency returns the spy's average memory latency per bit slot
// (in cycles) — the observable plotted in Figure 2.
func (s *BusSpy) PerBitLatency() []float64 { return s.perBitLatency }
