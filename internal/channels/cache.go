package channels

import (
	"cchunter/internal/sim"
	"cchunter/internal/stats"
)

// CacheConfig configures the shared-L2 covert channel (Xu et al.).
// Trojan and spy must share an L2, i.e. run as hyperthreads of one
// core in the default machine.
type CacheConfig struct {
	Protocol
	// SetsUsed is the total number of cache sets carrying the channel,
	// split evenly between G1 and G0 ("a total of 512 cache sets were
	// used in G1 and G0"). It must leave most of the cache untouched
	// or the channel's evictions stop being premature (see DESIGN.md).
	SetsUsed int
	// RoundsPerBit is how many prime/probe rounds reinforce each bit;
	// more rounds improve reliability against noise.
	RoundsPerBit int
	// MaxBurstCycles caps the per-bit active phase, as for the other
	// channels.
	MaxBurstCycles uint64
	// ReserveLowSets excludes the lowest-numbered cache sets from the
	// channel. Real channels calibrate their set groups during the
	// synchronization phase and avoid sets that are persistently hot
	// (low sets host the hottest shared data in practice): a group
	// that other tenants keep replacing cannot carry bits reliably.
	ReserveLowSets int
}

// DefaultCacheConfig returns a paper-shaped cache channel: 512 sets,
// one round per bit.
func DefaultCacheConfig(message []int, bps float64) CacheConfig {
	return CacheConfig{
		Protocol:       Protocol{Message: message, BPS: bps, Start: 0, Seed: 1},
		SetsUsed:       512,
		RoundsPerBit:   1,
		MaxBurstCycles: 2_500_000,
		ReserveLowSets: 64,
	}
}

// selectSets returns the G1 and G0 set groups. Both endpoints derive
// them identically from the protocol seed — the paper's "dynamically
// determined group of cache sets ... chosen during the covert channel
// synchronization phase".
func selectSets(cfg CacheConfig, geo sim.Geometry) (g1, g0 []uint32) {
	usable := geo.L2Sets - cfg.ReserveLowSets
	if cfg.SetsUsed < 2 || cfg.SetsUsed > usable {
		panic("channels: SetsUsed out of range")
	}
	perm := stats.NewRNG(cfg.Seed).Perm(usable)
	half := cfg.SetsUsed / 2
	g1 = make([]uint32, half)
	g0 = make([]uint32, half)
	for i := 0; i < half; i++ {
		g1[i] = uint32(perm[i] + cfg.ReserveLowSets)
		g0[i] = uint32(perm[half+i] + cfg.ReserveLowSets)
	}
	return g1, g0
}

// roundLen returns the length of one prime/probe round in cycles.
func (cfg CacheConfig) roundLen(slot uint64) uint64 {
	burst := minU64(slot, cfg.MaxBurstCycles)
	return burst / uint64(cfg.RoundsPerBit)
}

// CacheTrojan transmits by replacing the blocks of G1 (for '1') or G0
// (for '0'). It is a sim.Stepper with the exact op order of the
// original blocking loop.
type CacheTrojan struct {
	cfg CacheConfig

	m      *sim.Machine
	g1, g0 []uint32
	slot   uint64
	round  uint64
	addrs  []uint64
	i      int      // slot index
	r      int      // round index within the slot
	setIdx int      // set index within the round
	group  []uint32 // group carrying the current bit
	start  uint64   // current slot start cycle
	pc     int
}

// CacheTrojan states.
const (
	ctSlot  = iota // decode next bit, select its group
	ctRound        // wait for the next prime round
	ctSet          // replace one set's blocks
)

// NewCacheTrojan builds the transmitter.
func NewCacheTrojan(cfg CacheConfig) *CacheTrojan {
	cfg.Protocol.validate()
	if cfg.RoundsPerBit <= 0 || cfg.MaxBurstCycles == 0 {
		panic("channels: cache trojan needs RoundsPerBit and MaxBurstCycles")
	}
	return &CacheTrojan{cfg: cfg}
}

// Name implements sim.Program.
func (t *CacheTrojan) Name() string { return "cache-trojan" }

// Run implements sim.Program via the goroutine reference driver.
func (t *CacheTrojan) Run(m *sim.Machine) { sim.RunSteps(t, m) }

// Begin implements sim.Stepper.
func (t *CacheTrojan) Begin(m *sim.Machine) {
	geo := m.Geometry()
	t.m = m
	t.g1, t.g0 = selectSets(t.cfg, geo)
	t.slot = t.cfg.slotCycles(geo)
	t.round = t.cfg.roundLen(t.slot)
	t.addrs = make([]uint64, geo.L2Ways)
	t.pc = ctSlot
}

// Step implements sim.Stepper.
func (t *CacheTrojan) Step(prev sim.OpResult) (sim.Op, bool) {
	for {
		switch t.pc {
		case ctSlot:
			bit, done := t.cfg.bitAt(t.i)
			if done {
				return sim.Op{}, false
			}
			// Slot 0 is the spy's warm-up prime; transmission starts at
			// slot 1.
			t.start = t.cfg.Start + uint64(t.i+1)*t.slot + t.cfg.slotJitter(t.i, t.slot)
			t.group = t.g1
			if bit == 0 {
				t.group = t.g0
			}
			t.r = 0
			t.pc = ctRound

		case ctRound:
			if t.r < t.cfg.RoundsPerBit {
				t.setIdx = 0
				t.pc = ctSet
				return sim.Op{Kind: sim.OpWaitUntil, Cycles: t.start + uint64(t.r)*t.round}, true
			}
			t.i++
			t.pc = ctSlot

		case ctSet:
			for t.setIdx < len(t.group) {
				// Amplitude duty cycle: a keyed (1-DutyFrac) share of the
				// set primes is skipped, thinning the conflict train and
				// varying the events-per-round count the oscillation
				// detector locks onto.
				if t.cfg.dutySkip(t.i, t.r*len(t.group)+t.setIdx) {
					t.setIdx++
					continue
				}
				set := t.group[t.setIdx]
				for w := range t.addrs {
					t.addrs[w] = t.m.L2AddrForSet(set, w)
				}
				t.setIdx++
				return sim.Op{Kind: sim.OpLoadN, Addrs: t.addrs}, true
			}
			t.r++
			t.pc = ctRound
		}
	}
}

// CacheSpy decodes by probing both groups and comparing access times.
// It is a sim.Stepper: probing a group is a sub-machine (csProbe*)
// that accumulates each LoadN's latency and then jumps to the state
// stored in afterProbe, preserving the exact op order of the original
// blocking loop.
type CacheSpy struct {
	cfg     CacheConfig
	decoded []int
	// perBitRatio is the spy's G1/G0 access-time ratio per bit — the
	// Figure 7 series: >1 decodes '1', <1 decodes '0'.
	perBitRatio []float64

	m      *sim.Machine
	g1, g0 []uint32
	slot   uint64
	round  uint64
	addrs  []uint64
	i      int    // slot index
	r      int    // round index within the slot
	start  uint64 // current slot start cycle
	lat1   uint64 // accumulated G1 probe latency for the bit
	lat0   uint64 // accumulated G0 probe latency for the bit

	group      []uint32 // group the probe sub-machine is walking
	setIdx     int      // probe position within group
	probeTotal uint64   // probe sub-machine latency accumulator
	afterProbe int      // state to resume once the probe completes
	pc         int
}

// CacheSpy states.
const (
	csWarm      = iota // wait for slot 0, then prime both groups
	csWarmG1           // warm-up: first group
	csWarmG0           // warm-up: second group
	csSlot             // decode slot bounds / close out the previous bit
	csRound            // wait halfway into the next probe round
	csProbeG1          // start the G1 probe
	csProbeG0          // bank G1, start the G0 probe
	csRoundDone        // bank G0, advance the round
	csProbeLoad        // probe sub-machine: issue one set's LoadN
	csProbeAcc         // probe sub-machine: accumulate its latency
)

// NewCacheSpy builds the receiver.
func NewCacheSpy(cfg CacheConfig) *CacheSpy {
	cfg.Protocol.validate()
	if cfg.RoundsPerBit <= 0 || cfg.MaxBurstCycles == 0 {
		panic("channels: cache spy needs RoundsPerBit and MaxBurstCycles")
	}
	return &CacheSpy{cfg: cfg}
}

// Name implements sim.Program.
func (s *CacheSpy) Name() string { return "cache-spy" }

// Run implements sim.Program via the goroutine reference driver.
func (s *CacheSpy) Run(m *sim.Machine) { sim.RunSteps(s, m) }

// Begin implements sim.Stepper.
func (s *CacheSpy) Begin(m *sim.Machine) {
	geo := m.Geometry()
	s.m = m
	s.g1, s.g0 = selectSets(s.cfg, geo)
	s.slot = s.cfg.slotCycles(geo)
	s.round = s.cfg.roundLen(s.slot)
	s.addrs = make([]uint64, geo.L2Ways)
	s.pc = csWarm
}

// startProbe arms the probe sub-machine over group, resuming at
// `after` when every set has been touched.
func (s *CacheSpy) startProbe(group []uint32, after int) {
	s.group = group
	s.setIdx = 0
	s.probeTotal = 0
	s.afterProbe = after
	s.pc = csProbeLoad
}

// Step implements sim.Stepper.
func (s *CacheSpy) Step(prev sim.OpResult) (sim.Op, bool) {
	for {
		switch s.pc {
		case csWarm:
			// Warm-up: prime both groups during slot 0.
			s.pc = csWarmG1
			return sim.Op{Kind: sim.OpWaitUntil, Cycles: s.cfg.Start}, true

		case csWarmG1:
			s.startProbe(s.g1, csWarmG0)

		case csWarmG0:
			s.startProbe(s.g0, csSlot)

		case csSlot:
			if _, done := s.cfg.bitAt(s.i); done {
				return sim.Op{}, false
			}
			s.start = s.cfg.Start + uint64(s.i+1)*s.slot + s.cfg.slotJitter(s.i, s.slot)
			s.lat1, s.lat0 = 0, 0
			s.r = 0
			s.pc = csRound

		case csRound:
			if s.r < s.cfg.RoundsPerBit {
				// Probe halfway through each round, after the trojan's
				// replacements.
				s.pc = csProbeG1
				return sim.Op{Kind: sim.OpWaitUntil,
					Cycles: s.start + uint64(s.r)*s.round + s.round/2}, true
			}
			ratio := float64(s.lat1) / float64(s.lat0)
			s.perBitRatio = append(s.perBitRatio, ratio)
			if ratio > 1 {
				s.decoded = append(s.decoded, 1)
			} else {
				s.decoded = append(s.decoded, 0)
			}
			s.i++
			s.pc = csSlot

		case csProbeG1:
			s.startProbe(s.g1, csProbeG0)

		case csProbeG0:
			s.lat1 += s.probeTotal
			s.startProbe(s.g0, csRoundDone)

		case csRoundDone:
			s.lat0 += s.probeTotal
			s.r++
			s.pc = csRound

		case csProbeLoad:
			if s.setIdx < len(s.group) {
				set := s.group[s.setIdx]
				for w := range s.addrs {
					s.addrs[w] = s.m.L2AddrForSet(set, w)
				}
				s.setIdx++
				s.pc = csProbeAcc
				return sim.Op{Kind: sim.OpLoadN, Addrs: s.addrs}, true
			}
			s.pc = s.afterProbe

		case csProbeAcc:
			s.probeTotal += prev.Latency
			s.pc = csProbeLoad
		}
	}
}

// Decoded returns the bits the spy inferred so far.
func (s *CacheSpy) Decoded() []int { return s.decoded }

// PerBitRatio returns the spy's G1/G0 access-time ratio per bit — the
// observable of Figure 7.
func (s *CacheSpy) PerBitRatio() []float64 { return s.perBitRatio }
