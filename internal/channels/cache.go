package channels

import (
	"cchunter/internal/sim"
	"cchunter/internal/stats"
)

// CacheConfig configures the shared-L2 covert channel (Xu et al.).
// Trojan and spy must share an L2, i.e. run as hyperthreads of one
// core in the default machine.
type CacheConfig struct {
	Protocol
	// SetsUsed is the total number of cache sets carrying the channel,
	// split evenly between G1 and G0 ("a total of 512 cache sets were
	// used in G1 and G0"). It must leave most of the cache untouched
	// or the channel's evictions stop being premature (see DESIGN.md).
	SetsUsed int
	// RoundsPerBit is how many prime/probe rounds reinforce each bit;
	// more rounds improve reliability against noise.
	RoundsPerBit int
	// MaxBurstCycles caps the per-bit active phase, as for the other
	// channels.
	MaxBurstCycles uint64
	// ReserveLowSets excludes the lowest-numbered cache sets from the
	// channel. Real channels calibrate their set groups during the
	// synchronization phase and avoid sets that are persistently hot
	// (low sets host the hottest shared data in practice): a group
	// that other tenants keep replacing cannot carry bits reliably.
	ReserveLowSets int
}

// DefaultCacheConfig returns a paper-shaped cache channel: 512 sets,
// one round per bit.
func DefaultCacheConfig(message []int, bps float64) CacheConfig {
	return CacheConfig{
		Protocol:       Protocol{Message: message, BPS: bps, Start: 0, Seed: 1},
		SetsUsed:       512,
		RoundsPerBit:   1,
		MaxBurstCycles: 2_500_000,
		ReserveLowSets: 64,
	}
}

// selectSets returns the G1 and G0 set groups. Both endpoints derive
// them identically from the protocol seed — the paper's "dynamically
// determined group of cache sets ... chosen during the covert channel
// synchronization phase".
func selectSets(cfg CacheConfig, geo sim.Geometry) (g1, g0 []uint32) {
	usable := geo.L2Sets - cfg.ReserveLowSets
	if cfg.SetsUsed < 2 || cfg.SetsUsed > usable {
		panic("channels: SetsUsed out of range")
	}
	perm := stats.NewRNG(cfg.Seed).Perm(usable)
	half := cfg.SetsUsed / 2
	g1 = make([]uint32, half)
	g0 = make([]uint32, half)
	for i := 0; i < half; i++ {
		g1[i] = uint32(perm[i] + cfg.ReserveLowSets)
		g0[i] = uint32(perm[half+i] + cfg.ReserveLowSets)
	}
	return g1, g0
}

// roundLen returns the length of one prime/probe round in cycles.
func (cfg CacheConfig) roundLen(slot uint64) uint64 {
	burst := minU64(slot, cfg.MaxBurstCycles)
	return burst / uint64(cfg.RoundsPerBit)
}

// CacheTrojan transmits by replacing the blocks of G1 (for '1') or G0
// (for '0').
type CacheTrojan struct {
	cfg CacheConfig
}

// NewCacheTrojan builds the transmitter.
func NewCacheTrojan(cfg CacheConfig) *CacheTrojan {
	cfg.Protocol.validate()
	if cfg.RoundsPerBit <= 0 || cfg.MaxBurstCycles == 0 {
		panic("channels: cache trojan needs RoundsPerBit and MaxBurstCycles")
	}
	return &CacheTrojan{cfg: cfg}
}

// Name implements sim.Program.
func (t *CacheTrojan) Name() string { return "cache-trojan" }

// Run implements sim.Program.
func (t *CacheTrojan) Run(m *sim.Machine) {
	geo := m.Geometry()
	g1, g0 := selectSets(t.cfg, geo)
	slot := t.cfg.slotCycles(geo)
	round := t.cfg.roundLen(slot)
	addrs := make([]uint64, geo.L2Ways)
	// Slot 0 is the spy's warm-up prime; transmission starts at slot 1.
	for i := 0; ; i++ {
		bit, done := t.cfg.bitAt(i)
		if done {
			return
		}
		start := t.cfg.Start + uint64(i+1)*slot
		group := g1
		if bit == 0 {
			group = g0
		}
		for r := 0; r < t.cfg.RoundsPerBit; r++ {
			m.WaitUntil(start + uint64(r)*round)
			for _, set := range group {
				for w := range addrs {
					addrs[w] = m.L2AddrForSet(set, w)
				}
				m.LoadN(addrs)
			}
		}
	}
}

// CacheSpy decodes by probing both groups and comparing access times.
type CacheSpy struct {
	cfg     CacheConfig
	decoded []int
	// perBitRatio is the spy's G1/G0 access-time ratio per bit — the
	// Figure 7 series: >1 decodes '1', <1 decodes '0'.
	perBitRatio []float64
}

// NewCacheSpy builds the receiver.
func NewCacheSpy(cfg CacheConfig) *CacheSpy {
	cfg.Protocol.validate()
	if cfg.RoundsPerBit <= 0 || cfg.MaxBurstCycles == 0 {
		panic("channels: cache spy needs RoundsPerBit and MaxBurstCycles")
	}
	return &CacheSpy{cfg: cfg}
}

// Name implements sim.Program.
func (s *CacheSpy) Name() string { return "cache-spy" }

// Run implements sim.Program.
func (s *CacheSpy) Run(m *sim.Machine) {
	geo := m.Geometry()
	g1, g0 := selectSets(s.cfg, geo)
	slot := s.cfg.slotCycles(geo)
	round := s.cfg.roundLen(slot)
	addrs := make([]uint64, geo.L2Ways)
	probe := func(group []uint32) uint64 {
		var total uint64
		for _, set := range group {
			for w := range addrs {
				addrs[w] = m.L2AddrForSet(set, w)
			}
			total += m.LoadN(addrs)
		}
		return total
	}
	// Warm-up: prime both groups during slot 0.
	m.WaitUntil(s.cfg.Start)
	probe(g1)
	probe(g0)
	for i := 0; ; i++ {
		if _, done := s.cfg.bitAt(i); done {
			return
		}
		start := s.cfg.Start + uint64(i+1)*slot
		var lat1, lat0 uint64
		for r := 0; r < s.cfg.RoundsPerBit; r++ {
			// Probe halfway through each round, after the trojan's
			// replacements.
			m.WaitUntil(start + uint64(r)*round + round/2)
			lat1 += probe(g1)
			lat0 += probe(g0)
		}
		ratio := float64(lat1) / float64(lat0)
		s.perBitRatio = append(s.perBitRatio, ratio)
		if ratio > 1 {
			s.decoded = append(s.decoded, 1)
		} else {
			s.decoded = append(s.decoded, 0)
		}
	}
}

// Decoded returns the bits the spy inferred so far.
func (s *CacheSpy) Decoded() []int { return s.decoded }

// PerBitRatio returns the spy's G1/G0 access-time ratio per bit — the
// observable of Figure 7.
func (s *CacheSpy) PerBitRatio() []float64 { return s.perBitRatio }
