package conflict

import (
	"testing"

	"cchunter/internal/stats"
)

// flat_test.go pins the flat, index-addressed trackers against
// map-based builds of the same algorithms, observation by
// observation, on adversarial random streams. The streams do not
// mirror any cache geometry on purpose: the trackers must be exact
// for arbitrary Observation sequences, not just those a well-formed
// cache produces.

// randomStream builds an adversarial observation stream: a working
// set far larger than any tracker table, hits on never-seen lines,
// evictions of lines that may or may not be resident, and skewed
// reuse so move-to-front and backward-shift deletion paths all fire.
func randomStream(seed uint64, n, lines int) []Observation {
	r := stats.NewRNG(seed)
	out := make([]Observation, n)
	for i := range out {
		o := Observation{
			LineAddr: uint64(r.Intn(lines)),
			Hit:      r.Intn(3) == 0,
		}
		if !o.Hit && r.Intn(2) == 0 {
			o.Evicted = true
			o.EvictedLine = uint64(r.Intn(lines))
		}
		// Skew: revisit a small hot set often so stacks churn.
		if r.Intn(4) == 0 {
			o.LineAddr = uint64(r.Intn(8))
		}
		out[i] = o
	}
	return out
}

func TestIdealMatchesReference(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 8, 64, 257} {
		flat := MustNewIdeal(capacity)
		ref := MustNewIdealReference(capacity)
		for i, o := range randomStream(uint64(capacity), 20000, 4*capacity+16) {
			got, want := flat.Observe(o), ref.Observe(o)
			if got != want {
				t.Fatalf("capacity %d: observation %d: flat=%v reference=%v", capacity, i, got, want)
			}
			if flat.StackSize() != ref.StackSize() {
				t.Fatalf("capacity %d: observation %d: stack size flat=%d reference=%d",
					capacity, i, flat.StackSize(), ref.StackSize())
			}
		}
		if flat.Conflicts() != ref.Conflicts() {
			t.Errorf("capacity %d: conflicts flat=%d reference=%d", capacity, flat.Conflicts(), ref.Conflicts())
		}
	}
}

func TestIdealMatchesReferenceAfterReset(t *testing.T) {
	flat, ref := MustNewIdeal(16), MustNewIdealReference(16)
	for _, o := range randomStream(1, 2000, 64) {
		flat.Observe(o)
		ref.Observe(o)
	}
	flat.Reset()
	ref.Reset()
	for i, o := range randomStream(2, 2000, 64) {
		if got, want := flat.Observe(o), ref.Observe(o); got != want {
			t.Fatalf("post-reset observation %d: flat=%v reference=%v", i, got, want)
		}
	}
}

// generationalOracle replays the flat tracker's algorithm over a map
// residency table (the pre-rewrite representation), sharing nothing
// with the flat implementation but the Bloom filters' geometry.
type generationalOracle struct {
	g         *Generational
	resident  map[uint64]uint8
	current   int
	accessed  int
	conflicts uint64
}

func newGenerationalOracle(cfg GenerationalConfig) *generationalOracle {
	return &generationalOracle{
		g:        MustNewGenerational(cfg),
		resident: map[uint64]uint8{},
	}
}

func (o *generationalOracle) observe(ob Observation) bool {
	g := o.g
	conflict := false
	if !ob.Hit {
		for _, f := range g.filters {
			if f.Contains(ob.LineAddr) {
				conflict = true
				o.conflicts++
				break
			}
		}
	}
	if ob.Evicted {
		if mask, ok := o.resident[ob.EvictedLine]; ok {
			idx := o.latestGeneration(mask)
			g.filters[idx].Add(ob.EvictedLine)
			delete(o.resident, ob.EvictedLine)
		}
	}
	bit := uint8(1) << uint(o.current)
	mask := o.resident[ob.LineAddr]
	if mask&bit == 0 {
		o.resident[ob.LineAddr] = mask | bit
		o.accessed++
		if o.accessed >= g.threshold {
			oldest := (o.current + 1) % numGenerations
			g.filters[oldest].Clear()
			keep := ^(uint8(1) << uint(oldest))
			for line, m := range o.resident {
				if nm := m & keep; nm != m {
					if nm == 0 {
						delete(o.resident, line)
					} else {
						o.resident[line] = nm
					}
				}
			}
			o.current = oldest
			o.accessed = 0
		}
	}
	return conflict
}

func (o *generationalOracle) latestGeneration(mask uint8) int {
	for age := 0; age < numGenerations; age++ {
		idx := (o.current - age + numGenerations) % numGenerations
		if mask&(1<<uint(idx)) != 0 {
			return idx
		}
	}
	return o.current
}

func TestGenerationalMatchesMapOracle(t *testing.T) {
	for _, blocks := range []int{1, 3, 8, 64, 512} {
		cfg := GenerationalConfig{TotalBlocks: blocks, BloomBitsPerGen: 4096}
		flat := MustNewGenerational(cfg)
		oracle := newGenerationalOracle(cfg)
		// The oracle's filters belong to its inner tracker; keep them in
		// lockstep by feeding it the same stream.
		for i, ob := range randomStream(uint64(blocks)+7, 20000, 4*blocks+32) {
			got, want := flat.Observe(ob), oracle.observe(ob)
			if got != want {
				t.Fatalf("blocks %d: observation %d: flat=%v oracle=%v", blocks, i, got, want)
			}
		}
		if flat.Conflicts() != oracle.conflicts {
			t.Errorf("blocks %d: conflicts flat=%d oracle=%d", blocks, flat.Conflicts(), oracle.conflicts)
		}
	}
}

// TestGenerationalResidencyBound pins the sizing invariant the flat
// table relies on: live residency entries never exceed 4×threshold,
// even on adversarial streams detached from any cache geometry.
func TestGenerationalResidencyBound(t *testing.T) {
	for _, blocks := range []int{1, 8, 64} {
		g := MustNewGenerational(GenerationalConfig{TotalBlocks: blocks})
		bound := numGenerations * g.threshold
		for i, ob := range randomStream(uint64(blocks)+99, 30000, 1000) {
			g.Observe(ob)
			live := 0
			for _, m := range g.masks {
				if m != 0 {
					live++
				}
			}
			if live > bound {
				t.Fatalf("blocks %d: observation %d: %d live entries exceed bound %d", blocks, i, live, bound)
			}
		}
	}
}

func TestIdealObserveDoesNotAllocate(t *testing.T) {
	tr := MustNewIdeal(64)
	stream := randomStream(3, 1024, 256)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Observe(stream[i%len(stream)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Ideal.Observe allocates %.1f objects per call, want 0", allocs)
	}
}

func TestGenerationalObserveDoesNotAllocate(t *testing.T) {
	g := MustNewGenerational(GenerationalConfig{TotalBlocks: 64})
	stream := randomStream(4, 1024, 256)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		g.Observe(stream[i%len(stream)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Generational.Observe allocates %.1f objects per call, want 0", allocs)
	}
}
