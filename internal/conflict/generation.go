package conflict

import (
	"fmt"

	"cchunter/internal/bloom"
)

// numGenerations is fixed at four by the paper's design: four
// generation bits per cache block and four Bloom filters.
const numGenerations = 4

// Generational is the paper's practical conflict-miss tracker
// (Figure 9). It approximates the ideal LRU stack with four block
// generations ordered by age:
//
//   - every resident block carries four generation bits recording the
//     generations in which it was accessed; the youngest bit is set on
//     every access;
//   - a new generation starts whenever the number of blocks touched in
//     the current generation reaches T = totalBlocks/4 (~25% of an
//     ideal LRU stack);
//   - on replacement, the evicted tag is inserted into the Bloom
//     filter of the latest generation in which the block was accessed
//     ("remember its premature removal");
//   - an incoming miss whose tag hits any live Bloom filter is a
//     conflict miss — the block was evicted before the cache cycled
//     through its full capacity;
//   - starting a fifth generation discards the oldest: its Bloom
//     filter and its metadata bit column are flash-cleared.
type Generational struct {
	totalBlocks int
	threshold   int
	bitsPerGen  int
	hashes      int

	filters [numGenerations]*bloom.Filter
	// resident maps a resident line address to its generation bit
	// mask. In hardware these bits live in the cache block metadata;
	// keeping them here keeps the cache model oblivious to tracking.
	resident map[uint64]uint8
	current  int // index of the youngest generation
	accessed int // blocks touched in the current generation

	conflicts   uint64
	generations uint64 // generation turnovers, for stats/tests
}

// GenerationalConfig sizes the practical tracker.
type GenerationalConfig struct {
	// TotalBlocks is the tracked cache's block count (N).
	TotalBlocks int
	// BloomBitsPerGen is the size of each generation's Bloom filter in
	// bits. The paper provisions 4×N bits across 4 filters, i.e. N
	// bits each; 0 selects that default.
	BloomBitsPerGen int
	// Hashes is the number of Bloom hash functions (default 3, per
	// the paper's "three-hash bloom filter").
	Hashes int
}

// NewGenerational builds the practical tracker.
func NewGenerational(cfg GenerationalConfig) (*Generational, error) {
	if cfg.TotalBlocks <= 0 {
		return nil, fmt.Errorf("%w: TotalBlocks %d must be positive", ErrBadConfig, cfg.TotalBlocks)
	}
	if cfg.BloomBitsPerGen < 0 {
		return nil, fmt.Errorf("%w: BloomBitsPerGen %d negative", ErrBadConfig, cfg.BloomBitsPerGen)
	}
	if cfg.Hashes < 0 {
		return nil, fmt.Errorf("%w: Hashes %d negative", ErrBadConfig, cfg.Hashes)
	}
	if cfg.BloomBitsPerGen == 0 {
		cfg.BloomBitsPerGen = cfg.TotalBlocks
	}
	if cfg.Hashes == 0 {
		cfg.Hashes = 3
	}
	g := &Generational{
		totalBlocks: cfg.TotalBlocks,
		threshold:   cfg.TotalBlocks / numGenerations,
		bitsPerGen:  cfg.BloomBitsPerGen,
		hashes:      cfg.Hashes,
		resident:    make(map[uint64]uint8, cfg.TotalBlocks),
	}
	if g.threshold < 1 {
		g.threshold = 1
	}
	for i := range g.filters {
		// Parameters were validated above; a failure here is a bug.
		g.filters[i] = bloom.MustNew(cfg.BloomBitsPerGen, cfg.Hashes)
	}
	return g, nil
}

// MustNewGenerational is NewGenerational for configurations known to
// be valid; it panics on error.
func MustNewGenerational(cfg GenerationalConfig) *Generational {
	g, err := NewGenerational(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Name implements Tracker.
func (g *Generational) Name() string { return "generation-bloom" }

// Reset implements Tracker.
func (g *Generational) Reset() {
	for _, f := range g.filters {
		f.Clear()
	}
	g.resident = make(map[uint64]uint8, g.totalBlocks)
	g.current = 0
	g.accessed = 0
	g.conflicts = 0
	g.generations = 0
}

// Observe implements Tracker.
func (g *Generational) Observe(o Observation) bool {
	conflict := false
	if !o.Hit {
		// Check whether the incoming tag was recently prematurely
		// evicted: a hit in any generation's Bloom filter means the
		// block was accessed in that generation but replaced to make
		// room before the cache cycled through full capacity.
		for _, f := range g.filters {
			if f.Contains(o.LineAddr) {
				conflict = true
				g.conflicts++
				break
			}
		}
	}
	if o.Evicted {
		// Record the displaced tag in the Bloom filter of the latest
		// generation in which it was accessed.
		if mask, ok := g.resident[o.EvictedLine]; ok {
			g.filters[g.latestGeneration(mask)].Add(o.EvictedLine)
			delete(g.resident, o.EvictedLine)
		}
	}
	// Mark the accessed block in the current generation (emulating
	// placement at the top of the LRU stack).
	bit := uint8(1) << uint(g.current)
	mask := g.resident[o.LineAddr]
	if mask&bit == 0 {
		g.resident[o.LineAddr] = mask | bit
		g.accessed++
		if g.accessed >= g.threshold {
			g.advanceGeneration()
		}
	}
	return conflict
}

// latestGeneration returns the index of the youngest generation whose
// bit is set in mask, searching from the current generation backwards
// through age order.
func (g *Generational) latestGeneration(mask uint8) int {
	for age := 0; age < numGenerations; age++ {
		idx := (g.current - age + numGenerations) % numGenerations
		if mask&(1<<uint(idx)) != 0 {
			return idx
		}
	}
	// A resident block always has at least one bit set (set on
	// install); defensively attribute to the current generation.
	return g.current
}

// advanceGeneration discards the oldest generation and makes its slot
// the new youngest, flash-clearing its Bloom filter and its bit column
// in the resident metadata.
func (g *Generational) advanceGeneration() {
	oldest := (g.current + 1) % numGenerations
	g.filters[oldest].Clear()
	clear := ^(uint8(1) << uint(oldest))
	for line, mask := range g.resident {
		if nm := mask & clear; nm != mask {
			if nm == 0 {
				// The block was only ever touched in the discarded
				// generation; it falls off the bottom of the stack.
				delete(g.resident, line)
			} else {
				g.resident[line] = nm
			}
		}
	}
	g.current = oldest
	g.accessed = 0
	g.generations++
}

// Conflicts returns the number of conflict misses detected.
func (g *Generational) Conflicts() uint64 { return g.conflicts }

// Generations returns how many generation turnovers have happened.
func (g *Generational) Generations() uint64 { return g.generations }

// HardwareCost reports the tracker's storage budget: Bloom filter bits
// plus per-block metadata bits (4 generation bits + 3 owner-context
// bits, per §V-A), used by the auditor's Table I model.
func (g *Generational) HardwareCost() (bloomBits, metadataBits int) {
	return numGenerations * g.bitsPerGen, g.totalBlocks * (numGenerations + 3)
}
