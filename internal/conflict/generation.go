package conflict

import (
	"fmt"

	"cchunter/internal/bloom"
)

// numGenerations is fixed at four by the paper's design: four
// generation bits per cache block and four Bloom filters.
const numGenerations = 4

// Generational is the paper's practical conflict-miss tracker
// (Figure 9). It approximates the ideal LRU stack with four block
// generations ordered by age:
//
//   - every resident block carries four generation bits recording the
//     generations in which it was accessed; the youngest bit is set on
//     every access;
//   - a new generation starts whenever the number of blocks touched in
//     the current generation reaches T = totalBlocks/4 (~25% of an
//     ideal LRU stack);
//   - on replacement, the evicted tag is inserted into the Bloom
//     filter of the latest generation in which the block was accessed
//     ("remember its premature removal");
//   - an incoming miss whose tag hits any live Bloom filter is a
//     conflict miss — the block was evicted before the cache cycled
//     through its full capacity;
//   - starting a fifth generation discards the oldest: its Bloom
//     filter and its metadata bit column are flash-cleared.
type Generational struct {
	totalBlocks int
	threshold   int
	bitsPerGen  int
	hashes      int

	filters [numGenerations]*bloom.Filter
	// probes is the scratch for the per-access Bloom probe positions.
	// All four filters share one geometry, so an incoming tag is
	// hashed once and the same positions are checked in each — the
	// software analogue of the hardware design's shared hash trees.
	probes []uint64

	// Flat residency table, the software stand-in for the per-block
	// generation-bit columns of the hardware design (where the bits
	// live in the cache block metadata, i.e. one packed array keyed by
	// (set, way)). The tracker interface never sees way placement and
	// the tests feed it streams detached from any cache geometry, so
	// the table is keyed by line address instead: open addressing with
	// linear probing and backward-shift deletion over keys/masks.
	// masks[i] == 0 marks an empty slot — a resident entry always has
	// at least one generation bit set. Live entries are bounded by
	// 4×threshold (each of the four live generations marks at most
	// threshold blocks), so the table is sized once at construction
	// and Observe never allocates.
	keys  []uint64
	masks []uint8
	tmask uint64

	// sweep buffers the lines to drop while advanceGeneration scans
	// the table, so deletions do not shift entries under the scan.
	sweep []uint64

	current  int // index of the youngest generation
	accessed int // blocks touched in the current generation

	conflicts   uint64
	generations uint64 // generation turnovers, for stats/tests
}

// GenerationalConfig sizes the practical tracker.
type GenerationalConfig struct {
	// TotalBlocks is the tracked cache's block count (N).
	TotalBlocks int
	// BloomBitsPerGen is the size of each generation's Bloom filter in
	// bits. The paper provisions 4×N bits across 4 filters, i.e. N
	// bits each; 0 selects that default.
	BloomBitsPerGen int
	// Hashes is the number of Bloom hash functions (default 3, per
	// the paper's "three-hash bloom filter").
	Hashes int
}

// NewGenerational builds the practical tracker.
func NewGenerational(cfg GenerationalConfig) (*Generational, error) {
	if cfg.TotalBlocks <= 0 {
		return nil, fmt.Errorf("%w: TotalBlocks %d must be positive", ErrBadConfig, cfg.TotalBlocks)
	}
	if cfg.BloomBitsPerGen < 0 {
		return nil, fmt.Errorf("%w: BloomBitsPerGen %d negative", ErrBadConfig, cfg.BloomBitsPerGen)
	}
	if cfg.Hashes < 0 {
		return nil, fmt.Errorf("%w: Hashes %d negative", ErrBadConfig, cfg.Hashes)
	}
	if cfg.BloomBitsPerGen == 0 {
		cfg.BloomBitsPerGen = cfg.TotalBlocks
	}
	if cfg.Hashes == 0 {
		cfg.Hashes = 3
	}
	g := &Generational{
		totalBlocks: cfg.TotalBlocks,
		threshold:   cfg.TotalBlocks / numGenerations,
		bitsPerGen:  cfg.BloomBitsPerGen,
		hashes:      cfg.Hashes,
		probes:      make([]uint64, 0, cfg.Hashes),
	}
	if g.threshold < 1 {
		g.threshold = 1
	}
	bound := numGenerations * g.threshold
	g.keys = make([]uint64, tablePow2(bound))
	g.masks = make([]uint8, len(g.keys))
	g.tmask = uint64(len(g.keys) - 1)
	g.sweep = make([]uint64, 0, bound)
	for i := range g.filters {
		// Parameters were validated above; a failure here is a bug.
		g.filters[i] = bloom.MustNew(cfg.BloomBitsPerGen, cfg.Hashes)
	}
	return g, nil
}

// MustNewGenerational is NewGenerational for configurations known to
// be valid; it panics on error.
func MustNewGenerational(cfg GenerationalConfig) *Generational {
	g, err := NewGenerational(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Name implements Tracker.
func (g *Generational) Name() string { return "generation-bloom" }

// Reset implements Tracker.
func (g *Generational) Reset() {
	for _, f := range g.filters {
		f.Clear()
	}
	for i := range g.masks {
		g.masks[i] = 0
	}
	g.current = 0
	g.accessed = 0
	g.conflicts = 0
	g.generations = 0
}

// find returns the table position of line and whether it is resident.
// When absent, the returned position is the empty slot a subsequent
// insert must use.
func (g *Generational) find(line uint64) (pos uint64, found bool) {
	pos = mixLine(line) & g.tmask
	for {
		if g.masks[pos] == 0 {
			return pos, false
		}
		if g.keys[pos] == line {
			return pos, true
		}
		pos = (pos + 1) & g.tmask
	}
}

// remove deletes the entry at pos, backward-shifting its probe
// cluster so later lookups never cross a stale hole.
func (g *Generational) remove(pos uint64) {
	cur := pos
	for {
		cur = (cur + 1) & g.tmask
		if g.masks[cur] == 0 {
			break
		}
		home := mixLine(g.keys[cur]) & g.tmask
		if (cur-home)&g.tmask >= (cur-pos)&g.tmask {
			g.keys[pos] = g.keys[cur]
			g.masks[pos] = g.masks[cur]
			pos = cur
		}
	}
	g.masks[pos] = 0
}

// Observe implements Tracker.
func (g *Generational) Observe(o Observation) bool {
	conflict := false
	if !o.Hit {
		// Check whether the incoming tag was recently prematurely
		// evicted: a hit in any generation's Bloom filter means the
		// block was accessed in that generation but replaced to make
		// room before the cache cycled through full capacity. The tag
		// is hashed once; the filters share one geometry.
		g.probes = g.filters[0].AppendProbes(g.probes, o.LineAddr)
		if bloom.AnyContainsAt(g.filters[:], g.probes) {
			conflict = true
			g.conflicts++
		}
	}
	if o.Evicted {
		// Record the displaced tag in the Bloom filter of the latest
		// generation in which it was accessed.
		if pos, ok := g.find(o.EvictedLine); ok {
			g.filters[g.latestGeneration(g.masks[pos])].Add(o.EvictedLine)
			g.remove(pos)
		}
	}
	// Mark the accessed block in the current generation (emulating
	// placement at the top of the LRU stack).
	bit := uint8(1) << uint(g.current)
	pos, found := g.find(o.LineAddr)
	mask := uint8(0)
	if found {
		mask = g.masks[pos]
	}
	if mask&bit == 0 {
		g.keys[pos] = o.LineAddr
		g.masks[pos] = mask | bit
		g.accessed++
		if g.accessed >= g.threshold {
			g.advanceGeneration()
		}
	}
	return conflict
}

// latestGeneration returns the index of the youngest generation whose
// bit is set in mask, searching from the current generation backwards
// through age order.
func (g *Generational) latestGeneration(mask uint8) int {
	for age := 0; age < numGenerations; age++ {
		idx := (g.current - age + numGenerations) % numGenerations
		if mask&(1<<uint(idx)) != 0 {
			return idx
		}
	}
	// A resident block always has at least one bit set (set on
	// install); defensively attribute to the current generation.
	return g.current
}

// advanceGeneration discards the oldest generation and makes its slot
// the new youngest, flash-clearing its Bloom filter and its bit column
// in the resident metadata. Blocks only ever touched in the discarded
// generation fall off the bottom of the stack; they are collected
// during the column scan and removed afterwards, since removal shifts
// table entries and must not run under the scan.
func (g *Generational) advanceGeneration() {
	oldest := (g.current + 1) % numGenerations
	g.filters[oldest].Clear()
	keep := ^(uint8(1) << uint(oldest))
	g.sweep = g.sweep[:0]
	for i, m := range g.masks {
		if m == 0 {
			continue
		}
		if nm := m & keep; nm != m {
			if nm == 0 {
				g.sweep = append(g.sweep, g.keys[i])
			} else {
				g.masks[i] = nm
			}
		}
	}
	for _, line := range g.sweep {
		if pos, ok := g.find(line); ok {
			g.remove(pos)
		}
	}
	g.current = oldest
	g.accessed = 0
	g.generations++
}

// Conflicts returns the number of conflict misses detected.
func (g *Generational) Conflicts() uint64 { return g.conflicts }

// Generations returns how many generation turnovers have happened.
func (g *Generational) Generations() uint64 { return g.generations }

// HardwareCost reports the tracker's storage budget: Bloom filter bits
// plus per-block metadata bits (4 generation bits + 3 owner-context
// bits, per §V-A), used by the auditor's Table I model.
func (g *Generational) HardwareCost() (bloomBits, metadataBits int) {
	return numGenerations * g.bitsPerGen, g.totalBlocks * (numGenerations + 3)
}
