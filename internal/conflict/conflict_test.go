package conflict

import (
	"errors"
	"testing"

	"cchunter/internal/cache"
	"cchunter/internal/stats"
)

// driveCache replays a sequence of (addr, ctx) accesses through a real
// cache model feeding the tracker, returning per-access conflict flags.
func driveCache(c *cache.Cache, tr Tracker, accesses [][2]uint64) []bool {
	out := make([]bool, len(accesses))
	for i, a := range accesses {
		r := c.Access(a[0], uint8(a[1]))
		out[i] = tr.Observe(Observation{
			LineAddr:     r.LineAddr,
			Set:          r.Set,
			Ctx:          uint8(a[1]),
			Hit:          r.Hit,
			Evicted:      r.Evicted,
			EvictedLine:  r.EvictedLine,
			EvictedOwner: r.EvictedOwner,
		})
	}
	return out
}

func smallCache() *cache.Cache {
	// 4 sets × 2 ways = 8 blocks.
	return cache.MustNew(cache.Config{SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 1})
}

func trackersUnderTest(blocks int) map[string]Tracker {
	return map[string]Tracker{
		"ideal": MustNewIdeal(blocks),
		"gen":   MustNewGenerational(GenerationalConfig{TotalBlocks: blocks, BloomBitsPerGen: 4096}),
	}
}

func TestColdMissesAreNotConflicts(t *testing.T) {
	for name, tr := range trackersUnderTest(8) {
		c := smallCache()
		accesses := [][2]uint64{{0x000, 0}, {0x040, 0}, {0x080, 0}}
		for i, conflict := range driveCache(c, tr, accesses) {
			if conflict {
				t.Errorf("%s: cold miss %d flagged as conflict", name, i)
			}
		}
	}
}

func TestClassicConflictMissDetected(t *testing.T) {
	// Set 0 has 2 ways; access three conflicting blocks A, B, C, then
	// A again. A was evicted while the cache had spare capacity, so
	// the re-access is a conflict miss.
	for name, tr := range trackersUnderTest(8) {
		c := smallCache()
		a := c.AddrForSet(0, 0, 1)
		b := c.AddrForSet(0, 1, 1)
		d := c.AddrForSet(0, 2, 1)
		got := driveCache(c, tr, [][2]uint64{{a, 0}, {b, 0}, {d, 0}, {a, 0}})
		if got[0] || got[1] || got[2] {
			t.Errorf("%s: early accesses flagged: %v", name, got)
		}
		if !got[3] {
			t.Errorf("%s: conflict miss on re-access not detected", name)
		}
	}
}

func TestCapacityMissNotConflictForIdeal(t *testing.T) {
	// Touch far more distinct blocks than the cache holds, then return
	// to the first: it fell off the full LRU stack, so this is a
	// capacity miss, not a conflict miss.
	c := smallCache() // 8 blocks
	tr := MustNewIdeal(8)
	var accesses [][2]uint64
	first := c.AddrForSet(0, 0, 1)
	accesses = append(accesses, [2]uint64{first, 0})
	for i := 0; i < 16; i++ { // 16 distinct blocks across sets
		accesses = append(accesses, [2]uint64{c.AddrForSet(uint32(i%4), i/4+1, 2), 0})
	}
	accesses = append(accesses, [2]uint64{first, 0})
	got := driveCache(c, tr, accesses)
	if got[len(got)-1] {
		t.Error("capacity miss misclassified as conflict by ideal tracker")
	}
}

func TestIdealStackEviction(t *testing.T) {
	tr := MustNewIdeal(4)
	for i := uint64(0); i < 6; i++ {
		tr.Observe(Observation{LineAddr: i, Hit: false})
	}
	if tr.StackSize() != 4 {
		t.Errorf("stack size = %d, want 4", tr.StackSize())
	}
	// Line 0 fell off; a miss on it is not a conflict.
	if tr.Observe(Observation{LineAddr: 0, Hit: false}) {
		t.Error("expired line flagged as conflict")
	}
	// Line 5 is still in the stack; a miss on it is a conflict.
	if !tr.Observe(Observation{LineAddr: 5, Hit: false}) {
		t.Error("in-stack miss not flagged")
	}
}

func TestIdealMoveToFrontKeepsHotLines(t *testing.T) {
	tr := MustNewIdeal(3)
	tr.Observe(Observation{LineAddr: 1})
	tr.Observe(Observation{LineAddr: 2})
	tr.Observe(Observation{LineAddr: 3})
	tr.Observe(Observation{LineAddr: 1}) // refresh 1
	tr.Observe(Observation{LineAddr: 4}) // evicts 2 (LRU), not 1
	if !tr.Observe(Observation{LineAddr: 1, Hit: false}) {
		t.Error("refreshed line should still be in stack")
	}
	if tr.Observe(Observation{LineAddr: 2, Hit: false}) {
		t.Error("stale line should have been dropped")
	}
}

func TestGenerationalTurnover(t *testing.T) {
	g := MustNewGenerational(GenerationalConfig{TotalBlocks: 8})
	// threshold = 2: every 2 distinct blocks advance a generation.
	for i := uint64(0); i < 8; i++ {
		g.Observe(Observation{LineAddr: i, Hit: false})
	}
	if g.Generations() != 4 {
		t.Errorf("generations = %d, want 4", g.Generations())
	}
}

func TestGenerationalForgetsOldEvictions(t *testing.T) {
	// An eviction recorded in a generation must stop causing conflicts
	// once that generation is discarded (4 turnovers later).
	g := MustNewGenerational(GenerationalConfig{TotalBlocks: 8, BloomBitsPerGen: 4096})
	g.Observe(Observation{LineAddr: 100, Hit: false})
	// Evict line 100 (recorded in current generation's bloom).
	g.Observe(Observation{LineAddr: 101, Hit: false, Evicted: true, EvictedLine: 100})
	// Re-access now: conflict detected.
	if !g.Observe(Observation{LineAddr: 100, Hit: false}) {
		t.Fatal("fresh premature eviction not flagged")
	}
	// Note: line 100 is now resident again. Evict it once more but this
	// time cycle all four generations before re-accessing.
	g.Observe(Observation{LineAddr: 102, Hit: false, Evicted: true, EvictedLine: 100})
	for i := uint64(0); i < 20; i++ {
		g.Observe(Observation{LineAddr: 1000 + i, Hit: false})
	}
	if g.Observe(Observation{LineAddr: 100, Hit: false}) {
		t.Error("eviction survived generation turnover")
	}
}

func TestGenerationalMatchesIdealOnChannelPattern(t *testing.T) {
	// On the covert channel's access pattern (two contexts ping-pong
	// on the same sets, well within capacity) the practical tracker
	// must agree with the ideal one almost everywhere.
	// Two contexts ping-pong on one set while the rest of the cache
	// stays quiet (working set 4 blocks of 8): every post-warmup miss
	// is a premature eviction. The covert channel keeps its footprint
	// within cache capacity for exactly this reason (see DESIGN.md).
	cIdeal, cGen := smallCache(), smallCache()
	blocks := 8
	ideal := MustNewIdeal(blocks)
	gen := MustNewGenerational(GenerationalConfig{TotalBlocks: blocks, BloomBitsPerGen: 8192})
	var accesses [][2]uint64
	for round := 0; round < 100; round++ {
		ctx := uint64(round % 2)
		for w := 0; w < 2; w++ {
			accesses = append(accesses, [2]uint64{cIdeal.AddrForSet(0, w+int(ctx)*2, 1), ctx})
		}
	}
	gotIdeal := driveCache(cIdeal, ideal, accesses)
	gotGen := driveCache(cGen, gen, accesses)
	disagree := 0
	for i := range gotIdeal {
		if gotIdeal[i] != gotGen[i] {
			disagree++
		}
	}
	if frac := float64(disagree) / float64(len(gotIdeal)); frac > 0.10 {
		t.Errorf("trackers disagree on %.1f%% of channel accesses", frac*100)
	}
	if ideal.Conflicts() == 0 {
		t.Error("channel pattern should produce conflict misses")
	}
}

func TestGenerationalRandomTrafficLowConflictRate(t *testing.T) {
	// A huge random working set produces capacity misses, not
	// conflicts; the practical tracker must not drown in false
	// positives (bloom FPs are possible but bounded).
	c := cache.MustNew(cache.DefaultL2())
	g := MustNewGenerational(GenerationalConfig{TotalBlocks: c.NumBlocks()})
	r := stats.NewRNG(5)
	flagged := 0
	n := 50000
	for i := 0; i < n; i++ {
		addr := uint64(r.Intn(1<<22)) << 6 // 4M lines >> cache capacity
		res := c.Access(addr, 0)
		if g.Observe(Observation{LineAddr: res.LineAddr, Set: res.Set, Hit: res.Hit,
			Evicted: res.Evicted, EvictedLine: res.EvictedLine}) {
			flagged++
		}
	}
	if frac := float64(flagged) / float64(n); frac > 0.25 {
		t.Errorf("random traffic conflict rate %.2f too high", frac)
	}
}

func TestResetClearsState(t *testing.T) {
	for name, tr := range trackersUnderTest(8) {
		tr.Observe(Observation{LineAddr: 1, Hit: false})
		tr.Observe(Observation{LineAddr: 2, Hit: false, Evicted: true, EvictedLine: 1})
		tr.Reset()
		if tr.Observe(Observation{LineAddr: 1, Hit: false}) {
			t.Errorf("%s: conflict detected after Reset", name)
		}
	}
}

func TestHardwareCost(t *testing.T) {
	g := MustNewGenerational(GenerationalConfig{TotalBlocks: 4096})
	bloomBits, metaBits := g.HardwareCost()
	if bloomBits != 4*4096 {
		t.Errorf("bloom bits = %d, want 4×N", bloomBits)
	}
	if metaBits != 4096*7 {
		t.Errorf("metadata bits = %d, want 7 per block", metaBits)
	}
}

func TestNames(t *testing.T) {
	if MustNewIdeal(4).Name() == "" || MustNewGenerational(GenerationalConfig{TotalBlocks: 4}).Name() == "" {
		t.Error("trackers must have names")
	}
}

func TestConstructorErrors(t *testing.T) {
	for name, f := range map[string]func() error{
		"ideal zero": func() error { _, err := NewIdeal(0); return err },
		"gen zero":   func() error { _, err := NewGenerational(GenerationalConfig{}); return err },
		"neg bits": func() error {
			_, err := NewGenerational(GenerationalConfig{TotalBlocks: 8, BloomBitsPerGen: -1})
			return err
		},
		"neg hashes":   func() error { _, err := NewGenerational(GenerationalConfig{TotalBlocks: 8, Hashes: -1}); return err },
		"ideal neg":    func() error { _, err := NewIdeal(-4); return err },
		"gen negative": func() error { _, err := NewGenerational(GenerationalConfig{TotalBlocks: -1}); return err },
	} {
		err := f()
		if err == nil {
			t.Errorf("%s: expected error", name)
			continue
		}
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: error %v does not wrap ErrBadConfig", name, err)
		}
	}
}

func TestMustConstructorsPanicOnBadConfig(t *testing.T) {
	for name, f := range map[string]func(){
		"ideal": func() { MustNewIdeal(0) },
		"gen":   func() { MustNewGenerational(GenerationalConfig{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
