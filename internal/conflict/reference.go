package conflict

import "fmt"

// IdealReference is the original map-and-heap-node build of the ideal
// LRU-stack tracker: a map[line]*node plus pointer-linked list nodes
// allocated per insertion. It is retained solely as a reference
// implementation — the differential tests check the flat Ideal against
// it observation by observation, and BenchmarkConflictTracker reports
// its allocs/op as the before side of the data-layout rewrite.
// Production code must use Ideal.
type IdealReference struct {
	capacity int
	nodes    map[uint64]*refNode
	head     *refNode // most recently used
	tail     *refNode // least recently used
	size     int

	conflicts uint64
}

type refNode struct {
	line       uint64
	prev, next *refNode
}

// NewIdealReference returns the map-based reference tracker for a
// cache with capacity blocks.
func NewIdealReference(capacity int) (*IdealReference, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: stack capacity %d must be positive", ErrBadConfig, capacity)
	}
	return &IdealReference{capacity: capacity, nodes: make(map[uint64]*refNode, capacity)}, nil
}

// MustNewIdealReference is NewIdealReference for capacities known to
// be valid; it panics on error.
func MustNewIdealReference(capacity int) *IdealReference {
	t, err := NewIdealReference(capacity)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements Tracker.
func (t *IdealReference) Name() string { return "ideal-lru-stack-map-reference" }

// Reset implements Tracker.
func (t *IdealReference) Reset() {
	t.nodes = make(map[uint64]*refNode, t.capacity)
	t.head, t.tail, t.size = nil, nil, 0
	t.conflicts = 0
}

// Observe implements Tracker.
func (t *IdealReference) Observe(o Observation) bool {
	n, inStack := t.nodes[o.LineAddr]
	conflict := !o.Hit && inStack
	if conflict {
		t.conflicts++
	}
	if inStack {
		t.moveToFront(n)
	} else {
		t.insertFront(o.LineAddr)
	}
	return conflict
}

// Conflicts returns the number of conflict misses detected.
func (t *IdealReference) Conflicts() uint64 { return t.conflicts }

func (t *IdealReference) insertFront(line uint64) {
	n := &refNode{line: line, next: t.head}
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
	t.nodes[line] = n
	t.size++
	if t.size > t.capacity {
		// Drop the LRU entry: it falls off the bottom of the stack.
		old := t.tail
		t.tail = old.prev
		if t.tail != nil {
			t.tail.next = nil
		} else {
			t.head = nil
		}
		delete(t.nodes, old.line)
		t.size--
	}
}

func (t *IdealReference) moveToFront(n *refNode) {
	if t.head == n {
		return
	}
	// Unlink.
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if t.tail == n {
		t.tail = n.prev
	}
	// Relink at head.
	n.prev = nil
	n.next = t.head
	t.head.prev = n
	t.head = n
}

// StackSize returns the current number of tracked lines (tests).
func (t *IdealReference) StackSize() int { return t.size }
