// Package conflict implements CC-Hunter's conflict-miss trackers
// (§V-A, Figure 9).
//
// A conflict miss happens in a set-associative cache when several
// blocks map into the same set and replace each other even though
// capacity remains elsewhere: a fully-associative cache of the same
// capacity with LRU replacement would have kept the block. The paper
// describes two designs:
//
//   - an *ideal* tracker keeping a fully-associative LRU stack of all
//     block addresses (expensive in hardware, exact), and
//   - a *practical* tracker that approximates the stack with four age
//     "generations", per-block generation bits, and one three-hash
//     Bloom filter per generation remembering prematurely evicted tags.
//
// Both are implemented here so the ablation benchmarks can compare
// them.
//
// Observe sits on the simulator's per-access hot path, so both
// trackers use flat, index-addressed storage: all state lives in
// slices sized at construction, the LRU stack is an intrusive
// doubly-linked list over slab indexes, and lookups go through an
// open-addressing hash index with linear probing and backward-shift
// deletion. After construction, Observe performs no allocations.
// See DESIGN.md §12 for the layout and the equivalence argument
// against the map-based build (kept as IdealReference).
package conflict

import (
	"errors"
	"fmt"
)

// ErrBadConfig is wrapped by every configuration validation error in
// this package.
var ErrBadConfig = errors.New("conflict: bad configuration")

// Observation describes one access to the tracked cache, as reported
// by the cache model.
type Observation struct {
	// LineAddr is the full line address of the accessed block.
	LineAddr uint64
	// Set is the set index the block maps to.
	Set uint32
	// Ctx is the accessing hardware context (the replacer on a miss).
	Ctx uint8
	// Hit reports whether the access hit.
	Hit bool
	// Evicted reports whether installing the block displaced a valid
	// block (only meaningful when !Hit).
	Evicted bool
	// EvictedLine is the displaced block's line address.
	EvictedLine uint64
	// EvictedOwner is the displaced block's owning context.
	EvictedOwner uint8
}

// Tracker decides, for every access, whether it is a conflict miss.
type Tracker interface {
	// Observe consumes one access and reports whether it was a
	// conflict miss: the block missed although it was recently enough
	// used that a fully-associative cache would have retained it.
	Observe(o Observation) bool
	// Name identifies the tracker implementation.
	Name() string
	// Reset clears all tracking state.
	Reset()
}

// mixLine is the splitmix64 finalizer, used to spread line addresses
// over the open-addressing tables. Line addresses are highly regular
// (consecutive sets, a handful of tags), so the raw value would
// cluster badly.
func mixLine(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// tablePow2 returns the smallest power of two >= 2*n, the
// open-addressing table size that keeps load factor at or below one
// half for n live entries.
func tablePow2(n int) int {
	size := 1
	for size < 2*n {
		size <<= 1
	}
	return size
}

// Ideal is the exact tracker: a fully-associative LRU stack of
// capacity equal to the cache's block count. An access is a conflict
// miss when it misses in the real cache but its line address is still
// within the stack (i.e. among the N most recently used distinct
// lines).
//
// The stack is an intrusive doubly-linked list threaded through a
// slab of at most `capacity` entries; membership lookups go through a
// flat open-addressing index. Slab slots are handed out sequentially
// until the stack is full, after which every insertion reuses the
// slot of the entry falling off the bottom, so Observe never
// allocates.
type Ideal struct {
	capacity int

	// Slab: entry i is (lines[i], prev[i], next[i]). prev/next are
	// slab indexes; -1 terminates the list.
	lines []uint64
	prev  []int32
	next  []int32

	// Open-addressing index over the slab: table[h] holds a slab
	// index or -1. Linear probing; deletion backward-shifts the
	// cluster, so there are no tombstones.
	table []int32
	mask  uint64

	head, tail int32 // most / least recently used; -1 when empty
	size       int

	conflicts uint64
}

// NewIdeal returns an ideal tracker for a cache with capacity blocks.
func NewIdeal(capacity int) (*Ideal, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: stack capacity %d must be positive", ErrBadConfig, capacity)
	}
	t := &Ideal{
		capacity: capacity,
		lines:    make([]uint64, capacity),
		prev:     make([]int32, capacity),
		next:     make([]int32, capacity),
		table:    make([]int32, tablePow2(capacity)),
		head:     -1,
		tail:     -1,
	}
	t.mask = uint64(len(t.table) - 1)
	for i := range t.table {
		t.table[i] = -1
	}
	return t, nil
}

// MustNewIdeal is NewIdeal for capacities known to be valid; it panics
// on error.
func MustNewIdeal(capacity int) *Ideal {
	t, err := NewIdeal(capacity)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements Tracker.
func (t *Ideal) Name() string { return "ideal-lru-stack" }

// Reset implements Tracker.
func (t *Ideal) Reset() {
	for i := range t.table {
		t.table[i] = -1
	}
	t.head, t.tail, t.size = -1, -1, 0
	t.conflicts = 0
}

// lookup returns the slab index of line, or -1 when it is not in the
// stack.
func (t *Ideal) lookup(line uint64) int32 {
	h := mixLine(line) & t.mask
	for {
		idx := t.table[h]
		if idx < 0 {
			return -1
		}
		if t.lines[idx] == line {
			return idx
		}
		h = (h + 1) & t.mask
	}
}

// Observe implements Tracker.
func (t *Ideal) Observe(o Observation) bool {
	slot := t.lookup(o.LineAddr)
	conflict := !o.Hit && slot >= 0
	if conflict {
		t.conflicts++
	}
	if slot >= 0 {
		t.moveToFront(slot)
	} else {
		t.insertFront(o.LineAddr)
	}
	return conflict
}

// Conflicts returns the number of conflict misses detected.
func (t *Ideal) Conflicts() uint64 { return t.conflicts }

// insertFront pushes a new line onto the top of the stack. At
// capacity, the LRU entry falls off the bottom first and its slab
// slot is reused for the new line.
func (t *Ideal) insertFront(line uint64) {
	var slot int32
	if t.size == t.capacity {
		slot = t.tail
		t.tableDelete(t.lines[slot])
		t.tail = t.prev[slot]
		if t.tail >= 0 {
			t.next[t.tail] = -1
		} else {
			t.head = -1
		}
	} else {
		slot = int32(t.size)
		t.size++
	}
	t.lines[slot] = line
	t.prev[slot] = -1
	t.next[slot] = t.head
	if t.head >= 0 {
		t.prev[t.head] = slot
	}
	t.head = slot
	if t.tail < 0 {
		t.tail = slot
	}
	t.tableInsert(line, slot)
}

// moveToFront relinks an existing entry at the top of the stack.
func (t *Ideal) moveToFront(slot int32) {
	if t.head == slot {
		return
	}
	p, n := t.prev[slot], t.next[slot]
	if p >= 0 {
		t.next[p] = n
	}
	if n >= 0 {
		t.prev[n] = p
	}
	if t.tail == slot {
		t.tail = p
	}
	t.prev[slot] = -1
	t.next[slot] = t.head
	t.prev[t.head] = slot
	t.head = slot
}

// tableInsert records line -> slot in the open-addressing index.
func (t *Ideal) tableInsert(line uint64, slot int32) {
	h := mixLine(line) & t.mask
	for t.table[h] >= 0 {
		h = (h + 1) & t.mask
	}
	t.table[h] = slot
}

// tableDelete removes line from the index, backward-shifting the rest
// of its probe cluster so later lookups never cross a stale hole.
func (t *Ideal) tableDelete(line uint64) {
	pos := mixLine(line) & t.mask
	for {
		idx := t.table[pos]
		if idx >= 0 && t.lines[idx] == line {
			break
		}
		pos = (pos + 1) & t.mask
	}
	// Walk the cluster after the hole; any entry displaced at least as
	// far from its home slot as the hole can move back into it.
	cur := pos
	for {
		cur = (cur + 1) & t.mask
		idx := t.table[cur]
		if idx < 0 {
			break
		}
		home := mixLine(t.lines[idx]) & t.mask
		if (cur-home)&t.mask >= (cur-pos)&t.mask {
			t.table[pos] = idx
			pos = cur
		}
	}
	t.table[pos] = -1
}

// StackSize returns the current number of tracked lines (tests).
func (t *Ideal) StackSize() int { return t.size }
