// Package conflict implements CC-Hunter's conflict-miss trackers
// (§V-A, Figure 9).
//
// A conflict miss happens in a set-associative cache when several
// blocks map into the same set and replace each other even though
// capacity remains elsewhere: a fully-associative cache of the same
// capacity with LRU replacement would have kept the block. The paper
// describes two designs:
//
//   - an *ideal* tracker keeping a fully-associative LRU stack of all
//     block addresses (expensive in hardware, exact), and
//   - a *practical* tracker that approximates the stack with four age
//     "generations", per-block generation bits, and one three-hash
//     Bloom filter per generation remembering prematurely evicted tags.
//
// Both are implemented here so the ablation benchmarks can compare
// them.
package conflict

import (
	"errors"
	"fmt"
)

// ErrBadConfig is wrapped by every configuration validation error in
// this package.
var ErrBadConfig = errors.New("conflict: bad configuration")

// Observation describes one access to the tracked cache, as reported
// by the cache model.
type Observation struct {
	// LineAddr is the full line address of the accessed block.
	LineAddr uint64
	// Set is the set index the block maps to.
	Set uint32
	// Ctx is the accessing hardware context (the replacer on a miss).
	Ctx uint8
	// Hit reports whether the access hit.
	Hit bool
	// Evicted reports whether installing the block displaced a valid
	// block (only meaningful when !Hit).
	Evicted bool
	// EvictedLine is the displaced block's line address.
	EvictedLine uint64
	// EvictedOwner is the displaced block's owning context.
	EvictedOwner uint8
}

// Tracker decides, for every access, whether it is a conflict miss.
type Tracker interface {
	// Observe consumes one access and reports whether it was a
	// conflict miss: the block missed although it was recently enough
	// used that a fully-associative cache would have retained it.
	Observe(o Observation) bool
	// Name identifies the tracker implementation.
	Name() string
	// Reset clears all tracking state.
	Reset()
}

// Ideal is the exact tracker: a fully-associative LRU stack of
// capacity equal to the cache's block count. An access is a conflict
// miss when it misses in the real cache but its line address is still
// within the stack (i.e. among the N most recently used distinct
// lines).
type Ideal struct {
	capacity int
	nodes    map[uint64]*node
	head     *node // most recently used
	tail     *node // least recently used
	size     int

	conflicts uint64
}

type node struct {
	line       uint64
	prev, next *node
}

// NewIdeal returns an ideal tracker for a cache with capacity blocks.
func NewIdeal(capacity int) (*Ideal, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: stack capacity %d must be positive", ErrBadConfig, capacity)
	}
	return &Ideal{capacity: capacity, nodes: make(map[uint64]*node, capacity)}, nil
}

// MustNewIdeal is NewIdeal for capacities known to be valid; it panics
// on error.
func MustNewIdeal(capacity int) *Ideal {
	t, err := NewIdeal(capacity)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements Tracker.
func (t *Ideal) Name() string { return "ideal-lru-stack" }

// Reset implements Tracker.
func (t *Ideal) Reset() {
	t.nodes = make(map[uint64]*node, t.capacity)
	t.head, t.tail, t.size = nil, nil, 0
	t.conflicts = 0
}

// Observe implements Tracker.
func (t *Ideal) Observe(o Observation) bool {
	n, inStack := t.nodes[o.LineAddr]
	conflict := !o.Hit && inStack
	if conflict {
		t.conflicts++
	}
	if inStack {
		t.moveToFront(n)
	} else {
		t.insertFront(o.LineAddr)
	}
	return conflict
}

// Conflicts returns the number of conflict misses detected.
func (t *Ideal) Conflicts() uint64 { return t.conflicts }

func (t *Ideal) insertFront(line uint64) {
	n := &node{line: line, next: t.head}
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
	t.nodes[line] = n
	t.size++
	if t.size > t.capacity {
		// Drop the LRU entry: it falls off the bottom of the stack.
		old := t.tail
		t.tail = old.prev
		if t.tail != nil {
			t.tail.next = nil
		} else {
			t.head = nil
		}
		delete(t.nodes, old.line)
		t.size--
	}
}

func (t *Ideal) moveToFront(n *node) {
	if t.head == n {
		return
	}
	// Unlink.
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if t.tail == n {
		t.tail = n.prev
	}
	// Relink at head.
	n.prev = nil
	n.next = t.head
	t.head.prev = n
	t.head = n
}

// StackSize returns the current number of tracked lines (tests).
func (t *Ideal) StackSize() int { return t.size }
