package conflict

import (
	"testing"
	"testing/quick"

	"cchunter/internal/cache"
	"cchunter/internal/stats"
)

// TestFirstTouchNeverConflicts: no tracker may flag a line's very
// first access as a conflict miss — nothing was prematurely evicted.
func TestFirstTouchNeverConflicts(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		ideal := MustNewIdeal(64)
		gen := MustNewGenerational(GenerationalConfig{TotalBlocks: 64})
		seen := map[uint64]bool{}
		for i := 0; i < 200; i++ {
			line := uint64(r.Intn(500))
			first := !seen[line]
			seen[line] = true
			o := Observation{LineAddr: line, Hit: !first && r.Bit() == 1}
			ci := ideal.Observe(o)
			cg := gen.Observe(o)
			if first && (ci || cg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHitsNeverConflict: a cache hit is never a conflict miss, in
// either tracker, for arbitrary interleavings.
func TestHitsNeverConflict(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		trackers := []Tracker{
			MustNewIdeal(32),
			MustNewGenerational(GenerationalConfig{TotalBlocks: 32}),
		}
		for i := 0; i < 300; i++ {
			o := Observation{
				LineAddr: uint64(r.Intn(100)),
				Set:      uint32(r.Intn(8)),
				Hit:      true,
			}
			for _, tr := range trackers {
				if tr.Observe(o) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIdealAgreesWithDefinition: replay random traffic through a real
// cache and verify the ideal tracker's verdicts against a brute-force
// reuse-distance computation (a miss is a conflict iff fewer than
// `capacity` distinct lines were touched since the last access).
func TestIdealAgreesWithDefinition(t *testing.T) {
	c := cache.MustNew(cache.Config{SizeBytes: 2048, LineBytes: 64, Ways: 2, HitLatency: 1})
	capacity := c.NumBlocks() // 32
	tr := MustNewIdeal(capacity)
	r := stats.NewRNG(77)
	var history []uint64
	for i := 0; i < 3000; i++ {
		addr := uint64(r.Intn(128)) << 6
		res := c.Access(addr, 0)
		got := tr.Observe(Observation{
			LineAddr: res.LineAddr, Set: res.Set, Hit: res.Hit,
			Evicted: res.Evicted, EvictedLine: res.EvictedLine,
		})
		// Brute force: reuse distance in distinct lines.
		want := false
		if !res.Hit {
			distinct := map[uint64]bool{}
			for j := len(history) - 1; j >= 0; j-- {
				if history[j] == res.LineAddr {
					want = len(distinct) < capacity
					break
				}
				distinct[history[j]] = true
			}
		}
		if got != want {
			t.Fatalf("access %d line %x: ideal=%v brute-force=%v", i, res.LineAddr, got, want)
		}
		history = append(history, res.LineAddr)
	}
}

// TestGenerationalNeverFlagsBeyondHorizon: a line untouched for more
// than 4 full generations (≥ N distinct touches) must not be flagged —
// its eviction is no longer premature.
func TestGenerationalNeverFlagsBeyondHorizon(t *testing.T) {
	g := MustNewGenerational(GenerationalConfig{TotalBlocks: 16}) // threshold 4
	g.Observe(Observation{LineAddr: 9999, Hit: false})
	g.Observe(Observation{LineAddr: 9998, Hit: false, Evicted: true, EvictedLine: 9999})
	// 5 generations' worth of distinct touches.
	for i := uint64(0); i < 5*16; i++ {
		g.Observe(Observation{LineAddr: 100 + i, Hit: false})
	}
	if g.Observe(Observation{LineAddr: 9999, Hit: false}) {
		t.Error("eviction survived past the tracker's horizon")
	}
}
