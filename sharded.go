package cchunter

import (
	"fmt"

	"cchunter/internal/runner"
)

// RunSharded executes independent scenarios as simulator shards: each
// scenario runs its own sim.System on a pool of `shards` lanes, with
// pipelined (SPSC-conduit) event delivery so every shard overlaps its
// simulation with its auditing. Results come back in input order and
// are byte-identical to running each scenario serially with
// Scenario.Run — scenarios are independent (host, configuration)
// streams, each carrying its own seed, and pipelined delivery is
// observationally invisible — so the shard count is purely a
// throughput knob (pinned by the shard-determinism tests and CI lane).
//
// shards <= 0 selects one lane per scenario (full fan-out).
func RunSharded(shards int, scs []Scenario) ([]*Result, error) {
	if shards <= 0 {
		shards = len(scs)
	}
	jobs := make([]runner.Job, len(scs))
	for i, sc := range scs {
		sc.Pipelined = true
		sc := sc
		jobs[i] = runner.Job{
			Name: fmt.Sprintf("shard/%d", i),
			Run: func(uint64) (interface{}, error) {
				return sc.Run()
			},
		}
	}
	results, err := runner.Run(shards, 1, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("cchunter: shard %d: %w", i, r.Err)
		}
		out[i] = r.Value.(*Result)
	}
	return out, nil
}
