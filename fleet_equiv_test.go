package cchunter

import (
	"bytes"
	"encoding/json"
	"testing"

	"cchunter/internal/fleet"
)

// TestFleetPathMatchesGoldenCorpus is the fleet daemon's equivalence
// gate: the exact pipeline a cchuntd shard runs — bounded ingest
// queue, batched delivery, streaming detector, epoch finalize — must
// render byte-identical verdicts to the batch detector pinned by
// testdata/golden. Each golden scenario's raw event train is replayed
// through fleet.AnalyzeTrain and the resulting report (minus the
// streaming evidence block, which the batch path never carries) is
// compared against both the scenario's own batch verdict and the
// committed corpus file.
func TestFleetPathMatchesGoldenCorpus(t *testing.T) {
	for _, tc := range streamCases() {
		t.Run(tc.name, func(t *testing.T) {
			sc := tc.sc
			sc.RecordRaw = true
			res, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.RawTrain == nil || res.RawTrain.Len() == 0 {
				t.Fatal("scenario recorded no raw train")
			}

			// The fleet shard must program the same monitoring pair the
			// scenario did, or the ring/tlb events fall on deaf slots.
			rep, err := fleet.AnalyzeTrain(res.RawTrain.Events(),
				res.QuantumCycles, res.Contexts, res.EndCycle, tc.sc.monitorKinds()...)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Streaming == nil {
				t.Fatal("fleet path carries no streaming evidence")
			}
			if rep.Streaming.EventsShed != 0 {
				t.Fatalf("fleet path shed %d events with a full-train queue",
					rep.Streaming.EventsShed)
			}
			rep.Streaming = nil
			rep.Metrics = nil

			batchRep := res.Report
			batchRep.Metrics = nil
			want, err := json.MarshalIndent(batchRep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("fleet-path verdict differs from batch verdict\nbatch:\n%s\nfleet:\n%s",
					want, got)
			}

			// Anchor to the committed corpus, not just the live batch
			// path: the golden doc's report field must match too.
			goldenRaw, err := readGolden(tc.name)
			if err != nil {
				t.Fatalf("read golden file: %v", err)
			}
			var doc struct {
				Report json.RawMessage `json:"report"`
			}
			if err := json.Unmarshal(goldenRaw, &doc); err != nil {
				t.Fatal(err)
			}
			var pinned Report
			if err := json.Unmarshal(doc.Report, &pinned); err != nil {
				t.Fatal(err)
			}
			pinnedBytes, err := json.MarshalIndent(pinned, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, pinnedBytes) {
				t.Errorf("fleet-path verdict drifted from pinned corpus %s.json", tc.name)
			}
		})
	}
}
